#!/usr/bin/env bash
# smoke_e2e.sh — end-to-end smoke of the real-TCP deployment, two parts:
#
# Part 1 (legacy flags): a permanent store and a cache daemon (two
# processes), round-trip a put at the server and a read-your-writes get at
# the cache via globectl.
#
# Part 2 (name-server topology): globens + two manifest-driven multi-object
# daemons. globectl reaches every object purely through name resolution (no
# -store), the resolve subcommand prints the record, and a replica added at
# runtime through the control RPC becomes resolvable and serves reads.
#
# Part 3 (durability): a durable daemon (-data-dir, -fsync always) is
# SIGKILLed in the middle of a globectl append stream and restarted from
# disk; every append that was acknowledged before the kill must still be
# readable, and ctl stats must report the recovery.
#
# Part 4 (self-healing): a three-daemon tree (permanent ← mirror ← cache)
# behind a leasing name server. The mirror is SIGKILLed and never restarted:
# the cache must re-parent onto the permanent store (ctl stats ReparentsDone),
# the dead contact must drop out of resolution within one lease TTL, and
# writes through resolution must keep working against the healed tree.
#
# Part 5 (observability): a three-daemon tree with -metrics-addr on every
# daemon and a durable root. After a write stream, /metrics at the root must
# show non-empty WAL series, /metrics at the cache must show a non-empty
# propagation-lag histogram, and globectl's daemon-wide ctl metrics /
# ctl trace ops must return the same series and the write lifecycle.
set -euo pipefail
cd "$(dirname "$0")/.."

PORT_A="${PORT_A:-7401}"
PORT_B="${PORT_B:-7402}"
PORT_NS="${PORT_NS:-7410}"
PORT_C="${PORT_C:-7411}"
PORT_D="${PORT_D:-7412}"
PORT_D2="${PORT_D2:-7413}"
PORT_CTL="${PORT_CTL:-7414}"
OBJ=smoke-doc
BIN="$(mktemp -d)"
trap 'kill $(jobs -p) 2>/dev/null || true; rm -rf "$BIN"' EXIT

go build -o "$BIN/globed" ./cmd/globed
go build -o "$BIN/globectl" ./cmd/globectl
go build -o "$BIN/globens" ./cmd/globens

wait_port() {
    for _ in $(seq 1 50); do
        if (exec 3<>"/dev/tcp/127.0.0.1/$1") 2>/dev/null; then exec 3>&- || true; return 0; fi
        sleep 0.1
    done
    echo "smoke_e2e: port $1 never came up" >&2
    return 1
}

"$BIN/globed" -listen "127.0.0.1:$PORT_A" -object $OBJ -role permanent \
    -strategy conference -id 1 &
"$BIN/globed" -listen "127.0.0.1:$PORT_B" -object $OBJ -role cache \
    -parent "127.0.0.1:$PORT_A" -strategy conference -session ryw -id 2 &

# Wait for both daemons to accept connections.
wait_port "$PORT_A"
wait_port "$PORT_B"

WANT='<h1>smoke over TCP</h1>'
"$BIN/globectl" -store "127.0.0.1:$PORT_A" -object $OBJ -client 101 \
    put index.html "$WANT"

# The cache converges via the object's own replication protocol; a reader
# at the cache must see the page.
GOT=""
for _ in $(seq 1 50); do
    GOT="$("$BIN/globectl" -store "127.0.0.1:$PORT_B" -object $OBJ -client 102 \
        get index.html 2>/dev/null || true)"
    [ "$GOT" = "$WANT" ] && break
    sleep 0.1
done
if [ "$GOT" != "$WANT" ]; then
    echo "smoke_e2e: FAIL: cache read $(printf %q "$GOT"), want $(printf %q "$WANT")" >&2
    exit 1
fi

# Page listing works at the cache too.
"$BIN/globectl" -store "127.0.0.1:$PORT_B" -object $OBJ pages | grep -qx index.html

echo "smoke_e2e: part 1 OK (put at 127.0.0.1:$PORT_A, replicated get at 127.0.0.1:$PORT_B)"

# ---- Part 2: name-server topology --------------------------------------------
NS="127.0.0.1:$PORT_NS"
"$BIN/globens" -listen "$NS" &
wait_port "$PORT_NS"

# Daemon C: one permanent store publishing TWO objects (a document and a KV
# map) — the multi-object manifest form.
cat > "$BIN/manifest_c.json" <<EOF
{
  "nameserver": "$NS",
  "digest": "50ms",
  "stores": [
    {"listen": "127.0.0.1:$PORT_C", "role": "permanent", "objects": [
      {"object": "ns-doc", "publish": true, "semantics": "webdoc",
       "strategy": "conference", "session": "ryw"},
      {"object": "ns-kv", "publish": true, "semantics": "kv",
       "strategy": "forum"}
    ]}
  ]
}
EOF
"$BIN/globed" -manifest "$BIN/manifest_c.json" &
wait_port "$PORT_C"

# Daemon D: two stores — a cache replicating ns-doc purely from the record
# (no parent, no semantics, no strategy in the manifest), and a mirror left
# empty for the runtime control test. Store IDs are leased from globens.
cat > "$BIN/manifest_d.json" <<EOF
{
  "nameserver": "$NS",
  "control": "127.0.0.1:$PORT_CTL",
  "digest": "50ms",
  "stores": [
    {"name": "cacheD", "listen": "127.0.0.1:$PORT_D", "role": "cache", "objects": [
      {"object": "ns-doc", "session": "ryw"}
    ]},
    {"name": "mirrorD", "listen": "127.0.0.1:$PORT_D2", "role": "mirror", "objects": []}
  ]
}
EOF
"$BIN/globed" -manifest "$BIN/manifest_d.json" &
wait_port "$PORT_D"
wait_port "$PORT_CTL"

# Write and read through pure name resolution: no -store anywhere. The put
# resolves to the cache (lowest layer) and forwards up; the get must see it.
WANT2='<h1>resolved over the name service</h1>'
"$BIN/globectl" -nameserver "$NS" -object ns-doc -client 201 -session ryw \
    put welcome.html "$WANT2"
GOT2=""
for _ in $(seq 1 50); do
    GOT2="$("$BIN/globectl" -nameserver "$NS" -object ns-doc -client 202 \
        get welcome.html 2>/dev/null || true)"
    [ "$GOT2" = "$WANT2" ] && break
    sleep 0.1
done
if [ "$GOT2" != "$WANT2" ]; then
    echo "smoke_e2e: FAIL: resolved read $(printf %q "$GOT2"), want $(printf %q "$WANT2")" >&2
    exit 1
fi

# The KV object co-hosted by daemon C works through resolution too, with
# the record supplying its semantics for the bind-time type check.
"$BIN/globectl" -nameserver "$NS" -object ns-kv -semantics kv -client 203 put knuth 'TAOCP'
# No -client here: the ID is leased from globens (the globally-unique path).
"$BIN/globectl" -nameserver "$NS" -object ns-kv -semantics kv get knuth | grep -qx 'TAOCP'

# The resolve subcommand prints the record: both replicas of ns-doc and the
# published metadata.
RES="$("$BIN/globectl" -nameserver "$NS" -object ns-doc resolve)"
echo "$RES" | grep -q "semantics webdoc"
echo "$RES" | grep -q "127.0.0.1:$PORT_C"
echo "$RES" | grep -q "127.0.0.1:$PORT_D"

# Runtime replica: the control RPC hosts ns-kv on daemon D's empty mirror
# store; it must register itself and serve reads.
"$BIN/globectl" -ctl "127.0.0.1:$PORT_CTL" -object ns-kv -ctl-store mirrorD ctl host
for _ in $(seq 1 50); do
    if "$BIN/globectl" -nameserver "$NS" -object ns-kv resolve | grep -q "127.0.0.1:$PORT_D2"; then break; fi
    sleep 0.1
done
"$BIN/globectl" -nameserver "$NS" -object ns-kv resolve | grep -q "127.0.0.1:$PORT_D2"
GOTKV=""
for _ in $(seq 1 50); do
    GOTKV="$("$BIN/globectl" -store "127.0.0.1:$PORT_D2" -object ns-kv -semantics kv -client 205 \
        get knuth 2>/dev/null || true)"
    [ "$GOTKV" = "TAOCP" ] && break
    sleep 0.1
done
if [ "$GOTKV" != "TAOCP" ]; then
    echo "smoke_e2e: FAIL: runtime replica read $(printf %q "$GOTKV"), want TAOCP" >&2
    exit 1
fi

echo "smoke_e2e: part 2 OK (globens at $NS, multi-object daemons, runtime replica via control RPC)"

# ---- Part 3: durability — SIGKILL mid-append-stream, restart from disk -------
PORT_E="${PORT_E:-7415}"
PORT_ECTL="${PORT_ECTL:-7416}"
DATA="$BIN/data"
DUR=dur-doc

start_durable() {
    "$BIN/globed" -listen "127.0.0.1:$PORT_E" -control "127.0.0.1:$PORT_ECTL" \
        -object $DUR -role permanent -strategy conference -id 9 \
        -data-dir "$DATA" -fsync always &
    DUR_PID=$!
    wait_port "$PORT_E"
}
start_durable

# Warm-up: a synchronously acked prefix (every ack is fsynced before it is
# sent, so all of these must survive the kill).
for i in $(seq 1 10); do
    "$BIN/globectl" -store "127.0.0.1:$PORT_E" -object $DUR -client 301 \
        append log.html "L$i;" >/dev/null
done

# Mid-stream kill: a background writer keeps appending (same pinned client,
# so each invocation resumes the identity's write sequence from the bind
# reply) and records exactly which appends were acknowledged; the daemon is
# SIGKILLed under it.
: > "$BIN/acked.txt"
(
    for i in $(seq 11 200); do
        if "$BIN/globectl" -store "127.0.0.1:$PORT_E" -object $DUR -client 301 \
            append log.html "L$i;" >/dev/null 2>&1; then
            echo "$i" >> "$BIN/acked.txt"
        else
            exit 0 # daemon is gone — the stream ends mid-flight
        fi
    done
) &
WRITER=$!
sleep 0.7
kill -9 "$DUR_PID"
wait "$WRITER" 2>/dev/null || true

# Restart from disk alone and read the page back.
start_durable
GOT3=""
for _ in $(seq 1 50); do
    GOT3="$("$BIN/globectl" -store "127.0.0.1:$PORT_E" -object $DUR -client 302 \
        get log.html 2>/dev/null || true)"
    [ -n "$GOT3" ] && break
    sleep 0.1
done
for i in $(seq 1 10) $(cat "$BIN/acked.txt"); do
    if ! printf '%s' "$GOT3" | grep -q "L$i;"; then
        echo "smoke_e2e: FAIL: acked append L$i; lost across SIGKILL (content $(printf %q "$GOT3"))" >&2
        exit 1
    fi
done

# The control RPC reports the durable state and the replay that just ran.
STATS="$("$BIN/globectl" -ctl "127.0.0.1:$PORT_ECTL" -object $DUR ctl stats)"
echo "$STATS" | grep -q '"durable": true'
echo "$STATS" | grep -Eq '"WALReplayed": [1-9]'

N_ACKED=$(wc -l < "$BIN/acked.txt")
echo "smoke_e2e: part 3 OK (SIGKILL after $((10 + N_ACKED)) acked appends; all survived restart)"

# ---- Part 4: self-healing — SIGKILL the mirror, cache re-parents -------------
PORT_NS2="${PORT_NS2:-7420}"
PORT_P="${PORT_P:-7421}"
PORT_M="${PORT_M:-7422}"
PORT_K="${PORT_K:-7423}"
PORT_KCTL="${PORT_KCTL:-7424}"
NS2="127.0.0.1:$PORT_NS2"
HEAL=heal-doc
TTL=2s

"$BIN/globens" -listen "$NS2" -lease-ttl "$TTL" &
wait_port "$PORT_NS2"

# The tree: permanent publishes; the mirror replicates from the record; the
# cache is explicitly parented UNDER the mirror so the kill orphans it. All
# three heartbeat their contact leases; only the cache re-parents.
"$BIN/globed" -listen "127.0.0.1:$PORT_P" -nameserver "$NS2" -object $HEAL \
    -role permanent -strategy conference -session ryw -digest 100ms -lease-renew 500ms &
wait_port "$PORT_P"
"$BIN/globed" -listen "127.0.0.1:$PORT_M" -nameserver "$NS2" -object $HEAL \
    -role mirror -session ryw -digest 100ms -lease-renew 500ms &
MIR_PID=$!
wait_port "$PORT_M"
"$BIN/globed" -listen "127.0.0.1:$PORT_K" -control "127.0.0.1:$PORT_KCTL" \
    -nameserver "$NS2" -object $HEAL -role cache -parent "127.0.0.1:$PORT_M" \
    -strategy conference -session ryw -digest 100ms -reparent-after 3 -lease-renew 500ms &
wait_port "$PORT_K"
wait_port "$PORT_KCTL"

# Sanity before the kill: a put through resolution replicates down the tree.
WANT4='<h1>before the kill</h1>'
"$BIN/globectl" -nameserver "$NS2" -object $HEAL -client 401 -session ryw \
    put index.html "$WANT4"
GOT4=""
for _ in $(seq 1 50); do
    GOT4="$("$BIN/globectl" -store "127.0.0.1:$PORT_K" -object $HEAL -client 402 \
        get index.html 2>/dev/null || true)"
    [ "$GOT4" = "$WANT4" ] && break
    sleep 0.1
done
if [ "$GOT4" != "$WANT4" ]; then
    echo "smoke_e2e: FAIL: pre-kill cache read $(printf %q "$GOT4"), want $(printf %q "$WANT4")" >&2
    exit 1
fi

kill -9 "$MIR_PID"

# The orphaned cache must notice the silence and re-parent (3 missed 100ms
# digests, then the re-subscribe handshake at the permanent store).
REPARENTED=0
for _ in $(seq 1 100); do
    if "$BIN/globectl" -ctl "127.0.0.1:$PORT_KCTL" -object $HEAL ctl stats 2>/dev/null \
        | grep -Eq '"ReparentsDone": [1-9]'; then
        REPARENTED=1; break
    fi
    sleep 0.1
done
if [ "$REPARENTED" != 1 ]; then
    echo "smoke_e2e: FAIL: cache never re-parented after the mirror SIGKILL" >&2
    exit 1
fi

# The dead mirror must expire out of resolution within one lease TTL (plus
# sweep jitter): poll for twice the TTL, then assert it is gone. A record
# is only trusted when it still lists the (live) permanent store — an empty
# or failed resolve must not read as "expired".
GONE=0
for _ in $(seq 1 40); do
    REC="$("$BIN/globectl" -nameserver "$NS2" -object $HEAL resolve 2>/dev/null || true)"
    if echo "$REC" | grep -q "127.0.0.1:$PORT_P" \
        && ! echo "$REC" | grep -q "127.0.0.1:$PORT_M"; then
        GONE=1; break
    fi
    sleep 0.1
done
if [ "$GONE" != 1 ]; then
    echo "smoke_e2e: FAIL: dead mirror still resolvable after 2x lease TTL" >&2
    "$BIN/globectl" -nameserver "$NS2" -object $HEAL resolve >&2 || true
    exit 1
fi

# The healed tree keeps serving: a fresh put through resolution (which now
# picks the cache, forwarding up its NEW parent) must be readable everywhere.
# Same client identity — the conference strategy is single-writer.
WANT5='<h1>after the heal</h1>'
"$BIN/globectl" -nameserver "$NS2" -object $HEAL -client 401 -session ryw \
    put healed.html "$WANT5"
GOT5=""
for _ in $(seq 1 50); do
    GOT5="$("$BIN/globectl" -store "127.0.0.1:$PORT_P" -object $HEAL -client 404 \
        get healed.html 2>/dev/null || true)"
    [ "$GOT5" = "$WANT5" ] && break
    sleep 0.1
done
if [ "$GOT5" != "$WANT5" ]; then
    echo "smoke_e2e: FAIL: post-heal read at the permanent store $(printf %q "$GOT5"), want $(printf %q "$WANT5")" >&2
    exit 1
fi

# The daemon's naming counters prove the lease heartbeat actually ran.
"$BIN/globectl" -ctl "127.0.0.1:$PORT_KCTL" -object $HEAL ctl stats \
    | grep -Eq '"lease_renewals_sent": [1-9]'

echo "smoke_e2e: part 4 OK (mirror SIGKILLed; cache re-parented, lease expired, writes kept flowing)"

# ---- Part 5: observability — /metrics, propagation lag, ctl metrics/trace ----
PORT_R="${PORT_R:-7430}"
PORT_RM="${PORT_RM:-7431}"
PORT_S="${PORT_S:-7432}"
PORT_T="${PORT_T:-7433}"
PORT_TM="${PORT_TM:-7434}"
PORT_TCTL="${PORT_TCTL:-7435}"
DATA2="$BIN/data_obs"
OBS=obs-doc

# The root is durable (so the WAL series have samples) and scrapable; the
# cache is scrapable, traced, and carries a control port for the daemon-wide
# ops. The mirror in the middle just relays.
"$BIN/globed" -listen "127.0.0.1:$PORT_R" -object $OBS -role permanent \
    -strategy conference -session ryw -id 21 -digest 100ms \
    -data-dir "$DATA2" -fsync always -metrics-addr "127.0.0.1:$PORT_RM" &
wait_port "$PORT_R"
"$BIN/globed" -listen "127.0.0.1:$PORT_S" -object $OBS -role mirror \
    -parent "127.0.0.1:$PORT_R" -strategy conference -session ryw -id 22 -digest 100ms &
wait_port "$PORT_S"
"$BIN/globed" -listen "127.0.0.1:$PORT_T" -control "127.0.0.1:$PORT_TCTL" \
    -object $OBS -role cache -parent "127.0.0.1:$PORT_S" \
    -strategy conference -session ryw -id 23 -digest 100ms \
    -metrics-addr "127.0.0.1:$PORT_TM" -trace-events 256 &
wait_port "$PORT_T"
wait_port "$PORT_TCTL"

for i in $(seq 1 15); do
    "$BIN/globectl" -store "127.0.0.1:$PORT_R" -object $OBS -client 501 \
        append feed.html "F$i;" >/dev/null
done
# Wait until the write stream has propagated down to the cache…
GOT6=""
for _ in $(seq 1 50); do
    GOT6="$("$BIN/globectl" -store "127.0.0.1:$PORT_T" -object $OBS -client 502 \
        get feed.html 2>/dev/null || true)"
    printf '%s' "$GOT6" | grep -q "F15;" && break
    sleep 0.1
done
if ! printf '%s' "$GOT6" | grep -q "F15;"; then
    echo "smoke_e2e: FAIL: cache never converged for the metrics scrape" >&2
    exit 1
fi

# …then the scrapes are deterministic. Root: WAL series must be non-empty
# (15 appends, each behind an fsync barrier).
ROOT_METRICS="$(curl -sf "http://127.0.0.1:$PORT_RM/metrics")"
echo "$ROOT_METRICS" | grep -Eq '^globe_wal_appends_total\{[^}]*\} [1-9]'
echo "$ROOT_METRICS" | grep -Eq '^globe_wal_sync_seconds_count\{[^}]*\} [1-9]'
echo "$ROOT_METRICS" | grep -q '^globe_propagation_lag_seconds_bucket'

# Cache: the per-replica propagation-lag histogram must have recorded every
# applied update, and the transport counters must show real TCP traffic.
CACHE_METRICS="$(curl -sf "http://127.0.0.1:$PORT_TM/metrics")"
echo "$CACHE_METRICS" | grep -Eq '^globe_propagation_lag_seconds_count\{[^}]*object="obs-doc"[^}]*\} [1-9]'
echo "$CACHE_METRICS" | grep -Eq '^globe_transport_frames_recv_total\{[^}]*fabric="tcpnet"[^}]*\} [1-9]'

# The daemon-wide control ops return the same registry and the lifecycle
# trace (no -object needed).
"$BIN/globectl" -ctl "127.0.0.1:$PORT_TCTL" ctl metrics \
    | grep -q '"globe_propagation_lag_seconds"'
"$BIN/globectl" -ctl "127.0.0.1:$PORT_TCTL" ctl trace | grep -q 'update_applied'

echo "smoke_e2e: part 5 OK (non-empty WAL and propagation-lag series over /metrics; ctl metrics/trace)"

echo "smoke_e2e: OK (legacy pair + name-server topology + SIGKILL durability + self-healing tree + observability)"
