#!/usr/bin/env bash
# smoke_e2e.sh — end-to-end smoke of the real-TCP deployment: build globed
# and globectl, start a permanent store and a cache daemon (two processes),
# round-trip a put at the server and a read-your-writes get at the cache via
# globectl, and check the content survives. Exercises the same public-API
# path the webobj cross-fabric tests assert in-process.
set -euo pipefail
cd "$(dirname "$0")/.."

PORT_A="${PORT_A:-7401}"
PORT_B="${PORT_B:-7402}"
OBJ=smoke-doc
BIN="$(mktemp -d)"
trap 'kill $(jobs -p) 2>/dev/null || true; rm -rf "$BIN"' EXIT

go build -o "$BIN/globed" ./cmd/globed
go build -o "$BIN/globectl" ./cmd/globectl

"$BIN/globed" -listen "127.0.0.1:$PORT_A" -object $OBJ -role permanent \
    -strategy conference -id 1 &
"$BIN/globed" -listen "127.0.0.1:$PORT_B" -object $OBJ -role cache \
    -parent "127.0.0.1:$PORT_A" -strategy conference -session ryw -id 2 &

# Wait for both daemons to accept connections.
for port in "$PORT_A" "$PORT_B"; do
    for _ in $(seq 1 50); do
        if (exec 3<>"/dev/tcp/127.0.0.1/$port") 2>/dev/null; then exec 3>&- || true; break; fi
        sleep 0.1
    done
done

WANT='<h1>smoke over TCP</h1>'
"$BIN/globectl" -store "127.0.0.1:$PORT_A" -object $OBJ -client 101 \
    put index.html "$WANT"

# The cache converges via the object's own replication protocol; a reader
# at the cache must see the page.
GOT=""
for _ in $(seq 1 50); do
    GOT="$("$BIN/globectl" -store "127.0.0.1:$PORT_B" -object $OBJ -client 102 \
        get index.html 2>/dev/null || true)"
    [ "$GOT" = "$WANT" ] && break
    sleep 0.1
done
if [ "$GOT" != "$WANT" ]; then
    echo "smoke_e2e: FAIL: cache read $(printf %q "$GOT"), want $(printf %q "$WANT")" >&2
    exit 1
fi

# Page listing works at the cache too.
"$BIN/globectl" -store "127.0.0.1:$PORT_B" -object $OBJ pages | grep -qx index.html

echo "smoke_e2e: OK (put at 127.0.0.1:$PORT_A, replicated get at 127.0.0.1:$PORT_B)"
