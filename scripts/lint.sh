#!/usr/bin/env bash
# lint.sh — the exact lint gate CI runs, for local use. globelint (the
# domain analyzers in internal/lint) is always on and blocking; staticcheck
# and govulncheck run only when the binaries are present (CI installs them;
# the offline dev container may not have them).
set -u
cd "$(dirname "$0")/.."

fail=0

echo "== globelint =="
go run ./cmd/globelint ./... || fail=1

if command -v staticcheck >/dev/null 2>&1; then
    echo "== staticcheck =="
    staticcheck ./... || fail=1
else
    echo "== staticcheck == (not installed, skipped)"
fi

if command -v govulncheck >/dev/null 2>&1; then
    echo "== govulncheck =="
    govulncheck ./... || fail=1
else
    echo "== govulncheck == (not installed, skipped)"
fi

exit $fail
