# Developer entry points. CI runs the same commands (see
# .github/workflows/ci.yml), so a green `make check` locally means a green
# pipeline.

GO ?= go

.PHONY: build test race lint fix check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The chaos schedules run for minutes; the race gate covers everything else
# (same exclusion CI uses).
race:
	$(GO) test -race -skip 'Chaos' ./...

lint:
	./scripts/lint.sh

# Apply the mechanical fixes (clockdet clock rewrites, aliasretain clone
# insertion), then show what is left for a human.
fix:
	$(GO) run ./cmd/globelint -fix ./...

check: build test lint
