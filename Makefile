# Developer entry points. CI runs the same commands (see
# .github/workflows/ci.yml), so a green `make check` locally means a green
# pipeline.

GO ?= go

.PHONY: build test race lint fix check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The chaos fault schedules run for minutes and CI races them in their own
# job; the race gate covers everything else, including the chaos package's
# fast checker tests (same exclusion CI uses).
race:
	$(GO) test -race -skip 'Convergence|CrashRestart|MirrorKill' ./...

lint:
	./scripts/lint.sh

# Apply the mechanical fixes (clockdet clock rewrites, aliasretain clone
# insertion), then show what is left for a human.
fix:
	$(GO) run ./cmd/globelint -fix ./...

check: build test lint
