package nameserv

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
	"repro/internal/ids"
	"repro/internal/msg"
	"repro/internal/naming"
	"repro/internal/transport"
)

// ErrTimeout reports a name-server call that received no reply in time.
var ErrTimeout = errors.New("nameserv: call timed out")

// ErrClosed reports use of a closed client.
var ErrClosed = errors.New("nameserv: client closed")

// NotFoundError reports a resolve for an object the name service does not
// know.
type NotFoundError struct{ Object ids.ObjectID }

// Error implements error.
func (e *NotFoundError) Error() string {
	return fmt.Sprintf("nameserv: object %q not registered", e.Object)
}

// ClientConfig assembles a name-service client.
type ClientConfig struct {
	// Fabric mints the client's endpoint lazily (on first call), so
	// constructing a Client never fails; Name is the endpoint name hint.
	Fabric transport.Fabric
	Name   string
	// Servers lists name-server addresses, tried in order with failover.
	Servers []string
	// Timeout bounds each call (default 2s).
	Timeout time.Duration
	// CacheTTL bounds how long a resolved record is served from cache
	// before the next Resolve re-fetches (default 1s; negative disables
	// caching). Invalidation is eager on the client's own registrations
	// and on bind failures (webobj re-resolves through Invalidate).
	CacheTTL time.Duration
	// Clock supplies deadlines, retry backoff, and cache ages (default
	// clock.Real{}); tests drive TTL expiry with a clock.Fake.
	Clock clock.Clock
}

type cachedRecord struct {
	rec naming.Record
	at  time.Time
}

type idLease struct {
	next, end uint64
}

// Client talks to the name service: it is the networked implementation of
// the webobj Resolver seam. Safe for concurrent use.
type Client struct {
	cfg ClientConfig

	mu      sync.Mutex
	demux   *transport.Demux
	epErr   error
	cache   map[ids.ObjectID]cachedRecord
	clients idLease
	stores  idLease
	srvIdx  int // last server that answered; calls start here
	closed  bool

	// Liveness counters (see RenewContact / Stats).
	renewalsSent uint64
	lastExpired  uint64

	// Resolve cache counters (atomics: the hit path should not lengthen its
	// critical section for accounting, and misses may bypass the lock
	// entirely when caching is disabled).
	resolveHits   atomic.Uint64
	resolveMisses atomic.Uint64 // resolves answered by a server round trip
}

// NewClient creates a name-service client. The endpoint is created on
// first use, so this never touches the network.
func NewClient(cfg ClientConfig) *Client {
	if cfg.Name == "" {
		cfg.Name = "nsc"
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 2 * time.Second
	}
	if cfg.CacheTTL == 0 {
		cfg.CacheTTL = time.Second
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.Real{}
	}
	return &Client{
		cfg:   cfg,
		cache: make(map[ids.ObjectID]cachedRecord),
	}
}

// Close releases the client and its endpoint.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	d := c.demux
	c.mu.Unlock()
	if d != nil {
		return d.Close()
	}
	return nil
}

// ensureDemux lazily creates the endpoint and its reply demultiplexer.
func (c *Client) ensureDemux() (*transport.Demux, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClosed
	}
	if c.demux != nil || c.epErr != nil {
		return c.demux, c.epErr
	}
	if c.cfg.Fabric == nil || len(c.cfg.Servers) == 0 {
		c.epErr = errors.New("nameserv: client has no fabric or no servers configured")
		return nil, c.epErr
	}
	ep, err := c.cfg.Fabric.Endpoint(c.cfg.Name)
	if err != nil {
		c.epErr = err
		return nil, err
	}
	c.demux = transport.NewDemux(ep)
	return c.demux, nil
}

// errNotReady marks a server that answered StatusRetry: it is recovering
// state from its peers (a restarted instance, or a fresh cluster inside
// its grace window) and will serve shortly.
var errNotReady = errors.New("nameserv: server not ready")

// call performs one request/reply against the configured servers, failing
// over to the next server on timeout or send error. Servers answering
// "recovering" (StatusRetry) are retried with a short backoff within the
// call's overall timeout budget, so a restarting name service looks like
// latency, not an error.
func (c *Client) call(m *msg.Message) (*msg.Message, error) {
	d, err := c.ensureDemux()
	if err != nil {
		return nil, err
	}
	deadline := c.cfg.Clock.Now().Add(c.cfg.Timeout)
	var lastErr error
	for {
		c.mu.Lock()
		start := c.srvIdx
		c.mu.Unlock()
		retryable := false
		for attempt := 0; attempt < len(c.cfg.Servers); attempt++ {
			addr := c.cfg.Servers[(start+attempt)%len(c.cfg.Servers)]
			r, err := c.callOne(d, addr, m)
			if err == nil {
				c.mu.Lock()
				c.srvIdx = (start + attempt) % len(c.cfg.Servers)
				c.mu.Unlock()
				return r, nil
			}
			if errors.Is(err, errNotReady) {
				retryable = true
			}
			lastErr = err
		}
		if !retryable || !c.cfg.Clock.Now().Before(deadline) {
			return nil, lastErr
		}
		select {
		case <-c.cfg.Clock.After(10 * time.Millisecond):
		case <-d.Done():
			return nil, ErrClosed
		}
	}
}

// callOne performs one demuxed request and maps the name-service reply
// statuses onto errors.
func (c *Client) callOne(d *transport.Demux, addr string, m *msg.Message) (*msg.Message, error) {
	r, err := d.Call(addr, m, c.cfg.Timeout)
	if err != nil {
		if errors.Is(err, transport.ErrClosed) {
			return nil, ErrClosed
		}
		if errors.Is(err, transport.ErrTimeout) {
			return nil, fmt.Errorf("%w: %v", ErrTimeout, err)
		}
		return nil, err
	}
	switch r.Status {
	case msg.StatusOK:
		return r, nil
	case msg.StatusNotFound:
		return nil, &NotFoundError{Object: m.Object}
	case msg.StatusRetry:
		return nil, fmt.Errorf("%w: %s", errNotReady, r.Err)
	default:
		return nil, fmt.Errorf("nameserv: %s: %s", r.Status, r.Err)
	}
}

// Register publishes one contact point (and, when meta is non-zero, the
// object's record metadata) to the name service.
func (c *Client) Register(obj ids.ObjectID, e naming.Entry, meta naming.Meta) error {
	items := []Item{{Kind: itemEntry, Object: obj, Entry: e}}
	if meta.Sem != "" || meta.HasStrat || len(meta.Models) > 0 {
		items = append(items, Item{Kind: itemMeta, Object: obj, Meta: meta})
	}
	_, err := c.call(&msg.Message{
		Kind:    msg.KindNameRegister,
		Object:  obj,
		Payload: EncodeItems(items),
	})
	if err == nil {
		c.Invalidate(obj)
	}
	return err
}

// Deregister removes one contact point.
func (c *Client) Deregister(obj ids.ObjectID, addr string) error {
	_, err := c.call(&msg.Message{
		Kind:   msg.KindNameDeregister,
		Object: obj,
		Pages:  []string{addr},
	})
	if err == nil {
		c.Invalidate(obj)
	}
	return err
}

// Resolve fetches the object's name record, serving from the client cache
// within the TTL.
func (c *Client) Resolve(obj ids.ObjectID) (naming.Record, error) {
	if c.cfg.CacheTTL > 0 {
		c.mu.Lock()
		if e, ok := c.cache[obj]; ok && c.cfg.Clock.Now().Sub(e.at) < c.cfg.CacheTTL {
			rec := e.rec
			c.mu.Unlock()
			c.resolveHits.Add(1)
			return rec, nil
		}
		c.mu.Unlock()
	}
	c.resolveMisses.Add(1)
	r, err := c.call(&msg.Message{Kind: msg.KindNameResolve, Object: obj})
	if err != nil {
		return naming.Record{}, err
	}
	items, err := DecodeItems(r.Payload)
	if err != nil {
		return naming.Record{}, err
	}
	rec := recordFromItems(obj, r.GlobalSeq, items)
	if c.cfg.CacheTTL > 0 {
		c.mu.Lock()
		c.cache[obj] = cachedRecord{rec: rec, at: c.cfg.Clock.Now()}
		c.mu.Unlock()
	}
	return rec, nil
}

// Invalidate drops the cached record for obj; the next Resolve re-fetches.
// webobj calls it when a bind to a resolved contact point fails (the
// replica died or was re-registered elsewhere).
func (c *Client) Invalidate(obj ids.ObjectID) {
	c.mu.Lock()
	delete(c.cache, obj)
	c.mu.Unlock()
}

// Pick resolves obj and applies the deterministic default-replica choice.
func (c *Client) Pick(obj ids.ObjectID) (naming.Entry, bool) {
	rec, err := c.Resolve(obj)
	if err != nil {
		return naming.Entry{}, false
	}
	return naming.PickEntry(rec.Entries)
}

// RenewContact heartbeats every registration of one contact point: the name
// service re-stamps each live entry at addr, resetting its lease TTL. It
// returns how many entries the server renewed — zero means the lease
// already expired (or nothing was ever registered) and the caller should
// re-register its contact points.
func (c *Client) RenewContact(addr string) (uint64, error) {
	r, err := c.call(&msg.Message{
		Kind:  msg.KindNameLease,
		Pages: []string{addr},
		Inv:   msg.Invocation{Method: opRenewContact},
	})
	if err != nil {
		return 0, err
	}
	c.mu.Lock()
	c.renewalsSent++
	c.lastExpired = r.GlobalSeq // the server's lifetime expired-entry count
	c.mu.Unlock()
	return r.Write.Seq, nil
}

// ClientStats are the client-side liveness counters, surfaced through the
// daemons' control stats RPC.
type ClientStats struct {
	// LeaseRenewalsSent counts successful RenewContact round trips.
	LeaseRenewalsSent uint64 `json:"lease_renewals_sent"`
	// RecordsExpired is the answering server's lifetime expired-entry count
	// as of the last renewal reply.
	RecordsExpired uint64 `json:"records_expired"`
	// ResolveHits counts Resolve calls answered from the client cache
	// within the TTL; ResolveMisses counts the ones that cost a server
	// round trip (including every call when caching is disabled).
	ResolveHits   uint64 `json:"resolve_hits"`
	ResolveMisses uint64 `json:"resolve_misses"`
}

// Stats returns the liveness counters.
func (c *Client) Stats() ClientStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return ClientStats{
		LeaseRenewalsSent: c.renewalsSent,
		RecordsExpired:    c.lastExpired,
		ResolveHits:       c.resolveHits.Load(),
		ResolveMisses:     c.resolveMisses.Load(),
	}
}

// lease refills one identifier lease via the given lease op.
func (c *Client) lease(op uint16, l *idLease) (uint64, error) {
	c.mu.Lock()
	if l.next < l.end {
		id := l.next
		l.next++
		c.mu.Unlock()
		return id, nil
	}
	c.mu.Unlock()
	r, err := c.call(&msg.Message{Kind: msg.KindNameLease, Inv: msg.Invocation{Method: op}})
	if err != nil {
		return 0, err
	}
	start, span, err := DecodeLease(r.Payload)
	if err != nil || span == 0 {
		return 0, fmt.Errorf("nameserv: bad lease reply: %v", err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	l.next, l.end = start+1, start+span
	return start, nil
}

// NextClient allocates a globally unique client identifier from the
// client's current lease, refilling from the name server when exhausted.
func (c *Client) NextClient() (ids.ClientID, error) {
	id, err := c.lease(opLeaseClients, &c.clients)
	return ids.ClientID(id), err
}

// NextStore allocates a globally unique store identifier.
func (c *Client) NextStore() (ids.StoreID, error) {
	id, err := c.lease(opLeaseStores, &c.stores)
	return ids.StoreID(id), err
}

// ReserveClient pins a hand-chosen client identity at the name service.
func (c *Client) ReserveClient(id ids.ClientID) error {
	_, err := c.call(&msg.Message{
		Kind:   msg.KindNameLease,
		Client: id,
		Inv:    msg.Invocation{Method: opReserveClient},
	})
	return err
}

// ReserveStore pins a hand-chosen store identity at the name service.
func (c *Client) ReserveStore(id ids.StoreID) error {
	_, err := c.call(&msg.Message{
		Kind:  msg.KindNameLease,
		Store: id,
		Inv:   msg.Invocation{Method: opReserveStore},
	})
	return err
}

// ClientSeqFloor fetches the replicated write-sequence floor of a client
// identity (zero on any failure — the bound store's applied vector is the
// other, always-available half of the max()).
func (c *Client) ClientSeqFloor(id ids.ClientID) uint64 {
	r, err := c.call(&msg.Message{
		Kind:   msg.KindNameLease,
		Client: id,
		Inv:    msg.Invocation{Method: opQueryFloor},
	})
	if err != nil {
		return 0
	}
	return r.Write.Seq
}

// ReportClientSeq raises a client identity's write-sequence floor at the
// name service (called when a session using a pinned identity closes).
func (c *Client) ReportClientSeq(id ids.ClientID, seq uint64) {
	if seq == 0 {
		return
	}
	_, _ = c.call(&msg.Message{
		Kind:   msg.KindNameLease,
		Client: id,
		Write:  ids.WiD{Client: id, Seq: seq},
		Inv:    msg.Invocation{Method: opReportFloor},
	})
}
