package nameserv

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/ids"
	"repro/internal/naming"
	"repro/internal/replication"
	"repro/internal/strategy"
	"repro/internal/transport/memnet"
)

func newServerT(t *testing.T, net *memnet.Network, name string, idx, total int, peers []string, sync time.Duration) *Server {
	t.Helper()
	s, err := NewServer(Config{
		Fabric: net, Name: name, Index: idx, Total: total,
		Peers: peers, SyncInterval: sync,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s
}

func newClientT(t *testing.T, net *memnet.Network, name string, servers ...string) *Client {
	t.Helper()
	c := NewClient(ClientConfig{Fabric: net, Name: name, Servers: servers, Timeout: 2 * time.Second})
	t.Cleanup(func() { _ = c.Close() })
	return c
}

// TestRegisterResolveRoundTrip checks the basic record life cycle: register
// entries and metadata, resolve the merged record, deregister, resolve
// again.
func TestRegisterResolveRoundTrip(t *testing.T) {
	net := memnet.New()
	defer net.Close()
	srv := newServerT(t, net, "ns", 1, 1, nil, -1)
	cl := newClientT(t, net, "c1", srv.Addr())

	strat := strategy.Conference(50 * time.Millisecond)
	meta := naming.Meta{Sem: "webdoc", Strat: strat, HasStrat: true, Models: []string{"ryw", "mr"}}
	if err := cl.Register("doc", naming.Entry{Addr: "perm", Store: 1, Role: replication.RolePermanent}, meta); err != nil {
		t.Fatal(err)
	}
	if err := cl.Register("doc", naming.Entry{Addr: "cache", Store: 2, Role: replication.RoleClientInitiated}, naming.Meta{}); err != nil {
		t.Fatal(err)
	}

	rec, err := cl.Resolve("doc")
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Entries) != 2 {
		t.Fatalf("got %d entries, want 2: %+v", len(rec.Entries), rec.Entries)
	}
	if rec.Meta.Sem != "webdoc" || !rec.Meta.HasStrat {
		t.Fatalf("meta lost: %+v", rec.Meta)
	}
	if rec.Meta.Strat != strat {
		t.Fatalf("strategy did not round-trip: got %v want %v", rec.Meta.Strat, strat)
	}
	if got := rec.Meta.Models; len(got) != 2 || got[0] != "ryw" || got[1] != "mr" {
		t.Fatalf("models did not round-trip: %v", got)
	}
	if e, ok := naming.PickEntry(rec.Entries); !ok || e.Addr != "cache" {
		t.Fatalf("pick chose %+v, want the cache (lowest layer)", e)
	}

	// Deregister tombstones the entry; the record no longer lists it.
	if err := cl.Deregister("doc", "cache"); err != nil {
		t.Fatal(err)
	}
	rec, err = cl.Resolve("doc")
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Entries) != 1 || rec.Entries[0].Addr != "perm" {
		t.Fatalf("tombstone not applied: %+v", rec.Entries)
	}

	if _, err := cl.Resolve("nope"); err == nil {
		t.Fatalf("resolving an unknown object succeeded")
	}
}

// TestRecordCacheInvalidation checks that the client serves cached records
// within the TTL and that Invalidate forces a re-fetch.
func TestRecordCacheInvalidation(t *testing.T) {
	net := memnet.New()
	defer net.Close()
	srv := newServerT(t, net, "ns", 1, 1, nil, -1)
	cl := NewClient(ClientConfig{
		Fabric: net, Name: "c1", Servers: []string{srv.Addr()},
		Timeout: 2 * time.Second, CacheTTL: time.Hour, // never expires in-test
	})
	defer cl.Close()

	other := newClientT(t, net, "c2", srv.Addr())
	if err := cl.Register("doc", naming.Entry{Addr: "a", Store: 1, Role: replication.RolePermanent}, naming.Meta{Sem: "webdoc"}); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Resolve("doc"); err != nil {
		t.Fatal(err)
	}
	// A registration through ANOTHER client is invisible until invalidation
	// (the cache is per-process; re-registration elsewhere is detected at
	// bind failure, which calls Invalidate).
	if err := other.Register("doc", naming.Entry{Addr: "b", Store: 2, Role: replication.RolePermanent}, naming.Meta{}); err != nil {
		t.Fatal(err)
	}
	rec, err := cl.Resolve("doc")
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Entries) != 1 {
		t.Fatalf("cache returned %d entries, want the stale 1", len(rec.Entries))
	}
	cl.Invalidate("doc")
	rec, err = cl.Resolve("doc")
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Entries) != 2 {
		t.Fatalf("after invalidation got %d entries, want 2", len(rec.Entries))
	}
}

// TestLeaseUniqueUnderConcurrentDaemons hammers one name server with many
// concurrent allocators and checks every leased identifier is unique —
// the globally-unique-identity guarantee daemons rely on.
func TestLeaseUniqueUnderConcurrentDaemons(t *testing.T) {
	net := memnet.New()
	defer net.Close()
	srv := newServerT(t, net, "ns", 1, 1, nil, -1)

	const daemons = 8
	const perDaemon = 200
	var mu sync.Mutex
	seen := make(map[ids.ClientID]string, daemons*perDaemon)
	var wg sync.WaitGroup
	errCh := make(chan error, daemons)
	for d := 0; d < daemons; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			cl := NewClient(ClientConfig{Fabric: net, Name: fmt.Sprintf("d%d", d), Servers: []string{srv.Addr()}})
			defer cl.Close()
			for i := 0; i < perDaemon; i++ {
				id, err := cl.NextClient()
				if err != nil {
					errCh <- err
					return
				}
				mu.Lock()
				if prev, dup := seen[id]; dup {
					mu.Unlock()
					errCh <- fmt.Errorf("client ID %d leased to both %s and d%d", id, prev, d)
					return
				}
				seen[id] = fmt.Sprintf("d%d", d)
				mu.Unlock()
			}
		}(d)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if len(seen) != daemons*perDaemon {
		t.Fatalf("got %d unique IDs, want %d", len(seen), daemons*perDaemon)
	}
}

// TestLeaseStripingAcrossPeers checks that two name servers allocating
// independently (no sync at all) still hand out disjoint identifier
// ranges — uniqueness must not depend on anti-entropy.
func TestLeaseStripingAcrossPeers(t *testing.T) {
	net := memnet.New()
	defer net.Close()
	s1 := newServerT(t, net, "ns1", 1, 2, nil, -1)
	s2 := newServerT(t, net, "ns2", 2, 2, nil, -1)
	c1 := newClientT(t, net, "c1", s1.Addr())
	c2 := newClientT(t, net, "c2", s2.Addr())

	seen := make(map[ids.StoreID]int)
	for i := 0; i < 300; i++ {
		a, err := c1.NextStore()
		if err != nil {
			t.Fatal(err)
		}
		b, err := c2.NextStore()
		if err != nil {
			t.Fatal(err)
		}
		if prev, dup := seen[a]; dup {
			t.Fatalf("store ID %d handed out twice (server %d then 1)", a, prev)
		}
		seen[a] = 1
		if prev, dup := seen[b]; dup {
			t.Fatalf("store ID %d handed out twice (server %d then 2)", b, prev)
		}
		seen[b] = 2
	}
}

// TestDirectoryAntiEntropy checks that records registered at one name
// server become resolvable through its peer via the digest/sync cycle, and
// that a concurrent registration of different entries at both merges
// rather than one side winning wholesale.
func TestDirectoryAntiEntropy(t *testing.T) {
	net := memnet.New()
	defer net.Close()
	// Endpoint names are the addresses on memnet, so peers can be
	// configured by name before the servers exist.
	s1 := newServerT(t, net, "ns1", 1, 2, []string{"ns2"}, 20*time.Millisecond)
	s2 := newServerT(t, net, "ns2", 2, 2, []string{"ns1"}, 20*time.Millisecond)
	c1 := newClientT(t, net, "c1", s1.Addr())
	c2 := newClientT(t, net, "c2", s2.Addr())

	if err := c1.Register("doc", naming.Entry{Addr: "perm", Store: 1, Role: replication.RolePermanent},
		naming.Meta{Sem: "webdoc"}); err != nil {
		t.Fatal(err)
	}
	if err := c2.Register("doc", naming.Entry{Addr: "mirror", Store: 2, Role: replication.RoleObjectInitiated},
		naming.Meta{}); err != nil {
		t.Fatal(err)
	}
	// Both servers must converge on the two-entry record.
	deadline := time.Now().Add(5 * time.Second)
	for {
		r1, ok1 := s1.RecordSnapshot("doc")
		r2, ok2 := s2.RecordSnapshot("doc")
		if ok1 && ok2 && len(r1.Entries) == 2 && len(r2.Entries) == 2 &&
			r1.Meta.Sem == "webdoc" && r2.Meta.Sem == "webdoc" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("directories did not converge: s1=%+v s2=%+v", r1, r2)
		}
		time.Sleep(2 * time.Millisecond)
	}
	// A deregistration at one peer retires the entry at the other.
	if err := c2.Deregister("doc", "perm"); err != nil {
		t.Fatal(err)
	}
	for {
		r1, _ := s1.RecordSnapshot("doc")
		if len(r1.Entries) == 1 && r1.Entries[0].Addr == "mirror" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("tombstone did not replicate: s1=%+v", r1)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestFloorReplication checks that a write-sequence floor reported at one
// name server is served by its peer after anti-entropy — a returning
// client may bind through a different server than it reported to.
func TestFloorReplication(t *testing.T) {
	net := memnet.New()
	defer net.Close()
	s1 := newServerT(t, net, "ns1", 1, 2, []string{"ns2"}, 20*time.Millisecond)
	s2 := newServerT(t, net, "ns2", 2, 2, []string{"ns1"}, 20*time.Millisecond)
	c1 := newClientT(t, net, "c1", s1.Addr())
	c2 := newClientT(t, net, "c2", s2.Addr())

	c1.ReportClientSeq(77, 41)
	c1.ReportClientSeq(77, 43)
	c1.ReportClientSeq(77, 42) // floors max-merge; lower reports never regress
	if got := c1.ClientSeqFloor(77); got != 43 {
		t.Fatalf("floor at reporting server = %d, want 43", got)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if got := c2.ClientSeqFloor(77); got == 43 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("floor did not replicate: peer has %d, want 43", s2.FloorSnapshot(77))
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestItemCodecRoundTrip round-trips every item kind through the sync wire.
func TestItemCodecRoundTrip(t *testing.T) {
	strat := strategy.Whiteboard()
	in := []Item{
		{Kind: itemEntry, Object: "o1", Entry: naming.Entry{Addr: "a:1", Store: 9, Role: replication.RoleObjectInitiated},
			Dead: true, Stamp: Stamp{Origin: 2, Seq: 7}},
		{Kind: itemMeta, Object: "o2", Meta: naming.Meta{Sem: "applog", Strat: strat, HasStrat: true, Models: []string{"wfr"}},
			Stamp: Stamp{Origin: 1, Seq: 3}},
		{Kind: itemFloor, Client: 12, FloorSeq: 99, Stamp: Stamp{Origin: 3, Seq: 11}},
	}
	out, err := DecodeItems(EncodeItems(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("got %d items, want %d", len(out), len(in))
	}
	if out[0].Entry != in[0].Entry || !out[0].Dead || out[0].Stamp != in[0].Stamp || out[0].Object != "o1" {
		t.Fatalf("entry item: %+v", out[0])
	}
	if out[1].Meta.Sem != "applog" || !out[1].Meta.HasStrat || out[1].Meta.Strat != strat ||
		len(out[1].Meta.Models) != 1 || out[1].Meta.Models[0] != "wfr" {
		t.Fatalf("meta item: %+v", out[1])
	}
	if out[2].Client != 12 || out[2].FloorSeq != 99 {
		t.Fatalf("floor item: %+v", out[2])
	}
	// Corrupt counts must not panic or over-allocate.
	if _, err := DecodeItems([]byte{0xff, 0xff, 0x01}); err == nil {
		t.Fatalf("corrupt payload decoded")
	}
}

// TestAntiEntropySurvivesLostPushes registers many records through one of
// two peers over a link that drops half the frames: the contiguous
// per-origin coverage floors must keep re-shipping past any lost push or
// sync until both directories converge — a max-based digest would jump the
// holes and hide them forever.
func TestAntiEntropySurvivesLostPushes(t *testing.T) {
	net := memnet.New(memnet.WithSeed(3))
	defer net.Close()
	net.SetLinkBoth("ns1", "ns2", memnet.LinkProfile{
		Latency: 100 * time.Microsecond,
		Jitter:  300 * time.Microsecond,
		Loss:    0.5,
	})
	s1 := newServerT(t, net, "ns1", 1, 2, []string{"ns2"}, 15*time.Millisecond)
	s2 := newServerT(t, net, "ns2", 2, 2, []string{"ns1"}, 15*time.Millisecond)
	c1 := newClientT(t, net, "c1", s1.Addr())

	const records = 40
	for i := 0; i < records; i++ {
		obj := ids.ObjectID(fmt.Sprintf("lossy-%d", i))
		if err := c1.Register(obj, naming.Entry{Addr: fmt.Sprintf("a%d", i), Store: ids.StoreID(i + 1), Role: replication.RolePermanent},
			naming.Meta{Sem: "webdoc"}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for i := 0; i < records; i++ {
		obj := ids.ObjectID(fmt.Sprintf("lossy-%d", i))
		for {
			if rec, ok := s2.RecordSnapshot(obj); ok && len(rec.Entries) == 1 && rec.Meta.Sem == "webdoc" {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("record %s never reached the peer through 50%% loss", obj)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
}

// TestPeerRestartRecoversCursors restarts one of two naming peers and
// checks the two in-memory cursors that must survive via replication: the
// lease-range cursor (a restarted server must not re-issue identifier
// ranges daemons already hold) and the item-seq counter (items originated
// after the restart must still replicate — a reset counter would stamp
// them below the peers' coverage floor and anti-entropy would never ship
// them).
func TestPeerRestartRecoversCursors(t *testing.T) {
	net := memnet.New(memnet.WithSeed(4))
	defer net.Close()
	s1 := newServerT(t, net, "ns1", 1, 2, []string{"ns2"}, 10*time.Millisecond)
	_ = s1
	s2, err := NewServer(Config{
		Fabric: net, Name: "ns2", Index: 2, Total: 2,
		Peers: []string{"ns1"}, SyncInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	c2 := newClientT(t, net, "c2", "ns2")

	// Pre-restart: two leased store ranges and one record via s2.
	seen := make(map[ids.StoreID]bool)
	for i := 0; i < 2*int(DefaultSpan); i++ {
		id, err := c2.NextStore()
		if err != nil {
			t.Fatal(err)
		}
		seen[id] = true
	}
	if err := c2.Register("restart-doc", naming.Entry{Addr: "pre", Store: 1, Role: replication.RolePermanent},
		naming.Meta{Sem: "webdoc"}); err != nil {
		t.Fatal(err)
	}
	// Let the cursors and items replicate to s1, then kill s2.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, ok := s1.RecordSnapshot("restart-doc"); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pre-restart state never replicated to the peer")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart s2 under the same identity. It must recover its cursors from
	// s1 before serving (readiness gate).
	s2b, err := NewServer(Config{
		Fabric: net, Name: "ns2", Index: 2, Total: 2,
		Peers: []string{"ns1"}, SyncInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s2b.Close()

	// Post-restart leases must not collide with pre-restart ones.
	for i := 0; i < int(DefaultSpan); i++ {
		id, err := c2.NextStore()
		if err != nil {
			t.Fatal(err)
		}
		if seen[id] {
			t.Fatalf("store ID %d re-issued after server restart", id)
		}
		seen[id] = true
	}
	// Post-restart registrations must still replicate (item seq resumed
	// past the pre-restart stream).
	if err := c2.Register("restart-doc", naming.Entry{Addr: "post", Store: 2, Role: replication.RoleObjectInitiated},
		naming.Meta{}); err != nil {
		t.Fatal(err)
	}
	for {
		if rec, ok := s1.RecordSnapshot("restart-doc"); ok && len(rec.Entries) == 2 {
			break
		}
		if time.Now().After(deadline) {
			rec, _ := s1.RecordSnapshot("restart-doc")
			t.Fatalf("post-restart registration never replicated: peer has %+v", rec)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestSnapshotDuringCloseDoesNotHang races RecordSnapshot against Close;
// a posted-but-never-executed closure must not block the caller.
func TestSnapshotDuringCloseDoesNotHang(t *testing.T) {
	net := memnet.New()
	defer net.Close()
	srv, err := NewServer(Config{Fabric: net, Name: "ns", SyncInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 1000; i++ {
			srv.RecordSnapshot("x")
			srv.FloorSnapshot(1)
		}
	}()
	time.Sleep(time.Millisecond)
	_ = srv.Close()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatalf("snapshot call hung across Close")
	}
}

// TestLeaseExpiryRetiresSilentContact is the contact-point liveness
// contract: with a LeaseTTL configured, a registration that stops renewing
// disappears from resolution within roughly one lease period, while a
// renewed one stays; a renewal for an already-expired contact reports zero
// so the daemon knows to re-register.
func TestLeaseExpiryRetiresSilentContact(t *testing.T) {
	net := memnet.New()
	defer net.Close()
	ttl := 200 * time.Millisecond
	srv, err := NewServer(Config{Fabric: net, Name: "ns", SyncInterval: -1, LeaseTTL: ttl})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl := newClientT(t, net, "c1", srv.Addr())

	if err := cl.Register("doc", naming.Entry{Addr: "live", Store: 1, Role: replication.RolePermanent}, naming.Meta{}); err != nil {
		t.Fatal(err)
	}
	if err := cl.Register("doc", naming.Entry{Addr: "dead", Store: 2, Role: replication.RoleObjectInitiated}, naming.Meta{}); err != nil {
		t.Fatal(err)
	}
	// The live daemon heartbeats well inside the TTL; the dead one is silent.
	stop := time.Now().Add(4 * ttl)
	for time.Now().Before(stop) {
		n, err := cl.RenewContact("live")
		if err != nil {
			t.Fatal(err)
		}
		if n != 1 {
			t.Fatalf("renewed %d entries at live, want 1", n)
		}
		time.Sleep(ttl / 4)
	}
	rec, err := cl.Resolve("doc")
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Entries) != 1 || rec.Entries[0].Addr != "live" {
		t.Fatalf("after expiry: %+v, want only the renewed contact", rec.Entries)
	}
	if got := srv.ExpiredSnapshot(); got < 1 {
		t.Fatalf("ExpiredSnapshot = %d, want >= 1", got)
	}
	// A heartbeat from the expired contact renews nothing: the daemon must
	// re-register.
	if n, err := cl.RenewContact("dead"); err != nil || n != 0 {
		t.Fatalf("renew of expired contact: n=%d err=%v, want 0, nil", n, err)
	}
	st := cl.Stats()
	if st.LeaseRenewalsSent == 0 || st.RecordsExpired < 1 {
		t.Fatalf("client liveness stats: %+v", st)
	}
	// Re-registration resurrects the contact point (fresh lease).
	if err := cl.Register("doc", naming.Entry{Addr: "dead", Store: 2, Role: replication.RoleObjectInitiated}, naming.Meta{}); err != nil {
		t.Fatal(err)
	}
	cl.Invalidate("doc")
	rec, err = cl.Resolve("doc")
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Entries) != 2 {
		t.Fatalf("re-registration after expiry: %+v", rec.Entries)
	}
}

// TestLeaseExpiryReplicatesToPeers: an expiry tombstone originated by one
// naming peer must retire the entry at the other, exactly like an explicit
// deregistration.
func TestLeaseExpiryReplicatesToPeers(t *testing.T) {
	net := memnet.New()
	defer net.Close()
	ttl := 200 * time.Millisecond
	mk := func(name string, idx int, peer string) *Server {
		s, err := NewServer(Config{
			Fabric: net, Name: name, Index: idx, Total: 2,
			Peers: []string{peer}, SyncInterval: 20 * time.Millisecond, LeaseTTL: ttl,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = s.Close() })
		return s
	}
	s1 := mk("ns1", 1, "ns2")
	s2 := mk("ns2", 2, "ns1")
	c1 := newClientT(t, net, "c1", s1.Addr())

	if err := c1.Register("doc", naming.Entry{Addr: "ghost", Store: 3, Role: replication.RoleObjectInitiated}, naming.Meta{}); err != nil {
		t.Fatal(err)
	}
	// Wait for the entry to reach s2, then for expiry to retire it there.
	deadline := time.Now().Add(5 * time.Second)
	for {
		r2, ok := s2.RecordSnapshot("doc")
		if ok && len(r2.Entries) == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("entry never replicated: %+v", r2)
		}
		time.Sleep(2 * time.Millisecond)
	}
	for {
		_, ok1 := s1.RecordSnapshot("doc")
		_, ok2 := s2.RecordSnapshot("doc")
		if !ok1 && !ok2 {
			break // both servers retired the silent contact
		}
		if time.Now().After(deadline) {
			t.Fatalf("expiry did not retire the entry everywhere")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
