package nameserv

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/ids"
	"repro/internal/msg"
	"repro/internal/naming"
	"repro/internal/transport"
)

// Lease-space layout: leased identifier ranges start above these bases so
// hand-pinned IDs (small numbers chosen by operators and tests) and leased
// IDs never collide. LeaseSpan identifiers are handed out per lease.
const (
	ClientLeaseBase = 1 << 16
	StoreLeaseBase  = 1 << 12
	DefaultSpan     = 64
)

// Config assembles a name server.
type Config struct {
	// Fabric mints the server's endpoint; Name is the endpoint name hint
	// (for TCP fabrics, "ns/<host:port>" pins the listen address).
	Fabric transport.Fabric
	Name   string
	// Index/Total place this server in the naming peer group for lease
	// striping: server Index of Total (1-based) allocates only the ranges
	// whose index ≡ Index-1 (mod Total). Zero values mean a single server.
	Index, Total int
	// Peers lists the other name servers' addresses for directory
	// anti-entropy.
	Peers []string
	// SyncInterval is the peer digest period (default 500ms; negative
	// disables anti-entropy — single-server deployments pay nothing).
	SyncInterval time.Duration
	// LeaseSpan is the number of identifiers per lease (default 64).
	LeaseSpan uint64
	// LeaseTTL makes registrations renewable leases: a contact point whose
	// entries are not renewed (opRenewContact) within the TTL is expired —
	// tombstoned exactly like a deregistration and replicated to peers, so
	// resolution stops returning dead replicas within one lease period.
	// Zero disables expiry (the default; registrations live forever).
	LeaseTTL time.Duration
	Clock    clock.Clock
}

// entryState is one contact point with its replication stamp. seen is the
// local wall time the entry was last applied or renewed: every server runs
// its own expiry clock against it, and renewals replicate as re-stamped
// entry items that refresh seen wherever they apply.
type entryState struct {
	e     naming.Entry
	dead  bool
	stamp Stamp
	seen  time.Time
}

// objState is the directory's record of one object.
type objState struct {
	entries   map[string]*entryState // by address
	meta      naming.Meta
	metaStamp Stamp
	hasMeta   bool
	version   uint64 // bumped on every applied change; clients cache against it
}

// floorState is one client identity's replicated write-sequence floor.
type floorState struct {
	seq   uint64
	stamp Stamp
}

// originState tracks how much of one origin's contiguous item stream this
// server has: floor is the highest seq below which EVERY item was applied;
// ahead holds applied seqs above a hole. The advertised digest carries
// floors, so a lost item pins the floor and peers keep re-shipping the
// tail until the hole fills — exact gap detection, the property a max-based
// vector cannot give (see Stamp).
type originState struct {
	floor uint64
	ahead map[uint64]bool
}

// leaseState is one origin's replicated allocation cursor for one lease
// kind (next unallocated range index). Replicating it lets a restarted
// naming peer recover where it left off from its peers instead of
// re-issuing ranges daemons already hold.
type leaseState struct {
	next  uint64
	stamp Stamp
}

// Server is a networked naming/location service instance. All state is
// confined to the event loop goroutine.
type Server struct {
	cfg  Config
	self uint32
	ep   transport.Endpoint

	events  chan func()
	done    chan struct{}
	stopped chan struct{} // closed when the event loop exits (Close OR endpoint death)
	wg      sync.WaitGroup
	mu      sync.Mutex
	closed  bool

	// Event-loop state.
	dir     map[ids.ObjectID]*objState
	floors  map[ids.ClientID]*floorState
	origins map[uint32]*originState
	lamport uint64 // LWW clock, witnessed across servers
	itemSeq uint64 // own contiguous item counter (recovered from peers on restart)

	// leases maps (origin, lease kind) → that origin's allocation cursor.
	leases map[uint32]map[ids.ClientID]*leaseState

	pinnedClients map[ids.ClientID]bool
	pinnedStores  map[ids.StoreID]bool

	// ready gates the serving RPCs: a server with peers answers
	// StatusRetry (clients fail over) until one sync exchange completed or
	// a grace period elapsed, so a restarted peer first recovers its item
	// counter and lease cursors instead of originating with a reset one.
	ready bool

	syncArmed bool
	syncTimer clock.Timer
	syncRNG   *rand.Rand

	// Lease liveness (LeaseTTL > 0): the expiry sweep timer and the
	// lifetime count of entries this server tombstoned for silence.
	expireArmed    bool
	expireTimer    clock.Timer
	recordsExpired uint64
}

// NewServer creates and starts a name server on its own endpoint.
func NewServer(cfg Config) (*Server, error) {
	if cfg.Fabric == nil {
		return nil, fmt.Errorf("nameserv: config needs a fabric")
	}
	if cfg.Name == "" {
		cfg.Name = "ns"
	}
	if cfg.Index <= 0 {
		cfg.Index = 1
	}
	if cfg.Total <= 0 {
		cfg.Total = 1
	}
	if cfg.Index > cfg.Total {
		return nil, fmt.Errorf("nameserv: server index %d of %d", cfg.Index, cfg.Total)
	}
	if cfg.SyncInterval == 0 {
		cfg.SyncInterval = 500 * time.Millisecond
	}
	if cfg.LeaseSpan == 0 {
		cfg.LeaseSpan = DefaultSpan
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.Real{}
	}
	ep, err := cfg.Fabric.Endpoint(cfg.Name)
	if err != nil {
		return nil, err
	}
	h := fnv.New64a()
	_, _ = h.Write([]byte(ep.Addr()))
	s := &Server{
		cfg:           cfg,
		self:          uint32(cfg.Index),
		ep:            ep,
		events:        make(chan func(), 256),
		done:          make(chan struct{}),
		stopped:       make(chan struct{}),
		dir:           make(map[ids.ObjectID]*objState),
		floors:        make(map[ids.ClientID]*floorState),
		origins:       make(map[uint32]*originState),
		leases:        make(map[uint32]map[ids.ClientID]*leaseState),
		pinnedClients: make(map[ids.ClientID]bool),
		pinnedStores:  make(map[ids.StoreID]bool),
		syncRNG:       rand.New(rand.NewSource(int64(h.Sum64()))),
	}
	peered := len(cfg.Peers) > 0 && cfg.SyncInterval > 0
	s.ready = !peered
	s.wg.Add(1)
	go s.loop()
	if cfg.LeaseTTL > 0 {
		s.post(func() { s.armExpire() })
	}
	if peered {
		s.post(func() {
			s.armSync()
			s.syncRound() // solicit recovery state immediately
		})
		// Become ready unconditionally after a grace period: peers may all
		// be down, and a lone survivor must still serve.
		grace := 2 * cfg.SyncInterval
		cfg.Clock.AfterFunc(grace, func() {
			s.post(func() { s.ready = true })
		})
	}
	return s, nil
}

// Addr returns the server's transport address (what daemons and clients
// are configured with).
func (s *Server) Addr() string { return s.ep.Addr() }

// Close stops the server and its endpoint.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	close(s.done)
	s.wg.Wait()
	return s.ep.Close()
}

func (s *Server) post(f func()) bool {
	select {
	case <-s.done:
		return false
	case <-s.stopped:
		return false
	default:
	}
	select {
	case s.events <- f:
		return true
	case <-s.done:
		return false
	case <-s.stopped:
		return false
	}
}

// loop is the server's single event goroutine. stopped is closed on every
// exit path — including the endpoint's recv channel closing underneath us
// (a shared fabric torn down first) — so posted closures that will never
// run do not strand their callers.
func (s *Server) loop() {
	defer s.wg.Done()
	defer close(s.stopped)
	recv := s.ep.Recv()
	for {
		select {
		case <-s.done:
			if s.syncTimer != nil {
				s.syncTimer.Stop()
			}
			if s.expireTimer != nil {
				s.expireTimer.Stop()
			}
			return
		case f := <-s.events:
			f()
		case m, ok := <-recv:
			if !ok {
				return
			}
			s.dispatch(m)
		}
	}
}

func (s *Server) dispatch(m *msg.Message) {
	switch m.Kind {
	case msg.KindNameRegister, msg.KindNameDeregister, msg.KindNameResolve, msg.KindNameLease:
		if !s.ready {
			s.replyErr(m, msg.StatusRetry, "name server recovering from peers; retry another server")
			return
		}
	}
	switch m.Kind {
	case msg.KindNameRegister:
		s.onRegister(m)
	case msg.KindNameDeregister:
		s.onDeregister(m)
	case msg.KindNameResolve:
		s.onResolve(m)
	case msg.KindNameLease:
		s.onLease(m)
	case msg.KindNameDigest:
		s.onDigest(m)
	case msg.KindNameSync:
		// Deliberately does NOT end the recovery gate: a routine push from
		// a peer proves nothing about how much of the directory (lease
		// cursors included) we have back. Readiness comes from a digest
		// comparison showing we are caught up (onDigest) or the grace
		// timer.
		s.onSync(m)
	}
}

// stamp mints the next local stamp: a witnessed Lamport time for LWW plus
// the origin's private contiguous item seq for anti-entropy coverage.
func (s *Server) stamp() Stamp {
	s.lamport++
	s.itemSeq++
	return Stamp{Time: s.lamport, Origin: s.self, Seq: s.itemSeq}
}

// witness folds an applied stamp into the Lamport clock (so later local
// edits order after everything seen) and into the per-origin coverage
// state. Receiving our OWN items back from a peer fast-forwards the item
// counter — that is how a restarted server resumes its contiguous stream
// instead of re-originating from 1.
func (s *Server) witness(st Stamp) {
	if st.Time > s.lamport {
		s.lamport = st.Time
	}
	if st.Origin == s.self && st.Seq > s.itemSeq {
		s.itemSeq = st.Seq
	}
	s.markApplied(st.Origin, st.Seq)
}

// markApplied records one origin item as received, advancing the floor
// through any now-contiguous run.
func (s *Server) markApplied(origin uint32, seq uint64) {
	o := s.origins[origin]
	if o == nil {
		o = &originState{}
		s.origins[origin] = o
	}
	switch {
	case seq <= o.floor:
		return // duplicate
	case seq == o.floor+1:
		o.floor = seq
		for o.ahead[o.floor+1] {
			delete(o.ahead, o.floor+1)
			o.floor++
		}
	default:
		if o.ahead == nil {
			o.ahead = make(map[uint64]bool, 2)
		}
		o.ahead[seq] = true
	}
}

// coverageVec is the advertised digest: per origin, the contiguous floor.
func (s *Server) coverageVec() msg.Vec {
	v := msg.Vec{}
	for origin, o := range s.origins {
		v.Set(ids.ClientID(origin), o.floor)
	}
	// Our own stream is always fully known to us.
	v.Set(ids.ClientID(s.self), s.selfFloor())
	return v
}

func (s *Server) selfFloor() uint64 {
	if o := s.origins[s.self]; o != nil {
		return o.floor
	}
	return 0
}

func (s *Server) obj(id ids.ObjectID) *objState {
	o := s.dir[id]
	if o == nil {
		o = &objState{entries: make(map[string]*entryState)}
		s.dir[id] = o
	}
	return o
}

// applyItem merges one directory item (local origination or peer sync).
// Returns true when the item changed state (fresh information).
func (s *Server) applyItem(it *Item) bool {
	s.witness(it.Stamp)
	switch it.Kind {
	case itemEntry:
		o := s.obj(it.Object)
		cur := o.entries[it.Entry.Addr]
		if cur != nil && !cur.stamp.Less(it.Stamp) {
			return false
		}
		o.entries[it.Entry.Addr] = &entryState{
			e: it.Entry, dead: it.Dead, stamp: it.Stamp,
			seen: s.cfg.Clock.Now(),
		}
		o.version++
		return true
	case itemMeta:
		o := s.obj(it.Object)
		if o.hasMeta && !o.metaStamp.Less(it.Stamp) {
			return false
		}
		o.meta, o.metaStamp, o.hasMeta = it.Meta, it.Stamp, true
		o.version++
		return true
	case itemFloor:
		cur := s.floors[it.Client]
		if cur == nil {
			s.floors[it.Client] = &floorState{seq: it.FloorSeq, stamp: it.Stamp}
			return true
		}
		changed := false
		if it.FloorSeq > cur.seq {
			cur.seq = it.FloorSeq // floors max-merge regardless of stamp
			changed = true
		}
		if cur.stamp.Less(it.Stamp) {
			cur.stamp = it.Stamp
		}
		return changed
	case itemLease:
		byKind := s.leases[it.Stamp.Origin]
		if byKind == nil {
			byKind = make(map[ids.ClientID]*leaseState, 2)
			s.leases[it.Stamp.Origin] = byKind
		}
		cur := byKind[it.Client]
		if cur == nil {
			cur = &leaseState{}
			byKind[it.Client] = cur
		}
		changed := false
		if it.FloorSeq > cur.next {
			cur.next = it.FloorSeq // cursors max-merge
			changed = true
		}
		if cur.stamp.Less(it.Stamp) {
			cur.stamp = it.Stamp
		}
		return changed
	}
	return false
}

// leaseCursor returns this server's persistent-via-peers allocation cursor
// for one lease kind.
func (s *Server) leaseCursor(kind ids.ClientID) uint64 {
	if byKind := s.leases[s.self]; byKind != nil {
		if cur := byKind[kind]; cur != nil {
			return cur.next
		}
	}
	return 0
}

// advanceLease bumps this server's cursor for one lease kind, replicating
// the new value to peers, and returns the range index to allocate.
func (s *Server) advanceLease(kind ids.ClientID) uint64 {
	idx := s.leaseCursor(kind)
	it := Item{Kind: itemLease, Client: kind, FloorSeq: idx + 1, Stamp: s.stamp()}
	s.applyItem(&it)
	s.pushPeers([]Item{it})
	return idx
}

// pushPeers forwards freshly originated items to every naming peer
// (fire-and-forget; the digest/anti-entropy cycle repairs losses).
func (s *Server) pushPeers(items []Item) {
	if len(s.cfg.Peers) == 0 || len(items) == 0 {
		return
	}
	for _, chunk := range ChunkItems(items) {
		m := &msg.Message{
			Kind:    msg.KindNameSync,
			From:    s.ep.Addr(),
			Store:   ids.StoreID(s.self),
			Payload: EncodeItems(chunk),
		}
		_ = s.ep.Multicast(s.cfg.Peers, m)
	}
}

func (s *Server) reply(m *msg.Message, k msg.Kind) *msg.Message {
	r := m.Reply(k)
	r.From = s.ep.Addr()
	r.Store = ids.StoreID(s.self)
	return r
}

func (s *Server) replyErr(m *msg.Message, status msg.Status, text string) {
	r := s.reply(m, msg.KindNameReply)
	r.Status = status
	r.Err = text
	_ = s.ep.Send(m.From, r)
}

// onRegister applies a batch of client-submitted record facts (entries,
// meta), stamping each here — registration authority rests with the server
// the daemon is configured to talk to.
func (s *Server) onRegister(m *msg.Message) {
	items, err := DecodeItems(m.Payload)
	if err != nil {
		s.replyErr(m, msg.StatusError, err.Error())
		return
	}
	for i := range items {
		items[i].Stamp = s.stamp()
		s.applyItem(&items[i])
	}
	s.pushPeers(items)
	r := s.reply(m, msg.KindNameReply)
	if m.Object != "" {
		if o := s.dir[m.Object]; o != nil {
			r.GlobalSeq = o.version
		}
	}
	_ = s.ep.Send(m.From, r)
}

// onDeregister tombstones one contact point of one object.
func (s *Server) onDeregister(m *msg.Message) {
	if len(m.Pages) == 0 {
		s.replyErr(m, msg.StatusError, "deregister needs an address")
		return
	}
	addr := m.Pages[0]
	it := Item{Kind: itemEntry, Object: m.Object, Dead: true, Stamp: s.stamp()}
	it.Entry.Addr = addr
	if o := s.dir[m.Object]; o != nil {
		if cur := o.entries[addr]; cur != nil {
			it.Entry = cur.e // keep store/role in the tombstone for observability
		}
	}
	s.applyItem(&it)
	s.pushPeers([]Item{it})
	_ = s.ep.Send(m.From, s.reply(m, msg.KindNameReply))
}

// record assembles the live record of one object (nil when unknown).
func (s *Server) record(obj ids.ObjectID) *naming.Record {
	o := s.dir[obj]
	if o == nil {
		return nil
	}
	rec := &naming.Record{Object: obj, Version: o.version}
	for _, es := range o.entries {
		if !es.dead {
			rec.Entries = append(rec.Entries, es.e)
		}
	}
	sort.Slice(rec.Entries, func(i, j int) bool { return rec.Entries[i].Addr < rec.Entries[j].Addr })
	if o.hasMeta {
		rec.Meta = o.meta
	}
	if len(rec.Entries) == 0 && !o.hasMeta {
		return nil
	}
	return rec
}

func (s *Server) onResolve(m *msg.Message) {
	rec := s.record(m.Object)
	if rec == nil {
		s.replyErr(m, msg.StatusNotFound, fmt.Sprintf("object %q not registered", m.Object))
		return
	}
	r := s.reply(m, msg.KindNameReply)
	r.Payload = EncodeItems(recordItems(rec))
	r.GlobalSeq = rec.Version
	_ = s.ep.Send(m.From, r)
}

// leaseStart computes the first identifier of this server's k-th range in
// the striped lease space.
func leaseStart(base, span uint64, index, total int, k uint64) uint64 {
	return base + (k*uint64(total)+uint64(index-1))*span
}

func (s *Server) onLease(m *msg.Message) {
	r := s.reply(m, msg.KindNameReply)
	switch m.Inv.Method {
	case opLeaseClients:
		k := s.advanceLease(leaseKindClient)
		r.Payload = EncodeLease(leaseStart(ClientLeaseBase, s.cfg.LeaseSpan, s.cfg.Index, s.cfg.Total, k), s.cfg.LeaseSpan)
	case opLeaseStores:
		k := s.advanceLease(leaseKindStore)
		r.Payload = EncodeLease(leaseStart(StoreLeaseBase, s.cfg.LeaseSpan, s.cfg.Index, s.cfg.Total, k), s.cfg.LeaseSpan)
	case opReserveClient:
		if m.Client >= ClientLeaseBase {
			s.replyErr(m, msg.StatusForbidden,
				fmt.Sprintf("client ID %d is inside the leased space (pin below %d)", m.Client, ClientLeaseBase))
			return
		}
		s.pinnedClients[m.Client] = true
	case opReserveStore:
		if m.Store >= StoreLeaseBase {
			s.replyErr(m, msg.StatusForbidden,
				fmt.Sprintf("store ID %d is inside the leased space (pin below %d)", m.Store, StoreLeaseBase))
			return
		}
		s.pinnedStores[m.Store] = true
	case opReportFloor:
		it := Item{Kind: itemFloor, Client: m.Client, FloorSeq: m.Write.Seq, Stamp: s.stamp()}
		if s.applyItem(&it) {
			s.pushPeers([]Item{it})
		}
	case opQueryFloor:
		if f := s.floors[m.Client]; f != nil {
			r.Write.Seq = f.seq
		}
	case opRenewContact:
		if len(m.Pages) == 0 || m.Pages[0] == "" {
			s.replyErr(m, msg.StatusError, "renew needs an address")
			return
		}
		r.Write.Seq = s.renewContact(m.Pages[0])
		r.GlobalSeq = s.recordsExpired
	default:
		s.replyErr(m, msg.StatusError, fmt.Sprintf("unknown lease op %d", m.Inv.Method))
		return
	}
	_ = s.ep.Send(m.From, r)
}

// --- lease liveness ----------------------------------------------------------

// renewContact re-stamps every live entry registered at addr (any object),
// refreshing its lease in one frame per daemon heartbeat. The fresh stamps
// replicate to peers like any edit, so their expiry clocks reset too. It
// returns the renewed-entry count: zero tells the caller its registrations
// were already expired (or never made) and it must re-register.
func (s *Server) renewContact(addr string) uint64 {
	var renewed uint64
	var items []Item
	for obj, o := range s.dir {
		es := o.entries[addr]
		if es == nil || es.dead {
			continue
		}
		it := Item{Kind: itemEntry, Object: obj, Entry: es.e, Stamp: s.stamp()}
		s.applyItem(&it) // fresh stamp always wins: refreshes stamp and seen
		items = append(items, it)
		renewed++
	}
	s.pushPeers(items)
	return renewed
}

// armExpire schedules the next expiry sweep at a quarter TTL (jittered), so
// a silent contact point disappears from resolution within roughly one TTL
// and a fleet of servers does not sweep in lockstep.
func (s *Server) armExpire() {
	if s.expireArmed || s.cfg.LeaseTTL <= 0 {
		return
	}
	s.expireArmed = true
	d := s.cfg.LeaseTTL / 4
	if quarter := int64(d / 4); quarter > 0 {
		d += time.Duration(s.syncRNG.Int63n(quarter))
	}
	s.expireTimer = s.cfg.Clock.AfterFunc(d, func() {
		s.post(func() {
			s.expireArmed = false
			if s.ready {
				s.sweepExpired()
			}
			s.armExpire()
		})
	})
}

// sweepExpired tombstones every live entry whose lease ran out, exactly as a
// deregistration would: a stamped dead item, applied locally and replicated
// through the ordinary push/anti-entropy channel so peers retire their copy
// too. A renewal racing the sweep self-heals by LWW — whichever stamp is
// newer wins everywhere, and the daemon's next heartbeat re-registers.
func (s *Server) sweepExpired() {
	now := s.cfg.Clock.Now()
	var items []Item
	for obj, o := range s.dir {
		for addr, es := range o.entries {
			if es.dead || now.Sub(es.seen) < s.cfg.LeaseTTL {
				continue
			}
			it := Item{Kind: itemEntry, Object: obj, Dead: true, Stamp: s.stamp()}
			it.Entry = es.e
			it.Entry.Addr = addr
			s.applyItem(&it)
			items = append(items, it)
			s.recordsExpired++
		}
	}
	s.pushPeers(items)
}

// ExpiredSnapshot returns how many entries this server has expired (tests,
// status surfaces).
func (s *Server) ExpiredSnapshot() uint64 {
	var out uint64
	ch := make(chan struct{})
	if !s.post(func() {
		out = s.recordsExpired
		close(ch)
	}) {
		return 0
	}
	select {
	case <-ch:
	case <-s.stopped:
		return 0
	}
	return out
}

// --- peer anti-entropy -------------------------------------------------------

// armSync schedules the next peer digest round (jittered like the replica
// heartbeats, so a fleet sharing one interval de-synchronises).
func (s *Server) armSync() {
	if s.syncArmed || s.cfg.SyncInterval <= 0 || len(s.cfg.Peers) == 0 {
		return
	}
	s.syncArmed = true
	d := s.cfg.SyncInterval
	if quarter := int64(d / 4); quarter > 0 {
		d += time.Duration(s.syncRNG.Int63n(quarter))
	}
	s.syncTimer = s.cfg.Clock.AfterFunc(d, func() {
		s.post(func() {
			s.syncArmed = false
			s.syncRound()
			s.armSync()
		})
	})
}

// syncRound multicasts this server's directory digest to its peers.
func (s *Server) syncRound() {
	m := &msg.Message{
		Kind:  msg.KindNameDigest,
		From:  s.ep.Addr(),
		Store: ids.StoreID(s.self),
		VVec:  s.coverageVec(),
	}
	_ = s.ep.Multicast(s.cfg.Peers, m)
}

// itemsBeyond collects every directory item whose stamp seq exceeds the
// peer's advertised contiguous floor for its origin — a superset of what
// the peer is missing (it may hold some of them above a hole; duplicates
// merge away on arrival).
func (s *Server) itemsBeyond(v *msg.Vec) []Item {
	var out []Item
	needed := func(st Stamp) bool { return st.Seq > v.Get(ids.ClientID(st.Origin)) }
	for obj, o := range s.dir {
		for _, es := range o.entries {
			if needed(es.stamp) {
				out = append(out, Item{Kind: itemEntry, Object: obj, Entry: es.e, Dead: es.dead, Stamp: es.stamp})
			}
		}
		if o.hasMeta && needed(o.metaStamp) {
			out = append(out, Item{Kind: itemMeta, Object: obj, Meta: o.meta, Stamp: o.metaStamp})
		}
	}
	for c, f := range s.floors {
		if needed(f.stamp) {
			out = append(out, Item{Kind: itemFloor, Client: c, FloorSeq: f.seq, Stamp: f.stamp})
		}
	}
	for _, byKind := range s.leases {
		for kind, ls := range byKind {
			if needed(ls.stamp) {
				out = append(out, Item{Kind: itemLease, Client: kind, FloorSeq: ls.next, Stamp: ls.stamp})
			}
		}
	}
	return out
}

// onDigest answers a peer's directory digest: ship what they lack, and
// solicit (with our own digest) when their floors run ahead of ours. The
// solicit is sent only when the peer is strictly ahead, so two converged
// servers exchange one frame per interval and nothing else.
func (s *Server) onDigest(m *msg.Message) {
	// Fast-forward the own-stream counter past whatever the peer has seen
	// of it: after a restart, surviving items alone can under-count (an
	// item of ours that a peer's newer edit overwrote no longer exists
	// anywhere, yet its seq is inside every floor), and re-originating at
	// or below the fleet's floors would put fresh items permanently
	// beneath gap detection. The floor itself is NOT raised — coverage
	// must keep reflecting items actually received, so a lost recovery
	// shipment keeps being re-sent. The residue is bounded chatter: when
	// superseded seqs can never be re-shipped, the floors stay apart and
	// converged peers exchange one extra digest per interval.
	if their := m.VVec.Get(ids.ClientID(s.self)); their > s.itemSeq {
		s.itemSeq = their
	}
	if items := s.itemsBeyond(&m.VVec); len(items) > 0 {
		for _, chunk := range ChunkItems(items) {
			r := &msg.Message{
				Kind:    msg.KindNameSync,
				From:    s.ep.Addr(),
				Store:   ids.StoreID(s.self),
				Payload: EncodeItems(chunk),
			}
			_ = s.ep.Send(m.From, r)
		}
	}
	ahead := false
	m.VVec.Each(func(c ids.ClientID, seq uint64) bool {
		var our uint64
		if o := s.origins[uint32(c)]; o != nil {
			our = o.floor
		}
		if seq > our {
			ahead = true
			return false
		}
		return true
	})
	if ahead {
		d := &msg.Message{
			Kind:  msg.KindNameDigest,
			From:  s.ep.Addr(),
			Store: ids.StoreID(s.self),
			VVec:  s.coverageVec(),
		}
		_ = s.ep.Send(m.From, d)
	} else {
		// Nothing to recover from this peer: safe to start serving. (When
		// the peer IS ahead, readiness waits for its sync shipment or the
		// grace timer.)
		s.ready = true
	}
}

// onSync merges a peer's item batch.
func (s *Server) onSync(m *msg.Message) {
	items, err := DecodeItems(m.Payload)
	if err != nil {
		return
	}
	for i := range items {
		s.applyItem(&items[i])
	}
}

// --- debug/test accessors ----------------------------------------------------

// RecordSnapshot returns the live record of obj as seen by this server
// (tests and the globens status loop). ok is false when the object is
// unknown or the server is closed.
func (s *Server) RecordSnapshot(obj ids.ObjectID) (naming.Record, bool) {
	var rec naming.Record
	ok := false
	ch := make(chan struct{})
	if !s.post(func() {
		if r := s.record(obj); r != nil {
			rec, ok = *r, true
		}
		close(ch)
	}) {
		return rec, false
	}
	select {
	case <-ch:
	case <-s.stopped:
		// The loop exited (Close, or the endpoint died under a shared
		// fabric) without draining; don't wait for a closure that will
		// never run.
		return naming.Record{}, false
	}
	return rec, ok
}

// FloorSnapshot returns a client's replicated write-sequence floor.
func (s *Server) FloorSnapshot(id ids.ClientID) uint64 {
	var out uint64
	ch := make(chan struct{})
	if !s.post(func() {
		if f := s.floors[id]; f != nil {
			out = f.seq
		}
		close(ch)
	}) {
		return 0
	}
	select {
	case <-ch:
	case <-s.stopped:
		return 0
	}
	return out
}
