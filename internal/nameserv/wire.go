// Package nameserv is the networked naming/location service: a name server
// that any number of daemons register their objects with, that clients
// resolve through, and that replicates its directory between naming peers
// with the same digest/anti-entropy pattern the replica layer uses for
// object state (KindNameDigest ↔ KindDigest).
//
// The directory's unit of replication is the item: an entry upsert (one
// contact point of one object, possibly a tombstone), a metadata update
// (semantics type, strategy, session models), or a client write-sequence
// floor. Every item a server originates is stamped (origin server, seq)
// from that server's monotonic counter; peers merge items last-writer-wins
// per key (floors max-merge), and a per-origin version vector over stamps
// is the directory digest peers exchange to detect and repair gaps.
//
// Identifier allocation is leased: a daemon asks its name server for a
// range of client or store IDs and allocates locally from it. Ranges are
// striped across naming peers (server i of N hands out the ranges whose
// index ≡ i−1 mod N, matching leaseStart), so identities are globally
// unique without any inter-server coordination on the allocation path.
//
//globelint:deterministic
//globelint:aliased-input
package nameserv

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/ids"
	"repro/internal/naming"
	"repro/internal/replication"
	"repro/internal/strategy"
)

// Lease sub-operations carried in a KindNameLease request's Inv.Method.
const (
	opLeaseClients uint16 = iota + 1
	opLeaseStores
	opReserveClient
	opReserveStore
	opReportFloor
	opQueryFloor
	// opRenewContact re-stamps every live entry of one contact point (the
	// daemon's liveness heartbeat): registrations are renewable leases, and
	// a server configured with a LeaseTTL expires entries whose renewals
	// stop. Carried in Pages[0]; the reply returns the renewed-entry count
	// in Write.Seq and the server's lifetime expired-record count in
	// GlobalSeq. No new message kind, so no wire version bump.
	opRenewContact
)

// Item kinds on the sync wire.
//
//globelint:wiresym group=nameitem
const (
	itemEntry byte = iota + 1
	itemMeta
	itemFloor
	itemLease
)

// Stamp orders and tracks directory items. It carries two counters with
// distinct jobs:
//
//   - Time is a Lamport clock witnessed across servers; (Time, Origin) is
//     the last-writer-wins order for conflicting edits of one key, and it
//     respects happened-before (an edit made after observing another
//     always wins against it).
//   - Seq is the origin's private, strictly contiguous item counter
//     (1, 2, 3, ... per origin, never witnessed from others). Contiguity is
//     what makes anti-entropy exact: a receiver advertises, per origin, the
//     highest seq below which it has EVERY item (its floor), so a lost item
//     keeps the floor pinned and peers keep re-shipping everything beyond
//     it until the hole fills. A single witnessed counter cannot provide
//     this — applying seq 6 after seq 5 was lost would advance a max-based
//     vector straight past the hole and hide it forever.
type Stamp struct {
	Time   uint64
	Origin uint32
	Seq    uint64
}

// Less orders stamps for LWW by (Time, origin) — a total order that agrees
// with the happened-before the witnessing rule establishes.
func (s Stamp) Less(o Stamp) bool {
	if s.Time != o.Time {
		return s.Time < o.Time
	}
	return s.Origin < o.Origin
}

// Item is one replicated directory fact.
type Item struct {
	Kind   byte
	Object ids.ObjectID // entry, meta

	// Entry fields (itemEntry). Dead marks a tombstone: the contact point
	// was deregistered and the fact must outlive it so a peer that still
	// holds the live entry retires it.
	Entry naming.Entry
	Dead  bool

	// Meta fields (itemMeta).
	Meta naming.Meta

	// Floor fields (itemFloor): a client identity's write-sequence floor.
	// For itemLease the pair is reused as (lease kind, next range index):
	// Client 1 = client-ID ranges, 2 = store-ID ranges, and FloorSeq is the
	// origin's next unallocated range index — replicated so a restarted
	// naming peer recovers its allocation cursor from its peers instead of
	// re-issuing ranges daemons already hold.
	Client   ids.ClientID
	FloorSeq uint64

	Stamp Stamp
}

// Lease kinds inside an itemLease's Client field.
const (
	leaseKindClient ids.ClientID = 1
	leaseKindStore  ids.ClientID = 2
)

// ErrShort reports a truncated or corrupt nameserv payload.
var ErrShort = errors.New("nameserv: short or corrupt payload")

type writer struct{ buf []byte }

func (w *writer) u8(v uint8)   { w.buf = append(w.buf, v) }
func (w *writer) u16(v uint16) { w.buf = binary.BigEndian.AppendUint16(w.buf, v) }
func (w *writer) u32(v uint32) { w.buf = binary.BigEndian.AppendUint32(w.buf, v) }
func (w *writer) u64(v uint64) { w.buf = binary.BigEndian.AppendUint64(w.buf, v) }
func (w *writer) str(s string) {
	if len(s) > math.MaxUint16 {
		s = s[:math.MaxUint16]
	}
	w.u16(uint16(len(s)))
	w.buf = append(w.buf, s...)
}

type reader struct {
	buf []byte
	off int
}

func (r *reader) need(n int) error {
	if len(r.buf)-r.off < n {
		return ErrShort
	}
	return nil
}

func (r *reader) u8() (uint8, error) {
	if err := r.need(1); err != nil {
		return 0, err
	}
	v := r.buf[r.off]
	r.off++
	return v, nil
}

func (r *reader) u16() (uint16, error) {
	if err := r.need(2); err != nil {
		return 0, err
	}
	v := binary.BigEndian.Uint16(r.buf[r.off:])
	r.off += 2
	return v, nil
}

func (r *reader) u32() (uint32, error) {
	if err := r.need(4); err != nil {
		return 0, err
	}
	v := binary.BigEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v, nil
}

func (r *reader) u64() (uint64, error) {
	if err := r.need(8); err != nil {
		return 0, err
	}
	v := binary.BigEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v, nil
}

func (r *reader) str() (string, error) {
	n, err := r.u16()
	if err != nil {
		return "", err
	}
	if err := r.need(int(n)); err != nil {
		return "", err
	}
	s := string(r.buf[r.off : r.off+int(n)])
	r.off += int(n)
	return s, nil
}

// MaxItemsPerFrame bounds one sync frame's item count well below both the
// u16 wire count and the transports' frame budgets; senders of unbounded
// batches split across frames with ChunkItems (silent truncation would let
// the receiver's digest advance past items it never saw).
const MaxItemsPerFrame = 2048

// ChunkItems splits an item batch into MaxItemsPerFrame-sized sub-batches.
func ChunkItems(items []Item) [][]Item {
	if len(items) <= MaxItemsPerFrame {
		return [][]Item{items}
	}
	var out [][]Item
	for len(items) > 0 {
		n := len(items)
		if n > MaxItemsPerFrame {
			n = MaxItemsPerFrame
		}
		out = append(out, items[:n])
		items = items[n:]
	}
	return out
}

// EncodeItems serialises a batch of directory items into a frame payload.
// Batches beyond the u16 count are truncated — callers with unbounded
// batches must split with ChunkItems first.
//
//globelint:wiresym group=nameitem role=encode
func EncodeItems(items []Item) []byte {
	w := writer{buf: make([]byte, 0, 72*len(items)+2)}
	if len(items) > math.MaxUint16 {
		items = items[:math.MaxUint16]
	}
	w.u16(uint16(len(items)))
	for i := range items {
		it := &items[i]
		w.u8(it.Kind)
		w.u64(it.Stamp.Time)
		w.u32(it.Stamp.Origin)
		w.u64(it.Stamp.Seq)
		switch it.Kind {
		case itemEntry:
			w.str(string(it.Object))
			w.str(it.Entry.Addr)
			w.u32(uint32(it.Entry.Store))
			w.u8(uint8(it.Entry.Role))
			dead := uint8(0)
			if it.Dead {
				dead = 1
			}
			w.u8(dead)
		case itemMeta:
			w.str(string(it.Object))
			w.str(it.Meta.Sem)
			strat := ""
			if it.Meta.HasStrat {
				strat = strategy.Marshal(it.Meta.Strat)
			}
			w.str(strat)
			n := len(it.Meta.Models)
			if n > math.MaxUint8 {
				n = math.MaxUint8
			}
			w.u8(uint8(n))
			for _, m := range it.Meta.Models[:n] {
				w.str(m)
			}
		case itemFloor, itemLease:
			w.u32(uint32(it.Client))
			w.u64(it.FloorSeq)
		}
	}
	return w.buf
}

// DecodeItems parses an EncodeItems payload.
//
//globelint:wiresym group=nameitem role=decode
func DecodeItems(b []byte) ([]Item, error) {
	r := reader{buf: b}
	n, err := r.u16()
	if err != nil {
		return nil, err
	}
	// Bound the pre-allocation by what the payload could actually hold
	// (every item occupies ≥ 21 wire bytes), so a corrupt count cannot
	// amplify into a huge allocation.
	capHint := int(n)
	if max := len(b) / 21; capHint > max {
		capHint = max
	}
	items := make([]Item, 0, capHint)
	for i := 0; i < int(n); i++ {
		var it Item
		if it.Kind, err = r.u8(); err != nil {
			return nil, err
		}
		if it.Stamp.Time, err = r.u64(); err != nil {
			return nil, err
		}
		if it.Stamp.Origin, err = r.u32(); err != nil {
			return nil, err
		}
		if it.Stamp.Seq, err = r.u64(); err != nil {
			return nil, err
		}
		switch it.Kind {
		case itemEntry:
			obj, err := r.str()
			if err != nil {
				return nil, err
			}
			it.Object = ids.ObjectID(obj)
			if it.Entry.Addr, err = r.str(); err != nil {
				return nil, err
			}
			st, err := r.u32()
			if err != nil {
				return nil, err
			}
			it.Entry.Store = ids.StoreID(st)
			role, err := r.u8()
			if err != nil {
				return nil, err
			}
			it.Entry.Role = replication.Role(role)
			dead, err := r.u8()
			if err != nil {
				return nil, err
			}
			it.Dead = dead != 0
		case itemMeta:
			obj, err := r.str()
			if err != nil {
				return nil, err
			}
			it.Object = ids.ObjectID(obj)
			if it.Meta.Sem, err = r.str(); err != nil {
				return nil, err
			}
			stratText, err := r.str()
			if err != nil {
				return nil, err
			}
			if stratText != "" {
				strat, err := strategy.Parse(stratText)
				if err != nil {
					return nil, fmt.Errorf("nameserv: record strategy: %w", err)
				}
				it.Meta.Strat, it.Meta.HasStrat = strat, true
			}
			nm, err := r.u8()
			if err != nil {
				return nil, err
			}
			for j := 0; j < int(nm); j++ {
				m, err := r.str()
				if err != nil {
					return nil, err
				}
				it.Meta.Models = append(it.Meta.Models, m)
			}
		case itemFloor, itemLease:
			c, err := r.u32()
			if err != nil {
				return nil, err
			}
			it.Client = ids.ClientID(c)
			if it.FloorSeq, err = r.u64(); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("%w: unknown item kind %d", ErrShort, it.Kind)
		}
		items = append(items, it)
	}
	return items, nil
}

// EncodeLease serialises a leased identifier range.
func EncodeLease(start, span uint64) []byte {
	w := writer{buf: make([]byte, 0, 16)}
	w.u64(start)
	w.u64(span)
	return w.buf
}

// DecodeLease parses an EncodeLease payload.
func DecodeLease(b []byte) (start, span uint64, err error) {
	r := reader{buf: b}
	if start, err = r.u64(); err != nil {
		return 0, 0, err
	}
	if span, err = r.u64(); err != nil {
		return 0, 0, err
	}
	return start, span, nil
}

// recordItems flattens a record into resolve-reply items (entries + meta).
func recordItems(rec *naming.Record) []Item {
	items := make([]Item, 0, len(rec.Entries)+1)
	for _, e := range rec.Entries {
		items = append(items, Item{Kind: itemEntry, Object: rec.Object, Entry: e})
	}
	if rec.Meta.Sem != "" || rec.Meta.HasStrat || len(rec.Meta.Models) > 0 {
		items = append(items, Item{Kind: itemMeta, Object: rec.Object, Meta: rec.Meta})
	}
	return items
}

// recordFromItems inverts recordItems at the client.
func recordFromItems(obj ids.ObjectID, version uint64, items []Item) naming.Record {
	rec := naming.Record{Object: obj, Version: version}
	for i := range items {
		it := &items[i]
		switch it.Kind {
		case itemEntry:
			if !it.Dead {
				rec.Entries = append(rec.Entries, it.Entry)
			}
		case itemMeta:
			rec.Meta = it.Meta
		}
	}
	return rec
}
