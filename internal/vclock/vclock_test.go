package vclock

import (
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/ids"
)

func TestCompareBasics(t *testing.T) {
	a := VC{1: 1}
	b := VC{1: 2}
	if got := a.Compare(b); got != Before {
		t.Fatalf("a.Compare(b) = %v, want Before", got)
	}
	if got := b.Compare(a); got != After {
		t.Fatalf("b.Compare(a) = %v, want After", got)
	}
	if got := a.Compare(a.Clone()); got != Equal {
		t.Fatalf("equal clocks compare %v, want Equal", got)
	}
	c := VC{2: 1}
	if got := a.Compare(c); got != Concurrent {
		t.Fatalf("disjoint clocks compare %v, want Concurrent", got)
	}
}

func TestTickAndHappensBefore(t *testing.T) {
	v := New()
	if got := v.Tick(1); got != 1 {
		t.Fatalf("first tick = %d, want 1", got)
	}
	w := v.Clone()
	w.Tick(1)
	if !v.HappensBefore(w) {
		t.Fatalf("v should happen before its successor")
	}
	if w.HappensBefore(v) {
		t.Fatalf("successor must not happen before predecessor")
	}
}

func TestOrderingString(t *testing.T) {
	cases := map[Ordering]string{
		Equal: "equal", Before: "before", After: "after", Concurrent: "concurrent",
	}
	for o, want := range cases {
		if got := o.String(); got != want {
			t.Fatalf("Ordering(%d).String() = %q, want %q", int(o), got, want)
		}
	}
	if got := Ordering(99).String(); got != "Ordering(99)" {
		t.Fatalf("unknown ordering String() = %q", got)
	}
}

func TestVCString(t *testing.T) {
	v := VC{2: 3, 1: 1}
	if got, want := v.String(), "[c1:1 c2:3]"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
	if got := (VC)(nil).String(); got != "[]" {
		t.Fatalf("nil String() = %q, want []", got)
	}
}

// Property: Compare is antisymmetric — swapping operands flips Before/After,
// preserves Equal/Concurrent.
func TestCompareAntisymmetric(t *testing.T) {
	f := func(xa, xb map[uint8]uint16) bool {
		a, b := mkVC(xa), mkVC(xb)
		x, y := a.Compare(b), b.Compare(a)
		switch x {
		case Equal:
			return y == Equal
		case Concurrent:
			return y == Concurrent
		case Before:
			return y == After
		case After:
			return y == Before
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: merged clock is the least upper bound: it covers both inputs,
// and any clock covering both inputs covers the merge.
func TestMergeIsLeastUpperBound(t *testing.T) {
	f := func(xa, xb, xc map[uint8]uint16) bool {
		a, b, c := mkVC(xa), mkVC(xb), mkVC(xc)
		m := a.Clone()
		m.Merge(b)
		if !m.Covers(a) || !m.Covers(b) {
			return false
		}
		if c.Covers(a) && c.Covers(b) && !c.Covers(m) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func mkVC(xs map[uint8]uint16) VC {
	v := New()
	for c, s := range xs {
		if s > 0 {
			v.Set(ids.ClientID(c), uint64(s))
		}
	}
	return v
}

func TestLamportMonotonic(t *testing.T) {
	var l Lamport
	prev := uint64(0)
	for i := 0; i < 100; i++ {
		n := l.Next()
		if n <= prev {
			t.Fatalf("Lamport.Next not monotonic: %d after %d", n, prev)
		}
		prev = n
	}
}

func TestLamportWitness(t *testing.T) {
	var l Lamport
	l.Next() // 1
	if got := l.Witness(10); got != 11 {
		t.Fatalf("Witness(10) = %d, want 11", got)
	}
	if got := l.Witness(3); got != 12 {
		t.Fatalf("Witness(3) = %d, want 12 (must still advance)", got)
	}
	if got := l.Now(); got != 12 {
		t.Fatalf("Now = %d, want 12", got)
	}
}

func TestLamportConcurrentUnique(t *testing.T) {
	var l Lamport
	const workers, per = 8, 200
	seen := make(chan uint64, workers*per)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				seen <- l.Next()
			}
		}()
	}
	wg.Wait()
	close(seen)
	uniq := make(map[uint64]bool, workers*per)
	for v := range seen {
		if uniq[v] {
			t.Fatalf("duplicate Lamport time %d", v)
		}
		uniq[v] = true
	}
}

func TestStampTotalOrder(t *testing.T) {
	a := Stamp{Time: 1, Client: 2}
	b := Stamp{Time: 2, Client: 1}
	c := Stamp{Time: 1, Client: 3}
	if !a.Less(b) {
		t.Fatalf("lower time must order first")
	}
	if !a.Less(c) || c.Less(a) {
		t.Fatalf("client must break time ties")
	}
	if a.Less(a) {
		t.Fatalf("Less must be irreflexive")
	}
	var z Stamp
	if !z.Zero() || a.Zero() {
		t.Fatalf("Zero() misreported")
	}
}

// Property: Stamp.Less is a strict total order (trichotomy + transitivity).
func TestStampLessTotalOrderProperty(t *testing.T) {
	f := func(t1, t2, t3 uint16, c1, c2, c3 uint8) bool {
		a := Stamp{Time: uint64(t1), Client: ids.ClientID(c1)}
		b := Stamp{Time: uint64(t2), Client: ids.ClientID(c2)}
		c := Stamp{Time: uint64(t3), Client: ids.ClientID(c3)}
		// trichotomy
		if a != b && !a.Less(b) && !b.Less(a) {
			return false
		}
		// transitivity
		if a.Less(b) && b.Less(c) && !a.Less(c) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
