// Package vclock implements vector clocks and Lamport clocks.
//
// Vector clocks drive the causal coherence model (§3.2.1 of the paper) and
// the Writes-Follow-Reads session guarantee: an update is applicable at a
// store only when the store's applied vector covers the update's dependency
// vector. Lamport clocks provide the total tiebreak used by the eventual
// model's last-writer-wins convergence rule.
//
//globelint:deterministic
package vclock

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/ids"
)

// Ordering is the result of comparing two vector clocks.
type Ordering int

// The four possible relations between two vector clocks.
const (
	Equal Ordering = iota + 1
	Before
	After
	Concurrent
)

// String names the ordering.
func (o Ordering) String() string {
	switch o {
	case Equal:
		return "equal"
	case Before:
		return "before"
	case After:
		return "after"
	case Concurrent:
		return "concurrent"
	default:
		return fmt.Sprintf("Ordering(%d)", int(o))
	}
}

// VC is a vector clock: one logical-event counter per client. The zero value
// (nil map) is a valid, empty clock for read operations; use New or Clone
// before mutating.
type VC map[ids.ClientID]uint64

// New returns an empty vector clock.
func New() VC { return make(VC) }

// Tick increments the component for client c and returns the new value.
func (v VC) Tick(c ids.ClientID) uint64 {
	v[c]++
	return v[c]
}

// Get returns the component for client c (zero if absent).
func (v VC) Get(c ids.ClientID) uint64 { return v[c] }

// Set stores component seq for client c.
func (v VC) Set(c ids.ClientID, seq uint64) { v[c] = seq }

// Clone returns an independent copy; Clone of nil returns an empty clock.
func (v VC) Clone() VC {
	out := make(VC, len(v))
	for c, s := range v {
		out[c] = s
	}
	return out
}

// Merge folds o into v component-wise (join: max of each component).
func (v VC) Merge(o VC) {
	for c, s := range o {
		if v[c] < s {
			v[c] = s
		}
	}
}

// Covers reports whether every component of o is <= the matching component
// of v (zero components of o are ignored).
func (v VC) Covers(o VC) bool {
	for c, s := range o {
		if s == 0 {
			continue
		}
		if v[c] < s {
			return false
		}
	}
	return true
}

// Compare classifies the relation between v and o.
func (v VC) Compare(o VC) Ordering {
	vCovers := v.Covers(o)
	oCovers := o.Covers(v)
	switch {
	case vCovers && oCovers:
		return Equal
	case oCovers:
		return Before
	case vCovers:
		return After
	default:
		return Concurrent
	}
}

// HappensBefore reports whether v strictly precedes o.
func (v VC) HappensBefore(o VC) bool { return v.Compare(o) == Before }

// String renders the clock deterministically, sorted by client ID.
func (v VC) String() string {
	if len(v) == 0 {
		return "[]"
	}
	clients := make([]ids.ClientID, 0, len(v))
	for c := range v {
		clients = append(clients, c)
	}
	sort.Slice(clients, func(i, j int) bool { return clients[i] < clients[j] })
	var b strings.Builder
	b.WriteByte('[')
	for i, c := range clients {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "c%d:%d", c, v[c])
	}
	b.WriteByte(']')
	return b.String()
}

// Lamport is a thread-safe Lamport clock. The zero value is ready to use.
type Lamport struct {
	mu  sync.Mutex
	now uint64
}

// Next advances the clock for a local event and returns the new time.
func (l *Lamport) Next() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.now++
	return l.now
}

// Witness folds an observed remote timestamp into the clock and returns the
// new local time (max(local, remote) + 1).
func (l *Lamport) Witness(remote uint64) uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if remote > l.now {
		l.now = remote
	}
	l.now++
	return l.now
}

// Now returns the current time without advancing it.
func (l *Lamport) Now() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.now
}

// Stamp is a totally ordered (Lamport time, client) pair used for
// last-writer-wins resolution in the eventual coherence model.
type Stamp struct {
	Time   uint64
	Client ids.ClientID
}

// Less orders stamps by time, breaking ties by client ID, yielding the total
// order required for convergent LWW resolution.
func (s Stamp) Less(o Stamp) bool {
	if s.Time != o.Time {
		return s.Time < o.Time
	}
	return s.Client < o.Client
}

// Zero reports whether the stamp is unset.
func (s Stamp) Zero() bool { return s.Time == 0 && s.Client == 0 }
