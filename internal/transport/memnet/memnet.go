// Package memnet is the simulated-network substrate: an in-process message
// network with configurable per-link latency, jitter, and loss, dynamic
// partitions, multicast, and exact message/byte accounting.
//
// It substitutes for the Internet testbed of the paper's prototype. Messages
// are fully encoded and re-decoded on every hop, so wire sizes are real and
// no state is ever shared by reference between "address spaces". A lossless
// network models the paper's TCP configuration; setting a loss rate models
// the UDP configuration of §4.2, where reliability is recovered by the
// coherence protocol rather than the transport.
package memnet

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/msg"
	"repro/internal/transport"
)

// LinkProfile describes one directed link's behaviour.
type LinkProfile struct {
	// Latency is the base one-way delivery delay.
	Latency time.Duration
	// Jitter, if non-zero, adds a uniform random delay in [0, Jitter).
	Jitter time.Duration
	// Loss is the probability in [0,1] that a message is silently dropped.
	Loss float64
	// Dup is the probability in [0,1] that a message is delivered twice
	// (the second copy after an extra jittered delay) — UDP-style
	// duplication for exercising protocol dedup paths.
	Dup float64
}

// Stats is a snapshot of network traffic counters.
type Stats struct {
	Sent       uint64
	Delivered  uint64
	Dropped    uint64 // lost by link loss or partition
	Duplicated uint64 // extra copies injected by link duplication
	Bytes      uint64 // wire bytes of delivered messages
	ByKind     map[msg.Kind]uint64
}

// Network is a simulated network. Create endpoints with Endpoint, wire their
// behaviour with SetLink/SetDefaultLink, and tear everything down with
// Close, which waits for the delivery scheduler to stop.
type Network struct {
	mu        sync.Mutex
	rng       *rand.Rand
	endpoints map[string]*endpoint
	links     map[linkKey]LinkProfile
	defProf   LinkProfile
	parts     map[linkKey]bool
	stats     Stats
	queue     deliveryQueue
	seq       uint64
	wake      chan struct{}
	done      chan struct{}
	closed    bool
	wg        sync.WaitGroup
}

type linkKey struct{ from, to string }

// Option configures a Network.
type Option func(*Network)

// WithSeed fixes the RNG seed for deterministic jitter and loss decisions.
func WithSeed(seed int64) Option {
	return func(n *Network) { n.rng = rand.New(rand.NewSource(seed)) }
}

// WithDefaultLink sets the profile used by links that have no explicit
// SetLink configuration.
func WithDefaultLink(p LinkProfile) Option {
	return func(n *Network) { n.defProf = p }
}

// New creates a network. By default links are instantaneous and lossless.
func New(opts ...Option) *Network {
	n := &Network{
		rng:       rand.New(rand.NewSource(1)),
		endpoints: make(map[string]*endpoint),
		links:     make(map[linkKey]LinkProfile),
		parts:     make(map[linkKey]bool),
		wake:      make(chan struct{}, 1),
		done:      make(chan struct{}),
	}
	n.stats.ByKind = make(map[msg.Kind]uint64)
	for _, o := range opts {
		o(n)
	}
	n.wg.Add(1)
	go n.run()
	return n
}

// Endpoint creates (or returns an error for a duplicate) the endpoint at
// addr.
func (n *Network) Endpoint(addr string) (transport.Endpoint, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, transport.ErrClosed
	}
	if _, ok := n.endpoints[addr]; ok {
		return nil, fmt.Errorf("memnet: duplicate endpoint %q", addr)
	}
	e := &endpoint{net: n, addr: addr, inbox: make(chan *msg.Message, 1024)}
	n.endpoints[addr] = e
	return e, nil
}

// SetLink configures the directed link from -> to.
func (n *Network) SetLink(from, to string, p LinkProfile) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.links[linkKey{from, to}] = p
}

// SetLinkBoth configures both directions between a and b.
func (n *Network) SetLinkBoth(a, b string, p LinkProfile) {
	n.SetLink(a, b, p)
	n.SetLink(b, a, p)
}

// Partition cuts both directions between a and b until Heal.
func (n *Network) Partition(a, b string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.parts[linkKey{a, b}] = true
	n.parts[linkKey{b, a}] = true
}

// Heal restores both directions between a and b.
func (n *Network) Heal(a, b string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.parts, linkKey{a, b})
	delete(n.parts, linkKey{b, a})
}

// Stats returns a copy of the traffic counters.
func (n *Network) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	s := n.stats
	s.ByKind = make(map[msg.Kind]uint64, len(n.stats.ByKind))
	for k, v := range n.stats.ByKind {
		s.ByKind[k] = v
	}
	return s
}

// ResetStats zeroes the traffic counters (benchmark warm-up support).
func (n *Network) ResetStats() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.stats = Stats{ByKind: make(map[msg.Kind]uint64)}
}

// Close shuts down the network: endpoints' receive channels close and the
// delivery scheduler stops. Close blocks until the scheduler exits.
func (n *Network) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	eps := make([]*endpoint, 0, len(n.endpoints))
	for _, e := range n.endpoints {
		eps = append(eps, e)
	}
	n.mu.Unlock()
	close(n.done)
	n.wg.Wait()
	for _, e := range eps {
		e.closeInbox()
	}
	return nil
}

// send enqueues a message for delivery, applying the link profile.
func (n *Network) send(from, to string, m *msg.Message) error {
	wire := msg.Encode(m)
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return transport.ErrClosed
	}
	if _, ok := n.endpoints[to]; !ok {
		n.mu.Unlock()
		return fmt.Errorf("%w: %q", transport.ErrUnknownAddr, to)
	}
	n.stats.Sent++
	if n.parts[linkKey{from, to}] {
		n.stats.Dropped++
		n.mu.Unlock()
		return nil // partitions drop silently, like the real network
	}
	prof, ok := n.links[linkKey{from, to}]
	if !ok {
		prof = n.defProf
	}
	if prof.Loss > 0 && n.rng.Float64() < prof.Loss {
		n.stats.Dropped++
		n.mu.Unlock()
		return nil
	}
	delay := prof.Latency
	if prof.Jitter > 0 {
		delay += time.Duration(n.rng.Int63n(int64(prof.Jitter)))
	}
	n.seq++
	heap.Push(&n.queue, &delivery{
		at:   time.Now().Add(delay),
		seq:  n.seq,
		to:   to,
		wire: wire,
	})
	if prof.Dup > 0 && n.rng.Float64() < prof.Dup {
		extra := delay + prof.Latency
		if prof.Jitter > 0 {
			extra += time.Duration(n.rng.Int63n(int64(prof.Jitter)))
		}
		n.seq++
		n.stats.Duplicated++
		heap.Push(&n.queue, &delivery{
			at:   time.Now().Add(extra),
			seq:  n.seq,
			to:   to,
			wire: wire,
		})
	}
	n.mu.Unlock()
	select {
	case n.wake <- struct{}{}:
	default:
	}
	return nil
}

// run is the delivery scheduler: it sleeps until the earliest queued
// delivery is due, then hands the decoded copy to the destination inbox.
func (n *Network) run() {
	defer n.wg.Done()
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	for {
		n.mu.Lock()
		var next *delivery
		if n.queue.Len() > 0 {
			next = n.queue[0]
		}
		n.mu.Unlock()

		if next == nil {
			select {
			case <-n.done:
				return
			case <-n.wake:
				continue
			}
		}
		wait := time.Until(next.at)
		if wait > 0 {
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
			timer.Reset(wait)
			select {
			case <-n.done:
				return
			case <-n.wake:
				continue // an earlier delivery may have arrived
			case <-timer.C:
			}
		}
		n.deliverDue()
	}
}

// deliverDue pops and delivers every due message in (time, seq) order.
func (n *Network) deliverDue() {
	for {
		n.mu.Lock()
		if n.queue.Len() == 0 || n.queue[0].at.After(time.Now()) {
			n.mu.Unlock()
			return
		}
		d := heap.Pop(&n.queue).(*delivery)
		e := n.endpoints[d.to]
		n.mu.Unlock()
		if e == nil || e.isClosed() {
			continue
		}
		m, err := msg.Decode(d.wire)
		if err != nil {
			// Encode/Decode are inverses; a failure here is a programming
			// error surfaced loudly in tests via the dropped counter.
			n.mu.Lock()
			n.stats.Dropped++
			n.mu.Unlock()
			continue
		}
		if e.deliver(m, n.done) {
			n.mu.Lock()
			n.stats.Delivered++
			n.stats.Bytes += uint64(len(d.wire))
			n.stats.ByKind[m.Kind]++
			n.mu.Unlock()
		}
	}
}

// delivery is one scheduled message hand-off.
type delivery struct {
	at   time.Time
	seq  uint64
	to   string
	wire []byte
}

// deliveryQueue is a min-heap ordered by (time, enqueue sequence).
type deliveryQueue []*delivery

func (q deliveryQueue) Len() int { return len(q) }
func (q deliveryQueue) Less(i, j int) bool {
	if !q[i].at.Equal(q[j].at) {
		return q[i].at.Before(q[j].at)
	}
	return q[i].seq < q[j].seq
}
func (q deliveryQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *deliveryQueue) Push(x any)   { *q = append(*q, x.(*delivery)) }
func (q *deliveryQueue) Pop() any {
	old := *q
	n := len(old)
	d := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return d
}

// endpoint implements transport.Endpoint on a Network.
type endpoint struct {
	net   *Network
	addr  string
	inbox chan *msg.Message

	mu     sync.Mutex
	closed bool
}

var _ transport.Endpoint = (*endpoint)(nil)

func (e *endpoint) Addr() string { return e.addr }

func (e *endpoint) Send(to string, m *msg.Message) error {
	if e.isClosed() {
		return transport.ErrClosed
	}
	return e.net.send(e.addr, to, m)
}

func (e *endpoint) Multicast(tos []string, m *msg.Message) error {
	for _, to := range tos {
		if err := e.Send(to, m); err != nil {
			return fmt.Errorf("multicast to %q: %w", to, err)
		}
	}
	return nil
}

func (e *endpoint) Recv() <-chan *msg.Message { return e.inbox }

func (e *endpoint) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.closed = true
	return nil
}

func (e *endpoint) isClosed() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.closed
}

// deliver places m in the inbox, giving up if the network shuts down while
// the inbox is full. It reports whether the message was delivered.
func (e *endpoint) deliver(m *msg.Message, done <-chan struct{}) bool {
	if e.isClosed() {
		return false
	}
	select {
	case e.inbox <- m:
		return true
	case <-done:
		return false
	}
}

// closeInbox is called exactly once by Network.Close after the scheduler has
// stopped, so no further sends into the inbox can occur.
func (e *endpoint) closeInbox() {
	e.mu.Lock()
	e.closed = true
	e.mu.Unlock()
	close(e.inbox)
}
