// Package memnet is the simulated-network substrate: an in-process message
// network with configurable per-link latency, jitter, and loss, dynamic
// partitions, multicast, and exact message/byte accounting.
//
// It substitutes for the Internet testbed of the paper's prototype. Messages
// are fully encoded and re-decoded on every hop, so wire sizes are real and
// senders never share mutable state with receivers. Delivered messages are
// produced by msg.DecodeAlias over the immutable wire frame — a multicast's
// receivers (and duplicate deliveries) alias one shared read-only backing
// array for Args/Payload, so receivers must treat those byte slices as
// immutable, exactly as they would data read from a socket buffer they do
// not own. A lossless network models the paper's TCP configuration; setting
// a loss rate models the UDP configuration of §4.2, where reliability is
// recovered by the coherence protocol rather than the transport.
//
//globelint:deterministic
package memnet

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
	"repro/internal/msg"
	"repro/internal/transport"
)

// LinkProfile describes one directed link's behaviour.
type LinkProfile struct {
	// Latency is the base one-way delivery delay.
	Latency time.Duration
	// Jitter, if non-zero, adds a uniform random delay in [0, Jitter).
	Jitter time.Duration
	// Loss is the probability in [0,1] that a message is silently dropped.
	Loss float64
	// Dup is the probability in [0,1] that a message is delivered twice
	// (the second copy after an extra jittered delay) — UDP-style
	// duplication for exercising protocol dedup paths.
	Dup float64
}

// Stats is a snapshot of network traffic counters.
type Stats struct {
	Sent       uint64
	Delivered  uint64
	Dropped    uint64 // lost by link loss or partition
	Duplicated uint64 // extra copies injected by link duplication
	Bytes      uint64 // wire bytes of delivered messages
	ByKind     map[msg.Kind]uint64
}

// counters holds the live traffic counters as atomics, so senders bump them
// without serialising on the network mutex; the per-kind counters are a
// fixed array indexed by msg.Kind rather than a locked map.
type counters struct {
	sent       atomic.Uint64
	delivered  atomic.Uint64
	dropped    atomic.Uint64
	duplicated atomic.Uint64
	bytes      atomic.Uint64
	byKind     [msg.KindCount]atomic.Uint64
}

// snapshot copies the counters into the exported Stats form.
func (c *counters) snapshot() Stats {
	s := Stats{
		Sent:       c.sent.Load(),
		Delivered:  c.delivered.Load(),
		Dropped:    c.dropped.Load(),
		Duplicated: c.duplicated.Load(),
		Bytes:      c.bytes.Load(),
		ByKind:     make(map[msg.Kind]uint64),
	}
	for k := range c.byKind {
		if v := c.byKind[k].Load(); v > 0 {
			s.ByKind[msg.Kind(k)] = v
		}
	}
	return s
}

// reset zeroes every counter.
func (c *counters) reset() {
	c.sent.Store(0)
	c.delivered.Store(0)
	c.dropped.Store(0)
	c.duplicated.Store(0)
	c.bytes.Store(0)
	for k := range c.byKind {
		c.byKind[k].Store(0)
	}
}

// numShards is the number of delivery-queue shards. Destinations are hashed
// onto shards, so concurrent senders contend only when they target the same
// shard; 16 comfortably covers the core counts this simulator runs on.
const numShards = 16

// shard is one slice of the delivery schedule: a min-heap of pending
// deliveries with its own lock and FIFO tiebreak sequence. In parallel
// delivery mode each shard also owns its drainer's wake state (mirroring the
// Network-level fields the single scheduler uses). The struct is padded out
// so neighbouring shards do not false-share a cache line.
type shard struct {
	mu    sync.Mutex
	seq   uint64
	queue deliveryQueue
	// sleepUntil/wake serve the shard's own drain goroutine in parallel
	// mode; unused (zero) in deterministic mode.
	sleepUntil atomic.Int64
	wake       chan struct{}
	_          [8]byte
}

// Network is a simulated network. Create endpoints with Endpoint, wire their
// behaviour with SetLink/SetDefaultLink, and tear everything down with
// Close, which waits for the delivery scheduler to stop.
//
// Concurrency model: topology (endpoints, links, partitions) is guarded by a
// read-write mutex that the send path only read-locks; loss/jitter/dup
// randomness comes from per-endpoint RNGs; and scheduled deliveries live in
// per-destination shards, so N concurrent senders to distinct destinations
// share no exclusive lock. By default one scheduler goroutine (the clock
// driver) drains all shards in timestamp order, which makes seeded runs
// reproduce their exact delivery order; WithParallelDelivery trades that
// determinism for one drain goroutine per shard.
type Network struct {
	mu        sync.RWMutex
	endpoints map[string]*endpoint
	// graveyard holds endpoints closed before the network itself closes:
	// their addresses are free for reuse, but their receive channels still
	// close when the network does (the documented Recv contract).
	graveyard []*endpoint
	links     map[linkKey]LinkProfile
	defProf   LinkProfile
	parts     map[linkKey]bool
	closed    bool

	seed     int64
	clk      clock.Clock
	parallel bool
	stats    counters
	shards   [numShards]shard
	// sleepUntil is the scheduler's planned wake time (UnixNano); senders
	// skip the wake signal when their delivery is not earlier. While the
	// scheduler is awake (scanning or delivering) it holds MaxInt64, so
	// racing senders always signal and the buffered token forces a rescan.
	sleepUntil atomic.Int64
	wake       chan struct{}
	done       chan struct{}
	wg         sync.WaitGroup
}

type linkKey struct{ from, to string }

// Option configures a Network.
type Option func(*Network)

// WithSeed fixes the base RNG seed. Every endpoint derives its own RNG from
// the base seed and its address, so jitter/loss decisions are deterministic
// per sender regardless of how goroutines interleave across endpoints.
func WithSeed(seed int64) Option {
	return func(n *Network) { n.seed = seed }
}

// WithDefaultLink sets the profile used by links that have no explicit
// SetLink configuration.
func WithDefaultLink(p LinkProfile) Option {
	return func(n *Network) { n.defProf = p }
}

// WithClock injects the clock that times latency and jitter delivery
// (default clock.Real{}); a clock.Fake lets tests step simulated latency
// without wall-clock waits.
func WithClock(c clock.Clock) Option {
	return func(n *Network) { n.clk = c }
}

// WithParallelDelivery replaces the single delivery scheduler with one drain
// goroutine per shard. Each destination still maps to exactly one shard, so
// per-(sender,destination) FIFO order and the (time, seq) schedule within a
// shard are preserved — but deliveries to *different* destinations interleave
// nondeterministically across drainers, and decode (DecodeAlias) runs
// concurrently shard-by-shard instead of serialising on one goroutine.
//
// Use it for throughput work (load generation, contention benchmarks at
// GOMAXPROCS>1). Leave it off — the default — wherever a seeded run must
// reproduce its exact delivery order: the chaos harness and every seeded
// regression test rely on the deterministic single-drainer schedule.
func WithParallelDelivery() Option {
	return func(n *Network) { n.parallel = true }
}

// New creates a network. By default links are instantaneous and lossless.
func New(opts ...Option) *Network {
	n := &Network{
		seed:      1,
		clk:       clock.Real{},
		endpoints: make(map[string]*endpoint),
		links:     make(map[linkKey]LinkProfile),
		parts:     make(map[linkKey]bool),
		wake:      make(chan struct{}, 1),
		done:      make(chan struct{}),
	}
	for _, o := range opts {
		o(n)
	}
	n.sleepUntil.Store(math.MaxInt64)
	if n.parallel {
		for i := range n.shards {
			sh := &n.shards[i]
			sh.wake = make(chan struct{}, 1)
			sh.sleepUntil.Store(math.MaxInt64)
			n.wg.Add(1)
			go n.runShard(sh)
		}
	} else {
		n.wg.Add(1)
		go n.run()
	}
	return n
}

// fnv64a hashes s (FNV-1a) for shard selection and per-endpoint RNG seeds.
func fnv64a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Endpoint creates (or returns an error for a duplicate) the endpoint at
// addr.
func (n *Network) Endpoint(addr string) (transport.Endpoint, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, transport.ErrClosed
	}
	if _, ok := n.endpoints[addr]; ok {
		return nil, fmt.Errorf("memnet: duplicate endpoint %q", addr)
	}
	h := fnv64a(addr)
	e := &endpoint{
		net:   n,
		addr:  addr,
		inbox: make(chan *msg.Message, 1024),
		shard: &n.shards[h%numShards],
		rng:   rand.New(rand.NewSource(n.seed ^ int64(h))),
	}
	n.endpoints[addr] = e
	return e, nil
}

// SetLink configures the directed link from -> to.
func (n *Network) SetLink(from, to string, p LinkProfile) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.links[linkKey{from, to}] = p
}

// SetLinkBoth configures both directions between a and b.
func (n *Network) SetLinkBoth(a, b string, p LinkProfile) {
	n.SetLink(a, b, p)
	n.SetLink(b, a, p)
}

// Partition cuts both directions between a and b until Heal.
func (n *Network) Partition(a, b string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.parts[linkKey{a, b}] = true
	n.parts[linkKey{b, a}] = true
}

// Heal restores both directions between a and b.
func (n *Network) Heal(a, b string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.parts, linkKey{a, b})
	delete(n.parts, linkKey{b, a})
}

// Stats returns a copy of the traffic counters.
func (n *Network) Stats() Stats { return n.stats.snapshot() }

// StatsMap implements transport.StatsSource: the aggregate counters under
// snake_case keys for the observability bridge (per-kind counts stay on
// Stats only).
func (n *Network) StatsMap() map[string]uint64 {
	return map[string]uint64{
		"frames_sent":       n.stats.sent.Load(),
		"frames_delivered":  n.stats.delivered.Load(),
		"frames_dropped":    n.stats.dropped.Load(),
		"frames_duplicated": n.stats.duplicated.Load(),
		"bytes_delivered":   n.stats.bytes.Load(),
	}
}

// ResetStats zeroes the traffic counters (benchmark warm-up support).
func (n *Network) ResetStats() { n.stats.reset() }

// Close shuts down the network: endpoints' receive channels close and the
// delivery scheduler stops. Close blocks until the scheduler exits.
func (n *Network) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	eps := make([]*endpoint, 0, len(n.endpoints)+len(n.graveyard))
	for _, e := range n.endpoints {
		eps = append(eps, e)
	}
	eps = append(eps, n.graveyard...)
	n.graveyard = nil
	n.mu.Unlock()
	close(n.done)
	n.wg.Wait()
	for _, e := range eps {
		e.closeInbox()
	}
	return nil
}

// hop is one resolved destination of a send: the pinned endpoint, the link
// profile to apply, and whether the link is currently partitioned.
type hop struct {
	dst  *endpoint
	prof LinkProfile
	part bool
}

// resolveLocked looks up one destination under the topology read lock.
func (n *Network) resolveLocked(from, to string) (hop, bool) {
	dst, ok := n.endpoints[to]
	if !ok {
		return hop{}, false
	}
	prof, ok := n.links[linkKey{from, to}]
	if !ok {
		prof = n.defProf
	}
	return hop{dst: dst, prof: prof, part: n.parts[linkKey{from, to}]}, true
}

// send enqueues a message for delivery, applying the link profile. The
// topology is only read-locked, so concurrent senders do not serialise.
func (n *Network) send(src *endpoint, to string, m *msg.Message) error {
	wire := msg.Encode(m)
	n.mu.RLock()
	if n.closed {
		n.mu.RUnlock()
		return transport.ErrClosed
	}
	h, ok := n.resolveLocked(src.addr, to)
	n.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: %q", transport.ErrUnknownAddr, to)
	}
	n.enqueue(src, h, wire)
	return nil
}

// multicast is the encode-once fan-out fast path: the frame is serialised a
// single time and the resulting wire bytes are shared by every scheduled
// delivery. Receivers each decode their own Message struct but alias the
// shared read-only frame for Args/Payload (see the package doc's
// immutability contract).
//
// Fan-out is best-effort: an unknown destination (e.g. a child whose
// endpoint closed and freed its address) must not starve the remaining
// destinations, so every address is attempted and the first failure is
// reported after the sweep.
func (n *Network) multicast(src *endpoint, tos []string, m *msg.Message) error {
	if len(tos) == 0 {
		return nil
	}
	wire := msg.Encode(m)
	var firstErr error
	var hopArr [8]hop
	hops := hopArr[:0]
	n.mu.RLock()
	if n.closed {
		n.mu.RUnlock()
		return transport.ErrClosed
	}
	for _, to := range tos {
		h, ok := n.resolveLocked(src.addr, to)
		if !ok {
			if firstErr == nil {
				firstErr = fmt.Errorf("multicast to %q: %w", to, transport.ErrUnknownAddr)
			}
			continue
		}
		hops = append(hops, h)
	}
	n.mu.RUnlock()
	for i := range hops {
		n.enqueue(src, hops[i], wire)
	}
	return firstErr
}

// enqueue applies the link profile and schedules the wire bytes on the
// destination's shard. The destination endpoint is captured by pointer at
// enqueue time so a delivery in flight when the endpoint closes is never
// handed to a fresh endpoint that reuses the address. Loss, jitter, and
// duplication randomness come from the sender's own RNG, so senders never
// contend on a shared randomness source.
func (n *Network) enqueue(src *endpoint, h hop, wire []byte) {
	n.stats.sent.Add(1)
	if h.part {
		n.stats.dropped.Add(1)
		return // partitions drop silently, like the real network
	}
	prof := h.prof
	delay := prof.Latency
	var extra time.Duration
	dup := false
	if prof.Loss > 0 || prof.Jitter > 0 || prof.Dup > 0 {
		src.rngMu.Lock()
		if prof.Loss > 0 && src.rng.Float64() < prof.Loss {
			src.rngMu.Unlock()
			n.stats.dropped.Add(1)
			return
		}
		if prof.Jitter > 0 {
			delay += time.Duration(src.rng.Int63n(int64(prof.Jitter)))
		}
		if prof.Dup > 0 && src.rng.Float64() < prof.Dup {
			dup = true
			extra = delay + prof.Latency
			if prof.Jitter > 0 {
				extra += time.Duration(src.rng.Int63n(int64(prof.Jitter)))
			}
		}
		src.rngMu.Unlock()
	}
	at := n.clk.Now().Add(delay)
	sh := h.dst.shard
	sh.mu.Lock()
	sh.seq++
	heap.Push(&sh.queue, &delivery{at: at, seq: sh.seq, ep: h.dst, wire: wire})
	if dup {
		n.stats.duplicated.Add(1)
		sh.seq++
		heap.Push(&sh.queue, &delivery{at: at.Add(extra - delay), seq: sh.seq, ep: h.dst, wire: wire})
	}
	sh.mu.Unlock()
	// Wake the drainer only when this delivery is due before its planned
	// wake-up; a sleeping drainer rescans its queue when it wakes, so later
	// deliveries need no signal. In parallel mode the signal targets the
	// destination shard's own drainer rather than the global scheduler.
	if n.parallel {
		if at.UnixNano() < sh.sleepUntil.Load() {
			wakeChan(sh.wake)
		}
		return
	}
	if at.UnixNano() < n.sleepUntil.Load() {
		n.wakeScheduler()
	}
}

func (n *Network) wakeScheduler() { wakeChan(n.wake) }

// wakeChan posts a non-blocking wake token; a full buffer already guarantees
// the sleeper's next select returns immediately.
func wakeChan(ch chan struct{}) {
	select {
	case ch <- struct{}{}:
	default:
	}
}

// run is the delivery scheduler (the clock driver): it sleeps until the
// earliest queued delivery across all shards is due, then drains every due
// delivery into its destination inbox.
func (n *Network) run() {
	defer n.wg.Done()
	for {
		// Awake: any concurrent enqueue signals the wake channel, whose
		// buffered token makes the next select return immediately, closing
		// the race with the shard scan below.
		n.sleepUntil.Store(math.MaxInt64)
		next, ok := n.earliest()
		if !ok {
			select {
			case <-n.done:
				return
			case <-n.wake:
				continue
			}
		}
		wait := next.Sub(n.clk.Now())
		if wait > 0 {
			n.sleepUntil.Store(next.UnixNano())
			select {
			case <-n.done:
				return
			case <-n.wake:
				continue // an earlier delivery may have arrived
			case <-n.clk.After(wait):
			}
		}
		n.deliverDue()
	}
}

// runShard is one shard's delivery drainer in parallel mode: the same
// sleep-until-due loop as run, scoped to a single shard's queue. Decoding
// happens on this goroutine, so shards decode concurrently; an endpoint
// inbox at capacity blocks only the shard that owns that destination.
func (n *Network) runShard(sh *shard) {
	defer n.wg.Done()
	for {
		// Awake: racing enqueues on this shard signal sh.wake, whose
		// buffered token makes the next select return immediately.
		sh.sleepUntil.Store(math.MaxInt64)
		sh.mu.Lock()
		var next time.Time
		ok := sh.queue.Len() > 0
		if ok {
			next = sh.queue[0].at
		}
		sh.mu.Unlock()
		if !ok {
			select {
			case <-n.done:
				return
			case <-sh.wake:
				continue
			}
		}
		wait := next.Sub(n.clk.Now())
		if wait > 0 {
			sh.sleepUntil.Store(next.UnixNano())
			select {
			case <-n.done:
				return
			case <-sh.wake:
				continue // an earlier delivery may have arrived
			case <-n.clk.After(wait):
			}
		}
		n.drainShard(sh)
	}
}

// drainShard pops and delivers every due message on one shard, in (time,
// seq) order — the per-destination FIFO promise is unchanged from the
// single-scheduler path because a destination maps to exactly one shard.
func (n *Network) drainShard(sh *shard) {
	for {
		sh.mu.Lock()
		if sh.queue.Len() == 0 || sh.queue[0].at.After(n.clk.Now()) {
			sh.mu.Unlock()
			return
		}
		d := heap.Pop(&sh.queue).(*delivery)
		sh.mu.Unlock()
		n.deliverOne(d)
	}
}

// earliest peeks every shard for the soonest pending delivery time.
func (n *Network) earliest() (time.Time, bool) {
	var at time.Time
	found := false
	for i := range n.shards {
		sh := &n.shards[i]
		sh.mu.Lock()
		if sh.queue.Len() > 0 {
			t := sh.queue[0].at
			if !found || t.Before(at) {
				at = t
				found = true
			}
		}
		sh.mu.Unlock()
	}
	return at, found
}

// deliverDue pops and delivers every due message. Within a shard deliveries
// happen in (time, seq) order, which preserves FIFO per destination (each
// destination maps to exactly one shard); deliveries to different
// destinations carry no ordering promise.
func (n *Network) deliverDue() {
	for i := range n.shards {
		n.drainShard(&n.shards[i])
	}
}

// deliverOne decodes and hands one due delivery to its destination inbox.
func (n *Network) deliverOne(d *delivery) {
	e := d.ep
	if e.isClosed() {
		return
	}
	// Zero-copy decode: the scheduler never reuses a frame, and multicast
	// frames are shared read-only, so the delivered message may alias the
	// wire bytes.
	m, err := msg.DecodeAlias(d.wire)
	if err != nil {
		// Encode/Decode are inverses; a failure here is a programming
		// error surfaced loudly in tests via the dropped counter.
		n.stats.dropped.Add(1)
		return
	}
	if e.deliver(m, n.done) {
		n.stats.delivered.Add(1)
		n.stats.bytes.Add(uint64(len(d.wire)))
		if k := int(m.Kind); k >= 0 && k < msg.KindCount {
			n.stats.byKind[k].Add(1)
		}
	}
}

// delivery is one scheduled message hand-off, pinned to the endpoint that
// existed at send time.
type delivery struct {
	at   time.Time
	seq  uint64
	ep   *endpoint
	wire []byte
}

// deliveryQueue is a min-heap ordered by (time, enqueue sequence).
type deliveryQueue []*delivery

func (q deliveryQueue) Len() int { return len(q) }
func (q deliveryQueue) Less(i, j int) bool {
	if !q[i].at.Equal(q[j].at) {
		return q[i].at.Before(q[j].at)
	}
	return q[i].seq < q[j].seq
}
func (q deliveryQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *deliveryQueue) Push(x any)   { *q = append(*q, x.(*delivery)) }
func (q *deliveryQueue) Pop() any {
	old := *q
	n := len(old)
	d := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return d
}

// endpoint implements transport.Endpoint on a Network. Each endpoint owns a
// deterministic RNG (derived from the network seed and its address) for the
// link randomness of its outbound sends, and is pinned to the delivery
// shard its inbound traffic is scheduled on.
type endpoint struct {
	net   *Network
	addr  string
	inbox chan *msg.Message
	shard *shard

	rngMu sync.Mutex
	rng   *rand.Rand

	mu     sync.Mutex
	closed bool
}

var _ transport.Endpoint = (*endpoint)(nil)

// A Network is a Fabric: webobj systems deploy over it directly.
var _ transport.Fabric = (*Network)(nil)

func (e *endpoint) Addr() string { return e.addr }

func (e *endpoint) Send(to string, m *msg.Message) error {
	if e.isClosed() {
		return transport.ErrClosed
	}
	return e.net.send(e, to, m)
}

func (e *endpoint) Multicast(tos []string, m *msg.Message) error {
	if e.isClosed() {
		return transport.ErrClosed
	}
	return e.net.multicast(e, tos, m)
}

func (e *endpoint) Recv() <-chan *msg.Message { return e.inbox }

// Close marks the endpoint closed and releases its address for reuse.
// Deliveries already scheduled to the old endpoint are discarded; the
// receive channel stays open (draining nothing) until the network closes,
// per the Recv contract.
func (e *endpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	e.mu.Unlock()
	e.net.retire(e)
	return nil
}

// retire removes a closed endpoint from the address table (freeing the
// address for a fresh endpoint) while remembering it so Network.Close still
// closes its receive channel.
func (n *Network) retire(e *endpoint) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return // Network.Close already owns the endpoint list
	}
	if n.endpoints[e.addr] == e {
		delete(n.endpoints, e.addr)
		n.graveyard = append(n.graveyard, e)
	}
	// Drop the buffered deliveries nobody will read, so churny workloads
	// (create/close many endpoints) retain only the small endpoint shells
	// until the network closes their channels.
	for {
		select {
		case <-e.inbox:
		default:
			return
		}
	}
}

func (e *endpoint) isClosed() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.closed
}

// deliver places m in the inbox, giving up if the network shuts down while
// the inbox is full. It reports whether the message was delivered.
func (e *endpoint) deliver(m *msg.Message, done <-chan struct{}) bool {
	if e.isClosed() {
		return false
	}
	select {
	case e.inbox <- m:
		if e.isClosed() {
			// Close raced with the send: retire's drain may already have
			// run, so scoop a buffered message back out rather than pin it
			// (and the wire frame it aliases) until the network closes.
			select {
			case <-e.inbox:
			default:
			}
			return false
		}
		return true
	case <-done:
		return false
	}
}

// closeInbox is called exactly once by Network.Close after the scheduler has
// stopped, so no further sends into the inbox can occur.
func (e *endpoint) closeInbox() {
	e.mu.Lock()
	e.closed = true
	e.mu.Unlock()
	close(e.inbox)
}
