// Package memnet is the simulated-network substrate: an in-process message
// network with configurable per-link latency, jitter, and loss, dynamic
// partitions, multicast, and exact message/byte accounting.
//
// It substitutes for the Internet testbed of the paper's prototype. Messages
// are fully encoded and re-decoded on every hop, so wire sizes are real and
// senders never share mutable state with receivers. Delivered messages are
// produced by msg.DecodeAlias over the immutable wire frame — a multicast's
// receivers (and duplicate deliveries) alias one shared read-only backing
// array for Args/Payload, so receivers must treat those byte slices as
// immutable, exactly as they would data read from a socket buffer they do
// not own. A lossless network models the paper's TCP configuration; setting
// a loss rate models the UDP configuration of §4.2, where reliability is
// recovered by the coherence protocol rather than the transport.
package memnet

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/msg"
	"repro/internal/transport"
)

// LinkProfile describes one directed link's behaviour.
type LinkProfile struct {
	// Latency is the base one-way delivery delay.
	Latency time.Duration
	// Jitter, if non-zero, adds a uniform random delay in [0, Jitter).
	Jitter time.Duration
	// Loss is the probability in [0,1] that a message is silently dropped.
	Loss float64
	// Dup is the probability in [0,1] that a message is delivered twice
	// (the second copy after an extra jittered delay) — UDP-style
	// duplication for exercising protocol dedup paths.
	Dup float64
}

// Stats is a snapshot of network traffic counters.
type Stats struct {
	Sent       uint64
	Delivered  uint64
	Dropped    uint64 // lost by link loss or partition
	Duplicated uint64 // extra copies injected by link duplication
	Bytes      uint64 // wire bytes of delivered messages
	ByKind     map[msg.Kind]uint64
}

// counters holds the live traffic counters as atomics, so senders bump them
// without serialising on the network mutex; the per-kind counters are a
// fixed array indexed by msg.Kind rather than a locked map.
type counters struct {
	sent       atomic.Uint64
	delivered  atomic.Uint64
	dropped    atomic.Uint64
	duplicated atomic.Uint64
	bytes      atomic.Uint64
	byKind     [msg.KindCount]atomic.Uint64
}

// snapshot copies the counters into the exported Stats form.
func (c *counters) snapshot() Stats {
	s := Stats{
		Sent:       c.sent.Load(),
		Delivered:  c.delivered.Load(),
		Dropped:    c.dropped.Load(),
		Duplicated: c.duplicated.Load(),
		Bytes:      c.bytes.Load(),
		ByKind:     make(map[msg.Kind]uint64),
	}
	for k := range c.byKind {
		if v := c.byKind[k].Load(); v > 0 {
			s.ByKind[msg.Kind(k)] = v
		}
	}
	return s
}

// reset zeroes every counter.
func (c *counters) reset() {
	c.sent.Store(0)
	c.delivered.Store(0)
	c.dropped.Store(0)
	c.duplicated.Store(0)
	c.bytes.Store(0)
	for k := range c.byKind {
		c.byKind[k].Store(0)
	}
}

// Network is a simulated network. Create endpoints with Endpoint, wire their
// behaviour with SetLink/SetDefaultLink, and tear everything down with
// Close, which waits for the delivery scheduler to stop.
type Network struct {
	mu        sync.Mutex
	rng       *rand.Rand
	endpoints map[string]*endpoint
	// graveyard holds endpoints closed before the network itself closes:
	// their addresses are free for reuse, but their receive channels still
	// close when the network does (the documented Recv contract).
	graveyard []*endpoint
	links     map[linkKey]LinkProfile
	defProf   LinkProfile
	parts     map[linkKey]bool
	stats     counters
	queue     deliveryQueue
	seq       uint64
	wake      chan struct{}
	done      chan struct{}
	closed    bool
	wg        sync.WaitGroup
}

type linkKey struct{ from, to string }

// Option configures a Network.
type Option func(*Network)

// WithSeed fixes the RNG seed for deterministic jitter and loss decisions.
func WithSeed(seed int64) Option {
	return func(n *Network) { n.rng = rand.New(rand.NewSource(seed)) }
}

// WithDefaultLink sets the profile used by links that have no explicit
// SetLink configuration.
func WithDefaultLink(p LinkProfile) Option {
	return func(n *Network) { n.defProf = p }
}

// New creates a network. By default links are instantaneous and lossless.
func New(opts ...Option) *Network {
	n := &Network{
		rng:       rand.New(rand.NewSource(1)),
		endpoints: make(map[string]*endpoint),
		links:     make(map[linkKey]LinkProfile),
		parts:     make(map[linkKey]bool),
		wake:      make(chan struct{}, 1),
		done:      make(chan struct{}),
	}
	for _, o := range opts {
		o(n)
	}
	n.wg.Add(1)
	go n.run()
	return n
}

// Endpoint creates (or returns an error for a duplicate) the endpoint at
// addr.
func (n *Network) Endpoint(addr string) (transport.Endpoint, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, transport.ErrClosed
	}
	if _, ok := n.endpoints[addr]; ok {
		return nil, fmt.Errorf("memnet: duplicate endpoint %q", addr)
	}
	e := &endpoint{net: n, addr: addr, inbox: make(chan *msg.Message, 1024)}
	n.endpoints[addr] = e
	return e, nil
}

// SetLink configures the directed link from -> to.
func (n *Network) SetLink(from, to string, p LinkProfile) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.links[linkKey{from, to}] = p
}

// SetLinkBoth configures both directions between a and b.
func (n *Network) SetLinkBoth(a, b string, p LinkProfile) {
	n.SetLink(a, b, p)
	n.SetLink(b, a, p)
}

// Partition cuts both directions between a and b until Heal.
func (n *Network) Partition(a, b string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.parts[linkKey{a, b}] = true
	n.parts[linkKey{b, a}] = true
}

// Heal restores both directions between a and b.
func (n *Network) Heal(a, b string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.parts, linkKey{a, b})
	delete(n.parts, linkKey{b, a})
}

// Stats returns a copy of the traffic counters.
func (n *Network) Stats() Stats { return n.stats.snapshot() }

// ResetStats zeroes the traffic counters (benchmark warm-up support).
func (n *Network) ResetStats() { n.stats.reset() }

// Close shuts down the network: endpoints' receive channels close and the
// delivery scheduler stops. Close blocks until the scheduler exits.
func (n *Network) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	eps := make([]*endpoint, 0, len(n.endpoints)+len(n.graveyard))
	for _, e := range n.endpoints {
		eps = append(eps, e)
	}
	eps = append(eps, n.graveyard...)
	n.graveyard = nil
	n.mu.Unlock()
	close(n.done)
	n.wg.Wait()
	for _, e := range eps {
		e.closeInbox()
	}
	return nil
}

// send enqueues a message for delivery, applying the link profile.
func (n *Network) send(from, to string, m *msg.Message) error {
	wire := msg.Encode(m)
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return transport.ErrClosed
	}
	dst, ok := n.endpoints[to]
	if !ok {
		n.mu.Unlock()
		return fmt.Errorf("%w: %q", transport.ErrUnknownAddr, to)
	}
	n.enqueueLocked(from, to, dst, wire)
	n.mu.Unlock()
	n.wakeScheduler()
	return nil
}

// multicast is the encode-once fan-out fast path: the frame is serialised a
// single time and the resulting wire bytes are shared by every scheduled
// delivery. Receivers each decode their own Message struct but alias the
// shared read-only frame for Args/Payload (see the package doc's
// immutability contract).
//
// Fan-out is best-effort: an unknown destination (e.g. a child whose
// endpoint closed and freed its address) must not starve the remaining
// destinations, so every address is attempted and the first failure is
// reported after the sweep.
func (n *Network) multicast(from string, tos []string, m *msg.Message) error {
	if len(tos) == 0 {
		return nil
	}
	wire := msg.Encode(m)
	var firstErr error
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return transport.ErrClosed
	}
	for _, to := range tos {
		dst, ok := n.endpoints[to]
		if !ok {
			if firstErr == nil {
				firstErr = fmt.Errorf("multicast to %q: %w", to, transport.ErrUnknownAddr)
			}
			continue
		}
		n.enqueueLocked(from, to, dst, wire)
	}
	n.mu.Unlock()
	n.wakeScheduler()
	return firstErr
}

// enqueueLocked applies the link profile for from->to and schedules the wire
// bytes for delivery to dst. The destination endpoint is captured by pointer
// at enqueue time so a delivery in flight when the endpoint closes is never
// handed to a fresh endpoint that reuses the address. Callers hold n.mu.
func (n *Network) enqueueLocked(from, to string, dst *endpoint, wire []byte) {
	n.stats.sent.Add(1)
	if n.parts[linkKey{from, to}] {
		n.stats.dropped.Add(1)
		return // partitions drop silently, like the real network
	}
	prof, ok := n.links[linkKey{from, to}]
	if !ok {
		prof = n.defProf
	}
	if prof.Loss > 0 && n.rng.Float64() < prof.Loss {
		n.stats.dropped.Add(1)
		return
	}
	delay := prof.Latency
	if prof.Jitter > 0 {
		delay += time.Duration(n.rng.Int63n(int64(prof.Jitter)))
	}
	n.seq++
	heap.Push(&n.queue, &delivery{
		at:   time.Now().Add(delay),
		seq:  n.seq,
		ep:   dst,
		wire: wire,
	})
	if prof.Dup > 0 && n.rng.Float64() < prof.Dup {
		extra := delay + prof.Latency
		if prof.Jitter > 0 {
			extra += time.Duration(n.rng.Int63n(int64(prof.Jitter)))
		}
		n.seq++
		n.stats.duplicated.Add(1)
		heap.Push(&n.queue, &delivery{
			at:   time.Now().Add(extra),
			seq:  n.seq,
			ep:   dst,
			wire: wire,
		})
	}
}

func (n *Network) wakeScheduler() {
	select {
	case n.wake <- struct{}{}:
	default:
	}
}

// run is the delivery scheduler: it sleeps until the earliest queued
// delivery is due, then hands the decoded copy to the destination inbox.
func (n *Network) run() {
	defer n.wg.Done()
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	for {
		n.mu.Lock()
		var next *delivery
		if n.queue.Len() > 0 {
			next = n.queue[0]
		}
		n.mu.Unlock()

		if next == nil {
			select {
			case <-n.done:
				return
			case <-n.wake:
				continue
			}
		}
		wait := time.Until(next.at)
		if wait > 0 {
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
			timer.Reset(wait)
			select {
			case <-n.done:
				return
			case <-n.wake:
				continue // an earlier delivery may have arrived
			case <-timer.C:
			}
		}
		n.deliverDue()
	}
}

// deliverDue pops and delivers every due message in (time, seq) order.
func (n *Network) deliverDue() {
	for {
		n.mu.Lock()
		if n.queue.Len() == 0 || n.queue[0].at.After(time.Now()) {
			n.mu.Unlock()
			return
		}
		d := heap.Pop(&n.queue).(*delivery)
		e := d.ep
		n.mu.Unlock()
		if e.isClosed() {
			continue
		}
		// Zero-copy decode: the scheduler never reuses a frame, and
		// multicast frames are shared read-only, so the delivered message
		// may alias the wire bytes.
		m, err := msg.DecodeAlias(d.wire)
		if err != nil {
			// Encode/Decode are inverses; a failure here is a programming
			// error surfaced loudly in tests via the dropped counter.
			n.stats.dropped.Add(1)
			continue
		}
		if e.deliver(m, n.done) {
			n.stats.delivered.Add(1)
			n.stats.bytes.Add(uint64(len(d.wire)))
			if k := int(m.Kind); k >= 0 && k < msg.KindCount {
				n.stats.byKind[k].Add(1)
			}
		}
	}
}

// delivery is one scheduled message hand-off, pinned to the endpoint that
// existed at send time.
type delivery struct {
	at   time.Time
	seq  uint64
	ep   *endpoint
	wire []byte
}

// deliveryQueue is a min-heap ordered by (time, enqueue sequence).
type deliveryQueue []*delivery

func (q deliveryQueue) Len() int { return len(q) }
func (q deliveryQueue) Less(i, j int) bool {
	if !q[i].at.Equal(q[j].at) {
		return q[i].at.Before(q[j].at)
	}
	return q[i].seq < q[j].seq
}
func (q deliveryQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *deliveryQueue) Push(x any)   { *q = append(*q, x.(*delivery)) }
func (q *deliveryQueue) Pop() any {
	old := *q
	n := len(old)
	d := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return d
}

// endpoint implements transport.Endpoint on a Network.
type endpoint struct {
	net   *Network
	addr  string
	inbox chan *msg.Message

	mu     sync.Mutex
	closed bool
}

var _ transport.Endpoint = (*endpoint)(nil)

func (e *endpoint) Addr() string { return e.addr }

func (e *endpoint) Send(to string, m *msg.Message) error {
	if e.isClosed() {
		return transport.ErrClosed
	}
	return e.net.send(e.addr, to, m)
}

func (e *endpoint) Multicast(tos []string, m *msg.Message) error {
	if e.isClosed() {
		return transport.ErrClosed
	}
	return e.net.multicast(e.addr, tos, m)
}

func (e *endpoint) Recv() <-chan *msg.Message { return e.inbox }

// Close marks the endpoint closed and releases its address for reuse.
// Deliveries already scheduled to the old endpoint are discarded; the
// receive channel stays open (draining nothing) until the network closes,
// per the Recv contract.
func (e *endpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	e.mu.Unlock()
	e.net.retire(e)
	return nil
}

// retire removes a closed endpoint from the address table (freeing the
// address for a fresh endpoint) while remembering it so Network.Close still
// closes its receive channel.
func (n *Network) retire(e *endpoint) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return // Network.Close already owns the endpoint list
	}
	if n.endpoints[e.addr] == e {
		delete(n.endpoints, e.addr)
		n.graveyard = append(n.graveyard, e)
	}
	// Drop the buffered deliveries nobody will read, so churny workloads
	// (create/close many endpoints) retain only the small endpoint shells
	// until the network closes their channels.
	for {
		select {
		case <-e.inbox:
		default:
			return
		}
	}
}

func (e *endpoint) isClosed() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.closed
}

// deliver places m in the inbox, giving up if the network shuts down while
// the inbox is full. It reports whether the message was delivered.
func (e *endpoint) deliver(m *msg.Message, done <-chan struct{}) bool {
	if e.isClosed() {
		return false
	}
	select {
	case e.inbox <- m:
		if e.isClosed() {
			// Close raced with the send: retire's drain may already have
			// run, so scoop a buffered message back out rather than pin it
			// (and the wire frame it aliases) until the network closes.
			select {
			case <-e.inbox:
			default:
			}
			return false
		}
		return true
	case <-done:
		return false
	}
}

// closeInbox is called exactly once by Network.Close after the scheduler has
// stopped, so no further sends into the inbox can occur.
func (e *endpoint) closeInbox() {
	e.mu.Lock()
	e.closed = true
	e.mu.Unlock()
	close(e.inbox)
}
