package memnet

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/ids"
	"repro/internal/msg"
	"repro/internal/transport"
)

func testMsg(kind msg.Kind, payload string) *msg.Message {
	return &msg.Message{Kind: kind, Object: "o", Payload: []byte(payload)}
}

func recvOne(t *testing.T, ep transport.Endpoint) *msg.Message {
	t.Helper()
	select {
	case m, ok := <-ep.Recv():
		if !ok {
			t.Fatalf("recv channel closed")
		}
		return m
	case <-time.After(5 * time.Second):
		t.Fatalf("timed out waiting for message")
		return nil
	}
}

func TestPointToPointDelivery(t *testing.T) {
	n := New()
	defer n.Close()
	a, err := n.Endpoint("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.Endpoint("b")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Send("b", testMsg(msg.KindUpdate, "hello")); err != nil {
		t.Fatal(err)
	}
	m := recvOne(t, b)
	if string(m.Payload) != "hello" {
		t.Fatalf("payload = %q", m.Payload)
	}
	if a.Addr() != "a" || b.Addr() != "b" {
		t.Fatalf("addresses wrong")
	}
}

func TestMessagesAreDeepCopies(t *testing.T) {
	n := New()
	defer n.Close()
	a, _ := n.Endpoint("a")
	b, _ := n.Endpoint("b")
	orig := &msg.Message{Kind: msg.KindUpdate, Object: "o", VVec: msg.VecFrom(ids.VersionVec{1: 1}), Payload: []byte("x")}
	if err := a.Send("b", orig); err != nil {
		t.Fatal(err)
	}
	got := recvOne(t, b)
	got.VVec.Set(1, 99)
	got.Payload[0] = 'y'
	if orig.VVec.Get(1) != 1 || orig.Payload[0] != 'x' {
		t.Fatalf("delivered message aliases sender state")
	}
}

func TestUnknownAddress(t *testing.T) {
	n := New()
	defer n.Close()
	a, _ := n.Endpoint("a")
	err := a.Send("nowhere", testMsg(msg.KindUpdate, ""))
	if err == nil {
		t.Fatalf("want error for unknown address")
	}
}

func TestDuplicateEndpoint(t *testing.T) {
	n := New()
	defer n.Close()
	if _, err := n.Endpoint("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Endpoint("a"); err == nil {
		t.Fatalf("duplicate endpoint should fail")
	}
}

func TestLatencyOrderingFIFOPerLink(t *testing.T) {
	n := New(WithDefaultLink(LinkProfile{Latency: 2 * time.Millisecond}))
	defer n.Close()
	a, _ := n.Endpoint("a")
	b, _ := n.Endpoint("b")
	const k = 20
	for i := 0; i < k; i++ {
		if err := a.Send("b", &msg.Message{Kind: msg.KindUpdate, Object: "o", NetSeq: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < k; i++ {
		m := recvOne(t, b)
		if m.NetSeq != uint64(i) {
			t.Fatalf("out-of-order delivery on same link: got %d want %d", m.NetSeq, i)
		}
	}
}

func TestLossDropsSomeMessages(t *testing.T) {
	n := New(WithSeed(7), WithDefaultLink(LinkProfile{Loss: 0.5}))
	defer n.Close()
	a, _ := n.Endpoint("a")
	if _, err := n.Endpoint("b"); err != nil {
		t.Fatal(err)
	}
	const k = 200
	for i := 0; i < k; i++ {
		if err := a.Send("b", testMsg(msg.KindUpdate, "x")); err != nil {
			t.Fatal(err)
		}
	}
	// Wait for deliveries to drain.
	deadline := time.Now().Add(5 * time.Second)
	for {
		s := n.Stats()
		if s.Delivered+s.Dropped == k {
			if s.Dropped == 0 || s.Delivered == 0 {
				t.Fatalf("50%% loss should drop some and deliver some: %+v", s)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("drain timeout: %+v", s)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestPartitionAndHeal(t *testing.T) {
	n := New()
	defer n.Close()
	a, _ := n.Endpoint("a")
	b, _ := n.Endpoint("b")
	n.Partition("a", "b")
	if err := a.Send("b", testMsg(msg.KindUpdate, "lost")); err != nil {
		t.Fatal(err)
	}
	s := n.Stats()
	if s.Dropped != 1 {
		t.Fatalf("partitioned send not dropped: %+v", s)
	}
	n.Heal("a", "b")
	if err := a.Send("b", testMsg(msg.KindUpdate, "ok")); err != nil {
		t.Fatal(err)
	}
	m := recvOne(t, b)
	if string(m.Payload) != "ok" {
		t.Fatalf("post-heal payload %q", m.Payload)
	}
}

func TestMulticast(t *testing.T) {
	n := New()
	defer n.Close()
	src, _ := n.Endpoint("src")
	var sinks []transport.Endpoint
	addrs := []string{"s1", "s2", "s3"}
	for _, ad := range addrs {
		ep, _ := n.Endpoint(ad)
		sinks = append(sinks, ep)
	}
	if err := src.Multicast(addrs, testMsg(msg.KindUpdate, "all")); err != nil {
		t.Fatal(err)
	}
	for _, s := range sinks {
		if got := recvOne(t, s); string(got.Payload) != "all" {
			t.Fatalf("multicast payload %q", got.Payload)
		}
	}
}

func TestStatsCounters(t *testing.T) {
	n := New()
	defer n.Close()
	a, _ := n.Endpoint("a")
	b, _ := n.Endpoint("b")
	m := testMsg(msg.KindInvalidate, "payload")
	size := uint64(msg.WireSize(m))
	if err := a.Send("b", m); err != nil {
		t.Fatal(err)
	}
	recvOne(t, b)
	s := n.Stats()
	if s.Sent != 1 || s.Delivered != 1 || s.Dropped != 0 {
		t.Fatalf("counters wrong: %+v", s)
	}
	if s.Bytes != size {
		t.Fatalf("bytes = %d, want %d", s.Bytes, size)
	}
	if s.ByKind[msg.KindInvalidate] != 1 {
		t.Fatalf("by-kind counter wrong: %v", s.ByKind)
	}
	n.ResetStats()
	if s2 := n.Stats(); s2.Sent != 0 || len(s2.ByKind) != 0 {
		t.Fatalf("ResetStats did not clear: %+v", s2)
	}
}

func TestClosedEndpointStopsReceiving(t *testing.T) {
	// The latency must comfortably exceed any plausible scheduling delay
	// between Send and Close, or the in-flight frame lands before the
	// endpoint closes and the Delivered==0 assertion turns flaky.
	n := New(WithDefaultLink(LinkProfile{Latency: 100 * time.Millisecond}))
	defer n.Close()
	a, _ := n.Endpoint("a")
	b, _ := n.Endpoint("b")
	// A delivery already in flight when the endpoint closes is discarded.
	if err := a.Send("b", testMsg(msg.KindUpdate, "x")); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(150 * time.Millisecond)
	s := n.Stats()
	if s.Delivered != 0 {
		t.Fatalf("message delivered to closed endpoint: %+v", s)
	}
	// The address is gone from the network: new sends fail fast.
	if err := a.Send("b", testMsg(msg.KindUpdate, "x")); !errors.Is(err, transport.ErrUnknownAddr) {
		t.Fatalf("send to closed address: got %v, want ErrUnknownAddr", err)
	}
	if err := b.Send("a", testMsg(msg.KindUpdate, "x")); err == nil {
		t.Fatalf("send from closed endpoint should fail")
	}
	if err := b.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestClosedAddressCanBeRecreated(t *testing.T) {
	n := New()
	defer n.Close()
	a, _ := n.Endpoint("a")
	b, err := n.Endpoint("b")
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	b2, err := n.Endpoint("b")
	if err != nil {
		t.Fatalf("re-creating a closed address: %v", err)
	}
	if err := a.Send("b", testMsg(msg.KindUpdate, "fresh")); err != nil {
		t.Fatal(err)
	}
	if got := recvOne(t, b2); string(got.Payload) != "fresh" {
		t.Fatalf("payload %q", got.Payload)
	}
	// The old endpoint's channel still closes when the network closes.
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case _, ok := <-b.Recv():
		if ok {
			t.Fatalf("unexpected message on retired endpoint")
		}
	case <-time.After(time.Second):
		t.Fatalf("retired endpoint's recv channel not closed after network close")
	}
}

func TestNetworkCloseClosesRecvChannels(t *testing.T) {
	n := New()
	a, _ := n.Endpoint("a")
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case _, ok := <-a.Recv():
		if ok {
			t.Fatalf("unexpected message after close")
		}
	case <-time.After(time.Second):
		t.Fatalf("recv channel not closed after network close")
	}
	if _, err := n.Endpoint("late"); err == nil {
		t.Fatalf("endpoint creation after close should fail")
	}
	if err := n.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestPerLinkProfilesOverrideDefault(t *testing.T) {
	n := New(WithDefaultLink(LinkProfile{Loss: 1.0})) // default loses everything
	defer n.Close()
	a, _ := n.Endpoint("a")
	b, _ := n.Endpoint("b")
	n.SetLinkBoth("a", "b", LinkProfile{}) // explicit lossless link
	if err := a.Send("b", testMsg(msg.KindUpdate, "ok")); err != nil {
		t.Fatal(err)
	}
	if got := recvOne(t, b); string(got.Payload) != "ok" {
		t.Fatalf("payload %q", got.Payload)
	}
}

func TestJitterStillDelivers(t *testing.T) {
	n := New(WithSeed(3), WithDefaultLink(LinkProfile{Latency: time.Millisecond, Jitter: 2 * time.Millisecond}))
	defer n.Close()
	a, _ := n.Endpoint("a")
	b, _ := n.Endpoint("b")
	const k = 10
	for i := 0; i < k; i++ {
		if err := a.Send("b", testMsg(msg.KindUpdate, "j")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < k; i++ {
		recvOne(t, b)
	}
}

// TestMulticastEncodesOnce: the fan-out fast path serialises the frame a
// single time and shares the wire bytes across all destinations.
func TestMulticastEncodesOnce(t *testing.T) {
	n := New()
	defer n.Close()
	src, _ := n.Endpoint("src")
	var sinks []transport.Endpoint
	addrs := []string{"s1", "s2", "s3", "s4"}
	for _, ad := range addrs {
		ep, _ := n.Endpoint(ad)
		sinks = append(sinks, ep)
	}
	var encodes atomic.Int64
	msg.EncodeHook = func(*msg.Message) { encodes.Add(1) }
	defer func() { msg.EncodeHook = nil }()
	if err := src.Multicast(addrs, testMsg(msg.KindUpdate, "once")); err != nil {
		t.Fatal(err)
	}
	for _, s := range sinks {
		if got := recvOne(t, s); string(got.Payload) != "once" {
			t.Fatalf("multicast payload %q", got.Payload)
		}
	}
	if got := encodes.Load(); got != 1 {
		t.Fatalf("multicast to %d destinations encoded %d times, want 1", len(addrs), got)
	}
	if s := n.Stats(); s.Sent != uint64(len(addrs)) || s.Delivered != uint64(len(addrs)) {
		t.Fatalf("fan-out counters: %+v", s)
	}
}

// TestConcurrentSendersStats: hammer the network from many goroutines to
// shake out races in the atomic counters and shared encode path (run with
// -race).
func TestConcurrentSendersStats(t *testing.T) {
	n := New()
	defer n.Close()
	const senders = 8
	const per = 50
	sink, _ := n.Endpoint("sink")
	eps := make([]transport.Endpoint, senders)
	for i := range eps {
		eps[i], _ = n.Endpoint(string(rune('a' + i)))
	}
	var wg sync.WaitGroup
	for _, ep := range eps {
		wg.Add(1)
		go func(ep transport.Endpoint) {
			defer wg.Done()
			for j := 0; j < per; j++ {
				_ = ep.Send("sink", testMsg(msg.KindUpdate, "x"))
			}
		}(ep)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < senders*per; i++ {
			recvOne(t, sink)
		}
	}()
	wg.Wait()
	<-done
	if s := n.Stats(); s.Sent != senders*per || s.Delivered != senders*per {
		t.Fatalf("concurrent counters: %+v", s)
	}
}

// TestInFlightDeliveryNotHandedToRecreatedEndpoint: a delivery scheduled to
// an endpoint that closes before it lands is discarded, even if a fresh
// endpoint reuses the address in the meantime — deliveries are pinned to the
// endpoint incarnation that existed at send time.
func TestInFlightDeliveryNotHandedToRecreatedEndpoint(t *testing.T) {
	n := New(WithDefaultLink(LinkProfile{Latency: 20 * time.Millisecond}))
	defer n.Close()
	a, _ := n.Endpoint("a")
	b, _ := n.Endpoint("b")
	if err := a.Send("b", testMsg(msg.KindUpdate, "stale")); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	b2, err := n.Endpoint("b")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Send("b", testMsg(msg.KindUpdate, "fresh")); err != nil {
		t.Fatal(err)
	}
	if got := recvOne(t, b2); string(got.Payload) != "fresh" {
		t.Fatalf("recreated endpoint received %q; the stale in-flight frame must be discarded", got.Payload)
	}
	select {
	case m := <-b2.Recv():
		t.Fatalf("unexpected second delivery %q on recreated endpoint", m.Payload)
	case <-time.After(50 * time.Millisecond):
	}
}

// TestMulticastBestEffortPastClosedDestination: a destination whose
// endpoint closed (freeing its address) must not starve the remaining
// fan-out targets; the sweep completes and the failure is still reported.
func TestMulticastBestEffortPastClosedDestination(t *testing.T) {
	n := New()
	defer n.Close()
	src, _ := n.Endpoint("src")
	s1, _ := n.Endpoint("s1")
	s2, _ := n.Endpoint("s2")
	s3, _ := n.Endpoint("s3")
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	err := src.Multicast([]string{"s1", "s2", "s3"}, testMsg(msg.KindUpdate, "go"))
	if !errors.Is(err, transport.ErrUnknownAddr) {
		t.Fatalf("multicast error = %v, want ErrUnknownAddr for the closed destination", err)
	}
	for _, s := range []transport.Endpoint{s1, s3} {
		if got := recvOne(t, s); string(got.Payload) != "go" {
			t.Fatalf("live destination starved: %q", got.Payload)
		}
	}
}
