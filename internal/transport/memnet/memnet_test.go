package memnet

import (
	"testing"
	"time"

	"repro/internal/ids"
	"repro/internal/msg"
	"repro/internal/transport"
)

func testMsg(kind msg.Kind, payload string) *msg.Message {
	return &msg.Message{Kind: kind, Object: "o", Payload: []byte(payload)}
}

func recvOne(t *testing.T, ep transport.Endpoint) *msg.Message {
	t.Helper()
	select {
	case m, ok := <-ep.Recv():
		if !ok {
			t.Fatalf("recv channel closed")
		}
		return m
	case <-time.After(5 * time.Second):
		t.Fatalf("timed out waiting for message")
		return nil
	}
}

func TestPointToPointDelivery(t *testing.T) {
	n := New()
	defer n.Close()
	a, err := n.Endpoint("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.Endpoint("b")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Send("b", testMsg(msg.KindUpdate, "hello")); err != nil {
		t.Fatal(err)
	}
	m := recvOne(t, b)
	if string(m.Payload) != "hello" {
		t.Fatalf("payload = %q", m.Payload)
	}
	if a.Addr() != "a" || b.Addr() != "b" {
		t.Fatalf("addresses wrong")
	}
}

func TestMessagesAreDeepCopies(t *testing.T) {
	n := New()
	defer n.Close()
	a, _ := n.Endpoint("a")
	b, _ := n.Endpoint("b")
	orig := &msg.Message{Kind: msg.KindUpdate, Object: "o", VVec: ids.VersionVec{1: 1}, Payload: []byte("x")}
	if err := a.Send("b", orig); err != nil {
		t.Fatal(err)
	}
	got := recvOne(t, b)
	got.VVec.Set(1, 99)
	got.Payload[0] = 'y'
	if orig.VVec.Get(1) != 1 || orig.Payload[0] != 'x' {
		t.Fatalf("delivered message aliases sender state")
	}
}

func TestUnknownAddress(t *testing.T) {
	n := New()
	defer n.Close()
	a, _ := n.Endpoint("a")
	err := a.Send("nowhere", testMsg(msg.KindUpdate, ""))
	if err == nil {
		t.Fatalf("want error for unknown address")
	}
}

func TestDuplicateEndpoint(t *testing.T) {
	n := New()
	defer n.Close()
	if _, err := n.Endpoint("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Endpoint("a"); err == nil {
		t.Fatalf("duplicate endpoint should fail")
	}
}

func TestLatencyOrderingFIFOPerLink(t *testing.T) {
	n := New(WithDefaultLink(LinkProfile{Latency: 2 * time.Millisecond}))
	defer n.Close()
	a, _ := n.Endpoint("a")
	b, _ := n.Endpoint("b")
	const k = 20
	for i := 0; i < k; i++ {
		if err := a.Send("b", &msg.Message{Kind: msg.KindUpdate, Object: "o", NetSeq: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < k; i++ {
		m := recvOne(t, b)
		if m.NetSeq != uint64(i) {
			t.Fatalf("out-of-order delivery on same link: got %d want %d", m.NetSeq, i)
		}
	}
}

func TestLossDropsSomeMessages(t *testing.T) {
	n := New(WithSeed(7), WithDefaultLink(LinkProfile{Loss: 0.5}))
	defer n.Close()
	a, _ := n.Endpoint("a")
	if _, err := n.Endpoint("b"); err != nil {
		t.Fatal(err)
	}
	const k = 200
	for i := 0; i < k; i++ {
		if err := a.Send("b", testMsg(msg.KindUpdate, "x")); err != nil {
			t.Fatal(err)
		}
	}
	// Wait for deliveries to drain.
	deadline := time.Now().Add(5 * time.Second)
	for {
		s := n.Stats()
		if s.Delivered+s.Dropped == k {
			if s.Dropped == 0 || s.Delivered == 0 {
				t.Fatalf("50%% loss should drop some and deliver some: %+v", s)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("drain timeout: %+v", s)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestPartitionAndHeal(t *testing.T) {
	n := New()
	defer n.Close()
	a, _ := n.Endpoint("a")
	b, _ := n.Endpoint("b")
	n.Partition("a", "b")
	if err := a.Send("b", testMsg(msg.KindUpdate, "lost")); err != nil {
		t.Fatal(err)
	}
	s := n.Stats()
	if s.Dropped != 1 {
		t.Fatalf("partitioned send not dropped: %+v", s)
	}
	n.Heal("a", "b")
	if err := a.Send("b", testMsg(msg.KindUpdate, "ok")); err != nil {
		t.Fatal(err)
	}
	m := recvOne(t, b)
	if string(m.Payload) != "ok" {
		t.Fatalf("post-heal payload %q", m.Payload)
	}
}

func TestMulticast(t *testing.T) {
	n := New()
	defer n.Close()
	src, _ := n.Endpoint("src")
	var sinks []transport.Endpoint
	addrs := []string{"s1", "s2", "s3"}
	for _, ad := range addrs {
		ep, _ := n.Endpoint(ad)
		sinks = append(sinks, ep)
	}
	if err := src.Multicast(addrs, testMsg(msg.KindUpdate, "all")); err != nil {
		t.Fatal(err)
	}
	for _, s := range sinks {
		if got := recvOne(t, s); string(got.Payload) != "all" {
			t.Fatalf("multicast payload %q", got.Payload)
		}
	}
}

func TestStatsCounters(t *testing.T) {
	n := New()
	defer n.Close()
	a, _ := n.Endpoint("a")
	b, _ := n.Endpoint("b")
	m := testMsg(msg.KindInvalidate, "payload")
	size := uint64(msg.WireSize(m))
	if err := a.Send("b", m); err != nil {
		t.Fatal(err)
	}
	recvOne(t, b)
	s := n.Stats()
	if s.Sent != 1 || s.Delivered != 1 || s.Dropped != 0 {
		t.Fatalf("counters wrong: %+v", s)
	}
	if s.Bytes != size {
		t.Fatalf("bytes = %d, want %d", s.Bytes, size)
	}
	if s.ByKind[msg.KindInvalidate] != 1 {
		t.Fatalf("by-kind counter wrong: %v", s.ByKind)
	}
	n.ResetStats()
	if s2 := n.Stats(); s2.Sent != 0 || len(s2.ByKind) != 0 {
		t.Fatalf("ResetStats did not clear: %+v", s2)
	}
}

func TestClosedEndpointStopsReceiving(t *testing.T) {
	n := New()
	defer n.Close()
	a, _ := n.Endpoint("a")
	b, _ := n.Endpoint("b")
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send("b", testMsg(msg.KindUpdate, "x")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	s := n.Stats()
	if s.Delivered != 0 {
		t.Fatalf("message delivered to closed endpoint: %+v", s)
	}
	if err := b.Send("a", testMsg(msg.KindUpdate, "x")); err == nil {
		t.Fatalf("send from closed endpoint should fail")
	}
}

func TestNetworkCloseClosesRecvChannels(t *testing.T) {
	n := New()
	a, _ := n.Endpoint("a")
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case _, ok := <-a.Recv():
		if ok {
			t.Fatalf("unexpected message after close")
		}
	case <-time.After(time.Second):
		t.Fatalf("recv channel not closed after network close")
	}
	if _, err := n.Endpoint("late"); err == nil {
		t.Fatalf("endpoint creation after close should fail")
	}
	if err := n.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestPerLinkProfilesOverrideDefault(t *testing.T) {
	n := New(WithDefaultLink(LinkProfile{Loss: 1.0})) // default loses everything
	defer n.Close()
	a, _ := n.Endpoint("a")
	b, _ := n.Endpoint("b")
	n.SetLinkBoth("a", "b", LinkProfile{}) // explicit lossless link
	if err := a.Send("b", testMsg(msg.KindUpdate, "ok")); err != nil {
		t.Fatal(err)
	}
	if got := recvOne(t, b); string(got.Payload) != "ok" {
		t.Fatalf("payload %q", got.Payload)
	}
}

func TestJitterStillDelivers(t *testing.T) {
	n := New(WithSeed(3), WithDefaultLink(LinkProfile{Latency: time.Millisecond, Jitter: 2 * time.Millisecond}))
	defer n.Close()
	a, _ := n.Endpoint("a")
	b, _ := n.Endpoint("b")
	const k = 10
	for i := 0; i < k; i++ {
		if err := a.Send("b", testMsg(msg.KindUpdate, "j")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < k; i++ {
		recvOne(t, b)
	}
}
