package memnet

import (
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/msg"
	"repro/internal/transport"
)

// deliveryLog is the per-receiver payload sequence observed in one run.
type deliveryLog map[string][]string

// runSeededWorkload drives a fixed seeded workload — 3 senders, 4 receivers,
// lossy/jittery/duplicating links — over a fake clock and returns each
// receiver's delivery sequence. All sends happen on one goroutine before the
// clock advances, so the schedule (delivery times, shard sequence numbers,
// loss/dup decisions) is fully determined by the seed; any run-to-run
// difference in the returned log is a determinism regression.
func runSeededWorkload(t *testing.T, opts ...Option) deliveryLog {
	t.Helper()
	fc := clock.NewFake()
	opts = append([]Option{
		WithSeed(1998),
		WithClock(fc),
		WithDefaultLink(LinkProfile{
			Latency: 2 * time.Millisecond,
			Jitter:  5 * time.Millisecond,
			Loss:    0.15,
			Dup:     0.15,
		}),
	}, opts...)
	n := New(opts...)
	defer n.Close()

	senders := make([]transport.Endpoint, 3)
	receivers := make([]transport.Endpoint, 4)
	for i := range senders {
		ep, err := n.Endpoint(fmt.Sprintf("s%d", i))
		if err != nil {
			t.Fatal(err)
		}
		senders[i] = ep
	}
	for i := range receivers {
		ep, err := n.Endpoint(fmt.Sprintf("r%d", i))
		if err != nil {
			t.Fatal(err)
		}
		receivers[i] = ep
	}

	// One goroutine issues every send while the fake clock stands still:
	// the full delivery schedule exists in the shard heaps before any
	// drainer can act on it.
	const perSender = 60
	for k := 0; k < perSender; k++ {
		for i, s := range senders {
			to := fmt.Sprintf("r%d", (k+i)%len(receivers))
			m := testMsg(msg.KindUpdate, fmt.Sprintf("s%d-%03d", i, k))
			if err := s.Send(to, m); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Loss and duplication were decided at enqueue time, so the exact
	// number of eventual deliveries is already fixed; advance the clock in
	// small steps until the drainers have handed every one of them over.
	want := func() uint64 {
		s := n.Stats()
		return s.Sent - s.Dropped + s.Duplicated
	}()
	deadline := time.Now().Add(10 * time.Second)
	for n.Stats().Delivered < want {
		if time.Now().After(deadline) {
			t.Fatalf("delivered %d of %d before deadline", n.Stats().Delivered, want)
		}
		fc.Advance(time.Millisecond)
		time.Sleep(time.Millisecond)
	}

	log := make(deliveryLog)
	for i, r := range receivers {
		addr := fmt.Sprintf("r%d", i)
		for {
			select {
			case m := <-r.Recv():
				log[addr] = append(log[addr], string(m.Payload))
				continue
			default:
			}
			break
		}
	}
	return log
}

// TestDeterministicModeReproducesDeliveryOrder locks in the seeded-run
// contract the chaos harness depends on: the default single-drainer network
// delivers byte-identical per-receiver sequences on every run of the same
// seed, loss, jitter, and duplication included.
func TestDeterministicModeReproducesDeliveryOrder(t *testing.T) {
	first := runSeededWorkload(t)
	if len(first) == 0 {
		t.Fatal("workload delivered nothing")
	}
	for run := 0; run < 2; run++ {
		again := runSeededWorkload(t)
		for addr, seq := range first {
			if got := strings.Join(again[addr], ","); got != strings.Join(seq, ",") {
				t.Fatalf("run %d: %s delivery order diverged:\n got %s\nwant %s",
					run, addr, got, strings.Join(seq, ","))
			}
		}
	}
}

// TestParallelDeliveryMatchesDeterministicSchedule checks the equivalence
// WithParallelDelivery promises: the same seeded workload delivers the same
// messages (loss and duplication are sender-side decisions, unaffected by
// the drain topology), and each (sender, receiver) pair still sees the exact
// FIFO subsequence the deterministic schedule produced — only the
// cross-destination interleaving is free to differ.
func TestParallelDeliveryMatchesDeterministicSchedule(t *testing.T) {
	det := runSeededWorkload(t)
	par := runSeededWorkload(t, WithParallelDelivery())

	for addr, want := range det {
		got := par[addr]
		// Same multiset of deliveries per receiver.
		ws, gs := append([]string(nil), want...), append([]string(nil), got...)
		sort.Strings(ws)
		sort.Strings(gs)
		if strings.Join(ws, ",") != strings.Join(gs, ",") {
			t.Fatalf("%s delivered set diverged:\n got %v\nwant %v", addr, gs, ws)
		}
		// Identical per-sender subsequences (per-link FIFO is mode-independent:
		// a destination maps to one shard and one drainer in either mode).
		for _, sender := range []string{"s0", "s1", "s2"} {
			var wantSub, gotSub []string
			for _, p := range want {
				if strings.HasPrefix(p, sender) {
					wantSub = append(wantSub, p)
				}
			}
			for _, p := range got {
				if strings.HasPrefix(p, sender) {
					gotSub = append(gotSub, p)
				}
			}
			if strings.Join(wantSub, ",") != strings.Join(gotSub, ",") {
				t.Fatalf("%s: %s subsequence diverged:\n got %v\nwant %v",
					addr, sender, gotSub, wantSub)
			}
		}
	}
}

// TestParallelDeliveryBasics exercises the parallel drainers through the
// ordinary point-to-point, multicast, and close paths with a real clock.
func TestParallelDeliveryBasics(t *testing.T) {
	n := New(WithParallelDelivery(), WithDefaultLink(LinkProfile{Latency: time.Millisecond}))
	a, _ := n.Endpoint("a")
	b, _ := n.Endpoint("b")
	c, _ := n.Endpoint("c")
	if err := a.Multicast([]string{"b", "c"}, testMsg(msg.KindUpdate, "fan")); err != nil {
		t.Fatal(err)
	}
	const k = 50
	for i := 0; i < k; i++ {
		if err := a.Send("b", &msg.Message{Kind: msg.KindUpdate, Object: "o", NetSeq: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if got := recvOne(t, b); string(got.Payload) != "fan" {
		t.Fatalf("multicast payload = %q", got.Payload)
	}
	if got := recvOne(t, c); string(got.Payload) != "fan" {
		t.Fatalf("multicast payload = %q", got.Payload)
	}
	for i := 0; i < k; i++ {
		m := recvOne(t, b)
		if m.NetSeq != uint64(i) {
			t.Fatalf("out-of-order delivery on same link: got %d want %d", m.NetSeq, i)
		}
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	if _, ok := <-b.Recv(); ok {
		t.Fatal("recv channel should be closed after network close")
	}
}
