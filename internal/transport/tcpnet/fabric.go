package tcpnet

import (
	"strings"
	"sync"

	"repro/internal/transport"
)

// Fabric adapts tcpnet to the transport.Fabric interface, so one webobj
// System can deploy over real TCP exactly as it deploys over memnet.
//
// Endpoint names carry an optional category prefix ("store/www",
// "client/3"); the part after the last '/' is the listen hint. When the
// hint is a host:port ("store/127.0.0.1:7001") the endpoint listens there —
// this is how a daemon pins its advertised address — otherwise the endpoint
// listens on an ephemeral port of the fabric's host (the right choice for
// clients). Closing the fabric closes every endpoint it created that has
// not already been closed individually.
type Fabric struct {
	host  string
	maxIn int   // per-peer inbound frame budget for every endpoint minted
	st    stats // aggregate traffic counters, shared by every minted endpoint

	mu     sync.Mutex
	eps    map[*fabricEndpoint]struct{}
	closed bool
}

var _ transport.Fabric = (*Fabric)(nil)

// FabricOption configures NewFabric.
type FabricOption func(*Fabric)

// WithMaxInboundFrame sets the per-peer inbound frame budget for every
// endpoint the fabric mints: a peer announcing a larger frame is
// disconnected before any allocation (see ListenLimit). Non-loopback
// deployments should set this to a small multiple of their largest
// snapshot.
func WithMaxInboundFrame(n int) FabricOption {
	return func(f *Fabric) { f.maxIn = n }
}

// NewFabric creates a TCP fabric. host is the address ephemeral endpoints
// bind to; "" defaults to 127.0.0.1 (loopback deployments and tests).
func NewFabric(host string, opts ...FabricOption) *Fabric {
	if host == "" {
		host = "127.0.0.1"
	}
	f := &Fabric{host: host, eps: make(map[*fabricEndpoint]struct{})}
	for _, o := range opts {
		o(f)
	}
	return f
}

// Endpoint implements transport.Fabric.
func (f *Fabric) Endpoint(name string) (transport.Endpoint, error) {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil, transport.ErrClosed
	}
	f.mu.Unlock()

	hint := name
	if i := strings.LastIndexByte(hint, '/'); i >= 0 {
		hint = hint[i+1:]
	}
	listen := f.host + ":0"
	if strings.ContainsRune(hint, ':') {
		listen = hint
	}
	ep, err := listenShared(listen, f.maxIn, &f.st)
	if err != nil {
		return nil, err
	}
	fe := &fabricEndpoint{Endpoint: ep, fabric: f}
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		_ = ep.Close()
		return nil, transport.ErrClosed
	}
	f.eps[fe] = struct{}{}
	f.mu.Unlock()
	return fe, nil
}

// Close implements transport.Fabric: every endpoint still open is closed.
func (f *Fabric) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil
	}
	f.closed = true
	eps := make([]*fabricEndpoint, 0, len(f.eps))
	for fe := range f.eps {
		eps = append(eps, fe)
	}
	f.eps = nil
	f.mu.Unlock()
	var firstErr error
	for _, fe := range eps {
		if err := fe.Endpoint.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// fabricEndpoint deregisters itself from the owning fabric on Close, so a
// long-lived fabric does not accumulate entries for short-lived clients.
type fabricEndpoint struct {
	*Endpoint
	fabric *Fabric
}

var _ transport.Endpoint = (*fabricEndpoint)(nil)

// Close implements transport.Endpoint.
func (fe *fabricEndpoint) Close() error {
	fe.fabric.mu.Lock()
	if fe.fabric.eps != nil {
		delete(fe.fabric.eps, fe)
	}
	fe.fabric.mu.Unlock()
	return fe.Endpoint.Close()
}
