// Package tcpnet implements the transport.Endpoint communication object
// over real TCP connections with length-prefixed frames. It is the
// counterpart of the paper's prototype configuration ("we have used TCP/IP
// for the sake of simplicity to provide reliable communication") and backs
// cmd/globed and cmd/globectl.
//
// Each endpoint owns one listener plus a cache of outbound connections.
// Frames are a 4-byte big-endian length followed by a msg.Encode body.
// Outbound frames ship as one gathered writev from pooled encode buffers;
// inbound frames are carved out of per-connection handoff chunks and
// decoded zero-copy (msg.DecodeAlias), so both directions run with a
// near-zero steady-state allocation rate. Received messages alias their
// frame: receivers must treat Args/Payload as immutable, exactly as with
// memnet delivery.
package tcpnet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"repro/internal/msg"
	"repro/internal/transport"
)

// maxFrame is the absolute bound on a single message frame (16 MiB),
// protecting against corrupt length prefixes. Deployments facing
// non-loopback peers should configure a much tighter per-peer budget
// (WithMaxInboundFrame / ListenLimit): the budget is enforced on the
// length prefix BEFORE any body allocation, so an adversarial or corrupt
// peer cannot make a daemon allocate gigabytes — the connection is
// dropped instead.
const maxFrame = 16 << 20

// flushHook, when non-nil, is invoked once per connection flush with the
// number of frames the flush carried. Tests use it to assert that a frame
// costs exactly one gathered write (writev) and that concurrent frames
// coalesce; production code leaves it nil.
var flushHook func(frames int)

// writeBatch is one group-commit unit on a connection: the gathered buffers
// of every frame appended since the previous flush. The first appender to
// reach the connection's write lock becomes the leader and flushes the
// whole batch with a single writev; the others wait on done and share the
// leader's error.
type writeBatch struct {
	bufs net.Buffers
	err  error
	done chan struct{}
}

// peerConn is one cached outbound connection with its own write locks, so an
// endpoint with K peer connections admits K concurrent writers.
type peerConn struct {
	c net.Conn

	// qmu guards cur, the batch currently accumulating appended frames.
	qmu sync.Mutex
	cur *writeBatch
	// wmu serialises flushes on the connection; batches are flushed in
	// acquisition order, which preserves the per-connection byte stream.
	wmu sync.Mutex
	// hdr and direct are scratch for the uncontended single-frame fast
	// path; they may only be touched while holding wmu.
	hdr    [4]byte
	direct [2][]byte
}

// Endpoint is a TCP-backed communication object.
type Endpoint struct {
	addr  string // resolved listen address; stable across Pause/Resume
	maxIn int    // per-peer inbound frame budget (≤ maxFrame)
	inbox chan *msg.Message
	done  chan struct{} // closed on Close; unblocks readers stuck on a full inbox

	// st receives the traffic counters; endpoints minted by a Fabric share
	// the fabric's set. Always non-nil — bumping an atomic is cheaper than
	// branching on whether anyone will ever scrape it.
	st *stats

	mu      sync.Mutex
	ln      net.Listener         // nil while paused
	conns   map[string]*peerConn // outbound connection cache, keyed by address
	inConns map[net.Conn]bool    // inbound connections, closed on shutdown
	paused  bool
	closed  bool

	wg sync.WaitGroup
}

var _ transport.Endpoint = (*Endpoint)(nil)

// Listen creates an endpoint bound to addr (e.g. "127.0.0.1:0") with the
// default (absolute-maximum) inbound frame budget.
func Listen(addr string) (*Endpoint, error) { return ListenLimit(addr, 0) }

// ListenLimit creates an endpoint whose inbound frames are budgeted: a
// peer announcing a frame larger than maxInbound bytes is disconnected
// before any body allocation happens. Zero (or anything above the absolute
// cap) means the 16 MiB default.
func ListenLimit(addr string, maxInbound int) (*Endpoint, error) {
	return listenShared(addr, maxInbound, nil)
}

// listenShared is ListenLimit with an optional externally owned stats set
// (how a Fabric aggregates traffic across the endpoints it mints). The set
// must be fixed before the accept loop starts, hence the parameter rather
// than assignment after construction.
func listenShared(addr string, maxInbound int, st *stats) (*Endpoint, error) {
	if maxInbound <= 0 || maxInbound > maxFrame {
		maxInbound = maxFrame
	}
	if st == nil {
		st = &stats{}
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("tcpnet: listen %q: %w", addr, err)
	}
	e := &Endpoint{
		addr:    ln.Addr().String(),
		maxIn:   maxInbound,
		st:      st,
		ln:      ln,
		inbox:   make(chan *msg.Message, 1024),
		done:    make(chan struct{}),
		conns:   make(map[string]*peerConn),
		inConns: make(map[net.Conn]bool),
	}
	e.wg.Add(1)
	go e.acceptLoop(ln)
	return e, nil
}

// Addr returns the bound listen address (with the resolved port).
func (e *Endpoint) Addr() string { return e.addr }

// Pause severs the endpoint from the network without closing it: the
// listener stops, and every live connection — inbound and outbound, possibly
// mid-frame — is killed. Until Resume, outbound sends fail and peers cannot
// reach this endpoint, so the frames they send are lost exactly as across a
// network partition. It exists for fault drills: chaos tests partition a
// TCP deployment the way memnet's Partition cuts a simulated link.
func (e *Endpoint) Pause() error {
	e.mu.Lock()
	if e.closed || e.paused {
		e.mu.Unlock()
		return nil
	}
	e.paused = true
	ln := e.ln
	e.ln = nil
	e.severLocked()
	e.mu.Unlock()
	return ln.Close()
}

// Resume re-listens on the endpoint's original address after a Pause.
// Peers reconnect on their next send; nothing lost during the pause is
// replayed by the transport — recovering it is the coherence protocol's job
// (demand retries and digest heartbeats).
func (e *Endpoint) Resume() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed || !e.paused {
		return nil
	}
	ln, err := net.Listen("tcp", e.addr)
	if err != nil {
		return fmt.Errorf("tcpnet: resume %q: %w", e.addr, err)
	}
	e.paused = false
	e.ln = ln
	e.wg.Add(1)
	go e.acceptLoop(ln)
	return nil
}

// AbortConns kills every live connection — mid-frame if one is in flight —
// while leaving the listener up, so peers redial successfully on their next
// send. It models a transient connection reset (the fault the reconnect +
// heartbeat path must absorb without duplicating or reordering applies).
func (e *Endpoint) AbortConns() {
	e.mu.Lock()
	e.severLocked()
	e.mu.Unlock()
}

// severLocked closes and forgets every inbound and outbound connection.
func (e *Endpoint) severLocked() {
	for to, pc := range e.conns {
		_ = pc.c.Close()
		delete(e.conns, to)
	}
	for c := range e.inConns {
		_ = c.Close()
		delete(e.inConns, c)
	}
}

// Send transmits m to the endpoint listening at to, dialling or reusing a
// cached connection. The frame is encoded into a pooled buffer that is
// recycled once the bytes are on the socket.
func (e *Endpoint) Send(to string, m *msg.Message) error {
	wb := msg.EncodePooled(m)
	defer wb.Release()
	return e.writeFrame(to, wb.Bytes())
}

// Multicast sends m to each address in tos, encoding the frame exactly once
// and fanning the shared wire bytes out over every connection. Fan-out is
// best-effort: one unreachable destination must not starve the rest, so
// every address is attempted and the first failure is reported after the
// sweep.
func (e *Endpoint) Multicast(tos []string, m *msg.Message) error {
	if len(tos) == 0 {
		return nil
	}
	wb := msg.EncodePooled(m)
	defer wb.Release()
	var firstErr error
	for _, to := range tos {
		if err := e.writeFrame(to, wb.Bytes()); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("multicast to %q: %w", to, err)
		}
	}
	return firstErr
}

// writeFrame writes one length-prefixed frame to the connection for to,
// redialling once when a cached connection turns out to be dead.
//
// A cached connection can be long dead — the peer reset or restarted while
// this side was idle — and the first write is how the sender finds out. One
// retry on a fresh dial means a stale connection costs its detection, not
// the frame: without it, the first frame after every reconnect (a healed
// partition's digest heartbeat, typically) would be silently lost and
// recovery would wait a full extra heartbeat. If the frame was in fact
// delivered before the error surfaced, the retry produces a duplicate, which
// the coherence engines deduplicate — the same contract as a duplicated UDP
// datagram.
func (e *Endpoint) writeFrame(to string, body []byte) error {
	if len(body) > maxFrame {
		return fmt.Errorf("tcpnet: frame too large (%d bytes)", len(body))
	}
	pc, err := e.conn(to)
	if err != nil {
		return err
	}
	if err := e.flushFrame(to, pc, body); err != nil {
		pc2, derr := e.conn(to) // flushFrame dropped pc; this dials fresh
		if derr != nil || pc2 == pc {
			return err
		}
		e.st.redials.Add(1)
		if err := e.flushFrame(to, pc2, body); err != nil {
			return err
		}
		e.countSent(body)
		return nil
	}
	e.countSent(body)
	return nil
}

// countSent records one frame put on the wire (body plus length prefix).
func (e *Endpoint) countSent(body []byte) {
	e.st.framesSent.Add(1)
	e.st.bytesSent.Add(uint64(len(body)) + 4)
}

// flushFrame writes one frame to an established connection, dropping the
// connection from the cache on error.
//
// The header and body travel as one gathered write (net.Buffers → writev),
// so a frame costs a single syscall instead of two. Writers only take the
// target connection's locks — frames to different peers proceed fully in
// parallel — and concurrent frames to the same peer group-commit: every
// writer appends its buffers to the connection's open batch, the first to
// acquire the write lock flushes the whole batch with one writev, and the
// rest inherit the result. flushFrame returns only after its bytes are on
// the socket (or the flush failed), so callers may recycle body immediately.
func (e *Endpoint) flushFrame(to string, pc *peerConn, body []byte) error {
	// Uncontended fast path: the write lock is free and no batch is
	// pending, so write this frame directly from the connection's scratch
	// buffers — one writev, zero allocations.
	if pc.wmu.TryLock() {
		pc.qmu.Lock()
		pending := pc.cur != nil
		pc.qmu.Unlock()
		if !pending {
			binary.BigEndian.PutUint32(pc.hdr[:], uint32(len(body)))
			pc.direct[0] = pc.hdr[:]
			pc.direct[1] = body
			bufs := net.Buffers(pc.direct[:])
			if flushHook != nil {
				flushHook(1)
			}
			_, werr := bufs.WriteTo(pc.c)
			pc.direct = [2][]byte{}
			pc.wmu.Unlock()
			if werr != nil {
				e.dropConn(to, pc)
				return fmt.Errorf("tcpnet: send to %q: %w", to, werr)
			}
			return nil
		}
		// Writers are queued behind an open batch; join them instead of
		// jumping the line.
		pc.wmu.Unlock()
	}

	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))

	pc.qmu.Lock()
	b := pc.cur
	if b == nil {
		b = &writeBatch{done: make(chan struct{})}
		pc.cur = b
	}
	b.bufs = append(b.bufs, hdr[:], body)
	pc.qmu.Unlock()

	pc.wmu.Lock()
	pc.qmu.Lock()
	leader := pc.cur == b
	if leader {
		pc.cur = nil
	}
	pc.qmu.Unlock()
	if !leader {
		// A previous lock holder already flushed our batch.
		pc.wmu.Unlock()
		<-b.done
	} else {
		if flushHook != nil {
			flushHook(len(b.bufs) / 2)
		}
		_, err := b.bufs.WriteTo(pc.c)
		b.err = err
		close(b.done)
		pc.wmu.Unlock()
	}
	if b.err != nil {
		e.dropConn(to, pc)
		return fmt.Errorf("tcpnet: send to %q: %w", to, b.err)
	}
	return nil
}

// Recv returns the delivery channel; it closes when the endpoint closes.
func (e *Endpoint) Recv() <-chan *msg.Message { return e.inbox }

// Close shuts the listener and all connections and waits for the reader
// goroutines to exit before closing the delivery channel.
func (e *Endpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	e.severLocked() // unblock reader goroutines stuck in ReadFull
	ln := e.ln
	e.ln = nil
	e.mu.Unlock()
	close(e.done)
	var err error
	if ln != nil { // nil while paused (listener already closed)
		err = ln.Close()
	}
	e.wg.Wait()
	close(e.inbox)
	return err
}

// conn returns a cached or fresh outbound connection to the given address.
func (e *Endpoint) conn(to string) (*peerConn, error) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, transport.ErrClosed
	}
	if e.paused {
		e.mu.Unlock()
		return nil, fmt.Errorf("tcpnet: endpoint paused, send to %q dropped", to)
	}
	if pc, ok := e.conns[to]; ok {
		e.mu.Unlock()
		return pc, nil
	}
	e.mu.Unlock()

	c, err := net.Dial("tcp", to)
	if err != nil {
		return nil, fmt.Errorf("tcpnet: dial %q: %w", to, err)
	}
	e.st.dials.Add(1)
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed || e.paused {
		_ = c.Close()
		if e.closed {
			return nil, transport.ErrClosed
		}
		return nil, fmt.Errorf("tcpnet: endpoint paused, send to %q dropped", to)
	}
	if existing, ok := e.conns[to]; ok {
		_ = c.Close()
		return existing, nil
	}
	pc := &peerConn{c: c}
	e.conns[to] = pc
	return pc, nil
}

// dropConn evicts pc from the cache (unless a fresh connection already
// replaced it) and closes the socket.
func (e *Endpoint) dropConn(to string, pc *peerConn) {
	e.mu.Lock()
	if cur, ok := e.conns[to]; ok && cur == pc {
		delete(e.conns, to)
	}
	e.mu.Unlock()
	_ = pc.c.Close()
}

// acceptLoop accepts inbound connections and spawns a framed reader per
// connection; all readers are tracked by the wait group so Close can drain.
// The listener is passed in (rather than read from the endpoint) because
// Pause/Resume cycles replace it, each cycle with its own loop.
func (e *Endpoint) acceptLoop(ln net.Listener) {
	defer e.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		e.mu.Lock()
		if e.closed || e.paused {
			e.mu.Unlock()
			_ = conn.Close()
			return
		}
		e.inConns[conn] = true
		e.wg.Add(1)
		e.mu.Unlock()
		e.st.accepts.Add(1)
		go e.readLoop(conn)
	}
}

// readChunk is the size of the shared inbound buffer each reader carves
// frame bodies out of. Amortising one allocation over ~readChunk bytes of
// frames is what keeps the steady-state read path nearly allocation-free;
// frames larger than a chunk get a dedicated buffer.
const readChunk = 64 << 10

// readLoop decodes frames from one inbound connection into the inbox.
//
// The read path hands frames off without copying: each frame body is read
// into a slice carved from the reader's current chunk, and msg.DecodeAlias
// aliases those bytes for Args/Payload instead of copying them (the same
// contract memnet delivery uses — receivers treat message byte slices as
// immutable). A chunk is never reused: when the next frame does not fit,
// the reader starts a fresh chunk and the old one stays alive exactly as
// long as the messages aliasing it, then is collected. Steady state is one
// chunk allocation per ~readChunk bytes of traffic instead of one body copy
// per frame — the inbound counterpart of the pooled writev outbound path
// (asserted by BenchmarkTCPInboundAllocs).
func (e *Endpoint) readLoop(conn net.Conn) {
	defer e.wg.Done()
	defer func() {
		_ = conn.Close()
		e.mu.Lock()
		delete(e.inConns, conn)
		e.mu.Unlock()
	}()
	var hdr [4]byte
	var chunk []byte // current handoff buffer; frames alias it, never reused
	var off int      // next free byte in chunk
	for {
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			return // peer closed or endpoint shutting down
		}
		n := binary.BigEndian.Uint32(hdr[:])
		if n > uint32(e.maxIn) {
			// Budget exceeded: drop the connection before allocating or
			// reading a single body byte. A well-behaved peer redials; a
			// misbehaving one cannot cost more than the 4-byte header.
			return
		}
		need := int(n)
		var body []byte
		switch {
		case need > readChunk:
			body = make([]byte, need) // outsized frame: dedicated buffer
		default:
			if off+need > len(chunk) {
				chunk = make([]byte, readChunk)
				off = 0
			}
			body = chunk[off : off+need : off+need]
			off += need
		}
		if _, err := io.ReadFull(conn, body); err != nil {
			return
		}
		m, err := msg.DecodeAlias(body)
		if err != nil {
			if errors.Is(err, msg.ErrShortMessage) || errors.Is(err, msg.ErrBadVersion) {
				continue // skip corrupt frame, keep the stream
			}
			return
		}
		e.st.framesRecv.Add(1)
		e.st.bytesRecv.Add(uint64(need) + 4)
		select {
		case e.inbox <- m:
		case <-e.done:
			return
		}
	}
}
