package tcpnet

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/ids"
	"repro/internal/msg"
)

func listen(t *testing.T) *Endpoint {
	t.Helper()
	e, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = e.Close() })
	return e
}

func recvOne(t *testing.T, e *Endpoint) *msg.Message {
	t.Helper()
	select {
	case m, ok := <-e.Recv():
		if !ok {
			t.Fatalf("recv channel closed")
		}
		return m
	case <-time.After(5 * time.Second):
		t.Fatalf("timed out waiting for message")
		return nil
	}
}

func TestSendReceiveOverTCP(t *testing.T) {
	a := listen(t)
	b := listen(t)
	m := &msg.Message{Kind: msg.KindWriteRequest, Object: "doc", Payload: []byte("body"), From: a.Addr()}
	if err := a.Send(b.Addr(), m); err != nil {
		t.Fatal(err)
	}
	got := recvOne(t, b)
	if got.Kind != msg.KindWriteRequest || string(got.Payload) != "body" {
		t.Fatalf("got %+v", got)
	}
}

func TestBidirectionalTraffic(t *testing.T) {
	a := listen(t)
	b := listen(t)
	if err := a.Send(b.Addr(), &msg.Message{Kind: msg.KindReadRequest, Object: "o", From: a.Addr()}); err != nil {
		t.Fatal(err)
	}
	req := recvOne(t, b)
	if err := b.Send(req.From, &msg.Message{Kind: msg.KindReadReply, Object: "o", Payload: []byte("r")}); err != nil {
		t.Fatal(err)
	}
	rep := recvOne(t, a)
	if rep.Kind != msg.KindReadReply || string(rep.Payload) != "r" {
		t.Fatalf("got %+v", rep)
	}
}

func TestManyMessagesKeepOrderPerConnection(t *testing.T) {
	a := listen(t)
	b := listen(t)
	const k = 100
	for i := 0; i < k; i++ {
		if err := a.Send(b.Addr(), &msg.Message{Kind: msg.KindUpdate, Object: "o", NetSeq: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < k; i++ {
		m := recvOne(t, b)
		if m.NetSeq != uint64(i) {
			t.Fatalf("TCP reordered within a connection: got %d want %d", m.NetSeq, i)
		}
	}
}

func TestMulticastTCP(t *testing.T) {
	src := listen(t)
	s1 := listen(t)
	s2 := listen(t)
	if err := src.Multicast([]string{s1.Addr(), s2.Addr()}, &msg.Message{Kind: msg.KindNotify, Object: "o"}); err != nil {
		t.Fatal(err)
	}
	if m := recvOne(t, s1); m.Kind != msg.KindNotify {
		t.Fatalf("s1 got %v", m.Kind)
	}
	if m := recvOne(t, s2); m.Kind != msg.KindNotify {
		t.Fatalf("s2 got %v", m.Kind)
	}
}

func TestSendToDeadAddressFails(t *testing.T) {
	a := listen(t)
	if err := a.Send("127.0.0.1:1", &msg.Message{Kind: msg.KindUpdate, Object: "o"}); err == nil {
		t.Fatalf("want dial error")
	}
}

func TestCloseIsIdempotentAndClosesRecv(t *testing.T) {
	e, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	select {
	case _, ok := <-e.Recv():
		if ok {
			t.Fatalf("unexpected message")
		}
	case <-time.After(time.Second):
		t.Fatalf("recv not closed")
	}
	if err := e.Send("127.0.0.1:1", &msg.Message{Kind: msg.KindUpdate, Object: "o"}); err == nil {
		t.Fatalf("send after close should fail")
	}
}

func TestConnectionReuse(t *testing.T) {
	a := listen(t)
	b := listen(t)
	for i := 0; i < 10; i++ {
		if err := a.Send(b.Addr(), &msg.Message{Kind: msg.KindUpdate, Object: "o", NetSeq: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		recvOne(t, b)
	}
	a.mu.Lock()
	nconns := len(a.conns)
	a.mu.Unlock()
	if nconns != 1 {
		t.Fatalf("expected 1 cached connection, have %d", nconns)
	}
}

// TestCloseUnblocksInboundReaders covers the one-sided shutdown case: an
// endpoint that received traffic must be able to Close even though the
// peer keeps its connection open (a client exiting while the server stays
// up). A hang here means inbound readers were not released.
func TestCloseUnblocksInboundReaders(t *testing.T) {
	server := listen(t) // stays open
	client, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// Client sends a request; server replies, opening an inbound
	// connection into the client that the server never closes.
	if err := client.Send(server.Addr(), &msg.Message{Kind: msg.KindReadRequest, Object: "o", From: client.Addr()}); err != nil {
		t.Fatal(err)
	}
	req := recvOne(t, server)
	if err := server.Send(req.From, &msg.Message{Kind: msg.KindReadReply, Object: "o"}); err != nil {
		t.Fatal(err)
	}
	if m := recvOne(t, client); m.Kind != msg.KindReadReply {
		t.Fatalf("got %v", m.Kind)
	}
	done := make(chan error, 1)
	go func() { done <- client.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("Close hung on inbound reader goroutines")
	}
}

// TestMulticastEncodesOnce: tcpnet's multicast serialises the frame once and
// writes the shared bytes to every connection.
func TestMulticastEncodesOnce(t *testing.T) {
	var eps []*Endpoint
	var addrs []string
	for i := 0; i < 3; i++ {
		ep, err := Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer ep.Close()
		eps = append(eps, ep)
		addrs = append(addrs, ep.Addr())
	}
	src, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	var encodes atomic.Int64
	msg.EncodeHook = func(*msg.Message) { encodes.Add(1) }
	defer func() { msg.EncodeHook = nil }()
	m := &msg.Message{Kind: msg.KindUpdate, Object: "o", Payload: []byte("once")}
	if err := src.Multicast(addrs, m); err != nil {
		t.Fatal(err)
	}
	for _, ep := range eps {
		select {
		case got := <-ep.Recv():
			if string(got.Payload) != "once" {
				t.Fatalf("payload %q", got.Payload)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out waiting for multicast delivery")
		}
	}
	if got := encodes.Load(); got != 1 {
		t.Fatalf("multicast to %d destinations encoded %d times, want 1", len(addrs), got)
	}
}

// TestOneWritevPerFrame: a frame costs exactly one gathered write (header +
// body in a single writev), not two sequential conn.Write calls.
func TestOneWritevPerFrame(t *testing.T) {
	var flushes, frames atomic.Int64
	flushHook = func(n int) { flushes.Add(1); frames.Add(int64(n)) }
	defer func() { flushHook = nil }()
	a := listen(t)
	b := listen(t)
	const k = 10
	for i := 0; i < k; i++ {
		if err := a.Send(b.Addr(), &msg.Message{Kind: msg.KindUpdate, Object: "o", NetSeq: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < k; i++ {
		recvOne(t, b)
	}
	if got := flushes.Load(); got != k {
		t.Fatalf("%d frames took %d gathered writes, want exactly %d (one writev per frame)", k, got, k)
	}
	if got := frames.Load(); got != k {
		t.Fatalf("flushed %d frames total, want %d", got, k)
	}
}

// TestMulticastOneWritevPerConnection: multicast encodes once and issues one
// gathered write per destination connection.
func TestMulticastOneWritevPerConnection(t *testing.T) {
	var flushes atomic.Int64
	flushHook = func(int) { flushes.Add(1) }
	defer func() { flushHook = nil }()
	src := listen(t)
	s1 := listen(t)
	s2 := listen(t)
	s3 := listen(t)
	sinks := []*Endpoint{s1, s2, s3}
	addrs := []string{s1.Addr(), s2.Addr(), s3.Addr()}
	if err := src.Multicast(addrs, &msg.Message{Kind: msg.KindNotify, Object: "o"}); err != nil {
		t.Fatal(err)
	}
	for _, s := range sinks {
		recvOne(t, s)
	}
	if got := flushes.Load(); got != int64(len(addrs)) {
		t.Fatalf("multicast to %d destinations took %d gathered writes, want %d", len(addrs), got, len(addrs))
	}
}

// TestConcurrentWritersCoalesceAndDeliver: many goroutines writing to the
// same peer group-commit — every frame arrives intact and in a consistent
// stream, and the flush count never exceeds the frame count (back-to-back
// frames may share a writev). Run with -race.
func TestConcurrentWritersCoalesceAndDeliver(t *testing.T) {
	var flushes, frames atomic.Int64
	flushHook = func(n int) { flushes.Add(1); frames.Add(int64(n)) }
	defer func() { flushHook = nil }()
	a := listen(t)
	b := listen(t)
	const writers = 8
	const per = 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				m := &msg.Message{Kind: msg.KindUpdate, Object: "o", Client: ids.ClientID(w), NetSeq: uint64(i)}
				if err := a.Send(b.Addr(), m); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	seen := make(map[uint32]uint64)
	for i := 0; i < writers*per; i++ {
		m := recvOne(t, b)
		// Per-sender order must hold even under group commit.
		if want := seen[uint32(m.Client)]; m.NetSeq != want {
			t.Fatalf("writer %d frame out of order: got seq %d want %d", m.Client, m.NetSeq, want)
		}
		seen[uint32(m.Client)]++
	}
	if got := frames.Load(); got != writers*per {
		t.Fatalf("flushed %d frames, want %d", got, writers*per)
	}
	if got := flushes.Load(); got > writers*per {
		t.Fatalf("%d flushes exceed %d frames", got, writers*per)
	}
}

// TestPauseResumeSeversAndRestores drills the endpoint-level partition: a
// paused endpoint is unreachable in both directions and its own sends fail;
// after Resume, traffic flows again on fresh connections without losing the
// first post-heal frame (the writeFrame redial retry).
func TestPauseResumeSeversAndRestores(t *testing.T) {
	a := listen(t)
	b := listen(t)
	send := func(from, to *Endpoint, seq uint64) error {
		return from.Send(to.Addr(), &msg.Message{
			Kind: msg.KindUpdate, Object: "o", From: from.Addr(), NetSeq: seq,
		})
	}
	if err := send(a, b, 1); err != nil {
		t.Fatal(err)
	}
	if got := recvOne(t, b); got.NetSeq != 1 {
		t.Fatalf("got %+v", got)
	}

	if err := b.Pause(); err != nil {
		t.Fatal(err)
	}
	// Outbound from the paused endpoint fails locally (no connections, no
	// dials while paused).
	if err := send(b, a, 2); err == nil {
		t.Fatalf("send from paused endpoint succeeded")
	}
	// Inbound frames are lost during the pause. The send itself may report
	// success — TCP buffers a write into a freshly-reset connection before
	// the RST is processed — which is exactly the silent-loss window the
	// digest heartbeat protocol exists to close; all the transport promises
	// is that nothing is delivered (b's readers are gone).
	_ = send(a, b, 3)

	if err := b.Resume(); err != nil {
		t.Fatal(err)
	}
	// After resume, traffic must flow again: the stale cached connection is
	// detected on write and redialled. A frame racing the RST can still be
	// swallowed, so drive sends until one is delivered.
	got := sendUntilDelivered(t, a, b, 100)
	if got.NetSeq < 100 {
		t.Fatalf("delivered a pause-era frame: %+v", got)
	}
	if err := send(b, a, 5); err != nil {
		t.Fatal(err)
	}
	if got := recvOne(t, a); got.NetSeq != 5 {
		t.Fatalf("post-resume reverse frame: %+v", got)
	}
	if addr := b.Addr(); addr == "" {
		t.Fatalf("Addr lost across pause/resume")
	}
}

// sendUntilDelivered sends frames with sequence numbers startSeq, startSeq+1,
// ... until one is delivered, and returns it. Individual frames may be lost
// while a connection reset is still propagating; liveness, not losslessness,
// is the transport's post-fault contract.
func sendUntilDelivered(t *testing.T, from, to *Endpoint, startSeq uint64) *msg.Message {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for seq := startSeq; ; seq++ {
		err := from.Send(to.Addr(), &msg.Message{
			Kind: msg.KindUpdate, Object: "o", From: from.Addr(), NetSeq: seq,
		})
		if err == nil {
			select {
			case m, ok := <-to.Recv():
				if !ok {
					t.Fatalf("recv channel closed")
				}
				return m
			case <-time.After(100 * time.Millisecond):
			case <-deadline:
				t.Fatalf("no frame delivered after fault")
			}
		}
		select {
		case <-deadline:
			t.Fatalf("no frame delivered after fault")
		default:
		}
	}
}

// TestAbortConnsReconnectsTransparently kills every live connection while
// the listener stays up; subsequent sends redial and deliver again (frames
// racing the reset may be lost — the coherence protocol's problem, not the
// transport's).
func TestAbortConnsReconnectsTransparently(t *testing.T) {
	a := listen(t)
	b := listen(t)
	base := uint64(100)
	for round := 0; round < 3; round++ {
		b.AbortConns() // idempotent on a quiet endpoint, fatal to live conns
		got := sendUntilDelivered(t, a, b, base)
		if got.NetSeq < base {
			t.Fatalf("round %d delivered a stale frame: %+v", round, got)
		}
		base = got.NetSeq + 100
	}
}

// TestCloseWhilePaused: closing a paused endpoint must not panic or hang.
func TestCloseWhilePaused(t *testing.T) {
	e, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Pause(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if _, ok := <-e.Recv(); ok {
		t.Fatalf("recv channel not closed")
	}
}
