package tcpnet

import (
	"strings"
	"testing"
	"time"

	"repro/internal/msg"
	"repro/internal/transport"
)

func TestFabricEphemeralAndPinnedEndpoints(t *testing.T) {
	f := NewFabric("")
	defer f.Close()

	// A bare name gets an ephemeral loopback port.
	client, err := f.Endpoint("client/1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(client.Addr(), "127.0.0.1:") {
		t.Fatalf("ephemeral endpoint at %q", client.Addr())
	}

	// A host:port suffix pins the listen address.
	pinned, err := f.Endpoint("store/127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(pinned.Addr(), "127.0.0.1:") {
		t.Fatalf("pinned endpoint at %q", pinned.Addr())
	}

	// Fabric endpoints speak to plain endpoints: real traffic flows.
	m := &msg.Message{Kind: msg.KindReadRequest, Object: "o", From: client.Addr()}
	if err := client.Send(pinned.Addr(), m); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-pinned.Recv():
		if got.Kind != msg.KindReadRequest || got.From != client.Addr() {
			t.Fatalf("got %+v", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("timed out")
	}
}

func TestFabricPinnedAddressConflictFails(t *testing.T) {
	f := NewFabric("")
	defer f.Close()
	a, err := f.Endpoint("store/127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Endpoint("store/" + a.Addr()); err == nil {
		t.Fatalf("second endpoint on %s accepted", a.Addr())
	}
}

func TestFabricCloseClosesEndpoints(t *testing.T) {
	f := NewFabric("")
	ep, err := f.Endpoint("store/x")
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case _, ok := <-ep.Recv():
		if ok {
			t.Fatal("message after fabric close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("recv channel not closed by fabric close")
	}
	if _, err := f.Endpoint("client/late"); err != transport.ErrClosed {
		t.Fatalf("endpoint after close: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestFabricEndpointCloseDeregisters(t *testing.T) {
	f := NewFabric("")
	defer f.Close()
	ep, err := f.Endpoint("client/1")
	if err != nil {
		t.Fatal(err)
	}
	if err := ep.Close(); err != nil {
		t.Fatal(err)
	}
	f.mu.Lock()
	n := len(f.eps)
	f.mu.Unlock()
	if n != 0 {
		t.Fatalf("fabric still tracks %d endpoints after close", n)
	}
}

// TestInboundHandoffKeepsEarlierFrames drives enough traffic through one
// connection to roll the reader's handoff chunk over several times while
// retaining every delivered message, then checks each message still carries
// its own payload — the aliasing contract: a chunk is never rewritten, so
// later frames cannot corrupt earlier ones.
func TestInboundHandoffKeepsEarlierFrames(t *testing.T) {
	a := listen(t)
	b := listen(t)
	const frames = 300
	payload := make([]byte, 1024) // ~5 chunk rollovers at 64 KiB
	var got []*msg.Message
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < frames; i++ {
			select {
			case m := <-b.Recv():
				got = append(got, m)
			case <-time.After(5 * time.Second):
				return
			}
		}
	}()
	for i := 0; i < frames; i++ {
		for j := range payload {
			payload[j] = byte(i)
		}
		m := &msg.Message{
			Kind:    msg.KindUpdate,
			Object:  "o",
			NetSeq:  uint64(i),
			Payload: payload,
			From:    a.Addr(),
		}
		if err := a.Send(b.Addr(), m); err != nil {
			t.Fatal(err)
		}
	}
	<-done
	if len(got) != frames {
		t.Fatalf("delivered %d of %d frames", len(got), frames)
	}
	for _, m := range got {
		want := byte(m.NetSeq)
		for _, bb := range m.Payload {
			if bb != want {
				t.Fatalf("frame %d corrupted: byte %d, want %d", m.NetSeq, bb, want)
			}
		}
	}
}

// TestInboundOutsizedFrame checks frames larger than one handoff chunk
// arrive intact through the dedicated-buffer path.
func TestInboundOutsizedFrame(t *testing.T) {
	a := listen(t)
	b := listen(t)
	big := make([]byte, readChunk+4096)
	for i := range big {
		big[i] = byte(i % 251)
	}
	if err := a.Send(b.Addr(), &msg.Message{Kind: msg.KindStateReply, Object: "o", Payload: big, From: a.Addr()}); err != nil {
		t.Fatal(err)
	}
	got := recvOne(t, b)
	if len(got.Payload) != len(big) {
		t.Fatalf("payload %d bytes, want %d", len(got.Payload), len(big))
	}
	for i := range big {
		if got.Payload[i] != big[i] {
			t.Fatalf("byte %d = %d, want %d", i, got.Payload[i], big[i])
		}
	}
	// The stream survives an outsized frame: a small frame follows cleanly.
	if err := a.Send(b.Addr(), &msg.Message{Kind: msg.KindUpdate, Object: "o", From: a.Addr()}); err != nil {
		t.Fatal(err)
	}
	if got := recvOne(t, b); got.Kind != msg.KindUpdate {
		t.Fatalf("follow-up frame: %+v", got)
	}
}

// BenchmarkTCPInboundAllocs measures the whole send+receive round's
// allocations per delivered frame. The outbound path is already
// zero-allocation (pooled encode + writev), so the number reported here is
// the inbound path's: with chunked handoff + DecodeAlias it is the cost of
// the decoded Message itself plus the amortised chunk, not a per-frame body
// copy. The BENCH_<n>.json trajectory tracks it.
func BenchmarkTCPInboundAllocs(b *testing.B) {
	src, err := Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer src.Close()
	dst, err := Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer dst.Close()

	m := &msg.Message{
		Kind:   msg.KindUpdate,
		Object: "bench-doc",
		From:   src.Addr(),
		Inv:    msg.Invocation{Method: 4, Page: "index.html", Args: make([]byte, 256)},
	}
	m.VVec.Set(1, 7)
	m.VVec.Set(2, 9)
	m.VVec.Set(3, 4)

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < b.N; i++ {
			if _, ok := <-dst.Recv(); !ok {
				return
			}
		}
	}()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := src.Send(dst.Addr(), m); err != nil {
			b.Fatal(err)
		}
	}
	<-done
}
