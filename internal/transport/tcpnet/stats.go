package tcpnet

import "sync/atomic"

// stats holds the live transport counters as atomics, bumped inline on the
// send/receive paths (no locks, no allocation). A standalone endpoint owns
// its own set; endpoints minted by one Fabric share the fabric's set, so a
// daemon's whole TCP footprint reads as one series group.
type stats struct {
	framesSent atomic.Uint64
	framesRecv atomic.Uint64
	bytesSent  atomic.Uint64 // wire bytes including the 4-byte length prefix
	bytesRecv  atomic.Uint64
	dials      atomic.Uint64 // outbound connections established
	redials    atomic.Uint64 // dead cached connections replaced mid-send
	accepts    atomic.Uint64 // inbound connections accepted
}

// Stats is a snapshot of transport traffic counters.
type Stats struct {
	FramesSent uint64
	FramesRecv uint64
	BytesSent  uint64
	BytesRecv  uint64
	Dials      uint64
	Redials    uint64
	Accepts    uint64
}

func (s *stats) snapshot() Stats {
	return Stats{
		FramesSent: s.framesSent.Load(),
		FramesRecv: s.framesRecv.Load(),
		BytesSent:  s.bytesSent.Load(),
		BytesRecv:  s.bytesRecv.Load(),
		Dials:      s.dials.Load(),
		Redials:    s.redials.Load(),
		Accepts:    s.accepts.Load(),
	}
}

// statsMap renders the counters under snake_case keys, the form the
// observability bridge (transport.StatsSource) registers verbatim.
func (s *stats) statsMap() map[string]uint64 {
	return map[string]uint64{
		"frames_sent": s.framesSent.Load(),
		"frames_recv": s.framesRecv.Load(),
		"bytes_sent":  s.bytesSent.Load(),
		"bytes_recv":  s.bytesRecv.Load(),
		"dials":       s.dials.Load(),
		"redials":     s.redials.Load(),
		"accepts":     s.accepts.Load(),
	}
}

// Stats returns this endpoint's traffic counters (the fabric-wide counters
// when the endpoint was minted by a Fabric).
func (e *Endpoint) Stats() Stats { return e.st.snapshot() }

// Stats returns the aggregate counters across every endpoint this fabric
// minted, including ones that have since closed.
func (f *Fabric) Stats() Stats { return f.st.snapshot() }

// StatsMap implements transport.StatsSource.
func (f *Fabric) StatsMap() map[string]uint64 { return f.st.statsMap() }
