package tcpnet

import (
	"encoding/binary"
	"io"
	"net"
	"testing"
	"time"

	"repro/internal/msg"
)

// TestInboundFrameBudgetRejectsBeforeAllocation connects raw TCP to a
// budgeted endpoint and announces a frame far above the budget: the
// endpoint must drop the connection after reading only the 4-byte header —
// before allocating or reading any body — while frames within the budget
// keep flowing on fresh connections.
func TestInboundFrameBudgetRejectsBeforeAllocation(t *testing.T) {
	const budget = 64 << 10
	e, err := ListenLimit("127.0.0.1:0", budget)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	// An adversarial peer announces a 1 GiB frame (it never even has to
	// send the body; the announcement alone must kill the connection).
	conn, err := net.Dial("tcp", e.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 1<<30)
	if _, err := conn.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(hdr[:]); err != io.EOF {
		t.Fatalf("oversized announcement not disconnected: read err = %v, want EOF", err)
	}

	// A frame above the budget but below the absolute cap is rejected too —
	// the budget, not the 16 MiB ceiling, is what's enforced.
	conn2, err := net.Dial("tcp", e.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	binary.BigEndian.PutUint32(hdr[:], budget+1)
	if _, err := conn2.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	_ = conn2.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn2.Read(hdr[:]); err != io.EOF {
		t.Fatalf("over-budget frame not disconnected: read err = %v, want EOF", err)
	}

	// Legitimate traffic within the budget still flows.
	sender := listen(t)
	m := &msg.Message{Kind: msg.KindNotify, Object: "o", From: sender.Addr(), NetSeq: 7}
	if err := sender.Send(e.Addr(), m); err != nil {
		t.Fatal(err)
	}
	got := recvOne(t, e)
	if got.NetSeq != 7 {
		t.Fatalf("in-budget frame mangled: %+v", got)
	}
}

// TestInboundFrameBudgetDefault keeps the unbudgeted path at the absolute
// cap: a frame between a typical budget and the cap is accepted.
func TestInboundFrameBudgetDefault(t *testing.T) {
	a := listen(t)
	b := listen(t)
	m := &msg.Message{
		Kind:    msg.KindStateReply,
		Object:  "o",
		From:    a.Addr(),
		NetSeq:  9,
		Payload: make([]byte, 128<<10), // larger than the budget above
	}
	if err := a.Send(b.Addr(), m); err != nil {
		t.Fatal(err)
	}
	got := recvOne(t, b)
	if got.NetSeq != 9 || len(got.Payload) != 128<<10 {
		t.Fatalf("large default-budget frame mangled: seq=%d len=%d", got.NetSeq, len(got.Payload))
	}
}
