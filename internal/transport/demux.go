package transport

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/msg"
)

// ErrTimeout reports a demuxed call that received no reply in time.
var ErrTimeout = errors.New("transport: call timed out")

// Demux is the shared request/reply core for RPC-style clients over an
// Endpoint: it assigns each outgoing request a NetSeq, demultiplexes
// replies back to the waiting caller, and bounds each call with a timeout.
// The name-service client and the daemon control client are both built on
// it. Safe for concurrent use; the Demux owns the endpoint's receive side
// but not its lifecycle (callers close the endpoint via Close).
type Demux struct {
	ep Endpoint

	mu      sync.Mutex
	nextSeq uint64
	pending map[uint64]chan *msg.Message
	closed  bool
	done    chan struct{}
	wg      sync.WaitGroup
}

// NewDemux starts the reply loop over ep.
func NewDemux(ep Endpoint) *Demux {
	d := &Demux{
		ep:      ep,
		pending: make(map[uint64]chan *msg.Message),
		done:    make(chan struct{}),
	}
	d.wg.Add(1)
	go d.recvLoop()
	return d
}

func (d *Demux) recvLoop() {
	defer d.wg.Done()
	for {
		select {
		case <-d.done:
			return
		case m, ok := <-d.ep.Recv():
			if !ok {
				return
			}
			d.mu.Lock()
			ch := d.pending[m.NetSeq]
			d.mu.Unlock()
			if ch != nil {
				select {
				case ch <- m:
				default: // duplicate reply; drop
				}
			}
		}
	}
}

// Done exposes the closed-ness channel so callers can abort their own
// retry loops when the demux closes.
func (d *Demux) Done() <-chan struct{} { return d.done }

// Call sends m to addr (filling From and NetSeq) and awaits the correlated
// reply for at most timeout.
func (d *Demux) Call(addr string, m *msg.Message, timeout time.Duration) (*msg.Message, error) {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil, ErrClosed
	}
	d.nextSeq++
	seq := d.nextSeq
	ch := make(chan *msg.Message, 1)
	d.pending[seq] = ch
	d.mu.Unlock()
	defer func() {
		d.mu.Lock()
		delete(d.pending, seq)
		d.mu.Unlock()
	}()
	m.NetSeq = seq
	m.From = d.ep.Addr()
	if err := d.ep.Send(addr, m); err != nil {
		return nil, err
	}
	select {
	case r := <-ch:
		return r, nil
	case <-time.After(timeout):
		return nil, fmt.Errorf("%w after %v (%v to %s)", ErrTimeout, timeout, m.Kind, addr)
	case <-d.done:
		return nil, ErrClosed
	}
}

// Close stops the reply loop and closes the endpoint.
func (d *Demux) Close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.closed = true
	d.mu.Unlock()
	close(d.done)
	err := d.ep.Close()
	d.wg.Wait()
	return err
}
