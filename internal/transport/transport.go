// Package transport defines the communication-object abstraction of the
// Globe local-object composition (Figure 1 of the paper): point-to-point
// send, multicast, and receive. Two implementations exist: memnet (an
// in-process simulated network with latency, jitter, loss, partitions, and
// exact traffic accounting) and tcpnet (real TCP with length-prefixed
// frames, the transport the paper's Java prototype used).
package transport

import (
	"errors"

	"repro/internal/msg"
)

// ErrClosed is returned by operations on a closed endpoint.
var ErrClosed = errors.New("transport: endpoint closed")

// ErrUnknownAddr is returned when sending to an address that does not exist
// on the network.
var ErrUnknownAddr = errors.New("transport: unknown address")

// Fabric is a network substrate that can mint the endpoints of one
// deployment. It is the extension point that lets the same System be built
// either as an in-process simulation (memnet.Network is a Fabric) or as a
// real multi-process TCP deployment (tcpnet.Fabric). Implementations must
// be safe for concurrent use.
type Fabric interface {
	// Endpoint creates the endpoint named name. The name is a
	// fabric-specific hint: memnet uses it verbatim as the simulated
	// address; tcpnet listens on the name's host:port suffix when it has
	// one and on an ephemeral port otherwise.
	Endpoint(name string) (Endpoint, error)
	// Close tears down the fabric and every endpoint it created that has
	// not been closed individually. It is idempotent.
	Close() error
}

// StatsSource is implemented by fabrics that expose transport-level traffic
// counters for the observability bridge: webobj registers every key as a
// scrape-time counter (globe_transport_<key>_total) when metrics are enabled.
// Keys must be valid snake_case metric-name fragments; values are cumulative
// counts read at call time. Both memnet.Network and tcpnet.Fabric implement
// it.
type StatsSource interface {
	StatsMap() map[string]uint64
}

// Endpoint is a communication object: the messaging port of one address
// space participating in a distributed shared object. Implementations must
// be safe for concurrent use.
type Endpoint interface {
	// Addr returns the endpoint's own address.
	Addr() string
	// Send transmits m to the endpoint at address to. Delivery may be
	// delayed, reordered relative to other senders, or dropped, depending
	// on the transport; Send itself never blocks on delivery.
	Send(to string, m *msg.Message) error
	// Multicast transmits m to every address in tos. It is the multicast
	// facility the paper's Web-server communication object offers in
	// addition to point-to-point messaging. Implementations encode the
	// frame once and fan the wire bytes out best-effort: every address is
	// attempted even if some fail, and the first failure is returned after
	// the sweep.
	Multicast(tos []string, m *msg.Message) error
	// Recv returns the endpoint's delivery channel. After Close no further
	// messages are delivered; the channel itself is closed once the
	// transport's delivery machinery for this endpoint has stopped (for
	// memnet, when the owning Network closes; for tcpnet, when the
	// endpoint closes).
	Recv() <-chan *msg.Message
	// Close releases the endpoint. It is idempotent.
	Close() error
}
