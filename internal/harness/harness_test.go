package harness

import (
	"strconv"
	"strings"
	"testing"
)

// findRow returns the first row whose first cells match the given prefixes.
func findRow(t *Table, prefixes ...string) []string {
	for _, row := range t.Rows {
		ok := true
		for i, p := range prefixes {
			if i >= len(row) || !strings.HasPrefix(row[i], p) {
				ok = false
				break
			}
		}
		if ok {
			return row
		}
	}
	return nil
}

func atoi(t *testing.T, s string) int {
	t.Helper()
	n, err := strconv.Atoi(s)
	if err != nil {
		t.Fatalf("not a number: %q", s)
	}
	return n
}

func TestTablePrinting(t *testing.T) {
	tab := &Table{ID: "X", Title: "test", Header: []string{"a", "bb"}}
	tab.AddRow("1", "2")
	tab.Notes = append(tab.Notes, "a note")
	var sb strings.Builder
	tab.Fprint(&sb)
	out := sb.String()
	for _, want := range []string{"== X: test ==", "a  bb", "1  2", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFigure1Shape(t *testing.T) {
	tab := Figure1(Options{Quick: true})
	if len(tab.Rows) != 2 {
		t.Fatalf("rows: %d", len(tab.Rows))
	}
	rpc := findRow(tab, "RPC")
	rep := findRow(tab, "replica")
	if rpc == nil || rep == nil {
		t.Fatalf("missing rows: %+v", tab.Rows)
	}
	// The replica path must offload the permanent store entirely.
	if atoi(t, rep[4]) != 0 {
		t.Fatalf("replica reads hit the server: %v", rep)
	}
	if atoi(t, rpc[4]) == 0 {
		t.Fatalf("RPC reads never hit the server: %v", rpc)
	}
}

func TestTable2ConferenceShape(t *testing.T) {
	tab := Table2Conference(Options{Quick: true})
	withRYW := findRow(tab, "PRAM + RYW")
	without := findRow(tab, "PRAM only")
	if withRYW == nil || without == nil {
		t.Fatalf("missing rows: %+v", tab.Rows)
	}
	// Paper's claim: RYW eliminates the master's stale own-writes.
	if atoi(t, withRYW[2]) != 0 {
		t.Fatalf("RYW left master stale reads: %v", withRYW)
	}
	if atoi(t, without[2]) == 0 {
		t.Fatalf("without RYW the master should see stale reads under lazy push: %v", without)
	}
	// RYW is paid for with demand pulls.
	if atoi(t, withRYW[4]) == 0 {
		t.Fatalf("RYW should issue demands: %v", withRYW)
	}
}

func TestModelsSessionShape(t *testing.T) {
	tab := ModelsSession(Options{Quick: true})
	ryw := findRow(tab, "read-your-writes")
	none := findRow(tab, "none")
	if ryw == nil || none == nil {
		t.Fatalf("missing rows")
	}
	if atoi(t, ryw[4]) != 0 {
		t.Fatalf("RYW failed to eliminate stale own-writes: %v", ryw)
	}
	if atoi(t, none[4]) == 0 {
		t.Fatalf("without guarantees there should be stale own-writes: %v", none)
	}
}

func TestE2EShape(t *testing.T) {
	tab := E2ELossyRecovery(Options{Quick: true})
	demand := findRow(tab, "demand")
	if demand == nil {
		t.Fatalf("missing demand row")
	}
	if demand[3] != "true" {
		t.Fatalf("demand reaction failed to converge under loss: %v", demand)
	}
	if atoi(t, demand[4]) == 0 {
		t.Fatalf("demand reaction issued no demands: %v", demand)
	}
}

func TestModelsObjectBasedShape(t *testing.T) {
	tab := ModelsObjectBased(Options{Quick: true})
	if len(tab.Rows) != 5 {
		t.Fatalf("expected 5 model rows, got %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if row[2] != "true" {
			t.Fatalf("model %s did not converge: %v", row[0], row)
		}
	}
}

func TestClaimShape(t *testing.T) {
	tab := ClaimPerObjectVsUniform(Options{Quick: true})
	ttl := findRow(tab, "uniform TTL", "TOTAL")
	val := findRow(tab, "uniform validate", "TOTAL")
	tail := findRow(tab, "per-object tailored", "TOTAL")
	if ttl == nil || val == nil || tail == nil {
		t.Fatalf("missing totals: %+v", tab.Rows)
	}
	parse := func(s string) float64 {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("bad float %q", s)
		}
		return v
	}
	ttlStale, valStale, tailStale := parse(ttl[3]), parse(val[3]), parse(tail[3])
	ttlBytes, valBytes, tailBytes := parse(ttl[6]), parse(val[6]), parse(tail[6])
	// The paper's claim: tailored dominates — much fresher than TTL, much
	// cheaper than validate.
	if tailStale > ttlStale {
		t.Fatalf("tailored staler than TTL: %.2f vs %.2f", tailStale, ttlStale)
	}
	if tailBytes > valBytes {
		t.Fatalf("tailored costlier than validate: %.0f vs %.0f bytes", tailBytes, valBytes)
	}
	_ = valStale
	_ = ttlBytes
}
