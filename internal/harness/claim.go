package harness

import (
	"math/rand"
	"time"

	"repro/internal/coherence"
	"repro/internal/ids"
	"repro/internal/metrics"
	"repro/internal/replication"
	"repro/internal/semantics/webdoc"
	"repro/internal/store"
	"repro/internal/strategy"
	"repro/internal/transport/memnet"
	"repro/internal/workload"
)

// ClaimPerObjectVsUniform tests the paper's central claim (§1, §5): tuning
// the caching/replication strategy per Web document beats applying one
// uniform policy to every document. A mixed population of four document
// classes runs under three regimes:
//
//   - uniform TTL caching (every object: pull, periodic refresh) — the
//     expiration-based proxy cache of the paper's introduction;
//   - uniform validate-on-access (every object: pull on every read) — the
//     If-Modified-Since scheme of the introduction;
//   - per-object tailored strategies (each class uses its preset).
func ClaimPerObjectVsUniform(o Options) *Table {
	t := &Table{
		ID:    "C1",
		Title: "per-object strategies vs one-size-fits-all caching",
		Header: []string{"regime", "class", "reads", "stale frac", "mean lag",
			"msgs", "bytes"},
	}
	opsPerClass := o.ops(200)

	classes := []workload.Class{
		workload.ClassPersonalHome, workload.ClassPopularEvent,
		workload.ClassMagazine, workload.ClassForum,
	}

	regimes := []struct {
		name  string
		strat func(workload.Class) strategy.Strategy
	}{
		{"uniform TTL", func(workload.Class) strategy.Strategy { return uniformTTL(40 * time.Millisecond) }},
		{"uniform validate", func(workload.Class) strategy.Strategy { return uniformValidate() }},
		{"per-object tailored", tailored},
	}

	for _, reg := range regimes {
		var totMsgs, totBytes uint64
		var totReads, totStale int
		for _, cls := range classes {
			msgs, bytes, rep := runClass(cls, reg.strat(cls), opsPerClass)
			totMsgs += msgs
			totBytes += bytes
			totReads += rep.Reads
			totStale += rep.StaleReads
			t.AddRow(reg.name, cls.String(), f("%d", rep.Reads), f("%.2f", rep.StaleFraction),
				f("%.2f", rep.MeanLag), f("%d", msgs), f("%d", bytes))
		}
		frac := 0.0
		if totReads > 0 {
			frac = float64(totStale) / float64(totReads)
		}
		t.AddRow(reg.name, "TOTAL", f("%d", totReads), f("%.2f", frac), "",
			f("%d", totMsgs), f("%d", totBytes))
	}
	t.Notes = append(t.Notes,
		"expected shape: tailored strategies dominate the staleness-vs-traffic frontier —",
		"TTL is cheap but stale, validate is fresh but chatty, per-object gets both right")
	return t
}

// uniformTTL is the expiration-based proxy cache: serve from cache until
// the TTL poll refreshes it.
func uniformTTL(ttl time.Duration) strategy.Strategy {
	return strategy.Strategy{
		Model:             coherence.PRAM,
		Propagation:       strategy.PropagateUpdate,
		Scope:             strategy.ScopeAll,
		Writers:           strategy.MultipleWriters,
		Initiative:        strategy.Pull,
		Instant:           strategy.Immediate,
		PullInterval:      ttl,
		AccessTransfer:    strategy.TransferPartial,
		CoherenceTransfer: strategy.CoherencePartial,
		ObjectOutdate:     strategy.Wait,
		ClientOutdate:     strategy.Wait,
	}
}

// uniformValidate is validate-on-every-access (If-Modified-Since): fresh
// but one round trip per read.
func uniformValidate() strategy.Strategy {
	s := uniformTTL(0)
	s.PullInterval = 0 // pull on access
	s.ObjectOutdate = strategy.Demand
	s.ClientOutdate = strategy.Demand
	return s
}

// tailored picks the preset matching each document class.
func tailored(c workload.Class) strategy.Strategy {
	switch c {
	case workload.ClassPersonalHome:
		return strategy.PersonalHomePage()
	case workload.ClassPopularEvent:
		s := strategy.PopularEventPage()
		s.Scope = strategy.ScopeAll
		return s
	case workload.ClassMagazine:
		return strategy.Magazine(40 * time.Millisecond)
	case workload.ClassForum:
		return strategy.Forum()
	default:
		return strategy.Conference(40 * time.Millisecond)
	}
}

// runClass drives one document class under one strategy and measures
// traffic and staleness.
func runClass(cls workload.Class, st strategy.Strategy, ops int) (uint64, uint64, metrics.Report) {
	if err := st.Validate(); err != nil {
		panic(err)
	}
	r := newRigH(memnet.WithSeed(int64(cls)))
	defer r.close()
	obj := ids.ObjectID("c1-" + cls.String())

	perm := r.mustStore("perm", replication.RolePermanent, 2*time.Second)
	defer perm.Close()
	mustHost(perm, store.HostConfig{Object: obj, Semantics: webdoc.New(), Strat: st})
	cache := r.mustStore("cache", replication.RoleClientInitiated, 2*time.Second)
	defer cache.Close()
	mustHost(cache, store.HostConfig{Object: obj, Semantics: webdoc.New(), Strat: st, Parent: "perm", Subscribe: true})

	cfg := workload.ClassConfig(cls, 17, ops)
	sched := workload.Generate(cfg)

	// Writers bind at the permanent store (owners publish at the server);
	// readers bind at the cache.
	writer := r.mustBind("writer", "perm", obj, 2*time.Second)
	defer writer.Close()
	reader := r.mustBind("reader", "cache", obj, 2*time.Second)
	defer reader.Close()

	stale := metrics.NewStaleness()
	rng := rand.New(rand.NewSource(23))
	for p := 0; p < cfg.Pages; p++ {
		if err := putContent(writer, workload.PageName(p), []byte("v0")); err != nil {
			panic(err)
		}
		stale.Wrote(workload.PageName(p))
	}
	r.net.ResetStats()
	for _, op := range sched {
		if op.IsWrite {
			if err := putContent(writer, op.Page, workload.Content(rng, op.Size)); err != nil {
				panic(err)
			}
			stale.Wrote(op.Page)
			continue
		}
		v, err := readVersion(reader, op.Page)
		if err == nil {
			stale.ReadVersion(op.Page, v)
		}
	}
	time.Sleep(30 * time.Millisecond) // drain lazy flushes before counting
	ns := r.net.Stats()
	return ns.Sent, ns.Bytes, stale.Report()
}
