package harness

import (
	"time"

	"repro/internal/coherence"
	"repro/internal/ids"
	"repro/internal/obs"
	"repro/internal/replication"
	"repro/internal/semantics/webdoc"
	"repro/internal/store"
	"repro/internal/strategy"
	"repro/internal/transport/memnet"
	"repro/internal/workload"
)

// wanLink models a wide-area hop; lanLink a local one (zero latency: the
// in-process hand-off already costs a few microseconds, and kernel timer
// quantisation would otherwise dominate sub-millisecond sleeps).
var (
	wanLink = memnet.LinkProfile{Latency: 2 * time.Millisecond}
	lanLink = memnet.LinkProfile{}
)

// Figure1 measures the local-object composition of Figure 1: the cost of
// binding, and of invocations flowing through an RPC-forwarding local
// object versus a replica-holding local object.
func Figure1(o Options) *Table {
	t := &Table{
		ID:     "F1",
		Title:  "local objects across address spaces: bind cost and invocation paths",
		Header: []string{"configuration", "ops", "mean (us)", "p99 (us)", "server reads"},
	}
	const obj = ids.ObjectID("f1-doc")
	reads := o.ops(500)

	run := func(name string, useReplica bool) {
		r := newRigH(memnet.WithDefaultLink(wanLink))
		defer r.close()
		perm := r.mustStore("perm", replication.RolePermanent, 3*time.Second)
		defer perm.Close()
		st := strategy.PopularEventPage()
		st.Scope = strategy.ScopeAll
		mustHost(perm, store.HostConfig{Object: obj, Semantics: webdoc.New(), Strat: st})

		bindTo := "perm"
		var cache *store.Store
		if useReplica {
			// Local cache one LAN hop away: replica-holding local object.
			cache = r.mustStore("cache", replication.RoleClientInitiated, 3*time.Second)
			defer cache.Close()
			r.net.SetLinkBoth("client", "cache", lanLink)
			mustHost(cache, store.HostConfig{
				Object: obj, Semantics: webdoc.New(), Strat: st, Parent: "perm", Subscribe: true,
			})
			bindTo = "cache"
		}

		writer := r.mustBind("writer", "perm", obj, 3*time.Second)
		defer writer.Close()
		if err := putContent(writer, "index.html", []byte("<h1>F1</h1>")); err != nil {
			panic(err)
		}

		bindStart := time.Now()
		client := r.mustBind("client", bindTo, obj, 3*time.Second)
		bindCost := time.Since(bindStart)
		defer client.Close()

		// Warm the replica (first read may fetch).
		if _, err := readVersion(client, "index.html"); err != nil {
			panic(err)
		}
		var lat obs.Hist
		for i := 0; i < reads; i++ {
			start := time.Now()
			if _, err := readVersion(client, "index.html"); err != nil {
				panic(err)
			}
			lat.Record(time.Since(start))
		}
		ss, _ := perm.Stats(obj)
		t.AddRow(name, f("%d", reads), f("%.0f", histMeanMicros(&lat)), f("%.0f", histP99Micros(&lat)),
			f("%d", ss.ReadsServed))
		t.Notes = append(t.Notes, f("%s: bind cost %v", name, bindCost.Round(time.Microsecond)))
	}

	run("RPC local object (forward to permanent over WAN)", false)
	run("replica local object (client-initiated cache on LAN)", true)
	t.Notes = append(t.Notes,
		"expected shape: replica-path reads are much faster and offload the permanent store")
	return t
}

// Figure2 measures the three-layer store hierarchy of Figure 2: read
// latency and permanent-store load when clients bind at each layer.
func Figure2(o Options) *Table {
	t := &Table{
		ID:     "F2",
		Title:  "store hierarchy: binding layer vs read latency and server load",
		Header: []string{"bound layer", "ops", "mean (us)", "p99 (us)", "permanent reads"},
	}
	const obj = ids.ObjectID("f2-doc")
	reads := o.ops(500)

	for _, layer := range []string{"permanent", "object-initiated", "client-initiated"} {
		r := newRigH(memnet.WithDefaultLink(wanLink))
		perm := r.mustStore("perm", replication.RolePermanent, 3*time.Second)
		st := strategy.PopularEventPage()
		st.Scope = strategy.ScopeAll
		st.Propagation = strategy.PropagateUpdate
		mustHost(perm, store.HostConfig{Object: obj, Semantics: webdoc.New(), Strat: st})

		mirror := r.mustStore("mirror", replication.RoleObjectInitiated, 3*time.Second)
		mustHost(mirror, store.HostConfig{Object: obj, Semantics: webdoc.New(), Strat: st, Parent: "perm", Subscribe: true})
		cache := r.mustStore("cache", replication.RoleClientInitiated, 3*time.Second)
		mustHost(cache, store.HostConfig{Object: obj, Semantics: webdoc.New(), Strat: st, Parent: "mirror", Subscribe: true})
		// Client is LAN-close to the cache, WAN-far from mirror and server.
		r.net.SetLinkBoth("client", "cache", lanLink)

		writer := r.mustBind("writer", "perm", obj, 3*time.Second)
		if err := putContent(writer, "index.html", []byte("<h1>F2</h1>")); err != nil {
			panic(err)
		}

		bindTo := map[string]string{
			"permanent": "perm", "object-initiated": "mirror", "client-initiated": "cache",
		}[layer]
		client := r.mustBind("client", bindTo, obj, 3*time.Second)
		if _, err := readVersion(client, "index.html"); err != nil {
			panic(err)
		}
		var lat obs.Hist
		for i := 0; i < reads; i++ {
			start := time.Now()
			if _, err := readVersion(client, "index.html"); err != nil {
				panic(err)
			}
			lat.Record(time.Since(start))
		}
		ss, _ := perm.Stats(obj)
		t.AddRow(layer, f("%d", reads), f("%.0f", histMeanMicros(&lat)), f("%.0f", histP99Micros(&lat)),
			f("%d", ss.ReadsServed))
		writer.Close()
		client.Close()
		cache.Close()
		mirror.Close()
		perm.Close()
		r.close()
	}
	t.Notes = append(t.Notes,
		"expected shape: reads from lower layers are faster; the permanent store serves fewer reads")
	return t
}

// E2ELossyRecovery measures the §4.2 end-to-end argument: over a lossy
// link, PRAM with object-outdate=demand recovers every update through the
// coherence protocol; with wait it stalls until the next push happens to
// fill the gap.
func E2ELossyRecovery(o Options) *Table {
	t := &Table{
		ID:     "E2E",
		Title:  "reliability from coherence (§4.2): lossy link, PRAM, outdate reaction",
		Header: []string{"reaction", "loss", "writes", "converged", "demands", "msgs", "dropped", "probes"},
	}
	writes := o.ops(50)
	for _, react := range []strategy.Reaction{strategy.Demand, strategy.Wait} {
		r := newRigH(memnet.WithSeed(31))
		const obj = ids.ObjectID("e2e-doc")
		st := strategy.Conference(5 * time.Millisecond)
		st.ObjectOutdate = react

		perm := r.mustStore("perm", replication.RolePermanent, 2*time.Second)
		mustHost(perm, store.HostConfig{Object: obj, Semantics: webdoc.New(), Strat: st})
		cache := r.mustStore("cache", replication.RoleClientInitiated, 2*time.Second)
		mustHost(cache, store.HostConfig{Object: obj, Semantics: webdoc.New(), Strat: st, Parent: "perm", Subscribe: true})
		r.net.SetLink("perm", "cache", memnet.LinkProfile{Loss: 0.35})

		writer := r.mustBind("writer", "perm", obj, 2*time.Second)
		for i := 0; i < writes; i++ {
			if err := appendContent(writer, "log", []byte("x")); err != nil {
				panic(err)
			}
			// Pace writes past the lazy interval so each ships in its own
			// frame: per-frame loss is what this experiment measures (a
			// single aggregated batch would make loss all-or-nothing).
			time.Sleep(6 * time.Millisecond)
		}
		// Gap-driven demand only fires when a later arrival reveals the
		// gap, so trailing probe writes stand in for the steady update
		// stream of a live object; convergence means the cache learned at
		// least every main write. The probe count is reported so the
		// traffic columns can be read net of measurement writes (a
		// non-converging row absorbs the full probe schedule).
		deadline := time.Now().Add(3 * time.Second)
		converged := false
		probes := 0
		for time.Now().Before(deadline) {
			v, err := cache.Applied(obj)
			if err == nil && v.Get(writer.Client()) >= uint64(writes) {
				converged = true
				break
			}
			_ = appendContent(writer, "log", []byte("x"))
			probes++
			time.Sleep(10 * time.Millisecond)
		}
		cs, _ := cache.Stats(obj)
		ns := r.net.Stats()
		t.AddRow(react.String(), "35%", f("%d", writes), f("%v", converged),
			f("%d", cs.DemandsSent), f("%d", ns.Sent), f("%d", ns.Dropped), f("%d", probes))
		writer.Close()
		cache.Close()
		perm.Close()
		r.close()
	}
	t.Notes = append(t.Notes,
		"expected shape: demand converges despite loss (reliability as a coherence side-effect); wait may stall",
		"matching the paper: UDP-like transport suffices once the coherence model repairs gaps")
	return t
}

// ModelsSession quantifies the client-based models of §3.2.2 on top of a
// weak object model: violations detected and repaired, and the demand-pull
// cost of each guarantee.
func ModelsSession(o Options) *Table {
	t := &Table{
		ID:     "M2",
		Title:  "client-based coherence models over a lazily synchronised mirror",
		Header: []string{"client model", "reads", "violations detected", "demands", "stale own-writes seen"},
	}
	rounds := o.ops(60)

	type cfg struct {
		name   string
		models []coherence.ClientModel
	}
	for _, c := range []cfg{
		{"none", nil},
		{"read-your-writes", []coherence.ClientModel{coherence.ReadYourWrites}},
		{"monotonic-reads", []coherence.ClientModel{coherence.MonotonicReads}},
		{"RYW+MR", []coherence.ClientModel{coherence.ReadYourWrites, coherence.MonotonicReads}},
	} {
		r := newRigH()
		const obj = ids.ObjectID("m2-doc")
		// Lazy mirror: pushes every 50ms only, so the mirror is usually
		// behind the writer.
		st := strategy.MirroredSite(50 * time.Millisecond)

		perm := r.mustStore("perm", replication.RolePermanent, 2*time.Second)
		mustHost(perm, store.HostConfig{Object: obj, Semantics: webdoc.New(), Strat: st})
		mirror := r.mustStore("mirror", replication.RoleObjectInitiated, 2*time.Second)
		mustHost(mirror, store.HostConfig{
			Object: obj, Semantics: webdoc.New(), Strat: st, Parent: "perm", Subscribe: true,
			Session: c.models,
		})

		// The client writes at the permanent store and reads at the mirror
		// — the classic travelling-user scenario.
		client := r.mustBind("client", "perm", obj, 2*time.Second, c.models...)
		staleOwn := 0
		for i := 0; i < rounds; i++ {
			if err := putContent(client, workload.PageName(0), []byte(f("v%d", i+1))); err != nil {
				panic(err)
			}
			if err := client.Rebind("mirror"); err != nil {
				panic(err)
			}
			v, err := readVersion(client, workload.PageName(0))
			if err == nil && v < uint64(i+1) {
				staleOwn++
			}
			if err := client.Rebind("perm"); err != nil {
				panic(err)
			}
		}
		ms, _ := mirror.Stats(obj)
		t.AddRow(c.name, f("%d", rounds), f("%d", ms.ReqViolations), f("%d", ms.DemandsSent), f("%d", staleOwn))
		client.Close()
		mirror.Close()
		perm.Close()
		r.close()
	}
	t.Notes = append(t.Notes,
		"expected shape: without guarantees the client sees its own writes missing at the mirror;",
		"with RYW the mirror detects violations and demands the missing updates (0 stale own-writes)")
	return t
}
