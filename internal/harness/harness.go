// Package harness builds and runs the reproduction experiments: one per
// figure/table of the paper (see DESIGN.md §4 and EXPERIMENTS.md). Each
// experiment assembles stores and clients over a simulated network, drives
// a synthetic workload, and reports a printable table of measured message
// counts, bytes, latencies, and staleness.
package harness

import (
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/msg"
	"repro/internal/naming"
	"repro/internal/replication"
	"repro/internal/semantics/webdoc"
	"repro/internal/store"
	"repro/internal/transport/memnet"
)

// Table is one experiment's result: a titled grid plus free-form notes.
type Table struct {
	ID     string // experiment id, e.g. "F1", "T2"
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Options tunes experiment sizes.
type Options struct {
	// Quick shrinks workloads for use inside `go test` and CI.
	Quick bool
}

func (o Options) ops(full int) int {
	if o.Quick {
		return full / 5
	}
	return full
}

// All runs every experiment in paper order.
func All(o Options) []*Table {
	return []*Table{
		Figure1(o),
		Figure2(o),
		Table1Sweep(o),
		Table2Conference(o),
		ModelsObjectBased(o),
		ModelsSession(o),
		ClaimPerObjectVsUniform(o),
		E2ELossyRecovery(o),
	}
}

// --- shared scenario plumbing -------------------------------------------------

// rig is a disposable network + naming + stores assembly.
type rig struct {
	net *memnet.Network
	ns  *naming.Service
}

func newRigH(opts ...memnet.Option) *rig {
	return &rig{net: memnet.New(opts...), ns: naming.New()}
}

func (r *rig) close() { _ = r.net.Close() }

func (r *rig) mustStore(addr string, role replication.Role, timeout time.Duration) *store.Store {
	ep, err := r.net.Endpoint(addr)
	if err != nil {
		panic(err)
	}
	return store.New(store.Config{
		ID: r.ns.NextStore(), Role: role, Endpoint: ep, ReadTimeout: timeout,
	})
}

func (r *rig) mustBind(addr, storeAddr string, obj ids.ObjectID, timeout time.Duration, models ...coherence.ClientModel) *core.Proxy {
	ep, err := r.net.Endpoint(addr)
	if err != nil {
		panic(err)
	}
	p, err := core.Bind(core.BindConfig{
		Object: obj, Endpoint: ep, StoreAddr: storeAddr,
		Client: r.ns.NextClient(), Session: models,
		Prototype: webdoc.New(), Timeout: timeout,
	})
	if err != nil {
		panic(err)
	}
	return p
}

func mustHost(s *store.Store, hc store.HostConfig) {
	if err := s.Host(hc); err != nil {
		panic(err)
	}
}

func putContent(p *core.Proxy, page string, content []byte) error {
	args := webdoc.EncodeWriteArgs(webdoc.WriteArgs{
		Content: content, ContentType: "text/html", ModifiedNanos: time.Now().UnixNano(),
	})
	_, err := p.Invoke(msg.Invocation{Method: webdoc.MethodPutPage, Page: page, Args: args})
	return err
}

func appendContent(p *core.Proxy, page string, content []byte) error {
	args := webdoc.EncodeWriteArgs(webdoc.WriteArgs{
		Content: content, ModifiedNanos: time.Now().UnixNano(),
	})
	_, err := p.Invoke(msg.Invocation{Method: webdoc.MethodAppendPage, Page: page, Args: args})
	return err
}

// readVersion reads a page and returns its replica version (0 on miss).
func readVersion(p *core.Proxy, page string) (uint64, error) {
	out, err := p.Invoke(msg.Invocation{Method: webdoc.MethodGetPage, Page: page})
	if err != nil {
		return 0, err
	}
	pg, err := webdoc.DecodePage(out)
	if err != nil {
		return 0, err
	}
	return pg.Version, nil
}

// settle waits for cond or the deadline (experiments tolerate timeouts and
// report whatever converged).
func settle(d time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(d)
	for {
		if cond() {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func f(format string, args ...any) string { return fmt.Sprintf(format, args...) }
