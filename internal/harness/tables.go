package harness

import (
	"math/rand"
	"time"

	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/replication"
	"repro/internal/semantics/webdoc"
	"repro/internal/store"
	"repro/internal/strategy"
	"repro/internal/transport/memnet"
	"repro/internal/workload"
)

// Table1Sweep sweeps the implementation parameters of Table 1 and measures
// their traffic/staleness trade-offs under a low-write and a high-write
// workload.
func Table1Sweep(o Options) *Table {
	t := &Table{
		ID:    "T1",
		Title: "implementation-parameter sweep (propagation x initiative x instant x transfer)",
		Header: []string{"workload", "propagation", "initiative", "instant", "coh.transfer",
			"msgs", "bytes", "stale reads", "mean lag"},
	}
	ops := o.ops(300)

	type combo struct {
		prop    strategy.Propagation
		init    strategy.Initiative
		instant strategy.Instant
		ct      strategy.CoherenceTransfer
	}
	combos := []combo{
		{strategy.PropagateUpdate, strategy.Push, strategy.Immediate, strategy.CoherencePartial},
		{strategy.PropagateUpdate, strategy.Push, strategy.Immediate, strategy.CoherenceFull},
		{strategy.PropagateUpdate, strategy.Push, strategy.Lazy, strategy.CoherencePartial},
		{strategy.PropagateUpdate, strategy.Push, strategy.Lazy, strategy.CoherenceFull},
		{strategy.PropagateInvalidate, strategy.Push, strategy.Immediate, strategy.CoherencePartial},
		{strategy.PropagateUpdate, strategy.Pull, strategy.Immediate, strategy.CoherencePartial},
	}
	for _, wl := range []struct {
		name       string
		writeRatio float64
	}{
		{"read-heavy (5% writes)", 0.05},
		{"write-heavy (40% writes)", 0.40},
	} {
		for _, c := range combos {
			msgs, bytes, rep := runSweep(c.prop, c.init, c.instant, c.ct, wl.writeRatio, ops)
			t.AddRow(wl.name, c.prop.String(), c.init.String(), c.instant.String(), c.ct.String(),
				f("%d", msgs), f("%d", bytes), f("%.2f", rep.StaleFraction), f("%.2f", rep.MeanLag))
		}
	}
	t.Notes = append(t.Notes,
		"expected shape: invalidate saves bytes at low write rates; lazy aggregation saves messages at high write rates;",
		"full transfer costs bytes vs partial; pull trades staleness for fewer pushes")
	return t
}

func runSweep(prop strategy.Propagation, init strategy.Initiative, instant strategy.Instant,
	ct strategy.CoherenceTransfer, writeRatio float64, ops int) (uint64, uint64, metrics.Report) {
	r := newRigH(memnet.WithSeed(3))
	defer r.close()
	const obj = ids.ObjectID("t1-doc")
	st := strategy.Strategy{
		Model:             coherence.PRAM,
		Propagation:       prop,
		Scope:             strategy.ScopeAll,
		Writers:           strategy.SingleWriter,
		Initiative:        init,
		Instant:           instant,
		LazyInterval:      10 * time.Millisecond,
		PullInterval:      15 * time.Millisecond,
		AccessTransfer:    strategy.TransferPartial,
		CoherenceTransfer: ct,
		ObjectOutdate:     strategy.Demand,
		ClientOutdate:     strategy.Demand,
	}
	if st.Model == coherence.Eventual {
		st.ObjectOutdate = strategy.Wait
	}
	if err := st.Validate(); err != nil {
		panic(err)
	}

	perm := r.mustStore("perm", replication.RolePermanent, 2*time.Second)
	defer perm.Close()
	mustHost(perm, store.HostConfig{Object: obj, Semantics: webdoc.New(), Strat: st})
	cache := r.mustStore("cache", replication.RoleClientInitiated, 2*time.Second)
	defer cache.Close()
	mustHost(cache, store.HostConfig{Object: obj, Semantics: webdoc.New(), Strat: st, Parent: "perm", Subscribe: true})

	writer := r.mustBind("writer", "perm", obj, 2*time.Second)
	defer writer.Close()
	reader := r.mustBind("reader", "cache", obj, 2*time.Second)
	defer reader.Close()

	stale := metrics.NewStaleness()
	rng := rand.New(rand.NewSource(7))
	const pages = 4
	// Pre-populate pages so reads never cold-miss.
	for p := 0; p < pages; p++ {
		if err := putContent(writer, workload.PageName(p), []byte("v0")); err != nil {
			panic(err)
		}
		stale.Wrote(workload.PageName(p))
	}
	sched := workload.Generate(workload.Config{
		Seed: 11, Clients: 1, Ops: ops, WriteRatio: writeRatio, Pages: pages,
		WriteSize: 256, SingleWriter: true,
	})
	r.net.ResetStats()
	for _, op := range sched {
		page := op.Page
		if op.IsWrite {
			if err := putContent(writer, page, workload.Content(rng, op.Size)); err != nil {
				panic(err)
			}
			stale.Wrote(page)
			continue
		}
		v, err := readVersion(reader, page)
		if err == nil {
			stale.ReadVersion(page, v)
		}
	}
	// Allow pending lazy flushes to drain before counting.
	time.Sleep(30 * time.Millisecond)
	ns := r.net.Stats()
	return ns.Sent, ns.Bytes, stale.Report()
}

// Table2Conference runs the full §4 scenario with the exact Table 2
// parameters and reports the coherence work done, with and without the
// Read-Your-Writes client model for the master.
func Table2Conference(o Options) *Table {
	t := &Table{
		ID:    "T2",
		Title: "conference home page (Table 2 parameters): PRAM + Read Your Writes",
		Header: []string{"configuration", "master writes", "master stale reads", "RYW violations detected",
			"demands", "user stale reads", "msgs"},
	}
	writes := o.ops(60)

	for _, withRYW := range []bool{true, false} {
		r := newRigH()
		const obj = ids.ObjectID("conf")
		st := strategy.Conference(25 * time.Millisecond)

		server := r.mustStore("server", replication.RolePermanent, 2*time.Second)
		mustHost(server, store.HostConfig{Object: obj, Semantics: webdoc.New(), Strat: st})
		var models []coherence.ClientModel
		if withRYW {
			models = []coherence.ClientModel{coherence.ReadYourWrites}
		}
		cacheM := r.mustStore("cache-m", replication.RoleClientInitiated, 2*time.Second)
		mustHost(cacheM, store.HostConfig{
			Object: obj, Semantics: webdoc.New(), Strat: st, Parent: "server",
			Subscribe: true, Session: models,
		})
		cacheU := r.mustStore("cache-u", replication.RoleClientInitiated, 2*time.Second)
		mustHost(cacheU, store.HostConfig{Object: obj, Semantics: webdoc.New(), Strat: st, Parent: "server", Subscribe: true})

		master := r.mustBind("master", "cache-m", obj, 2*time.Second, models...)
		user := r.mustBind("user", "cache-u", obj, 2*time.Second)

		masterStale, userStale := 0, 0
		for i := 0; i < writes; i++ {
			if err := appendContent(master, "program", []byte("u")); err != nil {
				panic(err)
			}
			// The master verifies its own update (the paper's motivation
			// for RYW).
			v, err := readVersion(master, "program")
			if err == nil && v < uint64(i+1) {
				masterStale++
			}
			// A user reads concurrently; PRAM allows lag here.
			if uv, err := readVersion(user, "program"); err == nil && uv < uint64(i+1) {
				userStale++
			}
		}
		ms, _ := cacheM.Stats(obj)
		ns := r.net.Stats()
		name := "PRAM only"
		if withRYW {
			name = "PRAM + RYW (Table 2)"
		}
		t.AddRow(name, f("%d", writes), f("%d", masterStale), f("%d", ms.ReqViolations),
			f("%d", ms.DemandsSent), f("%d", userStale), f("%d", ns.Sent))
		master.Close()
		user.Close()
		cacheU.Close()
		cacheM.Close()
		server.Close()
		r.close()
	}
	t.Notes = append(t.Notes,
		"expected shape: with RYW the master never reads a cache state missing its own writes (0 stale),",
		"paid for by demand pulls; user caches may lag under lazy push either way (PRAM permits it)")
	return t
}

// ModelsObjectBased compares the five object-based models of §3.2.1 under a
// concurrent multi-writer workload: ordering overhead and convergence.
func ModelsObjectBased(o Options) *Table {
	t := &Table{
		ID:     "M1",
		Title:  "object-based coherence models under concurrent writers",
		Header: []string{"model", "writes", "converged", "buffered@caches", "msgs", "bytes", "write mean (us)"},
	}
	perWriter := o.ops(40)

	for _, model := range []coherence.Model{
		coherence.Sequential, coherence.PRAM, coherence.FIFO, coherence.Causal, coherence.Eventual,
	} {
		r := newRigH()
		const obj = ids.ObjectID("m1-doc")
		st := strategy.Strategy{
			Model:             model,
			Propagation:       strategy.PropagateUpdate,
			Scope:             strategy.ScopeAll,
			Writers:           strategy.MultipleWriters,
			Initiative:        strategy.Push,
			Instant:           strategy.Immediate,
			AccessTransfer:    strategy.TransferFull,
			CoherenceTransfer: strategy.CoherencePartial,
			ObjectOutdate:     strategy.Demand,
			ClientOutdate:     strategy.Demand,
		}
		if model == coherence.FIFO {
			st.Writers = strategy.SingleWriter
		}
		if model == coherence.Eventual {
			st.ObjectOutdate = strategy.Wait
		}
		if err := st.Validate(); err != nil {
			panic(err)
		}

		perm := r.mustStore("perm", replication.RolePermanent, 2*time.Second)
		mustHost(perm, store.HostConfig{Object: obj, Semantics: webdoc.New(), Strat: st})
		caches := make([]*store.Store, 2)
		for i := range caches {
			caches[i] = r.mustStore(f("cache-%d", i), replication.RoleClientInitiated, 2*time.Second)
			mustHost(caches[i], store.HostConfig{Object: obj, Semantics: webdoc.New(), Strat: st, Parent: "perm", Subscribe: true})
		}

		nWriters := 3
		if st.Writers == strategy.SingleWriter {
			nWriters = 1
		}
		writers := make([]*core.Proxy, nWriters)
		for i := range writers {
			writers[i] = r.mustBind(f("writer-%d", i), f("cache-%d", i%len(caches)), obj, 2*time.Second)
		}

		var lat obs.Hist
		r.net.ResetStats()
		// Each writer writes to its own page: concurrent but conflict-free
		// except under eventual LWW on shared page 0 for contrast.
		for k := 0; k < perWriter; k++ {
			for i, w := range writers {
				start := time.Now()
				if err := putContent(w, workload.PageName(i), []byte(f("w%d-v%d", i, k))); err != nil {
					panic(err)
				}
				lat.Record(time.Since(start))
			}
		}
		totalWrites := uint64(perWriter * len(writers))
		converged := settle(3*time.Second, func() bool {
			for _, c := range caches {
				v, err := c.Applied(obj)
				if err != nil || v.Total() < totalWrites {
					return false
				}
			}
			return true
		})
		var buffered uint64
		for _, c := range caches {
			cs, _ := c.Stats(obj)
			buffered += cs.UpdatesBuffered
		}
		ns := r.net.Stats()
		t.AddRow(model.String(), f("%d", totalWrites), f("%v", converged),
			f("%d", buffered), f("%d", ns.Sent), f("%d", ns.Bytes), f("%.0f", histMeanMicros(&lat)))
		for _, w := range writers {
			w.Close()
		}
		for _, c := range caches {
			c.Close()
		}
		perm.Close()
		r.close()
	}
	t.Notes = append(t.Notes,
		"expected shape: stronger models do more ordering work (buffering) and writes cost more;",
		"eventual applies everything immediately; FIFO is restricted to a single writer")
	return t
}
