package harness

import "repro/internal/obs"

// histMeanMicros and histP99Micros render an obs.Hist recorded in
// nanoseconds (Record) as the tables' microsecond cells — the same unit the
// retired sorted-slice histogram reported.
func histMeanMicros(h *obs.Hist) float64 {
	if h.Count() == 0 {
		return 0
	}
	return float64(h.Sum()) / float64(h.Count()) / 1e3
}

func histP99Micros(h *obs.Hist) float64 {
	return float64(h.Quantile(0.99)) / 1e3
}
