package naming

import (
	"testing"

	"repro/internal/ids"
	"repro/internal/replication"
)

func TestIDAllocation(t *testing.T) {
	s := New()
	if a, b := s.NextClient(), s.NextClient(); a == b || a == 0 || b == 0 {
		t.Fatalf("client ids not unique: %d %d", a, b)
	}
	if a, b := s.NextStore(), s.NextStore(); a == b || a == 0 || b == 0 {
		t.Fatalf("store ids not unique: %d %d", a, b)
	}
}

func TestRegisterLookupOrder(t *testing.T) {
	s := New()
	s.Register("o", Entry{Addr: "perm", Store: 1, Role: replication.RolePermanent})
	s.Register("o", Entry{Addr: "cache", Store: 2, Role: replication.RoleClientInitiated})
	s.Register("o", Entry{Addr: "mirror", Store: 3, Role: replication.RoleObjectInitiated})
	got := s.Lookup("o")
	if len(got) != 3 {
		t.Fatalf("lookup returned %d entries", len(got))
	}
	// Client-initiated first, permanent last.
	if got[0].Addr != "cache" || got[1].Addr != "mirror" || got[2].Addr != "perm" {
		t.Fatalf("layer ordering wrong: %+v", got)
	}
}

func TestRegisterReplacesSameAddr(t *testing.T) {
	s := New()
	s.Register("o", Entry{Addr: "a", Store: 1, Role: replication.RolePermanent})
	s.Register("o", Entry{Addr: "a", Store: 9, Role: replication.RolePermanent})
	got := s.Lookup("o")
	if len(got) != 1 || got[0].Store != 9 {
		t.Fatalf("replacement failed: %+v", got)
	}
}

func TestDeregister(t *testing.T) {
	s := New()
	s.Register("o", Entry{Addr: "a", Store: 1, Role: replication.RolePermanent})
	s.Register("o", Entry{Addr: "b", Store: 2, Role: replication.RoleClientInitiated})
	s.Deregister("o", "a")
	got := s.Lookup("o")
	if len(got) != 1 || got[0].Addr != "b" {
		t.Fatalf("deregister failed: %+v", got)
	}
	s.Deregister("o", "missing") // no-op
}

func TestLookupRoleAndPermanent(t *testing.T) {
	s := New()
	if _, err := s.Permanent("o"); err == nil {
		t.Fatalf("Permanent on empty service should fail")
	}
	s.Register("o", Entry{Addr: "perm", Store: 1, Role: replication.RolePermanent})
	s.Register("o", Entry{Addr: "cache", Store: 2, Role: replication.RoleClientInitiated})
	caches := s.LookupRole("o", replication.RoleClientInitiated)
	if len(caches) != 1 || caches[0].Addr != "cache" {
		t.Fatalf("LookupRole wrong: %+v", caches)
	}
	p, err := s.Permanent("o")
	if err != nil || p.Addr != "perm" {
		t.Fatalf("Permanent wrong: %+v %v", p, err)
	}
}

func TestLookupUnknownObject(t *testing.T) {
	s := New()
	if got := s.Lookup("nothing"); len(got) != 0 {
		t.Fatalf("unknown object returned entries: %+v", got)
	}
}

func TestPickLayerAwareDeterministic(t *testing.T) {
	s := New()
	if _, ok := s.Pick("o"); ok {
		t.Fatalf("Pick on empty service returned an entry")
	}
	// Register in adverse order: permanent first, then a high-ID cache, then
	// a low-ID cache. Pick must not depend on registration order.
	s.Register("o", Entry{Addr: "perm", Store: 1, Role: replication.RolePermanent})
	e, ok := s.Pick("o")
	if !ok || e.Addr != "perm" {
		t.Fatalf("Pick with only a permanent store: %+v", e)
	}
	s.Register("o", Entry{Addr: "mirror", Store: 2, Role: replication.RoleObjectInitiated})
	s.Register("o", Entry{Addr: "cache-late", Store: 9, Role: replication.RoleClientInitiated})
	s.Register("o", Entry{Addr: "cache-early", Store: 3, Role: replication.RoleClientInitiated})
	e, _ = s.Pick("o")
	if e.Addr != "cache-early" {
		t.Fatalf("Pick = %+v, want lowest-layer lowest-ID cache-early", e)
	}
	// A remote entry without a store ID loses the tie against an identified
	// replica in the same layer.
	s.Register("o", Entry{Addr: "remote-cache", Store: 0, Role: replication.RoleClientInitiated})
	e, _ = s.Pick("o")
	if e.Addr != "cache-early" {
		t.Fatalf("Pick preferred ID-less remote entry: %+v", e)
	}
}

func TestReserveIDsDisjointFromAllocation(t *testing.T) {
	s := New()
	// Pin ahead of allocation: allocator must skip the pinned ID.
	if err := s.ReserveClient(3); err != nil {
		t.Fatal(err)
	}
	got := []ids.ClientID{s.NextClient(), s.NextClient(), s.NextClient()}
	want := []ids.ClientID{1, 2, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("allocations = %v, want %v", got, want)
		}
	}
	// Re-pinning the same identity is the session-resume pattern: allowed.
	if err := s.ReserveClient(3); err != nil {
		t.Fatalf("re-pin of pinned client: %v", err)
	}
	// Pinning an ID the allocator already handed out is a collision.
	if err := s.ReserveClient(2); err == nil {
		t.Fatalf("pin of auto-allocated client 2 accepted")
	}
	// Stores follow the same rules.
	if err := s.ReserveStore(1); err != nil {
		t.Fatal(err)
	}
	if id := s.NextStore(); id != 2 {
		t.Fatalf("NextStore = %d, want 2 (1 is pinned)", id)
	}
	if err := s.ReserveStore(2); err == nil {
		t.Fatalf("pin of auto-allocated store 2 accepted")
	}
}
