package naming

import (
	"testing"

	"repro/internal/replication"
)

func TestIDAllocation(t *testing.T) {
	s := New()
	if a, b := s.NextClient(), s.NextClient(); a == b || a == 0 || b == 0 {
		t.Fatalf("client ids not unique: %d %d", a, b)
	}
	if a, b := s.NextStore(), s.NextStore(); a == b || a == 0 || b == 0 {
		t.Fatalf("store ids not unique: %d %d", a, b)
	}
}

func TestRegisterLookupOrder(t *testing.T) {
	s := New()
	s.Register("o", Entry{Addr: "perm", Store: 1, Role: replication.RolePermanent})
	s.Register("o", Entry{Addr: "cache", Store: 2, Role: replication.RoleClientInitiated})
	s.Register("o", Entry{Addr: "mirror", Store: 3, Role: replication.RoleObjectInitiated})
	got := s.Lookup("o")
	if len(got) != 3 {
		t.Fatalf("lookup returned %d entries", len(got))
	}
	// Client-initiated first, permanent last.
	if got[0].Addr != "cache" || got[1].Addr != "mirror" || got[2].Addr != "perm" {
		t.Fatalf("layer ordering wrong: %+v", got)
	}
}

func TestRegisterReplacesSameAddr(t *testing.T) {
	s := New()
	s.Register("o", Entry{Addr: "a", Store: 1, Role: replication.RolePermanent})
	s.Register("o", Entry{Addr: "a", Store: 9, Role: replication.RolePermanent})
	got := s.Lookup("o")
	if len(got) != 1 || got[0].Store != 9 {
		t.Fatalf("replacement failed: %+v", got)
	}
}

func TestDeregister(t *testing.T) {
	s := New()
	s.Register("o", Entry{Addr: "a", Store: 1, Role: replication.RolePermanent})
	s.Register("o", Entry{Addr: "b", Store: 2, Role: replication.RoleClientInitiated})
	s.Deregister("o", "a")
	got := s.Lookup("o")
	if len(got) != 1 || got[0].Addr != "b" {
		t.Fatalf("deregister failed: %+v", got)
	}
	s.Deregister("o", "missing") // no-op
}

func TestLookupRoleAndPermanent(t *testing.T) {
	s := New()
	if _, err := s.Permanent("o"); err == nil {
		t.Fatalf("Permanent on empty service should fail")
	}
	s.Register("o", Entry{Addr: "perm", Store: 1, Role: replication.RolePermanent})
	s.Register("o", Entry{Addr: "cache", Store: 2, Role: replication.RoleClientInitiated})
	caches := s.LookupRole("o", replication.RoleClientInitiated)
	if len(caches) != 1 || caches[0].Addr != "cache" {
		t.Fatalf("LookupRole wrong: %+v", caches)
	}
	p, err := s.Permanent("o")
	if err != nil || p.Addr != "perm" {
		t.Fatalf("Permanent wrong: %+v %v", p, err)
	}
}

func TestLookupUnknownObject(t *testing.T) {
	s := New()
	if got := s.Lookup("nothing"); len(got) != 0 {
		t.Fatalf("unknown object returned entries: %+v", got)
	}
}
