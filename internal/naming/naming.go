// Package naming implements the Globe support service that lets clients
// find a distributed shared object's contact points (§2: "in order for a
// process to invoke an object's method, it must first bind to that object
// by contacting it at one of the object's contact points"). It also issues
// the system-wide unique client and store identifiers that write IDs and
// dependency records are built from.
package naming

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/ids"
	"repro/internal/replication"
	"repro/internal/strategy"
)

// Entry is one contact point of an object: a store holding a replica.
type Entry struct {
	Addr  string
	Store ids.StoreID
	Role  replication.Role
}

// Meta is the per-object metadata a name record carries beyond contact
// points: the semantics type name, the replication strategy, and the
// client-based session models the object's replicas are expected to
// support. It is what lets a process bind to an object it has never been
// configured for — the record, not the client, carries the object's
// semantics and model (the incremental-consistency spirit of PAPERS.md).
type Meta struct {
	// Sem is the semantics type name ("webdoc", "kvstore", "applog").
	Sem string
	// Strat is the object's replication strategy; HasStrat reports whether
	// it was ever recorded (a zero Strategy is not distinguishable
	// otherwise).
	Strat    strategy.Strategy
	HasStrat bool
	// Models lists the session-model short names ("ryw", "mr", "mw",
	// "wfr") the object's deployment supports for clients.
	Models []string
}

// Record is a full name record: everything the location service knows about
// one object. Version increases whenever the record changes (entry
// registration/removal or metadata update); clients use it to detect that a
// cached record went stale.
type Record struct {
	Object  ids.ObjectID
	Entries []Entry
	Meta    Meta
	Version uint64
}

// Service is an in-memory location service. The zero value is unusable;
// create with New. Safe for concurrent use.
type Service struct {
	mu            sync.Mutex
	objects       map[ids.ObjectID][]Entry
	meta          map[ids.ObjectID]Meta
	versions      map[ids.ObjectID]uint64
	floors        map[ids.ClientID]uint64
	nextClient    ids.ClientID
	nextStore     ids.StoreID
	pinnedClients map[ids.ClientID]bool
	pinnedStores  map[ids.StoreID]bool
}

// New creates an empty location service.
func New() *Service {
	return &Service{
		objects:       make(map[ids.ObjectID][]Entry),
		meta:          make(map[ids.ObjectID]Meta),
		versions:      make(map[ids.ObjectID]uint64),
		floors:        make(map[ids.ClientID]uint64),
		pinnedClients: make(map[ids.ClientID]bool),
		pinnedStores:  make(map[ids.StoreID]bool),
	}
}

// NextClient allocates a fresh client identifier, skipping identifiers
// pinned via ReserveClient.
func (s *Service) NextClient() ids.ClientID {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		s.nextClient++
		if !s.pinnedClients[s.nextClient] {
			return s.nextClient
		}
	}
}

// NextStore allocates a fresh store identifier, skipping identifiers pinned
// via ReserveStore.
func (s *Service) NextStore() ids.StoreID {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		s.nextStore++
		if !s.pinnedStores[s.nextStore] {
			return s.nextStore
		}
	}
}

// ReserveClient pins id so NextClient never allocates it. Deployments that
// choose their own client IDs call this to keep pinned and auto-allocated
// identities disjoint. Re-pinning an already pinned id succeeds — reusing
// a persistent client identity across bindings is how a returning client
// resumes its session — but pinning an id NextClient already handed out is
// an error: two live clients would share a write-ID namespace.
func (s *Service) ReserveClient(id ids.ClientID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pinnedClients[id] {
		return nil
	}
	if id <= s.nextClient {
		return fmt.Errorf("naming: client ID %d was already auto-allocated", id)
	}
	s.pinnedClients[id] = true
	return nil
}

// ReserveStore pins id so NextStore never allocates it. Pinning an id
// NextStore already handed out is an error.
func (s *Service) ReserveStore(id ids.StoreID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pinnedStores[id] {
		return nil
	}
	if id <= s.nextStore {
		return fmt.Errorf("naming: store ID %d was already auto-allocated", id)
	}
	s.pinnedStores[id] = true
	return nil
}

// Register adds a contact point for an object. Registering the same address
// twice replaces the old entry.
func (s *Service) Register(obj ids.ObjectID, e Entry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.versions[obj]++
	entries := s.objects[obj]
	for i, old := range entries {
		if old.Addr == e.Addr {
			entries[i] = e
			return
		}
	}
	s.objects[obj] = append(entries, e)
}

// Deregister removes the contact point at addr.
func (s *Service) Deregister(obj ids.ObjectID, addr string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	entries := s.objects[obj]
	for i, e := range entries {
		if e.Addr == addr {
			s.versions[obj]++
			s.objects[obj] = append(entries[:i], entries[i+1:]...)
			return
		}
	}
}

// SetMeta records an object's semantics/strategy/model metadata, completing
// its name record.
func (s *Service) SetMeta(obj ids.ObjectID, m Meta) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.versions[obj]++
	s.meta[obj] = m
}

// Record returns the full name record of obj (entries sorted as Lookup
// sorts them). ok is false when the service knows nothing about obj.
func (s *Service) Record(obj ids.ObjectID) (Record, bool) {
	s.mu.Lock()
	entries := append([]Entry(nil), s.objects[obj]...)
	m, hasMeta := s.meta[obj]
	v := s.versions[obj]
	s.mu.Unlock()
	if len(entries) == 0 && !hasMeta {
		return Record{}, false
	}
	sort.SliceStable(entries, func(i, j int) bool {
		return layerRank(entries[i].Role) < layerRank(entries[j].Role)
	})
	return Record{Object: obj, Entries: entries, Meta: m, Version: v}, true
}

// ReportClientSeq raises a client identity's write-sequence floor: the
// highest per-client write sequence a session using this identity reports
// having issued. A later bind seeds its write counter from
// max(bound store's applied vector, this floor), so a reused identity
// binding a replica that lags its previous writes does not re-issue covered
// write IDs (which stores silently absorb as replays).
func (s *Service) ReportClientSeq(id ids.ClientID, seq uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if seq > s.floors[id] {
		s.floors[id] = seq
	}
}

// ClientSeqFloor returns the recorded write-sequence floor for a client
// identity (zero when the identity never reported).
func (s *Service) ClientSeqFloor(id ids.ClientID) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.floors[id]
}

// Lookup returns every contact point of obj, lowest store layer first
// (client-initiated, then object-initiated, then permanent): "it is
// generally up to the client to decide to which replica he will bind", and
// closer layers are usually preferable.
func (s *Service) Lookup(obj ids.ObjectID) []Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	entries := append([]Entry(nil), s.objects[obj]...)
	sort.SliceStable(entries, func(i, j int) bool {
		return layerRank(entries[i].Role) < layerRank(entries[j].Role)
	})
	return entries
}

// Pick returns the default contact point for a client that expressed no
// preference: the lowest-layer replica (client-initiated before
// object-initiated before permanent — closer layers are usually
// preferable), with ties broken by smallest store ID and then address, so
// the choice is deterministic regardless of registration order. Remote
// entries registered without a store ID (ID 0) sort after identified ones
// within their layer.
func (s *Service) Pick(obj ids.ObjectID) (Entry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return PickEntry(s.objects[obj])
}

// PickEntry applies the deterministic default-replica choice to an entry
// set from any source — the in-process service or a fetched name record.
func PickEntry(entries []Entry) (Entry, bool) {
	if len(entries) == 0 {
		return Entry{}, false
	}
	best := entries[0]
	for _, e := range entries[1:] {
		if pickLess(e, best) {
			best = e
		}
	}
	return best, true
}

// pickLess orders entries by (layer, store ID with 0 last, address).
func pickLess(a, b Entry) bool {
	ra, rb := layerRank(a.Role), layerRank(b.Role)
	if ra != rb {
		return ra < rb
	}
	ia, ib := uint64(a.Store), uint64(b.Store)
	if ia == 0 {
		ia = math.MaxUint64
	}
	if ib == 0 {
		ib = math.MaxUint64
	}
	if ia != ib {
		return ia < ib
	}
	return a.Addr < b.Addr
}

// LookupRole returns the contact points with a given role.
func (s *Service) LookupRole(obj ids.ObjectID, r replication.Role) []Entry {
	var out []Entry
	for _, e := range s.Lookup(obj) {
		if e.Role == r {
			out = append(out, e)
		}
	}
	return out
}

// Permanent returns the first permanent contact point or an error.
func (s *Service) Permanent(obj ids.ObjectID) (Entry, error) {
	perms := s.LookupRole(obj, replication.RolePermanent)
	if len(perms) == 0 {
		return Entry{}, fmt.Errorf("naming: object %q has no permanent store", obj)
	}
	return perms[0], nil
}

func layerRank(r replication.Role) int {
	switch r {
	case replication.RoleClientInitiated:
		return 0
	case replication.RoleObjectInitiated:
		return 1
	case replication.RolePermanent:
		return 2
	default:
		return 3
	}
}
