// Package naming implements the Globe support service that lets clients
// find a distributed shared object's contact points (§2: "in order for a
// process to invoke an object's method, it must first bind to that object
// by contacting it at one of the object's contact points"). It also issues
// the system-wide unique client and store identifiers that write IDs and
// dependency records are built from.
package naming

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/ids"
	"repro/internal/replication"
)

// Entry is one contact point of an object: a store holding a replica.
type Entry struct {
	Addr  string
	Store ids.StoreID
	Role  replication.Role
}

// Service is an in-memory location service. The zero value is unusable;
// create with New. Safe for concurrent use.
type Service struct {
	mu         sync.Mutex
	objects    map[ids.ObjectID][]Entry
	nextClient ids.ClientID
	nextStore  ids.StoreID
}

// New creates an empty location service.
func New() *Service {
	return &Service{objects: make(map[ids.ObjectID][]Entry)}
}

// NextClient allocates a fresh client identifier.
func (s *Service) NextClient() ids.ClientID {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextClient++
	return s.nextClient
}

// NextStore allocates a fresh store identifier.
func (s *Service) NextStore() ids.StoreID {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextStore++
	return s.nextStore
}

// Register adds a contact point for an object. Registering the same address
// twice replaces the old entry.
func (s *Service) Register(obj ids.ObjectID, e Entry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	entries := s.objects[obj]
	for i, old := range entries {
		if old.Addr == e.Addr {
			entries[i] = e
			return
		}
	}
	s.objects[obj] = append(entries, e)
}

// Deregister removes the contact point at addr.
func (s *Service) Deregister(obj ids.ObjectID, addr string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	entries := s.objects[obj]
	for i, e := range entries {
		if e.Addr == addr {
			s.objects[obj] = append(entries[:i], entries[i+1:]...)
			return
		}
	}
}

// Lookup returns every contact point of obj, lowest store layer first
// (client-initiated, then object-initiated, then permanent): "it is
// generally up to the client to decide to which replica he will bind", and
// closer layers are usually preferable.
func (s *Service) Lookup(obj ids.ObjectID) []Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	entries := append([]Entry(nil), s.objects[obj]...)
	sort.SliceStable(entries, func(i, j int) bool {
		return layerRank(entries[i].Role) < layerRank(entries[j].Role)
	})
	return entries
}

// LookupRole returns the contact points with a given role.
func (s *Service) LookupRole(obj ids.ObjectID, r replication.Role) []Entry {
	var out []Entry
	for _, e := range s.Lookup(obj) {
		if e.Role == r {
			out = append(out, e)
		}
	}
	return out
}

// Permanent returns the first permanent contact point or an error.
func (s *Service) Permanent(obj ids.ObjectID) (Entry, error) {
	perms := s.LookupRole(obj, replication.RolePermanent)
	if len(perms) == 0 {
		return Entry{}, fmt.Errorf("naming: object %q has no permanent store", obj)
	}
	return perms[0], nil
}

func layerRank(r replication.Role) int {
	switch r {
	case replication.RoleClientInitiated:
		return 0
	case replication.RoleObjectInitiated:
		return 1
	case replication.RolePermanent:
		return 2
	default:
		return 3
	}
}
