package store_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/msg"
	"repro/internal/replication"
	"repro/internal/semantics/webdoc"
	"repro/internal/store"
	"repro/internal/strategy"
	"repro/internal/transport/tcpnet"
)

// digestInterval is the heartbeat period the regression tests run with. The
// acceptance bar is convergence within 2× the interval after a heal; the
// interval is sized so that bound leaves ~180ms of scheduler headroom even
// under -race (worst-case heartbeat lag is 1.25× the interval plus one
// demand round trip).
const digestInterval = 250 * time.Millisecond

// storeWithDigest is rig.store with heartbeats enabled.
func (r *rig) storeWithDigest(addr string, role replication.Role, digest time.Duration) *store.Store {
	r.t.Helper()
	ep, err := r.net.Endpoint(addr)
	if err != nil {
		r.t.Fatal(err)
	}
	s := store.New(store.Config{
		ID:             r.ns.NextStore(),
		Role:           role,
		Endpoint:       ep,
		ReadTimeout:    2 * time.Second,
		DigestInterval: digest,
	})
	r.t.Cleanup(func() { _ = s.Close() })
	return s
}

// readLocalPage reads a page's content directly at a store, bypassing the
// client path entirely (the convergence assertions must not generate the
// very foreground traffic whose absence they are testing).
func readLocalPage(s *store.Store, obj ids.ObjectID, page string) (string, error) {
	out, err := s.ReadLocal(obj, msg.Invocation{Method: webdoc.MethodGetPage, Page: page})
	if err != nil {
		return "", err
	}
	pg, err := webdoc.DecodePage(out)
	if err != nil {
		return "", err
	}
	return string(pg.Content), nil
}

// TestDigestHealsPartitionWithoutForegroundTraffic is the tentpole's
// acceptance scenario on memnet: a cache is partitioned from its parent in
// the middle of a write stream, every push is lost, the partition heals —
// and with zero foreground traffic (no reads, no further writes) the cache
// converges within 2× the digest interval, via a KindDigest-triggered
// demand.
func TestDigestHealsPartitionWithoutForegroundTraffic(t *testing.T) {
	r := newRig(t)
	const obj = ids.ObjectID("digest-doc")
	st := strategy.Conference(5 * time.Millisecond)

	perm := r.storeWithDigest("perm", replication.RolePermanent, digestInterval)
	if err := perm.Host(store.HostConfig{Object: obj, Semantics: webdoc.New(), Strat: st}); err != nil {
		t.Fatal(err)
	}
	cache := r.storeWithDigest("cache", replication.RoleClientInitiated, digestInterval)
	if err := cache.Host(store.HostConfig{Object: obj, Semantics: webdoc.New(), Strat: st, Parent: "perm", Subscribe: true}); err != nil {
		t.Fatal(err)
	}
	writer := r.bind("writer", "perm", obj)

	appendPage(t, writer, "log", "a")
	eventually(t, 3*time.Second, func() bool {
		got, err := readLocalPage(cache, obj, "log")
		return err == nil && got == "a"
	}, "pre-partition update arrives")

	// Partition mid-write-stream: these pushes are all dropped.
	r.net.Partition("perm", "cache")
	for i := 0; i < 5; i++ {
		appendPage(t, writer, "log", "b")
	}
	time.Sleep(30 * time.Millisecond) // span several lazy flush windows
	r.net.Heal("perm", "cache")

	// No further writes, no client reads at the cache: only the heartbeat
	// can expose the gap. The eventually deadline IS the acceptance bar.
	eventually(t, 2*digestInterval, func() bool {
		got, err := readLocalPage(cache, obj, "log")
		return err == nil && got == "abbbbb"
	}, "cache converges within 2x DigestInterval after heal")

	cs, err := cache.Stats(obj)
	if err != nil {
		t.Fatal(err)
	}
	if cs.DigestDemands == 0 {
		t.Fatalf("convergence did not come from a digest-triggered demand: %+v", cs)
	}
	if s := r.net.Stats(); s.ByKind[msg.KindDigest] == 0 {
		t.Fatalf("no KindDigest frames crossed the network: %+v", s.ByKind)
	}
}

// TestNoDigestPartitionStalls is the negative control: the identical
// scenario with heartbeats disabled demonstrably stalls — the cache is still
// stale well past the window the digest-enabled run converges in.
func TestNoDigestPartitionStalls(t *testing.T) {
	r := newRig(t)
	const obj = ids.ObjectID("stall-doc")
	st := strategy.Conference(5 * time.Millisecond)

	perm := r.store("perm", replication.RolePermanent) // DigestInterval zero
	if err := perm.Host(store.HostConfig{Object: obj, Semantics: webdoc.New(), Strat: st}); err != nil {
		t.Fatal(err)
	}
	cache := r.store("cache", replication.RoleClientInitiated)
	if err := cache.Host(store.HostConfig{Object: obj, Semantics: webdoc.New(), Strat: st, Parent: "perm", Subscribe: true}); err != nil {
		t.Fatal(err)
	}
	writer := r.bind("writer", "perm", obj)

	appendPage(t, writer, "log", "a")
	eventually(t, 3*time.Second, func() bool {
		got, err := readLocalPage(cache, obj, "log")
		return err == nil && got == "a"
	}, "pre-partition update arrives")

	r.net.Partition("perm", "cache")
	for i := 0; i < 5; i++ {
		appendPage(t, writer, "log", "b")
	}
	time.Sleep(30 * time.Millisecond)
	r.net.Heal("perm", "cache")

	// Give it twice the window the positive test needs, and then some: with
	// no heartbeat and no foreground traffic nothing exposes the gap.
	time.Sleep(2*digestInterval + 100*time.Millisecond)
	got, err := readLocalPage(cache, obj, "log")
	if err != nil {
		t.Fatal(err)
	}
	if got != "a" {
		t.Fatalf("cache recovered without digests (got %q) — negative control invalid", got)
	}
}

// tcpRig assembles stores over real TCP endpoints for the fault tests.
type tcpRig struct {
	t *testing.T
}

func (r *tcpRig) endpoint() *tcpnet.Endpoint {
	r.t.Helper()
	ep, err := tcpnet.Listen("127.0.0.1:0")
	if err != nil {
		r.t.Fatal(err)
	}
	r.t.Cleanup(func() { _ = ep.Close() })
	return ep
}

func (r *tcpRig) store(id uint32, role replication.Role, ep *tcpnet.Endpoint, digest time.Duration) *store.Store {
	r.t.Helper()
	s := store.New(store.Config{
		ID:             ids.StoreID(id),
		Role:           role,
		Endpoint:       ep,
		ReadTimeout:    2 * time.Second,
		DigestInterval: digest,
	})
	r.t.Cleanup(func() { _ = s.Close() })
	return s
}

func (r *tcpRig) bind(client uint32, storeAddr string, obj ids.ObjectID) *core.Proxy {
	r.t.Helper()
	ep := r.endpoint()
	p, err := core.Bind(core.BindConfig{
		Object: obj, Endpoint: ep, StoreAddr: storeAddr,
		Client: ids.ClientID(client), Prototype: webdoc.New(), Timeout: 3 * time.Second,
	})
	if err != nil {
		r.t.Fatal(err)
	}
	r.t.Cleanup(p.Close)
	return p
}

// TestDigestHealsTCPPartition runs the partition-heal scenario over real
// TCP: the cache endpoint is paused (listener down, connections severed) in
// the middle of a write stream, every push fails on the broken connections,
// and after resume the digest heartbeat — not client traffic — resyncs it.
func TestDigestHealsTCPPartition(t *testing.T) {
	r := &tcpRig{t: t}
	const obj = ids.ObjectID("tcp-digest-doc")
	st := strategy.Conference(5 * time.Millisecond)

	permEP, cacheEP := r.endpoint(), r.endpoint()
	perm := r.store(1, replication.RolePermanent, permEP, digestInterval)
	if err := perm.Host(store.HostConfig{Object: obj, Semantics: webdoc.New(), Strat: st}); err != nil {
		t.Fatal(err)
	}
	cache := r.store(2, replication.RoleClientInitiated, cacheEP, digestInterval)
	if err := cache.Host(store.HostConfig{Object: obj, Semantics: webdoc.New(), Strat: st, Parent: permEP.Addr(), Subscribe: true}); err != nil {
		t.Fatal(err)
	}
	writer := r.bind(7, permEP.Addr(), obj)

	appendPage(t, writer, "log", "a")
	eventually(t, 3*time.Second, func() bool {
		got, err := readLocalPage(cache, obj, "log")
		return err == nil && got == "a"
	}, "pre-partition update arrives over TCP")

	if err := cacheEP.Pause(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		appendPage(t, writer, "log", "b")
	}
	time.Sleep(30 * time.Millisecond) // pushes fail against the paused endpoint
	if err := cacheEP.Resume(); err != nil {
		t.Fatal(err)
	}

	eventually(t, 2*digestInterval, func() bool {
		got, err := readLocalPage(cache, obj, "log")
		return err == nil && got == "abbbbb"
	}, "TCP cache converges within 2x DigestInterval after resume")

	cs, err := cache.Stats(obj)
	if err != nil {
		t.Fatal(err)
	}
	if cs.DigestDemands == 0 {
		t.Fatalf("TCP convergence did not come from a digest-triggered demand: %+v", cs)
	}
}

// TestTCPConnectionKillMidFrameResyncs kills the cache's connections — mid
// write stream, so frames die in flight — several times, and asserts the
// reconnect + heartbeat path resyncs the replica with no duplicated and no
// reordered applies: the final page content is the exact ordered
// concatenation of every append.
func TestTCPConnectionKillMidFrameResyncs(t *testing.T) {
	r := &tcpRig{t: t}
	const obj = ids.ObjectID("tcp-kill-doc")
	st := strategy.Conference(time.Hour)
	st.Instant = strategy.Immediate // one push per write: many frames to kill
	st.LazyInterval = 0

	permEP, cacheEP := r.endpoint(), r.endpoint()
	perm := r.store(1, replication.RolePermanent, permEP, 100*time.Millisecond)
	if err := perm.Host(store.HostConfig{Object: obj, Semantics: webdoc.New(), Strat: st}); err != nil {
		t.Fatal(err)
	}
	cache := r.store(2, replication.RoleClientInitiated, cacheEP, 100*time.Millisecond)
	if err := cache.Host(store.HostConfig{Object: obj, Semantics: webdoc.New(), Strat: st, Parent: permEP.Addr(), Subscribe: true}); err != nil {
		t.Fatal(err)
	}
	writer := r.bind(7, permEP.Addr(), obj)

	const n = 30
	want := ""
	for i := 0; i < n; i++ {
		tok := fmt.Sprintf("%02d;", i)
		appendPage(t, writer, "log", tok)
		want += tok
		if i%7 == 3 {
			cacheEP.AbortConns() // sever mid-stream; pushes in flight die
		}
	}

	eventually(t, 5*time.Second, func() bool {
		got, err := readLocalPage(cache, obj, "log")
		return err == nil && got == want
	}, "cache resyncs to the exact ordered append sequence (no dup, no reorder)")
}
