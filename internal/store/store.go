// Package store implements the store processes of the paper's system model
// (§3.1, Figure 2): permanent stores (Web servers), object-initiated stores
// (mirrors), and client-initiated stores (proxy/browser caches). A Store
// hosts replicas of any number of distributed shared Web objects; each
// replica is the local-object composition of Figure 1 — a semantics object
// wrapped by a control object, driven by a replication object, communicating
// through the store's endpoint.
//
// The store is a single-event-loop actor: every network message and timer
// callback is funnelled through one goroutine, so replication objects need
// no internal locking.
//
//globelint:deterministic
//globelint:aliased-input
package store

import (
	"errors"
	"fmt"
	"net/url"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/coherence"
	"repro/internal/control"
	"repro/internal/ids"
	"repro/internal/msg"
	"repro/internal/obs"
	"repro/internal/replication"
	"repro/internal/semantics"
	"repro/internal/strategy"
	"repro/internal/transport"
	"repro/internal/wal"
)

// ErrClosed reports an operation on a closed store.
var ErrClosed = errors.New("store: closed")

// ErrNotHosted reports an object the store has no replica of.
var ErrNotHosted = errors.New("store: object not hosted")

// Config assembles a store.
type Config struct {
	ID       ids.StoreID
	Role     replication.Role
	Endpoint transport.Endpoint
	Clock    clock.Clock
	// ReadTimeout bounds parked reads (default 5s, tests shrink it).
	ReadTimeout time.Duration
	// DemandRetry is the per-replica unanswered-demand re-request delay
	// (default 50ms; negative disables retries).
	DemandRetry time.Duration
	// DigestInterval enables anti-entropy digest heartbeats for every
	// replica this store hosts: each interval (jittered) the store sends
	// its subscribed children a compact applied-vector digest, so a child
	// behind silent tail-loss or a healed partition demands the gap instead
	// of waiting for new traffic. Zero disables heartbeats (the default).
	DigestInterval time.Duration
	// ResolveParent, when set, gives every hosted replica the resolver seam
	// for self-healing: on parent death (subscribe-retry exhaustion, or
	// ReparentAfter silent digest periods) the replica calls it to list the
	// object's live replicas and re-subscribes at one closer to the root.
	// Called on the store's event loop during a re-parent pick (a rare
	// event); a slow resolver stalls the store for the duration, so keep
	// lookups bounded by a call timeout.
	ResolveParent func(object ids.ObjectID) []replication.ParentCandidate
	// ReparentAfter is the consecutive silent digest periods after which a
	// replica declares its parent dead (0 disables the liveness watch;
	// requires DigestInterval).
	ReparentAfter int
	// DataDir, when set on a permanent store, makes every hosted replica
	// durable: a per-object write-ahead log + snapshot under
	// <DataDir>/store-<ID>/<object>/, replayed on restart. Only the
	// permanent role persists; Host rejects a DataDir on mirror/cache
	// roles rather than silently dropping durability (durable mirrors are
	// a planned follow-on — their recovery gate must reconcile replayed
	// state against a parent that kept moving).
	DataDir string
	// Durability tunes the WAL when DataDir is set.
	Durability Durability
	// Obs, when set, wires every hosted replica into the observability
	// layer (internal/obs): per-replica lifecycle counters, the
	// propagation-lag histogram, and — when the observer carries a trace
	// ring — structured protocol events. Nil (the default) disables all of
	// it at zero hot-path cost.
	Obs *obs.Observer
}

// Durability tunes a durable store's write-ahead log.
type Durability struct {
	// Fsync is the flush policy (wal.SyncOff / SyncInterval / SyncAlways).
	Fsync wal.Policy
	// SyncInterval is the flush cadence under SyncInterval (default 100ms).
	SyncInterval time.Duration
	// SnapshotEvery is the WAL record count between snapshot compactions
	// (default 1024; negative disables compaction).
	SnapshotEvery int
	// RecoveryGrace bounds the restart anti-entropy gate (default 2s).
	RecoveryGrace time.Duration
}

// replica is one hosted local object.
type replica struct {
	ctrl *control.Control
	repl *replication.Object
	sem  string // semantics type name; "" = unchecked
}

// Store hosts replicas and runs their shared event loop.
type Store struct {
	cfg      Config
	events   chan func()
	done     chan struct{}
	wg       sync.WaitGroup
	mu       sync.Mutex
	replicas map[ids.ObjectID]*replica
	hosted   *obs.Gauge // replicas currently hosted (nil when obs is off)
	closed   bool
}

// New creates and starts a store.
func New(cfg Config) *Store {
	if cfg.Clock == nil {
		cfg.Clock = clock.Real{}
	}
	s := &Store{
		cfg:      cfg,
		events:   make(chan func(), 1024),
		done:     make(chan struct{}),
		replicas: make(map[ids.ObjectID]*replica),
	}
	s.hosted = cfg.Obs.Registry().Gauge("globe_store_objects_hosted",
		"replicas currently hosted by this store",
		obs.L("store", fmt.Sprintf("%d", cfg.ID)))
	s.wg.Add(1)
	go s.loop()
	return s
}

// ID returns the store identifier.
func (s *Store) ID() ids.StoreID { return s.cfg.ID }

// Role returns the store's class.
func (s *Store) Role() replication.Role { return s.cfg.Role }

// Addr returns the store's transport address.
func (s *Store) Addr() string { return s.cfg.Endpoint.Addr() }

// HostConfig describes one replica to install.
type HostConfig struct {
	Object ids.ObjectID

	// Semantics is the replica's semantics object (fresh or pre-loaded).
	Semantics semantics.Object
	// SemName, when set, names the semantics type ("webdoc", "kvstore",
	// "applog", ...). Bind requests that declare a different semantics name
	// are rejected, so a client holding the wrong typed handle fails fast
	// at bind time instead of hitting unknown-method errors later.
	SemName string
	// Strat is the object's replication strategy (Table 1).
	Strat strategy.Strategy
	// Parent is the upstream store's address ("" for permanent stores).
	Parent string
	// Session lists client-based models this store must support
	// (DepGuard wrapping when the object model doesn't imply them).
	Session []coherence.ClientModel
	// Subscribe, when true, registers with the parent immediately.
	Subscribe bool
}

// Host installs a replica on the store's event loop and returns once it is
// active. The returned replication object must only be inspected through
// its thread-safe accessors after this call (Stats/Applied via Store).
func (s *Store) Host(hc HostConfig) error {
	if s.cfg.DataDir != "" && s.cfg.Role != replication.RolePermanent {
		// Fail fast instead of silently dropping durability: only the
		// permanent role persists (see Config.DataDir). A deployment that
		// sets a data dir on a mirror or cache believes its data is safe;
		// it is not, so say so at configuration time.
		return fmt.Errorf("store %d: DataDir %q configured on %v role: only permanent stores are durable (durable mirrors are a planned follow-on)",
			s.cfg.ID, s.cfg.DataDir, s.cfg.Role)
	}
	ctrl := control.New(hc.Semantics)
	errCh := make(chan error, 1)
	posted := s.post(func() {
		if _, exists := s.replicas[hc.Object]; exists {
			errCh <- fmt.Errorf("store %d: object %q already hosted", s.cfg.ID, hc.Object)
			return
		}
		env := &replicaEnv{store: s, ctrl: ctrl}
		rc := replication.Config{
			Env:            env,
			Object:         hc.Object,
			Self:           s.cfg.ID,
			Addr:           s.Addr(),
			Role:           s.cfg.Role,
			Parent:         hc.Parent,
			Strat:          hc.Strat,
			Session:        hc.Session,
			ReadTimeout:    s.cfg.ReadTimeout,
			DemandRetry:    s.cfg.DemandRetry,
			DigestInterval: s.cfg.DigestInterval,
			ReparentAfter:  s.cfg.ReparentAfter,
			Obs:            s.cfg.Obs,
		}
		if resolve := s.cfg.ResolveParent; resolve != nil {
			rc.ResolveParent = func() []replication.ParentCandidate {
				return resolve(hc.Object)
			}
		}
		if s.cfg.DataDir != "" && s.cfg.Role == replication.RolePermanent {
			wlog, recovered, err := wal.Open(s.walDir(hc.Object))
			if err != nil {
				errCh <- fmt.Errorf("store %d: opening wal for %q: %w", s.cfg.ID, hc.Object, err)
				return
			}
			d := s.cfg.Durability
			rc.WAL = wlog
			rc.Recovered = recovered
			rc.WALSync = d.Fsync
			rc.WALSyncInterval = d.SyncInterval
			rc.SnapshotEvery = d.SnapshotEvery
			rc.RecoveryGrace = d.RecoveryGrace
		}
		ro, err := replication.New(rc)
		if err != nil {
			if rc.WAL != nil {
				_ = rc.WAL.Close()
			}
			errCh <- err
			return
		}
		if rc.WAL != nil {
			// The event loop drains messages in batches and flushes parked
			// acks once per batch (see loop): one fsync covers every write
			// the batch admitted — the group commit.
			ro.SetGroupCommit(true)
		}
		s.replicas[hc.Object] = &replica{ctrl: ctrl, repl: ro, sem: hc.SemName}
		s.hosted.Add(1)
		if hc.Subscribe {
			ro.SubscribeToParent()
		}
		errCh <- nil
	})
	if !posted {
		return ErrClosed
	}
	return <-errCh
}

// walDir is the durable directory for one replica:
// <DataDir>/store-<ID>/<escaped object>.
func (s *Store) walDir(object ids.ObjectID) string {
	return filepath.Join(s.cfg.DataDir,
		fmt.Sprintf("store-%d", s.cfg.ID), url.PathEscape(string(object)))
}

// Unhost removes a hosted replica at runtime: it unsubscribes from the
// parent (so the parent stops pushing to a dead address), closes the
// replication object, and forgets the replica. The multi-object daemon's
// drop-replica control RPC is built on it.
func (s *Store) Unhost(object ids.ObjectID) error {
	errCh := make(chan error, 1)
	posted := s.post(func() {
		r, ok := s.replicas[object]
		if !ok {
			errCh <- fmt.Errorf("%w: %q", ErrNotHosted, object)
			return
		}
		r.repl.UnsubscribeFromParent()
		r.repl.Close()
		delete(s.replicas, object)
		s.hosted.Add(-1)
		errCh <- nil
	})
	if !posted {
		return ErrClosed
	}
	return <-errCh
}

// Stats returns the replication counters of a hosted object.
func (s *Store) Stats(object ids.ObjectID) (replication.Stats, error) {
	var out replication.Stats
	errCh := make(chan error, 1)
	posted := s.post(func() {
		r, ok := s.replicas[object]
		if !ok {
			errCh <- fmt.Errorf("%w: %q", ErrNotHosted, object)
			return
		}
		out = r.repl.Stats()
		errCh <- nil
	})
	if !posted {
		return out, ErrClosed
	}
	return out, <-errCh
}

// Applied returns the applied version vector of a hosted object.
func (s *Store) Applied(object ids.ObjectID) (ids.VersionVec, error) {
	var out ids.VersionVec
	errCh := make(chan error, 1)
	posted := s.post(func() {
		r, ok := s.replicas[object]
		if !ok {
			errCh <- fmt.Errorf("%w: %q", ErrNotHosted, object)
			return
		}
		out = r.repl.Applied()
		errCh <- nil
	})
	if !posted {
		return nil, ErrClosed
	}
	return out, <-errCh
}

// ReadLocal executes a read invocation directly against the hosted replica
// (test and metrics support; bypasses the session machinery).
func (s *Store) ReadLocal(object ids.ObjectID, inv msg.Invocation) ([]byte, error) {
	var out []byte
	errCh := make(chan error, 1)
	posted := s.post(func() {
		r, ok := s.replicas[object]
		if !ok {
			errCh <- fmt.Errorf("%w: %q", ErrNotHosted, object)
			return
		}
		//globelint:ignore aliasretain inv is caller-owned (not decode output) and the caller blocks on errCh until this closure finishes
		b, err := r.ctrl.ServeRead(inv)
		out = b
		errCh <- err
	})
	if !posted {
		return nil, ErrClosed
	}
	return out, <-errCh
}

// Close stops the event loop and closes every replica. It does not close
// the endpoint (the owner of the endpoint closes it).
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	close(s.done)
	s.wg.Wait()
	for _, r := range s.replicas {
		r.repl.Close()
	}
	return nil
}

// Crash stops the event loop abruptly WITHOUT closing replicas: timers are
// abandoned, WALs are neither flushed nor closed — the in-process analogue
// of kill -9 for crash-recovery tests. The endpoint (owned by the caller)
// should be torn down around it.
func (s *Store) Crash() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	close(s.done)
	s.wg.Wait()
}

// Compact forces a snapshot compaction of a durable replica (tests, control
// surfaces).
func (s *Store) Compact(object ids.ObjectID) error {
	errCh := make(chan error, 1)
	posted := s.post(func() {
		r, ok := s.replicas[object]
		if !ok {
			errCh <- fmt.Errorf("%w: %q", ErrNotHosted, object)
			return
		}
		errCh <- r.repl.Compact()
	})
	if !posted {
		return ErrClosed
	}
	return <-errCh
}

// Durability reports the durable-store state of a hosted replica.
func (s *Store) Durability(object ids.ObjectID) (replication.DurabilityInfo, error) {
	var out replication.DurabilityInfo
	errCh := make(chan error, 1)
	posted := s.post(func() {
		r, ok := s.replicas[object]
		if !ok {
			errCh <- fmt.Errorf("%w: %q", ErrNotHosted, object)
			return
		}
		out = r.repl.Durability()
		errCh <- nil
	})
	if !posted {
		return out, ErrClosed
	}
	return out, <-errCh
}

// post schedules f on the event loop; reports false if the store is closed.
func (s *Store) post(f func()) bool {
	select {
	case <-s.done:
		return false
	default:
	}
	select {
	case s.events <- f:
		return true
	case <-s.done:
		return false
	}
}

// maxDrainBatch bounds how many immediately-available messages one loop
// iteration dispatches before flushing acks, so a hot link cannot starve
// posted events or shutdown — and so the group-commit batch stays bounded.
const maxDrainBatch = 128

// loop is the store's single event goroutine. Incoming messages are drained
// in bounded batches; after each batch the loop releases the write acks the
// batch parked (replication.FlushAcks), so N writes admitted in one drain
// share one fsync barrier — the loop plays the tcpnet writev leader, the
// queue is the batch.
func (s *Store) loop() {
	defer s.wg.Done()
	recv := s.cfg.Endpoint.Recv()
	for {
		select {
		case <-s.done:
			return
		case f := <-s.events:
			f()
			s.flushAcks()
		case m, ok := <-recv:
			if !ok {
				return
			}
			s.dispatch(m)
			s.drain(recv)
			s.flushAcks()
		}
	}
}

// drain dispatches messages already queued behind the one just handled.
//globelint:looponly
func (s *Store) drain(recv <-chan *msg.Message) {
	for i := 0; i < maxDrainBatch; i++ {
		select {
		case m, ok := <-recv:
			if !ok {
				return
			}
			s.dispatch(m)
		default:
			return
		}
	}
}

// flushAcks runs the per-batch group commit on every hosted replica (a
// no-op on replicas with nothing parked).
//globelint:looponly
func (s *Store) flushAcks() {
	for _, r := range s.replicas {
		r.repl.FlushAcks()
	}
}

// dispatch routes one message to the store or its replicas.
//globelint:looponly
func (s *Store) dispatch(m *msg.Message) {
	if m.Kind == msg.KindBindRequest {
		s.onBind(m)
		return
	}
	r, ok := s.replicas[m.Object]
	if !ok {
		// Reads/writes for unhosted objects get an explicit error so
		// clients fail fast instead of timing out.
		if m.Kind == msg.KindReadRequest || m.Kind == msg.KindWriteRequest {
			s.replyUnhosted(m)
		}
		return
	}
	r.repl.Handle(m)
}

// onBind answers a client bind request: success if the object is hosted and
// the client's declared semantics type (the bind request's Sem field)
// matches the replica's. Either side may leave the name empty to skip the
// check.
//globelint:looponly
func (s *Store) onBind(m *msg.Message) {
	r := m.Reply(msg.KindBindReply)
	r.From = s.Addr()
	r.Store = s.cfg.ID
	rep, ok := s.replicas[m.Object]
	switch {
	case !ok:
		r.Status = msg.StatusNotFound
		r.Err = string(m.Object) + " not hosted"
	case rep.repl.Recovering():
		// Recover-then-serve: no new binds until the restarted replica has
		// anti-entropied the tail from its children (clients back off and
		// retry, like any StatusRetry).
		r.Status = msg.StatusRetry
		r.Err = "store recovering from restart"
	case m.Sem != "" && rep.sem != "" && m.Sem != rep.sem:
		r.Status = msg.StatusError
		r.Err = fmt.Sprintf("semantics mismatch: object %q is %s, client bound a %s handle",
			m.Object, rep.sem, m.Sem)
	default:
		// The reply carries the replica's applied vector so the client's
		// session can seed its write counter past writes this deployment
		// already applied under its client ID (see coherence.SeedSeq).
		r.VVec = msg.VecFrom(rep.repl.Applied())
	}
	_ = s.cfg.Endpoint.Send(m.From, r)
}

//globelint:looponly
func (s *Store) replyUnhosted(m *msg.Message) {
	kind := msg.KindReadReply
	if m.Kind == msg.KindWriteRequest {
		kind = msg.KindWriteReply
	}
	r := m.Reply(kind)
	r.From = s.Addr()
	r.Store = s.cfg.ID
	r.Status = msg.StatusNotFound
	r.Err = string(m.Object) + " not hosted"
	_ = s.cfg.Endpoint.Send(m.From, r)
}

// replicaEnv implements replication.Env for one replica, bridging to the
// store's endpoint, clock, and the replica's control object.
type replicaEnv struct {
	store *Store
	ctrl  *control.Control
}

var _ replication.Env = (*replicaEnv)(nil)

func (e *replicaEnv) Send(to string, m *msg.Message) error {
	return e.store.cfg.Endpoint.Send(to, m)
}

func (e *replicaEnv) Multicast(tos []string, m *msg.Message) error {
	return e.store.cfg.Endpoint.Multicast(tos, m)
}

func (e *replicaEnv) ApplyOp(u *coherence.Update) error { return e.ctrl.ApplyOp(u) }
func (e *replicaEnv) ApplyFull(snapshot []byte) error   { return e.ctrl.ApplyFull(snapshot) }
func (e *replicaEnv) ApplyElement(name string, data []byte) error {
	return e.ctrl.ApplyElement(name, data)
}
func (e *replicaEnv) Snapshot() ([]byte, error) { return e.ctrl.Snapshot() }
func (e *replicaEnv) SnapshotElement(name string) ([]byte, error) {
	return e.ctrl.SnapshotElement(name)
}
func (e *replicaEnv) ServeRead(inv msg.Invocation) ([]byte, error) {
	return e.ctrl.ServeRead(inv)
}

func (e *replicaEnv) Now() time.Time { return e.store.cfg.Clock.Now() }

// AfterFunc re-dispatches the callback onto the store's event loop so
// replication objects stay single-threaded.
func (e *replicaEnv) AfterFunc(d time.Duration, f func()) clock.Timer {
	return e.store.cfg.Clock.AfterFunc(d, func() {
		_ = e.store.post(f)
	})
}

// Retune swaps a hosted object's implementation parameters at runtime (the
// paper's dynamic-adaptation hook); the coherence model cannot change.
func (s *Store) Retune(object ids.ObjectID, strat strategy.Strategy) error {
	errCh := make(chan error, 1)
	posted := s.post(func() {
		r, ok := s.replicas[object]
		if !ok {
			errCh <- fmt.Errorf("%w: %q", ErrNotHosted, object)
			return
		}
		errCh <- r.repl.Retune(strat)
	})
	if !posted {
		return ErrClosed
	}
	return <-errCh
}

// AddPeer registers a sibling replica for anti-entropy gossip (eventual
// model, leaderless mirror synchronisation).
func (s *Store) AddPeer(object ids.ObjectID, peerAddr string) error {
	errCh := make(chan error, 1)
	posted := s.post(func() {
		r, ok := s.replicas[object]
		if !ok {
			errCh <- fmt.Errorf("%w: %q", ErrNotHosted, object)
			return
		}
		r.repl.AddPeer(peerAddr)
		errCh <- nil
	})
	if !posted {
		return ErrClosed
	}
	return <-errCh
}

// RemovePeer deregisters a gossip peer previously added with AddPeer.
func (s *Store) RemovePeer(object ids.ObjectID, peerAddr string) error {
	errCh := make(chan error, 1)
	posted := s.post(func() {
		r, ok := s.replicas[object]
		if !ok {
			errCh <- fmt.Errorf("%w: %q", ErrNotHosted, object)
			return
		}
		r.repl.RemovePeer(peerAddr)
		errCh <- nil
	})
	if !posted {
		return ErrClosed
	}
	return <-errCh
}
