package store_test

import (
	"encoding/binary"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/msg"
	"repro/internal/replication"
	"repro/internal/semantics/applog"
	"repro/internal/semantics/kvstore"
	"repro/internal/semantics/webdoc"
	"repro/internal/store"
	"repro/internal/strategy"
	"repro/internal/transport/memnet"
)

// TestDuplicatedLinkDeliveries injects UDP-style duplication on the push
// path and checks the ordering engines deduplicate: content must not be
// applied twice.
func TestDuplicatedLinkDeliveries(t *testing.T) {
	r := newRig(t, memnet.WithSeed(5))
	const obj = ids.ObjectID("dup-doc")
	st := strategy.Conference(5 * time.Millisecond)

	perm := r.store("perm", replication.RolePermanent)
	if err := perm.Host(store.HostConfig{Object: obj, Semantics: webdoc.New(), Strat: st}); err != nil {
		t.Fatal(err)
	}
	cache := r.store("cache", replication.RoleClientInitiated)
	if err := cache.Host(store.HostConfig{Object: obj, Semantics: webdoc.New(), Strat: st, Parent: "perm", Subscribe: true}); err != nil {
		t.Fatal(err)
	}
	// Every second push is duplicated.
	r.net.SetLink("perm", "cache", memnet.LinkProfile{Dup: 0.5})

	writer := r.bind("writer", "perm", obj)
	reader := r.bind("reader", "cache", obj)
	const n = 20
	for i := 0; i < n; i++ {
		appendPage(t, writer, "log", "x")
		// Sleep past the lazy interval every few writes so the run spans
		// several flush windows: multiple update frames must cross the
		// duplicating link, not one aggregate batch.
		if i%5 == 4 {
			time.Sleep(7 * time.Millisecond)
		}
	}
	// Wait for the lazy flushes to ship the op updates (with duplicates).
	// Aggregated flushes travel as KindUpdateBatch frames; a duplicated
	// batch resubmits every entry, so dedup is exercised either way.
	eventually(t, 5*time.Second, func() bool {
		s := r.net.Stats()
		return s.ByKind[msg.KindUpdate]+s.ByKind[msg.KindUpdateBatch] >= 2 && s.Duplicated > 0
	}, "several op-update frames (with duplicates) shipped to the cache")
	// The cache must converge to exactly n appends — duplicates deduped.
	eventually(t, 5*time.Second, func() bool {
		got, err := getPage(t, reader, "log")
		if err != nil {
			return false
		}
		if len(got) > n {
			t.Fatalf("duplicate deliveries double-applied: %d chars after %d appends", len(got), n)
		}
		return len(got) == n
	}, "cache converges to exactly n appends despite duplication")
}

// TestPartitionHealRecovery partitions a cache from its server mid-run and
// verifies it catches up after healing via the demand reaction.
func TestPartitionHealRecovery(t *testing.T) {
	r := newRig(t)
	const obj = ids.ObjectID("part-doc")
	st := strategy.Conference(5 * time.Millisecond)
	st.ObjectOutdate = strategy.Demand

	perm := r.store("perm", replication.RolePermanent)
	if err := perm.Host(store.HostConfig{Object: obj, Semantics: webdoc.New(), Strat: st}); err != nil {
		t.Fatal(err)
	}
	cache := r.store("cache", replication.RoleClientInitiated)
	if err := cache.Host(store.HostConfig{Object: obj, Semantics: webdoc.New(), Strat: st, Parent: "perm", Subscribe: true}); err != nil {
		t.Fatal(err)
	}
	writer := r.bind("writer", "perm", obj)
	reader := r.bind("reader", "cache", obj)

	appendPage(t, writer, "log", "a")
	eventually(t, 3*time.Second, func() bool {
		got, err := getPage(t, reader, "log")
		return err == nil && got == "a"
	}, "pre-partition update arrives")

	r.net.Partition("perm", "cache")
	for i := 0; i < 5; i++ {
		appendPage(t, writer, "log", "b")
	}
	time.Sleep(30 * time.Millisecond) // pushes are dropped during partition
	r.net.Heal("perm", "cache")

	// After healing, the next lazy flush or demand closes the gap: the
	// cache sees gap-triggered demands (later pushes arrive out of order)
	// or simply the next flush's full sequence.
	appendPage(t, writer, "log", "c")
	eventually(t, 5*time.Second, func() bool {
		got, err := getPage(t, reader, "log")
		return err == nil && got == "abbbbbc"
	}, "cache recovers the partitioned writes after heal")
}

// TestKVStoreSemanticsThroughStores proves the replication machinery is
// semantics-agnostic: the paper's shared bibliographic database (kvstore)
// runs through the same stores and strategy as Web documents.
func TestKVStoreSemanticsThroughStores(t *testing.T) {
	r := newRig(t)
	const obj = ids.ObjectID("biblio-db")
	st := strategy.Conference(5 * time.Millisecond)
	st.Writers = strategy.MultipleWriters

	perm := r.store("perm", replication.RolePermanent)
	if err := perm.Host(store.HostConfig{Object: obj, Semantics: kvstore.New(), Strat: st}); err != nil {
		t.Fatal(err)
	}
	cache := r.store("cache", replication.RoleClientInitiated)
	if err := cache.Host(store.HostConfig{Object: obj, Semantics: kvstore.New(), Strat: st, Parent: "perm", Subscribe: true}); err != nil {
		t.Fatal(err)
	}

	ep, err := r.net.Endpoint("kv-client")
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.Bind(core.BindConfig{
		Object: obj, Endpoint: ep, StoreAddr: "perm",
		Client: r.ns.NextClient(), Prototype: kvstore.New(), Timeout: 3 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)

	// Add a record, then update one of its fields — the paper's PRAM
	// bibliographic-database example.
	if _, err := p.Invoke(msg.Invocation{Method: kvstore.MethodPut, Page: "rec/knuth84", Args: []byte("title=TeXbook")}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Invoke(msg.Invocation{Method: kvstore.MethodPut, Page: "rec/knuth84", Args: []byte("title=TeXbook;year=1984")}); err != nil {
		t.Fatal(err)
	}
	out, err := p.Invoke(msg.Invocation{Method: kvstore.MethodGet, Page: "rec/knuth84"})
	if err != nil || string(out) != "title=TeXbook;year=1984" {
		t.Fatalf("kv read: %q, %v", out, err)
	}

	// The cache replica converges through the same push machinery.
	eventually(t, 3*time.Second, func() bool {
		out, err := cache.ReadLocal(obj, msg.Invocation{Method: kvstore.MethodGet, Page: "rec/knuth84"})
		return err == nil && string(out) == "title=TeXbook;year=1984"
	}, "kv cache converges")
}

// TestAppLogSemanticsThroughStores runs the append-only log semantics (the
// newsgroup) through the causal-forum strategy.
func TestAppLogSemanticsThroughStores(t *testing.T) {
	r := newRig(t)
	const obj = ids.ObjectID("newsgroup")
	st := strategy.Forum()
	// applog transfers as one element; use full access transfer.
	st.AccessTransfer = strategy.TransferFull

	perm := r.store("perm", replication.RolePermanent)
	if err := perm.Host(store.HostConfig{Object: obj, Semantics: applog.New(), Strat: st}); err != nil {
		t.Fatal(err)
	}
	cache := r.store("cache", replication.RoleClientInitiated)
	if err := cache.Host(store.HostConfig{Object: obj, Semantics: applog.New(), Strat: st, Parent: "perm", Subscribe: true}); err != nil {
		t.Fatal(err)
	}

	ep, err := r.net.Endpoint("log-client")
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.Bind(core.BindConfig{
		Object: obj, Endpoint: ep, StoreAddr: "perm",
		Client: r.ns.NextClient(), Prototype: applog.New(), Timeout: 3 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)

	for _, post := range []string{"article", "followup"} {
		if _, err := p.Invoke(msg.Invocation{Method: applog.MethodAppend, Args: []byte(post)}); err != nil {
			t.Fatal(err)
		}
	}
	out, err := p.Invoke(msg.Invocation{Method: applog.MethodLen})
	if err != nil || binary.BigEndian.Uint32(out) != 2 {
		t.Fatalf("log len: %v, %v", out, err)
	}
	eventually(t, 3*time.Second, func() bool {
		out, err := cache.ReadLocal(obj, msg.Invocation{Method: applog.MethodLen})
		return err == nil && binary.BigEndian.Uint32(out) == 2
	}, "log cache converges")
	var idx [4]byte
	binary.BigEndian.PutUint32(idx[:], 0)
	out, err = cache.ReadLocal(obj, msg.Invocation{Method: applog.MethodEntry, Args: idx[:]})
	if err != nil || string(out) != "article" {
		t.Fatalf("entry 0 at cache: %q, %v", out, err)
	}
}

// TestRetuneSwitchesDisseminationAtRuntime exercises the dynamic-adaptation
// hook anticipated by §3.3: a document starts with very lazy pushes, is
// re-tuned to immediate propagation, and the next write arrives promptly.
func TestRetuneSwitchesDisseminationAtRuntime(t *testing.T) {
	r := newRig(t)
	const obj = ids.ObjectID("tunable")
	slow := strategy.Conference(time.Hour) // effectively never flushes

	perm := r.store("perm", replication.RolePermanent)
	if err := perm.Host(store.HostConfig{Object: obj, Semantics: webdoc.New(), Strat: slow}); err != nil {
		t.Fatal(err)
	}
	writer := r.bind("writer", "perm", obj)
	// Seed content BEFORE the cache subscribes, so its bootstrap snapshot
	// holds the page and later reads don't cold-miss (a cold miss would
	// fetch fresh state and mask the lazy-push behaviour).
	appendPage(t, writer, "log", "s")
	cache := r.store("cache", replication.RoleClientInitiated)
	if err := cache.Host(store.HostConfig{Object: obj, Semantics: webdoc.New(), Strat: slow, Parent: "perm", Subscribe: true}); err != nil {
		t.Fatal(err)
	}
	reader := r.bind("reader", "cache", obj)
	eventually(t, 3*time.Second, func() bool {
		got, err := getPage(t, reader, "log")
		return err == nil && got == "s"
	}, "bootstrap snapshot reaches the cache")

	appendPage(t, writer, "log", "a")
	// With an hour-long lazy interval the cache stays stale.
	time.Sleep(20 * time.Millisecond)
	if got, err := getPage(t, reader, "log"); err == nil && got == "sa" {
		t.Fatalf("update arrived despite hour-long lazy interval")
	}

	// Re-tune to immediate dissemination. Retune flushes the pending
	// buffer, so 'a' ships now; the model itself must be unchangeable.
	fast := slow
	fast.Instant = strategy.Immediate
	fast.LazyInterval = 0
	if err := perm.Retune(obj, fast); err != nil {
		t.Fatal(err)
	}
	bad := fast
	bad.Model = 0
	if err := perm.Retune(obj, bad); err == nil {
		t.Fatalf("invalid retune accepted")
	}
	eventually(t, 3*time.Second, func() bool {
		got, err := getPage(t, reader, "log")
		return err == nil && got == "sa"
	}, "pending update flushed by retune")

	appendPage(t, writer, "log", "b")
	eventually(t, 3*time.Second, func() bool {
		got, err := getPage(t, reader, "log")
		return err == nil && got == "sab"
	}, "post-retune write arrives immediately")
	if err := perm.Retune("ghost", fast); err == nil {
		t.Fatalf("retune of unhosted object accepted")
	}
}

// TestGossipAntiEntropyBetweenMirrors runs two leaderless eventual mirrors
// (no parent on the write path) that synchronise purely by anti-entropy
// gossip: each accepts writes locally and converges to the same LWW state.
func TestGossipAntiEntropyBetweenMirrors(t *testing.T) {
	r := newRig(t)
	const obj = ids.ObjectID("mirrored")
	st := strategy.MirroredSite(10 * time.Millisecond)

	mirrorA := r.store("mirror-a", replication.RoleObjectInitiated)
	if err := mirrorA.Host(store.HostConfig{Object: obj, Semantics: webdoc.New(), Strat: st}); err != nil {
		t.Fatal(err)
	}
	mirrorB := r.store("mirror-b", replication.RoleObjectInitiated)
	if err := mirrorB.Host(store.HostConfig{Object: obj, Semantics: webdoc.New(), Strat: st}); err != nil {
		t.Fatal(err)
	}
	if err := mirrorA.AddPeer(obj, "mirror-b"); err != nil {
		t.Fatal(err)
	}
	if err := mirrorB.AddPeer(obj, "mirror-a"); err != nil {
		t.Fatal(err)
	}
	if err := mirrorA.AddPeer("ghost", "mirror-b"); err == nil {
		t.Fatalf("AddPeer for unhosted object accepted")
	}

	alice := r.bind("alice", "mirror-a", obj)
	bob := r.bind("bob", "mirror-b", obj)

	// Concurrent writes to different pages at different mirrors.
	putPage(t, alice, "a-page", "from-alice")
	putPage(t, bob, "b-page", "from-bob")
	// Conflicting writes to the same page: LWW picks one winner everywhere.
	putPage(t, alice, "shared", "alice-version")
	putPage(t, bob, "shared", "bob-version")

	eventually(t, 5*time.Second, func() bool {
		a1, err1 := getPage(t, alice, "b-page")
		b1, err2 := getPage(t, bob, "a-page")
		if err1 != nil || err2 != nil {
			return false
		}
		if a1 != "from-bob" || b1 != "from-alice" {
			return false
		}
		sa, errA := getPage(t, alice, "shared")
		sb, errB := getPage(t, bob, "shared")
		return errA == nil && errB == nil && sa == sb
	}, "mirrors converge via gossip, including LWW on the conflicting page")

	// Convergence can complete off the peer's first round alone, before this
	// mirror's own gossip timer has fired, so poll rather than assert once.
	eventually(t, 3*time.Second, func() bool {
		sa, _ := mirrorA.Stats(obj)
		return sa.GossipRounds > 0
	}, "mirror A records its own gossip rounds")
}
