package store_test

import (
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/ids"
	"repro/internal/msg"
	"repro/internal/replication"
	"repro/internal/semantics/webdoc"
	"repro/internal/store"
	"repro/internal/strategy"
	"repro/internal/transport"
	"repro/internal/wal"
)

// durableStore builds a permanent store with a WAL at dir on an existing
// endpoint — restarts reuse the crashed store's endpoint, whose receive
// loop died with it. Close is registered for cleanup (a no-op after Crash).
func (r *rig) durableStore(ep transport.Endpoint, dir string, id ids.StoreID, d store.Durability) *store.Store {
	r.t.Helper()
	s := store.New(store.Config{
		ID: id, Role: replication.RolePermanent, Endpoint: ep,
		ReadTimeout: 2 * time.Second,
		DataDir:     dir, Durability: d,
	})
	r.t.Cleanup(func() { _ = s.Close() })
	return s
}

func (r *rig) endpoint(addr string) transport.Endpoint {
	r.t.Helper()
	ep, err := r.net.Endpoint(addr)
	if err != nil {
		r.t.Fatal(err)
	}
	return ep
}

// Crash a durable store mid-life and restart it from disk on the same
// endpoint: everything acknowledged must still be there, and the restarted
// replica must recognise the session's writes (no re-apply, sequence
// continues).
func TestStoreCrashRestartServesRecoveredState(t *testing.T) {
	r := newRig(t)
	const obj = ids.ObjectID("doc")
	dir := t.TempDir()
	st := strategy.Conference(50 * time.Millisecond)

	permEp := r.endpoint("perm")
	s1 := r.durableStore(permEp, dir, 7, store.Durability{Fsync: wal.SyncAlways})
	if err := s1.Host(store.HostConfig{Object: obj, Semantics: webdoc.New(), Strat: st}); err != nil {
		t.Fatal(err)
	}
	p1 := r.bind("c1", "perm", obj)
	appendPage(t, p1, "p", "one.")
	appendPage(t, p1, "p", "two.")
	appendPage(t, p1, "p", "three.")
	info, err := s1.Durability(obj)
	if err != nil {
		t.Fatal(err)
	}
	// Three stamped updates + three admissions.
	if !info.Durable || info.WALRecords != 6 || info.WALBytes <= 0 {
		t.Fatalf("durability before crash: %+v", info)
	}
	p1.Close()
	s1.Crash() // kill -9: no flush beyond the per-ack barrier, no WAL close

	s2 := r.durableStore(permEp, dir, 7, store.Durability{Fsync: wal.SyncAlways})
	if err := s2.Host(store.HostConfig{Object: obj, Semantics: webdoc.New(), Strat: st}); err != nil {
		t.Fatal(err)
	}
	stats, err := s2.Stats(obj)
	if err != nil {
		t.Fatal(err)
	}
	if stats.WALReplayed != 3 || stats.UpdatesApplied != 3 {
		t.Fatalf("replay stats: %+v", stats)
	}
	p2 := r.bind("c2", "perm", obj)
	got, err := getPage(t, p2, "p")
	if err != nil {
		t.Fatal(err)
	}
	if got != "one.two.three." {
		t.Fatalf("recovered content = %q, want %q", got, "one.two.three.")
	}
	// The restarted store keeps accepting writes where the old one stopped.
	appendPage(t, p2, "p", "four.")
	if got, _ = getPage(t, p2, "p"); got != "one.two.three.four." {
		t.Fatalf("post-recovery content = %q", got)
	}
}

// Forced compaction folds the log into the snapshot; a crash right after
// still recovers the full state (from the snapshot) plus the post-snapshot
// tail (from the log).
func TestStoreCompactionThenCrash(t *testing.T) {
	r := newRig(t)
	const obj = ids.ObjectID("doc")
	dir := t.TempDir()
	st := strategy.Conference(50 * time.Millisecond)

	permEp := r.endpoint("perm")
	s1 := r.durableStore(permEp, dir, 3, store.Durability{Fsync: wal.SyncAlways})
	if err := s1.Host(store.HostConfig{Object: obj, Semantics: webdoc.New(), Strat: st}); err != nil {
		t.Fatal(err)
	}
	p1 := r.bind("c1", "perm", obj)
	appendPage(t, p1, "p", "pre.")
	if err := s1.Compact(obj); err != nil {
		t.Fatal(err)
	}
	info, _ := s1.Durability(obj)
	if info.WALRecords != 0 || info.LastSnapshot == nil {
		t.Fatalf("durability after compaction: %+v", info)
	}
	appendPage(t, p1, "p", "post.")
	p1.Close()
	s1.Crash()

	s2 := r.durableStore(permEp, dir, 3, store.Durability{Fsync: wal.SyncAlways})
	if err := s2.Host(store.HostConfig{Object: obj, Semantics: webdoc.New(), Strat: st}); err != nil {
		t.Fatal(err)
	}
	stats, _ := s2.Stats(obj)
	if stats.WALReplayed != 1 {
		t.Fatalf("want only the post-snapshot tail replayed, got %+v", stats)
	}
	p2 := r.bind("c2", "perm", obj)
	if got, _ := getPage(t, p2, "p"); got != "pre.post." {
		t.Fatalf("recovered content = %q, want %q", got, "pre.post.")
	}
}

// While the restart gate is closed (children recorded in the WAL, none
// answering yet) new binds are told to retry; the grace timer eventually
// opens the gate even with every child unreachable.
func TestStoreBindRetriesWhileRecovering(t *testing.T) {
	r := newRig(t)
	const obj = ids.ObjectID("doc")
	dir := t.TempDir()

	// Fabricate the crashed store's WAL: one child that no longer exists.
	wlog, _, err := wal.Open(filepath.Join(dir, "store-7", "doc"))
	if err != nil {
		t.Fatal(err)
	}
	if err := wlog.AppendChild("store/ghost", false); err != nil {
		t.Fatal(err)
	}
	if err := wlog.Close(); err != nil {
		t.Fatal(err)
	}

	s := r.durableStore(r.endpoint("perm"), dir, 7, store.Durability{
		Fsync: wal.SyncAlways, RecoveryGrace: 250 * time.Millisecond,
	})
	if err := s.Host(store.HostConfig{Object: obj, Semantics: webdoc.New(),
		Strat: strategy.Conference(50 * time.Millisecond)}); err != nil {
		t.Fatal(err)
	}
	info, err := s.Durability(obj)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Recovering {
		t.Fatalf("store with a recovered child should gate: %+v", info)
	}

	// A raw bind during the gate bounces with StatusRetry.
	probe, err := r.net.Endpoint("probe")
	if err != nil {
		t.Fatal(err)
	}
	if err := probe.Send("perm", &msg.Message{
		Kind: msg.KindBindRequest, Object: obj, From: "probe", Client: 5,
	}); err != nil {
		t.Fatal(err)
	}
	select {
	case reply := <-probe.Recv():
		if reply.Kind != msg.KindBindReply || reply.Status != msg.StatusRetry ||
			!strings.Contains(reply.Err, "recovering") {
			t.Fatalf("gated bind reply: %+v", reply)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no bind reply while recovering")
	}

	// The ghost child never answers; the grace timer must open the gate.
	eventually(t, 3*time.Second, func() bool {
		info, err := s.Durability(obj)
		return err == nil && !info.Recovering
	}, "recovery grace opens the gate")
	p := r.bind("c1", "perm", obj)
	appendPage(t, p, "p", "alive")
	if got, _ := getPage(t, p, "p"); got != "alive" {
		t.Fatalf("content after gate opened = %q", got)
	}
}

// A DataDir on a non-permanent role must fail fast at Host: only the
// permanent role persists, and silently dropping durability would let a
// deployment believe its mirror data is safe.
func TestHostRejectsDataDirOnNonPermanentRole(t *testing.T) {
	r := newRig(t)
	for _, role := range []replication.Role{replication.RoleObjectInitiated, replication.RoleClientInitiated} {
		s := store.New(store.Config{
			ID: 21, Role: role, Endpoint: r.endpoint("nd-" + role.String()),
			DataDir: t.TempDir(),
		})
		err := s.Host(store.HostConfig{Object: "doc", Semantics: webdoc.New(), Strat: strategy.Conference(time.Hour)})
		_ = s.Close()
		if err == nil {
			t.Fatalf("%v role accepted a DataDir", role)
		}
		if !strings.Contains(err.Error(), "only permanent stores are durable") {
			t.Fatalf("error should explain the durability rule, got: %v", err)
		}
	}
}
