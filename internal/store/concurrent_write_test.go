package store_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/msg"
	"repro/internal/replication"
	"repro/internal/semantics/webdoc"
	"repro/internal/store"
	"repro/internal/strategy"
)

// putPageErr is putPage without the test-fataling (safe off the test
// goroutine).
func putPageErr(p *core.Proxy, page, content string) error {
	args := webdoc.EncodeWriteArgs(webdoc.WriteArgs{
		Content: []byte(content), ContentType: "text/html", ModifiedNanos: time.Now().UnixNano(),
	})
	_, err := p.Invoke(msg.Invocation{Method: webdoc.MethodPutPage, Page: page, Args: args})
	return err
}

// TestConcurrentWritersOneProxy pins ordered write departure: the proxy is
// documented safe for concurrent use, so goroutines racing Put on one handle
// must not let a higher write sequence reach the wire before a lower one —
// the store's at-most-once replay detection (and the contiguous engines'
// liveness) depend on it. Every write must be acked AND applied exactly
// once. Run under both an eventual store (where a mis-ordered unstamped
// write would be dropped as a replay) and a PRAM store (where it would
// strand the engine buffering forever).
func TestConcurrentWritersOneProxy(t *testing.T) {
	cases := []struct {
		name  string
		strat strategy.Strategy
	}{
		{"eventual", strategy.MirroredSite(time.Hour)},
		{"pram", func() strategy.Strategy {
			st := strategy.Conference(time.Hour)
			st.Writers = strategy.MultipleWriters
			return st
		}()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := newRig(t)
			obj := ids.ObjectID("conc-" + tc.name)
			role := replication.RolePermanent
			perm := r.store("perm-"+tc.name, role)
			if err := perm.Host(store.HostConfig{Object: obj, Semantics: webdoc.New(), Strat: tc.strat}); err != nil {
				t.Fatal(err)
			}
			p := r.bind("writer-"+tc.name, "perm-"+tc.name, obj)

			const n = 24
			var wg sync.WaitGroup
			errs := make([]error, n)
			for i := 0; i < n; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					errs[i] = putPageErr(p, fmt.Sprintf("pg%d", i), "x")
				}(i)
			}
			wg.Wait()
			for i, err := range errs {
				if err != nil {
					t.Fatalf("concurrent write %d failed: %v", i, err)
				}
			}
			stats, err := perm.Stats(obj)
			if err != nil {
				t.Fatal(err)
			}
			if stats.UpdatesApplied != n {
				t.Fatalf("applied %d of %d acked concurrent writes (buffered %d): %+v",
					stats.UpdatesApplied, n, stats.UpdatesBuffered, stats)
			}
			for i := 0; i < n; i++ {
				if got, err := getPage(t, p, fmt.Sprintf("pg%d", i)); err != nil || got != "x" {
					t.Fatalf("page pg%d after concurrent writes: %q, %v", i, got, err)
				}
			}
		})
	}
}
