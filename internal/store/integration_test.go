package store_test

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/msg"
	"repro/internal/naming"
	"repro/internal/replication"
	"repro/internal/semantics/webdoc"
	"repro/internal/store"
	"repro/internal/strategy"
	"repro/internal/transport/memnet"
)

// rig assembles a network, naming service, and stores for integration tests.
type rig struct {
	t   *testing.T
	net *memnet.Network
	ns  *naming.Service
}

func newRig(t *testing.T, opts ...memnet.Option) *rig {
	t.Helper()
	n := memnet.New(opts...)
	t.Cleanup(func() { _ = n.Close() })
	return &rig{t: t, net: n, ns: naming.New()}
}

func (r *rig) store(addr string, role replication.Role) *store.Store {
	r.t.Helper()
	ep, err := r.net.Endpoint(addr)
	if err != nil {
		r.t.Fatal(err)
	}
	s := store.New(store.Config{
		ID:          r.ns.NextStore(),
		Role:        role,
		Endpoint:    ep,
		ReadTimeout: 2 * time.Second,
	})
	r.t.Cleanup(func() { _ = s.Close() })
	return s
}

func (r *rig) bind(addr, storeAddr string, obj ids.ObjectID, models ...coherence.ClientModel) *core.Proxy {
	r.t.Helper()
	ep, err := r.net.Endpoint(addr)
	if err != nil {
		r.t.Fatal(err)
	}
	p, err := core.Bind(core.BindConfig{
		Object:    obj,
		Endpoint:  ep,
		StoreAddr: storeAddr,
		Client:    r.ns.NextClient(),
		Session:   models,
		Prototype: webdoc.New(),
		Timeout:   3 * time.Second,
	})
	if err != nil {
		r.t.Fatal(err)
	}
	r.t.Cleanup(p.Close)
	return p
}

func putPage(t *testing.T, p *core.Proxy, page, content string) {
	t.Helper()
	args := webdoc.EncodeWriteArgs(webdoc.WriteArgs{
		Content: []byte(content), ContentType: "text/html", ModifiedNanos: time.Now().UnixNano(),
	})
	if _, err := p.Invoke(msg.Invocation{Method: webdoc.MethodPutPage, Page: page, Args: args}); err != nil {
		t.Fatalf("PutPage(%s): %v", page, err)
	}
}

func appendPage(t *testing.T, p *core.Proxy, page, content string) {
	t.Helper()
	args := webdoc.EncodeWriteArgs(webdoc.WriteArgs{
		Content: []byte(content), ModifiedNanos: time.Now().UnixNano(),
	})
	if _, err := p.Invoke(msg.Invocation{Method: webdoc.MethodAppendPage, Page: page, Args: args}); err != nil {
		t.Fatalf("AppendPage(%s): %v", page, err)
	}
}

func getPage(t *testing.T, p *core.Proxy, page string) (string, error) {
	t.Helper()
	out, err := p.Invoke(msg.Invocation{Method: webdoc.MethodGetPage, Page: page})
	if err != nil {
		return "", err
	}
	pg, err := webdoc.DecodePage(out)
	if err != nil {
		t.Fatalf("decode page: %v", err)
	}
	return string(pg.Content), nil
}

// eventually retries until the condition holds or the deadline passes.
func eventually(t *testing.T, d time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for {
		if cond() {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("condition never held: %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestDirectBindReadWrite covers the minimal path: one permanent store, one
// client bound directly to it.
func TestDirectBindReadWrite(t *testing.T) {
	r := newRig(t)
	const obj = ids.ObjectID("doc")
	perm := r.store("perm", replication.RolePermanent)
	st := strategy.Conference(50 * time.Millisecond)
	if err := perm.Host(store.HostConfig{Object: obj, Semantics: webdoc.New(), Strat: st}); err != nil {
		t.Fatal(err)
	}
	cl := r.bind("client-1", "perm", obj)
	putPage(t, cl, "index.html", "<h1>hello</h1>")
	got, err := getPage(t, cl, "index.html")
	if err != nil {
		t.Fatal(err)
	}
	if got != "<h1>hello</h1>" {
		t.Fatalf("read back %q", got)
	}
}

func TestBindUnhostedObjectFails(t *testing.T) {
	r := newRig(t)
	perm := r.store("perm", replication.RolePermanent)
	_ = perm
	ep, err := r.net.Endpoint("client-x")
	if err != nil {
		t.Fatal(err)
	}
	_, err = core.Bind(core.BindConfig{
		Object: "ghost", Endpoint: ep, StoreAddr: "perm",
		Client: r.ns.NextClient(), Prototype: webdoc.New(), Timeout: 2 * time.Second,
	})
	if err == nil {
		t.Fatalf("bind to unhosted object succeeded")
	}
	var re *core.RemoteError
	if !errors.As(err, &re) || re.Status != msg.StatusNotFound {
		t.Fatalf("want RemoteError{not-found}, got %v", err)
	}
}

// TestConferenceScenario reproduces §4 / Figure 3 / Figure 4 / Table 2: the
// Web master M writes incrementally through its cache; updates reach user
// caches via lazy periodic partial pushes; PRAM holds at every store; M's
// Read-Your-Writes triggers a demand pull at its cache.
func TestConferenceScenario(t *testing.T) {
	r := newRig(t)
	const obj = ids.ObjectID("conf-page")
	st := strategy.Conference(30 * time.Millisecond)

	server := r.store("server", replication.RolePermanent)
	if err := server.Host(store.HostConfig{Object: obj, Semantics: webdoc.New(), Strat: st}); err != nil {
		t.Fatal(err)
	}
	cacheM := r.store("cache-m", replication.RoleClientInitiated)
	if err := cacheM.Host(store.HostConfig{
		Object: obj, Semantics: webdoc.New(), Strat: st, Parent: "server",
		Session:   []coherence.ClientModel{coherence.ReadYourWrites},
		Subscribe: true,
	}); err != nil {
		t.Fatal(err)
	}
	cacheU := r.store("cache-u", replication.RoleClientInitiated)
	if err := cacheU.Host(store.HostConfig{
		Object: obj, Semantics: webdoc.New(), Strat: st, Parent: "server", Subscribe: true,
	}); err != nil {
		t.Fatal(err)
	}

	master := r.bind("master", "cache-m", obj, coherence.ReadYourWrites)
	user := r.bind("user", "cache-u", obj)

	// The master updates the page incrementally (writes forward to the
	// server through the cache, as in Figure 4).
	appendPage(t, master, "program.html", "<li>keynote</li>")
	appendPage(t, master, "program.html", "<li>session 1</li>")

	// RYW: the master's immediate read through its cache must include both
	// its writes even though the periodic push may not have arrived yet.
	got, err := getPage(t, master, "program.html")
	if err != nil {
		t.Fatalf("master read: %v", err)
	}
	if got != "<li>keynote</li><li>session 1</li>" {
		t.Fatalf("RYW violated: master read %q", got)
	}

	// The user eventually sees both updates via the periodic push, in PRAM
	// (per-client) order — never session 1 without keynote.
	eventually(t, 3*time.Second, func() bool {
		got, err := getPage(t, user, "program.html")
		if err != nil {
			return false
		}
		if strings.Contains(got, "session 1") && !strings.Contains(got, "keynote") {
			t.Fatalf("PRAM violated at user cache: %q", got)
		}
		return got == "<li>keynote</li><li>session 1</li>"
	}, "user cache converges via lazy push")

	// The master's cache must have issued at least one demand pull (client-
	// outdate reaction = demand).
	ms, err := cacheM.Stats(obj)
	if err != nil {
		t.Fatal(err)
	}
	if ms.DemandsSent == 0 {
		t.Fatalf("expected RYW to trigger demand pulls, stats: %+v", ms)
	}
	if ms.ReqViolations == 0 {
		t.Fatalf("expected requirement violations to be detected, stats: %+v", ms)
	}
}

// TestSingleWriterEnforced covers Table 1's write set = single.
func TestSingleWriterEnforced(t *testing.T) {
	r := newRig(t)
	const obj = ids.ObjectID("doc")
	perm := r.store("perm", replication.RolePermanent)
	if err := perm.Host(store.HostConfig{
		Object: obj, Semantics: webdoc.New(), Strat: strategy.Conference(time.Hour),
	}); err != nil {
		t.Fatal(err)
	}
	owner := r.bind("owner", "perm", obj)
	intruder := r.bind("intruder", "perm", obj)
	putPage(t, owner, "p", "mine")
	args := webdoc.EncodeWriteArgs(webdoc.WriteArgs{Content: []byte("theirs")})
	_, err := intruder.Invoke(msg.Invocation{Method: webdoc.MethodPutPage, Page: "p", Args: args})
	var re *core.RemoteError
	if !errors.As(err, &re) || re.Status != msg.StatusForbidden {
		t.Fatalf("want forbidden, got %v", err)
	}
	// The owner can still write (its sequence did not gap).
	putPage(t, owner, "p", "mine-2")
	got, err := getPage(t, owner, "p")
	if err != nil || got != "mine-2" {
		t.Fatalf("owner follow-up write failed: %q %v", got, err)
	}
}

// TestWhiteboardSequential covers the groupware example: multiple writers,
// sequential model, every replica applies the same total order.
func TestWhiteboardSequential(t *testing.T) {
	r := newRig(t)
	const obj = ids.ObjectID("board")
	st := strategy.Whiteboard()

	perm := r.store("perm", replication.RolePermanent)
	if err := perm.Host(store.HostConfig{Object: obj, Semantics: webdoc.New(), Strat: st}); err != nil {
		t.Fatal(err)
	}
	cacheA := r.store("cache-a", replication.RoleClientInitiated)
	if err := cacheA.Host(store.HostConfig{Object: obj, Semantics: webdoc.New(), Strat: st, Parent: "perm", Subscribe: true}); err != nil {
		t.Fatal(err)
	}
	cacheB := r.store("cache-b", replication.RoleClientInitiated)
	if err := cacheB.Host(store.HostConfig{Object: obj, Semantics: webdoc.New(), Strat: st, Parent: "perm", Subscribe: true}); err != nil {
		t.Fatal(err)
	}

	alice := r.bind("alice", "cache-a", obj)
	bob := r.bind("bob", "cache-b", obj)

	// Interleaved strokes from both writers.
	for i := 0; i < 5; i++ {
		appendPage(t, alice, "canvas", "A")
		appendPage(t, bob, "canvas", "B")
	}

	// Both caches converge on the identical stroke order.
	var fromA, fromB string
	eventually(t, 3*time.Second, func() bool {
		a, errA := getPage(t, alice, "canvas")
		b, errB := getPage(t, bob, "canvas")
		if errA != nil || errB != nil {
			return false
		}
		fromA, fromB = a, b
		return len(a) == 10 && a == b
	}, "whiteboard replicas converge to one total order")
	if strings.Count(fromA, "A") != 5 || strings.Count(fromB, "B") != 5 {
		t.Fatalf("strokes lost: %q vs %q", fromA, fromB)
	}
}

// TestInvalidationMode covers propagation = invalidate + partial access
// transfer: caches mark pages stale and refetch on demand.
func TestInvalidationMode(t *testing.T) {
	r := newRig(t)
	const obj = ids.ObjectID("event-page")
	st := strategy.PopularEventPage()
	st.Scope = strategy.ScopeAll // let the cache run PRAM too

	perm := r.store("perm", replication.RolePermanent)
	if err := perm.Host(store.HostConfig{Object: obj, Semantics: webdoc.New(), Strat: st}); err != nil {
		t.Fatal(err)
	}
	cache := r.store("cache", replication.RoleClientInitiated)
	if err := cache.Host(store.HostConfig{Object: obj, Semantics: webdoc.New(), Strat: st, Parent: "perm", Subscribe: true}); err != nil {
		t.Fatal(err)
	}

	owner := r.bind("owner", "perm", obj)
	reader := r.bind("reader", "cache", obj)

	putPage(t, owner, "news", "v1")
	eventually(t, 3*time.Second, func() bool {
		got, err := getPage(t, reader, "news")
		return err == nil && got == "v1"
	}, "initial version reaches the cache")

	putPage(t, owner, "news", "v2")
	eventually(t, 3*time.Second, func() bool {
		got, err := getPage(t, reader, "news")
		return err == nil && got == "v2"
	}, "invalidation + refetch yields v2")

	cs, err := cache.Stats(obj)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Invalidations == 0 {
		t.Fatalf("no invalidations recorded: %+v", cs)
	}
}

// TestMonotonicReadsAcrossStores covers the §3.2.2 example: a client reads
// from store S1, then from S2; the second read must not be older.
func TestMonotonicReadsAcrossStores(t *testing.T) {
	r := newRig(t)
	const obj = ids.ObjectID("mr-doc")
	// Eventual model with very lazy pushes, so mirrors lag badly.
	st := strategy.MirroredSite(time.Hour)

	perm := r.store("perm", replication.RolePermanent)
	if err := perm.Host(store.HostConfig{Object: obj, Semantics: webdoc.New(), Strat: st}); err != nil {
		t.Fatal(err)
	}
	mirror := r.store("mirror", replication.RoleObjectInitiated)
	if err := mirror.Host(store.HostConfig{
		Object: obj, Semantics: webdoc.New(), Strat: st, Parent: "perm", Subscribe: true,
		Session: []coherence.ClientModel{coherence.MonotonicReads},
	}); err != nil {
		t.Fatal(err)
	}

	writer := r.bind("writer", "perm", obj)
	reader := r.bind("reader", "perm", obj, coherence.MonotonicReads)

	putPage(t, writer, "p", "fresh")
	// First read at the (fresh) permanent store.
	got, err := getPage(t, reader, "p")
	if err != nil || got != "fresh" {
		t.Fatalf("first read: %q %v", got, err)
	}

	// Switch to the stale mirror. MR + client-outdate=demand forces the
	// mirror to catch up before serving.
	if err := reader.Rebind("mirror"); err != nil {
		t.Fatal(err)
	}
	got, err = getPage(t, reader, "p")
	if err != nil {
		t.Fatalf("read at mirror: %v", err)
	}
	if got != "fresh" {
		t.Fatalf("monotonic reads violated: mirror served %q", got)
	}
	ms, err := mirror.Stats(obj)
	if err != nil {
		t.Fatal(err)
	}
	if ms.ReqViolations == 0 {
		t.Fatalf("mirror should have detected the MR requirement: %+v", ms)
	}
}

// TestLossyTransportRecovery covers the §4.2 end-to-end argument: over a
// lossy (UDP-like) network, PRAM with object-outdate = demand recovers lost
// updates through the coherence protocol itself.
func TestLossyTransportRecovery(t *testing.T) {
	r := newRig(t, memnet.WithSeed(13))
	const obj = ids.ObjectID("lossy-doc")
	st := strategy.Conference(10 * time.Millisecond)
	st.ObjectOutdate = strategy.Demand // reliability via coherence

	perm := r.store("perm", replication.RolePermanent)
	if err := perm.Host(store.HostConfig{Object: obj, Semantics: webdoc.New(), Strat: st}); err != nil {
		t.Fatal(err)
	}
	cache := r.store("cache", replication.RoleClientInitiated)
	if err := cache.Host(store.HostConfig{Object: obj, Semantics: webdoc.New(), Strat: st, Parent: "perm", Subscribe: true}); err != nil {
		t.Fatal(err)
	}
	// Lose 40% of server->cache pushes; keep every other link reliable.
	r.net.SetLink("perm", "cache", memnet.LinkProfile{Loss: 0.4})

	writer := r.bind("writer", "perm", obj)
	reader := r.bind("reader", "cache", obj)

	for i := 0; i < 10; i++ {
		appendPage(t, writer, "log", "x")
	}
	eventually(t, 5*time.Second, func() bool {
		got, err := getPage(t, reader, "log")
		return err == nil && got == strings.Repeat("x", 10)
	}, "cache recovers all updates despite 40% loss")
}

// TestScopeParameterWeakensLowerLayers: with store scope = permanent, a
// client cache runs the weakest (eventual) ordering even when the object
// model is PRAM.
func TestScopeParameterWeakensLowerLayers(t *testing.T) {
	r := newRig(t)
	const obj = ids.ObjectID("scoped")
	st := strategy.Conference(10 * time.Millisecond)
	st.Scope = strategy.ScopePermanent

	perm := r.store("perm", replication.RolePermanent)
	if err := perm.Host(store.HostConfig{Object: obj, Semantics: webdoc.New(), Strat: st}); err != nil {
		t.Fatal(err)
	}
	cache := r.store("cache", replication.RoleClientInitiated)
	if err := cache.Host(store.HostConfig{Object: obj, Semantics: webdoc.New(), Strat: st, Parent: "perm", Subscribe: true}); err != nil {
		t.Fatal(err)
	}
	writer := r.bind("writer", "perm", obj)
	reader := r.bind("reader", "cache", obj)
	putPage(t, writer, "p", "v1")
	eventually(t, 3*time.Second, func() bool {
		got, err := getPage(t, reader, "p")
		return err == nil && got == "v1"
	}, "out-of-scope cache still receives updates (eventually)")
}

// TestStoreAPIBasics exercises Store-level plumbing and error paths.
func TestStoreAPIBasics(t *testing.T) {
	r := newRig(t)
	const obj = ids.ObjectID("doc")
	perm := r.store("perm", replication.RolePermanent)
	if err := perm.Host(store.HostConfig{Object: obj, Semantics: webdoc.New(), Strat: strategy.Conference(time.Hour)}); err != nil {
		t.Fatal(err)
	}
	if err := perm.Host(store.HostConfig{Object: obj, Semantics: webdoc.New(), Strat: strategy.Conference(time.Hour)}); err == nil {
		t.Fatalf("double host accepted")
	}
	if _, err := perm.Stats("ghost"); err == nil {
		t.Fatalf("stats for unhosted object")
	}
	if _, err := perm.Applied("ghost"); err == nil {
		t.Fatalf("applied for unhosted object")
	}
	if _, err := perm.ReadLocal("ghost", msg.Invocation{Method: webdoc.MethodListPages}); err == nil {
		t.Fatalf("ReadLocal for unhosted object")
	}
	if perm.Role() != replication.RolePermanent || perm.Addr() != "perm" || perm.ID() == 0 {
		t.Fatalf("store identity accessors wrong")
	}
	cl := r.bind("c", "perm", obj)
	putPage(t, cl, "p", "x")
	v, err := perm.Applied(obj)
	if err != nil || v.Total() != 1 {
		t.Fatalf("Applied = %v, %v", v, err)
	}
	stats, err := perm.Stats(obj)
	if err != nil || stats.WritesAccepted != 1 {
		t.Fatalf("Stats = %+v, %v", stats, err)
	}
	out, err := perm.ReadLocal(obj, msg.Invocation{Method: webdoc.MethodGetPage, Page: "p"})
	if err != nil {
		t.Fatal(err)
	}
	pg, _ := webdoc.DecodePage(out)
	if string(pg.Content) != "x" {
		t.Fatalf("ReadLocal content %q", pg.Content)
	}
	if err := perm.Close(); err != nil {
		t.Fatal(err)
	}
	if err := perm.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
	if err := perm.Host(store.HostConfig{Object: "late", Semantics: webdoc.New(), Strat: strategy.Conference(time.Hour)}); !errors.Is(err, store.ErrClosed) {
		t.Fatalf("host after close: %v", err)
	}
}

// TestBindSemanticsCheck: a store hosting an object under a named semantics
// type rejects binds that declare a different type, accepts matching and
// unnamed binds.
func TestBindSemanticsCheck(t *testing.T) {
	r := newRig(t)
	s := r.store("store/www", replication.RolePermanent)
	if err := s.Host(store.HostConfig{
		Object: "doc", Semantics: webdoc.New(), SemName: "webdoc",
		Strat: strategy.Conference(time.Hour),
	}); err != nil {
		t.Fatal(err)
	}

	bindAs := func(epAddr, sem string) error {
		ep, err := r.net.Endpoint(epAddr)
		if err != nil {
			t.Fatal(err)
		}
		p, err := core.Bind(core.BindConfig{
			Object:    "doc",
			Endpoint:  ep,
			StoreAddr: s.Addr(),
			Client:    r.ns.NextClient(),
			Prototype: webdoc.New(),
			Semantics: sem,
			Timeout:   3 * time.Second,
		})
		if err == nil {
			p.Close()
		}
		return err
	}
	if err := bindAs("client/match", "webdoc"); err != nil {
		t.Fatalf("matching semantics rejected: %v", err)
	}
	if err := bindAs("client/unnamed", ""); err != nil {
		t.Fatalf("unnamed semantics rejected: %v", err)
	}
	err := bindAs("client/mismatch", "kvstore")
	if err == nil || !strings.Contains(err.Error(), "semantics mismatch") {
		t.Fatalf("mismatched semantics bind: %v", err)
	}
}
