// Package semantics defines the semantics-object abstraction of the Globe
// local-object composition: the part of a distributed shared Web object that
// actually holds document state and implements its methods.
//
// The paper requires that the replication and communication sub-objects
// never see semantics internals — they handle only marshalled invocations.
// The only semantic knowledge the framework needs is the read/write
// classification of each method (§3.1: "we distinguish only general read and
// write operations") and a way to transfer state, either whole (access /
// coherence transfer type "full") or per named element such as a single page
// ("partial").
package semantics

import (
	"errors"
	"fmt"

	"repro/internal/msg"
)

// MethodKind classifies a method as reading or mutating object state.
type MethodKind int

// Method kinds.
const (
	Read MethodKind = iota + 1
	Write
)

// String names the kind.
func (k MethodKind) String() string {
	switch k {
	case Read:
		return "read"
	case Write:
		return "write"
	default:
		return fmt.Sprintf("MethodKind(%d)", int(k))
	}
}

// MethodInfo describes one entry of a semantics object's method table.
type MethodInfo struct {
	ID   uint16
	Name string
	Kind MethodKind
}

// ErrUnknownMethod reports an invocation of a method not in the table.
var ErrUnknownMethod = errors.New("semantics: unknown method")

// MethodNoop is a reserved method ID (outside any semantics object's table)
// for a write that deliberately changes nothing. Client proxies issue it to
// seal a hole in their write sequence after an aborted write (see
// core.Proxy); it travels the full ordering/replication path like any write
// — filling the per-client gap at every replica — but the control object
// applies it without invoking the semantics object. The table classifies it
// as a write by the unknown-method rule, so no semantics object may claim
// the ID for a real method.
const MethodNoop uint16 = 0xFFFF

// ErrNoElement reports access to a missing element (page, key, ...).
var ErrNoElement = errors.New("semantics: no such element")

// Object is a semantics sub-object. Implementations must be safe for
// concurrent use: the control object may invoke reads concurrently with
// replicated writes.
type Object interface {
	// Methods returns the object's method table.
	Methods() []MethodInfo
	// Invoke executes a marshalled invocation and returns the marshalled
	// result.
	Invoke(inv msg.Invocation) ([]byte, error)

	// Snapshot returns the full marshalled state (transfer type "full").
	Snapshot() ([]byte, error)
	// Restore replaces the state from a Snapshot.
	Restore(data []byte) error

	// Elements lists the names of independently transferable state parts
	// (the pages of a Web document; transfer type "partial").
	Elements() []string
	// SnapshotElement marshals one element.
	SnapshotElement(name string) ([]byte, error)
	// RestoreElement replaces one element from SnapshotElement data.
	RestoreElement(name string, data []byte) error
}

// Factory creates a fresh, empty semantics object; stores use it to install
// new replicas of a distributed object.
type Factory func() Object

// Table is a precomputed method-table index used by control and replication
// objects to classify invocations without touching semantics internals.
type Table struct {
	byID map[uint16]MethodInfo
}

// NewTable indexes the method table of o.
func NewTable(o Object) *Table {
	ms := o.Methods()
	t := &Table{byID: make(map[uint16]MethodInfo, len(ms))}
	for _, m := range ms {
		t.byID[m.ID] = m
	}
	return t
}

// IsWrite reports whether method is a state-mutating method. Unknown
// methods are treated as writes (the conservative choice: they will be
// ordered and replicated rather than served from a possibly stale replica).
func (t *Table) IsWrite(method uint16) bool {
	m, ok := t.byID[method]
	if !ok {
		return true
	}
	return m.Kind == Write
}

// Lookup returns the method info and whether it exists.
func (t *Table) Lookup(method uint16) (MethodInfo, bool) {
	m, ok := t.byID[method]
	return m, ok
}
