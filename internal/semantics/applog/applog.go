// Package applog implements an append-only log semantics object. It models
// the paper's Web-forum / newsgroup example (§3.2.1): "a participant's
// reaction makes sense only if the audience has received the message that
// triggered the reaction" — the workload the causal coherence model serves.
//
// Entries are opaque payloads appended in order; reads return entries by
// index or the whole suffix after an index.
package applog

import (
	"encoding/binary"
	"fmt"
	"sync"

	"repro/internal/msg"
	"repro/internal/semantics"
)

// Method identifiers of the log interface.
const (
	MethodLen uint16 = iota + 1
	MethodEntry
	MethodSuffix
	MethodAppend
)

var methodTable = []semantics.MethodInfo{
	{ID: MethodLen, Name: "Len", Kind: semantics.Read},
	{ID: MethodEntry, Name: "Entry", Kind: semantics.Read},
	{ID: MethodSuffix, Name: "Suffix", Kind: semantics.Read},
	{ID: MethodAppend, Name: "Append", Kind: semantics.Write},
}

// logElement is the single partial-transfer element name: the log transfers
// as a unit (its entries are causally interdependent).
const logElement = "log"

// Log is a thread-safe append-only log semantics object. The zero value is
// an empty log ready for use.
type Log struct {
	mu      sync.RWMutex
	entries [][]byte
}

var _ semantics.Object = (*Log)(nil)

// New returns an empty log.
func New() *Log { return &Log{} }

// Factory returns a semantics.Factory creating empty logs.
func Factory() semantics.Factory {
	return func() semantics.Object { return New() }
}

// Methods implements semantics.Object.
func (l *Log) Methods() []semantics.MethodInfo { return methodTable }

// Invoke implements semantics.Object. Entry/Suffix take a big-endian u32
// index in Args; Append takes the payload in Args.
func (l *Log) Invoke(inv msg.Invocation) ([]byte, error) {
	switch inv.Method {
	case MethodLen:
		var buf [4]byte
		binary.BigEndian.PutUint32(buf[:], uint32(l.Len()))
		return buf[:], nil
	case MethodEntry:
		if len(inv.Args) < 4 {
			return nil, fmt.Errorf("applog: Entry needs a u32 index")
		}
		i := int(binary.BigEndian.Uint32(inv.Args))
		e, ok := l.Entry(i)
		if !ok {
			return nil, fmt.Errorf("%w: entry %d", semantics.ErrNoElement, i)
		}
		return e, nil
	case MethodSuffix:
		if len(inv.Args) < 4 {
			return nil, fmt.Errorf("applog: Suffix needs a u32 index")
		}
		i := int(binary.BigEndian.Uint32(inv.Args))
		return encodeEntries(l.Suffix(i)), nil
	case MethodAppend:
		l.Append(inv.Args)
		return nil, nil
	default:
		return nil, fmt.Errorf("%w: %d", semantics.ErrUnknownMethod, inv.Method)
	}
}

// Append adds a copy of payload to the log.
func (l *Log) Append(payload []byte) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.entries = append(l.entries, append([]byte(nil), payload...))
}

// Entry returns a copy of the i-th entry.
func (l *Log) Entry(i int) ([]byte, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if i < 0 || i >= len(l.entries) {
		return nil, false
	}
	return append([]byte(nil), l.entries[i]...), true
}

// Suffix returns copies of all entries from index i on.
func (l *Log) Suffix(i int) [][]byte {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if i < 0 {
		i = 0
	}
	if i >= len(l.entries) {
		return nil
	}
	out := make([][]byte, 0, len(l.entries)-i)
	for _, e := range l.entries[i:] {
		out = append(out, append([]byte(nil), e...))
	}
	return out
}

// Len returns the number of entries.
func (l *Log) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.entries)
}

// Elements implements semantics.Object.
func (l *Log) Elements() []string { return []string{logElement} }

// SnapshotElement implements semantics.Object.
func (l *Log) SnapshotElement(name string) ([]byte, error) {
	if name != logElement {
		return nil, fmt.Errorf("%w: %q", semantics.ErrNoElement, name)
	}
	return l.Snapshot()
}

// RestoreElement implements semantics.Object.
func (l *Log) RestoreElement(name string, data []byte) error {
	if name != logElement {
		return fmt.Errorf("%w: %q", semantics.ErrNoElement, name)
	}
	return l.Restore(data)
}

// Snapshot implements semantics.Object.
func (l *Log) Snapshot() ([]byte, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return encodeEntries(l.entries), nil
}

// Restore implements semantics.Object.
func (l *Log) Restore(data []byte) error {
	entries, err := DecodeEntries(data)
	if err != nil {
		return err
	}
	l.mu.Lock()
	l.entries = entries
	l.mu.Unlock()
	return nil
}

func encodeEntries(entries [][]byte) []byte {
	var buf []byte
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(entries)))
	for _, e := range entries {
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(e)))
		buf = append(buf, e...)
	}
	return buf
}

// EncodeIndex marshals the u32 index argument of MethodEntry / MethodSuffix.
func EncodeIndex(i int) []byte {
	var buf [4]byte
	binary.BigEndian.PutUint32(buf[:], uint32(i))
	return buf[:]
}

// DecodeLen unmarshals a MethodLen reply.
func DecodeLen(b []byte) (int, error) {
	if len(b) < 4 {
		return 0, fmt.Errorf("applog: short length reply")
	}
	return int(binary.BigEndian.Uint32(b)), nil
}

// DecodeEntries unmarshals the encoding produced by Snapshot / Suffix.
func DecodeEntries(b []byte) ([][]byte, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("applog: short entries encoding")
	}
	n := binary.BigEndian.Uint32(b)
	b = b[4:]
	out := make([][]byte, 0, n)
	for i := uint32(0); i < n; i++ {
		if len(b) < 4 {
			return nil, fmt.Errorf("applog: short entry header")
		}
		m := binary.BigEndian.Uint32(b)
		b = b[4:]
		if uint32(len(b)) < m {
			return nil, fmt.Errorf("applog: short entry body")
		}
		e := make([]byte, m)
		copy(e, b)
		out = append(out, e)
		b = b[m:]
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("applog: %d trailing bytes", len(b))
	}
	return out, nil
}
