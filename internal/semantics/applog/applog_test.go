package applog

import (
	"bytes"
	"encoding/binary"
	"errors"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/msg"
	"repro/internal/semantics"
)

func TestAppendEntrySuffix(t *testing.T) {
	l := New()
	l.Append([]byte("post-1"))
	l.Append([]byte("post-2"))
	l.Append([]byte("post-3"))
	if l.Len() != 3 {
		t.Fatalf("Len = %d", l.Len())
	}
	e, ok := l.Entry(1)
	if !ok || string(e) != "post-2" {
		t.Fatalf("Entry(1) = %q, %v", e, ok)
	}
	if _, ok := l.Entry(3); ok {
		t.Fatalf("out-of-range entry returned")
	}
	if _, ok := l.Entry(-1); ok {
		t.Fatalf("negative index returned")
	}
	suf := l.Suffix(1)
	if len(suf) != 2 || string(suf[0]) != "post-2" || string(suf[1]) != "post-3" {
		t.Fatalf("Suffix(1) = %v", suf)
	}
	if got := l.Suffix(99); got != nil {
		t.Fatalf("Suffix past end = %v", got)
	}
	if got := l.Suffix(-5); len(got) != 3 {
		t.Fatalf("negative suffix should clamp to full log")
	}
}

func TestEntryCopies(t *testing.T) {
	l := New()
	payload := []byte("abc")
	l.Append(payload)
	payload[0] = 'z'
	e, _ := l.Entry(0)
	if string(e) != "abc" {
		t.Fatalf("Append did not copy")
	}
	e[1] = 'z'
	e2, _ := l.Entry(0)
	if string(e2) != "abc" {
		t.Fatalf("Entry did not copy")
	}
}

func TestInvokeDispatch(t *testing.T) {
	l := New()
	if _, err := l.Invoke(msg.Invocation{Method: MethodAppend, Args: []byte("msg-a")}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Invoke(msg.Invocation{Method: MethodAppend, Args: []byte("msg-b")}); err != nil {
		t.Fatal(err)
	}
	out, err := l.Invoke(msg.Invocation{Method: MethodLen})
	if err != nil {
		t.Fatal(err)
	}
	if binary.BigEndian.Uint32(out) != 2 {
		t.Fatalf("Len via Invoke = %d", binary.BigEndian.Uint32(out))
	}
	var idx [4]byte
	binary.BigEndian.PutUint32(idx[:], 1)
	out, err = l.Invoke(msg.Invocation{Method: MethodEntry, Args: idx[:]})
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "msg-b" {
		t.Fatalf("Entry via Invoke = %q", out)
	}
	binary.BigEndian.PutUint32(idx[:], 0)
	out, err = l.Invoke(msg.Invocation{Method: MethodSuffix, Args: idx[:]})
	if err != nil {
		t.Fatal(err)
	}
	entries, err := DecodeEntries(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("Suffix via Invoke = %v", entries)
	}
	binary.BigEndian.PutUint32(idx[:], 9)
	if _, err := l.Invoke(msg.Invocation{Method: MethodEntry, Args: idx[:]}); !errors.Is(err, semantics.ErrNoElement) {
		t.Fatalf("want ErrNoElement, got %v", err)
	}
	if _, err := l.Invoke(msg.Invocation{Method: MethodEntry, Args: []byte{1}}); err == nil {
		t.Fatalf("short index accepted")
	}
	if _, err := l.Invoke(msg.Invocation{Method: MethodSuffix, Args: []byte{1}}); err == nil {
		t.Fatalf("short suffix index accepted")
	}
	if _, err := l.Invoke(msg.Invocation{Method: 77}); !errors.Is(err, semantics.ErrUnknownMethod) {
		t.Fatalf("want ErrUnknownMethod, got %v", err)
	}
}

func TestSnapshotRestore(t *testing.T) {
	l := New()
	l.Append([]byte("a"))
	l.Append(nil)
	l.Append([]byte("ccc"))
	snap, err := l.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	l2 := New()
	if err := l2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if l2.Len() != 3 {
		t.Fatalf("restored Len = %d", l2.Len())
	}
	e, _ := l2.Entry(2)
	if string(e) != "ccc" {
		t.Fatalf("restored entry = %q", e)
	}
}

func TestElementsInterface(t *testing.T) {
	l := New()
	if got := l.Elements(); !reflect.DeepEqual(got, []string{"log"}) {
		t.Fatalf("Elements = %v", got)
	}
	l.Append([]byte("x"))
	e, err := l.SnapshotElement("log")
	if err != nil {
		t.Fatal(err)
	}
	l2 := New()
	if err := l2.RestoreElement("log", e); err != nil {
		t.Fatal(err)
	}
	if l2.Len() != 1 {
		t.Fatalf("element restore failed")
	}
	if _, err := l.SnapshotElement("bogus"); !errors.Is(err, semantics.ErrNoElement) {
		t.Fatalf("want ErrNoElement, got %v", err)
	}
	if err := l.RestoreElement("bogus", nil); !errors.Is(err, semantics.ErrNoElement) {
		t.Fatalf("want ErrNoElement, got %v", err)
	}
}

// Property: entries codec round-trips arbitrary logs.
func TestEntriesCodecRoundTrip(t *testing.T) {
	f := func(entries [][]byte) bool {
		enc := encodeEntries(entries)
		got, err := DecodeEntries(enc)
		if err != nil {
			return false
		}
		if len(entries) != len(got) {
			return false
		}
		for i := range entries {
			if !bytes.Equal(entries[i], got[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeEntriesRejectsCorrupt(t *testing.T) {
	if _, err := DecodeEntries([]byte{1}); err == nil {
		t.Fatalf("short header accepted")
	}
	good := encodeEntries([][]byte{[]byte("x")})
	if _, err := DecodeEntries(append(good, 7)); err == nil {
		t.Fatalf("trailing bytes accepted")
	}
	if _, err := DecodeEntries(good[:5]); err == nil {
		t.Fatalf("truncated body accepted")
	}
}
