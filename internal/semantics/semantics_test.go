package semantics

import (
	"testing"

	"repro/internal/msg"
)

// tableObject is a minimal semantics object for testing the Table index.
type tableObject struct{}

func (tableObject) Methods() []MethodInfo {
	return []MethodInfo{
		{ID: 1, Name: "Read", Kind: Read},
		{ID: 2, Name: "Write", Kind: Write},
	}
}
func (tableObject) Invoke(msg.Invocation) ([]byte, error)  { return nil, nil }
func (tableObject) Snapshot() ([]byte, error)              { return nil, nil }
func (tableObject) Restore([]byte) error                   { return nil }
func (tableObject) Elements() []string                     { return nil }
func (tableObject) SnapshotElement(string) ([]byte, error) { return nil, ErrNoElement }
func (tableObject) RestoreElement(string, []byte) error    { return ErrNoElement }

func TestTableClassification(t *testing.T) {
	tab := NewTable(tableObject{})
	if tab.IsWrite(1) {
		t.Fatalf("read method classified as write")
	}
	if !tab.IsWrite(2) {
		t.Fatalf("write method classified as read")
	}
	if !tab.IsWrite(99) {
		t.Fatalf("unknown methods must be conservatively treated as writes")
	}
	if m, ok := tab.Lookup(1); !ok || m.Name != "Read" {
		t.Fatalf("Lookup(1) = %+v, %v", m, ok)
	}
	if _, ok := tab.Lookup(99); ok {
		t.Fatalf("Lookup of unknown method succeeded")
	}
}

func TestMethodKindString(t *testing.T) {
	if Read.String() != "read" || Write.String() != "write" {
		t.Fatalf("kind names wrong")
	}
	if MethodKind(9).String() != "MethodKind(9)" {
		t.Fatalf("unknown kind string wrong")
	}
}
