// Package webdoc implements the Web-document semantics object: "a Web
// document consists of a collection of HTML pages, together with files for
// images, applets, etc., which jointly comprise the state of the distributed
// shared object" (§2).
//
// The method table offers page retrieval and listing (reads), replacement,
// incremental append, and deletion (writes), and a Stat read used by the
// If-Modified-Since baseline. Every page carries a version counter and a
// last-modified timestamp, which the metrics layer uses to measure
// staleness. Pages are the document's elements for partial state transfer.
package webdoc

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"repro/internal/msg"
	"repro/internal/semantics"
)

// Method identifiers of the Web-document interface.
const (
	MethodGetPage uint16 = iota + 1
	MethodListPages
	MethodStatPage
	MethodPutPage
	MethodAppendPage
	MethodDeletePage
)

// methodTable is shared by all documents.
var methodTable = []semantics.MethodInfo{
	{ID: MethodGetPage, Name: "GetPage", Kind: semantics.Read},
	{ID: MethodListPages, Name: "ListPages", Kind: semantics.Read},
	{ID: MethodStatPage, Name: "StatPage", Kind: semantics.Read},
	{ID: MethodPutPage, Name: "PutPage", Kind: semantics.Write},
	{ID: MethodAppendPage, Name: "AppendPage", Kind: semantics.Write},
	{ID: MethodDeletePage, Name: "DeletePage", Kind: semantics.Write},
}

// Page is one element of a Web document.
type Page struct {
	Content     []byte
	ContentType string
	// Version counts writes applied to this page at this replica.
	Version uint64
	// ModifiedNanos is the origin wall-clock time (UnixNano) of the write
	// that produced this version; used by If-Modified-Since and staleness
	// accounting.
	ModifiedNanos int64
}

// Document is a thread-safe Web-document semantics object. The zero value
// is an empty document ready for use.
type Document struct {
	mu    sync.RWMutex
	pages map[string]*Page
}

var _ semantics.Object = (*Document)(nil)

// New returns an empty document.
func New() *Document { return &Document{} }

// Factory returns a semantics.Factory creating empty documents.
func Factory() semantics.Factory {
	return func() semantics.Object { return New() }
}

// Methods implements semantics.Object.
func (d *Document) Methods() []semantics.MethodInfo { return methodTable }

// Invoke implements semantics.Object by dispatching on the method ID.
// Write arguments are the encoding produced by EncodeWriteArgs.
func (d *Document) Invoke(inv msg.Invocation) ([]byte, error) {
	switch inv.Method {
	case MethodGetPage:
		p, err := d.Get(inv.Page)
		if err != nil {
			return nil, err
		}
		return EncodePage(p), nil
	case MethodListPages:
		return encodeStrings(d.Pages()), nil
	case MethodStatPage:
		p, err := d.Get(inv.Page)
		if err != nil {
			return nil, err
		}
		stat := &Page{ContentType: p.ContentType, Version: p.Version, ModifiedNanos: p.ModifiedNanos}
		return EncodePage(stat), nil
	case MethodPutPage:
		args, err := DecodeWriteArgs(inv.Args)
		if err != nil {
			return nil, err
		}
		d.Put(inv.Page, args.Content, args.ContentType, args.ModifiedNanos)
		return nil, nil
	case MethodAppendPage:
		args, err := DecodeWriteArgs(inv.Args)
		if err != nil {
			return nil, err
		}
		d.Append(inv.Page, args.Content, args.ModifiedNanos)
		return nil, nil
	case MethodDeletePage:
		d.Delete(inv.Page)
		return nil, nil
	default:
		return nil, fmt.Errorf("%w: %d", semantics.ErrUnknownMethod, inv.Method)
	}
}

// Get returns a copy of the named page.
func (d *Document) Get(name string) (*Page, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	p, ok := d.pages[name]
	if !ok {
		return nil, fmt.Errorf("%w: page %q", semantics.ErrNoElement, name)
	}
	cp := *p
	cp.Content = append([]byte(nil), p.Content...)
	return &cp, nil
}

// Pages returns the sorted page names.
func (d *Document) Pages() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	names := make([]string, 0, len(d.pages))
	for n := range d.pages {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Put replaces (or creates) a page.
func (d *Document) Put(name string, content []byte, contentType string, modifiedNanos int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.pages == nil {
		d.pages = make(map[string]*Page)
	}
	p, ok := d.pages[name]
	if !ok {
		p = &Page{}
		d.pages[name] = p
	}
	p.Content = append([]byte(nil), content...)
	if contentType != "" {
		p.ContentType = contentType
	} else if p.ContentType == "" {
		p.ContentType = "text/html"
	}
	p.Version++
	p.ModifiedNanos = modifiedNanos
}

// Append adds content to the end of a page, creating it if absent. This is
// the incremental-update operation of the paper's conference-page example.
func (d *Document) Append(name string, content []byte, modifiedNanos int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.pages == nil {
		d.pages = make(map[string]*Page)
	}
	p, ok := d.pages[name]
	if !ok {
		p = &Page{ContentType: "text/html"}
		d.pages[name] = p
	}
	p.Content = append(p.Content, content...)
	p.Version++
	p.ModifiedNanos = modifiedNanos
}

// Delete removes a page (idempotent).
func (d *Document) Delete(name string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.pages, name)
}

// Len returns the number of pages.
func (d *Document) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.pages)
}

// Elements implements semantics.Object: pages are the transfer units.
func (d *Document) Elements() []string { return d.Pages() }

// SnapshotElement implements semantics.Object.
func (d *Document) SnapshotElement(name string) ([]byte, error) {
	p, err := d.Get(name)
	if err != nil {
		return nil, err
	}
	return EncodePage(p), nil
}

// RestoreElement implements semantics.Object. Restoring an element replaces
// the page wholesale, including its version counter, so replicas converge
// on identical page metadata.
func (d *Document) RestoreElement(name string, data []byte) error {
	p, err := DecodePage(data)
	if err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.pages == nil {
		d.pages = make(map[string]*Page)
	}
	d.pages[name] = p
	return nil
}

// Snapshot implements semantics.Object (full state transfer).
func (d *Document) Snapshot() ([]byte, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	names := make([]string, 0, len(d.pages))
	for n := range d.pages {
		names = append(names, n)
	}
	sort.Strings(names)
	var buf []byte
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(names)))
	for _, n := range names {
		buf = appendString(buf, n)
		buf = appendBytes(buf, EncodePage(d.pages[n]))
	}
	return buf, nil
}

// Restore implements semantics.Object.
func (d *Document) Restore(data []byte) error {
	if len(data) < 4 {
		return fmt.Errorf("webdoc: short snapshot")
	}
	n := binary.BigEndian.Uint32(data)
	data = data[4:]
	pages := make(map[string]*Page, n)
	for i := uint32(0); i < n; i++ {
		var name string
		var err error
		name, data, err = takeString(data)
		if err != nil {
			return err
		}
		var pb []byte
		pb, data, err = takeBytes(data)
		if err != nil {
			return err
		}
		p, err := DecodePage(pb)
		if err != nil {
			return err
		}
		pages[name] = p
	}
	if len(data) != 0 {
		return fmt.Errorf("webdoc: %d trailing snapshot bytes", len(data))
	}
	d.mu.Lock()
	d.pages = pages
	d.mu.Unlock()
	return nil
}
