package webdoc

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/msg"
	"repro/internal/semantics"
)

func TestPutGetRoundTrip(t *testing.T) {
	d := New()
	d.Put("index.html", []byte("<h1>hi</h1>"), "text/html", 100)
	p, err := d.Get("index.html")
	if err != nil {
		t.Fatal(err)
	}
	if string(p.Content) != "<h1>hi</h1>" || p.ContentType != "text/html" {
		t.Fatalf("got %+v", p)
	}
	if p.Version != 1 || p.ModifiedNanos != 100 {
		t.Fatalf("version/modified wrong: %+v", p)
	}
}

func TestPutBumpsVersion(t *testing.T) {
	d := New()
	d.Put("p", []byte("v1"), "", 1)
	d.Put("p", []byte("v2"), "", 2)
	p, _ := d.Get("p")
	if p.Version != 2 || string(p.Content) != "v2" {
		t.Fatalf("got %+v", p)
	}
	if p.ContentType != "text/html" {
		t.Fatalf("default content type not applied: %q", p.ContentType)
	}
}

func TestAppendIsIncremental(t *testing.T) {
	d := New()
	d.Append("news", []byte("a"), 1)
	d.Append("news", []byte("b"), 2)
	p, _ := d.Get("news")
	if string(p.Content) != "ab" || p.Version != 2 {
		t.Fatalf("got %+v", p)
	}
}

func TestGetReturnsCopy(t *testing.T) {
	d := New()
	d.Put("p", []byte("abc"), "", 1)
	p, _ := d.Get("p")
	p.Content[0] = 'z'
	p2, _ := d.Get("p")
	if string(p2.Content) != "abc" {
		t.Fatalf("Get aliases internal state")
	}
}

func TestDeleteAndMissing(t *testing.T) {
	d := New()
	d.Put("p", []byte("x"), "", 1)
	d.Delete("p")
	d.Delete("p") // idempotent
	if _, err := d.Get("p"); !errors.Is(err, semantics.ErrNoElement) {
		t.Fatalf("want ErrNoElement, got %v", err)
	}
	if d.Len() != 0 {
		t.Fatalf("Len = %d", d.Len())
	}
}

func TestPagesSorted(t *testing.T) {
	d := New()
	d.Put("b", nil, "", 1)
	d.Put("a", nil, "", 1)
	d.Put("c", nil, "", 1)
	if got := d.Pages(); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Fatalf("Pages = %v", got)
	}
}

func TestInvokeDispatch(t *testing.T) {
	d := New()
	args := EncodeWriteArgs(WriteArgs{Content: []byte("body"), ContentType: "text/plain", ModifiedNanos: 7})
	if _, err := d.Invoke(msg.Invocation{Method: MethodPutPage, Page: "p", Args: args}); err != nil {
		t.Fatal(err)
	}
	out, err := d.Invoke(msg.Invocation{Method: MethodGetPage, Page: "p"})
	if err != nil {
		t.Fatal(err)
	}
	p, err := DecodePage(out)
	if err != nil {
		t.Fatal(err)
	}
	if string(p.Content) != "body" || p.ContentType != "text/plain" || p.ModifiedNanos != 7 {
		t.Fatalf("got %+v", p)
	}

	out, err = d.Invoke(msg.Invocation{Method: MethodStatPage, Page: "p"})
	if err != nil {
		t.Fatal(err)
	}
	stat, err := DecodePage(out)
	if err != nil {
		t.Fatal(err)
	}
	if stat.Content != nil || stat.Version != 1 || stat.ModifiedNanos != 7 {
		t.Fatalf("stat = %+v", stat)
	}

	out, err = d.Invoke(msg.Invocation{Method: MethodListPages})
	if err != nil {
		t.Fatal(err)
	}
	names, err := DecodeStrings(out)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(names, []string{"p"}) {
		t.Fatalf("names = %v", names)
	}

	if _, err := d.Invoke(msg.Invocation{Method: MethodAppendPage, Page: "p",
		Args: EncodeWriteArgs(WriteArgs{Content: []byte("+"), ModifiedNanos: 8})}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Invoke(msg.Invocation{Method: MethodDeletePage, Page: "p"}); err != nil {
		t.Fatal(err)
	}
	if d.Len() != 0 {
		t.Fatalf("delete via Invoke failed")
	}
	if _, err := d.Invoke(msg.Invocation{Method: 999}); !errors.Is(err, semantics.ErrUnknownMethod) {
		t.Fatalf("want ErrUnknownMethod, got %v", err)
	}
}

func TestSnapshotRestore(t *testing.T) {
	d := New()
	d.Put("a", []byte("alpha"), "text/html", 1)
	d.Append("a", []byte("!"), 2)
	d.Put("b", []byte{0, 1, 2}, "image/png", 3)
	snap, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	d2 := New()
	if err := d2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	snap2, _ := d2.Snapshot()
	if !bytes.Equal(snap, snap2) {
		t.Fatalf("restored snapshot differs")
	}
	p, _ := d2.Get("a")
	if string(p.Content) != "alpha!" || p.Version != 2 {
		t.Fatalf("restored page wrong: %+v", p)
	}
}

func TestPartialElementTransfer(t *testing.T) {
	d := New()
	d.Put("a", []byte("A"), "", 1)
	d.Put("b", []byte("B"), "", 2)
	if got := d.Elements(); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("Elements = %v", got)
	}
	eb, err := d.SnapshotElement("b")
	if err != nil {
		t.Fatal(err)
	}
	d2 := New()
	if err := d2.RestoreElement("b", eb); err != nil {
		t.Fatal(err)
	}
	p, err := d2.Get("b")
	if err != nil {
		t.Fatal(err)
	}
	if string(p.Content) != "B" || p.Version != 1 || p.ModifiedNanos != 2 {
		t.Fatalf("partial restore wrong: %+v", p)
	}
	if _, err := d.SnapshotElement("zzz"); !errors.Is(err, semantics.ErrNoElement) {
		t.Fatalf("want ErrNoElement, got %v", err)
	}
}

func TestMethodTableClassification(t *testing.T) {
	tab := semantics.NewTable(New())
	reads := []uint16{MethodGetPage, MethodListPages, MethodStatPage}
	writes := []uint16{MethodPutPage, MethodAppendPage, MethodDeletePage}
	for _, m := range reads {
		if tab.IsWrite(m) {
			t.Fatalf("method %d misclassified as write", m)
		}
	}
	for _, m := range writes {
		if !tab.IsWrite(m) {
			t.Fatalf("method %d misclassified as read", m)
		}
	}
	if !tab.IsWrite(999) {
		t.Fatalf("unknown methods must be conservatively writes")
	}
	if _, ok := tab.Lookup(MethodGetPage); !ok {
		t.Fatalf("Lookup failed for known method")
	}
}

// Property: page encode/decode round-trips.
func TestPageCodecRoundTrip(t *testing.T) {
	f := func(content []byte, ctype string, version uint64, modified int64) bool {
		p := &Page{Content: content, ContentType: ctype, Version: version, ModifiedNanos: modified}
		got, err := DecodePage(EncodePage(p))
		if err != nil {
			return false
		}
		if len(p.Content) == 0 {
			p.Content = nil
		}
		return reflect.DeepEqual(p, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: write-args encode/decode round-trips.
func TestWriteArgsCodecRoundTrip(t *testing.T) {
	f := func(content []byte, ctype string, modified int64) bool {
		a := WriteArgs{Content: content, ContentType: ctype, ModifiedNanos: modified}
		got, err := DecodeWriteArgs(EncodeWriteArgs(a))
		if err != nil {
			return false
		}
		if len(a.Content) == 0 {
			a.Content = nil
		}
		return reflect.DeepEqual(a, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: snapshot/restore preserves document state for arbitrary page
// sets.
func TestSnapshotRestoreProperty(t *testing.T) {
	f := func(pages map[string][]byte) bool {
		d := New()
		i := int64(1)
		for name, content := range pages {
			d.Put(name, content, "text/html", i)
			i++
		}
		snap, err := d.Snapshot()
		if err != nil {
			return false
		}
		d2 := New()
		if err := d2.Restore(snap); err != nil {
			return false
		}
		snap2, err := d2.Snapshot()
		if err != nil {
			return false
		}
		return bytes.Equal(snap, snap2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRestoreRejectsCorrupt(t *testing.T) {
	d := New()
	if err := d.Restore([]byte{1, 2}); err == nil {
		t.Fatalf("short snapshot accepted")
	}
	good, _ := func() ([]byte, error) { d.Put("a", []byte("x"), "", 1); return d.Snapshot() }()
	if err := New().Restore(append(good, 0xFF)); err == nil {
		t.Fatalf("trailing bytes accepted")
	}
	if _, err := DecodePage([]byte{0}); err == nil {
		t.Fatalf("short page accepted")
	}
	if _, err := DecodeWriteArgs([]byte{0}); err == nil {
		t.Fatalf("short write args accepted")
	}
}
