package webdoc

import (
	"encoding/binary"
	"fmt"
)

// WriteArgs is the argument record of PutPage/AppendPage invocations, kept
// as an explicit type so that clients and the semantics object agree on one
// encoding without the replication layer ever interpreting it.
type WriteArgs struct {
	Content       []byte
	ContentType   string
	ModifiedNanos int64
}

// EncodeWriteArgs marshals write arguments.
func EncodeWriteArgs(a WriteArgs) []byte {
	var buf []byte
	buf = appendString(buf, a.ContentType)
	buf = binary.BigEndian.AppendUint64(buf, uint64(a.ModifiedNanos))
	buf = appendBytes(buf, a.Content)
	return buf
}

// DecodeWriteArgs unmarshals write arguments.
func DecodeWriteArgs(b []byte) (WriteArgs, error) {
	var a WriteArgs
	var err error
	a.ContentType, b, err = takeString(b)
	if err != nil {
		return a, err
	}
	if len(b) < 8 {
		return a, fmt.Errorf("webdoc: short write args")
	}
	a.ModifiedNanos = int64(binary.BigEndian.Uint64(b))
	b = b[8:]
	a.Content, b, err = takeBytes(b)
	if err != nil {
		return a, err
	}
	if len(b) != 0 {
		return a, fmt.Errorf("webdoc: %d trailing write-arg bytes", len(b))
	}
	return a, nil
}

// EncodePage marshals a page (content, type, version, modified time).
func EncodePage(p *Page) []byte {
	var buf []byte
	buf = appendString(buf, p.ContentType)
	buf = binary.BigEndian.AppendUint64(buf, p.Version)
	buf = binary.BigEndian.AppendUint64(buf, uint64(p.ModifiedNanos))
	buf = appendBytes(buf, p.Content)
	return buf
}

// DecodePage unmarshals a page.
func DecodePage(b []byte) (*Page, error) {
	p := &Page{}
	var err error
	p.ContentType, b, err = takeString(b)
	if err != nil {
		return nil, err
	}
	if len(b) < 16 {
		return nil, fmt.Errorf("webdoc: short page encoding")
	}
	p.Version = binary.BigEndian.Uint64(b)
	p.ModifiedNanos = int64(binary.BigEndian.Uint64(b[8:]))
	b = b[16:]
	p.Content, b, err = takeBytes(b)
	if err != nil {
		return nil, err
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("webdoc: %d trailing page bytes", len(b))
	}
	return p, nil
}

func appendString(buf []byte, s string) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(s)))
	return append(buf, s...)
}

func appendBytes(buf, b []byte) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(b)))
	return append(buf, b...)
}

func takeString(b []byte) (string, []byte, error) {
	if len(b) < 4 {
		return "", nil, fmt.Errorf("webdoc: short string")
	}
	n := binary.BigEndian.Uint32(b)
	b = b[4:]
	if uint32(len(b)) < n {
		return "", nil, fmt.Errorf("webdoc: short string body")
	}
	return string(b[:n]), b[n:], nil
}

func takeBytes(b []byte) ([]byte, []byte, error) {
	if len(b) < 4 {
		return nil, nil, fmt.Errorf("webdoc: short bytes")
	}
	n := binary.BigEndian.Uint32(b)
	b = b[4:]
	if uint32(len(b)) < n {
		return nil, nil, fmt.Errorf("webdoc: short bytes body")
	}
	if n == 0 {
		return nil, b, nil
	}
	out := make([]byte, n)
	copy(out, b)
	return out, b[n:], nil
}

// encodeStrings marshals a string list (ListPages reply).
func encodeStrings(ss []string) []byte {
	var buf []byte
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(ss)))
	for _, s := range ss {
		buf = appendString(buf, s)
	}
	return buf
}

// DecodeStrings unmarshals a ListPages reply.
func DecodeStrings(b []byte) ([]string, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("webdoc: short string list")
	}
	n := binary.BigEndian.Uint32(b)
	b = b[4:]
	out := make([]string, 0, n)
	for i := uint32(0); i < n; i++ {
		var s string
		var err error
		s, b, err = takeString(b)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("webdoc: %d trailing list bytes", len(b))
	}
	return out, nil
}
