package kvstore

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/msg"
	"repro/internal/semantics"
)

func TestPutGetDelete(t *testing.T) {
	s := New()
	s.Put("k", []byte("v"))
	v, ok := s.Get("k")
	if !ok || string(v) != "v" {
		t.Fatalf("Get = %q, %v", v, ok)
	}
	s.Delete("k")
	if _, ok := s.Get("k"); ok {
		t.Fatalf("deleted key still present")
	}
	s.Delete("k") // idempotent
}

func TestGetPutCopySemantics(t *testing.T) {
	s := New()
	val := []byte("abc")
	s.Put("k", val)
	val[0] = 'z'
	got, _ := s.Get("k")
	if string(got) != "abc" {
		t.Fatalf("Put did not copy: %q", got)
	}
	got[1] = 'z'
	got2, _ := s.Get("k")
	if string(got2) != "abc" {
		t.Fatalf("Get did not copy: %q", got2)
	}
}

func TestKeysSortedAndLen(t *testing.T) {
	s := New()
	for _, k := range []string{"c", "a", "b"} {
		s.Put(k, nil)
	}
	if got := s.Keys(); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Fatalf("Keys = %v", got)
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestInvokeDispatch(t *testing.T) {
	s := New()
	if _, err := s.Invoke(msg.Invocation{Method: MethodPut, Page: "rec1", Args: []byte("data")}); err != nil {
		t.Fatal(err)
	}
	out, err := s.Invoke(msg.Invocation{Method: MethodGet, Page: "rec1"})
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "data" {
		t.Fatalf("Get via Invoke = %q", out)
	}
	if _, err := s.Invoke(msg.Invocation{Method: MethodGet, Page: "absent"}); !errors.Is(err, semantics.ErrNoElement) {
		t.Fatalf("want ErrNoElement, got %v", err)
	}
	if _, err := s.Invoke(msg.Invocation{Method: MethodKeys}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Invoke(msg.Invocation{Method: MethodDelete, Page: "rec1"}); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 {
		t.Fatalf("Delete via Invoke failed")
	}
	if _, err := s.Invoke(msg.Invocation{Method: 42}); !errors.Is(err, semantics.ErrUnknownMethod) {
		t.Fatalf("want ErrUnknownMethod, got %v", err)
	}
}

func TestElementsTransfer(t *testing.T) {
	s := New()
	s.Put("a", []byte("1"))
	e, err := s.SnapshotElement("a")
	if err != nil {
		t.Fatal(err)
	}
	s2 := New()
	if err := s2.RestoreElement("a", e); err != nil {
		t.Fatal(err)
	}
	v, ok := s2.Get("a")
	if !ok || string(v) != "1" {
		t.Fatalf("restored = %q, %v", v, ok)
	}
	if _, err := s.SnapshotElement("zzz"); !errors.Is(err, semantics.ErrNoElement) {
		t.Fatalf("want ErrNoElement, got %v", err)
	}
}

// Property: snapshot/restore round-trips arbitrary maps.
func TestSnapshotRestoreProperty(t *testing.T) {
	f := func(m map[string][]byte) bool {
		s := New()
		for k, v := range m {
			s.Put(k, v)
		}
		snap, err := s.Snapshot()
		if err != nil {
			return false
		}
		s2 := New()
		if err := s2.Restore(snap); err != nil {
			return false
		}
		snap2, err := s2.Snapshot()
		if err != nil {
			return false
		}
		return bytes.Equal(snap, snap2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRestoreRejectsCorrupt(t *testing.T) {
	if err := New().Restore([]byte{9}); err == nil {
		t.Fatalf("short snapshot accepted")
	}
	s := New()
	s.Put("a", []byte("x"))
	snap, _ := s.Snapshot()
	if err := New().Restore(append(snap, 1)); err == nil {
		t.Fatalf("trailing bytes accepted")
	}
}
