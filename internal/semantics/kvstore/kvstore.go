// Package kvstore implements a generic key-value semantics object. It
// models the paper's shared bibliographic-database example (§3.2.1): clients
// add records and later update individual fields, which is exactly the
// incremental-update pattern PRAM coherence serves well.
package kvstore

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"repro/internal/msg"
	"repro/internal/semantics"
)

// Method identifiers of the key-value interface.
const (
	MethodGet uint16 = iota + 1
	MethodKeys
	MethodPut
	MethodDelete
)

var methodTable = []semantics.MethodInfo{
	{ID: MethodGet, Name: "Get", Kind: semantics.Read},
	{ID: MethodKeys, Name: "Keys", Kind: semantics.Read},
	{ID: MethodPut, Name: "Put", Kind: semantics.Write},
	{ID: MethodDelete, Name: "Delete", Kind: semantics.Write},
}

// Store is a thread-safe key-value semantics object. The zero value is an
// empty store ready for use. Keys are the elements for partial transfer.
type Store struct {
	mu   sync.RWMutex
	data map[string][]byte
}

var _ semantics.Object = (*Store)(nil)

// New returns an empty store.
func New() *Store { return &Store{} }

// Factory returns a semantics.Factory creating empty stores.
func Factory() semantics.Factory {
	return func() semantics.Object { return New() }
}

// Methods implements semantics.Object.
func (s *Store) Methods() []semantics.MethodInfo { return methodTable }

// Invoke implements semantics.Object. The invocation's Page field carries
// the key; Args carry the value for Put.
func (s *Store) Invoke(inv msg.Invocation) ([]byte, error) {
	switch inv.Method {
	case MethodGet:
		v, ok := s.Get(inv.Page)
		if !ok {
			return nil, fmt.Errorf("%w: key %q", semantics.ErrNoElement, inv.Page)
		}
		return v, nil
	case MethodKeys:
		return EncodeKeys(s.Keys()), nil
	case MethodPut:
		s.Put(inv.Page, inv.Args)
		return nil, nil
	case MethodDelete:
		s.Delete(inv.Page)
		return nil, nil
	default:
		return nil, fmt.Errorf("%w: %d", semantics.ErrUnknownMethod, inv.Method)
	}
}

// Get returns a copy of the value for key.
func (s *Store) Get(key string) ([]byte, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.data[key]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), v...), true
}

// Put stores a copy of value under key.
func (s *Store) Put(key string, value []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.data == nil {
		s.data = make(map[string][]byte)
	}
	s.data[key] = append([]byte(nil), value...)
}

// Delete removes key (idempotent).
func (s *Store) Delete(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.data, key)
}

// Keys returns the sorted key set.
func (s *Store) Keys() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	keys := make([]string, 0, len(s.data))
	for k := range s.data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Len returns the number of keys.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.data)
}

// Elements implements semantics.Object.
func (s *Store) Elements() []string { return s.Keys() }

// SnapshotElement implements semantics.Object.
func (s *Store) SnapshotElement(name string) ([]byte, error) {
	v, ok := s.Get(name)
	if !ok {
		return nil, fmt.Errorf("%w: key %q", semantics.ErrNoElement, name)
	}
	return v, nil
}

// RestoreElement implements semantics.Object.
func (s *Store) RestoreElement(name string, data []byte) error {
	s.Put(name, data)
	return nil
}

// Snapshot implements semantics.Object.
func (s *Store) Snapshot() ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	keys := make([]string, 0, len(s.data))
	for k := range s.data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var buf []byte
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(keys)))
	for _, k := range keys {
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(k)))
		buf = append(buf, k...)
		v := s.data[k]
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(v)))
		buf = append(buf, v...)
	}
	return buf, nil
}

// Restore implements semantics.Object.
func (s *Store) Restore(data []byte) error {
	if len(data) < 4 {
		return fmt.Errorf("kvstore: short snapshot")
	}
	n := binary.BigEndian.Uint32(data)
	data = data[4:]
	m := make(map[string][]byte, n)
	for i := uint32(0); i < n; i++ {
		k, rest, err := takeChunk(data)
		if err != nil {
			return err
		}
		v, rest2, err := takeChunk(rest)
		if err != nil {
			return err
		}
		m[string(k)] = v
		data = rest2
	}
	if len(data) != 0 {
		return fmt.Errorf("kvstore: %d trailing snapshot bytes", len(data))
	}
	s.mu.Lock()
	s.data = m
	s.mu.Unlock()
	return nil
}

// EncodeKeys marshals a MethodKeys reply: u32 count, then u32-length-
// prefixed keys.
func EncodeKeys(keys []string) []byte {
	var buf []byte
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(keys)))
	for _, k := range keys {
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(k)))
		buf = append(buf, k...)
	}
	return buf
}

// DecodeKeys unmarshals a MethodKeys reply.
func DecodeKeys(b []byte) ([]string, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("kvstore: short keys encoding")
	}
	n := binary.BigEndian.Uint32(b)
	b = b[4:]
	// Bound the pre-allocation by what the reply could actually hold (each
	// key occupies at least 4 wire bytes), so a corrupt count cannot
	// amplify into a huge allocation.
	capHint := int(n)
	if max := len(b) / 4; capHint > max {
		capHint = max
	}
	out := make([]string, 0, capHint)
	for i := uint32(0); i < n; i++ {
		k, rest, err := takeChunk(b)
		if err != nil {
			return nil, err
		}
		out = append(out, string(k))
		b = rest
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("kvstore: %d trailing key bytes", len(b))
	}
	return out, nil
}

func takeChunk(b []byte) ([]byte, []byte, error) {
	if len(b) < 4 {
		return nil, nil, fmt.Errorf("kvstore: short chunk")
	}
	n := binary.BigEndian.Uint32(b)
	b = b[4:]
	if uint32(len(b)) < n {
		return nil, nil, fmt.Errorf("kvstore: short chunk body")
	}
	out := make([]byte, n)
	copy(out, b)
	return out, b[n:], nil
}
