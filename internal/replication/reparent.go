package replication

import "repro/internal/msg"

// Self-healing re-parenting: the replica tree of Figure 2 must survive the
// loss of an interior node. Two signals declare the configured parent dead —
// subscribe-retry exhaustion (the bootstrap handshake never completed) and
// reparentAfter consecutive digest periods with no parent traffic (the
// steady-state heartbeat went silent). Either way the child re-resolves the
// object through the injected ResolveParent seam, adopts a live replica on a
// strictly higher layer, and re-runs the ordinary subscribe handshake there;
// the bootstrap snapshot plus the digest/demand path then anti-entropy
// whatever the dead parent never relayed. The at-most-once admission layer
// and the recovery gate make the rejoin safe against duplicated or stale
// state, so re-parenting needs no protocol of its own.
//
// Cycle freedom is structural: a candidate is eligible only when its layer
// is strictly closer to the permanent root than the chooser's (and is not
// one of the chooser's own children), so parent edges always point up a
// strict ranking and no adoption sequence can close a loop.

// roleDepth ranks roles by distance from the permanent root: adoption is
// only allowed towards strictly smaller depths.
func roleDepth(r Role) int {
	switch r {
	case RolePermanent:
		return 0
	case RoleObjectInitiated:
		return 1
	default:
		return 2
	}
}

// noteParentTraffic records that the parent proved itself alive; any frame
// from it resets the missed-digest count.
func (o *Object) noteParentTraffic() {
	o.parentHeard = true
	o.parentSilent = 0
}

// armParentWatch schedules the parent liveness check. Each period spans one
// and a half digest intervals — enough to cover the parent's jitter (at most
// a quarter interval) with slack — so a healthy parent lands at least one
// digest per period.
func (o *Object) armParentWatch() {
	if o.parentWatchArmed || o.closed || o.reparentAfter <= 0 ||
		o.digestInterval <= 0 || o.parent == "" {
		return
	}
	o.parentWatchArmed = true
	o.parentWatchTimer = o.env.AfterFunc(o.digestInterval*3/2, func() {
		o.parentWatchArmed = false
		if o.closed || o.parent == "" {
			return
		}
		if !o.subAcked {
			// The subscribe retry cycle owns liveness until the bootstrap
			// ack lands; keep watching without counting.
			o.parentHeard = false
			o.armParentWatch()
			return
		}
		if o.parentHeard {
			o.parentHeard = false
			o.armParentWatch()
			return
		}
		o.parentSilent++
		o.stats.ParentMissedDigests++
		if o.parentSilent >= o.reparentAfter {
			o.parentSilent = 0
			o.reparent(false)
		}
		o.armParentWatch()
	})
}

// reparent reacts to a dead parent. With a live alternative it adopts that
// replica; otherwise it re-runs the handshake against the current parent —
// immediately when the digest watch fired (the parent may have restarted and
// forgotten us), or after a cooldown when the subscribe retry budget to that
// very parent was just exhausted (exhausted=true), so a dead node is not
// dialled in a tight loop but "same parent, later" still recovers.
func (o *Object) reparent(exhausted bool) {
	if o.closed || o.parent == "" || o.reparentArmed {
		return
	}
	if next := o.pickParent(); next != "" {
		o.adoptParent(next)
		return
	}
	if !exhausted {
		o.adoptParent(o.parent)
		return
	}
	o.armReparentRetry()
}

// pickParent re-resolves the object and chooses the best eligible candidate:
// strictly closer to the root than this store, not itself, not one of its
// children, and not the presumed-dead current parent. Among those, the
// nearest layer wins ("lowest layer first", as client binding does), with
// the address as a deterministic tie-break.
func (o *Object) pickParent() string {
	if o.resolveParent == nil {
		return ""
	}
	self := roleDepth(o.role)
	best, bestDepth := "", -1
	for _, c := range o.resolveParent() {
		d := roleDepth(c.Role)
		if c.Addr == "" || c.Addr == o.addr || c.Addr == o.parent ||
			o.children[c.Addr] || d >= self {
			continue
		}
		if d > bestDepth || (d == bestDepth && c.Addr < best) {
			best, bestDepth = c.Addr, d
		}
	}
	return best
}

// adoptParent switches the subscription to addr (possibly the current
// parent again) and restarts the bootstrap handshake from scratch. The
// engine and fetch knowledge are kept: the ack's stale-snapshot guard and
// the admission layer discard whatever the new bootstrap re-sends. A
// best-effort unsubscribe tells an old parent that turns out to be merely
// slow to stop pushing here.
func (o *Object) adoptParent(addr string) {
	if old := o.parent; old != "" && old != addr {
		o.send(old, &msg.Message{Kind: msg.KindUnsubscribe, From: o.addr, Store: o.self})
	}
	if o.subTimer != nil {
		o.subTimer.Stop()
	}
	o.subArmed = false
	o.subAcked = false
	o.subRetries = 0
	o.subWanted = true
	o.parent = addr
	o.parentHeard = false
	o.parentSilent = 0
	o.reparenting = true
	o.sendSubscribe()
	o.armParentWatch()
}

// armReparentRetry schedules the same-parent-later attempt after a cooldown
// of half the subscribe retry budget, then re-resolves: a candidate that
// appeared meanwhile is adopted, otherwise the current parent is dialled
// again with a fresh retry budget.
func (o *Object) armReparentRetry() {
	if o.reparentArmed || o.closed || o.demandRetry <= 0 {
		return
	}
	o.reparentArmed = true
	o.reparentTimer = o.env.AfterFunc(o.demandRetry*maxSubscribeRetries/2, func() {
		o.reparentArmed = false
		if o.closed || o.subAcked || !o.subWanted {
			return
		}
		o.reparent(false)
	})
}
