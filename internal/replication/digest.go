package replication

import (
	"time"

	"repro/internal/ids"
	"repro/internal/msg"
)

// Digest heartbeats are the framework-level answer to the UDP configuration
// of §4.2: "reliability comes as a side-effect of the coherence model" only
// works when a later arrival exposes the gap, so a silently dropped frame on
// an otherwise quiet object — tail loss, or every push swallowed by a
// partition — would strand a replica until unrelated traffic happens to
// arrive. With heartbeats enabled, every store periodically multicasts its
// children a compact applied-vector digest (one KindDigest frame per hosted
// object); a child whose applied vector does not cover the digest detects
// the gap immediately and requests the missing updates through the existing
// demand path. A healed partition or lost flush therefore converges within
// one heartbeat period instead of waiting for foreground traffic.
//
// The digest-triggered demand reuses demandFromParent, including its bounded
// retry timer; a heartbeat arriving while a demand is already outstanding is
// ignored, so timers and heartbeats never duplicate requests for the same
// gap.

// armDigest schedules the next heartbeat. It is a no-op while a heartbeat is
// already pending, when heartbeats are disabled, or while the store has no
// subscribed children to tell.
func (o *Object) armDigest() {
	if o.digestArmed || o.closed || o.digestInterval <= 0 || len(o.children) == 0 {
		return
	}
	o.digestArmed = true
	o.digestTimer = o.env.AfterFunc(o.digestPeriod(), func() {
		o.digestArmed = false
		if o.closed {
			return
		}
		o.digestRound()
		o.armDigest()
	})
}

// digestPeriod is the configured interval plus a deterministic jitter in
// [0, interval/4), so a fleet of stores sharing one configured interval does
// not heartbeat in lockstep (and a child is never more than 1.25 intervals
// behind its parent's next digest).
func (o *Object) digestPeriod() time.Duration {
	d := o.digestInterval
	if quarter := int64(d / 4); quarter > 0 {
		d += time.Duration(o.digestRNG.Int63n(quarter))
	}
	return d
}

// digestRound multicasts this store's applied-vector digest to its children.
// GlobalSeq rides along so sequentially-coherent children could compare
// sequencer positions too; the vector alone is what gap detection uses.
func (o *Object) digestRound() {
	tos := o.Children()
	if len(tos) == 0 {
		return
	}
	m := &msg.Message{
		Kind:      msg.KindDigest,
		Object:    o.object,
		From:      o.addr,
		Store:     o.self,
		VVec:      o.digestVec(),
		GlobalSeq: o.engine.Global(),
	}
	o.multicast(tos, m)
	o.stats.DigestsSent += uint64(len(tos))
}

// digestVec returns the wire-form applied vector for heartbeats, rebuilt
// only when an apply or state transfer invalidated the cached snapshot
// (markDigestStale). Idle heartbeats — the steady state the knob is sized
// for — re-send the cached Vec without re-materialising the applied vector,
// so the heartbeat path never adds work to, or synchronises with, the apply
// path beyond sharing the store's event loop.
func (o *Object) digestVec() msg.Vec {
	if o.digestStale {
		o.cachedDigest = o.appliedVec()
		o.digestStale = false
	}
	return o.cachedDigest
}

// markDigestStale records that applied() advanced since the last snapshot.
// Called wherever ordered applies or state transfers extend coherence
// knowledge; cheap enough to call unconditionally (heartbeats disabled just
// never read the flag).
func (o *Object) markDigestStale() { o.digestStale = true }

// onDigest handles a heartbeat at a child: when the parent's digest covers
// writes this replica has not applied, the gap is real (those updates were
// lost or cut off by a partition) and the child demands them. Digests from
// anyone but the configured parent are ignored — the demand path runs up
// the hierarchy only.
func (o *Object) onDigest(m *msg.Message) {
	o.stats.DigestsRecv++
	if o.parent == "" || m.From != o.parent {
		return
	}
	// Hearing a digest proves the parent has us in its children set; if the
	// bootstrap ack never arrived (lost on the wire, or the retry budget ran
	// out), re-subscribe now — the fresh ack re-seeds the engine and restores
	// a replica the send-once protocol would have stranded half-initialised.
	if o.subWanted && !o.subAcked && !o.subArmed {
		o.subRetries = 0
		o.sendSubscribe()
	}
	// Gap detection mirrors Vec.CoveredBy but tests each entry against the
	// engine and fetch vectors directly (Engine.Covers): the common case —
	// a converged child answering "nothing missing" every interval — must
	// not re-materialise the applied vector per heartbeat.
	//
	// Precision matches the vector representation: under the contiguous
	// models (sequential, PRAM, causal) a covered component proves every
	// earlier write arrived, so detection is exact. The eventual and FIFO
	// engines deliberately jump gaps (newest-write-wins vectors), so a
	// digest cannot name a superseded or per-page hole there — those
	// deployments pair the eventual model with full coherence transfer
	// (snapshots repair content wholesale, as the mirror preset does) or
	// gossip. See ROADMAP.
	gap := false
	m.VVec.Each(func(c ids.ClientID, s uint64) bool {
		w := ids.WiD{Client: c, Seq: s}
		if s > 0 && !o.engine.Covers(w) && !o.fetchVec.CoversWrite(w) {
			gap = true
			return false
		}
		return true
	})
	if !gap {
		return // nothing missing; stay quiet
	}
	if o.demandOutstanding() {
		return // the demand-retry timer owns re-requests for this gap
	}
	o.stats.DigestDemands++
	o.obsv.digestGaps.Inc()
	if o.traceOn() {
		o.emit("digest_gap", "parent digest advertised writes this replica is missing")
	}
	// Mark the cycle as digest-initiated: a silent-tail-loss gap has no
	// buffered updates and no parked reads, so without the flag retryDemand
	// would see "nothing outstanding" and drop a lost demand (or lost
	// reply) on the floor until the next heartbeat.
	o.digestGapDemand = true
	o.demandFromParent()
}

// demandOutstanding reports whether a previously issued demand is still
// unanswered: its retry timer is armed and no coherence response has arrived
// since it was sent.
func (o *Object) demandOutstanding() bool {
	return o.demandRetryArmed && o.revalEpoch == o.demandEpoch
}
