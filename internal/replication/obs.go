package replication

import (
	"strconv"

	"repro/internal/ids"
	"repro/internal/obs"
)

// repObs holds the observability instruments one replication object feeds.
// Every instrument is nil when observability is disabled — the obs types
// no-op on nil receivers — so the handlers increment unconditionally and
// the disabled hot path pays one predictable branch per event and zero
// allocations (pinned by BENCH_10.json). Trace emission is the exception:
// Detail strings cost real formatting, so call sites gate on traceOn().
type repObs struct {
	store string // store ID label value, also the trace Store field
	obj   string

	admitted     *obs.Counter
	sequenced    *obs.Counter
	forwarded    *obs.Counter
	acked        *obs.Counter
	disseminated *obs.Counter
	applied      *obs.Counter
	demands      *obs.Counter
	digestGaps   *obs.Counter
	reparents    *obs.Counter
	recoveries   *obs.Counter
	lag          *obs.Hist
	walAppends   *obs.Counter
	walSync      *obs.Hist
	commitSize   *obs.Hist
	tr           *obs.Trace
}

// newRepObs registers (or re-fetches, on re-host) this replica's series.
// All series carry {store, object} labels so one daemon hosting many
// objects exposes one line per replica — the per-replica propagation-lag
// view the paper's consistency/latency tradeoff needs.
func newRepObs(ob *obs.Observer, self ids.StoreID, object ids.ObjectID) repObs {
	r := repObs{
		store: strconv.FormatUint(uint64(self), 10),
		obj:   string(object),
		tr:    ob.Tracer(),
	}
	reg := ob.Registry()
	if reg == nil {
		return r
	}
	ls := []obs.Label{obs.L("store", r.store), obs.L("object", r.obj)}
	r.admitted = reg.Counter("globe_writes_admitted_total",
		"client writes admitted (stamped) at this replica", ls...)
	r.sequenced = reg.Counter("globe_writes_sequenced_total",
		"writes assigned a global sequence by this sequencer", ls...)
	r.forwarded = reg.Counter("globe_writes_forwarded_total",
		"write requests forwarded towards the permanent store", ls...)
	r.acked = reg.Counter("globe_writes_acked_total",
		"write acknowledgements issued to clients", ls...)
	r.disseminated = reg.Counter("globe_updates_disseminated_total",
		"coherence transfers shipped to subscribed children (updates, invalidations, notifications)", ls...)
	r.applied = reg.Counter("globe_updates_applied_total",
		"ordered updates applied to local semantics", ls...)
	r.demands = reg.Counter("globe_demands_sent_total",
		"demand-update and state requests issued upstream", ls...)
	r.digestGaps = reg.Counter("globe_digest_gap_demands_total",
		"demands triggered by a digest heartbeat gap", ls...)
	r.reparents = reg.Counter("globe_reparents_total",
		"completed re-parent handshakes (new parent acked)", ls...)
	r.recoveries = reg.Counter("globe_recoveries_total",
		"WAL recoveries performed at startup", ls...)
	r.lag = reg.HistDuration("globe_propagation_lag_seconds",
		"age of an update at local apply, measured from its origin wall-clock stamp", ls...)
	r.walAppends = reg.Counter("globe_wal_appends_total",
		"records appended to the write-ahead log", ls...)
	r.walSync = reg.HistDuration("globe_wal_sync_seconds",
		"write-ahead log fsync barrier latency", ls...)
	r.commitSize = reg.Hist("globe_wal_group_commit_size",
		"write acks retired per group-commit barrier", ls...)
	return r
}

// traceOn gates trace emission so Detail formatting is skipped entirely
// when tracing is off.
func (o *Object) traceOn() bool { return o.obsv.tr.Enabled() }

// emit records one trace event stamped with the injected clock.
func (o *Object) emit(typ, detail string) {
	o.obsv.tr.Emit(obs.Event{
		Nanos:  o.env.Now().UnixNano(),
		Store:  o.obsv.store,
		Object: o.obsv.obj,
		Type:   typ,
		Detail: detail,
	})
}
