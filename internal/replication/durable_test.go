package replication

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/coherence"
	"repro/internal/ids"
	"repro/internal/msg"
	"repro/internal/semantics/webdoc"
	"repro/internal/strategy"
	"repro/internal/vclock"
	"repro/internal/wal"
)

// openDurable builds a durable permanent replica backed by the WAL in dir,
// replaying whatever a previous incarnation left there. Abandoning the
// returned object without Close simulates kill -9: the event loop is gone
// but every synced record is on disk.
func openDurable(t *testing.T, env Env, dir string, grace time.Duration) *Object {
	t.Helper()
	wlog, rec, err := wal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	o, err := New(Config{
		Env: env, Object: "obj", Self: 1, Addr: "self", Role: RolePermanent,
		Strat: strategy.Conference(time.Hour), ReadTimeout: time.Second,
		WAL: wlog, Recovered: rec, WALSync: wal.SyncAlways, RecoveryGrace: grace,
	})
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func pageContent(t *testing.T, env *fakeEnv, page string) []byte {
	t.Helper()
	b, err := env.ctrl.ServeRead(msg.Invocation{Method: webdoc.MethodGetPage, Page: page})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// The restart identity hazard: a recovered store must not re-stamp or
// re-sequence a write it already acknowledged before the crash — the retry
// must be re-acked from the recovered admission state without a second
// apply, and genuinely new writes must continue the sequence.
func TestDurableRestartReplayNoDuplicateApply(t *testing.T) {
	dir := t.TempDir()
	env1 := newFakeEnv()
	o1 := openDurable(t, env1, dir, time.Hour)
	o1.Handle(writeMsg(1, 1, "p", "hello"))
	o1.Handle(writeMsg(1, 2, "p", "world"))
	if acks := env1.takeSent(msg.KindWriteReply); len(acks) != 2 || acks[0].Status != msg.StatusOK {
		t.Fatalf("acks before crash: %+v", acks)
	}
	// kill -9: no Close, no final flush beyond the per-ack barrier.

	env2 := newFakeEnv()
	o2 := openDurable(t, env2, dir, time.Hour)
	defer o2.Close()
	if o2.Recovering() {
		t.Fatal("no children were recorded; the gate must not close")
	}
	st := o2.Stats()
	if st.WALReplayed != 2 || st.UpdatesApplied != 2 {
		t.Fatalf("replay stats: %+v", st)
	}
	if !o2.Applied().CoversWrite(ids.WiD{Client: 1, Seq: 2}) {
		t.Fatalf("recovered applied vector %v misses the acked writes", o2.Applied())
	}

	// The client retries the acked-but-maybe-lost write: re-ack, no re-apply.
	o2.Handle(writeMsg(1, 1, "p", "hello"))
	if acks := env2.takeSent(msg.KindWriteReply); len(acks) != 1 || acks[0].Status != msg.StatusOK {
		t.Fatalf("replay ack: %+v", acks)
	}
	if got := o2.Stats().UpdatesApplied; got != 2 {
		t.Fatalf("replayed retry re-applied: UpdatesApplied = %d, want 2", got)
	}
	// A genuinely new write continues the recovered sequence.
	o2.Handle(writeMsg(1, 3, "p", "again"))
	if got := o2.Stats().UpdatesApplied; got != 3 {
		t.Fatalf("fresh write after recovery: UpdatesApplied = %d, want 3", got)
	}
	content := pageContent(t, env2, "p")
	for _, w := range []string{"hello", "world", "again"} {
		if bytes.Count(content, []byte(w)) != 1 {
			t.Fatalf("%q appears %d times in %q, want exactly once",
				w, bytes.Count(content, []byte(w)), content)
		}
	}
}

// Crash between sequencing a write (its stamped update record hit the log)
// and logging its admission record: recovery must seed the admission
// watermark from the update itself, so the client's retry — the ack never
// left — is re-acked as a replay instead of being stamped a second time
// and double-applied.
func TestDurableUpdateWithoutAdmitIsReplayAfterRestart(t *testing.T) {
	dir := t.TempDir()
	wlog, _, err := wal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ghost := writeMsg(9, 1, "p", "ghost")
	if err := wlog.AppendUpdate(&coherence.Update{
		Write: ghost.Write,
		Stamp: vclock.Stamp{Time: 7, Client: 9},
		Inv:   ghost.Inv,
	}); err != nil {
		t.Fatal(err)
	}
	if err := wlog.Close(); err != nil {
		t.Fatal(err)
	}

	env := newFakeEnv()
	o := openDurable(t, env, dir, time.Hour)
	defer o.Close()
	if got := o.Stats().UpdatesApplied; got != 1 {
		t.Fatalf("durable update not replayed: UpdatesApplied = %d", got)
	}
	o.Handle(writeMsg(9, 1, "p", "ghost"))
	if acks := env.takeSent(msg.KindWriteReply); len(acks) != 1 || acks[0].Status != msg.StatusOK {
		t.Fatalf("retry of sequenced-but-unacked write not re-acked: %+v", acks)
	}
	if got := o.Stats().UpdatesApplied; got != 1 {
		t.Fatalf("retry re-applied: UpdatesApplied = %d, want 1", got)
	}
	// The next sequence from the same client is new work.
	o.Handle(writeMsg(9, 2, "p", "real"))
	if got := o.Stats().UpdatesApplied; got != 2 {
		t.Fatalf("fresh write after replay: UpdatesApplied = %d, want 2", got)
	}
	content := pageContent(t, env, "p")
	if bytes.Count(content, []byte("ghost")) != 1 || bytes.Count(content, []byte("real")) != 1 {
		t.Fatalf("content mismatch: %q", content)
	}
}

// Snapshot compaction racing live writes: records appended after the
// snapshot's applied vector form the WAL tail, and recovery re-applies
// exactly that tail on top of the snapshot state — nothing twice, nothing
// dropped.
func TestDurableSnapshotRacingLiveWrites(t *testing.T) {
	dir := t.TempDir()
	env1 := newFakeEnv()
	o1 := openDurable(t, env1, dir, time.Hour)
	for seq := uint64(1); seq <= 3; seq++ {
		o1.Handle(writeMsg(1, seq, "p", "pre-"+string(rune('0'+seq))))
	}
	if err := o1.Compact(); err != nil {
		t.Fatal(err)
	}
	info := o1.Durability()
	if !info.Durable || info.WALRecords != 0 || info.LastSnapshot == nil {
		t.Fatalf("durability after compaction: %+v", info)
	}
	// Live writes land after the snapshot point.
	for seq := uint64(4); seq <= 5; seq++ {
		o1.Handle(writeMsg(1, seq, "p", "post-"+string(rune('0'+seq))))
	}
	env1.takeSent(msg.KindWriteReply)
	// kill -9.

	env2 := newFakeEnv()
	o2 := openDurable(t, env2, dir, time.Hour)
	defer o2.Close()
	st := o2.Stats()
	if st.WALReplayed != 2 || st.UpdatesApplied != 2 {
		t.Fatalf("only the post-snapshot tail should re-apply: %+v", st)
	}
	if !o2.Applied().CoversWrite(ids.WiD{Client: 1, Seq: 5}) {
		t.Fatalf("recovered applied vector %v misses the tail", o2.Applied())
	}
	content := pageContent(t, env2, "p")
	for seq := uint64(1); seq <= 5; seq++ {
		prefix := "pre-"
		if seq > 3 {
			prefix = "post-"
		}
		w := prefix + string(rune('0'+seq))
		if bytes.Count(content, []byte(w)) != 1 {
			t.Fatalf("%q appears %d times, want exactly once", w, bytes.Count(content, []byte(w)))
		}
	}
	// A retry of a write the snapshot already contains is still a replay.
	o2.Handle(writeMsg(1, 2, "p", "pre-2"))
	if got := o2.Stats().UpdatesApplied; got != 2 {
		t.Fatalf("snapshot-covered retry re-applied: %d", got)
	}
}

// The recover-then-serve gate: a restarted store with recorded children
// bounces reads and writes with StatusRetry while it anti-entropies the
// tail, and the first coherence answer from every pending child opens it.
func TestDurableRecoveryGate(t *testing.T) {
	dir := t.TempDir()
	wlog, _, err := wal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := wlog.AppendChild("store/kid", false); err != nil {
		t.Fatal(err)
	}
	if err := wlog.Close(); err != nil {
		t.Fatal(err)
	}

	env := newFakeEnv()
	o := openDurable(t, env, dir, time.Hour)
	defer o.Close()
	if !o.Recovering() || !o.Durability().Recovering {
		t.Fatal("store with recovered children must gate behind recovery")
	}
	demands := env.takeSent(msg.KindDemandUpdate)
	if len(demands) != 1 || demands[0].To != "store/kid" {
		t.Fatalf("recovery demands: %+v", demands)
	}

	o.Handle(writeMsg(2, 1, "p", "early"))
	if acks := env.takeSent(msg.KindWriteReply); len(acks) != 1 || acks[0].Status != msg.StatusRetry {
		t.Fatalf("gated write: %+v", acks)
	}
	o.Handle(&msg.Message{
		Kind: msg.KindReadRequest, Object: "obj", From: "reader-ep", Client: 2,
		Inv: msg.Invocation{Method: webdoc.MethodGetPage, Page: "p"},
	})
	if replies := env.takeSent(msg.KindReadReply); len(replies) != 1 || replies[0].Status != msg.StatusRetry {
		t.Fatalf("gated read: %+v", replies)
	}

	// The child answers the anti-entropy demand (an empty ack is enough —
	// it proves the child has nothing beyond our applied vector).
	env.clk.Advance(time.Millisecond)
	o.Handle(&msg.Message{Kind: msg.KindUpdateAck, Object: "obj", From: "store/kid"})
	if o.Recovering() {
		t.Fatal("gate still closed after every pending child answered")
	}
	o.Handle(writeMsg(2, 1, "p", "after"))
	if acks := env.takeSent(msg.KindWriteReply); len(acks) != 1 || acks[0].Status != msg.StatusOK {
		t.Fatalf("write after gate opened: %+v", acks)
	}
	if o.Stats().RecoveryNanos == 0 {
		t.Fatal("recovery duration not stamped")
	}
}

// An unreachable child must not wedge the gate forever: the grace timer
// force-opens it.
func TestDurableRecoveryGraceExpires(t *testing.T) {
	dir := t.TempDir()
	wlog, _, err := wal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := wlog.AppendChild("store/gone", false); err != nil {
		t.Fatal(err)
	}
	if err := wlog.Close(); err != nil {
		t.Fatal(err)
	}

	env := newFakeEnv()
	o := openDurable(t, env, dir, 80*time.Millisecond)
	defer o.Close()
	if !o.Recovering() {
		t.Fatal("gate must start closed")
	}
	env.clk.Advance(100 * time.Millisecond)
	if o.Recovering() {
		t.Fatal("grace expiry did not open the gate")
	}
}
