package replication

import (
	"errors"
	"strconv"
	"strings"

	"repro/internal/coherence"
	"repro/internal/ids"
	"repro/internal/msg"
	"repro/internal/semantics"
	"repro/internal/strategy"
	"repro/internal/vclock"
)

// Handle dispatches one incoming message for this object. Unknown kinds are
// ignored (forward compatibility). The exempt list names the kinds a
// replication object never receives: client-side replies, bind traffic the
// store answers before replication sees it, and the name-service/control
// protocols that have their own servers.
//
//globelint:wiresym type=msg.Kind role=dispatch exempt=KindBindRequest,KindBindReply,KindReadReply,KindWriteReply,KindNameRegister,KindNameDeregister,KindNameResolve,KindNameLease,KindNameReply,KindNameDigest,KindNameSync,KindCtrlRequest,KindCtrlReply
func (o *Object) Handle(m *msg.Message) {
	if o.closed {
		return
	}
	if o.recovering && o.gateRecovering(m) {
		return
	}
	if o.parent != "" && m.From == o.parent {
		o.noteParentTraffic()
	}
	switch m.Kind {
	case msg.KindReadRequest:
		o.onRead(m)
	case msg.KindWriteRequest:
		o.onWrite(m)
	case msg.KindUpdate:
		o.onUpdate(m)
	case msg.KindUpdateBatch:
		o.onUpdateBatch(m)
	case msg.KindUpdateAck:
		// "Nothing missing" answer to a demand: counts as revalidation.
		// The ack's vector covers writes the sender will never send — LWW
		// losers superseded before dissemination — so fold it into fetch
		// knowledge; otherwise a digest advertising those components would
		// re-demand every heartbeat forever.
		m.VVec.MergeInto(o.fetchVec)
		o.markDigestStale()
		o.revalEpoch++
		o.reconsiderParked()
	case msg.KindInvalidate:
		o.onInvalidate(m)
	case msg.KindNotify:
		o.onNotify(m)
	case msg.KindDemandUpdate:
		o.onDemand(m)
	case msg.KindStateRequest:
		o.onStateRequest(m)
	case msg.KindStateReply:
		o.onStateReply(m)
	case msg.KindSubscribe:
		o.onSubscribe(m)
	case msg.KindSubscribeAck:
		o.onSubscribeAck(m)
	case msg.KindUnsubscribe:
		o.onUnsubscribe(m)
	case msg.KindGossip:
		if o.validGossipStrategy() {
			o.onGossip(m)
		}
	case msg.KindGossipReply:
		if o.validGossipStrategy() {
			o.onGossipReply(m)
		}
	case msg.KindDigest:
		o.onDigest(m)
	}
}

// --- reads -----------------------------------------------------------------

// onRead implements the access path: check session requirements (client-
// based models, §3.2.2), check replica validity (invalidations, pull mode),
// then serve from the local semantics object.
func (o *Object) onRead(m *msg.Message) {
	// Pull-on-access revalidation: with pull initiative and no periodic
	// poller, every access first validates against the parent (the
	// If-Modified-Since pattern from the paper's introduction).
	if o.strat.Initiative == strategy.Pull && o.strat.PullInterval <= 0 && o.parent != "" {
		o.demandFromParent()
		o.parkReval(m)
		return
	}
	if !o.requirementMet(m) {
		o.stats.ReqViolations++
		switch o.strat.ClientOutdate {
		case strategy.Demand:
			// §4: "the cache first demands an update from the Web server".
			o.demandFromParent()
		case strategy.Wait:
			// §4: the store "simply waits until a new write arrives".
		}
		o.park(m)
		return
	}
	o.serveOrFetch(m)
}

// requirementMet checks the read's session-guarantee requirement vector.
func (o *Object) requirementMet(m *msg.Message) bool {
	if m.VVec.Len() == 0 {
		return true
	}
	return m.VVec.CoveredBy(o.applied())
}

// serveOrFetch serves the read locally, fetching missing/invalidated state
// from the parent first when needed.
func (o *Object) serveOrFetch(m *msg.Message) {
	page := m.Inv.Page
	if o.allInvalid || (page != "" && o.invalid[page]) {
		if o.parent != "" {
			o.parkFetch(m, page)
			return
		}
	}
	payload, err := o.env.ServeRead(m.Inv)
	if err != nil {
		// A cold or partially warm replica misses elements it never
		// fetched; resolve through the parent per the access-transfer type.
		if errors.Is(err, semantics.ErrNoElement) && o.parent != "" {
			o.parkFetch(m, page)
			return
		}
		o.stats.ReadsFailed++
		o.replyErr(m, msg.StatusNotFound, err.Error())
		return
	}
	o.stats.ReadsServed++
	r := m.Reply(msg.KindReadReply)
	r.From = o.addr
	r.Store = o.self
	r.Payload = payload
	r.VVec = o.appliedVec()
	o.send(m.From, r)
}

// park queues a read until coherence or state arrives, with a deadline.
func (o *Object) park(m *msg.Message) {
	o.stats.ReadsParked++
	p := &parkedRead{m: m, deadline: o.env.Now().Add(o.readTimeout)}
	//globelint:ignore aliasretain parked read pins its frame by design: transports never reuse frames and expireParked bounds the hold to readTimeout
	o.parked = append(o.parked, p)
	o.env.AfterFunc(o.readTimeout, func() { o.expireParked() })
}

// parkFetch requests state for a read's page and parks the read, recording
// the fetch so a completed-but-still-missing full transfer fails the read
// instead of refetching forever.
func (o *Object) parkFetch(m *msg.Message, page string) {
	o.fetch(page)
	o.park(m)
	p := o.parked[len(o.parked)-1]
	p.fetchTried = true
	p.fetchedAt = o.fullFetches
}

// parkReval queues a read that must wait for one revalidation response.
func (o *Object) parkReval(m *msg.Message) {
	o.stats.ReadsParked++
	p := &parkedRead{
		m: m, deadline: o.env.Now().Add(o.readTimeout),
		needsReval: true, epoch: o.revalEpoch,
	}
	//globelint:ignore aliasretain parked read pins its frame by design: transports never reuse frames and expireParked bounds the hold to readTimeout
	o.parked = append(o.parked, p)
	o.env.AfterFunc(o.readTimeout, func() { o.expireParked() })
}

// expireParked fails reads whose deadline passed.
func (o *Object) expireParked() {
	if o.closed {
		return
	}
	now := o.env.Now()
	rest := o.parked[:0]
	for _, p := range o.parked {
		if now.Before(p.deadline) {
			rest = append(rest, p)
			continue
		}
		o.stats.ReadsFailed++
		o.replyErr(p.m, msg.StatusRetry, "coherence requirement not satisfiable before timeout")
	}
	o.parked = rest
}

// reconsiderParked retries parked reads after local state changed.
func (o *Object) reconsiderParked() {
	if len(o.parked) == 0 {
		return
	}
	pending := o.parked
	o.parked = nil
	for _, p := range pending {
		if p.needsReval && p.epoch >= o.revalEpoch {
			o.parked = append(o.parked, p) // revalidation still in flight
			continue
		}
		if !o.requirementMet(p.m) {
			o.parked = append(o.parked, p)
			continue
		}
		page := p.m.Inv.Page
		if (o.allInvalid || (page != "" && o.invalid[page])) && o.parent != "" {
			o.parked = append(o.parked, p)
			continue
		}
		o.serveOrFetchParked(p)
	}
}

// serveOrFetchParked is serveOrFetch for an already parked read: on a state
// miss it re-parks without double-counting. If the miss persists after a
// full state transfer completed, the element does not exist at the parent
// either, so the read fails with not-found rather than livelocking in a
// fetch → state-reply → reconsider cycle.
func (o *Object) serveOrFetchParked(p *parkedRead) {
	payload, err := o.env.ServeRead(p.m.Inv)
	if err != nil {
		if errors.Is(err, semantics.ErrNoElement) && o.parent != "" {
			page := p.m.Inv.Page
			full := o.strat.AccessTransfer == strategy.TransferFull || page == ""
			if full && p.fetchTried && o.fullFetches > p.fetchedAt {
				o.stats.ReadsFailed++
				o.replyErr(p.m, msg.StatusNotFound, err.Error())
				return
			}
			o.fetch(page)
			p.fetchTried = true
			p.fetchedAt = o.fullFetches
			o.parked = append(o.parked, p)
			return
		}
		o.stats.ReadsFailed++
		o.replyErr(p.m, msg.StatusNotFound, err.Error())
		return
	}
	o.stats.ReadsServed++
	r := p.m.Reply(msg.KindReadReply)
	r.From = o.addr
	r.Store = o.self
	r.Payload = payload
	r.VVec = o.appliedVec()
	o.send(p.m.From, r)
}

// --- writes ----------------------------------------------------------------

// onWrite handles a client write request. Non-permanent stores forward
// writes up the hierarchy (the permanent stores own the object's coherence,
// §3.1); under the eventual model they additionally apply the write locally
// first, so a mirror serves its own writes immediately.
func (o *Object) onWrite(m *msg.Message) {
	if o.role != RolePermanent {
		if o.strat.Model == coherence.Eventual {
			freshAdmission := false
			if m.Stamp.Zero() {
				if o.replayedUnstamped(m) {
					// Already stamped here once; a second stamp would win
					// LWW and double-apply (see the permanent-store check).
					// The retry may exist because the ORIGINAL forward (or
					// the ack) was lost, so re-propagate the logged stamped
					// form upstream — re-forwarding the unstamped replay
					// instead would mint a second stamp at the parent and
					// double-apply on the way back down; an identical stamp
					// is deduplicated by LWW everywhere.
					if o.parent != "" {
						if u := o.loggedWrite(m.Write); u != nil {
							fwd := *m
							fwd.To = o.parent
							fwd.Stamp = u.Stamp
							fwd.Inv = u.Inv
							o.stats.WritesForwarded++
							o.obsv.forwarded.Inc()
							o.sendRaw(o.parent, &fwd)
						}
					}
					o.ackWrite(m)
					return
				}
				freshAdmission = true
				m.Stamp = vclock.Stamp{Time: o.lamport.Next(), Client: m.Write.Client}
				o.obsv.admitted.Inc()
				if o.traceOn() {
					o.emit("write_admitted", "wid="+m.Write.String())
				}
			} else {
				o.lamport.Witness(m.Stamp.Time)
			}
			u := updateFromMsg(m)
			o.applyReleased(o.submitLogged(u))
			if freshAdmission {
				o.walAppendAdmit(m.Write.Client, m.Write.Seq)
			}
			// Ack immediately: eventual coherence promises no more.
			o.ackWrite(m)
			// Continue propagation towards the permanent store.
			if o.parent != "" {
				fwd := *m
				fwd.To = o.parent
				o.stats.WritesForwarded++
				o.obsv.forwarded.Inc()
				o.sendRaw(o.parent, &fwd)
			}
			o.reconsiderParked()
			return
		}
		if o.parent == "" {
			o.replyErr(m, msg.StatusError, "store has no parent to order writes")
			return
		}
		fwd := *m // preserve the original From so the permanent store acks the client
		fwd.To = o.parent
		o.stats.WritesForwarded++
		o.obsv.forwarded.Inc()
		o.sendRaw(o.parent, &fwd)
		return
	}

	// Permanent store: enforce the write set.
	if o.strat.Writers == strategy.SingleWriter {
		if !o.hasWriter {
			o.hasWriter = true
			o.writer = m.Write.Client
		} else if o.writer != m.Write.Client {
			o.stats.WritesRejected++
			o.replyErr(m, msg.StatusForbidden, "write set is single; another client owns the object")
			return
		}
	}

	// At-most-once admission: a request frame duplicated by the link (the
	// UDP configuration) or retried after a lost ack must be re-acked, not
	// admitted again — under the sequential model a second pass would
	// assign the same WiD a fresh GlobalSeq and apply it twice, and under
	// the eventual model it would mint a fresh Lamport stamp that wins LWW
	// against itself. Client-originated requests are exactly the unstamped
	// ones (only eventual mirrors forward pre-stamped frames, whose
	// replays carry an identical stamp that LWW drops on its own), and the
	// watermark+holes record distinguishes a replay from a genuinely new
	// write that was merely overtaken in flight — the engines' own applied
	// vectors cannot, since the sequential, FIFO, and eventual ones all
	// jump per-client gaps.
	freshAdmission := false
	if m.Stamp.Zero() {
		if o.replayedUnstamped(m) {
			o.ackWrite(m)
			return
		}
		freshAdmission = true
		m.Stamp = vclock.Stamp{Time: o.lamport.Next(), Client: m.Write.Client}
		o.obsv.admitted.Inc()
		if o.traceOn() {
			o.emit("write_admitted", "wid="+m.Write.String())
		}
	} else {
		o.lamport.Witness(m.Stamp.Time)
	}
	u := updateFromMsg(m)
	if o.strat.Model == coherence.Sequential && u.GlobalSeq == 0 {
		u.GlobalSeq = o.nextGlobal
		o.nextGlobal++
		o.obsv.sequenced.Inc()
		if o.traceOn() {
			o.emit("write_sequenced", "wid="+u.Write.String()+" gseq="+strconv.FormatUint(u.GlobalSeq, 10))
		}
	}
	o.stats.WritesAccepted++
	released := o.submitLogged(u)
	if freshAdmission {
		// The admission record lands AFTER its update record (see
		// walAppendAdmit): a crash between the two appends leaves the
		// update durable, and recovery seeds the watermark from it.
		o.walAppendAdmit(m.Write.Client, m.Write.Seq)
	}
	if len(released) == 0 && o.engine.Pending() > 0 {
		o.stats.UpdatesBuffered++
	}
	o.applyReleased(released)
	// Ack the writer (the client learns the store that performed its
	// write — the (WiD, store) dependency of §4.2).
	o.ackWrite(m)
	o.reconsiderParked()
}

// ackWrite sends the OK write reply for m. On a durable replica under the
// always policy, everything logged for this write reaches disk first: an
// acknowledged write survives even kill -9 between ack and the next flush.
// With group commit enabled the ack parks instead and FlushAcks pays one
// barrier for the whole drained batch (durability unchanged: the ack still
// never leaves before its records are stable).
func (o *Object) ackWrite(m *msg.Message) {
	o.obsv.acked.Inc()
	if o.traceOn() {
		o.emit("write_acked", "wid="+m.Write.String()+" to="+m.From)
	}
	r := m.Reply(msg.KindWriteReply)
	r.From = o.addr
	r.Store = o.self
	if o.deferBarrier() {
		// The ack can sit in ackPending across many handler turns under
		// group commit; clone the reply address so the parked ack does not
		// pin the request frame's chunk until the next flush.
		o.ackPending = append(o.ackPending, pendingAck{to: strings.Clone(m.From), r: r})
		return
	}
	o.walBarrier()
	o.send(m.From, r)
}

// stampedSeqs is one client's unstamped-write admission record: the highest
// sequence stamped so far plus the sequences below it this store has NOT
// seen (holes left by in-flight reordering on a jittered link). The holes
// set is bounded by the client's writes-in-flight window in practice; a
// pathological gap (e.g. a reused client identity resuming far ahead, see
// coherence.SeedSeq) is not recorded beyond the cap, and uncovered old
// sequences then classify as replays — matching the documented semantics of
// reused write IDs everywhere else in the system.
type stampedSeqs struct {
	max   uint64
	holes map[uint64]bool
}

// maxStampedHoles caps the per-client holes set.
const maxStampedHoles = 256

// maxStampedClients caps the admission map itself so client churn on a
// long-lived daemon cannot grow it without bound; when full, a record
// (preferably one with no holes) is evicted. This is the bounded-memory
// trade every dedup cache makes: a replay from an evicted identity —
// requiring more than this many writer identities on ONE object plus a
// duplicate still floating from before the eviction — can be re-admitted.
const maxStampedClients = 4096

// replayedUnstamped reports whether this store already minted a Lamport
// stamp for the given write, recording the admission otherwise. Only
// unstamped requests — which come directly from a client session — consult
// this: a sequence at or below the watermark that is not a recorded hole
// was stamped here before, so the frame is a link duplicate (or an
// ack-loss retry) that must not be stamped again; a recorded hole is a
// genuinely new write that was merely overtaken in flight. Forwarded
// store-to-store traffic is already stamped and never reaches this check.
// Fresh admissions are WAL-logged on durable replicas — by the CALLER,
// after the stamped update record — so the same distinction survives a
// restart (recovery replays both through admitSeq).
func (o *Object) replayedUnstamped(m *msg.Message) bool {
	return o.admitSeq(m.Write.Client, m.Write.Seq)
}

// admitSeq is the watermark/holes state machine behind replayedUnstamped,
// shared with WAL recovery (which must re-run admissions without re-logging
// them).
func (o *Object) admitSeq(c ids.ClientID, seq uint64) bool {
	u := o.stamped[c]
	if u == nil {
		if len(o.stamped) >= maxStampedClients {
			// Bound the map unconditionally; prefer evicting a record with
			// no holes, but never let "all records hold holes" unbound it.
			var victim ids.ClientID
			found := false
			for old, rec := range o.stamped {
				victim, found = old, true
				if len(rec.holes) == 0 {
					break
				}
			}
			if found {
				delete(o.stamped, victim)
			}
		}
		u = &stampedSeqs{}
		o.stamped[c] = u
		if seq > maxStampedHoles {
			// First contact at a high sequence is a resumed client identity
			// (binds seed the session counter past prior applied writes, see
			// coherence.SeedSeq) — its old sequences were admitted in an
			// earlier life and must classify as replays, not as holes a
			// floating duplicate could crawl back through.
			u.max = seq
			return false
		}
	}
	switch {
	case seq > u.max:
		for s := u.max + 1; s < seq && len(u.holes) < maxStampedHoles; s++ {
			if u.holes == nil {
				u.holes = make(map[uint64]bool, 2)
			}
			u.holes[s] = true
		}
		u.max = seq
		return false
	case u.holes[seq]:
		delete(u.holes, seq)
		return false // overtaken in flight; new write, admit it
	default:
		return true
	}
}

// loggedWrite finds the applied update with the given write ID in the
// retained log (newest first — replays chase recent writes).
func (o *Object) loggedWrite(w ids.WiD) *coherence.Update {
	for i := len(o.log) - 1; i >= 0; i-- {
		if o.log[i].Write == w {
			return o.log[i]
		}
	}
	return nil
}

// updateFromMsg builds the engine-level update from a wire message.
func updateFromMsg(m *msg.Message) *coherence.Update {
	return &coherence.Update{
		Write:     m.Write,
		GlobalSeq: m.GlobalSeq,
		Deps:      m.Deps.VC(),
		Stamp:     m.Stamp,
		Inv:       cloneInv(m.Inv),
		WallNanos: m.WallNanos,
	}
}

// cloneInv deep-copies an invocation taken from a wire message. Updates
// outlive their frame — they sit in the update log and their Page/Args end
// up inside semantics state — so retaining the zero-copy decoded fields
// would pin whole transport buffers (tcpnet handoff chunks, memnet frames)
// for the replica's lifetime. One copy per write restores the footprint of
// the old copying decode while reads stay zero-copy end to end.
func cloneInv(inv msg.Invocation) msg.Invocation {
	out := msg.Invocation{Method: inv.Method, Page: strings.Clone(inv.Page)}
	if inv.Args != nil {
		out.Args = append([]byte(nil), inv.Args...)
	}
	return out
}

// applyReleased applies ordered updates to semantics, logs them, and feeds
// dissemination. Updates whose effects already arrived via state transfer
// (full snapshot or a per-page fetch) advance the coherence accounting but
// are not re-applied to semantics — re-applying an incremental append would
// duplicate content.
func (o *Object) applyReleased(released []*coherence.Update) {
	// Unconditional: a Submit can advance the applied vector without
	// releasing anything (an eventual-model write losing the LWW race), and
	// the digest must advertise that component or children would demand it
	// forever. A spurious mark costs one snapshot rebuild at the next
	// heartbeat, nothing on idle stores.
	o.markDigestStale()
	// One clock read covers the whole release set: the propagation-lag
	// histogram measures network+ordering delay, not intra-batch apply cost.
	var nowNanos int64
	if len(released) > 0 && (o.obsv.lag != nil || o.traceOn()) {
		nowNanos = o.env.Now().UnixNano()
	}
	for _, u := range released {
		if !o.coveredByState(u) {
			if err := o.env.ApplyOp(u); err != nil {
				// Semantics rejected the op (e.g. malformed args);
				// coherence-wise it is applied — record and continue.
				o.stats.ReadsFailed++
			}
		}
		o.stats.UpdatesApplied++
		o.obsv.applied.Inc()
		if u.WallNanos > 0 {
			// The headline metric: update age at apply, from the origin's
			// wall-clock stamp. On one machine (memnet, tests) the clocks
			// are the same; across real deployments the series carries the
			// usual NTP skew caveat.
			o.obsv.lag.Observe(nowNanos - u.WallNanos)
		}
		if o.traceOn() {
			o.emit("update_applied", "wid="+u.Write.String()+" page="+u.Inv.Page+
				" lag="+strconv.FormatInt(nowNanos-u.WallNanos, 10)+"ns")
		}
		o.appendLog(u)
	}
	o.disseminate(released)
	if len(released) > 0 {
		o.reconsiderParked()
	}
	o.maybeCompact()
}

// reapplyBeyond re-applies logged updates the snapshot vector does not
// cover (restricted to one page when page != ""). A state transfer installs
// the sender's content wholesale; when this replica had already applied
// ops the snapshot predates — a reply overtaken by later pushes, or a
// retried subscribe's stale ack — ApplyFull/ApplyElement would silently
// roll that content back while the engine keeps its newer applied state,
// and no digest would ever flag the loss. Replaying the log's tail on top
// of the snapshot reconstructs exactly snapshot ∪ newer-local-ops.
func (o *Object) reapplyBeyond(v *msg.Vec, page string) {
	for _, u := range o.log {
		if page != "" && u.Inv.Page != page {
			continue
		}
		if !v.CoversWrite(u.Write) {
			if err := o.env.ApplyOp(u); err != nil {
				o.stats.ReadsFailed++
			}
		}
	}
}

// coveredByState reports whether u's content effects already arrived via
// state transfer.
func (o *Object) coveredByState(u *coherence.Update) bool {
	if o.fetchVec.CoversWrite(u.Write) {
		return true
	}
	if u.Inv.Page == "" {
		return false
	}
	return o.pageVec[u.Inv.Page].CoversWrite(u.Write)
}

func (o *Object) appendLog(u *coherence.Update) {
	o.log = append(o.log, u)
	if len(o.log) > o.logLimit {
		o.log = o.log[len(o.log)-o.logLimit:]
		o.logPruned = true
	}
}

// --- dissemination ----------------------------------------------------------

// disseminate propagates newly applied updates to subscribed children per
// the strategy's propagation, initiative, instant, and coherence-transfer
// parameters. It accepts the whole release set at once so updates that
// became applicable together travel together.
func (o *Object) disseminate(ups []*coherence.Update) {
	if len(ups) == 0 || len(o.children) == 0 || o.strat.Initiative == strategy.Pull {
		return // pull children fetch on their own schedule
	}
	if o.strat.Instant == strategy.Lazy {
		o.lazyUpdates = append(o.lazyUpdates, ups...)
		for _, u := range ups {
			if u.Inv.Page != "" {
				o.lazyPages[u.Inv.Page] = true
			}
		}
		o.armLazy()
		return
	}
	if o.relayDepth > 0 {
		// A batch arrival is mid-fan-in: collect the released updates and
		// relay them as one frame when the whole batch has been processed.
		o.relayBuf = append(o.relayBuf, ups...)
		for _, u := range ups {
			if u.Inv.Page != "" {
				o.relayPages[u.Inv.Page] = true
			}
		}
		return
	}
	o.shipNow(ups, pageSet(ups))
}

// pageSet collects the distinct non-empty pages the updates touch.
func pageSet(ups []*coherence.Update) map[string]bool {
	pages := make(map[string]bool, len(ups))
	for _, u := range ups {
		if u.Inv.Page != "" {
			pages[u.Inv.Page] = true
		}
	}
	return pages
}

// beginRelayBatch opens a relay collection scope: released updates are
// buffered instead of shipped until the matching endRelayBatch.
func (o *Object) beginRelayBatch() {
	if o.relayDepth == 0 && o.relayPages == nil {
		o.relayPages = make(map[string]bool, 4)
	}
	o.relayDepth++
}

// endRelayBatch closes the scope and ships everything collected as one
// coherence transfer (one KindUpdateBatch frame for operation shipping, one
// invalidation/notification/snapshot for the other transfer types).
func (o *Object) endRelayBatch() {
	o.relayDepth--
	if o.relayDepth > 0 {
		return
	}
	ups := o.relayBuf
	pages := o.relayPages
	o.relayBuf = nil
	o.relayPages = nil
	if len(ups) == 0 {
		return
	}
	o.shipNow(ups, pages)
}

// armLazy schedules the aggregated flush.
func (o *Object) armLazy() {
	if o.lazyArmed {
		return
	}
	o.lazyArmed = true
	o.lazyTimer = o.env.AfterFunc(o.strat.LazyInterval, func() {
		o.lazyArmed = false
		o.flushLazy()
	})
}

// flushLazy ships everything aggregated since the last period.
func (o *Object) flushLazy() {
	if o.closed || len(o.lazyUpdates) == 0 && len(o.lazyPages) == 0 {
		return
	}
	ups := o.lazyUpdates
	pages := o.lazyPages
	o.lazyUpdates = nil
	o.lazyPages = make(map[string]bool)
	o.stats.LazyFlushes++
	o.shipNow(ups, pages)
}

// shipNow performs the actual coherence transfer to children.
func (o *Object) shipNow(ups []*coherence.Update, pages map[string]bool) {
	tos := o.Children()
	if len(tos) == 0 {
		return
	}
	o.obsv.disseminated.Add(uint64(len(ups)))
	if o.traceOn() {
		o.emit("updates_shipped", "n="+strconv.Itoa(len(ups))+" children="+strconv.Itoa(len(tos)))
	}
	switch o.strat.Propagation {
	case strategy.PropagateInvalidate:
		inv := &msg.Message{
			Kind:   msg.KindInvalidate,
			Object: o.object,
			From:   o.addr,
			Store:  o.self,
			Pages:  pageList(pages),
		}
		if n := len(ups); n > 0 {
			inv.Write = ups[n-1].Write
			inv.WallNanos = ups[n-1].WallNanos
		}
		o.multicast(tos, inv)
		return
	case strategy.PropagateUpdate:
		switch o.strat.CoherenceTransfer {
		case strategy.CoherenceNotification:
			n := &msg.Message{
				Kind:   msg.KindNotify,
				Object: o.object,
				From:   o.addr,
				Store:  o.self,
				Pages:  pageList(pages),
			}
			o.multicast(tos, n)
		case strategy.CoherencePartial:
			// Operation shipping: a single update travels as its marshalled
			// write invocation; an aggregated flush ships all N updates in
			// one KindUpdateBatch frame, amortising the envelope.
			o.shipOps(ups, func(m *msg.Message) { o.multicast(tos, m) })
		case strategy.CoherenceFull:
			// Aggregation pays off here: one snapshot replaces the whole
			// batch.
			snap, err := o.env.Snapshot()
			if err != nil {
				return
			}
			m := &msg.Message{
				Kind:      msg.KindUpdate,
				Object:    o.object,
				From:      o.addr,
				Store:     o.self,
				Payload:   snap,
				VVec:      o.appliedVec(),
				GlobalSeq: o.engine.Global(),
				WallNanos: ups[len(ups)-1].WallNanos,
			}
			o.multicast(tos, m)
		}
	}
}

// updateMsg converts an update to its wire form (operation shipping).
func (o *Object) updateMsg(u *coherence.Update) *msg.Message {
	return &msg.Message{
		Kind:      msg.KindUpdate,
		Object:    o.object,
		From:      o.addr,
		Store:     o.self,
		Write:     u.Write,
		GlobalSeq: u.GlobalSeq,
		Stamp:     u.Stamp,
		Deps:      msg.VecFrom(u.Deps),
		Inv:       u.Inv,
		WallNanos: u.WallNanos,
	}
}

// batchMsg packs N updates into one KindUpdateBatch frame.
func (o *Object) batchMsg(ups []*coherence.Update) *msg.Message {
	entries := make([]msg.BatchUpdate, len(ups))
	for i, u := range ups {
		entries[i] = msg.BatchUpdate{
			Write:     u.Write,
			GlobalSeq: u.GlobalSeq,
			Stamp:     u.Stamp,
			Deps:      msg.VecFrom(u.Deps),
			Inv:       u.Inv,
			WallNanos: u.WallNanos,
		}
	}
	return &msg.Message{
		Kind:   msg.KindUpdateBatch,
		Object: o.object,
		From:   o.addr,
		Store:  o.self,
		Batch:  entries,
	}
}

// shipOps hands updates to deliver as wire frames: one KindUpdate for a
// single update, one KindUpdateBatch for several, split across frames when
// a flush exceeds the wire format's per-frame entry count (the codec would
// otherwise silently truncate the tail). Every batching decision (and its
// stats accounting) funnels through here.
func (o *Object) shipOps(ups []*coherence.Update, deliver func(*msg.Message)) {
	for len(ups) > 0 {
		chunk := ups
		if len(chunk) > msg.MaxBatch {
			chunk = chunk[:msg.MaxBatch]
		}
		ups = ups[len(chunk):]
		if len(chunk) == 1 {
			deliver(o.updateMsg(chunk[0]))
			continue
		}
		o.stats.BatchesSent++
		o.stats.BatchedUpdates += uint64(len(chunk))
		deliver(o.batchMsg(chunk))
	}
}

// sendUpdates ships updates to one destination, batching when more than one
// is pending (demand replay, gossip deltas).
func (o *Object) sendUpdates(to string, ups []*coherence.Update) {
	o.shipOps(ups, func(m *msg.Message) { o.send(to, m) })
}

func pageList(pages map[string]bool) []string {
	out := make([]string, 0, len(pages))
	for p := range pages {
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}

// --- update reception --------------------------------------------------------

// onUpdate handles a pushed or demanded coherence update. Full-state
// updates (Payload set) bypass the engine and merge the sender's vector;
// operation updates go through the ordering engine.
func (o *Object) onUpdate(m *msg.Message) {
	o.revalEpoch++
	if len(m.Payload) > 0 {
		// Aggregated full-state update.
		if m.VVec.Len() > 0 && m.VVec.CoveredBy(o.applied()) {
			return // stale or duplicate snapshot
		}
		if err := o.env.ApplyFull(m.Payload); err != nil {
			return
		}
		o.fullFetches++
		o.reapplyBeyond(&m.VVec, "")
		m.VVec.MergeInto(o.fetchVec)
		o.engine.Seed(m.VVec.Version(), m.GlobalSeq)
		o.markDigestStale()
		o.invalid = make(map[string]bool)
		o.allInvalid = false
		o.relayFull(m)
		o.reconsiderParked()
		return
	}
	o.submitOp(updateFromMsg(m))
}

// onUpdateBatch fans an aggregated KindUpdateBatch frame into the ordering
// engine entry by entry, exactly as if each update had arrived in its own
// KindUpdate message — except for dissemination: everything the batch
// releases (including previously buffered updates it unblocks) is collected
// and relayed to this store's children as one batch frame, so batching is
// preserved hop by hop down the hierarchy.
func (o *Object) onUpdateBatch(m *msg.Message) {
	o.revalEpoch++
	o.beginRelayBatch()
	defer o.endRelayBatch()
	for i := range m.Batch {
		e := &m.Batch[i]
		o.submitOp(&coherence.Update{
			Write:     e.Write,
			GlobalSeq: e.GlobalSeq,
			Deps:      e.Deps.VC(),
			Stamp:     e.Stamp,
			Inv:       cloneInv(e.Inv),
			WallNanos: e.WallNanos,
		})
	}
}

// submitOp runs one operation update through the ordering engine and applies
// whatever it releases.
func (o *Object) submitOp(u *coherence.Update) {
	released := o.submitLogged(u)
	if len(released) == 0 && o.engine.Pending() > 0 {
		o.stats.UpdatesBuffered++
		// A gap was detected. Under object-outdate = demand the store
		// immediately requests the missing updates — this is how, per
		// §4.2, "reliability comes as a side-effect of the coherence
		// model" on unreliable transports.
		if o.strat.ObjectOutdate == strategy.Demand {
			o.demandFromParent()
		}
	}
	for _, r := range released {
		if p := r.Inv.Page; p != "" {
			delete(o.invalid, p)
		}
	}
	o.applyReleased(released)
}

// relayFull forwards a full-state update down to this store's own children
// (multi-layer hierarchies, Figure 2).
func (o *Object) relayFull(m *msg.Message) {
	if len(o.children) == 0 || o.strat.Initiative == strategy.Pull {
		return
	}
	fwd := *m
	fwd.From = o.addr
	fwd.Store = o.self
	o.multicast(o.Children(), &fwd)
}

// onInvalidate marks pages stale; under object-outdate = demand it
// refreshes immediately, otherwise the next access fetches.
func (o *Object) onInvalidate(m *msg.Message) {
	o.markInvalid(m.Pages)
	if o.strat.ObjectOutdate == strategy.Demand {
		o.refreshInvalid(m.Pages)
	}
	// Relay to children so lower layers learn of the change too.
	if len(o.children) > 0 && o.strat.Initiative == strategy.Push {
		fwd := *m
		fwd.From = o.addr
		fwd.Store = o.self
		o.multicast(o.Children(), &fwd)
	}
}

// onNotify handles notification-only coherence transfer: same invalidation
// machinery, but the message promises no content at all.
func (o *Object) onNotify(m *msg.Message) {
	o.markInvalid(m.Pages)
	if o.strat.ObjectOutdate == strategy.Demand {
		o.refreshInvalid(m.Pages)
	}
	if len(o.children) > 0 && o.strat.Initiative == strategy.Push {
		fwd := *m
		fwd.From = o.addr
		fwd.Store = o.self
		o.multicast(o.Children(), &fwd)
	}
}

func (o *Object) markInvalid(pages []string) {
	if len(pages) == 0 {
		o.allInvalid = true
		o.stats.Invalidations++
		return
	}
	for _, p := range pages {
		// Page names arrive zero-copy decoded; the invalid set may hold
		// them past the frame's lifetime, so clone (see cloneInv).
		o.invalid[strings.Clone(p)] = true
		o.stats.Invalidations++
	}
}

// refreshInvalid fetches fresh state for invalidated pages right away.
func (o *Object) refreshInvalid(pages []string) {
	if o.parent == "" {
		return
	}
	if len(pages) == 0 || o.strat.AccessTransfer == strategy.TransferFull {
		o.fetch("")
		return
	}
	for _, p := range pages {
		o.fetch(p)
	}
}

// --- demand / state transfer -------------------------------------------------

// demandFromParent asks the parent for every update beyond our applied
// vector, and arms the retry timer so a lost demand (or lost reply) on an
// otherwise quiet object re-requests after a bounded delay instead of
// stranding until the next arrival.
func (o *Object) demandFromParent() {
	if o.parent == "" {
		return
	}
	// Every direct call opens a fresh retry cycle; an exhausted earlier
	// cycle must not leave retries permanently disabled (retryDemand
	// restores its own count after this reset).
	o.demandRetries = 0
	o.stats.DemandsSent++
	o.obsv.demands.Inc()
	if o.traceOn() {
		o.emit("demand_sent", "to="+o.parent)
	}
	d := &msg.Message{
		Kind:   msg.KindDemandUpdate,
		Object: o.object,
		From:   o.addr,
		Store:  o.self,
		VVec:   o.appliedVec(),
	}
	o.send(o.parent, d)
	o.demandEpoch = o.revalEpoch
	o.armDemandRetry()
}

// maxDemandRetries bounds re-requests per unanswered-demand cycle, so a
// dead parent is not hammered forever (the cycle resets on any coherence
// response).
const maxDemandRetries = 16

// armDemandRetry schedules one retry check; it is a no-op when a check is
// already pending or retries are disabled.
func (o *Object) armDemandRetry() {
	if o.demandRetryArmed || o.closed || o.demandRetry <= 0 {
		return
	}
	o.demandRetryArmed = true
	o.demandRetryTimer = o.env.AfterFunc(o.demandRetry, func() {
		o.demandRetryArmed = false
		o.retryDemand()
	})
}

// retryDemand re-sends the demand if no coherence response arrived since it
// was issued and something is still outstanding (buffered updates awaiting
// predecessors, or parked reads).
func (o *Object) retryDemand() {
	if o.closed {
		return
	}
	if o.revalEpoch != o.demandEpoch {
		o.demandRetries = 0 // the parent answered; cycle complete
		o.digestGapDemand = false
		return
	}
	// A digest-initiated demand chases a silent gap: nothing is buffered
	// and no read is parked, yet the demand (or its reply) may have been
	// lost — without the flag this check would end the cycle and recovery
	// would wait a whole extra heartbeat.
	if o.engine.Pending() == 0 && len(o.parked) == 0 && !o.digestGapDemand {
		o.demandRetries = 0 // nothing outstanding to chase
		return
	}
	if o.demandRetries >= maxDemandRetries {
		return
	}
	// demandFromParent starts a fresh cycle (resetting the counter), so
	// carry the retry count across the re-send explicitly.
	retries := o.demandRetries + 1
	o.demandFromParent()
	o.demandRetries = retries
}

// fetch requests state per the access-transfer type: one element
// (partial) or the full document.
func (o *Object) fetch(page string) {
	if o.parent == "" {
		return
	}
	full := o.strat.AccessTransfer == strategy.TransferFull || page == ""
	if full {
		if o.fetching {
			return
		}
		o.fetching = true
	}
	o.stats.DemandsSent++
	o.obsv.demands.Inc()
	if o.traceOn() {
		o.emit("demand_sent", "to="+o.parent+" state_page="+page)
	}
	req := &msg.Message{
		Kind:   msg.KindStateRequest,
		Object: o.object,
		From:   o.addr,
		Store:  o.self,
	}
	if !full {
		req.Pages = []string{page}
	}
	o.send(o.parent, req)
}

// onDemand serves a child's demand-update: replay logged updates it lacks,
// or fall back to full state when the log genuinely cannot bring the
// requester up to date — because history was pruned, or because this
// store's own knowledge arrived by state transfer (seeded writes are never
// logged). Answering "nothing missing" in that situation would let the
// requester mark content it never received as covered.
func (o *Object) onDemand(m *msg.Message) {
	if !o.logCovers(&m.VVec) {
		o.sendFullState(m.From, nil)
		return
	}
	missing := make([]*coherence.Update, 0, 8)
	for _, u := range o.log {
		if !m.VVec.CoversWrite(u.Write) {
			missing = append(missing, u)
		}
	}
	if len(missing) == 0 {
		// Nothing to send: answer anyway so pull-on-access revalidations
		// complete instead of timing out.
		ack := &msg.Message{
			Kind:   msg.KindUpdateAck,
			Object: o.object,
			From:   o.addr,
			Store:  o.self,
			VVec:   o.appliedVec(),
		}
		o.send(m.From, ack)
		return
	}
	// Replay as one batch frame instead of one message per logged update.
	o.sendUpdates(m.From, missing)
}

// logCovers reports whether the retained log suffices to bring a requester
// with vector v up to date: for every client, the requester must already
// know everything older than the log's earliest retained write from that
// client.
func (o *Object) logCovers(v *msg.Vec) bool {
	minSeq := make(map[ids.ClientID]uint64, 4)
	for _, u := range o.log {
		if s, ok := minSeq[u.Write.Client]; !ok || u.Write.Seq < s {
			minSeq[u.Write.Client] = u.Write.Seq
		}
	}
	for c, applied := range o.applied() {
		need := applied // client absent from log: requester must know it all
		if s, ok := minSeq[c]; ok {
			need = s - 1
		}
		if v.Get(c) < need {
			return false
		}
	}
	return true
}

// onStateRequest serves partial or full state.
func (o *Object) onStateRequest(m *msg.Message) {
	if len(m.Pages) == 0 {
		o.sendFullState(m.From, m)
		return
	}
	r := m.Reply(msg.KindStateReply)
	r.From = o.addr
	r.Store = o.self
	r.VVec = o.appliedVec()
	r.Pages = m.Pages[:1]
	data, err := o.env.SnapshotElement(m.Pages[0])
	if err != nil {
		r.Status = msg.StatusNotFound
		r.Err = err.Error()
	} else {
		r.Payload = data
	}
	o.send(m.From, r)
}

func (o *Object) sendFullState(to string, req *msg.Message) {
	snap, err := o.env.Snapshot()
	if err != nil {
		return
	}
	r := &msg.Message{
		Kind:      msg.KindStateReply,
		Object:    o.object,
		From:      o.addr,
		Store:     o.self,
		Payload:   snap,
		VVec:      o.appliedVec(),
		GlobalSeq: o.engine.Global(),
	}
	if req != nil {
		r.NetSeq = req.NetSeq
	}
	o.send(to, r)
}

// onStateReply installs fetched state. A partial (per-page) reply only
// advances that page's knowledge; a full snapshot seeds the ordering engine
// so pushed op updates the snapshot already reflects are not re-applied.
func (o *Object) onStateReply(m *msg.Message) {
	o.revalEpoch++
	if len(m.Pages) > 0 {
		// Cloned: the name is retained as a pageVec key and a semantics
		// element key, long past this frame (see cloneInv).
		page := strings.Clone(m.Pages[0])
		if m.Status == msg.StatusNotFound {
			// The parent lacks it too; fail parked reads for that page.
			o.failParkedPage(page, m.Err)
			delete(o.invalid, page)
			return
		}
		// Same stale-snapshot guard as the full branch below and
		// onSubscribeAck: demand retries and link-level duplication mean
		// several replies can be in flight, and a late one whose vector this
		// replica already covers must not roll the page back. reapplyBeyond
		// cannot fully repair such a rollback — it replays only ops that went
		// through the log, and ops whose effects arrived inside an earlier
		// full state transfer were never logged — so an unguarded overwrite
		// leaves the page with a mid-sequence gap readers can observe (an
		// MW/PRAM violation). An invalidated page is the exception: its local
		// content is outdated by definition, so the fetch is taken as-is.
		if m.VVec.Len() > 0 && m.VVec.CoveredBy(o.applied()) &&
			!o.invalid[page] && !o.allInvalid {
			o.reconsiderParked()
			return
		}
		if err := o.env.ApplyElement(page, m.Payload); err != nil {
			return
		}
		// The fetched page is the parent's content at reply time; restore any
		// locally applied ops the reply predates (reordered replies, a reply
		// overtaken by pushes) — see reapplyBeyond.
		o.reapplyBeyond(&m.VVec, page)
		delete(o.invalid, page)
		pv, ok := o.pageVec[page]
		if !ok {
			pv = ids.NewVersionVec(4)
			o.pageVec[page] = pv
		}
		m.VVec.MergeInto(pv)
	} else {
		o.fetching = false
		// Same stale-snapshot guard as onSubscribeAck: a delayed reply whose
		// vector we already cover must not roll semantics content back.
		if m.VVec.Len() > 0 && m.VVec.CoveredBy(o.applied()) {
			o.reconsiderParked()
			return
		}
		if err := o.env.ApplyFull(m.Payload); err != nil {
			return
		}
		o.fullFetches++
		o.reapplyBeyond(&m.VVec, "")
		o.invalid = make(map[string]bool)
		o.allInvalid = false
		m.VVec.MergeInto(o.fetchVec)
		o.engine.Seed(m.VVec.Version(), m.GlobalSeq)
		o.markDigestStale()
	}
	o.reconsiderParked()
}

// failParkedPage answers parked reads for one page with not-found.
func (o *Object) failParkedPage(page, errText string) {
	rest := o.parked[:0]
	for _, p := range o.parked {
		if p.m.Inv.Page == page {
			o.stats.ReadsFailed++
			o.replyErr(p.m, msg.StatusNotFound, errText)
			continue
		}
		rest = append(rest, p)
	}
	o.parked = rest
}

// --- subscription -------------------------------------------------------------

// onSubscribe registers a child store and bootstraps it with full state.
func (o *Object) onSubscribe(m *msg.Message) {
	// The child address is retained for the replica's lifetime; clone it so
	// a zero-copy decoded string does not pin its transport frame (tcpnet
	// handoff chunks, memnet wire buffers) for that long.
	if child := strings.Clone(m.From); !o.children[child] {
		o.children[child] = true
		// Durable stores log the children set: a restarted permanent store
		// anti-entropies the tail from exactly these addresses before
		// serving (see recover).
		o.walAppendChild(child, false)
	}
	snap, err := o.env.Snapshot()
	if err != nil {
		return
	}
	r := m.Reply(msg.KindSubscribeAck)
	r.From = o.addr
	r.Store = o.self
	r.Payload = snap
	r.VVec = o.appliedVec()
	r.GlobalSeq = o.engine.Global()
	o.send(m.From, r)
	o.armDigest()
}

// onSubscribeAck installs the bootstrap state received from the parent and
// completes the subscription handshake (stopping the re-send timer).
//
// Stale acks are discarded: subscribe retries mean several acks can be in
// flight, and a late one whose vector this replica already covers must not
// ApplyFull — replacing newer semantics content with an older snapshot
// while the engine keeps its newer applied state would silently lose the
// overwritten updates forever (no digest would ever flag the gap).
func (o *Object) onSubscribeAck(m *msg.Message) {
	o.subAcked = true
	o.revalEpoch++
	if o.reparenting {
		o.reparenting = false
		o.stats.ReparentsDone++
		o.obsv.reparents.Inc()
		if o.traceOn() {
			o.emit("reparent_done", "parent="+m.From)
		}
	}
	o.armParentWatch()
	if m.VVec.Len() > 0 && m.VVec.CoveredBy(o.applied()) {
		o.reconsiderParked()
		return
	}
	if len(m.Payload) > 0 {
		if err := o.env.ApplyFull(m.Payload); err != nil {
			return
		}
		o.fullFetches++
		o.reapplyBeyond(&m.VVec, "")
	}
	m.VVec.MergeInto(o.fetchVec)
	o.engine.Seed(m.VVec.Version(), m.GlobalSeq)
	o.markDigestStale()
	o.reconsiderParked()
}

// onUnsubscribe removes a departing child from the children set (the
// drop-replica control path); further dissemination skips it.
func (o *Object) onUnsubscribe(m *msg.Message) {
	if o.children[m.From] {
		delete(o.children, m.From)
		o.walAppendChild(m.From, true)
	}
}

// SubscribeToParent initiates the child->parent subscription and arms the
// pull poller when the strategy asks for one. The subscribe is retried on a
// bounded timer until the parent's bootstrap ack arrives (see sendSubscribe).
func (o *Object) SubscribeToParent() {
	if o.parent == "" {
		return
	}
	o.subWanted = true
	o.sendSubscribe()
	o.armParentWatch()
	if o.strat.Initiative == strategy.Pull && o.strat.PullInterval > 0 {
		o.armPoll()
	}
}

// UnsubscribeFromParent tells the parent to stop pushing to this replica
// (runtime replica removal). It also cancels any subscribe retries.
func (o *Object) UnsubscribeFromParent() {
	if o.parent == "" || !o.subWanted {
		return
	}
	o.subWanted = false
	if o.subTimer != nil {
		o.subTimer.Stop()
	}
	u := &msg.Message{
		Kind:   msg.KindUnsubscribe,
		Object: o.object,
		From:   o.addr,
		Store:  o.self,
	}
	o.send(o.parent, u)
}

// maxSubscribeRetries bounds one subscribe cycle, so a dead parent is not
// dialled forever. Exhausting the budget is no longer terminal: the replica
// re-parents to another live replica when the resolver offers one, or cools
// down and re-dials the same parent later (see reparent.go). A digest from
// the parent heard meanwhile also restarts the cycle immediately.
const maxSubscribeRetries = 32

// sendSubscribe transmits one subscribe frame and arms the retry timer: a
// subscribe (or its ack) lost on a lossy link must not strand the replica
// outside the children set, so the child re-sends every demandRetry until
// the bootstrap ack arrives. Duplicate subscribes are idempotent at the
// parent (children is a set; the extra bootstrap snapshot is absorbed like
// any full-state transfer).
func (o *Object) sendSubscribe() {
	o.stats.SubscribesSent++
	s := &msg.Message{
		Kind:   msg.KindSubscribe,
		Object: o.object,
		From:   o.addr,
		Store:  o.self,
	}
	o.send(o.parent, s)
	o.armSubscribeRetry()
}

// armSubscribeRetry schedules the next subscribe re-send check; a no-op
// when already armed, acked, disabled (demandRetry <= 0), or exhausted.
func (o *Object) armSubscribeRetry() {
	if o.subArmed || o.closed || o.subAcked || o.demandRetry <= 0 {
		return
	}
	if o.subRetries >= maxSubscribeRetries {
		o.reparent(true)
		return
	}
	o.subArmed = true
	o.subTimer = o.env.AfterFunc(o.demandRetry, func() {
		o.subArmed = false
		if o.closed || o.subAcked || !o.subWanted {
			return
		}
		o.subRetries++
		o.sendSubscribe()
	})
}

// armPoll schedules periodic demand pulls (TTL-style refresh).
func (o *Object) armPoll() {
	if o.pollArmed || o.closed {
		return
	}
	o.pollArmed = true
	o.pollTimer = o.env.AfterFunc(o.strat.PullInterval, func() {
		o.pollArmed = false
		if o.closed {
			return
		}
		o.demandFromParent()
		o.armPoll()
	})
}

// --- small helpers -------------------------------------------------------------

func (o *Object) send(to string, m *msg.Message) {
	m.Object = o.object
	if m.From == "" {
		m.From = o.addr
	}
	_ = o.env.Send(to, m)
}

// sendRaw sends without overriding From (used when forwarding client
// requests so replies go straight back to the client).
func (o *Object) sendRaw(to string, m *msg.Message) {
	m.Object = o.object
	_ = o.env.Send(to, m)
}

func (o *Object) multicast(tos []string, m *msg.Message) {
	m.Object = o.object
	_ = o.env.Multicast(tos, m)
}

func (o *Object) replyErr(m *msg.Message, st msg.Status, text string) {
	var r *msg.Message
	switch m.Kind {
	case msg.KindReadRequest:
		r = m.Reply(msg.KindReadReply)
	case msg.KindWriteRequest:
		r = m.Reply(msg.KindWriteReply)
	default:
		return
	}
	r.From = o.addr
	r.Store = o.self
	r.Status = st
	r.Err = text
	o.send(m.From, r)
}

// Retune replaces the object's implementation parameters at runtime — the
// dynamic adaptation §3.3 anticipates ("ideally, the implementation
// parameters can be modified dynamically as the usage characteristics of an
// object change"). The coherence model itself is fixed at creation (it
// defines the object's contract with clients); only the Table 1
// dissemination parameters may change. Pending lazy buffers are flushed
// under the old parameters first.
func (o *Object) Retune(s strategy.Strategy) error {
	if err := s.Validate(); err != nil {
		return err
	}
	if s.Model != o.strat.Model {
		return errors.New("replication: Retune cannot change the coherence model")
	}
	if s.Writers != o.strat.Writers {
		return errors.New("replication: Retune cannot change the write set")
	}
	// Drain aggregation state under the old policy so nothing is stranded.
	if o.lazyTimer != nil {
		o.lazyTimer.Stop()
	}
	o.lazyArmed = false
	o.flushLazy()
	if o.pollTimer != nil {
		o.pollTimer.Stop()
	}
	o.pollArmed = false
	o.strat = s
	if s.Initiative == strategy.Pull && s.PullInterval > 0 && o.parent != "" {
		o.armPoll()
	}
	return nil
}

// Strategy returns the currently active strategy.
func (o *Object) Strategy() strategy.Strategy { return o.strat }
