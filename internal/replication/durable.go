package replication

import (
	"errors"
	"strconv"
	"time"

	"repro/internal/coherence"
	"repro/internal/ids"
	"repro/internal/msg"
	"repro/internal/wal"
)

// This file is the durability side of the replication object: WAL append
// hooks on the admission/ordering path, snapshot compaction, and
// crash-restart recovery with the recover-then-serve gate (the pattern
// nameserv peers proved: replay local state, anti-entropy the tail from
// the stores that outlived the crash, answer StatusRetry meanwhile).

// DurabilityInfo is a thread-unsafe snapshot of the durable-store state,
// exported through store accessors and the control RPC.
type DurabilityInfo struct {
	// Durable reports whether this replica has a WAL at all.
	Durable bool `json:"durable"`
	// WALBytes / WALRecords measure the log tail since the last snapshot.
	WALBytes   int64  `json:"wal_bytes"`
	WALRecords uint64 `json:"wal_records"`
	// LastSnapshot is the applied vector at the last compaction point (nil
	// before the first snapshot).
	LastSnapshot ids.VersionVec `json:"last_snapshot,omitempty"`
	// Recovering reports whether the recover-then-serve gate is closed.
	Recovering bool `json:"recovering"`
	// RecoveryNanos is how long the last restart took from replay start to
	// gate open (0 if never recovered).
	RecoveryNanos uint64 `json:"recovery_nanos"`
	// TornTail counts corrupt WAL tails truncated on recovery.
	TornTail uint64 `json:"torn_tail"`
}

// Durability reports the durable-store state (event-loop only; stores wrap
// it in a posted accessor).
func (o *Object) Durability() DurabilityInfo {
	info := DurabilityInfo{
		Durable:       o.wal != nil,
		Recovering:    o.recovering,
		RecoveryNanos: o.stats.RecoveryNanos,
		TornTail:      o.stats.WALTornTail,
	}
	if o.wal != nil {
		info.WALBytes = o.wal.Size()
		info.WALRecords = o.wal.Appends()
	}
	if o.lastSnapVec != nil {
		info.LastSnapshot = o.lastSnapVec.Clone()
	}
	return info
}

// Recovering reports whether the recover-then-serve gate is still closed.
func (o *Object) Recovering() bool { return o.recovering }

// --- append hooks ------------------------------------------------------------

// submitLogged is engine.Submit for durable replicas: the stamped update is
// appended to the WAL before it meets the engine, because the write ack goes
// out even when the engine only buffers the update — logging at apply time
// would lose acknowledged-but-buffered writes across a crash. Updates the
// engine already covers are not re-logged (the engines deduplicate them
// anyway), which keeps demand replays and link duplicates out of the log.
func (o *Object) submitLogged(u *coherence.Update) []*coherence.Update {
	if o.wal != nil && !o.walReplaying && !o.engine.Covers(u.Write) {
		if err := o.wal.AppendUpdate(u); err == nil {
			o.walAfterAppend()
		}
	}
	return o.engine.Submit(u)
}

// walAppendAdmit logs one admission decision (watermark/holes transition),
// so a replayed request that was admitted-but-unacked before the crash is
// recognised as a replay after it. Ordering invariant: callers append the
// admission AFTER the stamped update record it admitted. A crash between
// the two then leaves update-without-admit — recoverable, because recovery
// seeds the watermark from update records too — never admit-without-update,
// which would make a restarted store ack a retry whose content it lost and
// stall the client's stream under the ordered models.
func (o *Object) walAppendAdmit(c ids.ClientID, seq uint64) {
	if o.wal == nil || o.walReplaying {
		return
	}
	if err := o.wal.AppendAdmit(c, seq); err == nil {
		o.walAfterAppend()
	}
}

// walAppendChild logs a children-set change, so a restarted store knows whom
// to anti-entropy from (and push to) before any new subscribe arrives.
func (o *Object) walAppendChild(addr string, remove bool) {
	if o.wal == nil || o.walReplaying {
		return
	}
	if err := o.wal.AppendChild(addr, remove); err == nil {
		o.walAfterAppend()
	}
}

// walAfterAppend is the common post-append accounting: stats and the
// interval-fsync timer.
func (o *Object) walAfterAppend() {
	o.stats.WALAppends++
	o.obsv.walAppends.Inc()
	if o.walPolicy == wal.SyncInterval && !o.walSyncArmed && o.walSyncInterval > 0 {
		o.walSyncArmed = true
		o.walSyncTimer = o.env.AfterFunc(o.walSyncInterval, func() {
			o.walSyncArmed = false
			if o.closed || o.wal == nil {
				return
			}
			_ = o.wal.Sync()
		})
	}
}

// walBarrier makes every appended record stable before an ack leaves, under
// the always policy. Called on the ack path; a no-op otherwise.
func (o *Object) walBarrier() {
	if o.wal != nil && o.walPolicy == wal.SyncAlways {
		if o.obsv.walSync != nil {
			start := o.env.Now()
			_ = o.wal.Sync()
			o.obsv.walSync.Record(o.env.Now().Sub(start))
			return
		}
		_ = o.wal.Sync()
	}
}

// --- group commit ------------------------------------------------------------

// pendingAck is a write reply parked for the batch barrier.
type pendingAck struct {
	to string
	r  *msg.Message
}

// SetGroupCommit switches the replica between the synchronous barrier (the
// default: every ack fsyncs on its own, as direct Handle callers expect) and
// batch mode, where acks park until the owning store's event loop calls
// FlushAcks after draining its queue. The loop plays the tcpnet writev
// leader: it flushes the whole queue with one fdatasync, so N concurrent
// writers admitted in one drain pay one disk barrier instead of N.
func (o *Object) SetGroupCommit(on bool) {
	if !on {
		o.FlushAcks()
	}
	o.groupCommit = on
}

// deferBarrier reports whether acks should park for a batched barrier
// instead of syncing inline. Only the always policy has a barrier to
// coalesce; other policies keep their (cheaper) inline path.
func (o *Object) deferBarrier() bool {
	return o.groupCommit && o.wal != nil && o.walPolicy == wal.SyncAlways
}

// FlushAcks syncs the log once and releases every parked write ack — the
// group commit. Safe to call unconditionally; a no-op when nothing parked.
func (o *Object) FlushAcks() {
	if len(o.ackPending) == 0 {
		return
	}
	o.walBarrier()
	o.obsv.commitSize.Observe(int64(len(o.ackPending)))
	if len(o.ackPending) > 1 {
		o.stats.GroupCommits++
	}
	pend := o.ackPending
	o.ackPending = nil
	for i := range pend {
		o.send(pend[i].to, pend[i].r)
	}
}

// --- snapshot compaction -----------------------------------------------------

// maybeCompact snapshots when the log tail has grown past the threshold and
// nothing is buffered (a buffered update's only durable copy is the log, so
// truncating under it would lose it).
func (o *Object) maybeCompact() {
	if o.wal == nil || o.walReplaying || o.snapshotEvery <= 0 {
		return
	}
	if o.wal.Appends() < uint64(o.snapshotEvery) || o.engine.Pending() > 0 {
		return
	}
	_ = o.compact()
}

// Compact forces a snapshot compaction now (tests, control surfaces).
func (o *Object) Compact() error {
	if o.wal == nil {
		return errors.New("replication: replica is not durable")
	}
	if o.engine.Pending() > 0 {
		return errors.New("replication: updates still buffered; their only durable copy is the log")
	}
	return o.compact()
}

func (o *Object) compact() error {
	state, err := o.env.Snapshot()
	if err != nil {
		return err
	}
	snap := &wal.Snapshot{
		State:      state,
		Applied:    o.applied(),
		NextGlobal: o.nextGlobal,
		Lamport:    o.lamport.Now(),
		Children:   o.Children(),
	}
	if g := o.engine.Global(); g > snap.NextGlobal {
		snap.NextGlobal = g
	}
	for c, rec := range o.stamped {
		a := wal.ClientAdmission{Client: c, Max: rec.max}
		for h := range rec.holes {
			a.Holes = append(a.Holes, h)
		}
		snap.Stamped = append(snap.Stamped, a)
	}
	if err := o.wal.WriteSnapshot(snap); err != nil {
		return err
	}
	o.lastSnapVec = snap.Applied.Clone()
	o.stats.WALSnapshots++
	return nil
}

// --- recovery ----------------------------------------------------------------

// recover replays snapshot + WAL tail through the normal machinery (New
// calls it on the owning event loop, before any message is dispatched):
// the snapshot seeds semantics state, the engine, the sequencer, the Lamport
// clock, the admission map, and the children set; the log tail then re-runs
// through the engine exactly as live traffic would, skipping semantics
// re-apply for writes whose content the snapshot already contains (the
// reapplyBeyond rule). If children outlived the crash, the gate closes until
// they answer one anti-entropy round or the grace period expires.
func (o *Object) recover(rec *wal.Recovery) {
	start := o.env.Now()
	o.walReplaying = true
	var snapVec msg.Vec
	if s := rec.Snapshot; s != nil {
		if len(s.State) > 0 {
			_ = o.env.ApplyFull(s.State)
		}
		o.engine.Seed(s.Applied, s.NextGlobal)
		o.fetchVec.Merge(s.Applied)
		snapVec = msg.VecFrom(s.Applied)
		o.lastSnapVec = s.Applied.Clone()
		o.lamport.Witness(s.Lamport)
		if s.NextGlobal > o.nextGlobal {
			o.nextGlobal = s.NextGlobal
		}
		for _, a := range s.Stamped {
			sr := &stampedSeqs{max: a.Max}
			for _, h := range a.Holes {
				if sr.holes == nil {
					sr.holes = make(map[uint64]bool, len(a.Holes))
				}
				sr.holes[h] = true
			}
			o.stamped[a.Client] = sr
		}
		for _, c := range s.Children {
			o.children[c] = true
		}
	}
	for _, r := range rec.Records {
		switch {
		case r.Update != nil:
			u := r.Update
			// Every durable update implies its own admission (the separate
			// admit record may have missed the crash), so the watermark
			// classifies post-restart retries of it as replays.
			o.admitSeq(u.Write.Client, u.Write.Seq)
			o.lamport.Witness(u.Stamp.Time)
			if u.GlobalSeq >= o.nextGlobal {
				o.nextGlobal = u.GlobalSeq + 1
			}
			for _, ru := range o.engine.Submit(u) {
				if !snapVec.CoversWrite(ru.Write) {
					if err := o.env.ApplyOp(ru); err != nil {
						o.stats.ReadsFailed++
					}
				}
				o.stats.UpdatesApplied++
				o.appendLog(ru)
			}
			o.stats.WALReplayed++
		case r.Admit != nil:
			// Re-run the original admission so the watermark/holes state —
			// including the not-yet-logged-as-update case (crash between
			// admission and submit) — matches the pre-crash store.
			o.admitSeq(r.Admit.Client, r.Admit.Seq)
		case r.Child != nil:
			if r.Child.Remove {
				delete(o.children, r.Child.Addr)
			} else {
				o.children[r.Child.Addr] = true
			}
		}
	}
	// A sequencer seeded only from replay must still clear the engine's own
	// high-water mark (sequential model: buffered updates count too).
	if g := o.engine.Global(); g > o.nextGlobal {
		o.nextGlobal = g
	}
	o.stats.WALTornTail += rec.TornTail
	o.markDigestStale()
	o.walReplaying = false
	o.recoverStart = start
	o.stats.RecoveryNanos = uint64(o.env.Now().Sub(start))
	o.obsv.recoveries.Inc()
	if o.traceOn() {
		o.emit("recovered", "replayed="+strconv.FormatUint(o.stats.WALReplayed, 10)+
			" torn_tail="+strconv.FormatUint(o.stats.WALTornTail, 10)+
			" children="+strconv.Itoa(len(o.children)))
	}
	if len(o.children) == 0 {
		return // nobody outlived us who could know more; serve immediately
	}
	// Recover-then-serve: disk holds everything acknowledged (fsync policy
	// permitting), but the children may have seen writes we acked and lost
	// (fsync off/interval) or state we disseminated right before the crash.
	// Demand the tail from every known child behind a StatusRetry gate.
	o.recovering = true
	o.recoverPending = make(map[string]bool, len(o.children))
	for c := range o.children {
		o.recoverPending[c] = true
	}
	o.sendRecoveryDemands()
	o.armRecoveryRetry()
	grace := o.recoveryGrace
	if grace <= 0 {
		grace = 2 * time.Second
	}
	o.recoverGraceTimer = o.env.AfterFunc(grace, func() {
		// Children unreachable (maybe they crashed too): serve what disk
		// had rather than blocking forever.
		o.finishRecovery()
	})
}

// sendRecoveryDemands asks every still-pending child for updates beyond our
// recovered applied vector, through the ordinary demand path.
func (o *Object) sendRecoveryDemands() {
	for c := range o.recoverPending {
		o.stats.DemandsSent++
		o.send(c, &msg.Message{
			Kind:  msg.KindDemandUpdate,
			From:  o.addr,
			Store: o.self,
			VVec:  o.appliedVec(),
		})
	}
}

// armRecoveryRetry re-demands from unanswered children on the demand-retry
// cadence, bounded like any demand cycle.
func (o *Object) armRecoveryRetry() {
	if o.closed || !o.recovering {
		return
	}
	d := o.demandRetry
	if d <= 0 {
		d = 50 * time.Millisecond
	}
	o.recoverRetryTimer = o.env.AfterFunc(d, func() {
		if o.closed || !o.recovering {
			return
		}
		o.recoverRetries++
		if o.recoverRetries > maxDemandRetries {
			o.finishRecovery()
			return
		}
		o.sendRecoveryDemands()
		o.armRecoveryRetry()
	})
}

// gateRecovering intercepts traffic while the gate is closed: client reads
// and writes bounce with StatusRetry (their proxies retry), and a coherence
// response from a pending child marks it answered — the last one opens the
// gate. It reports whether the message was fully consumed.
func (o *Object) gateRecovering(m *msg.Message) bool {
	switch m.Kind {
	case msg.KindReadRequest, msg.KindWriteRequest:
		o.replyErr(m, msg.StatusRetry, "store recovering from restart")
		return true
	case msg.KindUpdate, msg.KindUpdateBatch, msg.KindUpdateAck, msg.KindStateReply:
		if o.recoverPending[m.From] {
			delete(o.recoverPending, m.From)
			if len(o.recoverPending) == 0 {
				// Single-threaded: the answer itself is processed right
				// after this returns, before any other message can slip
				// through the opened gate.
				o.finishRecovery()
			}
		}
	}
	return false
}

// finishRecovery opens the gate and stamps the recovery duration.
func (o *Object) finishRecovery() {
	if !o.recovering {
		return
	}
	o.recovering = false
	o.recoverPending = nil
	if o.recoverGraceTimer != nil {
		o.recoverGraceTimer.Stop()
	}
	if o.recoverRetryTimer != nil {
		o.recoverRetryTimer.Stop()
	}
	o.stats.RecoveryNanos = uint64(o.env.Now().Sub(o.recoverStart))
	o.markDigestStale()
	o.reconsiderParked()
}
