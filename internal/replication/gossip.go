package replication

import (
	"repro/internal/coherence"
	"repro/internal/msg"
)

// Anti-entropy gossip completes the eventual coherence model for
// object-initiated stores ("a typical example of an object-initiated store
// is a mirrored Web site", §3.1): sibling replicas exchange version-vector
// digests on the lazy interval and ship each other the updates the digest
// shows missing. Combined with the eventual engine's last-writer-wins rule
// this gives convergent, leaderless mirror synchronisation — no permanent
// store on the path.

// AddPeer registers a sibling replica for anti-entropy exchange and arms
// the gossip timer. Peers only make sense under the eventual model; other
// models order through the store hierarchy instead.
func (o *Object) AddPeer(addr string) {
	if o.strat.Model != coherence.Eventual || addr == o.addr {
		return
	}
	if o.peers == nil {
		o.peers = make(map[string]bool)
	}
	o.peers[addr] = true
	o.armGossip()
}

// RemovePeer deregisters a sibling replica from anti-entropy exchange.
func (o *Object) RemovePeer(addr string) {
	delete(o.peers, addr)
}

// Peers returns the registered gossip peers.
func (o *Object) Peers() []string {
	out := make([]string, 0, len(o.peers))
	for p := range o.peers {
		out = append(out, p)
	}
	return out
}

// armGossip schedules the next anti-entropy round. The lazy interval doubles
// as the gossip period (both express "how stale may replicas drift").
func (o *Object) armGossip() {
	if o.gossipArmed || o.closed || len(o.peers) == 0 {
		return
	}
	period := o.strat.LazyInterval
	if period <= 0 {
		period = o.strat.PullInterval
	}
	if period <= 0 {
		return // no periodic behaviour configured; gossip on demand only
	}
	o.gossipArmed = true
	o.gossipTimer = o.env.AfterFunc(period, func() {
		o.gossipArmed = false
		if o.closed {
			return
		}
		o.gossipRound()
		o.armGossip()
	})
}

// gossipRound sends this replica's digest to every peer.
func (o *Object) gossipRound() {
	for peer := range o.peers {
		g := &msg.Message{
			Kind:   msg.KindGossip,
			Object: o.object,
			From:   o.addr,
			Store:  o.self,
			VVec:   o.appliedVec(),
		}
		o.send(peer, g)
		o.stats.GossipRounds++
	}
}

// onGossip handles a peer's digest: ship whatever the peer is missing (as a
// single batch frame when more than one update is due), and answer with our
// own digest so the exchange is symmetric.
func (o *Object) onGossip(m *msg.Message) {
	o.sendUpdates(m.From, o.missingFrom(&m.VVec))
	r := m.Reply(msg.KindGossipReply)
	r.From = o.addr
	r.Store = o.self
	r.VVec = o.appliedVec()
	o.send(m.From, r)
}

// onGossipReply closes the loop: ship the peer anything the reply digest
// shows it still lacks (our writes that arrived after its gossip was sent).
func (o *Object) onGossipReply(m *msg.Message) {
	o.sendUpdates(m.From, o.missingFrom(&m.VVec))
}

// missingFrom collects the logged updates a peer with digest v lacks.
func (o *Object) missingFrom(v *msg.Vec) []*coherence.Update {
	var missing []*coherence.Update
	for _, u := range o.log {
		if !v.CoversWrite(u.Write) {
			missing = append(missing, u)
		}
	}
	return missing
}

// validGossipStrategy reports whether gossip handling applies (defensive:
// gossip messages for non-eventual objects are ignored — ordering models
// synchronise through the store hierarchy instead).
func (o *Object) validGossipStrategy() bool {
	return o.strat.Model == coherence.Eventual
}
