// Package replication implements the replication sub-object of the Globe
// local-object composition: the per-object coherence protocol. One Object
// lives at every store holding a replica; it interprets the object's
// Strategy (Table 1 of the paper) and drives an ordering engine
// (internal/coherence) that realises the object-based coherence model.
//
// The Object is a deterministic state machine: every handler runs on the
// owning store's single event-loop goroutine, and all I/O is performed
// through the injected Env, so the protocol can be unit-tested with fake
// environments and no network. This mirrors the paper's requirement that
// "the replication objects all have the same interface... however, the
// internals differ as each implements its own part of a coherence
// protocol".
//
//globelint:deterministic
//globelint:aliased-input
package replication

import (
	"hash/fnv"
	"math/rand"
	"time"

	"repro/internal/clock"
	"repro/internal/coherence"
	"repro/internal/ids"
	"repro/internal/msg"
	"repro/internal/obs"
	"repro/internal/strategy"
	"repro/internal/vclock"
	"repro/internal/wal"
)

// Role is the store class hosting this replication object (Figure 2).
type Role int

// Roles, from the top of the store hierarchy down.
const (
	RolePermanent Role = iota + 1
	RoleObjectInitiated
	RoleClientInitiated
)

// String names the role.
func (r Role) String() string {
	switch r {
	case RolePermanent:
		return "permanent"
	case RoleObjectInitiated:
		return "object-initiated"
	case RoleClientInitiated:
		return "client-initiated"
	default:
		return "Role(?)"
	}
}

// InScope reports whether a store with role r implements the object-based
// model under the given store-scope parameter; out-of-scope stores fall
// back to the weakest (eventual) ordering, per §3.1: lower layers "may, for
// performance reasons, support a weaker coherence model".
func (r Role) InScope(s strategy.StoreScope) bool {
	switch s {
	case strategy.ScopePermanent:
		return r == RolePermanent
	case strategy.ScopePermanentAndObjectInitiated:
		return r == RolePermanent || r == RoleObjectInitiated
	default:
		return true
	}
}

// Env is everything the replication object needs from its surroundings: the
// communication object (Send/Multicast), the control object (Apply*/Serve*,
// Snapshot*), and timers. Implementations must dispatch timer callbacks
// back onto the store's event loop.
type Env interface {
	Send(to string, m *msg.Message) error
	Multicast(tos []string, m *msg.Message) error

	ApplyOp(u *coherence.Update) error
	ApplyFull(snapshot []byte) error
	ApplyElement(name string, data []byte) error
	Snapshot() ([]byte, error)
	SnapshotElement(name string) ([]byte, error)
	ServeRead(inv msg.Invocation) ([]byte, error)

	Now() time.Time
	// AfterFunc schedules f on the store's event loop after d.
	AfterFunc(d time.Duration, f func()) clock.Timer
}

// Stats counts protocol events for the experiment harness.
type Stats struct {
	ReadsServed         uint64 // reads answered from local state
	ReadsParked         uint64 // reads that had to wait or trigger a fetch
	ReadsFailed         uint64 // reads answered with an error status
	WritesAccepted      uint64 // write requests accepted (permanent store)
	WritesForwarded     uint64 // write requests passed towards the permanent store
	WritesRejected      uint64 // write-set violations
	UpdatesApplied      uint64 // ordered updates applied to semantics
	UpdatesBuffered     uint64 // updates buffered by the ordering engine
	DemandsSent         uint64 // demand-update / state requests issued
	Invalidations       uint64 // pages invalidated locally
	LazyFlushes         uint64 // aggregated dissemination rounds
	ReqViolations       uint64 // reads whose session requirement was not met locally
	GossipRounds        uint64 // anti-entropy digests sent to peers
	BatchesSent         uint64 // KindUpdateBatch frames shipped
	BatchedUpdates      uint64 // updates carried inside batch frames
	DigestsSent         uint64 // heartbeat digests sent to children
	DigestsRecv         uint64 // heartbeat digests received
	DigestDemands       uint64 // demands triggered by a heartbeat gap
	SubscribesSent      uint64 // subscribe frames sent (1 + retries + re-subscribes)
	ReparentsDone       uint64 // completed re-parent handshakes (new parent acked)
	ParentMissedDigests uint64 // watch periods that saw no parent traffic
	GroupCommits        uint64 // fsync barriers that covered more than one ack
	WALAppends          uint64 // records appended to the write-ahead log
	WALSnapshots        uint64 // snapshot compactions written
	WALReplayed         uint64 // update records replayed from disk on recovery
	WALTornTail         uint64 // corrupt WAL tails truncated on recovery
	RecoveryNanos       uint64 // last restart: replay start to serve gate open
}

// parkedRead is a read waiting for coherence (requirement vector), state
// (page fetch), or a revalidation round trip before it can be served.
type parkedRead struct {
	m        *msg.Message
	deadline time.Time
	// needsReval marks pull-on-access reads that must not be served until
	// the parent has answered one revalidation (epoch advanced past epoch).
	needsReval bool
	epoch      uint64
	// fetchTried/fetchedAt record that this read triggered a state fetch
	// and how many full fetches had completed at that point: if a full
	// fetch completes (fullFetches advances past fetchedAt) and the element
	// is still missing, the parent does not have it and the read fails
	// instead of looping fetch → state-reply → reconsider forever.
	fetchTried bool
	fetchedAt  uint64
}

// Object is the replication sub-object for one distributed shared object at
// one store. Not safe for concurrent use: the owning store serialises all
// calls on its event loop.
//
//globelint:looponly
type Object struct {
	env    Env
	object ids.ObjectID
	self   ids.StoreID
	role   Role
	strat  strategy.Strategy
	engine coherence.Engine

	// addr is this store's transport address (for From fields).
	addr string
	// parent is the next store up the hierarchy ("" at permanent stores).
	parent string
	// children are subscribed lower-layer stores.
	children map[string]bool

	// Write-set enforcement (permanent store, write set = single).
	writer    ids.ClientID
	hasWriter bool

	// Sequencer state (permanent store, sequential model).
	nextGlobal uint64
	lamport    vclock.Lamport
	// stamped tracks, per client, which write sequences this store has
	// admitted (minted a stamp for) — the at-most-once guard for unstamped
	// (direct-from-client) requests. The engines' applied vectors cannot
	// play this role: the sequential, FIFO, and eventual ones jump
	// per-client gaps, so "covered" does not imply "admitted". A watermark
	// alone cannot either (a jittered link can reorder two in-flight
	// writes), so each entry also keeps the bounded set of unseen
	// sequences below its watermark.
	stamped map[ids.ClientID]*stampedSeqs

	// log keeps applied updates in application order for demand-serving
	// and child relaying; logLimit caps its length (oldest pruned first).
	log      []*coherence.Update
	logLimit int
	// logPruned records whether any entries were dropped, in which case
	// demand requests that predate the log are answered with full state.
	logPruned bool

	// Lazy-instant aggregation buffers.
	lazyUpdates []*coherence.Update
	lazyPages   map[string]bool
	lazyArmed   bool
	lazyTimer   clock.Timer

	// Relay re-batching: while a batch arrival is being fanned into the
	// engine (relayDepth > 0), immediately-disseminated updates collect in
	// relayBuf and ship as one frame when the fan-in completes, so batching
	// survives the full root→leaf path.
	relayDepth int
	relayBuf   []*coherence.Update
	relayPages map[string]bool

	// Pull-initiative poller.
	pollArmed bool
	pollTimer clock.Timer

	// Subscription reliability: the subscribe frame used to be send-once,
	// so one lost frame on a lossy link stranded the replica outside the
	// parent's children set forever (no pushes, no digests). Now the
	// bootstrap KindSubscribeAck doubles as the subscribe's ack: until it
	// arrives the child re-sends on a bounded timer, and a digest heard
	// from the parent while still unacked (the ack itself was lost — the
	// parent registered us) triggers an immediate re-subscribe.
	subWanted  bool // SubscribeToParent was requested
	subAcked   bool // bootstrap ack received
	subRetries int
	subArmed   bool
	subTimer   clock.Timer

	// Self-healing (see reparent.go): when the parent stops answering —
	// subscribe retries exhausted, or reparentAfter consecutive digest
	// periods with no parent traffic — the child re-resolves the object
	// through resolveParent, adopts a live replica closer to the root, and
	// re-runs the subscribe handshake there.
	resolveParent    func() []ParentCandidate
	reparentAfter    int
	parentHeard      bool // parent traffic since the last watch tick
	parentSilent     int  // consecutive silent watch periods
	parentWatchArmed bool
	parentWatchTimer clock.Timer
	reparentArmed    bool // same-parent-later cooldown in flight
	reparentTimer    clock.Timer
	reparenting      bool // a re-parent handshake awaits its ack

	// Anti-entropy gossip peers (eventual model, sibling mirrors).
	peers       map[string]bool
	gossipArmed bool
	gossipTimer clock.Timer

	// Digest heartbeats: every digestInterval (jittered), the store sends
	// its children a compact applied-vector digest so a child behind silent
	// tail-loss or a healed partition detects the gap and demands, instead
	// of staying stale until the next unrelated arrival. cachedDigest is the
	// wire-form snapshot, rebuilt lazily (digestStale) so idle heartbeats
	// never re-materialise the applied vector.
	digestInterval time.Duration
	digestArmed    bool
	digestTimer    clock.Timer
	digestRNG      *rand.Rand
	cachedDigest   msg.Vec
	digestStale    bool
	// digestGapDemand marks the open demand cycle as digest-initiated: its
	// gap has no buffered updates or parked reads to witness it, so the
	// retry timer must chase it anyway (see retryDemand).
	digestGapDemand bool

	// Cache validity: pages invalidated by Invalidate/Notify messages, and
	// allInvalid set by a page-less notification.
	invalid    map[string]bool
	allInvalid bool
	// fetchVec is coherence knowledge gained by full state transfer rather
	// than ordered updates.
	fetchVec ids.VersionVec
	// pageVec tracks knowledge gained by partial (per-page) state transfer:
	// an op update for page p whose write is covered by pageVec[p] must not
	// re-apply its content (the fetched page already includes it).
	pageVec map[string]ids.VersionVec
	// fetching de-duplicates concurrent full-state fetches.
	fetching bool
	// fullFetches counts completed full state transfers (state replies,
	// full-state updates, subscribe bootstraps); parked reads use it to
	// detect "a full fetch finished and the element still is not here".
	fullFetches uint64

	// Demand-retry: a demand whose reply is lost would otherwise strand the
	// store until the next arrival (tail-loss). After demandRetry with no
	// coherence response (revalEpoch unchanged), the demand is re-sent,
	// bounded by maxDemandRetries per cycle.
	demandRetry      time.Duration
	demandRetryArmed bool
	demandRetryTimer clock.Timer
	demandEpoch      uint64
	demandRetries    int

	// Group commit (see durable.go): when the owning store enables batch
	// mode, acks under the always policy park in ackPending and the loop
	// releases them with FlushAcks — one fsync per drained batch, the same
	// leader-flushes-the-whole-queue shape tcpnet uses for writev.
	groupCommit bool
	ackPending  []pendingAck

	// Durability (permanent stores with a data dir; see durable.go). wal
	// is nil on memory-only replicas and every hook is a no-op.
	wal             *wal.Log
	walPolicy       wal.Policy
	walSyncInterval time.Duration
	walSyncArmed    bool
	walSyncTimer    clock.Timer
	walReplaying    bool
	snapshotEvery   int
	lastSnapVec     ids.VersionVec

	// Recover-then-serve gate state (see recover/gateRecovering).
	recovering        bool
	recoverPending    map[string]bool
	recoverStart      time.Time
	recoverRetries    int
	recoveryGrace     time.Duration
	recoverGraceTimer clock.Timer
	recoverRetryTimer clock.Timer

	parked      []*parkedRead
	readTimeout time.Duration
	// revalEpoch counts coherence responses received from the parent
	// (updates, state replies, acks); pull-on-access reads wait for it to
	// advance.
	revalEpoch uint64

	stats Stats
	// obsv holds the observability instruments (internal/obs); all nil —
	// and free — when the store was built without an Observer.
	obsv repObs

	closed bool
}

// Config assembles an Object.
type Config struct {
	Env     Env
	Object  ids.ObjectID
	Self    ids.StoreID
	Addr    string
	Role    Role
	Parent  string
	Strat   strategy.Strategy
	Session []coherence.ClientModel // client models requested at bind time
	// ReadTimeout bounds how long a read may stay parked before it is
	// answered with StatusRetry (default 5s).
	ReadTimeout time.Duration
	// LogLimit caps the demand-serving log (default 4096 updates).
	LogLimit int
	// DemandRetry is the delay after which an unanswered demand-update is
	// re-sent while updates stay buffered or reads stay parked (default
	// 50ms; negative disables retries).
	DemandRetry time.Duration
	// DigestInterval enables digest heartbeats: every interval (plus a
	// deterministic jitter of up to a quarter interval) the store sends its
	// subscribed children a KindDigest frame carrying its applied vector.
	// Zero or negative disables heartbeats (the default — benchmarks and
	// lossless deployments pay nothing).
	DigestInterval time.Duration
	// ResolveParent, when set, lets the replica pick a replacement parent
	// after declaring the configured one dead: it returns the object's
	// currently resolvable replicas (typically from the name service). It
	// is called on the owning event loop and must not block. Without it the
	// replica still recovers from retry exhaustion, but only by re-dialling
	// the same parent after a cooldown.
	ResolveParent func() []ParentCandidate
	// ReparentAfter declares the parent dead after this many consecutive
	// digest periods with no parent traffic (requires DigestInterval > 0).
	// Zero disables the liveness watch (the default); subscribe-retry
	// exhaustion still triggers re-parenting regardless.
	ReparentAfter int

	// WAL, when set, makes the replica durable: stamped updates, admission
	// decisions, and children changes are logged before acks, and snapshot
	// compaction runs every SnapshotEvery records. The object owns the log
	// from here on (Close closes it).
	WAL *wal.Log
	// Recovered is the state wal.Open reconstructed from disk; New replays
	// it before the replica sees any traffic.
	Recovered *wal.Recovery
	// WALSync is the fsync policy (default wal.SyncOff).
	WALSync wal.Policy
	// WALSyncInterval is the flush cadence under wal.SyncInterval
	// (default 100ms).
	WALSyncInterval time.Duration
	// SnapshotEvery is the WAL record count that triggers compaction
	// (default 1024).
	SnapshotEvery int
	// RecoveryGrace bounds the recover-then-serve gate when recovered
	// children never answer the anti-entropy demands (default 2s).
	RecoveryGrace time.Duration

	// Obs, when set, wires the replica into the observability layer:
	// lifecycle counters and the propagation-lag histogram registered under
	// {store, object} labels, and (when the observer carries a trace ring)
	// structured protocol events. Nil disables everything at zero hot-path
	// cost.
	Obs *obs.Observer
}

// ParentCandidate is one live replica of the object as reported by the
// resolver seam — a potential parent for re-subscription. It is declared
// here (not in the naming layer) because naming already imports replication.
type ParentCandidate struct {
	Addr string
	Role Role
}

// New builds the replication object, choosing the ordering engine from the
// strategy and the store's role: in-scope stores run the object's model,
// out-of-scope stores run eventual ordering. If any requested client model
// requires explicit dependency enforcement that the model doesn't imply,
// the engine is wrapped in a DepGuard.
func New(cfg Config) (*Object, error) {
	if err := cfg.Strat.Validate(); err != nil {
		return nil, err
	}
	model := cfg.Strat.Model
	if !cfg.Role.InScope(cfg.Strat.Scope) {
		model = coherence.Eventual
	}
	eng, err := coherence.NewEngine(model)
	if err != nil {
		return nil, err
	}
	needGuard := false
	for _, cm := range cfg.Session {
		if (cm == coherence.MonotonicWrites || cm == coherence.WritesFollowReads) &&
			!model.Implies(cm) {
			needGuard = true
		}
	}
	if needGuard {
		eng = coherence.NewDepGuard(eng)
	}
	o := &Object{
		env:         cfg.Env,
		object:      cfg.Object,
		self:        cfg.Self,
		addr:        cfg.Addr,
		role:        cfg.Role,
		parent:      cfg.Parent,
		strat:       cfg.Strat,
		engine:      eng,
		children:    make(map[string]bool),
		nextGlobal:  1,
		stamped:     make(map[ids.ClientID]*stampedSeqs),
		lazyPages:   make(map[string]bool),
		invalid:     make(map[string]bool),
		fetchVec:    ids.NewVersionVec(4),
		pageVec:     make(map[string]ids.VersionVec),
		readTimeout: cfg.ReadTimeout,
	}
	// Instruments must exist before recover() below replays the WAL.
	o.obsv = newRepObs(cfg.Obs, cfg.Self, cfg.Object)
	if o.readTimeout <= 0 {
		o.readTimeout = 5 * time.Second
	}
	o.logLimit = cfg.LogLimit
	if o.logLimit <= 0 {
		o.logLimit = 4096
	}
	o.resolveParent = cfg.ResolveParent
	o.reparentAfter = cfg.ReparentAfter
	o.demandRetry = cfg.DemandRetry
	if o.demandRetry == 0 {
		o.demandRetry = 50 * time.Millisecond
	}
	if o.demandRetry < 0 {
		o.demandRetry = 0 // disabled
	}
	if cfg.DigestInterval > 0 {
		o.digestInterval = cfg.DigestInterval
		// Per-object deterministic jitter source: seeded from the store's
		// address, the object, and the store ID, so a fleet sharing one
		// interval — and the N objects co-hosted on one store — all
		// de-synchronise, the same way on every run. Only touched on the
		// owning event loop.
		h := fnv.New64a()
		_, _ = h.Write([]byte(cfg.Addr))
		_, _ = h.Write([]byte(cfg.Object))
		o.digestRNG = rand.New(rand.NewSource(int64(h.Sum64()) ^ int64(cfg.Self)<<32))
		o.digestStale = true
	}
	if cfg.WAL != nil {
		o.wal = cfg.WAL
		o.walPolicy = cfg.WALSync
		o.walSyncInterval = cfg.WALSyncInterval
		if o.walSyncInterval <= 0 {
			o.walSyncInterval = 100 * time.Millisecond
		}
		o.snapshotEvery = cfg.SnapshotEvery
		if o.snapshotEvery == 0 {
			o.snapshotEvery = 1024
		}
		o.recoveryGrace = cfg.RecoveryGrace
		if cfg.Recovered != nil {
			o.recover(cfg.Recovered)
		}
	}
	return o, nil
}

// Stats returns a copy of the protocol counters.
func (o *Object) Stats() Stats { return o.stats }

// Engine exposes the ordering engine (tests, metrics).
func (o *Object) Engine() coherence.Engine { return o.engine }

// Role returns the store role hosting this object.
func (o *Object) Role() Role { return o.role }

// Parent returns the configured parent address.
func (o *Object) Parent() string { return o.parent }

// Children returns the subscribed child addresses (sorted not guaranteed).
func (o *Object) Children() []string {
	out := make([]string, 0, len(o.children))
	for c := range o.children {
		out = append(out, c)
	}
	return out
}

// Close cancels timers and fails parked reads. Acks parked for a group
// commit are flushed first, so their writes' durability promise holds.
func (o *Object) Close() {
	o.FlushAcks()
	o.closed = true
	if o.lazyTimer != nil {
		o.lazyTimer.Stop()
	}
	if o.pollTimer != nil {
		o.pollTimer.Stop()
	}
	if o.subTimer != nil {
		o.subTimer.Stop()
	}
	if o.gossipTimer != nil {
		o.gossipTimer.Stop()
	}
	if o.digestTimer != nil {
		o.digestTimer.Stop()
	}
	if o.demandRetryTimer != nil {
		o.demandRetryTimer.Stop()
	}
	if o.walSyncTimer != nil {
		o.walSyncTimer.Stop()
	}
	if o.recoverGraceTimer != nil {
		o.recoverGraceTimer.Stop()
	}
	if o.recoverRetryTimer != nil {
		o.recoverRetryTimer.Stop()
	}
	if o.parentWatchTimer != nil {
		o.parentWatchTimer.Stop()
	}
	if o.reparentTimer != nil {
		o.reparentTimer.Stop()
	}
	if o.wal != nil {
		_ = o.wal.Close()
		o.wal = nil
	}
	for _, p := range o.parked {
		o.replyErr(p.m, msg.StatusRetry, "store closing")
	}
	o.parked = nil
}

// applied is the store's total coherence knowledge: ordered applies plus
// state-transfer knowledge.
func (o *Object) applied() ids.VersionVec {
	v := o.engine.Applied()
	v.Merge(o.fetchVec)
	return v
}

// appliedVec is applied in wire (small-vector) form, for message fields.
func (o *Object) appliedVec() msg.Vec { return msg.VecFrom(o.applied()) }

// Applied exposes the combined applied vector.
func (o *Object) Applied() ids.VersionVec { return o.applied() }
