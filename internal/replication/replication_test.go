package replication

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/coherence"
	"repro/internal/control"
	"repro/internal/ids"
	"repro/internal/msg"
	"repro/internal/semantics/webdoc"
	"repro/internal/strategy"
)

// fakeEnv is a synchronous, in-memory replication.Env capturing all sends.
type fakeEnv struct {
	ctrl *control.Control
	clk  *clock.Fake
	sent []*msg.Message
}

func newFakeEnv() *fakeEnv {
	return &fakeEnv{ctrl: control.New(webdoc.New()), clk: clock.NewFake()}
}

func (e *fakeEnv) Send(to string, m *msg.Message) error {
	cp := *m
	cp.To = to
	e.sent = append(e.sent, &cp)
	return nil
}

func (e *fakeEnv) Multicast(tos []string, m *msg.Message) error {
	for _, to := range tos {
		if err := e.Send(to, m); err != nil {
			return err
		}
	}
	return nil
}

func (e *fakeEnv) ApplyOp(u *coherence.Update) error        { return e.ctrl.ApplyOp(u) }
func (e *fakeEnv) ApplyFull(s []byte) error                 { return e.ctrl.ApplyFull(s) }
func (e *fakeEnv) ApplyElement(n string, d []byte) error    { return e.ctrl.ApplyElement(n, d) }
func (e *fakeEnv) Snapshot() ([]byte, error)                { return e.ctrl.Snapshot() }
func (e *fakeEnv) SnapshotElement(n string) ([]byte, error) { return e.ctrl.SnapshotElement(n) }
func (e *fakeEnv) ServeRead(inv msg.Invocation) ([]byte, error) {
	return e.ctrl.ServeRead(inv)
}
func (e *fakeEnv) Now() time.Time { return e.clk.Now() }
func (e *fakeEnv) AfterFunc(d time.Duration, f func()) clock.Timer {
	return e.clk.AfterFunc(d, f)
}

// takeSent drains and returns captured messages of one kind.
func (e *fakeEnv) takeSent(k msg.Kind) []*msg.Message {
	var out, rest []*msg.Message
	for _, m := range e.sent {
		if m.Kind == k {
			out = append(out, m)
		} else {
			rest = append(rest, m)
		}
	}
	e.sent = rest
	return out
}

func newObj(t *testing.T, env Env, role Role, st strategy.Strategy, parent string, models ...coherence.ClientModel) *Object {
	t.Helper()
	o, err := New(Config{
		Env: env, Object: "obj", Self: 1, Addr: "self", Role: role,
		Parent: parent, Strat: st, Session: models, ReadTimeout: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func writeMsg(client ids.ClientID, seq uint64, page, content string) *msg.Message {
	return &msg.Message{
		Kind: msg.KindWriteRequest, Object: "obj", From: "client-ep",
		Client: client, Write: ids.WiD{Client: client, Seq: seq},
		Inv: msg.Invocation{
			Method: webdoc.MethodAppendPage, Page: page,
			Args: webdoc.EncodeWriteArgs(webdoc.WriteArgs{Content: []byte(content)}),
		},
	}
}

func TestPermanentAcceptsAndAcksWrite(t *testing.T) {
	env := newFakeEnv()
	o := newObj(t, env, RolePermanent, strategy.Conference(time.Hour), "")
	o.Handle(writeMsg(1, 1, "p", "x"))
	acks := env.takeSent(msg.KindWriteReply)
	if len(acks) != 1 || acks[0].To != "client-ep" || acks[0].Status != msg.StatusOK {
		t.Fatalf("acks: %+v", acks)
	}
	if got := o.Stats(); got.WritesAccepted != 1 || got.UpdatesApplied != 1 {
		t.Fatalf("stats: %+v", got)
	}
	if !o.Applied().CoversWrite(ids.WiD{Client: 1, Seq: 1}) {
		t.Fatalf("applied vector missing write")
	}
}

func TestWriteSetSingleRejectsSecondWriter(t *testing.T) {
	env := newFakeEnv()
	o := newObj(t, env, RolePermanent, strategy.Conference(time.Hour), "")
	o.Handle(writeMsg(1, 1, "p", "x"))
	env.takeSent(msg.KindWriteReply)
	o.Handle(writeMsg(2, 1, "p", "y"))
	acks := env.takeSent(msg.KindWriteReply)
	if len(acks) != 1 || acks[0].Status != msg.StatusForbidden {
		t.Fatalf("intruder ack: %+v", acks)
	}
	if got := o.Stats(); got.WritesRejected != 1 {
		t.Fatalf("stats: %+v", got)
	}
}

func TestCacheForwardsWritesPreservingOrigin(t *testing.T) {
	env := newFakeEnv()
	o := newObj(t, env, RoleClientInitiated, strategy.Conference(time.Hour), "parent-store")
	o.Handle(writeMsg(1, 1, "p", "x"))
	fwd := env.takeSent(msg.KindWriteRequest)
	if len(fwd) != 1 || fwd[0].To != "parent-store" {
		t.Fatalf("forward: %+v", fwd)
	}
	if fwd[0].From != "client-ep" {
		t.Fatalf("forward must preserve the client's From for direct ack, got %q", fwd[0].From)
	}
	if got := o.Stats(); got.WritesForwarded != 1 {
		t.Fatalf("stats: %+v", got)
	}
}

func TestCacheWithoutParentFailsWrite(t *testing.T) {
	env := newFakeEnv()
	o := newObj(t, env, RoleClientInitiated, strategy.Conference(time.Hour), "")
	o.Handle(writeMsg(1, 1, "p", "x"))
	acks := env.takeSent(msg.KindWriteReply)
	if len(acks) != 1 || acks[0].Status != msg.StatusError {
		t.Fatalf("acks: %+v", acks)
	}
}

func TestImmediateDisseminationToChildren(t *testing.T) {
	env := newFakeEnv()
	st := strategy.Conference(time.Hour)
	st.Instant = strategy.Immediate
	st.LazyInterval = 0
	o := newObj(t, env, RolePermanent, st, "")
	// A child subscribes.
	o.Handle(&msg.Message{Kind: msg.KindSubscribe, Object: "obj", From: "child-1"})
	if acks := env.takeSent(msg.KindSubscribeAck); len(acks) != 1 || acks[0].To != "child-1" {
		t.Fatalf("subscribe ack: %+v", acks)
	}
	o.Handle(writeMsg(1, 1, "p", "x"))
	ups := env.takeSent(msg.KindUpdate)
	if len(ups) != 1 || ups[0].To != "child-1" || ups[0].Write.Seq != 1 {
		t.Fatalf("updates: %+v", ups)
	}
	if len(ups[0].Payload) != 0 {
		t.Fatalf("partial coherence transfer should ship the op, not a snapshot")
	}
}

func TestLazyAggregationFullSnapshot(t *testing.T) {
	env := newFakeEnv()
	st := strategy.Magazine(100 * time.Millisecond) // lazy + full transfer
	o := newObj(t, env, RolePermanent, st, "")
	o.Handle(&msg.Message{Kind: msg.KindSubscribe, Object: "obj", From: "child-1"})
	env.takeSent(msg.KindSubscribeAck)
	// Three writes inside one lazy window aggregate into ONE snapshot.
	for i := 1; i <= 3; i++ {
		o.Handle(writeMsg(1, uint64(i), "p", "x"))
	}
	if ups := env.takeSent(msg.KindUpdate); len(ups) != 0 {
		t.Fatalf("lazy mode shipped early: %+v", ups)
	}
	env.clk.Advance(100 * time.Millisecond)
	ups := env.takeSent(msg.KindUpdate)
	if len(ups) != 1 {
		t.Fatalf("aggregation failed: %d updates", len(ups))
	}
	if len(ups[0].Payload) == 0 || !ups[0].VVec.CoversWrite(ids.WiD{Client: 1, Seq: 3}) {
		t.Fatalf("aggregated snapshot malformed: %+v", ups[0])
	}
	if got := o.Stats(); got.LazyFlushes != 1 {
		t.Fatalf("stats: %+v", got)
	}
}

func TestNotificationTransfer(t *testing.T) {
	env := newFakeEnv()
	st := strategy.Conference(time.Hour)
	st.Instant = strategy.Immediate
	st.CoherenceTransfer = strategy.CoherenceNotification
	st.ObjectOutdate = strategy.Demand
	o := newObj(t, env, RolePermanent, st, "")
	o.Handle(&msg.Message{Kind: msg.KindSubscribe, Object: "obj", From: "child-1"})
	env.takeSent(msg.KindSubscribeAck)
	o.Handle(writeMsg(1, 1, "news", "x"))
	notes := env.takeSent(msg.KindNotify)
	if len(notes) != 1 || len(notes[0].Pages) != 1 || notes[0].Pages[0] != "news" {
		t.Fatalf("notify: %+v", notes)
	}
	if ups := env.takeSent(msg.KindUpdate); len(ups) != 0 {
		t.Fatalf("notification mode must not ship content: %+v", ups)
	}
}

func TestNotifyTriggersDemandWhenReactionIsDemand(t *testing.T) {
	env := newFakeEnv()
	st := strategy.Conference(time.Hour)
	st.ObjectOutdate = strategy.Demand
	o := newObj(t, env, RoleClientInitiated, st, "parent-store")
	o.Handle(&msg.Message{Kind: msg.KindNotify, Object: "obj", From: "parent-store", Pages: []string{"p"}})
	// Access transfer full -> full state request.
	reqs := env.takeSent(msg.KindStateRequest)
	if len(reqs) != 1 || reqs[0].To != "parent-store" {
		t.Fatalf("state requests: %+v", reqs)
	}
	if got := o.Stats(); got.Invalidations != 1 || got.DemandsSent != 1 {
		t.Fatalf("stats: %+v", got)
	}
}

func TestInvalidateWaitDefersUntilAccess(t *testing.T) {
	env := newFakeEnv()
	st := strategy.Conference(time.Hour)
	st.Propagation = strategy.PropagateInvalidate
	st.ObjectOutdate = strategy.Wait
	st.AccessTransfer = strategy.TransferPartial
	o := newObj(t, env, RoleClientInitiated, st, "parent-store")
	// Seed the replica with page content via state reply.
	doc := webdoc.New()
	doc.Put("p", []byte("v1"), "", 1)
	el, _ := doc.SnapshotElement("p")
	o.Handle(&msg.Message{
		Kind: msg.KindStateReply, Object: "obj", From: "parent-store",
		Pages: []string{"p"}, Payload: el, VVec: msg.VecFrom(ids.VersionVec{1: 1}),
	})
	// Invalidation arrives; wait reaction -> no traffic yet.
	o.Handle(&msg.Message{Kind: msg.KindInvalidate, Object: "obj", From: "parent-store", Pages: []string{"p"}})
	if reqs := env.takeSent(msg.KindStateRequest); len(reqs) != 0 {
		t.Fatalf("wait reaction fetched eagerly: %+v", reqs)
	}
	// A read arrives: now the page must be refetched before serving.
	o.Handle(&msg.Message{
		Kind: msg.KindReadRequest, Object: "obj", From: "reader-ep", Client: 9,
		Inv: msg.Invocation{Method: webdoc.MethodGetPage, Page: "p"},
	})
	if reqs := env.takeSent(msg.KindStateRequest); len(reqs) != 1 || reqs[0].Pages[0] != "p" {
		t.Fatalf("access did not trigger partial fetch: %+v", reqs)
	}
	// Parent answers with the fresh page; the parked read completes.
	doc.Put("p", []byte("v2"), "", 2)
	el2, _ := doc.SnapshotElement("p")
	o.Handle(&msg.Message{
		Kind: msg.KindStateReply, Object: "obj", From: "parent-store",
		Pages: []string{"p"}, Payload: el2, VVec: msg.VecFrom(ids.VersionVec{1: 2}),
	})
	replies := env.takeSent(msg.KindReadReply)
	if len(replies) != 1 || replies[0].Status != msg.StatusOK {
		t.Fatalf("read replies: %+v", replies)
	}
	pg, err := webdoc.DecodePage(replies[0].Payload)
	if err != nil || string(pg.Content) != "v2" {
		t.Fatalf("served %q, %v", pg.Content, err)
	}
}

func TestDemandServedFromLog(t *testing.T) {
	env := newFakeEnv()
	o := newObj(t, env, RolePermanent, strategy.Conference(time.Hour), "")
	for i := 1; i <= 3; i++ {
		o.Handle(writeMsg(1, uint64(i), "p", "x"))
	}
	env.sent = nil
	// Child knows up to write 1; demands the rest, which arrives as one
	// aggregated batch frame.
	o.Handle(&msg.Message{
		Kind: msg.KindDemandUpdate, Object: "obj", From: "child-1",
		VVec: msg.VecFrom(ids.VersionVec{1: 1}),
	})
	batches := env.takeSent(msg.KindUpdateBatch)
	if len(batches) != 1 {
		t.Fatalf("demand reply batches: %+v", batches)
	}
	bu := batches[0].Batch
	if len(bu) != 2 || bu[0].Write.Seq != 2 || bu[1].Write.Seq != 3 {
		t.Fatalf("batch entries: %+v", bu)
	}
}

func TestDemandSingleMissingUpdateShipsUnbatched(t *testing.T) {
	env := newFakeEnv()
	o := newObj(t, env, RolePermanent, strategy.Conference(time.Hour), "")
	for i := 1; i <= 2; i++ {
		o.Handle(writeMsg(1, uint64(i), "p", "x"))
	}
	env.sent = nil
	o.Handle(&msg.Message{
		Kind: msg.KindDemandUpdate, Object: "obj", From: "child-1",
		VVec: msg.VecFrom(ids.VersionVec{1: 1}),
	})
	ups := env.takeSent(msg.KindUpdate)
	if len(ups) != 1 || ups[0].Write.Seq != 2 {
		t.Fatalf("single-update demand reply: %+v", ups)
	}
}

func TestDemandNothingMissingSendsAck(t *testing.T) {
	env := newFakeEnv()
	o := newObj(t, env, RolePermanent, strategy.Conference(time.Hour), "")
	o.Handle(writeMsg(1, 1, "p", "x"))
	env.sent = nil
	o.Handle(&msg.Message{
		Kind: msg.KindDemandUpdate, Object: "obj", From: "child-1",
		VVec: msg.VecFrom(ids.VersionVec{1: 1}),
	})
	acks := env.takeSent(msg.KindUpdateAck)
	if len(acks) != 1 || acks[0].To != "child-1" {
		t.Fatalf("ack: %+v", acks)
	}
}

func TestDemandAfterLogPruneFallsBackToFullState(t *testing.T) {
	env := newFakeEnv()
	o, err := New(Config{
		Env: env, Object: "obj", Self: 1, Addr: "self", Role: RolePermanent,
		Strat: strategy.Conference(time.Hour), ReadTimeout: time.Second, LogLimit: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		o.Handle(writeMsg(1, uint64(i), "p", "x"))
	}
	env.sent = nil
	// Child knows nothing; the log only holds writes 4-5, but writes 2-3
	// are gone — the paper's protocol must fall back to full state.
	o.Handle(&msg.Message{Kind: msg.KindDemandUpdate, Object: "obj", From: "child-1"})
	ups := env.takeSent(msg.KindUpdate)
	states := env.takeSent(msg.KindStateReply)
	if len(states) == 0 && len(ups) != 0 {
		// Acceptable alternative: updates cover the missing suffix AND a
		// state reply covers the prefix — but updates alone cannot rebuild
		// writes 1-3.
		t.Fatalf("pruned log answered with ops only: %d ups, %d states", len(ups), len(states))
	}
}

func TestReadParkedUntilRequirementMet(t *testing.T) {
	env := newFakeEnv()
	st := strategy.Conference(time.Hour)
	st.ClientOutdate = strategy.Wait
	o := newObj(t, env, RolePermanent, st, "")
	// RYW requirement for a write that has not arrived yet.
	o.Handle(&msg.Message{
		Kind: msg.KindReadRequest, Object: "obj", From: "m-ep", Client: 1,
		VVec: msg.VecFrom(ids.VersionVec{1: 1}),
		Inv:  msg.Invocation{Method: webdoc.MethodGetPage, Page: "p"},
	})
	if replies := env.takeSent(msg.KindReadReply); len(replies) != 0 {
		t.Fatalf("read served before requirement met: %+v", replies)
	}
	if got := o.Stats(); got.ReqViolations != 1 || got.ReadsParked != 1 {
		t.Fatalf("stats: %+v", got)
	}
	// The write arrives; the parked read must complete.
	o.Handle(writeMsg(1, 1, "p", "content"))
	replies := env.takeSent(msg.KindReadReply)
	if len(replies) != 1 || replies[0].Status != msg.StatusOK {
		t.Fatalf("parked read not released: %+v", replies)
	}
}

func TestReadTimesOutWithRetryStatus(t *testing.T) {
	env := newFakeEnv()
	st := strategy.Conference(time.Hour)
	st.ClientOutdate = strategy.Wait
	o := newObj(t, env, RolePermanent, st, "")
	o.Handle(&msg.Message{
		Kind: msg.KindReadRequest, Object: "obj", From: "m-ep", Client: 1,
		VVec: msg.VecFrom(ids.VersionVec{1: 99}),
		Inv:  msg.Invocation{Method: webdoc.MethodGetPage, Page: "p"},
	})
	env.clk.Advance(2 * time.Second)
	replies := env.takeSent(msg.KindReadReply)
	if len(replies) != 1 || replies[0].Status != msg.StatusRetry {
		t.Fatalf("timeout replies: %+v", replies)
	}
}

func TestMissingPageFailsCleanlyAtPermanent(t *testing.T) {
	env := newFakeEnv()
	o := newObj(t, env, RolePermanent, strategy.Conference(time.Hour), "")
	o.Handle(&msg.Message{
		Kind: msg.KindReadRequest, Object: "obj", From: "r-ep", Client: 2,
		Inv: msg.Invocation{Method: webdoc.MethodGetPage, Page: "nope"},
	})
	replies := env.takeSent(msg.KindReadReply)
	if len(replies) != 1 || replies[0].Status != msg.StatusNotFound {
		t.Fatalf("replies: %+v", replies)
	}
}

func TestRoleScopeAndEngineSelection(t *testing.T) {
	env := newFakeEnv()
	st := strategy.Conference(time.Hour)
	st.Scope = strategy.ScopePermanent
	cache := newObj(t, env, RoleClientInitiated, st, "parent")
	if cache.Engine().Model() != coherence.Eventual {
		t.Fatalf("out-of-scope store should run eventual, got %v", cache.Engine().Model())
	}
	perm := newObj(t, newFakeEnv(), RolePermanent, st, "")
	if perm.Engine().Model() != coherence.PRAM {
		t.Fatalf("permanent store should run the object model, got %v", perm.Engine().Model())
	}
	// Session models needing explicit deps wrap the engine in a DepGuard.
	guarded := newObj(t, newFakeEnv(), RoleClientInitiated, st, "parent", coherence.WritesFollowReads)
	if _, ok := guarded.Engine().(*coherence.DepGuard); !ok {
		t.Fatalf("WFR on eventual engine should be DepGuard-wrapped")
	}
}

func TestRoleStringsAndScope(t *testing.T) {
	if RolePermanent.String() != "permanent" || RoleObjectInitiated.String() != "object-initiated" ||
		RoleClientInitiated.String() != "client-initiated" || Role(9).String() != "Role(?)" {
		t.Fatalf("role strings wrong")
	}
	if !RolePermanent.InScope(strategy.ScopePermanent) || RoleObjectInitiated.InScope(strategy.ScopePermanent) {
		t.Fatalf("scope permanent wrong")
	}
	if !RoleObjectInitiated.InScope(strategy.ScopePermanentAndObjectInitiated) ||
		RoleClientInitiated.InScope(strategy.ScopePermanentAndObjectInitiated) {
		t.Fatalf("scope permanent+object wrong")
	}
	if !RoleClientInitiated.InScope(strategy.ScopeAll) {
		t.Fatalf("scope all wrong")
	}
}

func TestCloseFailsParkedReads(t *testing.T) {
	env := newFakeEnv()
	st := strategy.Conference(time.Hour)
	st.ClientOutdate = strategy.Wait
	o := newObj(t, env, RolePermanent, st, "")
	o.Handle(&msg.Message{
		Kind: msg.KindReadRequest, Object: "obj", From: "m-ep", Client: 1,
		VVec: msg.VecFrom(ids.VersionVec{1: 9}),
		Inv:  msg.Invocation{Method: webdoc.MethodGetPage, Page: "p"},
	})
	o.Close()
	replies := env.takeSent(msg.KindReadReply)
	if len(replies) != 1 || replies[0].Status != msg.StatusRetry {
		t.Fatalf("close replies: %+v", replies)
	}
	// Handlers are inert after close.
	o.Handle(writeMsg(1, 1, "p", "x"))
	if acks := env.takeSent(msg.KindWriteReply); len(acks) != 0 {
		t.Fatalf("closed object still handling: %+v", acks)
	}
}

func TestInvalidStrategyRejected(t *testing.T) {
	st := strategy.Conference(time.Hour)
	st.LazyInterval = 0
	if _, err := New(Config{
		Env: newFakeEnv(), Object: "obj", Self: 1, Addr: "a", Role: RolePermanent, Strat: st,
	}); err == nil {
		t.Fatalf("invalid strategy accepted")
	}
}

// --- batch frames -------------------------------------------------------------

// TestLazyFlushShipsOneBatchFrame: N writes aggregated by a lazy interval
// leave as a single KindUpdateBatch frame per child, not N KindUpdate
// messages.
func TestLazyFlushShipsOneBatchFrame(t *testing.T) {
	env := newFakeEnv()
	o := newObj(t, env, RolePermanent, strategy.Conference(10*time.Millisecond), "")
	o.Handle(&msg.Message{Kind: msg.KindSubscribe, Object: "obj", From: "child-1"})
	env.sent = nil
	for i := 1; i <= 5; i++ {
		o.Handle(writeMsg(1, uint64(i), "p", "x"))
	}
	if got := env.takeSent(msg.KindUpdate); len(got) != 0 {
		t.Fatalf("updates shipped before the lazy flush: %+v", got)
	}
	env.clk.Advance(10 * time.Millisecond)
	batches := env.takeSent(msg.KindUpdateBatch)
	if len(batches) != 1 {
		t.Fatalf("batch frames: %d, want 1", len(batches))
	}
	if got := len(batches[0].Batch); got != 5 {
		t.Fatalf("batch entries: %d, want 5", got)
	}
	for i, e := range batches[0].Batch {
		if e.Write.Seq != uint64(i+1) {
			t.Fatalf("entry %d out of order: %+v", i, e.Write)
		}
	}
	if s := o.Stats(); s.BatchesSent != 1 || s.BatchedUpdates != 5 {
		t.Fatalf("batch stats: %+v", s)
	}
}

// TestUpdateBatchFanIn: a received batch frame fans into the ordering engine
// entry by entry and applies in order.
func TestUpdateBatchFanIn(t *testing.T) {
	env := newFakeEnv()
	o := newObj(t, env, RoleClientInitiated, strategy.Conference(time.Hour), "parent-store")
	var entries []msg.BatchUpdate
	for i := 1; i <= 3; i++ {
		entries = append(entries, msg.BatchUpdate{
			Write: ids.WiD{Client: 1, Seq: uint64(i)},
			Inv: msg.Invocation{
				Method: webdoc.MethodAppendPage, Page: "p",
				Args: webdoc.EncodeWriteArgs(webdoc.WriteArgs{Content: []byte("x")}),
			},
		})
	}
	o.Handle(&msg.Message{
		Kind: msg.KindUpdateBatch, Object: "obj", From: "parent-store", Batch: entries,
	})
	if s := o.Stats(); s.UpdatesApplied != 3 {
		t.Fatalf("updates applied: %+v", s)
	}
	if !o.Applied().CoversWrite(ids.WiD{Client: 1, Seq: 3}) {
		t.Fatalf("applied vector missing batched writes: %v", o.Applied())
	}
	got, err := env.ctrl.ServeRead(msg.Invocation{Method: webdoc.MethodGetPage, Page: "p"})
	if err != nil {
		t.Fatal(err)
	}
	pg, err := webdoc.DecodePage(got)
	if err != nil || string(pg.Content) != "xxx" {
		t.Fatalf("content after batch fan-in: %q, %v", pg.Content, err)
	}
}

// TestUpdateBatchGapStillDemands: a batch whose first entry leaves a gap
// buffers and triggers a demand, like a standalone out-of-order update.
func TestUpdateBatchGapStillDemands(t *testing.T) {
	env := newFakeEnv()
	st := strategy.Conference(time.Hour)
	st.ObjectOutdate = strategy.Demand
	o := newObj(t, env, RoleClientInitiated, st, "parent-store")
	o.Handle(&msg.Message{
		Kind: msg.KindUpdateBatch, Object: "obj", From: "parent-store",
		Batch: []msg.BatchUpdate{{
			Write: ids.WiD{Client: 1, Seq: 3}, // gap: 1,2 never arrived
			Inv: msg.Invocation{
				Method: webdoc.MethodAppendPage, Page: "p",
				Args: webdoc.EncodeWriteArgs(webdoc.WriteArgs{Content: []byte("x")}),
			},
		}},
	})
	if s := o.Stats(); s.UpdatesApplied != 0 || s.UpdatesBuffered != 1 {
		t.Fatalf("gap handling stats: %+v", s)
	}
	if got := env.takeSent(msg.KindDemandUpdate); len(got) != 1 {
		t.Fatalf("demands: %+v", got)
	}
}

// TestGossipShipsBatch: an anti-entropy exchange ships all missing updates
// to the peer in one batch frame.
func TestGossipShipsBatch(t *testing.T) {
	env := newFakeEnv()
	st := strategy.MirroredSite(time.Hour)
	st.CoherenceTransfer = strategy.CoherencePartial
	o := newObj(t, env, RoleObjectInitiated, st, "")
	for i := 1; i <= 4; i++ {
		o.Handle(writeMsg(1, uint64(i), "p", "x"))
	}
	env.sent = nil
	o.Handle(&msg.Message{
		Kind: msg.KindGossip, Object: "obj", From: "peer-1",
		VVec: msg.VecFrom(ids.VersionVec{1: 1}),
	})
	batches := env.takeSent(msg.KindUpdateBatch)
	if len(batches) != 1 || len(batches[0].Batch) != 3 {
		t.Fatalf("gossip delta batches: %+v", batches)
	}
	if replies := env.takeSent(msg.KindGossipReply); len(replies) != 1 {
		t.Fatalf("gossip replies: %+v", replies)
	}
}

// TestBatchRelayedAsOneFramePerHop: a mid-hierarchy store receiving an
// aggregated KindUpdateBatch relays everything the batch releases — including
// previously buffered updates it unblocks — to its children as ONE batch
// frame, instead of one KindUpdate frame per released update.
func TestBatchRelayedAsOneFramePerHop(t *testing.T) {
	env := newFakeEnv()
	o := newObj(t, env, RoleObjectInitiated, immediatePushStrategy(), "parent")
	o.Handle(&msg.Message{Kind: msg.KindSubscribe, Object: "obj", From: "child-1"})
	o.Handle(&msg.Message{Kind: msg.KindSubscribe, Object: "obj", From: "child-2"})
	env.sent = nil

	upd := func(seq uint64) msg.BatchUpdate {
		return msg.BatchUpdate{
			Write: ids.WiD{Client: 1, Seq: seq},
			Inv: msg.Invocation{
				Method: webdoc.MethodAppendPage, Page: "p",
				Args: webdoc.EncodeWriteArgs(webdoc.WriteArgs{Content: []byte("x")}),
			},
		}
	}
	// Seq 4 arrives alone and buffers (gap: 1..3 missing); nothing relays.
	one := upd(4)
	o.Handle(&msg.Message{
		Kind: msg.KindUpdate, Object: "obj", From: "parent",
		Write: one.Write, Inv: one.Inv,
	})
	if got := env.takeSent(msg.KindUpdateBatch); len(got) != 0 {
		t.Fatalf("buffered update must not relay: %+v", got)
	}
	env.sent = nil // drop the gap-triggered demand

	// The demanded batch 1..3 arrives and releases 1,2,3 plus buffered 4.
	o.Handle(&msg.Message{
		Kind: msg.KindUpdateBatch, Object: "obj", From: "parent",
		Batch: []msg.BatchUpdate{upd(1), upd(2), upd(3)},
	})
	if singles := env.takeSent(msg.KindUpdate); len(singles) != 0 {
		t.Fatalf("relay de-batched into %d KindUpdate frames", len(singles))
	}
	relays := env.takeSent(msg.KindUpdateBatch)
	if len(relays) != 2 { // one multicast frame recorded per child
		t.Fatalf("want one batch frame to each of 2 children, got %d", len(relays))
	}
	for _, r := range relays {
		if len(r.Batch) != 4 {
			t.Fatalf("relayed batch carries %d updates, want 4 (3 arrived + 1 unblocked)", len(r.Batch))
		}
	}
	if got := o.Stats(); got.BatchesSent != 1 || got.BatchedUpdates != 4 {
		t.Fatalf("batch stats: %+v", got)
	}
}

// immediatePushStrategy is the Table-1 combination used by the relay and
// fault-regression tests: PRAM, immediate push of partial (operation)
// updates, demand reaction.
func immediatePushStrategy() strategy.Strategy {
	return strategy.Strategy{
		Model:             coherence.PRAM,
		Propagation:       strategy.PropagateUpdate,
		Scope:             strategy.ScopeAll,
		Writers:           strategy.SingleWriter,
		Initiative:        strategy.Push,
		Instant:           strategy.Immediate,
		AccessTransfer:    strategy.TransferPartial,
		CoherenceTransfer: strategy.CoherencePartial,
		ObjectOutdate:     strategy.Demand,
		ClientOutdate:     strategy.Demand,
	}
}

// TestTransferFullMissingElementFailsFast is the regression test for the
// TransferFull livelock: a read for a page that exists neither locally nor
// at the parent must fail with not-found once a completed full fetch still
// lacks it, instead of looping fetch → state-reply → reconsiderParked until
// the read times out (~25k demands/s in the original repro).
func TestTransferFullMissingElementFailsFast(t *testing.T) {
	env := newFakeEnv()
	st := immediatePushStrategy()
	st.AccessTransfer = strategy.TransferFull
	o := newObj(t, env, RoleClientInitiated, st, "parent")
	o.Handle(&msg.Message{
		Kind: msg.KindReadRequest, Object: "obj", From: "reader-ep", Client: 9,
		Inv: msg.Invocation{Method: webdoc.MethodGetPage, Page: "ghost"},
	})
	reqs := env.takeSent(msg.KindStateRequest)
	if len(reqs) != 1 || len(reqs[0].Pages) != 0 {
		t.Fatalf("want one full state request, got %+v", reqs)
	}
	if replies := env.takeSent(msg.KindReadReply); len(replies) != 0 {
		t.Fatalf("read answered before the fetch completed: %+v", replies)
	}
	// The parent's full snapshot arrives — and still has no such page.
	snap, err := control.New(webdoc.New()).Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	o.Handle(&msg.Message{
		Kind: msg.KindStateReply, Object: "obj", From: "parent", Payload: snap,
	})
	replies := env.takeSent(msg.KindReadReply)
	if len(replies) != 1 || replies[0].Status != msg.StatusNotFound {
		t.Fatalf("want immediate not-found reply, got %+v", replies)
	}
	if again := env.takeSent(msg.KindStateRequest); len(again) != 0 {
		t.Fatalf("livelock: refetched %d times after a complete full fetch", len(again))
	}
	if got := o.Stats(); got.ReadsFailed != 1 || got.DemandsSent != 1 {
		t.Fatalf("stats: %+v", got)
	}
}

// TestDemandRetryAfterLostReply: a demand whose reply frame is lost must be
// re-sent after the bounded retry delay while the gap persists, and the
// retries must stop once the gap is filled.
func TestDemandRetryAfterLostReply(t *testing.T) {
	env := newFakeEnv()
	o := newObj(t, env, RoleClientInitiated, immediatePushStrategy(), "parent")
	appendInv := msg.Invocation{
		Method: webdoc.MethodAppendPage, Page: "p",
		Args: webdoc.EncodeWriteArgs(webdoc.WriteArgs{Content: []byte("x")}),
	}
	// Seq 3 arrives with 1..2 missing: buffered, gap demand sent.
	o.Handle(&msg.Message{
		Kind: msg.KindUpdate, Object: "obj", From: "parent",
		Write: ids.WiD{Client: 1, Seq: 3}, Inv: appendInv,
	})
	if d := env.takeSent(msg.KindDemandUpdate); len(d) != 1 {
		t.Fatalf("want 1 gap demand, got %d", len(d))
	}
	// The replay batch is lost; after the retry delay the store re-asks.
	env.clk.Advance(60 * time.Millisecond)
	if d := env.takeSent(msg.KindDemandUpdate); len(d) != 1 {
		t.Fatalf("want 1 retried demand after the delay, got %d", len(d))
	}
	// The retried replay arrives and fills the gap.
	o.Handle(&msg.Message{
		Kind: msg.KindUpdateBatch, Object: "obj", From: "parent",
		Batch: []msg.BatchUpdate{
			{Write: ids.WiD{Client: 1, Seq: 1}, Inv: appendInv},
			{Write: ids.WiD{Client: 1, Seq: 2}, Inv: appendInv},
		},
	})
	if !o.Applied().CoversWrite(ids.WiD{Client: 1, Seq: 3}) {
		t.Fatalf("gap not filled: %v", o.Applied())
	}
	// No further retries once recovered.
	env.clk.Advance(time.Second)
	if d := env.takeSent(msg.KindDemandUpdate); len(d) != 0 {
		t.Fatalf("retries continued after recovery: %d", len(d))
	}
}

// TestDemandRetryRecoversAfterExhaustedCycle: exhausting one retry cycle
// against a dead parent must not permanently disable retries — a fresh gap
// opens a fresh cycle.
func TestDemandRetryRecoversAfterExhaustedCycle(t *testing.T) {
	env := newFakeEnv()
	o := newObj(t, env, RoleClientInitiated, immediatePushStrategy(), "parent")
	appendInv := msg.Invocation{
		Method: webdoc.MethodAppendPage, Page: "p",
		Args: webdoc.EncodeWriteArgs(webdoc.WriteArgs{Content: []byte("x")}),
	}
	// Gap with a dead parent: retries run until the cap, then stop.
	o.Handle(&msg.Message{
		Kind: msg.KindUpdate, Object: "obj", From: "parent",
		Write: ids.WiD{Client: 1, Seq: 2}, Inv: appendInv,
	})
	for i := 0; i < maxDemandRetries+5; i++ {
		env.clk.Advance(60 * time.Millisecond)
	}
	if d := env.takeSent(msg.KindDemandUpdate); len(d) != maxDemandRetries+1 {
		t.Fatalf("want initial demand + %d retries, got %d", maxDemandRetries, len(d))
	}
	// The parent heals and fills the gap; a new gap later must retry again.
	o.Handle(&msg.Message{
		Kind: msg.KindUpdate, Object: "obj", From: "parent",
		Write: ids.WiD{Client: 1, Seq: 1}, Inv: appendInv,
	})
	env.sent = nil
	o.Handle(&msg.Message{
		Kind: msg.KindUpdate, Object: "obj", From: "parent",
		Write: ids.WiD{Client: 1, Seq: 4}, Inv: appendInv,
	})
	if d := env.takeSent(msg.KindDemandUpdate); len(d) != 1 {
		t.Fatalf("want fresh gap demand, got %d", len(d))
	}
	env.clk.Advance(60 * time.Millisecond)
	if d := env.takeSent(msg.KindDemandUpdate); len(d) != 1 {
		t.Fatalf("exhausted earlier cycle disabled retries: got %d retried demands, want 1", len(d))
	}
}

// pageTokens reads one page and decodes its content to a string.
func pageTokens(t *testing.T, env *fakeEnv, page string) string {
	t.Helper()
	pg, err := webdoc.DecodePage(pageContent(t, env, page))
	if err != nil {
		t.Fatal(err)
	}
	return string(pg.Content)
}

// TestStalePageStateReplyDoesNotRollBackPage is the regression for the chaos
// suite's rare MW/PRAM flake under sequential consistency: demand retries
// plus link-level duplication mean several per-page StateReply frames can be
// in flight, and a delayed one can land after newer pushes. Before the stale
// guard, ApplyElement overwrote the page with the old snapshot and
// reapplyBeyond could only restore ops present in the update log — ops whose
// effects had arrived inside the subscribe-time full state transfer were
// never logged — leaving the page with a permanent mid-sequence gap (client
// 1's tokens jumping 1 -> 4) that any reader could observe.
func TestStalePageStateReplyDoesNotRollBackPage(t *testing.T) {
	env := newFakeEnv()
	o := newObj(t, env, RoleClientInitiated, strategy.Whiteboard(), "parent-store")

	appendUpd := func(seq uint64) *coherence.Update {
		return &coherence.Update{
			Write: ids.WiD{Client: 1, Seq: seq}, GlobalSeq: seq,
			Inv: msg.Invocation{
				Method: webdoc.MethodAppendPage, Page: "p",
				Args: webdoc.EncodeWriteArgs(webdoc.WriteArgs{
					Content: []byte(fmt.Sprintf("c1.%d;", seq)),
				}),
			},
		}
	}

	// Parent history: token 1 applied, element snapshot taken (the reply
	// that will arrive late), then tokens 2-3 and a full snapshot.
	parent := control.New(webdoc.New())
	if err := parent.ApplyOp(appendUpd(1)); err != nil {
		t.Fatal(err)
	}
	staleEl, err := parent.SnapshotElement("p")
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(2); seq <= 3; seq++ {
		if err := parent.ApplyOp(appendUpd(seq)); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := parent.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	// Bootstrap: tokens 1-3 arrive via full state transfer (never logged).
	o.Handle(&msg.Message{
		Kind: msg.KindSubscribeAck, Object: "obj", From: "parent-store",
		Payload: snap, VVec: msg.VecFrom(ids.VersionVec{1: 3}), GlobalSeq: 4,
	})
	// Tokens 4-5 arrive as ordered pushes (these ARE logged).
	for seq := uint64(4); seq <= 5; seq++ {
		u := appendUpd(seq)
		o.Handle(&msg.Message{
			Kind: msg.KindUpdate, Object: "obj", From: "parent-store",
			Write: u.Write, GlobalSeq: u.GlobalSeq, Inv: u.Inv,
		})
	}
	before := pageTokens(t, env, "p")
	for seq := 1; seq <= 5; seq++ {
		if !strings.Contains(before, fmt.Sprintf("c1.%d;", seq)) {
			t.Fatalf("setup: token %d missing from %q", seq, before)
		}
	}

	// The stale per-page reply (vector {1:1}, long since covered) lands.
	o.Handle(&msg.Message{
		Kind: msg.KindStateReply, Object: "obj", From: "parent-store",
		Pages: []string{"p"}, Payload: staleEl,
		VVec: msg.VecFrom(ids.VersionVec{1: 1}),
	})
	if after := pageTokens(t, env, "p"); after != before {
		t.Fatalf("stale page reply rolled content back:\n before %q\n after  %q", before, after)
	}
}
