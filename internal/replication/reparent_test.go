package replication

import (
	"testing"
	"time"

	"repro/internal/msg"
	"repro/internal/strategy"
	"repro/internal/wal"
)

// newReparentObj builds a cache replica with an explicit retry cadence and,
// optionally, a resolver seam and a digest-based parent watch.
func newReparentObj(t *testing.T, env Env, parent string, resolve func() []ParentCandidate, interval time.Duration, after int) *Object {
	t.Helper()
	o, err := New(Config{
		Env: env, Object: "obj", Self: 7, Addr: "self", Role: RoleClientInitiated,
		Parent: parent, Strat: strategy.Conference(time.Hour), ReadTimeout: time.Second,
		DemandRetry: 50 * time.Millisecond, DigestInterval: interval,
		ResolveParent: resolve, ReparentAfter: after,
	})
	if err != nil {
		t.Fatal(err)
	}
	return o
}

// exhaustSubscribe drives the retry cycle to its budget: each step fires one
// retry timer until armSubscribeRetry sees maxSubscribeRetries.
func exhaustSubscribe(env *fakeEnv) {
	for i := 0; i <= maxSubscribeRetries; i++ {
		env.clk.Advance(50 * time.Millisecond)
	}
}

// The stranded-child regression: exhausting the subscribe retry budget used
// to leave the replica outside any children set forever, even when the same
// parent came back. Now the cooldown re-dials it and the late ack completes
// a (same-parent) re-parent handshake.
func TestSubscribeExhaustionRecoversSameParentLater(t *testing.T) {
	env := newFakeEnv()
	o := newReparentObj(t, env, "p1", nil, 0, 0)
	defer o.Close()
	o.SubscribeToParent()
	exhaustSubscribe(env)
	env.sent = nil

	// The budget is spent; nothing more is dialled within one retry period.
	env.clk.Advance(50 * time.Millisecond)
	if subs := env.takeSent(msg.KindSubscribe); len(subs) != 0 {
		t.Fatalf("subscribe sent past the budget without cooldown: %+v", subs)
	}

	// After the cooldown the same parent is dialled again...
	env.clk.Advance(50 * time.Millisecond * maxSubscribeRetries / 2)
	subs := env.takeSent(msg.KindSubscribe)
	if len(subs) == 0 || subs[0].To != "p1" {
		t.Fatalf("no same-parent-later re-subscribe: %+v", subs)
	}
	// ...and its ack completes the handshake where the old code stayed
	// stranded forever.
	o.Handle(&msg.Message{Kind: msg.KindSubscribeAck, Object: "obj", From: "p1"})
	if !o.subAcked {
		t.Fatal("late parent ack did not complete the handshake")
	}
	if s := o.Stats(); s.ReparentsDone != 1 {
		t.Fatalf("ReparentsDone = %d, want 1", s.ReparentsDone)
	}
}

func TestSubscribeExhaustionReparentsToResolvedCandidate(t *testing.T) {
	env := newFakeEnv()
	resolve := func() []ParentCandidate {
		return []ParentCandidate{
			{Addr: "p1", Role: RoleObjectInitiated},          // the dead parent
			{Addr: "self", Role: RolePermanent},              // never itself
			{Addr: "other-cache", Role: RoleClientInitiated}, // not closer to the root
			{Addr: "perm", Role: RolePermanent},
		}
	}
	o := newReparentObj(t, env, "p1", resolve, 0, 0)
	defer o.Close()
	o.SubscribeToParent()
	exhaustSubscribe(env)

	subs := env.takeSent(msg.KindSubscribe)
	if len(subs) == 0 || subs[len(subs)-1].To != "perm" {
		t.Fatalf("exhaustion did not re-subscribe at the permanent store: %+v", subs)
	}
	if o.Parent() != "perm" {
		t.Fatalf("parent = %q, want perm", o.Parent())
	}
	// The presumed-dead parent gets a best-effort unsubscribe so it stops
	// pushing here if it was merely slow.
	if us := env.takeSent(msg.KindUnsubscribe); len(us) != 1 || us[0].To != "p1" {
		t.Fatalf("unsubscribe to old parent: %+v", us)
	}
	o.Handle(&msg.Message{Kind: msg.KindSubscribeAck, Object: "obj", From: "perm"})
	if s := o.Stats(); s.ReparentsDone != 1 {
		t.Fatalf("ReparentsDone = %d, want 1", s.ReparentsDone)
	}
}

func TestMissedDigestsTriggerReparent(t *testing.T) {
	env := newFakeEnv()
	resolve := func() []ParentCandidate {
		return []ParentCandidate{{Addr: "perm", Role: RolePermanent}}
	}
	o := newReparentObj(t, env, "mirror", resolve, 100*time.Millisecond, 2)
	defer o.Close()
	o.SubscribeToParent()
	o.Handle(&msg.Message{Kind: msg.KindSubscribeAck, Object: "obj", From: "mirror"})
	env.sent = nil

	// Two full watch periods (1.5 intervals each) of parent silence: the
	// watch declares the mirror dead and adopts the permanent store.
	env.clk.Advance(500 * time.Millisecond)
	subs := env.takeSent(msg.KindSubscribe)
	if len(subs) == 0 || subs[len(subs)-1].To != "perm" {
		t.Fatalf("silent parent did not trigger re-parent: %+v", subs)
	}
	if s := o.Stats(); s.ParentMissedDigests < 2 {
		t.Fatalf("ParentMissedDigests = %d, want >= 2", s.ParentMissedDigests)
	}
	o.Handle(&msg.Message{Kind: msg.KindSubscribeAck, Object: "obj", From: "perm"})
	if o.Parent() != "perm" || o.Stats().ReparentsDone != 1 {
		t.Fatalf("parent %q, stats %+v", o.Parent(), o.Stats())
	}
}

func TestParentDigestsKeepWatchQuiet(t *testing.T) {
	env := newFakeEnv()
	resolve := func() []ParentCandidate {
		return []ParentCandidate{{Addr: "perm", Role: RolePermanent}}
	}
	o := newReparentObj(t, env, "mirror", resolve, 100*time.Millisecond, 2)
	defer o.Close()
	o.SubscribeToParent()
	o.Handle(&msg.Message{Kind: msg.KindSubscribeAck, Object: "obj", From: "mirror"})
	env.sent = nil

	// A healthy parent lands a digest every interval; the watch never fires.
	for i := 0; i < 10; i++ {
		env.clk.Advance(100 * time.Millisecond)
		o.Handle(&msg.Message{Kind: msg.KindDigest, Object: "obj", From: "mirror"})
	}
	if subs := env.takeSent(msg.KindSubscribe); len(subs) != 0 {
		t.Fatalf("healthy parent was re-parented away: %+v", subs)
	}
	if o.Parent() != "mirror" {
		t.Fatalf("parent = %q, want mirror", o.Parent())
	}
	if s := o.Stats(); s.ReparentsDone != 0 {
		t.Fatalf("stats: %+v", s)
	}
}

// Group commit: with batch mode on, acks park until FlushAcks pays one
// barrier for the whole batch; durability semantics (records stable before
// the ack leaves) are unchanged.
func TestGroupCommitBatchesAcks(t *testing.T) {
	dir := t.TempDir()
	env := newFakeEnv()
	wlog, rec, err := wal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	o, err := New(Config{
		Env: env, Object: "obj", Self: 1, Addr: "self", Role: RolePermanent,
		Strat: strategy.Conference(time.Hour), ReadTimeout: time.Second,
		WAL: wlog, Recovered: rec, WALSync: wal.SyncAlways,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	o.SetGroupCommit(true)

	o.Handle(writeMsg(1, 1, "p", "a"))
	o.Handle(writeMsg(1, 2, "p", "b"))
	if acks := env.takeSent(msg.KindWriteReply); len(acks) != 0 {
		t.Fatalf("acks escaped before the batch barrier: %+v", acks)
	}
	o.FlushAcks()
	if acks := env.takeSent(msg.KindWriteReply); len(acks) != 2 {
		t.Fatalf("flushed acks: %+v", acks)
	}
	if s := o.Stats(); s.GroupCommits != 1 {
		t.Fatalf("GroupCommits = %d, want 1", s.GroupCommits)
	}

	// Turning batch mode off flushes anything parked and restores the
	// synchronous per-ack barrier.
	o.Handle(writeMsg(1, 3, "p", "c"))
	o.SetGroupCommit(false)
	if acks := env.takeSent(msg.KindWriteReply); len(acks) != 1 {
		t.Fatalf("acks after disabling batch mode: %+v", acks)
	}
	o.Handle(writeMsg(1, 4, "p", "d"))
	if acks := env.takeSent(msg.KindWriteReply); len(acks) != 1 {
		t.Fatalf("synchronous ack after disable: %+v", acks)
	}
}
