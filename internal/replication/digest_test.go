package replication

import (
	"testing"
	"time"

	"repro/internal/coherence"
	"repro/internal/control"
	"repro/internal/ids"
	"repro/internal/msg"
	"repro/internal/semantics/webdoc"
	"repro/internal/strategy"
	"repro/internal/vclock"
)

// newDigestObj builds an object with heartbeats enabled at the given
// interval. Jitter adds at most interval/4, so advancing the fake clock by
// 2×interval always fires at least one heartbeat.
func newDigestObj(t *testing.T, env Env, role Role, st strategy.Strategy, parent string, interval time.Duration) *Object {
	t.Helper()
	o, err := New(Config{
		Env: env, Object: "obj", Self: 1, Addr: "self", Role: role,
		Parent: parent, Strat: st, ReadTimeout: time.Second,
		DigestInterval: interval,
	})
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestDigestHeartbeatEmission(t *testing.T) {
	env := newFakeEnv()
	o := newDigestObj(t, env, RolePermanent, strategy.Conference(time.Hour), "", 100*time.Millisecond)

	// No children yet: nothing to heartbeat, no timer churn.
	env.clk.Advance(300 * time.Millisecond)
	if ds := env.takeSent(msg.KindDigest); len(ds) != 0 {
		t.Fatalf("digest sent with no children: %+v", ds)
	}

	o.Handle(&msg.Message{Kind: msg.KindSubscribe, Object: "obj", From: "child-1"})
	env.takeSent(msg.KindSubscribeAck)
	o.Handle(writeMsg(1, 1, "p", "x"))
	env.sent = nil

	env.clk.Advance(200 * time.Millisecond)
	ds := env.takeSent(msg.KindDigest)
	if len(ds) == 0 {
		t.Fatalf("no heartbeat within 2x interval")
	}
	if ds[0].To != "child-1" || ds[0].From != "self" {
		t.Fatalf("digest addressing: %+v", ds[0])
	}
	if !ds[0].VVec.CoversWrite(ids.WiD{Client: 1, Seq: 1}) {
		t.Fatalf("digest vector misses applied write: %+v", ds[0].VVec)
	}

	// The heartbeat re-arms, and the cached snapshot tracks later applies.
	o.Handle(writeMsg(1, 2, "p", "y"))
	env.sent = nil
	env.clk.Advance(200 * time.Millisecond)
	ds = env.takeSent(msg.KindDigest)
	if len(ds) == 0 || !ds[0].VVec.CoversWrite(ids.WiD{Client: 1, Seq: 2}) {
		t.Fatalf("re-armed digest stale: %+v", ds)
	}
}

func TestDigestDisabledByDefault(t *testing.T) {
	env := newFakeEnv()
	o := newObj(t, env, RolePermanent, strategy.Conference(time.Hour), "")
	o.Handle(&msg.Message{Kind: msg.KindSubscribe, Object: "obj", From: "child-1"})
	env.takeSent(msg.KindSubscribeAck)
	o.Handle(writeMsg(1, 1, "p", "x"))
	env.clk.Advance(time.Minute)
	if ds := env.takeSent(msg.KindDigest); len(ds) != 0 {
		t.Fatalf("heartbeats must be off by default, got %+v", ds)
	}
}

func TestDigestGapTriggersDemand(t *testing.T) {
	env := newFakeEnv()
	o := newObj(t, env, RoleClientInitiated, strategy.Conference(time.Hour), "parent-store")

	// A digest announcing writes we lack must trigger exactly one demand.
	o.Handle(&msg.Message{
		Kind: msg.KindDigest, Object: "obj", From: "parent-store",
		VVec: msg.VecFrom(ids.VersionVec{1: 3}),
	})
	dem := env.takeSent(msg.KindDemandUpdate)
	if len(dem) != 1 || dem[0].To != "parent-store" {
		t.Fatalf("demands after gap digest: %+v", dem)
	}
	if s := o.Stats(); s.DigestsRecv != 1 || s.DigestDemands != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestDigestCoveredStaysQuiet(t *testing.T) {
	env := newFakeEnv()
	o := newObj(t, env, RoleClientInitiated, strategy.Conference(time.Hour), "parent-store")
	o.Handle(&msg.Message{
		Kind: msg.KindUpdate, Object: "obj", From: "parent-store",
		Write: ids.WiD{Client: 1, Seq: 1},
		Inv:   writeMsg(1, 1, "p", "x").Inv,
	})
	env.sent = nil
	o.Handle(&msg.Message{
		Kind: msg.KindDigest, Object: "obj", From: "parent-store",
		VVec: msg.VecFrom(ids.VersionVec{1: 1}),
	})
	if dem := env.takeSent(msg.KindDemandUpdate); len(dem) != 0 {
		t.Fatalf("covered digest triggered demand: %+v", dem)
	}
	if s := o.Stats(); s.DigestDemands != 0 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestDigestIgnoresNonParentSender(t *testing.T) {
	env := newFakeEnv()
	o := newObj(t, env, RoleClientInitiated, strategy.Conference(time.Hour), "parent-store")
	o.Handle(&msg.Message{
		Kind: msg.KindDigest, Object: "obj", From: "someone-else",
		VVec: msg.VecFrom(ids.VersionVec{1: 3}),
	})
	if dem := env.takeSent(msg.KindDemandUpdate); len(dem) != 0 {
		t.Fatalf("non-parent digest triggered demand: %+v", dem)
	}
}

// TestDigestDoesNotDuplicateOutstandingDemand pins the integration with the
// demand-retry machinery: while a demand is in flight (retry timer armed, no
// coherence response yet), a heartbeat showing the same gap must not issue a
// second request — the retry timer owns re-requests. Once the parent
// answers, a new gap digest demands again.
func TestDigestDoesNotDuplicateOutstandingDemand(t *testing.T) {
	env := newFakeEnv()
	o := newObj(t, env, RoleClientInitiated, strategy.Conference(time.Hour), "parent-store")

	o.demandFromParent()
	if dem := env.takeSent(msg.KindDemandUpdate); len(dem) != 1 {
		t.Fatalf("setup demand: %+v", dem)
	}
	o.Handle(&msg.Message{
		Kind: msg.KindDigest, Object: "obj", From: "parent-store",
		VVec: msg.VecFrom(ids.VersionVec{1: 3}),
	})
	if dem := env.takeSent(msg.KindDemandUpdate); len(dem) != 0 {
		t.Fatalf("digest duplicated an outstanding demand: %+v", dem)
	}
	if s := o.Stats(); s.DigestDemands != 0 {
		t.Fatalf("stats counted a suppressed demand: %+v", s)
	}

	// The parent answers ("nothing missing"); the demand cycle completes.
	o.Handle(&msg.Message{Kind: msg.KindUpdateAck, Object: "obj", From: "parent-store"})
	o.Handle(&msg.Message{
		Kind: msg.KindDigest, Object: "obj", From: "parent-store",
		VVec: msg.VecFrom(ids.VersionVec{1: 3}),
	})
	if dem := env.takeSent(msg.KindDemandUpdate); len(dem) != 1 {
		t.Fatalf("post-answer gap digest should demand: %+v", dem)
	}
	if s := o.Stats(); s.DigestDemands != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

// TestDigestGapDemandIsRetried pins the interplay promised in the README: a
// digest-initiated demand whose frame (or reply) is lost IS re-sent on the
// DemandRetry cadence, even though a silent-tail-loss gap has no buffered
// updates and no parked reads to witness it — recovery must not wait a full
// extra heartbeat.
func TestDigestGapDemandIsRetried(t *testing.T) {
	env := newFakeEnv()
	o := newObj(t, env, RoleClientInitiated, strategy.Conference(time.Hour), "parent-store")

	o.Handle(&msg.Message{
		Kind: msg.KindDigest, Object: "obj", From: "parent-store",
		VVec: msg.VecFrom(ids.VersionVec{1: 3}),
	})
	if dem := env.takeSent(msg.KindDemandUpdate); len(dem) != 1 {
		t.Fatalf("initial digest demand: %+v", dem)
	}
	if o.engine.Pending() != 0 || len(o.parked) != 0 {
		t.Fatalf("precondition: the gap must be silent (no pending, no parked)")
	}
	// The demand (or its reply) is lost; the retry timer must chase it.
	env.clk.Advance(o.demandRetry)
	if dem := env.takeSent(msg.KindDemandUpdate); len(dem) != 1 {
		t.Fatalf("lost digest demand not retried: %+v", dem)
	}
	// The parent finally answers; the cycle completes and retries stop.
	o.Handle(&msg.Message{Kind: msg.KindUpdateAck, Object: "obj", From: "parent-store"})
	env.clk.Advance(10 * o.demandRetry)
	if dem := env.takeSent(msg.KindDemandUpdate); len(dem) != 0 {
		t.Fatalf("retries continued after the parent answered: %+v", dem)
	}
}

// TestDigestAdvertisesLWWLoserComponent: an eventual-model write that loses
// the last-writer-wins race advances the applied vector without releasing an
// update; the heartbeat digest must still advertise that component — a
// cached snapshot that misses it would under-report the store's knowledge.
func TestDigestAdvertisesLWWLoserComponent(t *testing.T) {
	env := newFakeEnv()
	o, err := New(Config{
		Env: env, Object: "obj", Self: 1, Addr: "self", Role: RolePermanent,
		Strat: strategy.MirroredSite(time.Hour), ReadTimeout: time.Second,
		DigestInterval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	winner := writeMsg(2, 1, "p", "winner")
	winner.Stamp = vclock.Stamp{Time: 100, Client: 2}
	o.Handle(winner)
	loser := writeMsg(1, 1, "p", "loser") // same page, older stamp: LWW loses
	loser.Stamp = vclock.Stamp{Time: 10, Client: 1}
	o.Handle(loser)

	v := o.digestVec()
	if !v.CoversWrite(ids.WiD{Client: 1, Seq: 1}) {
		t.Fatalf("digest misses the LWW loser's component: %+v", v)
	}
}

// TestUpdateAckClosesUndisseminatableGap: a demand answered with "nothing
// missing" carries the parent's applied vector, which may cover writes that
// will never be sent (LWW losers are not logged). The child must fold that
// vector into its knowledge, or every subsequent heartbeat would re-trigger
// the same futile demand forever.
func TestUpdateAckClosesUndisseminatableGap(t *testing.T) {
	env := newFakeEnv()
	o := newObj(t, env, RoleClientInitiated, strategy.Conference(time.Hour), "parent-store")

	gapDigest := &msg.Message{
		Kind: msg.KindDigest, Object: "obj", From: "parent-store",
		VVec: msg.VecFrom(ids.VersionVec{1: 3}),
	}
	o.Handle(gapDigest)
	if dem := env.takeSent(msg.KindDemandUpdate); len(dem) != 1 {
		t.Fatalf("first gap digest should demand: %+v", dem)
	}
	// The parent has nothing to replay (the covered write was superseded
	// before dissemination) and acks with its applied vector.
	o.Handle(&msg.Message{
		Kind: msg.KindUpdateAck, Object: "obj", From: "parent-store",
		VVec: msg.VecFrom(ids.VersionVec{1: 3}),
	})
	// The same digest again: the gap is closed, no demand loop.
	o.Handle(gapDigest)
	if dem := env.takeSent(msg.KindDemandUpdate); len(dem) != 0 {
		t.Fatalf("ack-covered gap re-demanded: %+v", dem)
	}
}

// TestDemandFromSeededStoreSendsFullState: a mid-tier store whose knowledge
// arrived by state transfer has nothing in its log for those writes; a
// child's demand must be answered with full state, never with a bare
// "nothing missing" ack — the child would merge the ack's vector and mark
// content it never received as covered, silencing every future heartbeat.
func TestDemandFromSeededStoreSendsFullState(t *testing.T) {
	env := newFakeEnv()
	o := newObj(t, env, RoleObjectInitiated, strategy.Conference(time.Hour), "up")

	// Build a real snapshot carrying one write, and seed the mid-tier with
	// it (subscribe bootstrap): fetchVec/engine advance, the log does not.
	src := control.New(webdoc.New())
	if err := src.ApplyOp(&coherence.Update{
		Write: ids.WiD{Client: 1, Seq: 1},
		Inv: msg.Invocation{
			Method: webdoc.MethodAppendPage, Page: "p",
			Args: webdoc.EncodeWriteArgs(webdoc.WriteArgs{Content: []byte("x")}),
		},
	}); err != nil {
		t.Fatal(err)
	}
	snap, err := src.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	o.Handle(&msg.Message{
		Kind: msg.KindSubscribeAck, Object: "obj", From: "up",
		Payload: snap, VVec: msg.VecFrom(ids.VersionVec{1: 1}),
	})
	if !o.Applied().CoversWrite(ids.WiD{Client: 1, Seq: 1}) {
		t.Fatalf("seed did not take: %+v", o.Applied())
	}

	// A child that missed the relay demands with an empty vector.
	o.Handle(&msg.Message{Kind: msg.KindDemandUpdate, Object: "obj", From: "child-1"})
	if acks := env.takeSent(msg.KindUpdateAck); len(acks) != 0 {
		t.Fatalf("seeded store acked 'nothing missing' for unlogged writes: %+v", acks)
	}
	replies := env.takeSent(msg.KindStateReply)
	if len(replies) != 1 || len(replies[0].Payload) == 0 {
		t.Fatalf("want one full-state reply, got %+v", replies)
	}
	if !replies[0].VVec.CoversWrite(ids.WiD{Client: 1, Seq: 1}) {
		t.Fatalf("full-state reply misses seeded vector: %+v", replies[0].VVec)
	}
}

func TestDigestTimerStopsOnClose(t *testing.T) {
	env := newFakeEnv()
	o := newDigestObj(t, env, RolePermanent, strategy.Conference(time.Hour), "", 50*time.Millisecond)
	o.Handle(&msg.Message{Kind: msg.KindSubscribe, Object: "obj", From: "child-1"})
	env.takeSent(msg.KindSubscribeAck)
	o.Close()
	env.sent = nil
	env.clk.Advance(time.Second)
	if ds := env.takeSent(msg.KindDigest); len(ds) != 0 {
		t.Fatalf("closed object kept heartbeating: %+v", ds)
	}
}
