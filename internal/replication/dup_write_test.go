package replication

import (
	"testing"
	"time"

	"repro/internal/msg"
	"repro/internal/semantics/webdoc"
	"repro/internal/strategy"
	"repro/internal/vclock"
)

// TestDuplicateWriteRequestNotResequenced pins the at-most-once admission
// found by the chaos harness: a write request duplicated in flight (or
// retried after a lost ack) must be re-acked, not assigned a second
// GlobalSeq and applied twice. Before the fix, the sequential permanent
// store minted a fresh GlobalSeq for the replay, so the engine's
// duplicate-detection (keyed on GlobalSeq) never saw a duplicate.
func TestDuplicateWriteRequestNotResequenced(t *testing.T) {
	env := newFakeEnv()
	st := strategy.Whiteboard() // sequential model, the vulnerable sequencer
	o := newObj(t, env, RolePermanent, st, "")

	w := writeMsg(1, 1, "p", "x")
	o.Handle(w)
	// The link re-delivers the identical frame: a wire replay decodes with
	// the stamp it carried on the wire — zero, since the client sent it
	// before the sequencer stamped its copy. (Handle stamps the in-memory
	// struct in place, so rebuild rather than copy.)
	o.Handle(writeMsg(1, 1, "p", "x"))

	acks := env.takeSent(msg.KindWriteReply)
	if len(acks) != 2 {
		t.Fatalf("want 2 acks (original + replay), got %d", len(acks))
	}
	for _, a := range acks {
		if a.Status != msg.StatusOK {
			t.Fatalf("ack status: %+v", a)
		}
	}
	if got := o.Stats(); got.WritesAccepted != 1 || got.UpdatesApplied != 1 {
		t.Fatalf("replay was re-applied: %+v", got)
	}
	if g := o.Engine().Global(); g != 2 {
		t.Fatalf("sequencer advanced for the replay: next global = %d, want 2", g)
	}

	// A later write still sequences normally behind the original.
	o.Handle(writeMsg(1, 2, "p", "y"))
	if got := o.Stats(); got.WritesAccepted != 2 || got.UpdatesApplied != 2 {
		t.Fatalf("post-replay write mishandled: %+v", got)
	}
}

// TestReorderedWritesBothApplySequential: a genuinely new write overtaken in
// flight (concurrent writers on one proxy over a jittered link) must be
// admitted at the sequencer, not dropped as a duplicate — the sequential
// engine's applied vector jumps per-client gaps, so it cannot make the
// distinction; the admission record's holes can.
func TestReorderedWritesBothApplySequential(t *testing.T) {
	env := newFakeEnv()
	o := newObj(t, env, RolePermanent, strategy.Whiteboard(), "")
	o.Handle(writeMsg(1, 2, "b", "second")) // overtook seq 1 in flight
	o.Handle(writeMsg(1, 1, "a", "first"))
	if got := o.Stats(); got.WritesAccepted != 2 || got.UpdatesApplied != 2 {
		t.Fatalf("overtaken write dropped at the sequencer: %+v", got)
	}
	// And a replay of either is still suppressed.
	o.Handle(writeMsg(1, 1, "a", "first"))
	if got := o.Stats(); got.UpdatesApplied != 2 {
		t.Fatalf("replay re-applied: %+v", got)
	}
}

// TestDuplicateWriteRequestPRAM: the same replay under PRAM (where the
// engine itself dedups by WiD) keeps working — two acks, one apply.
func TestDuplicateWriteRequestPRAM(t *testing.T) {
	env := newFakeEnv()
	o := newObj(t, env, RolePermanent, strategy.Conference(time.Hour), "")
	w := writeMsg(1, 1, "p", "x")
	o.Handle(w)
	dup := *w
	o.Handle(&dup)
	if acks := env.takeSent(msg.KindWriteReply); len(acks) != 2 {
		t.Fatalf("want 2 acks, got %d", len(acks))
	}
	if got := o.Stats(); got.UpdatesApplied != 1 {
		t.Fatalf("replay re-applied under PRAM: %+v", got)
	}
}

// TestDuplicateWriteRequestEventual: a link-duplicated unstamped request at
// an eventual-model store must not be stamped twice — the replay would get a
// fresh (newer) Lamport stamp, win the LWW race against itself, and apply
// the operation a second time. Exercised at both a permanent store and a
// mirror (which stamps and applies locally before forwarding).
func TestDuplicateWriteRequestEventual(t *testing.T) {
	for _, role := range []Role{RolePermanent, RoleObjectInitiated} {
		env := newFakeEnv()
		st := strategy.MirroredSite(time.Hour)
		parent := ""
		if role != RolePermanent {
			parent = "parent-store"
		}
		o := newObj(t, env, role, st, parent)
		w := writeMsg(1, 1, "p", "x")
		o.Handle(w)
		dup := *w
		dup.Stamp = vclock.Stamp{} // the wire replay is identical: unstamped
		o.Handle(&dup)
		if acks := env.takeSent(msg.KindWriteReply); len(acks) != 2 {
			t.Fatalf("%v: want 2 acks, got %d", role, len(acks))
		}
		if got := o.Stats(); got.UpdatesApplied != 1 {
			t.Fatalf("%v: replay re-applied under eventual: %+v", role, got)
		}
		if role != RolePermanent {
			// The mirror forwards the original AND re-forwards on replay —
			// the retry may exist because the first forward was lost — but
			// the re-forward must carry the ORIGINAL stamp (from the log),
			// so the parent deduplicates it by LWW instead of double-
			// applying a freshly-stamped copy.
			fwd := env.takeSent(msg.KindWriteRequest)
			if len(fwd) != 2 {
				t.Fatalf("want original forward + replay re-forward, got %d", len(fwd))
			}
			if fwd[0].Stamp.Zero() || fwd[0].Stamp != fwd[1].Stamp {
				t.Fatalf("replay re-forward not the original stamped form: %v vs %v", fwd[0].Stamp, fwd[1].Stamp)
			}
		}
	}
}

// TestResumedIdentityFirstContactIsNotAHole: a reused client identity whose
// session was seeded past its prior writes (coherence.SeedSeq) makes first
// contact at a high sequence; the admission record must not synthesize
// holes below it, or floating duplicates of the previous life's writes
// would be re-admitted and double-applied.
func TestResumedIdentityFirstContactIsNotAHole(t *testing.T) {
	env := newFakeEnv()
	o := newObj(t, env, RolePermanent, strategy.MirroredSite(time.Hour), "")
	o.Handle(writeMsg(1, 1000, "p", "resumed"))
	if got := o.Stats(); got.UpdatesApplied != 1 {
		t.Fatalf("resumed write not applied: %+v", got)
	}
	// A stale duplicate from the previous life must classify as a replay.
	o.Handle(writeMsg(1, 500, "p", "ghost"))
	if got := o.Stats(); got.UpdatesApplied != 1 {
		t.Fatalf("previous-life duplicate re-applied: %+v", got)
	}
	if acks := env.takeSent(msg.KindWriteReply); len(acks) != 2 {
		t.Fatalf("want 2 acks, got %d", len(acks))
	}
}

// TestReorderedUnstampedWritesBothApplyEventual: two unstamped writes from
// one client overtake each other on a jittered link (departure is ordered
// by the proxy, arrival need not be). The admission guard must recognise
// the late-arriving earlier write as a hole — a new write — not a replay,
// and a subsequent true replay of either must still be suppressed.
func TestReorderedUnstampedWritesBothApplyEventual(t *testing.T) {
	env := newFakeEnv()
	o := newObj(t, env, RolePermanent, strategy.MirroredSite(time.Hour), "")

	w2 := writeMsg(1, 2, "b", "second")
	o.Handle(w2)
	w1 := writeMsg(1, 1, "a", "first") // overtaken in flight, arrives late
	o.Handle(w1)
	if got := o.Stats(); got.UpdatesApplied != 2 {
		t.Fatalf("reordered unstamped write dropped as replay: %+v", got)
	}
	out, err := env.ctrl.ServeRead(msg.Invocation{Method: webdoc.MethodGetPage, Page: "a"})
	if err != nil {
		t.Fatalf("overtaken write's page lost: %v", err)
	}
	if pg, err := webdoc.DecodePage(out); err != nil || string(pg.Content) != "first" {
		t.Fatalf("page a content: %q, %v", pg.Content, err)
	}

	// Now genuine replays of both frames: re-acked, never re-applied.
	for _, replay := range []*msg.Message{writeMsg(1, 1, "a", "first"), writeMsg(1, 2, "b", "second")} {
		o.Handle(replay)
	}
	if got := o.Stats(); got.UpdatesApplied != 2 {
		t.Fatalf("replay re-applied after hole was consumed: %+v", got)
	}
	if acks := env.takeSent(msg.KindWriteReply); len(acks) != 4 {
		t.Fatalf("want 4 acks total, got %d", len(acks))
	}
}

// TestReorderedStampedWritesStillApplyEventual pins the non-regression the
// chaos-derived admission guard must preserve: under the eventual model the
// applied vector jumps gaps, so a write covered by it can be a REORDERED
// earlier write (different page, older stamp) that last-writer-wins must
// still apply — not a duplicate to drop.
func TestReorderedStampedWritesStillApplyEventual(t *testing.T) {
	env := newFakeEnv()
	st := strategy.MirroredSite(time.Hour)
	o := newObj(t, env, RolePermanent, st, "")

	// w2 (seq 2, page b) arrives before w1 (seq 1, page a) — stamped
	// upstream, reordered in flight.
	w2 := writeMsg(1, 2, "b", "late")
	w2.Stamp = vclock.Stamp{Time: 20, Client: 1}
	o.Handle(w2)
	w1 := writeMsg(1, 1, "a", "early")
	w1.Stamp = vclock.Stamp{Time: 10, Client: 1}
	o.Handle(w1)

	if got := o.Stats(); got.UpdatesApplied != 2 {
		t.Fatalf("reordered eventual write dropped as a duplicate: %+v", got)
	}
	out, err := env.ctrl.ServeRead(msg.Invocation{Method: webdoc.MethodGetPage, Page: "a"})
	if err != nil {
		t.Fatalf("page a lost: %v", err)
	}
	if pg, err := webdoc.DecodePage(out); err != nil || string(pg.Content) != "early" {
		t.Fatalf("page a content: %q, %v", pg.Content, err)
	}
}
