// Package loadgen is the open-loop workload driver behind cmd/globeload.
//
// Open-loop means fixed arrival rate: operations are *scheduled* at
// start + k/rate regardless of how fast earlier operations complete, the way
// independent Web clients arrive, rather than the closed-loop shape of
// bench_test.go where each virtual client waits for its previous op. Latency
// is measured from the op's INTENDED arrival time, not from when a worker
// got around to sending it — so a server stall shows up as thousands of slow
// ops (what the clients experienced), not one slow op and a silently paused
// clock. This is the standard defence against coordinated omission.
//
// Client identities are split into an unbounded reader population and a
// bounded writer pool. Reads carry any of cfg.Clients identities (a read is
// stateless server-side), which is how a single process simulates 10^5..10^6
// clients. Writes are folded onto cfg.Writers real identities because every
// write identity grows the store's applied version vector — which rides on
// every read reply — and because per-writer sequence numbers must stay
// contiguous and single-owner for the ordering engines. Ops are routed to
// workers so each writer identity is owned by exactly one worker goroutine.
package loadgen

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ids"
	"repro/internal/msg"
	"repro/internal/obs"
	"repro/internal/semantics/webdoc"
	"repro/internal/transport"
	"repro/internal/workload"
)

// Config parameterises one open-loop run against an already-running
// deployment (Deploy builds a single-store one for the memnet mode).
type Config struct {
	// Fabric dials the deployment; Target is the store address to drive.
	Fabric transport.Fabric
	Target string
	Object ids.ObjectID

	// Rate is the intended arrival rate in ops/second. Required.
	Rate float64
	// Duration and MaxOps bound the run; whichever trips first stops the
	// dispatcher. At least one must be set.
	Duration time.Duration
	MaxOps   int

	// Clients is the simulated client population (reader identities).
	Clients int
	// Writers is the real writer-identity pool writes are folded onto.
	Writers int
	// Workers is the number of concurrent RPC goroutines, each with its own
	// endpoint; it bounds in-flight requests, not the arrival rate.
	Workers int

	WriteRatio float64
	Pages      int
	ZipfSkew   float64
	WriteSize  int
	Seed       int64
	// ClientBase offsets every identity this run mints, so several
	// generator processes can share one deployment without colliding.
	ClientBase uint32
	Timeout    time.Duration
}

// LatencySummary is the quantile digest of one histogram.
type LatencySummary struct {
	Count uint64 `json:"count"`
	P50   int64  `json:"p50_ns"`
	P99   int64  `json:"p99_ns"`
	P999  int64  `json:"p999_ns"`
	Max   int64  `json:"max_ns"`
}

// Report is the outcome of a run, shaped for BENCH_9.json rows.
type Report struct {
	Offered     int     `json:"offered_ops"`
	Completed   uint64  `json:"completed_ops"`
	Errors      uint64  `json:"errors"`
	Timeouts    uint64  `json:"timeouts"`
	Retries     uint64  `json:"retries"`
	ElapsedNS   int64   `json:"elapsed_ns"`
	OfferedRate float64 `json:"offered_rate"`
	AchievedOps float64 `json:"achieved_rate"`

	Read  LatencySummary `json:"read"`
	Write LatencySummary `json:"write"`

	Clients    int `json:"clients"`
	WriterPool int `json:"writer_pool"`
	Workers    int `json:"workers"`
}

// writeAttempts bounds per-write retries. A write MUST be retried on
// timeout: an abandoned write leaves a per-writer sequence hole that stalls
// every later write from that identity (the store's at-most-once admission
// makes the retry safe whether or not the original landed).
const writeAttempts = 4

type item struct {
	op       workload.Op
	intended time.Time
}

type counters struct {
	completed atomic.Uint64
	errors    atomic.Uint64
	timeouts  atomic.Uint64
	retries   atomic.Uint64
}

type worker struct {
	cfg     *Config
	dx      *transport.Demux
	ch      chan item
	seqs    []uint64 // indexed by writer pool slot; each slot owned by one worker
	content []byte
	cts     *counters
	hRead   *obs.Hist
	hWrite  *obs.Hist
}

// Run executes the configured open-loop workload and reports latency
// quantiles. It warms every page with one write first so reads never 404.
func Run(cfg Config) (*Report, error) {
	if cfg.Fabric == nil || cfg.Target == "" {
		return nil, errors.New("loadgen: Fabric and Target are required")
	}
	if cfg.Rate <= 0 {
		return nil, errors.New("loadgen: Rate must be positive")
	}
	if cfg.Duration <= 0 && cfg.MaxOps <= 0 {
		return nil, errors.New("loadgen: set Duration or MaxOps")
	}
	if cfg.Object == "" {
		cfg.Object = "loadgen-doc"
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 1000
	}
	if cfg.Writers <= 0 {
		cfg.Writers = 64
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 16
	}
	if cfg.Pages <= 0 {
		cfg.Pages = 16
	}
	if cfg.WriteSize <= 0 {
		cfg.WriteSize = 512
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 2 * time.Second
	}

	cts := &counters{}
	hRead, hWrite := &obs.Hist{}, &obs.Hist{}
	seqs := make([]uint64, cfg.Writers)
	rng := rand.New(rand.NewSource(cfg.Seed))
	workers := make([]*worker, cfg.Workers)
	for i := range workers {
		ep, err := cfg.Fabric.Endpoint(fmt.Sprintf("loadgen/w%03d", i))
		if err != nil {
			return nil, fmt.Errorf("loadgen: worker endpoint: %w", err)
		}
		workers[i] = &worker{
			cfg: &cfg, dx: transport.NewDemux(ep),
			ch:      make(chan item, 1024),
			seqs:    seqs,
			content: workload.Content(rng, cfg.WriteSize),
			cts:     cts, hRead: hRead, hWrite: hWrite,
		}
	}
	defer func() {
		for _, w := range workers {
			_ = w.dx.Close()
		}
	}()

	if err := warmup(&cfg, workers[0].dx); err != nil {
		return nil, err
	}

	var wg sync.WaitGroup
	for _, w := range workers {
		wg.Add(1)
		go w.run(&wg)
	}

	stream := workload.NewStream(workload.Config{
		Seed: cfg.Seed, Clients: cfg.Clients, Ops: cfg.MaxOps,
		WriteRatio: cfg.WriteRatio, Pages: cfg.Pages,
		ZipfSkew: cfg.ZipfSkew, WriteSize: cfg.WriteSize,
	})
	interval := float64(time.Second) / cfg.Rate
	start := time.Now()
	deadline := start.Add(cfg.Duration)
	offered := 0
	for k := 0; ; k++ {
		intended := start.Add(time.Duration(float64(k) * interval))
		if cfg.Duration > 0 && intended.After(deadline) {
			break
		}
		op, ok := stream.Next()
		if !ok {
			break
		}
		if d := time.Until(intended); d > 0 {
			time.Sleep(d)
		}
		// Route writes by pool slot (one owner per writer identity), reads
		// by simulated client. The enqueue may block when a worker is
		// saturated; latency stays honest because it is measured from
		// `intended`, which this loop computed before any blocking.
		var w *worker
		if op.IsWrite {
			w = workers[op.Client%cfg.Writers%cfg.Workers]
		} else {
			w = workers[op.Client%cfg.Workers]
		}
		w.ch <- item{op: op, intended: intended}
		offered++
	}
	for _, w := range workers {
		close(w.ch)
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := &Report{
		Offered:     offered,
		Completed:   cts.completed.Load(),
		Errors:      cts.errors.Load(),
		Timeouts:    cts.timeouts.Load(),
		Retries:     cts.retries.Load(),
		ElapsedNS:   int64(elapsed),
		OfferedRate: cfg.Rate,
		Read:        summarize(hRead),
		Write:       summarize(hWrite),
		Clients:     cfg.Clients,
		WriterPool:  cfg.Writers,
		Workers:     cfg.Workers,
	}
	if s := elapsed.Seconds(); s > 0 {
		rep.AchievedOps = float64(rep.Completed) / s
	}
	return rep, nil
}

func summarize(h *obs.Hist) LatencySummary {
	return LatencySummary{
		Count: h.Count(),
		P50:   int64(h.Quantile(0.50)),
		P99:   int64(h.Quantile(0.99)),
		P999:  int64(h.Quantile(0.999)),
		Max:   int64(h.Max()),
	}
}

func (w *worker) run(wg *sync.WaitGroup) {
	defer wg.Done()
	for it := range w.ch {
		if it.op.IsWrite {
			w.doWrite(it)
		} else {
			w.doRead(it)
		}
	}
}

func (w *worker) doRead(it item) {
	m := &msg.Message{
		Kind:   msg.KindReadRequest,
		Object: w.cfg.Object,
		Client: ids.ClientID(w.cfg.ClientBase + uint32(it.op.Client)),
		Inv:    msg.Invocation{Method: webdoc.MethodGetPage, Page: it.op.Page},
	}
	r, err := w.dx.Call(w.cfg.Target, m, w.cfg.Timeout)
	switch {
	case errors.Is(err, transport.ErrTimeout):
		w.cts.timeouts.Add(1)
		w.cts.errors.Add(1)
	case err != nil || r.Status != msg.StatusOK:
		w.cts.errors.Add(1)
	default:
		w.cts.completed.Add(1)
		w.hRead.Record(time.Since(it.intended))
	}
}

func (w *worker) doWrite(it item) {
	slot := it.op.Client % w.cfg.Writers
	w.seqs[slot]++
	wid := ids.WiD{
		Client: ids.ClientID(w.cfg.ClientBase + uint32(w.cfg.Clients+slot)),
		Seq:    w.seqs[slot],
	}
	m := &msg.Message{
		Kind:   msg.KindWriteRequest,
		Object: w.cfg.Object,
		Client: wid.Client,
		Write:  wid,
		Inv: msg.Invocation{
			Method: webdoc.MethodAppendPage,
			Page:   it.op.Page,
			Args: webdoc.EncodeWriteArgs(webdoc.WriteArgs{
				Content:       w.content,
				ModifiedNanos: it.intended.UnixNano(),
			}),
		},
		WallNanos: it.intended.UnixNano(),
	}
	for attempt := 1; ; attempt++ {
		r, err := w.dx.Call(w.cfg.Target, m, w.cfg.Timeout)
		switch {
		case err == nil && r.Status == msg.StatusOK:
			w.cts.completed.Add(1)
			w.hWrite.Record(time.Since(it.intended))
			return
		case attempt < writeAttempts && (errors.Is(err, transport.ErrTimeout) ||
			(err == nil && r.Status == msg.StatusRetry)):
			w.cts.retries.Add(1)
			continue
		default:
			if errors.Is(err, transport.ErrTimeout) {
				w.cts.timeouts.Add(1)
			}
			w.cts.errors.Add(1)
			return
		}
	}
}

// warmup writes every page once under a dedicated loader identity (the slot
// just past the writer pool) so the measured phase never reads a page that
// does not exist yet.
func warmup(cfg *Config, dx *transport.Demux) error {
	loader := ids.ClientID(cfg.ClientBase + uint32(cfg.Clients+cfg.Writers))
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	content := workload.Content(rng, cfg.WriteSize)
	for i := 0; i < cfg.Pages; i++ {
		m := &msg.Message{
			Kind:   msg.KindWriteRequest,
			Object: cfg.Object,
			Client: loader,
			Write:  ids.WiD{Client: loader, Seq: uint64(i + 1)},
			Inv: msg.Invocation{
				Method: webdoc.MethodPutPage,
				Page:   workload.PageName(i),
				Args: webdoc.EncodeWriteArgs(webdoc.WriteArgs{
					Content:       content,
					ContentType:   "text/html",
					ModifiedNanos: time.Now().UnixNano(),
				}),
			},
			WallNanos: time.Now().UnixNano(),
		}
		var lastErr error
		ok := false
		for attempt := 0; attempt < writeAttempts && !ok; attempt++ {
			r, err := dx.Call(cfg.Target, m, cfg.Timeout)
			switch {
			case err != nil:
				lastErr = err
			case r.Status != msg.StatusOK:
				lastErr = fmt.Errorf("status %v: %s", r.Status, r.Err)
			default:
				ok = true
			}
		}
		if !ok {
			return fmt.Errorf("loadgen: warmup write %s: %w", workload.PageName(i), lastErr)
		}
	}
	return nil
}
