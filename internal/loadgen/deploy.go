package loadgen

import (
	"time"

	"repro/internal/coherence"
	"repro/internal/ids"
	"repro/internal/replication"
	"repro/internal/semantics/webdoc"
	"repro/internal/store"
	"repro/internal/strategy"
	"repro/internal/transport"
)

// Deploy hosts a single permanent webdoc store at addr on the fabric — the
// self-contained deployment the memnet mode drives. The strategy is the
// conference profile with the write set widened to the writer pool
// (conference proper is single-writer and would reject every pool identity
// but the first). The caller owns the returned store's lifecycle.
func Deploy(f transport.Fabric, addr string, obj ids.ObjectID) (*store.Store, error) {
	ep, err := f.Endpoint(addr)
	if err != nil {
		return nil, err
	}
	st := strategy.Conference(10 * time.Millisecond)
	st.Writers = strategy.MultipleWriters
	st.ObjectOutdate = strategy.Demand
	s := store.New(store.Config{
		ID:             1,
		Role:           replication.RolePermanent,
		Endpoint:       ep,
		ReadTimeout:    300 * time.Millisecond,
		DigestInterval: 100 * time.Millisecond,
	})
	err = s.Host(store.HostConfig{
		Object: obj, Semantics: webdoc.New(), Strat: st,
		Session: []coherence.ClientModel{
			coherence.ReadYourWrites, coherence.MonotonicReads,
			coherence.MonotonicWrites, coherence.WritesFollowReads,
		},
	})
	if err != nil {
		_ = s.Close()
		return nil, err
	}
	return s, nil
}
