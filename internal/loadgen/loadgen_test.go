package loadgen

import (
	"testing"
	"time"

	"repro/internal/transport/memnet"
	"repro/internal/transport/tcpnet"
)

// A short open-loop run over memnet: every offered op must complete without
// error and the histograms must cover both op kinds. This is the smoke test
// behind the CI globeload job; cmd/globeload is a flag wrapper over the same
// path.
func runSmoke(t *testing.T, opts ...memnet.Option) *Report {
	t.Helper()
	net := memnet.New(opts...)
	defer net.Close()
	s, err := Deploy(net, "perm", "loadgen-doc")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rep, err := Run(Config{
		Fabric: net, Target: "perm", Object: "loadgen-doc",
		Rate: 2000, MaxOps: 1000,
		Clients: 100000, Writers: 16, Workers: 8,
		WriteRatio: 0.2, Pages: 8, Seed: 1998,
		Timeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Offered != 1000 {
		t.Errorf("offered %d ops, want 1000", rep.Offered)
	}
	if rep.Completed != uint64(rep.Offered) || rep.Errors != 0 {
		t.Errorf("completed %d/%d with %d errors (%d timeouts)",
			rep.Completed, rep.Offered, rep.Errors, rep.Timeouts)
	}
	if rep.Read.Count == 0 || rep.Write.Count == 0 {
		t.Errorf("histograms not populated: reads=%d writes=%d", rep.Read.Count, rep.Write.Count)
	}
	if rep.Read.P50 <= 0 || rep.Write.P999 < rep.Write.P50 {
		t.Errorf("implausible quantiles: read=%+v write=%+v", rep.Read, rep.Write)
	}
	return rep
}

func TestOpenLoopOverMemnet(t *testing.T) {
	runSmoke(t, memnet.WithSeed(7))
}

func TestOpenLoopOverMemnetParallelDelivery(t *testing.T) {
	runSmoke(t, memnet.WithSeed(7), memnet.WithParallelDelivery())
}

// The same driver over real TCP — the shape of a multi-process deployment
// run, scaled down. The store listens on an ephemeral loopback port and the
// generator dials its advertised address.
func TestOpenLoopOverTCP(t *testing.T) {
	fab := tcpnet.NewFabric("")
	defer fab.Close()
	s, err := Deploy(fab, "perm", "loadgen-doc")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rep, err := Run(Config{
		Fabric: fab, Target: s.Addr(), Object: "loadgen-doc",
		Rate: 2000, MaxOps: 400,
		Clients: 5000, Writers: 8, Workers: 4,
		WriteRatio: 0.2, Pages: 4, Seed: 7,
		Timeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != uint64(rep.Offered) || rep.Errors != 0 {
		t.Errorf("completed %d/%d with %d errors (%d timeouts)",
			rep.Completed, rep.Offered, rep.Errors, rep.Timeouts)
	}
}

// The writer pool folds 100k simulated clients onto 16 real write
// identities; a full-population sweep must never mint a sequence gap, which
// would surface above as write timeouts. This test instead pins the routing
// invariant directly: the same pool slot always lands on the same worker.
func TestWriteRoutingOwnsSlots(t *testing.T) {
	const clients, writers, workers = 100000, 16, 8
	ownerOf := make(map[int]int)
	for c := 0; c < clients; c++ {
		slot := c % writers
		worker := c % writers % workers
		if prev, ok := ownerOf[slot]; ok && prev != worker {
			t.Fatalf("slot %d routed to workers %d and %d", slot, prev, worker)
		}
		ownerOf[slot] = worker
	}
}

func TestRunValidatesConfig(t *testing.T) {
	net := memnet.New()
	defer net.Close()
	if _, err := Run(Config{Fabric: net, Target: "x"}); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := Run(Config{Fabric: net, Target: "x", Rate: 100}); err == nil {
		t.Error("run with no Duration and no MaxOps accepted")
	}
	if _, err := Run(Config{Rate: 100, MaxOps: 1}); err == nil {
		t.Error("missing fabric accepted")
	}
}
