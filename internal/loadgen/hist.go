package loadgen

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram sub-bucket resolution: 2^subBits linear sub-buckets per power of
// two gives a worst-case relative quantile error of 2^-subBits (~3.1%), the
// HDR-histogram trade: fixed memory, no locks, full dynamic range.
const (
	subBits    = 5
	subBuckets = 1 << subBits
	numBuckets = (64 - subBits + 1) * subBuckets
)

// Hist is a lock-free log-linear latency histogram in nanoseconds. Record
// is safe for concurrent use; quantile reads are intended for after the run
// (they see a consistent-enough snapshot under concurrent writes, which the
// live progress printer exploits).
type Hist struct {
	counts [numBuckets]atomic.Uint64
	n      atomic.Uint64
	max    atomic.Int64
}

// bucketOf maps a nanosecond value onto its log-linear bucket.
func bucketOf(v int64) int {
	if v < 0 {
		v = 0
	}
	u := uint64(v)
	if u < subBuckets {
		return int(u) // exact buckets below the linear/log boundary
	}
	exp := bits.Len64(u) - 1 // position of the highest set bit, >= subBits
	sub := (u >> uint(exp-subBits)) - subBuckets
	return (exp-subBits+1)*subBuckets + int(sub)
}

// bucketValue is the lower bound of a bucket — the value Quantile reports,
// so quantiles are never over-stated by more than the bucket width.
func bucketValue(b int) int64 {
	if b < subBuckets {
		return int64(b)
	}
	block := b / subBuckets
	sub := b % subBuckets
	return int64(subBuckets+sub) << uint(block-1)
}

// Record adds one latency observation.
func (h *Hist) Record(d time.Duration) {
	v := int64(d)
	h.counts[bucketOf(v)].Add(1)
	h.n.Add(1)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Count returns the number of recorded observations.
func (h *Hist) Count() uint64 { return h.n.Load() }

// Max returns the largest recorded observation exactly.
func (h *Hist) Max() time.Duration { return time.Duration(h.max.Load()) }

// Quantile returns the q-quantile (q in [0,1]) with <=3.1% relative error.
func (h *Hist) Quantile(q float64) time.Duration {
	n := h.n.Load()
	if n == 0 {
		return 0
	}
	target := uint64(q * float64(n))
	if target >= n {
		return h.Max()
	}
	var seen uint64
	for b := 0; b < numBuckets; b++ {
		seen += h.counts[b].Load()
		if seen > target {
			return time.Duration(bucketValue(b))
		}
	}
	return h.Max()
}
