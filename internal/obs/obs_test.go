package obs

import (
	"strings"
	"sync"
	"testing"
)

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", what)
		}
	}()
	fn()
}

// Metric names are validated at registration: snake_case only, and a name
// keeps one kind for the life of the registry.
func TestRegistrationValidation(t *testing.T) {
	r := NewRegistry()
	mustPanic(t, "uppercase name", func() { r.Counter("BadName", "") })
	mustPanic(t, "dash in name", func() { r.Counter("bad-name", "") })
	mustPanic(t, "leading digit", func() { r.Counter("9lives", "") })
	mustPanic(t, "empty name", func() { r.Counter("", "") })
	mustPanic(t, "bad label key", func() { r.Counter("ok_name", "", L("Bad-Key", "v")) })

	r.Counter("requests_total", "")
	mustPanic(t, "kind change", func() { r.Gauge("requests_total", "") })
	mustPanic(t, "kind change to hist", func() { r.Hist("requests_total", "") })
}

// The same (name, labels) series resolves to the same instrument — re-hosting
// an object must not double-register — while distinct label values get
// distinct series. Label order must not matter.
func TestGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("writes_total", "", L("store", "1"), L("object", "doc"))
	b := r.Counter("writes_total", "", L("object", "doc"), L("store", "1"))
	if a != b {
		t.Fatal("same series must return the same counter")
	}
	c := r.Counter("writes_total", "", L("store", "2"), L("object", "doc"))
	if a == c {
		t.Fatal("distinct label values must be distinct series")
	}
	a.Inc()
	a.Inc()
	c.Inc()
	if p := r.Find("writes_total", L("store", "1")); p == nil || p.Value != 2 {
		t.Fatalf("snapshot store=1: got %+v, want value 2", p)
	}
	if p := r.Find("writes_total", L("store", "2")); p == nil || p.Value != 1 {
		t.Fatalf("snapshot store=2: got %+v, want value 1", p)
	}
}

// A nil registry hands out nil instruments and every operation no-ops —
// the disabled-observability contract the hot paths rely on.
func TestNilRegistry(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "")
	g := r.Gauge("x", "")
	h := r.HistDuration("x_seconds", "")
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must return nil instruments")
	}
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(-1)
	r.CounterFunc("f_total", "", func() float64 { return 1 })
	if r.Snapshot() != nil {
		t.Fatal("nil registry snapshot must be nil")
	}
	var sb strings.Builder
	r.WritePrometheus(&sb)
	if sb.Len() != 0 {
		t.Fatal("nil registry must write nothing")
	}
	var tr *Trace
	tr.Emit(Event{Type: "x"})
	if tr.Enabled() || tr.Events() != nil {
		t.Fatal("nil trace must be disabled and empty")
	}
}

// Func-backed series read their value at scrape time.
func TestFuncMetrics(t *testing.T) {
	r := NewRegistry()
	v := 7.0
	r.CounterFunc("bridged_total", "bridged", func() float64 { return v }, L("fabric", "memnet"))
	r.GaugeFunc("bridged_depth", "", func() float64 { return -v })
	if p := r.Find("bridged_total"); p == nil || p.Value != 7 {
		t.Fatalf("got %+v, want 7", p)
	}
	v = 9
	if p := r.Find("bridged_total"); p.Value != 9 {
		t.Fatalf("got %v, want 9 (read at scrape)", p.Value)
	}
	if p := r.Find("bridged_depth"); p == nil || p.Value != -9 {
		t.Fatalf("gauge: got %+v, want -9", p)
	}
}

// Concurrent register / observe / scrape must be clean under -race: this is
// exactly what a live daemon does when a scrape lands while objects are
// being hosted and writes applied.
func TestConcurrentRegisterObserveScrape(t *testing.T) {
	r := NewRegistry()
	tr := NewTrace(64)
	const workers = 8
	const iters = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := string(rune('a' + w))
			for i := 0; i < iters; i++ {
				c := r.Counter("conc_writes_total", "", L("store", id))
				c.Inc()
				r.Gauge("conc_depth", "", L("store", id)).Set(int64(i))
				r.HistDuration("conc_lag_seconds", "", L("store", id)).Observe(int64(i) * 1000)
				r.Hist("conc_batch", "").Observe(int64(i % 7))
				tr.Emit(Event{Nanos: int64(i), Store: id, Type: "tick"})
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		var sb strings.Builder
		r.WritePrometheus(&sb)
		r.Snapshot()
		tr.Events()
		select {
		case <-done:
			for w := 0; w < workers; w++ {
				id := string(rune('a' + w))
				if p := r.Find("conc_writes_total", L("store", id)); p == nil || p.Value != iters {
					t.Fatalf("store %s: got %+v, want %d", id, p, iters)
				}
			}
			if got := len(tr.Events()); got != 64 {
				t.Fatalf("trace ring: %d events buffered, want full ring of 64", got)
			}
			return
		default:
		}
	}
}
