package obs

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// Exposition bucket ladders. The HDR histogram keeps 1920 internal buckets;
// scraping all of them would bloat every series, so exposition coarsens to
// a fixed power-of-four ladder. Bounds are powers of two, which align
// exactly with HDR bucket boundaries, so cumulative counts are exact (see
// Hist.CountAtMost) and the golden test can pin them.
var (
	// durations: 256ns .. ~17s, exposed in seconds
	durationBounds = pow2Bounds(8, 34)
	// raw values (batch sizes, version lags): 1 .. ~1M
	valueBounds = pow2Bounds(0, 20)
)

func pow2Bounds(lo, hi int) []int64 {
	var b []int64
	for k := lo; k <= hi; k += 2 {
		b = append(b, int64(1)<<uint(k))
	}
	return b
}

// WritePrometheus renders every registered series in Prometheus text
// exposition format (version 0.0.4), grouped by metric name in first
// registration order.
func (r *Registry) WritePrometheus(w io.Writer) {
	if r == nil {
		return
	}
	r.mu.Lock()
	metrics := append([]*metric(nil), r.metrics...)
	r.mu.Unlock()

	seen := make(map[string]bool, len(metrics))
	for _, m := range metrics {
		if !seen[m.name] {
			seen[m.name] = true
			if m.help != "" {
				fmt.Fprintf(w, "# HELP %s %s\n", m.name, strings.ReplaceAll(m.help, "\n", " "))
			}
			fmt.Fprintf(w, "# TYPE %s %s\n", m.name, m.kind)
		}
		switch m.kind {
		case kindCounter, kindGauge:
			fmt.Fprintf(w, "%s%s %s\n", m.name, labelString(m.labels, "", ""), m.scalarValue())
		case kindHist:
			writeHist(w, m)
		}
	}
}

func (m *metric) scalarValue() string {
	switch {
	case m.fn != nil:
		return formatFloat(m.fn())
	case m.counter != nil:
		return strconv.FormatUint(m.counter.Value(), 10)
	case m.gauge != nil:
		return strconv.FormatInt(m.gauge.Value(), 10)
	}
	return "0"
}

func writeHist(w io.Writer, m *metric) {
	bounds := valueBounds
	if m.scale != 1 {
		bounds = durationBounds
	}
	for _, bound := range bounds {
		le := formatFloat(float64(bound) * m.scale)
		fmt.Fprintf(w, "%s_bucket%s %d\n",
			m.name, labelString(m.labels, "le", le), m.hist.CountAtMost(bound))
	}
	count := m.hist.Count()
	fmt.Fprintf(w, "%s_bucket%s %d\n", m.name, labelString(m.labels, "le", "+Inf"), count)
	fmt.Fprintf(w, "%s_sum%s %s\n", m.name, labelString(m.labels, "", ""),
		formatFloat(float64(m.hist.Sum())*m.scale))
	fmt.Fprintf(w, "%s_count%s %d\n", m.name, labelString(m.labels, "", ""), count)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// labelString renders {k="v",...}; extraKey/extraVal append one more pair
// (the histogram `le` bound). Empty when there are no labels at all.
func labelString(labels []Label, extraKey, extraVal string) string {
	if len(labels) == 0 && extraKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	if extraKey != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraKey)
		b.WriteString(`="`)
		b.WriteString(extraVal)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// Handler returns an http.Handler serving the registry in Prometheus text
// format — mounted at /metrics by globed's -metrics-addr listener.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}
