package obs

import (
	"net/http/httptest"
	"strings"
	"testing"
)

// Golden test of the text exposition format: names, HELP/TYPE lines, label
// rendering, and the exact cumulative bucket counts for both the duration
// and the value ladder. Bucket bounds are powers of two, aligned with HDR
// bucket boundaries, so these counts are deterministic.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("globe_writes_admitted_total", "writes admitted into the session window",
		L("store", "1"), L("object", "doc"))
	c.Add(3)
	r.Gauge("globe_objects_hosted", "objects currently hosted").Set(2)
	h := r.HistDuration("globe_wal_sync_seconds", "fsync latency", L("store", "1"))
	h.Observe(1000)   // 1µs
	h.Observe(500000) // 500µs
	hb := r.Hist("globe_group_commit_size", "acks retired per WAL flush")
	hb.Observe(1)
	hb.Observe(3)

	var sb strings.Builder
	r.WritePrometheus(&sb)
	got := sb.String()
	want := goldenText
	if got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}

	// The HTTP handler serves the same body with the Prometheus content type.
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type = %q", ct)
	}
	if rec.Body.String() != want {
		t.Fatal("handler body differs from WritePrometheus")
	}
}

const goldenText = `# HELP globe_writes_admitted_total writes admitted into the session window
# TYPE globe_writes_admitted_total counter
globe_writes_admitted_total{object="doc",store="1"} 3
# HELP globe_objects_hosted objects currently hosted
# TYPE globe_objects_hosted gauge
globe_objects_hosted 2
# HELP globe_wal_sync_seconds fsync latency
# TYPE globe_wal_sync_seconds histogram
globe_wal_sync_seconds_bucket{store="1",le="2.56e-07"} 0
globe_wal_sync_seconds_bucket{store="1",le="1.024e-06"} 1
globe_wal_sync_seconds_bucket{store="1",le="4.096e-06"} 1
globe_wal_sync_seconds_bucket{store="1",le="1.6384e-05"} 1
globe_wal_sync_seconds_bucket{store="1",le="6.5536e-05"} 1
globe_wal_sync_seconds_bucket{store="1",le="0.000262144"} 1
globe_wal_sync_seconds_bucket{store="1",le="0.001048576"} 2
globe_wal_sync_seconds_bucket{store="1",le="0.004194304"} 2
globe_wal_sync_seconds_bucket{store="1",le="0.016777216"} 2
globe_wal_sync_seconds_bucket{store="1",le="0.067108864"} 2
globe_wal_sync_seconds_bucket{store="1",le="0.268435456"} 2
globe_wal_sync_seconds_bucket{store="1",le="1.073741824"} 2
globe_wal_sync_seconds_bucket{store="1",le="4.294967296"} 2
globe_wal_sync_seconds_bucket{store="1",le="17.179869184"} 2
globe_wal_sync_seconds_bucket{store="1",le="+Inf"} 2
globe_wal_sync_seconds_sum{store="1"} 0.000501
globe_wal_sync_seconds_count{store="1"} 2
# HELP globe_group_commit_size acks retired per WAL flush
# TYPE globe_group_commit_size histogram
globe_group_commit_size_bucket{le="1"} 1
globe_group_commit_size_bucket{le="4"} 2
globe_group_commit_size_bucket{le="16"} 2
globe_group_commit_size_bucket{le="64"} 2
globe_group_commit_size_bucket{le="256"} 2
globe_group_commit_size_bucket{le="1024"} 2
globe_group_commit_size_bucket{le="4096"} 2
globe_group_commit_size_bucket{le="16384"} 2
globe_group_commit_size_bucket{le="65536"} 2
globe_group_commit_size_bucket{le="262144"} 2
globe_group_commit_size_bucket{le="1.048576e+06"} 2
globe_group_commit_size_bucket{le="+Inf"} 2
globe_group_commit_size_sum 4
globe_group_commit_size_count 2
`
