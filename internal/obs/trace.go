package obs

import (
	"fmt"
	"sync/atomic"
)

// Event is one structured trace record. Timestamps come from the caller's
// injected clock (the trace never reads the wall clock itself), so seeded
// runs produce deterministic traces.
type Event struct {
	Nanos  int64  `json:"t"`                // clock reading at emit
	Store  string `json:"store"`            // emitting store ID
	Object string `json:"object,omitempty"` // object the event concerns
	Type   string `json:"type"`             // e.g. "write_admitted", "update_applied"
	Detail string `json:"detail,omitempty"` // preformatted human-readable context
}

func (e Event) String() string {
	s := fmt.Sprintf("%d store=%s", e.Nanos, e.Store)
	if e.Object != "" {
		s += " obj=" + e.Object
	}
	s += " " + e.Type
	if e.Detail != "" {
		s += " " + e.Detail
	}
	return s
}

// Trace is a fixed-size lock-free ring of events: writers claim a slot with
// one atomic add and publish with one atomic pointer store, so concurrent
// emitters never block each other and readers never see a torn event. The
// ring keeps the most recent len(slots) events; older ones are overwritten.
//
// Emit on a nil *Trace is a no-op — but callers that format a Detail string
// should gate on Enabled() first so the formatting cost is also skipped
// when tracing is off.
type Trace struct {
	slots []atomic.Pointer[Event]
	next  atomic.Uint64
}

// NewTrace creates a ring holding the last n events (min 16).
func NewTrace(n int) *Trace {
	if n < 16 {
		n = 16
	}
	return &Trace{slots: make([]atomic.Pointer[Event], n)}
}

// Enabled reports whether the trace is collecting. Gate Detail formatting
// on this.
func (t *Trace) Enabled() bool { return t != nil }

// Emit records one event. One allocation per event — acceptable because
// tracing is opt-in.
func (t *Trace) Emit(e Event) {
	if t == nil {
		return
	}
	i := t.next.Add(1) - 1
	t.slots[i%uint64(len(t.slots))].Store(&e)
}

// Events returns the buffered events oldest-first (best-effort under
// concurrent emits).
func (t *Trace) Events() []Event {
	if t == nil {
		return nil
	}
	n := uint64(len(t.slots))
	head := t.next.Load()
	start := uint64(0)
	if head > n {
		start = head - n
	}
	out := make([]Event, 0, n)
	for i := start; i < head; i++ {
		if p := t.slots[i%n].Load(); p != nil {
			out = append(out, *p)
		}
	}
	return out
}

// Recent returns up to n of the newest events for one store (all stores
// when store is empty), oldest-first. Used by the chaos harness to dump
// protocol history on an assertion failure.
func (t *Trace) Recent(store string, n int) []Event {
	all := t.Events()
	if store != "" {
		filtered := all[:0:0]
		for _, e := range all {
			if e.Store == store {
				filtered = append(filtered, e)
			}
		}
		all = filtered
	}
	if n > 0 && len(all) > n {
		all = all[len(all)-n:]
	}
	return all
}
