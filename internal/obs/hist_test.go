package obs

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

// Buckets must tile the value space: every value maps to a bucket whose
// lower bound is <= the value, and the next bucket's bound is above it.
func TestBucketRoundTrip(t *testing.T) {
	vals := []int64{0, 1, 31, 32, 33, 63, 64, 100, 1023, 1024, 1 << 20, 1<<40 + 12345}
	for _, v := range vals {
		b := bucketOf(v)
		lo := bucketValue(b)
		if lo > v {
			t.Errorf("value %d: bucket %d lower bound %d exceeds value", v, b, lo)
		}
		if hi := bucketValue(b + 1); hi <= v {
			t.Errorf("value %d: next bucket bound %d does not exceed value", v, hi)
		}
	}
	if b := bucketOf(-5); b != 0 {
		t.Errorf("negative value bucket = %d, want 0", b)
	}
}

// Quantiles against a sorted reference sample must land within the
// histogram's advertised ~3.1% relative error.
func TestQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	h := &Hist{}
	sample := make([]int64, 100000)
	var sum int64
	for i := range sample {
		// Log-uniform over ~6 decades, the shape of a latency distribution
		// with a long tail.
		v := int64(1) << uint(rng.Intn(40))
		v += rng.Int63n(v)
		sample[i] = v
		sum += v
		h.Record(time.Duration(v))
	}
	sort.Slice(sample, func(i, j int) bool { return sample[i] < sample[j] })
	if h.Count() != uint64(len(sample)) {
		t.Fatalf("count = %d, want %d", h.Count(), len(sample))
	}
	if h.Sum() != sum {
		t.Fatalf("sum = %d, want %d (exact)", h.Sum(), sum)
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		want := sample[int(q*float64(len(sample)))]
		got := h.Quantile(q)
		if got > want {
			t.Errorf("q=%g: histogram %d above true quantile %d", q, got, want)
		}
		if float64(want-got) > 0.04*float64(want) {
			t.Errorf("q=%g: histogram %d vs true %d exceeds error bound", q, got, want)
		}
	}
	if h.Max() != sample[len(sample)-1] {
		t.Errorf("max = %v, want %v (exact)", h.Max(), sample[len(sample)-1])
	}
}

func TestQuantileEmpty(t *testing.T) {
	h := &Hist{}
	if h.Quantile(0.99) != 0 || h.Count() != 0 || h.Max() != 0 || h.Sum() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
}

// Nil histograms are legal no-op instruments: the disabled-observability
// hot path calls these on nil receivers.
func TestNilHist(t *testing.T) {
	var h *Hist
	h.Observe(5)
	h.Record(time.Millisecond)
	if h.Count() != 0 || h.Sum() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 || h.CountAtMost(1<<20) != 0 {
		t.Fatal("nil histogram must report zeros")
	}
}

// CountAtMost at a power-of-two bound must count exactly the observations
// <= bound when observations never land on the bound bucket itself, and
// must never over-count (conservative at the boundary).
func TestCountAtMost(t *testing.T) {
	h := &Hist{}
	vals := []int64{0, 1, 3, 5, 100, 1000, 1 << 20}
	for _, v := range vals {
		h.Observe(v)
	}
	cases := []struct {
		bound int64
		want  uint64
	}{
		{1, 2},       // 0, 1
		{4, 3},       // + 3
		{16, 4},      // + 5
		{256, 5},     // + 100
		{1024, 6},    // + 1000 (its bucket [992,1008) lies entirely below 1024)
		{1 << 12, 6}, // + 1000
		{1 << 22, 7}, // + 1<<20
	}
	for _, c := range cases {
		if got := h.CountAtMost(c.bound); got != c.want {
			t.Errorf("CountAtMost(%d) = %d, want %d", c.bound, got, c.want)
		}
	}
}
