package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram sub-bucket resolution: 2^subBits linear sub-buckets per power of
// two gives a worst-case relative quantile error of 2^-subBits (~3.1%), the
// HDR-histogram trade: fixed memory, no locks, full dynamic range.
const (
	subBits    = 5
	subBuckets = 1 << subBits
	numBuckets = (64 - subBits + 1) * subBuckets
)

// Hist is a lock-free log-linear histogram over non-negative int64 values
// (nanoseconds for latency series, plain counts for value series). Observe
// is safe for concurrent use and safe on a nil receiver (no-op), so
// instrumented code can hold nil handles when observability is disabled and
// pay only a predictable branch. Quantile reads see a consistent-enough
// snapshot under concurrent writes, which live scrapes exploit.
type Hist struct {
	counts [numBuckets]atomic.Uint64
	n      atomic.Uint64
	sum    atomic.Int64
	max    atomic.Int64
}

// bucketOf maps a value onto its log-linear bucket.
func bucketOf(v int64) int {
	if v < 0 {
		v = 0
	}
	u := uint64(v)
	if u < subBuckets {
		return int(u) // exact buckets below the linear/log boundary
	}
	exp := bits.Len64(u) - 1 // position of the highest set bit, >= subBits
	sub := (u >> uint(exp-subBits)) - subBuckets
	return (exp-subBits+1)*subBuckets + int(sub)
}

// bucketValue is the lower bound of a bucket — the value Quantile reports,
// so quantiles are never over-stated by more than the bucket width.
func bucketValue(b int) int64 {
	if b < subBuckets {
		return int64(b)
	}
	block := b / subBuckets
	sub := b % subBuckets
	return int64(subBuckets+sub) << uint(block-1)
}

// Observe adds one observation. Negative values clamp to zero.
func (h *Hist) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.counts[bucketOf(v)].Add(1)
	h.n.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Record adds one latency observation in nanoseconds.
func (h *Hist) Record(d time.Duration) { h.Observe(int64(d)) }

// Count returns the number of recorded observations.
func (h *Hist) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Sum returns the sum of all recorded observations.
func (h *Hist) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Max returns the largest recorded observation exactly.
func (h *Hist) Max() int64 {
	if h == nil {
		return 0
	}
	return h.max.Load()
}

// MaxDuration returns Max as a time.Duration.
func (h *Hist) MaxDuration() time.Duration { return time.Duration(h.Max()) }

// Quantile returns the q-quantile (q in [0,1]) with <=3.1% relative error.
func (h *Hist) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	n := h.n.Load()
	if n == 0 {
		return 0
	}
	target := uint64(q * float64(n))
	if target >= n {
		return h.Max()
	}
	var seen uint64
	for b := 0; b < numBuckets; b++ {
		seen += h.counts[b].Load()
		if seen > target {
			return bucketValue(b)
		}
	}
	return h.Max()
}

// QuantileDuration returns Quantile as a time.Duration.
func (h *Hist) QuantileDuration(q float64) time.Duration {
	return time.Duration(h.Quantile(q))
}

// CountAtMost returns the number of observations whose bucket lies entirely
// at or below bound — the cumulative count backing a Prometheus `le` bucket.
// Observations in the bucket that starts exactly at a power-of-two bound are
// attributed to the next bound, keeping the cumulative counts conservative
// and deterministic (golden-testable).
func (h *Hist) CountAtMost(bound int64) uint64 {
	if h == nil {
		return 0
	}
	var seen uint64
	for b := 0; b < numBuckets; b++ {
		if bucketValue(b) > bound {
			break
		}
		// Include the bucket only when its entire value range is <= bound.
		if b+1 < numBuckets && bucketValue(b+1)-1 > bound {
			break
		}
		seen += h.counts[b].Load()
	}
	return seen
}

// HistSnapshot is a point-in-time summary of a Hist, scaled to the metric's
// exposition unit (seconds for duration series, raw for value series).
type HistSnapshot struct {
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P99   float64 `json:"p99"`
	P999  float64 `json:"p999"`
}

func (h *Hist) snapshot(scale float64) HistSnapshot {
	return HistSnapshot{
		Count: h.Count(),
		Sum:   float64(h.Sum()) * scale,
		Max:   float64(h.Max()) * scale,
		P50:   float64(h.Quantile(0.50)) * scale,
		P99:   float64(h.Quantile(0.99)) * scale,
		P999:  float64(h.Quantile(0.999)) * scale,
	}
}
