// Package obs is the repo's zero-dependency observability layer: a metrics
// registry of atomic counters, gauges, and HDR log-linear histograms, plus
// an opt-in fixed-size event trace ring (trace.go) and a Prometheus
// text-format writer (prometheus.go).
//
// Everything is built around one invariant: when observability is off, the
// instrumented hot paths must cost nothing measurable. All instrument
// methods (Counter.Inc, Gauge.Set, Hist.Observe, Trace.Emit) are no-ops on
// a nil receiver, and a nil *Registry returns nil instruments from every
// constructor — so code holds plain fields, never branches on a config
// flag, and pays a single predictable nil check per event. benchdiff rows
// in BENCH_10.json pin this at zero allocs/op.
//
// Metric names are validated at registration: snake_case
// ([a-z][a-z0-9_]*), and a (name, label-set) pair resolves to exactly one
// instrument — re-registering the same pair returns the existing instrument
// (so re-hosting an object is idempotent), while reusing a name with a
// different kind panics.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one key=value dimension on a metric series.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing atomic counter. Nil-safe.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value. Nil-safe.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adds delta (may be negative).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHist
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// metric is one registered series: a name, a label set, and exactly one
// backing instrument (or a read-at-scrape func for bridged stats).
type metric struct {
	name    string
	help    string
	kind    kind
	labels  []Label
	counter *Counter
	gauge   *Gauge
	hist    *Hist
	scale   float64        // hist exposition scale: 1e-9 for ns→seconds, 1 for raw values
	fn      func() float64 // func-backed counter/gauge, read at scrape time
}

// Registry holds registered metrics in registration order. All methods are
// safe for concurrent use and safe on a nil receiver: a nil registry hands
// out nil instruments, which no-op. The registry never unregisters — series
// live for the process (matching Prometheus scrape semantics); dropped
// objects simply stop moving.
type Registry struct {
	mu      sync.Mutex
	metrics []*metric
	index   map[string]*metric // name + canonical label key
	kinds   map[string]kind    // name-level kind consistency
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		index: make(map[string]*metric),
		kinds: make(map[string]kind),
	}
}

// validName enforces snake_case: lowercase letters, digits, underscores,
// starting with a letter.
func validName(name string) bool {
	if name == "" || name[0] < 'a' || name[0] > 'z' {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		if (c < 'a' || c > 'z') && (c < '0' || c > '9') && c != '_' {
			return false
		}
	}
	return true
}

// seriesKey canonicalises name+labels (labels sorted by key) so lookup is
// order-independent.
func seriesKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	for _, l := range labels {
		b.WriteByte('{')
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
		b.WriteByte('}')
	}
	return b.String()
}

// register is the single gate every constructor funnels through. It
// validates the name, enforces name-level kind consistency, and returns the
// existing metric when the exact (name, labels) series is already present.
func (r *Registry) register(name, help string, k kind, labels []Label) (*metric, bool) {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q (want snake_case)", name))
	}
	for _, l := range labels {
		if !validName(l.Key) {
			panic(fmt.Sprintf("obs: invalid label key %q on metric %q", l.Key, name))
		}
	}
	sorted := append([]Label(nil), labels...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	key := seriesKey(name, sorted)
	if prev, ok := r.kinds[name]; ok && prev != k {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, k, prev))
	}
	if m, ok := r.index[key]; ok {
		return m, false
	}
	m := &metric{name: name, help: help, kind: k, labels: sorted, scale: 1}
	r.metrics = append(r.metrics, m)
	r.index[key] = m
	r.kinds[name] = k
	return m, true
}

// Counter registers (or fetches) a counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	m, fresh := r.register(name, help, kindCounter, labels)
	if fresh {
		m.counter = &Counter{}
	}
	return m.counter
}

// CounterFunc registers a counter whose value is read by fn at scrape time
// — the bridge for pre-existing atomic stats (transports, nameserv) without
// double accounting. fn must be safe to call from any goroutine.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	m, fresh := r.register(name, help, kindCounter, labels)
	if fresh {
		m.fn = fn
	}
}

// Gauge registers (or fetches) a gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	m, fresh := r.register(name, help, kindGauge, labels)
	if fresh {
		m.gauge = &Gauge{}
	}
	return m.gauge
}

// GaugeFunc registers a gauge read by fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	m, fresh := r.register(name, help, kindGauge, labels)
	if fresh {
		m.fn = fn
	}
}

// Hist registers (or fetches) a histogram over raw int64 values (sizes,
// version lags). Exposed with power-of-four bucket bounds from 1 to 2^20.
func (r *Registry) Hist(name, help string, labels ...Label) *Hist {
	return r.histogram(name, help, 1, labels)
}

// HistDuration registers (or fetches) a histogram recorded in nanoseconds
// and exposed in seconds (Prometheus base unit), with power-of-four bucket
// bounds from 256ns to ~17s.
func (r *Registry) HistDuration(name, help string, labels ...Label) *Hist {
	return r.histogram(name, help, 1e-9, labels)
}

func (r *Registry) histogram(name, help string, scale float64, labels []Label) *Hist {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	m, fresh := r.register(name, help, kindHist, labels)
	if fresh {
		m.hist = &Hist{}
		m.scale = scale
	}
	return m.hist
}

// Point is one series in a registry snapshot, JSON-friendly for control-RPC
// exposition (globectl ctl metrics / ctl stats).
type Point struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Kind   string            `json:"kind"`
	Value  float64           `json:"value"`
	Hist   *HistSnapshot     `json:"hist,omitempty"`
}

// Snapshot returns every series with its current value, in registration
// order. Histograms carry a quantile summary scaled to the exposition unit.
func (r *Registry) Snapshot() []Point {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	metrics := append([]*metric(nil), r.metrics...)
	r.mu.Unlock()
	pts := make([]Point, 0, len(metrics))
	for _, m := range metrics {
		p := Point{Name: m.name, Kind: m.kind.String()}
		if len(m.labels) > 0 {
			p.Labels = make(map[string]string, len(m.labels))
			for _, l := range m.labels {
				p.Labels[l.Key] = l.Value
			}
		}
		switch {
		case m.fn != nil:
			p.Value = m.fn()
		case m.counter != nil:
			p.Value = float64(m.counter.Value())
		case m.gauge != nil:
			p.Value = float64(m.gauge.Value())
		case m.hist != nil:
			s := m.hist.snapshot(m.scale)
			p.Hist = &s
			p.Value = float64(s.Count)
		}
		pts = append(pts, p)
	}
	return pts
}

// Find returns the first registered series with the given name whose labels
// all match want (want may be a subset). Intended for tests and the chaos
// harness, not hot paths.
func (r *Registry) Find(name string, want ...Label) *Point {
	for _, p := range r.Snapshot() {
		if p.Name != name {
			continue
		}
		ok := true
		for _, l := range want {
			if p.Labels[l.Key] != l.Value {
				ok = false
				break
			}
		}
		if ok {
			return &p
		}
	}
	return nil
}

// Observer bundles the two observability facilities a component may be
// handed: a metrics registry and an optional event trace. A nil *Observer
// (or nil fields) disables everything downstream — constructors below are
// nil-safe so wiring code never branches.
type Observer struct {
	Reg   *Registry
	Trace *Trace
}

// Registry returns the registry, or nil when the observer is nil/disabled.
func (o *Observer) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.Reg
}

// Tracer returns the trace ring, or nil when the observer is nil/disabled.
func (o *Observer) Tracer() *Trace {
	if o == nil {
		return nil
	}
	return o.Trace
}
