package obs

import (
	"fmt"
	"testing"
)

// The ring keeps exactly the newest len(slots) events, oldest-first, and
// Recent filters per store — the shape the chaos dump relies on.
func TestTraceRingWrapAndRecent(t *testing.T) {
	tr := NewTrace(16)
	if !tr.Enabled() {
		t.Fatal("non-nil trace must be enabled")
	}
	for i := 0; i < 40; i++ {
		store := "a"
		if i%2 == 1 {
			store = "b"
		}
		tr.Emit(Event{Nanos: int64(i), Store: store, Object: "doc", Type: "tick",
			Detail: fmt.Sprintf("i=%d", i)})
	}
	evs := tr.Events()
	if len(evs) != 16 {
		t.Fatalf("got %d events, want 16 (ring size)", len(evs))
	}
	for i, e := range evs {
		if want := int64(40 - 16 + i); e.Nanos != want {
			t.Fatalf("event %d: t=%d, want %d (oldest-first, newest kept)", i, e.Nanos, want)
		}
	}
	bs := tr.Recent("b", 3)
	if len(bs) != 3 {
		t.Fatalf("Recent(b,3) = %d events, want 3", len(bs))
	}
	for _, e := range bs {
		if e.Store != "b" {
			t.Fatalf("Recent(b) returned store %q", e.Store)
		}
	}
	if bs[2].Nanos != 39 {
		t.Fatalf("newest b event t=%d, want 39", bs[2].Nanos)
	}
	if s := bs[2].String(); s != `39 store=b obj=doc tick i=39` {
		t.Fatalf("String() = %q", s)
	}
}

func TestTraceMinSize(t *testing.T) {
	tr := NewTrace(1)
	for i := 0; i < 20; i++ {
		tr.Emit(Event{Nanos: int64(i), Store: "s", Type: "t"})
	}
	if got := len(tr.Events()); got != 16 {
		t.Fatalf("min ring size: got %d, want 16", got)
	}
}
