// Package coherence implements the coherence models of §3.2 of the paper.
//
// Object-based models (§3.2.1) are realised as ordering engines: a store
// feeds every arriving write (local or remote) to its engine, which decides
// whether the write is applicable now, must be buffered until its
// predecessors arrive, or must be dropped (FIFO supersession, eventual LWW).
// The five engines — sequential, PRAM, FIFO, causal, eventual — share one
// interface so replication objects can host any model, which is exactly the
// paper's "standard interfaces for all replication objects" requirement.
//
// Client-based models (§3.2.2) — Read Your Writes, Monotonic Reads,
// client-PRAM (Monotonic Writes), client-causal (Writes Follow Reads) — are
// realised by Session, the client-side tracker that computes the requirement
// vector attached to reads and the dependency vector attached to writes, and
// by DepGuard, the store-side engine wrapper that enforces write
// dependencies on top of models too weak to order them.
//
//globelint:deterministic
package coherence

import (
	"fmt"

	"repro/internal/ids"
	"repro/internal/msg"
	"repro/internal/vclock"
)

// Model enumerates the object-based coherence models of §3.2.1.
type Model int

// Object-based coherence models, strongest first.
const (
	Sequential Model = iota + 1
	PRAM
	FIFO
	Causal
	Eventual
)

// String names the model.
func (m Model) String() string {
	switch m {
	case Sequential:
		return "sequential"
	case PRAM:
		return "pram"
	case FIFO:
		return "fifo"
	case Causal:
		return "causal"
	case Eventual:
		return "eventual"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// ClientModel enumerates the client-based coherence models of §3.2.2.
type ClientModel int

// Client-based coherence models and their Bayou session-guarantee
// equivalents.
const (
	ReadYourWrites    ClientModel = iota + 1 // Bayou: Read Your Writes
	MonotonicReads                           // Bayou: Monotonic Reads
	MonotonicWrites                          // client-PRAM
	WritesFollowReads                        // client-causal
)

// String names the client model.
func (m ClientModel) String() string {
	switch m {
	case ReadYourWrites:
		return "read-your-writes"
	case MonotonicReads:
		return "monotonic-reads"
	case MonotonicWrites:
		return "monotonic-writes"
	case WritesFollowReads:
		return "writes-follow-reads"
	default:
		return fmt.Sprintf("ClientModel(%d)", int(m))
	}
}

// Update is one write operation as seen by an ordering engine: the
// marshalled invocation plus all replication metadata. Engines never look
// inside Inv.Args.
type Update struct {
	// Write identifies the update: (client, per-client sequence).
	Write ids.WiD
	// GlobalSeq is the total-order position assigned by the permanent
	// store; meaningful only under the sequential model.
	GlobalSeq uint64
	// Deps is the causal/session dependency vector: the update may be
	// applied only at stores whose applied vector covers it.
	Deps vclock.VC
	// Stamp is the Lamport stamp used by the eventual model's
	// last-writer-wins rule.
	Stamp vclock.Stamp
	// Inv is the marshalled write invocation.
	Inv msg.Invocation
	// WallNanos is the origin wall-clock time of the write (metrics only).
	WallNanos int64
}

// Engine orders updates at one store according to one object-based model.
// Implementations are not safe for concurrent use; the owning store
// serialises access (stores are single-event-loop actors).
type Engine interface {
	// Model identifies the engine's coherence model.
	Model() Model
	// Submit offers an update. It returns the updates that became
	// applicable, in application order: nil if the update was buffered,
	// dropped, or a duplicate; possibly several if it unblocked buffered
	// predecessors' successors.
	Submit(u *Update) []*Update
	// Applied returns the version vector of writes applied so far. Under
	// FIFO and eventual models the vector records the newest write per
	// client (earlier ones may have been superseded), which still upper-
	// bounds what a session guarantee can demand.
	Applied() ids.VersionVec
	// Covers reports whether the applied vector covers write w, without
	// materialising the vector — per-write admission checks (at-most-once
	// replay suppression) sit on the hot path and must not allocate.
	Covers(w ids.WiD) bool
	// Pending reports how many updates are buffered awaiting predecessors.
	Pending() int
	// Seed fast-forwards the engine past writes whose effects arrived via
	// full state transfer rather than ordered updates: v is the state's
	// version vector and global the sequencer position it reflects (zero
	// when the model is not sequential). Updates covered by a seed are
	// treated as already applied.
	Seed(v ids.VersionVec, global uint64)
	// Global reports the sequencer position (next expected total-order
	// sequence) under the sequential model, and zero otherwise; it rides
	// along with full state transfers so receivers can Seed correctly.
	Global() uint64
}

// NewEngine constructs the ordering engine for a model.
func NewEngine(m Model) (Engine, error) {
	switch m {
	case Sequential:
		return newSequentialEngine(), nil
	case PRAM:
		return newPRAMEngine(), nil
	case FIFO:
		return newFIFOEngine(), nil
	case Causal:
		return newCausalEngine(), nil
	case Eventual:
		return newEventualEngine(), nil
	default:
		return nil, fmt.Errorf("coherence: unknown model %v", m)
	}
}

// Implies reports whether object-based model m makes client model c hold
// automatically for every client. The paper: "if the object offers
// sequential consistency, then it automatically offers every client-based
// model as well."
func (m Model) Implies(c ClientModel) bool {
	switch m {
	case Sequential:
		return true
	case PRAM, FIFO:
		// Per-client write order is preserved (FIFO by supersession), so a
		// client's own writes are monotonic; reads/mixed guarantees still
		// need session support.
		return c == MonotonicWrites
	case Causal:
		// Causal ordering covers write/write dependencies.
		return c == MonotonicWrites || c == WritesFollowReads
	default:
		return false
	}
}
