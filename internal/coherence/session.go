package coherence

import (
	"sync"

	"repro/internal/ids"
	"repro/internal/vclock"
)

// Session is the client-side state for the client-based coherence models of
// §3.2.2. It tracks the client's own writes and the store state it has
// observed, and derives (a) the requirement vector a read must attach so the
// serving store can check — and enforce — the enabled guarantees, and (b)
// the dependency vector a write must carry. Safe for concurrent use.
type Session struct {
	mu     sync.Mutex
	client ids.ClientID
	models map[ClientModel]bool

	// seq is the client's write counter; WiDs are (client, seq).
	seq uint64
	// lastWrite is the paper's RYW dependency: the last write's WiD and the
	// store it was performed on.
	lastWrite ids.Dependency
	// readVec is the merged applied vector of every store state this client
	// has read (Monotonic Reads requirement).
	readVec ids.VersionVec
	// readVC is the causal variant of readVec, attached as write
	// dependencies under Writes Follow Reads.
	readVC vclock.VC
	// holes records sequence numbers of aborted writes that could NOT be
	// rolled back (a newer allocation already existed): permanent gaps in
	// the client's write order until sealed. Under ordered models such a
	// gap stalls every later write at the stores, so the proxy must seal
	// each hole (a no-op write under the hole's WiD) before issuing new
	// writes. Nil until the first unrollbackable abort.
	holes map[uint64]bool
}

// NewSession creates a session for client c with the given client-based
// models enabled.
func NewSession(c ids.ClientID, models ...ClientModel) *Session {
	s := &Session{
		client:  c,
		models:  make(map[ClientModel]bool, len(models)),
		readVec: ids.NewVersionVec(4),
		readVC:  vclock.New(),
	}
	for _, m := range models {
		s.models[m] = true
	}
	return s
}

// Client returns the session's client ID.
func (s *Session) Client() ids.ClientID { return s.client }

// Enabled reports whether model m is enabled.
func (s *Session) Enabled(m ClientModel) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.models[m]
}

// Enable turns on a client model mid-session (the paper allows requesting
// models at bind time; enabling later only strengthens guarantees).
func (s *Session) Enable(m ClientModel) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.models[m] = true
}

// SeedSeq advances the write counter to at least seq. Binds call it with
// the store's applied sequence for this client, so a returning client (a
// new process reusing a persistent client identity) resumes after its last
// acknowledged write instead of re-issuing WiDs the deployment has already
// applied — which would be silently deduplicated as replays.
func (s *Session) SeedSeq(seq uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if seq > s.seq {
		s.seq = seq
	}
}

// NextWrite allocates the next write identifier and returns it together
// with the dependency vector the write must carry: under Writes Follow
// Reads, everything the client has read; under Monotonic Writes, the
// client's own previous write. The causal object model composes both
// automatically; for weaker models a DepGuard at the store enforces them.
func (s *Session) NextWrite() (ids.WiD, vclock.VC) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	// A rolled-back abort can shrink the counter below a recorded hole; if
	// this allocation lands on one, the new write itself fills the gap.
	delete(s.holes, s.seq)
	w := ids.WiD{Client: s.client, Seq: s.seq}
	return w, s.depsForLocked(s.seq)
}

// depsForLocked builds the dependency vector a write with sequence seq must
// carry under the enabled models. Callers hold s.mu.
func (s *Session) depsForLocked(seq uint64) vclock.VC {
	deps := vclock.New()
	if s.models[WritesFollowReads] {
		deps.Merge(s.readVC)
	}
	if s.models[MonotonicWrites] || s.models[WritesFollowReads] {
		if seq > 1 {
			deps.Set(s.client, seq-1)
		}
	}
	return deps
}

// AbortWrite rolls back the sequence counter after a failed write call, so
// the client's next write does not leave a permanent gap in per-client
// ordering. Only the most recent allocation can be aborted.
//
// A timed-out write's true outcome is unknown — the request or only its ack
// may have been lost. Rolling back means the next write REUSES the WiD; the
// stores resolve the ambiguity with at-most-once admission: if the original
// was applied, the reissued WiD is re-acked without applying. The caller's
// side of that contract is to retry the SAME invocation after a timeout
// before issuing different writes (retrying different content under a
// reused WiD is silently deduplicated, exactly like rebinding a reused
// client identity at a lagging replica — see webobj.AsClient).
//
// When the failed write is NOT the most recent allocation — a concurrent
// writer on the same shared handle already allocated a later sequence — the
// counter cannot move, so the abandoned sequence number is recorded as a
// hole instead. Under ordered models that hole would stall every subsequent
// write from this client forever (stores buffer writes until the
// predecessor arrives); the proxy seals recorded holes with no-op writes
// before its next write departs (see Holes/SealWrite/SealDone).
func (s *Session) AbortWrite(w ids.WiD) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if w.Client != s.client {
		return
	}
	if w.Seq == s.seq {
		s.seq--
		return
	}
	if w.Seq < s.seq {
		if s.holes == nil {
			s.holes = make(map[uint64]bool)
		}
		s.holes[w.Seq] = true
	}
}

// Holes returns the recorded write-sequence gaps in ascending order (nil
// when the client's write history is contiguous).
func (s *Session) Holes() []uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.holes) == 0 {
		return nil
	}
	hs := make([]uint64, 0, len(s.holes))
	for h := range s.holes {
		hs = append(hs, h)
	}
	for i := 1; i < len(hs); i++ { // insertion sort; hole counts are tiny
		for j := i; j > 0 && hs[j] < hs[j-1]; j-- {
			hs[j], hs[j-1] = hs[j-1], hs[j]
		}
	}
	return hs
}

// SealWrite returns the write identifier and dependency vector for a no-op
// write that seals the recorded hole at seq. It does not touch the write
// counter: the hole's number is already allocated.
func (s *Session) SealWrite(seq uint64) (ids.WiD, vclock.VC) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return ids.WiD{Client: s.client, Seq: seq}, s.depsForLocked(seq)
}

// SealDone removes a hole once its seal write has been acknowledged.
func (s *Session) SealDone(seq uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.holes, seq)
}

// WriteDone records a successfully acknowledged write performed at store st.
func (s *Session) WriteDone(w ids.WiD, st ids.StoreID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lastWrite = ids.Dependency{Write: w, Store: st}
	s.readVC.Set(s.client, w.Seq) // own writes are part of causal history
}

// ReadRequirement returns the requirement vector and RYW dependency a read
// must attach: under Read Your Writes, the client's own last write; under
// Monotonic Reads, everything previously read. An empty vector means the
// read is unconstrained.
func (s *Session) ReadRequirement() (ids.VersionVec, ids.Dependency) {
	s.mu.Lock()
	defer s.mu.Unlock()
	req := ids.NewVersionVec(2)
	var dep ids.Dependency
	if s.models[ReadYourWrites] && !s.lastWrite.Zero() {
		req.Bump(s.lastWrite.Write.Client, s.lastWrite.Write.Seq)
		dep = s.lastWrite
	}
	if s.models[MonotonicReads] {
		req.Merge(s.readVec)
	}
	return req, dep
}

// ReadDone folds the applied vector returned by the serving store into the
// session's read state.
func (s *Session) ReadDone(storeApplied ids.VersionVec) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.readVec.Merge(storeApplied)
	for c, q := range storeApplied {
		if s.readVC.Get(c) < q {
			s.readVC.Set(c, q)
		}
	}
}

// LastWrite returns the RYW dependency (zero if the client has not written).
func (s *Session) LastWrite() ids.Dependency {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastWrite
}

// Seq returns the number of writes issued so far.
func (s *Session) Seq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}
