package coherence

import (
	"sync"

	"repro/internal/ids"
	"repro/internal/vclock"
)

// Session is the client-side state for the client-based coherence models of
// §3.2.2. It tracks the client's own writes and the store state it has
// observed, and derives (a) the requirement vector a read must attach so the
// serving store can check — and enforce — the enabled guarantees, and (b)
// the dependency vector a write must carry. Safe for concurrent use.
type Session struct {
	mu     sync.Mutex
	client ids.ClientID
	models map[ClientModel]bool

	// seq is the client's write counter; WiDs are (client, seq).
	seq uint64
	// lastWrite is the paper's RYW dependency: the last write's WiD and the
	// store it was performed on.
	lastWrite ids.Dependency
	// readVec is the merged applied vector of every store state this client
	// has read (Monotonic Reads requirement).
	readVec ids.VersionVec
	// readVC is the causal variant of readVec, attached as write
	// dependencies under Writes Follow Reads.
	readVC vclock.VC
}

// NewSession creates a session for client c with the given client-based
// models enabled.
func NewSession(c ids.ClientID, models ...ClientModel) *Session {
	s := &Session{
		client:  c,
		models:  make(map[ClientModel]bool, len(models)),
		readVec: ids.NewVersionVec(4),
		readVC:  vclock.New(),
	}
	for _, m := range models {
		s.models[m] = true
	}
	return s
}

// Client returns the session's client ID.
func (s *Session) Client() ids.ClientID { return s.client }

// Enabled reports whether model m is enabled.
func (s *Session) Enabled(m ClientModel) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.models[m]
}

// Enable turns on a client model mid-session (the paper allows requesting
// models at bind time; enabling later only strengthens guarantees).
func (s *Session) Enable(m ClientModel) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.models[m] = true
}

// SeedSeq advances the write counter to at least seq. Binds call it with
// the store's applied sequence for this client, so a returning client (a
// new process reusing a persistent client identity) resumes after its last
// acknowledged write instead of re-issuing WiDs the deployment has already
// applied — which would be silently deduplicated as replays.
func (s *Session) SeedSeq(seq uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if seq > s.seq {
		s.seq = seq
	}
}

// NextWrite allocates the next write identifier and returns it together
// with the dependency vector the write must carry: under Writes Follow
// Reads, everything the client has read; under Monotonic Writes, the
// client's own previous write. The causal object model composes both
// automatically; for weaker models a DepGuard at the store enforces them.
func (s *Session) NextWrite() (ids.WiD, vclock.VC) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	w := ids.WiD{Client: s.client, Seq: s.seq}
	deps := vclock.New()
	if s.models[WritesFollowReads] {
		deps.Merge(s.readVC)
	}
	if s.models[MonotonicWrites] || s.models[WritesFollowReads] {
		if s.seq > 1 {
			deps.Set(s.client, s.seq-1)
		}
	}
	return w, deps
}

// AbortWrite rolls back the sequence counter after a failed write call, so
// the client's next write does not leave a permanent gap in per-client
// ordering. Only the most recent allocation can be aborted.
//
// A timed-out write's true outcome is unknown — the request or only its ack
// may have been lost. Rolling back means the next write REUSES the WiD; the
// stores resolve the ambiguity with at-most-once admission: if the original
// was applied, the reissued WiD is re-acked without applying. The caller's
// side of that contract is to retry the SAME invocation after a timeout
// before issuing different writes (retrying different content under a
// reused WiD is silently deduplicated, exactly like rebinding a reused
// client identity at a lagging replica — see webobj.AsClient).
func (s *Session) AbortWrite(w ids.WiD) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if w.Client == s.client && w.Seq == s.seq {
		s.seq--
	}
}

// WriteDone records a successfully acknowledged write performed at store st.
func (s *Session) WriteDone(w ids.WiD, st ids.StoreID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lastWrite = ids.Dependency{Write: w, Store: st}
	s.readVC.Set(s.client, w.Seq) // own writes are part of causal history
}

// ReadRequirement returns the requirement vector and RYW dependency a read
// must attach: under Read Your Writes, the client's own last write; under
// Monotonic Reads, everything previously read. An empty vector means the
// read is unconstrained.
func (s *Session) ReadRequirement() (ids.VersionVec, ids.Dependency) {
	s.mu.Lock()
	defer s.mu.Unlock()
	req := ids.NewVersionVec(2)
	var dep ids.Dependency
	if s.models[ReadYourWrites] && !s.lastWrite.Zero() {
		req.Bump(s.lastWrite.Write.Client, s.lastWrite.Write.Seq)
		dep = s.lastWrite
	}
	if s.models[MonotonicReads] {
		req.Merge(s.readVec)
	}
	return req, dep
}

// ReadDone folds the applied vector returned by the serving store into the
// session's read state.
func (s *Session) ReadDone(storeApplied ids.VersionVec) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.readVec.Merge(storeApplied)
	for c, q := range storeApplied {
		if s.readVC.Get(c) < q {
			s.readVC.Set(c, q)
		}
	}
}

// LastWrite returns the RYW dependency (zero if the client has not written).
func (s *Session) LastWrite() ids.Dependency {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastWrite
}

// Seq returns the number of writes issued so far.
func (s *Session) Seq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}
