package coherence

import (
	"sort"

	"repro/internal/ids"
	"repro/internal/vclock"
)

// pramEngine applies each client's writes in per-client sequence order,
// buffering out-of-order arrivals. This is exactly the protocol of §4.2:
// "the sequence number of the incoming update's WiD is compared to the
// [store's] version number (expected_write[client]). If they are equal,
// then all previous updates have been performed and the new update is
// performed as well. Otherwise, the update request is buffered and the
// store waits until the next one."
type pramEngine struct {
	applied ids.VersionVec
	buffer  map[ids.WiD]*Update
}

func newPRAMEngine() *pramEngine {
	return &pramEngine{applied: ids.NewVersionVec(4), buffer: make(map[ids.WiD]*Update)}
}

func (e *pramEngine) Model() Model { return PRAM }

func (e *pramEngine) Submit(u *Update) []*Update {
	c := u.Write.Client
	switch {
	case u.Write.Seq <= e.applied.Get(c):
		return nil // duplicate or already superseded by contiguous apply
	case u.Write.Seq == e.applied.Get(c)+1:
		e.applied.Set(c, u.Write.Seq)
		out := []*Update{u}
		return append(out, e.drain()...)
	default:
		e.buffer[u.Write] = u
		return nil
	}
}

// drain repeatedly releases buffered updates that have become contiguous.
func (e *pramEngine) drain() []*Update {
	var out []*Update
	for progress := true; progress; {
		progress = false
		for w, u := range e.buffer {
			if w.Seq == e.applied.Get(w.Client)+1 {
				e.applied.Set(w.Client, w.Seq)
				delete(e.buffer, w)
				out = append(out, u)
				progress = true
			}
		}
	}
	// Map iteration above is nondeterministic across clients (legal: PRAM
	// orders only per-client), but tests want stable output: sort released
	// updates by (client, seq) — per-client order is preserved by Seq.
	sort.Slice(out, func(i, j int) bool { return out[i].Write.Less(out[j].Write) })
	return out
}

func (e *pramEngine) Applied() ids.VersionVec { return e.applied.Clone() }
func (e *pramEngine) Pending() int            { return len(e.buffer) }

// fifoEngine is the paper's FIFO optimisation of PRAM: "a write request
// from a client is honored if it is more recent than the latest write from
// that same client. Otherwise, the request is simply ignored." Later writes
// supersede missing intermediates, so nothing is ever buffered — suited to
// clients that overwrite a document rather than update it incrementally.
type fifoEngine struct {
	applied ids.VersionVec
}

func newFIFOEngine() *fifoEngine { return &fifoEngine{applied: ids.NewVersionVec(4)} }

func (e *fifoEngine) Model() Model { return FIFO }

func (e *fifoEngine) Submit(u *Update) []*Update {
	if u.Write.Seq <= e.applied.Get(u.Write.Client) {
		return nil // stale: superseded by a newer write from the same client
	}
	e.applied.Set(u.Write.Client, u.Write.Seq)
	return []*Update{u}
}

func (e *fifoEngine) Applied() ids.VersionVec { return e.applied.Clone() }
func (e *fifoEngine) Pending() int            { return 0 }

// causalEngine delivers updates respecting happens-before: an update from
// client c with dependency vector D is applicable when D[c] == applied[c]+1
// and D[j] <= applied[j] for every other client j (the standard causal
// broadcast condition). Clients accumulate their dependency vectors from
// the stores they read (see Session), which realises the paper's Web-forum
// example: a reaction is applied only after the message that triggered it.
type causalEngine struct {
	applied vclock.VC
	buffer  []*Update
}

func newCausalEngine() *causalEngine { return &causalEngine{applied: vclock.New()} }

func (e *causalEngine) Model() Model { return Causal }

func (e *causalEngine) Submit(u *Update) []*Update {
	if u.Write.Seq <= e.applied.Get(u.Write.Client) {
		return nil // duplicate
	}
	if !e.deliverable(u) {
		e.buffer = append(e.buffer, u)
		return nil
	}
	e.applied.Set(u.Write.Client, u.Write.Seq)
	out := []*Update{u}
	return append(out, e.drain()...)
}

// deliverable checks the causal delivery condition for u.
func (e *causalEngine) deliverable(u *Update) bool {
	c := u.Write.Client
	if u.Write.Seq != e.applied.Get(c)+1 {
		return false
	}
	for j, s := range u.Deps {
		if j == c {
			continue
		}
		if e.applied.Get(j) < s {
			return false
		}
	}
	return true
}

func (e *causalEngine) drain() []*Update {
	var out []*Update
	for progress := true; progress; {
		progress = false
		rest := e.buffer[:0]
		for _, u := range e.buffer {
			switch {
			case u.Write.Seq <= e.applied.Get(u.Write.Client):
				progress = true // duplicate flushed
			case e.deliverable(u):
				e.applied.Set(u.Write.Client, u.Write.Seq)
				out = append(out, u)
				progress = true
			default:
				rest = append(rest, u)
			}
		}
		e.buffer = rest
	}
	return out
}

func (e *causalEngine) Applied() ids.VersionVec {
	return ids.VersionVec(e.applied).Clone()
}
func (e *causalEngine) Pending() int { return len(e.buffer) }

// sequentialEngine applies updates in the single total order chosen by the
// object's permanent store (which assigns GlobalSeq when it first accepts
// the write). Every replica applies the identical sequence, giving
// Lamport's sequential consistency; gaps are buffered.
type sequentialEngine struct {
	nextGlobal uint64 // next expected GlobalSeq (starts at 1)
	applied    ids.VersionVec
	buffer     map[uint64]*Update
}

func newSequentialEngine() *sequentialEngine {
	return &sequentialEngine{
		nextGlobal: 1,
		applied:    ids.NewVersionVec(4),
		buffer:     make(map[uint64]*Update),
	}
}

func (e *sequentialEngine) Model() Model { return Sequential }

func (e *sequentialEngine) Submit(u *Update) []*Update {
	switch {
	case u.GlobalSeq == 0:
		return nil // unsequenced update: a bug upstream; refuse silently
	case u.GlobalSeq < e.nextGlobal:
		return nil // duplicate
	case u.GlobalSeq > e.nextGlobal:
		e.buffer[u.GlobalSeq] = u
		return nil
	}
	out := []*Update{u}
	e.apply(u)
	for {
		nxt, ok := e.buffer[e.nextGlobal]
		if !ok {
			break
		}
		delete(e.buffer, e.nextGlobal)
		e.apply(nxt)
		out = append(out, nxt)
	}
	return out
}

func (e *sequentialEngine) apply(u *Update) {
	e.nextGlobal = u.GlobalSeq + 1
	e.applied.Bump(u.Write.Client, u.Write.Seq)
}

func (e *sequentialEngine) Applied() ids.VersionVec { return e.applied.Clone() }
func (e *sequentialEngine) Pending() int            { return len(e.buffer) }

// NextGlobal exposes the sequencer position; the permanent store's
// replication object uses it to assign GlobalSeq to fresh writes.
func (e *sequentialEngine) NextGlobal() uint64 { return e.nextGlobal }

// eventualEngine is the weakest model: updates are applied immediately with
// no ordering constraint beyond convergence, implemented as per-element
// last-writer-wins on the (Lamport stamp, client) total order. Replicas that
// receive the same update set in any order converge to identical state.
type eventualEngine struct {
	applied ids.VersionVec
	// stamps records the winning stamp per element (invocation page).
	stamps map[string]vclock.Stamp
}

func newEventualEngine() *eventualEngine {
	return &eventualEngine{
		applied: ids.NewVersionVec(4),
		stamps:  make(map[string]vclock.Stamp),
	}
}

func (e *eventualEngine) Model() Model { return Eventual }

func (e *eventualEngine) Submit(u *Update) []*Update {
	// Track the newest write seen per client regardless of LWW outcome, so
	// session guarantees can be answered.
	if u.Write.Seq <= e.applied.Get(u.Write.Client) && !e.newerStamp(u) {
		return nil // duplicate (gossip redelivery)
	}
	e.applied.Bump(u.Write.Client, u.Write.Seq)
	if !e.newerStamp(u) {
		return nil // lost the LWW race for this element
	}
	e.stamps[u.Inv.Page] = u.Stamp
	return []*Update{u}
}

// newerStamp reports whether u's stamp beats the current winner for its
// element.
func (e *eventualEngine) newerStamp(u *Update) bool {
	cur, ok := e.stamps[u.Inv.Page]
	if !ok {
		return true
	}
	return cur.Less(u.Stamp)
}

func (e *eventualEngine) Applied() ids.VersionVec { return e.applied.Clone() }
func (e *eventualEngine) Pending() int            { return 0 }

// Stamps returns a copy of the per-element winning stamps (used by
// anti-entropy digests).
func (e *eventualEngine) Stamps() map[string]vclock.Stamp {
	out := make(map[string]vclock.Stamp, len(e.stamps))
	for k, v := range e.stamps {
		out[k] = v
	}
	return out
}

// --- allocation-free cover checks ---------------------------------------------

// Covers implements Engine for each ordering engine: a direct lookup on the
// live applied vector, no clone.
func (e *pramEngine) Covers(w ids.WiD) bool       { return e.applied.CoversWrite(w) }
func (e *fifoEngine) Covers(w ids.WiD) bool       { return e.applied.CoversWrite(w) }
func (e *causalEngine) Covers(w ids.WiD) bool     { return ids.VersionVec(e.applied).CoversWrite(w) }
func (e *sequentialEngine) Covers(w ids.WiD) bool { return e.applied.CoversWrite(w) }
func (e *eventualEngine) Covers(w ids.WiD) bool   { return e.applied.CoversWrite(w) }

// --- state-transfer seeding ---------------------------------------------------

// Seed implements Engine: contiguous models merge the vector (state covers
// every write up to it) and drop buffered updates the seed covers.
func (e *pramEngine) Seed(v ids.VersionVec, _ uint64) {
	e.applied.Merge(v)
	for w := range e.buffer {
		if e.applied.CoversWrite(w) {
			delete(e.buffer, w)
		}
	}
}

// Global implements Engine.
func (e *pramEngine) Global() uint64 { return 0 }

// Seed implements Engine.
func (e *fifoEngine) Seed(v ids.VersionVec, _ uint64) { e.applied.Merge(v) }

// Global implements Engine.
func (e *fifoEngine) Global() uint64 { return 0 }

// Seed implements Engine.
func (e *causalEngine) Seed(v ids.VersionVec, _ uint64) {
	for c, s := range v {
		if e.applied.Get(c) < s {
			e.applied.Set(c, s)
		}
	}
	rest := e.buffer[:0]
	for _, u := range e.buffer {
		if u.Write.Seq > e.applied.Get(u.Write.Client) {
			rest = append(rest, u)
		}
	}
	e.buffer = rest
}

// Global implements Engine.
func (e *causalEngine) Global() uint64 { return 0 }

// Seed implements Engine: fast-forward both the applied vector and the
// total-order position.
func (e *sequentialEngine) Seed(v ids.VersionVec, global uint64) {
	e.applied.Merge(v)
	if global > e.nextGlobal {
		e.nextGlobal = global
	}
	for g := range e.buffer {
		if g < e.nextGlobal {
			delete(e.buffer, g)
		}
	}
}

// Global implements Engine.
func (e *sequentialEngine) Global() uint64 { return e.nextGlobal }

// Seed implements Engine. Snapshot state is authoritative for its vector;
// per-element stamps are unknown, so LWW continues from the stamps seen in
// subsequent updates.
func (e *eventualEngine) Seed(v ids.VersionVec, _ uint64) { e.applied.Merge(v) }

// Global implements Engine.
func (e *eventualEngine) Global() uint64 { return 0 }
