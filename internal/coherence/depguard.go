package coherence

import (
	"repro/internal/ids"
)

// DepGuard wraps an ordering engine and additionally enforces explicit
// write dependencies (Update.Deps) before handing updates to the inner
// engine. It realises the paper's observation that "when a client binds to
// a store and requests support for some client-based coherence model, the
// replication subobject of the store is easily augmented to integrate the
// implementation of the new coherence model": stores whose object-based
// model is too weak to order dependent writes (FIFO, eventual) are wrapped
// with a DepGuard when a client asks for client-causal (Writes Follow
// Reads) or client-PRAM (Monotonic Writes) support.
type DepGuard struct {
	inner  Engine
	buffer []*Update
}

var _ Engine = (*DepGuard)(nil)

// NewDepGuard wraps inner with dependency enforcement.
func NewDepGuard(inner Engine) *DepGuard { return &DepGuard{inner: inner} }

// Model reports the inner engine's model.
func (g *DepGuard) Model() Model { return g.inner.Model() }

// Submit holds u until the inner engine's applied vector covers u's
// dependency vector (excluding the writer's own component, which the inner
// engine orders itself), then forwards it. Applying one update may release
// buffered ones.
func (g *DepGuard) Submit(u *Update) []*Update {
	if !g.satisfied(u) {
		g.buffer = append(g.buffer, u)
		return nil
	}
	out := g.inner.Submit(u)
	return append(out, g.drain()...)
}

// satisfied checks coverage of u's non-self dependencies.
func (g *DepGuard) satisfied(u *Update) bool {
	applied := g.inner.Applied()
	for c, s := range u.Deps {
		if c == u.Write.Client {
			continue // own-component ordering is the inner engine's job
		}
		if applied.Get(c) < s {
			return false
		}
	}
	return true
}

func (g *DepGuard) drain() []*Update {
	var out []*Update
	for progress := true; progress; {
		progress = false
		rest := g.buffer[:0]
		for _, u := range g.buffer {
			if g.satisfied(u) {
				out = append(out, g.inner.Submit(u)...)
				progress = true
			} else {
				rest = append(rest, u)
			}
		}
		g.buffer = rest
	}
	return out
}

// Applied reports the inner engine's applied vector.
func (g *DepGuard) Applied() ids.VersionVec { return g.inner.Applied() }

// Covers implements Engine.
func (g *DepGuard) Covers(w ids.WiD) bool { return g.inner.Covers(w) }

// Pending counts both guard-buffered and inner-buffered updates.
func (g *DepGuard) Pending() int { return len(g.buffer) + g.inner.Pending() }

// Seed implements Engine by delegating to the inner engine and releasing
// buffered updates whose dependencies the seed covers.
func (g *DepGuard) Seed(v ids.VersionVec, global uint64) {
	g.inner.Seed(v, global)
	// Seeding can satisfy buffered dependencies, but releasing updates here
	// would bypass the caller's applyReleased path; callers always Seed
	// before submitting further updates, and drain() runs on the next
	// Submit. Drop only updates the seed itself made stale.
	rest := g.buffer[:0]
	for _, u := range g.buffer {
		if u.Write.Seq > g.inner.Applied().Get(u.Write.Client) {
			rest = append(rest, u)
		}
	}
	g.buffer = rest
}

// Global implements Engine.
func (g *DepGuard) Global() uint64 { return g.inner.Global() }
