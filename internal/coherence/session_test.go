package coherence

import (
	"testing"

	"repro/internal/ids"
)

func TestSessionWiDsAreSequential(t *testing.T) {
	s := NewSession(7)
	w1, _ := s.NextWrite()
	w2, _ := s.NextWrite()
	if w1 != (ids.WiD{Client: 7, Seq: 1}) || w2 != (ids.WiD{Client: 7, Seq: 2}) {
		t.Fatalf("WiDs = %v, %v", w1, w2)
	}
	if s.Seq() != 2 || s.Client() != 7 {
		t.Fatalf("session counters wrong")
	}
}

func TestSessionNoModelsNoConstraints(t *testing.T) {
	s := NewSession(1)
	_, deps := s.NextWrite()
	if len(deps) != 0 {
		t.Fatalf("unrequested deps: %v", deps)
	}
	req, dep := s.ReadRequirement()
	if len(req) != 0 || !dep.Zero() {
		t.Fatalf("unrequested requirement: %v %v", req, dep)
	}
}

func TestSessionRYWRequirement(t *testing.T) {
	s := NewSession(3, ReadYourWrites)
	// Before any write, reads are unconstrained.
	req, dep := s.ReadRequirement()
	if len(req) != 0 || !dep.Zero() {
		t.Fatalf("requirement before write: %v", req)
	}
	w, _ := s.NextWrite()
	s.WriteDone(w, 9)
	req, dep = s.ReadRequirement()
	if req.Get(3) != 1 {
		t.Fatalf("RYW requirement = %v", req)
	}
	if dep.Write != w || dep.Store != 9 {
		t.Fatalf("RYW dependency = %v (paper's (WiD, store) pair)", dep)
	}
}

func TestSessionMonotonicReads(t *testing.T) {
	s := NewSession(2, MonotonicReads)
	s.ReadDone(ids.VersionVec{1: 5, 4: 2})
	s.ReadDone(ids.VersionVec{1: 3, 6: 1}) // older component must not regress
	req, _ := s.ReadRequirement()
	want := ids.VersionVec{1: 5, 4: 2, 6: 1}
	if !req.Equal(want) {
		t.Fatalf("MR requirement = %v, want %v", req, want)
	}
}

func TestSessionMonotonicWritesDeps(t *testing.T) {
	s := NewSession(5, MonotonicWrites)
	_, deps1 := s.NextWrite()
	if len(deps1) != 0 {
		t.Fatalf("first write has deps: %v", deps1)
	}
	_, deps2 := s.NextWrite()
	if deps2.Get(5) != 1 {
		t.Fatalf("second write deps = %v, want own previous write", deps2)
	}
}

func TestSessionWritesFollowReadsDeps(t *testing.T) {
	s := NewSession(4, WritesFollowReads)
	s.ReadDone(ids.VersionVec{1: 7}) // read someone's post
	w, deps := s.NextWrite()
	if deps.Get(1) != 7 {
		t.Fatalf("WFR deps = %v, want read history", deps)
	}
	s.WriteDone(w, 2)
	// The next write depends on both the read and the own earlier write.
	_, deps2 := s.NextWrite()
	if deps2.Get(1) != 7 || deps2.Get(4) != 1 {
		t.Fatalf("chained WFR deps = %v", deps2)
	}
}

func TestSessionEnable(t *testing.T) {
	s := NewSession(1)
	if s.Enabled(ReadYourWrites) {
		t.Fatalf("model enabled by default")
	}
	s.Enable(ReadYourWrites)
	if !s.Enabled(ReadYourWrites) {
		t.Fatalf("Enable did not stick")
	}
}

func TestSessionCombinedRYWAndMR(t *testing.T) {
	s := NewSession(2, ReadYourWrites, MonotonicReads)
	w, _ := s.NextWrite()
	s.WriteDone(w, 1)
	s.ReadDone(ids.VersionVec{9: 3})
	req, dep := s.ReadRequirement()
	if req.Get(2) != 1 || req.Get(9) != 3 {
		t.Fatalf("combined requirement = %v", req)
	}
	if dep.Write != w {
		t.Fatalf("dep = %v", dep)
	}
}

// The paper's §4 master scenario: PRAM object model + RYW client model.
// Simulate the master's cache store with a PRAM engine and verify that the
// requirement vector correctly detects the missing write, and that after
// the demanded update arrives the read is satisfiable.
func TestSessionRYWAgainstPRAMStore(t *testing.T) {
	master := NewSession(1, ReadYourWrites)
	cacheEngine := newPRAMEngine()

	// Master writes twice directly to the Web server (not via the cache).
	w1, _ := master.NextWrite()
	master.WriteDone(w1, 100)
	w2, _ := master.NextWrite()
	master.WriteDone(w2, 100)

	// Server pushed only the first update to the cache so far.
	cacheEngine.Submit(upd(1, 1))

	req, _ := master.ReadRequirement()
	if cacheEngine.Applied().Covers(req) {
		t.Fatalf("RYW violation undetected: cache %v, requirement %v",
			cacheEngine.Applied(), req)
	}

	// Cache demands the missing update (client-outdate reaction = demand).
	cacheEngine.Submit(upd(1, 2))
	if !cacheEngine.Applied().Covers(req) {
		t.Fatalf("requirement still unsatisfied after demand")
	}
}

// TestSessionAbortRollsBackOnlyMostRecent covers both abort outcomes: the
// newest allocation rolls the counter back; an older one — overtaken by a
// concurrent writer on the shared handle — becomes a recorded hole the
// proxy must seal before later writes can apply under ordered models.
func TestSessionAbortRollsBackOnlyMostRecent(t *testing.T) {
	s := NewSession(8, MonotonicWrites)
	w1, _ := s.NextWrite()
	w2, _ := s.NextWrite()
	s.AbortWrite(w1) // older than the newest allocation: hole, no rollback
	if s.Seq() != 2 {
		t.Fatalf("seq = %d after overtaken abort, want 2", s.Seq())
	}
	if hs := s.Holes(); len(hs) != 1 || hs[0] != 1 {
		t.Fatalf("holes = %v, want [1]", hs)
	}
	s.AbortWrite(w2) // newest: plain rollback, no hole
	if s.Seq() != 1 {
		t.Fatalf("seq = %d after rollback, want 1", s.Seq())
	}
	if hs := s.Holes(); len(hs) != 1 || hs[0] != 1 {
		t.Fatalf("holes = %v after rollback, want [1]", hs)
	}
	s.AbortWrite(ids.WiD{Client: 99, Seq: 1}) // foreign client: ignored
	if s.Seq() != 1 || len(s.Holes()) != 1 {
		t.Fatalf("foreign abort mutated session")
	}
}

// TestSessionSealWriteFillsHole covers the seal flow: SealWrite reuses the
// hole's WiD with the model-appropriate deps and SealDone retires it.
func TestSessionSealWriteFillsHole(t *testing.T) {
	s := NewSession(6, MonotonicWrites)
	s.NextWrite()
	s.NextWrite()
	w2, _ := s.NextWrite()
	s.AbortWrite(ids.WiD{Client: 6, Seq: 2}) // hole at 2
	s.AbortWrite(w2)                         // rollback to 2... then to seq=2
	w, deps := s.SealWrite(2)
	if w != (ids.WiD{Client: 6, Seq: 2}) {
		t.Fatalf("seal WiD = %v", w)
	}
	if deps.Get(6) != 1 {
		t.Fatalf("seal deps = %v, want own seq-1 under MW", deps)
	}
	s.SealDone(2)
	if len(s.Holes()) != 0 {
		t.Fatalf("holes after SealDone: %v", s.Holes())
	}
}

// TestSessionReallocationAbsorbsHole: after a rollback shrinks the counter
// below a recorded hole, a fresh allocation landing on the hole's number
// fills the gap itself — the hole must vanish, not get sealed twice.
func TestSessionReallocationAbsorbsHole(t *testing.T) {
	s := NewSession(9)
	s.NextWrite()                            // seq 1
	w2, _ := s.NextWrite()                   // seq 2
	s.AbortWrite(ids.WiD{Client: 9, Seq: 1}) // hole at 1
	s.AbortWrite(w2)                         // rollback: counter back to 1
	if s.Seq() != 1 {
		t.Fatalf("seq = %d, want 1", s.Seq())
	}
	s.AbortWrite(ids.WiD{Client: 9, Seq: 1}) // newest again: rollback to 0
	if s.Seq() != 0 {
		t.Fatalf("seq = %d, want 0", s.Seq())
	}
	w, _ := s.NextWrite() // reallocates 1, absorbing the stale hole record
	if w.Seq != 1 {
		t.Fatalf("reallocated seq = %d", w.Seq)
	}
	if hs := s.Holes(); len(hs) != 0 {
		t.Fatalf("stale hole survived reallocation: %v", hs)
	}
}
