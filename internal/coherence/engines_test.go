package coherence

import (
	"math/rand"
	"testing"

	"repro/internal/ids"
	"repro/internal/msg"
	"repro/internal/vclock"
)

func upd(c ids.ClientID, seq uint64) *Update {
	return &Update{
		Write: ids.WiD{Client: c, Seq: seq},
		Inv:   msg.Invocation{Method: 1, Page: "p"},
	}
}

func collectWiDs(us []*Update) []ids.WiD {
	out := make([]ids.WiD, len(us))
	for i, u := range us {
		out[i] = u.Write
	}
	return out
}

func TestNewEngineAllModels(t *testing.T) {
	for _, m := range []Model{Sequential, PRAM, FIFO, Causal, Eventual} {
		e, err := NewEngine(m)
		if err != nil {
			t.Fatalf("NewEngine(%v): %v", m, err)
		}
		if e.Model() != m {
			t.Fatalf("engine model = %v, want %v", e.Model(), m)
		}
	}
	if _, err := NewEngine(Model(99)); err == nil {
		t.Fatalf("unknown model accepted")
	}
}

func TestModelStrings(t *testing.T) {
	names := map[Model]string{
		Sequential: "sequential", PRAM: "pram", FIFO: "fifo", Causal: "causal", Eventual: "eventual",
	}
	for m, want := range names {
		if got := m.String(); got != want {
			t.Fatalf("%v String = %q", int(m), got)
		}
	}
	if Model(42).String() != "Model(42)" {
		t.Fatalf("unknown model string")
	}
	cnames := map[ClientModel]string{
		ReadYourWrites: "read-your-writes", MonotonicReads: "monotonic-reads",
		MonotonicWrites: "monotonic-writes", WritesFollowReads: "writes-follow-reads",
	}
	for m, want := range cnames {
		if got := m.String(); got != want {
			t.Fatalf("%v String = %q", int(m), got)
		}
	}
	if ClientModel(42).String() != "ClientModel(42)" {
		t.Fatalf("unknown client model string")
	}
}

func TestModelImplies(t *testing.T) {
	for _, c := range []ClientModel{ReadYourWrites, MonotonicReads, MonotonicWrites, WritesFollowReads} {
		if !Sequential.Implies(c) {
			t.Fatalf("sequential must imply %v", c)
		}
	}
	if !PRAM.Implies(MonotonicWrites) || PRAM.Implies(MonotonicReads) {
		t.Fatalf("PRAM implication wrong")
	}
	if !Causal.Implies(WritesFollowReads) || Causal.Implies(ReadYourWrites) {
		t.Fatalf("causal implication wrong")
	}
	if Eventual.Implies(MonotonicWrites) {
		t.Fatalf("eventual implies nothing")
	}
}

func TestPRAMInOrderApply(t *testing.T) {
	e := newPRAMEngine()
	for s := uint64(1); s <= 3; s++ {
		got := e.Submit(upd(1, s))
		if len(got) != 1 || got[0].Write.Seq != s {
			t.Fatalf("in-order submit %d returned %v", s, collectWiDs(got))
		}
	}
	if e.Pending() != 0 {
		t.Fatalf("pending = %d", e.Pending())
	}
}

func TestPRAMBuffersGap(t *testing.T) {
	e := newPRAMEngine()
	if got := e.Submit(upd(1, 2)); got != nil {
		t.Fatalf("gap applied: %v", collectWiDs(got))
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d", e.Pending())
	}
	got := e.Submit(upd(1, 1))
	if len(got) != 2 || got[0].Write.Seq != 1 || got[1].Write.Seq != 2 {
		t.Fatalf("fill-gap released %v", collectWiDs(got))
	}
	if e.Pending() != 0 {
		t.Fatalf("pending = %d after drain", e.Pending())
	}
}

func TestPRAMDuplicateDropped(t *testing.T) {
	e := newPRAMEngine()
	e.Submit(upd(1, 1))
	if got := e.Submit(upd(1, 1)); got != nil {
		t.Fatalf("duplicate applied")
	}
	if got := e.Applied(); got.Get(1) != 1 {
		t.Fatalf("applied = %v", got)
	}
}

func TestPRAMIndependentClients(t *testing.T) {
	e := newPRAMEngine()
	// Client 2's writes must not wait for client 1's.
	if got := e.Submit(upd(2, 1)); len(got) != 1 {
		t.Fatalf("client 2 blocked by client 1")
	}
	if got := e.Submit(upd(1, 1)); len(got) != 1 {
		t.Fatalf("client 1 blocked")
	}
}

// Property: under random per-update delivery orders (with duplicates), a
// PRAM engine applies each client's writes in exactly seq order, and applies
// all of them.
func TestPRAMRandomDeliveryProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		clients := 1 + rng.Intn(4)
		perClient := 1 + rng.Intn(10)
		var pool []*Update
		for c := 1; c <= clients; c++ {
			for s := 1; s <= perClient; s++ {
				pool = append(pool, upd(ids.ClientID(c), uint64(s)))
			}
		}
		// Shuffle and inject duplicates.
		rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
		if len(pool) > 2 {
			pool = append(pool, pool[rng.Intn(len(pool))])
		}
		e := newPRAMEngine()
		lastSeq := make(map[ids.ClientID]uint64)
		applied := 0
		for _, u := range pool {
			for _, a := range e.Submit(u) {
				if a.Write.Seq != lastSeq[a.Write.Client]+1 {
					t.Fatalf("trial %d: client %d applied seq %d after %d",
						trial, a.Write.Client, a.Write.Seq, lastSeq[a.Write.Client])
				}
				lastSeq[a.Write.Client] = a.Write.Seq
				applied++
			}
		}
		if applied != clients*perClient {
			t.Fatalf("trial %d: applied %d of %d updates", trial, applied, clients*perClient)
		}
		if e.Pending() != 0 {
			t.Fatalf("trial %d: %d stuck in buffer", trial, e.Pending())
		}
	}
}

func TestFIFOSupersedes(t *testing.T) {
	e := newFIFOEngine()
	if got := e.Submit(upd(1, 3)); len(got) != 1 {
		t.Fatalf("newest write not applied")
	}
	// Older writes from the same client are ignored, not buffered.
	if got := e.Submit(upd(1, 1)); got != nil {
		t.Fatalf("stale write applied")
	}
	if got := e.Submit(upd(1, 2)); got != nil {
		t.Fatalf("stale write applied")
	}
	if got := e.Submit(upd(1, 4)); len(got) != 1 {
		t.Fatalf("newer write rejected")
	}
	if e.Pending() != 0 {
		t.Fatalf("FIFO must never buffer")
	}
}

// Property: FIFO applies exactly the prefix-maxima of the delivery order per
// client — equivalent to "ignore anything not newer than the latest".
func TestFIFOPrefixMaximaProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		var order []uint64
		n := 1 + rng.Intn(20)
		for i := 0; i < n; i++ {
			order = append(order, uint64(1+rng.Intn(10)))
		}
		e := newFIFOEngine()
		var max uint64
		for _, s := range order {
			got := e.Submit(upd(1, s))
			wantApply := s > max
			if wantApply {
				max = s
			}
			if wantApply != (len(got) == 1) {
				t.Fatalf("trial %d: seq %d (max %d) applied=%v", trial, s, max, len(got) == 1)
			}
		}
	}
}

func causalUpd(c ids.ClientID, seq uint64, deps vclock.VC) *Update {
	u := upd(c, seq)
	u.Deps = deps.Clone()
	u.Deps.Set(c, seq)
	return u
}

func TestCausalWaitsForDependency(t *testing.T) {
	e := newCausalEngine()
	// Client 2 reacts to client 1's first post.
	reaction := causalUpd(2, 1, vclock.VC{1: 1})
	if got := e.Submit(reaction); got != nil {
		t.Fatalf("reaction applied before trigger: %v", collectWiDs(got))
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d", e.Pending())
	}
	trigger := causalUpd(1, 1, vclock.New())
	got := e.Submit(trigger)
	if len(got) != 2 {
		t.Fatalf("apply after trigger: %v", collectWiDs(got))
	}
	if got[0].Write.Client != 1 || got[1].Write.Client != 2 {
		t.Fatalf("wrong causal order: %v", collectWiDs(got))
	}
}

func TestCausalIndependentConcurrent(t *testing.T) {
	e := newCausalEngine()
	// Two concurrent posts: no mutual dependency, either order fine.
	if got := e.Submit(causalUpd(2, 1, vclock.New())); len(got) != 1 {
		t.Fatalf("concurrent write blocked")
	}
	if got := e.Submit(causalUpd(1, 1, vclock.New())); len(got) != 1 {
		t.Fatalf("concurrent write blocked")
	}
}

func TestCausalDuplicateDropped(t *testing.T) {
	e := newCausalEngine()
	u := causalUpd(1, 1, vclock.New())
	e.Submit(u)
	if got := e.Submit(u); got != nil {
		t.Fatalf("duplicate applied")
	}
}

// Property: under random delivery, causal delivery order at the store always
// respects each update's dependency vector, and everything is eventually
// applied.
func TestCausalRandomDeliveryProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		// Build a causal history: clients alternate writing; each write
		// depends on everything its client has "seen" (its own VC snapshot).
		clients := 2 + rng.Intn(3)
		steps := 5 + rng.Intn(15)
		seen := make([]vclock.VC, clients+1)
		for c := 1; c <= clients; c++ {
			seen[c] = vclock.New()
		}
		seqs := make([]uint64, clients+1)
		var pool []*Update
		for i := 0; i < steps; i++ {
			c := 1 + rng.Intn(clients)
			// Sometimes client c observes another client's state first
			// (models a read), creating a cross-client dependency.
			if rng.Intn(2) == 0 {
				o := 1 + rng.Intn(clients)
				seen[c].Merge(seen[o])
			}
			seqs[c]++
			u := causalUpd(ids.ClientID(c), seqs[c], seen[c])
			seen[c].Set(ids.ClientID(c), seqs[c])
			pool = append(pool, u)
		}
		rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })

		e := newCausalEngine()
		applied := vclock.New()
		count := 0
		for _, u := range pool {
			for _, a := range e.Submit(u) {
				// Dependency check: everything a depends on (other than its
				// own entry) must already be applied.
				for c, s := range a.Deps {
					if c == a.Write.Client {
						continue
					}
					if applied.Get(c) < s {
						t.Fatalf("trial %d: %v applied before dep c%d:%d", trial, a.Write, c, s)
					}
				}
				if a.Write.Seq != applied.Get(a.Write.Client)+1 {
					t.Fatalf("trial %d: per-client order violated for %v", trial, a.Write)
				}
				applied.Set(a.Write.Client, a.Write.Seq)
				count++
			}
		}
		if count != steps {
			t.Fatalf("trial %d: applied %d of %d", trial, count, steps)
		}
		if e.Pending() != 0 {
			t.Fatalf("trial %d: %d stuck", trial, e.Pending())
		}
	}
}

func seqUpd(c ids.ClientID, seq, global uint64) *Update {
	u := upd(c, seq)
	u.GlobalSeq = global
	return u
}

func TestSequentialTotalOrder(t *testing.T) {
	e := newSequentialEngine()
	if got := e.Submit(seqUpd(1, 1, 2)); got != nil {
		t.Fatalf("gap applied")
	}
	got := e.Submit(seqUpd(2, 1, 1))
	if len(got) != 2 || got[0].GlobalSeq != 1 || got[1].GlobalSeq != 2 {
		t.Fatalf("order: %v", collectWiDs(got))
	}
	if e.NextGlobal() != 3 {
		t.Fatalf("NextGlobal = %d", e.NextGlobal())
	}
	if got := e.Submit(seqUpd(2, 1, 1)); got != nil {
		t.Fatalf("duplicate applied")
	}
	if got := e.Submit(seqUpd(9, 9, 0)); got != nil {
		t.Fatalf("unsequenced update applied")
	}
}

// Property: all sequential replicas apply the identical total order no
// matter the delivery permutation.
func TestSequentialSameOrderEverywhereProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(20)
		var pool []*Update
		for g := 1; g <= n; g++ {
			pool = append(pool, seqUpd(ids.ClientID(1+g%3), uint64(g), uint64(g)))
		}
		var orders [][]uint64
		for replica := 0; replica < 3; replica++ {
			p := append([]*Update(nil), pool...)
			rng.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
			e := newSequentialEngine()
			var order []uint64
			for _, u := range p {
				for _, a := range e.Submit(u) {
					order = append(order, a.GlobalSeq)
				}
			}
			if len(order) != n || e.Pending() != 0 {
				t.Fatalf("trial %d: replica %d incomplete", trial, replica)
			}
			orders = append(orders, order)
		}
		for r := 1; r < len(orders); r++ {
			for i := range orders[0] {
				if orders[r][i] != orders[0][i] {
					t.Fatalf("trial %d: replica %d diverged at %d", trial, r, i)
				}
			}
		}
	}
}

func stampUpd(c ids.ClientID, seq, time uint64, page string) *Update {
	u := upd(c, seq)
	u.Stamp = vclock.Stamp{Time: time, Client: c}
	u.Inv.Page = page
	return u
}

func TestEventualLWW(t *testing.T) {
	e := newEventualEngine()
	if got := e.Submit(stampUpd(1, 1, 10, "p")); len(got) != 1 {
		t.Fatalf("first write dropped")
	}
	// Older stamp for the same page loses.
	if got := e.Submit(stampUpd(2, 1, 5, "p")); got != nil {
		t.Fatalf("older stamp won LWW")
	}
	// Newer stamp wins.
	if got := e.Submit(stampUpd(2, 2, 20, "p")); len(got) != 1 {
		t.Fatalf("newer stamp lost")
	}
	// Different page is independent.
	if got := e.Submit(stampUpd(3, 1, 1, "q")); len(got) != 1 {
		t.Fatalf("independent page blocked")
	}
	if e.Pending() != 0 {
		t.Fatalf("eventual must never buffer")
	}
	st := e.Stamps()
	if st["p"].Time != 20 || st["q"].Time != 1 {
		t.Fatalf("stamps = %v", st)
	}
}

func TestEventualDuplicateDropped(t *testing.T) {
	e := newEventualEngine()
	u := stampUpd(1, 1, 10, "p")
	e.Submit(u)
	if got := e.Submit(u); got != nil {
		t.Fatalf("duplicate applied")
	}
	if got := e.Applied(); got.Get(1) != 1 {
		t.Fatalf("applied = %v", got)
	}
}

// Property: replicas receiving the same update set in different orders
// converge to the same per-page winning stamps.
func TestEventualConvergenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pages := []string{"a", "b", "c"}
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(20)
		var pool []*Update
		seqs := map[ids.ClientID]uint64{}
		for i := 0; i < n; i++ {
			c := ids.ClientID(1 + rng.Intn(3))
			seqs[c]++
			pool = append(pool, stampUpd(c, seqs[c], uint64(1+rng.Intn(30)), pages[rng.Intn(len(pages))]))
		}
		var results []map[string]vclock.Stamp
		for replica := 0; replica < 3; replica++ {
			p := append([]*Update(nil), pool...)
			rng.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
			e := newEventualEngine()
			for _, u := range p {
				e.Submit(u)
			}
			results = append(results, e.Stamps())
		}
		for r := 1; r < len(results); r++ {
			if len(results[r]) != len(results[0]) {
				t.Fatalf("trial %d: stamp sets differ", trial)
			}
			for p, s := range results[0] {
				if results[r][p] != s {
					t.Fatalf("trial %d: page %q diverged: %v vs %v", trial, p, results[r][p], s)
				}
			}
		}
	}
}

func TestDepGuardBuffersUntilCovered(t *testing.T) {
	inner := newEventualEngine()
	g := NewDepGuard(inner)
	if g.Model() != Eventual {
		t.Fatalf("model = %v", g.Model())
	}
	// Write by client 2 depends on client 1's write 1 (WFR).
	dep := stampUpd(2, 1, 20, "p")
	dep.Deps = vclock.VC{1: 1}
	if got := g.Submit(dep); got != nil {
		t.Fatalf("dependent write applied early")
	}
	if g.Pending() != 1 {
		t.Fatalf("pending = %d", g.Pending())
	}
	trigger := stampUpd(1, 1, 10, "q")
	got := g.Submit(trigger)
	if len(got) != 2 {
		t.Fatalf("release: %v", collectWiDs(got))
	}
	if got[0].Write.Client != 1 || got[1].Write.Client != 2 {
		t.Fatalf("order: %v", collectWiDs(got))
	}
	if g.Pending() != 0 {
		t.Fatalf("pending after drain = %d", g.Pending())
	}
}

func TestDepGuardIgnoresSelfDependency(t *testing.T) {
	g := NewDepGuard(newPRAMEngine())
	u := upd(1, 1)
	u.Deps = vclock.VC{1: 1} // own component: inner engine's business
	if got := g.Submit(u); len(got) != 1 {
		t.Fatalf("self-dependency blocked the write")
	}
	if !g.Applied().CoversWrite(u.Write) {
		t.Fatalf("applied vector missing write")
	}
}
