// Package chaos is the fault-schedule convergence harness: it runs a seeded
// randomized write/read workload over a lossy, partitioned simulated network
// (memnet), heals every fault, and then asserts that (a) every replica
// converges to the same state, and (b) no session guarantee — Read Your
// Writes, Monotonic Reads, Monotonic Writes, Writes Follow Reads — was
// violated at any point a client observed, fault or no fault.
//
// The harness is the reusable scenario backbone for fault testing: a Config
// picks the coherence model, loss rate, partition cadence, and heartbeat
// interval; Run returns a Result whose Violations list is empty exactly when
// the framework kept its promises. The topology is the paper's three-layer
// hierarchy — a permanent store, an object-initiated mirror, and two
// client-initiated caches (one under the permanent store, one under the
// mirror) — so faults hit both single-hop and multi-hop dissemination.
//
// Fault model: loss, duplication, jitter, and partitions are injected only
// on store↔store links. Client links stay clean, which keeps the workload's
// bookkeeping exact (a client write either acked or never happened, so a
// timed-out write can be retried under the same write identifier) while the
// replication protocol absorbs every dropped coherence frame — the UDP
// configuration of §4.2, which is precisely what digest heartbeats exist
// for.
package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/msg"
	"repro/internal/naming"
	"repro/internal/replication"
	"repro/internal/semantics"
	"repro/internal/semantics/webdoc"
	"repro/internal/store"
	"repro/internal/strategy"
	"repro/internal/transport/memnet"
)

// Config parameterises one chaos run.
type Config struct {
	// Seed drives the fault schedule and workload choices. Equal seeds give
	// equal schedules (delivery timing still depends on the scheduler).
	Seed int64
	// Model is the object-based coherence model: coherence.PRAM (default,
	// replicas converge to the same token set; interleavings may differ) or
	// coherence.Sequential (replicas must converge byte-identically).
	Model coherence.Model
	// Loss is the per-frame drop probability on store↔store links.
	Loss float64
	// Dup is the per-frame duplication probability on store↔store links.
	Dup float64
	// OpsPerWriter is how many appends each writing client performs.
	OpsPerWriter int
	// DigestInterval is the anti-entropy heartbeat period (0 disables).
	DigestInterval time.Duration
	// LazyInterval is the dissemination aggregation period (PRAM model).
	LazyInterval time.Duration
	// ConvergeWithin bounds the post-heal convergence wait.
	ConvergeWithin time.Duration
	// ParallelDelivery runs the memnet fabric with per-shard drain
	// goroutines (memnet.WithParallelDelivery). The fault schedule and
	// per-sender loss/dup decisions stay seeded, but cross-destination
	// delivery interleaving becomes nondeterministic — the convergence and
	// session-guarantee checks must hold regardless, which is exactly what
	// the parallel legs of the matrix assert.
	ParallelDelivery bool
}

func (c *Config) defaults() {
	if c.Model == 0 {
		c.Model = coherence.PRAM
	}
	if c.OpsPerWriter == 0 {
		c.OpsPerWriter = 30
	}
	if c.LazyInterval == 0 {
		c.LazyInterval = 10 * time.Millisecond
	}
	if c.ConvergeWithin == 0 {
		c.ConvergeWithin = 5 * time.Second
	}
}

// Result reports what a run did and every guarantee violation it caught.
type Result struct {
	// Violations is empty iff every convergence and session-guarantee check
	// held. Each entry is a self-contained description.
	Violations []string
	// Converged reports whether all replicas reached the same state within
	// ConvergeWithin after the final heal; ConvergeIn is how long it took.
	Converged  bool
	ConvergeIn time.Duration
	// Workload and fault accounting.
	WritesAcked   int
	WriteRetries  int
	ReadsOK       int
	ReadsFailed   int
	Partitions    int
	DigestsSent   uint64
	DigestDemands uint64
	// FramesDropped/FramesDuplicated are the memnet totals actually injected.
	FramesDropped    uint64
	FramesDuplicated uint64
	// TraceDump holds the trailing write-lifecycle trace events per store,
	// populated only when Violations is non-empty (see trace.go).
	TraceDump []string
}

// Store addresses and the partitionable store↔store pairs.
var (
	storeAddrs = []string{"perm", "mirror", "cache1", "cache2"}
	storePairs = [][2]string{{"perm", "mirror"}, {"perm", "cache1"}, {"mirror", "cache2"}}
	pages      = []string{"pg0", "pg1", "ryw"}
)

// Run executes one chaos scenario; see the package comment for the shape.
func Run(cfg Config) (*Result, error) {
	cfg.defaults()
	res := &Result{}
	rec := newRecorder()
	ob := newRunObserver()
	rng := rand.New(rand.NewSource(cfg.Seed))

	netOpts := []memnet.Option{memnet.WithSeed(cfg.Seed)}
	if cfg.ParallelDelivery {
		netOpts = append(netOpts, memnet.WithParallelDelivery())
	}
	net := memnet.New(netOpts...)
	defer net.Close()
	ns := naming.New()

	// The store↔store links are hostile from the very first frame: the
	// subscribe/bootstrap handshake itself runs under loss (its ack + retry
	// and the digest-triggered re-subscribe are part of what this harness
	// proves — the old harness had to warm up on a clean network because a
	// lost send-once subscribe stranded the replica). Client links stay
	// clean (see the package comment's fault model).
	prof := memnet.LinkProfile{
		Latency: 200 * time.Microsecond,
		Jitter:  500 * time.Microsecond,
		Loss:    cfg.Loss,
		Dup:     cfg.Dup,
	}
	for _, p := range storePairs {
		net.SetLinkBoth(p[0], p[1], prof)
	}

	st := baseStrategy(cfg)
	session := []coherence.ClientModel{
		coherence.ReadYourWrites, coherence.MonotonicReads,
		coherence.MonotonicWrites, coherence.WritesFollowReads,
	}

	stores := make(map[string]*store.Store, len(storeAddrs))
	mk := func(addr string, role replication.Role) (*store.Store, error) {
		ep, err := net.Endpoint(addr)
		if err != nil {
			return nil, err
		}
		s := store.New(store.Config{
			ID: ns.NextStore(), Role: role, Endpoint: ep,
			ReadTimeout:    300 * time.Millisecond,
			DigestInterval: cfg.DigestInterval,
			Obs:            ob,
		})
		stores[addr] = s
		return s, nil
	}
	perm, err := mk("perm", replication.RolePermanent)
	if err != nil {
		return nil, err
	}
	defer func() {
		for _, s := range stores {
			_ = s.Close()
		}
	}()
	const obj = ids.ObjectID("chaos-doc")
	if err := perm.Host(store.HostConfig{Object: obj, Semantics: webdoc.New(), Strat: st, Session: session}); err != nil {
		return nil, err
	}
	mirror, err := mk("mirror", replication.RoleObjectInitiated)
	if err != nil {
		return nil, err
	}
	if err := mirror.Host(store.HostConfig{Object: obj, Semantics: webdoc.New(), Strat: st, Session: session, Parent: "perm", Subscribe: true}); err != nil {
		return nil, err
	}
	for addr, parent := range map[string]string{"cache1": "perm", "cache2": "mirror"} {
		c, err := mk(addr, replication.RoleClientInitiated)
		if err != nil {
			return nil, err
		}
		if err := c.Host(store.HostConfig{Object: obj, Semantics: webdoc.New(), Strat: st, Session: session, Parent: parent, Subscribe: true}); err != nil {
			return nil, err
		}
	}

	bind := func(epName, storeAddr string, models ...coherence.ClientModel) (*core.Proxy, error) {
		ep, err := net.Endpoint(epName)
		if err != nil {
			return nil, err
		}
		return core.Bind(core.BindConfig{
			Object: obj, Endpoint: ep, StoreAddr: storeAddr,
			Client: ns.NextClient(), Session: models,
			Prototype: webdoc.New(), Timeout: 500 * time.Millisecond,
		})
	}

	// The cast: two plain writers at the permanent store, a Read-Your-Writes
	// writer-reader at cache1, a Writes-Follow-Reads read-then-write client
	// at cache2, and Monotonic-Reads observers at both caches.
	var clients []*core.Proxy
	addClient := func(p *core.Proxy, err error) (*core.Proxy, error) {
		if err == nil {
			clients = append(clients, p)
		}
		return p, err
	}
	defer func() {
		for _, p := range clients {
			p.Close()
		}
	}()
	w1, err := addClient(bind("client/w1", "perm"))
	if err != nil {
		return nil, err
	}
	w2, err := addClient(bind("client/w2", "perm"))
	if err != nil {
		return nil, err
	}
	ryw, err := addClient(bind("client/ryw", "cache1", coherence.ReadYourWrites, coherence.MonotonicWrites))
	if err != nil {
		return nil, err
	}
	wfr, err := addClient(bind("client/wfr", "cache2", coherence.WritesFollowReads))
	if err != nil {
		return nil, err
	}
	mr1, err := addClient(bind("client/mr1", "cache1", coherence.MonotonicReads))
	if err != nil {
		return nil, err
	}
	mr2, err := addClient(bind("client/mr2", "cache2", coherence.MonotonicReads))
	if err != nil {
		return nil, err
	}

	// Phase A: faulted workload. The coordinator injects seeded partition
	// windows on store links while the clients run; the MR readers and the
	// coordinator run until the writing clients finish (or the watchdog
	// aborts them — abort is checked per op and per retry, so a hung phase
	// winds down instead of racing the convergence checks).
	var writersDone, abort atomic.Bool
	var writerWG, readerWG sync.WaitGroup
	counts := &opCounts{abort: &abort}
	runW := func(f func()) { writerWG.Add(1); go func() { defer writerWG.Done(); f() }() }
	runW(func() { runWriter(w1, 1, "pg0", cfg.OpsPerWriter, counts, rec) })
	runW(func() { runWriter(w2, 2, "pg1", cfg.OpsPerWriter, counts, rec) })
	runW(func() { runRYWWriter(ryw, 3, "ryw", cfg.OpsPerWriter, counts, rec) })
	runW(func() { runWFRClient(wfr, 4, "pg0", cfg.OpsPerWriter/2, counts, rec) })
	readerWG.Add(2)
	go func() { defer readerWG.Done(); runMRReader(mr1, "mr1@cache1", "cache1", &writersDone, counts, rec) }()
	go func() { defer readerWG.Done(); runMRReader(mr2, "mr2@cache2", "cache2", &writersDone, counts, rec) }()

	partitions := 0
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		for !writersDone.Load() {
			time.Sleep(time.Duration(10+rng.Intn(40)) * time.Millisecond)
			pair := storePairs[rng.Intn(len(storePairs))]
			net.Partition(pair[0], pair[1])
			partitions++
			time.Sleep(time.Duration(20+rng.Intn(60)) * time.Millisecond)
			net.Heal(pair[0], pair[1])
		}
	}()

	// Wait for the writing clients, with a watchdog so a livelocked client
	// fails the run instead of hanging the suite; the abort flag drains the
	// stuck writers before the convergence phase reads any state. The
	// deadline extends while the op counters advance (see awaitWriters), so
	// CPU overcommit stretching every round trip does not starve a healthy
	// workload into a false violation.
	writersFinished := make(chan struct{})
	go func() { writerWG.Wait(); close(writersFinished) }()
	if !awaitWriters(writersFinished, counts, 60*time.Second) {
		rec.violatef("workload phase stalled: no client progress for 60s (hard cap 240s)")
		abort.Store(true)
		<-writersFinished
	}
	writersDone.Store(true)
	readerWG.Wait()
	res.Partitions = partitions

	// Phase B: heal the world. From here on, zero foreground traffic — only
	// the coherence protocol (demand retries, digest heartbeats) runs.
	for _, p := range storePairs {
		net.Heal(p[0], p[1])
		net.SetLinkBoth(p[0], p[1], memnet.LinkProfile{})
	}
	healed := time.Now()

	// Phase C: convergence. Poll replica state directly (ReadLocal bypasses
	// the client path) until every store agrees, then run the global checks.
	// The deadline is progress-extending: each time the disagreement diag
	// changes (anti-entropy is visibly advancing — a loaded box stretches
	// every digest round-trip, but catch-up never stalls), the replicas get
	// another ConvergeWithin, up to a hard cap of 4x. A genuinely stuck
	// replica still fails in ConvergeWithin flat; only demonstrable progress
	// buys time.
	deadline := healed.Add(cfg.ConvergeWithin)
	hardCap := healed.Add(4 * cfg.ConvergeWithin)
	lastDiag := ""
	for {
		diag := convergedState(stores, obj, cfg.Model, rec)
		if diag == "" {
			res.Converged = true
			res.ConvergeIn = time.Since(healed)
			break
		}
		if diag != lastDiag {
			lastDiag = diag
			if d := time.Now().Add(cfg.ConvergeWithin); d.Before(hardCap) {
				deadline = d
			} else {
				deadline = hardCap
			}
		}
		if time.Now().After(deadline) {
			rec.violatef("replicas did not converge within %v: %s", cfg.ConvergeWithin, diag)
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if res.Converged {
		finalChecks(stores, obj, counts, rec)
	}
	rec.checkObservations()

	res.WritesAcked = int(counts.acked.Load())
	res.WriteRetries = int(counts.retries.Load())
	res.ReadsOK = int(counts.readsOK.Load())
	res.ReadsFailed = int(counts.readsFailed.Load())
	for _, s := range stores {
		if st, err := s.Stats(obj); err == nil {
			res.DigestsSent += st.DigestsSent
			res.DigestDemands += st.DigestDemands
		}
	}
	ns2 := net.Stats()
	res.FramesDropped = ns2.Dropped
	res.FramesDuplicated = ns2.Duplicated
	res.Violations = rec.take()
	if len(res.Violations) > 0 {
		res.TraceDump = traceDump(ob, stores)
	}
	return res, nil
}

// baseStrategy maps the configured model onto a Table 1 parameter set that
// exercises the interesting machinery: aggregated lazy partial pushes under
// PRAM (batch frames to lose), immediate pushes under sequential (ordering
// gaps to fill), demand reactions on both.
func baseStrategy(cfg Config) strategy.Strategy {
	if cfg.Model == coherence.Sequential {
		return strategy.Whiteboard()
	}
	st := strategy.Conference(cfg.LazyInterval)
	st.Writers = strategy.MultipleWriters
	st.ObjectOutdate = strategy.Demand
	return st
}

// awaitWriters waits for the workload phase to finish. Under CPU overcommit
// (torture runs share one box with the race detector and hundreds of
// goroutines) a healthy workload can legitimately outlive a flat deadline
// while still making steady progress, so the watchdog deadline is
// progress-extending: every advance of the op counters — they move on every
// attempt, including retries — buys the writers another base, up to a hard
// cap of 4×base, matching the Phase C convergence-deadline policy. A
// genuinely livelocked workload still dies within base of its last
// observed op. Reports whether the writers finished; on false the caller
// raises the abort flag and drains them.
func awaitWriters(finished <-chan struct{}, counts *opCounts, base time.Duration) bool {
	start := time.Now()
	deadline := start.Add(base)
	hardCap := start.Add(4 * base)
	last := int64(-1)
	for {
		select {
		case <-finished:
			return true
		case <-time.After(100 * time.Millisecond):
		}
		if cur := counts.progress(); cur != last {
			last = cur
			if d := time.Now().Add(base); d.Before(hardCap) {
				deadline = d
			} else {
				deadline = hardCap
			}
		}
		if time.Now().After(deadline) {
			return false
		}
	}
}

// opCounts aggregates workload accounting across client goroutines, and
// carries the watchdog's abort flag every client loop checks.
type opCounts struct {
	acked, retries, readsOK, readsFailed atomic.Int64
	abort                                *atomic.Bool
	// maxAttempts overrides appendToken's retry budget (0 = 40, sized for
	// transient frame loss; the crash harness raises it because a store
	// restart is a much longer outage than a dropped frame).
	maxAttempts int
}

// progress is the watchdog's liveness signal: the sum of every per-attempt
// counter, so even a workload that is only retrying keeps its deadline.
func (c *opCounts) progress() int64 {
	return c.acked.Load() + c.retries.Load() + c.readsOK.Load() + c.readsFailed.Load()
}

// appendToken appends one token, retrying on timeout. A retry reuses the
// same write identifier (the proxy aborts the failed allocation), which
// keeps both timeout outcomes safe: a request dropped on a store link is
// simply re-sent, and a request that WAS applied but whose ack came back
// after the client deadline (heavy box load stretches store event loops
// past the 500ms client timeout even on lossless client links) is re-acked
// by the stores' at-most-once admission as a replay — never applied twice.
func appendToken(p *core.Proxy, page string, tok token, counts *opCounts, rec *recorder) bool {
	args := webdoc.EncodeWriteArgs(webdoc.WriteArgs{Content: []byte(tok.String())})
	budget := counts.maxAttempts
	if budget == 0 {
		budget = 40
	}
	for attempt := 0; attempt < budget && !counts.abort.Load(); attempt++ {
		_, err := p.Invoke(msg.Invocation{Method: webdoc.MethodAppendPage, Page: page, Args: args})
		if err == nil {
			counts.acked.Add(1)
			return true
		}
		counts.retries.Add(1)
		time.Sleep(5 * time.Millisecond)
	}
	if !counts.abort.Load() {
		rec.violatef("write %v to %s never acked after %d attempts", tok, page, budget)
	}
	return false
}

// readPage reads one page through a client proxy; a missing page reads as
// empty (the document starts blank).
func readPage(p *core.Proxy, page string, counts *opCounts) (string, bool) {
	out, err := p.Invoke(msg.Invocation{Method: webdoc.MethodGetPage, Page: page})
	if err != nil {
		var re *core.RemoteError
		if errors.As(err, &re) && re.Status == msg.StatusNotFound {
			counts.readsOK.Add(1)
			return "", true
		}
		counts.readsFailed.Add(1)
		return "", false
	}
	pg, err := webdoc.DecodePage(out)
	if err != nil {
		counts.readsFailed.Add(1)
		return "", false
	}
	counts.readsOK.Add(1)
	return string(pg.Content), true
}

// runWriter is a plain writer: it appends label-stamped tokens to one page.
func runWriter(p *core.Proxy, label int, page string, ops int, counts *opCounts, rec *recorder) {
	for seq := 1; seq <= ops; seq++ {
		if !appendToken(p, page, token{label, seq}, counts, rec) {
			return
		}
		rec.recordAck(token{label, seq}, page)
		time.Sleep(time.Millisecond)
	}
}

// runRYWWriter writes and then immediately reads its own page with the Read
// Your Writes guarantee: every successful read must contain every token this
// client has been acked, no matter which faults are in flight.
func runRYWWriter(p *core.Proxy, label int, page string, ops int, counts *opCounts, rec *recorder) {
	acked := make(map[token]bool)
	for seq := 1; seq <= ops; seq++ {
		tok := token{label, seq}
		if !appendToken(p, page, tok, counts, rec) {
			return
		}
		acked[tok] = true
		rec.recordAck(tok, page)
		if content, ok := readPage(p, page, counts); ok {
			got := tokenSet(parseTokens(content, rec, "ryw read"))
			for a := range acked {
				if !got[a] {
					rec.violatef("RYW violated: client %d read %q after %v was acked, content %q", label, page, a, content)
				}
			}
			rec.observe("ryw@cache1", "cache1", page, content)
		}
		time.Sleep(time.Millisecond)
	}
}

// runWFRClient alternates read→write on one page under Writes Follow Reads:
// each of its writes depends on everything its preceding read observed, and
// the global observation check verifies no replica ever showed the write
// without its dependencies.
func runWFRClient(p *core.Proxy, label int, page string, ops int, counts *opCounts, rec *recorder) {
	var lastRead []token
	for seq := 1; seq <= ops; seq++ {
		if content, ok := readPage(p, page, counts); ok {
			lastRead = parseTokens(content, rec, "wfr read")
			rec.observe("wfr@cache2", "cache2", page, content)
		}
		tok := token{label, seq}
		rec.recordWFRDeps(tok, lastRead)
		if !appendToken(p, page, tok, counts, rec) {
			return
		}
		rec.recordAck(tok, page)
		time.Sleep(2 * time.Millisecond)
	}
}

// runMRReader polls every page at one store under Monotonic Reads: a token
// once observed must appear in every later read of the same page.
func runMRReader(p *core.Proxy, who, storeAddr string, done *atomic.Bool, counts *opCounts, rec *recorder) {
	seen := make(map[string]map[token]bool, len(pages))
	for !done.Load() {
		for _, page := range pages {
			content, ok := readPage(p, page, counts)
			if !ok {
				continue
			}
			got := tokenSet(parseTokens(content, rec, who))
			for tok := range seen[page] {
				if !got[tok] {
					rec.violatef("MR violated: %s saw %v on %q then a later read lost it (content %q)", who, tok, page, content)
				}
			}
			seen[page] = got
			rec.observe(who, storeAddr, page, content)
		}
		time.Sleep(3 * time.Millisecond)
	}
}

// localPage reads a page's content directly at a store (no client traffic).
func localPage(s *store.Store, obj ids.ObjectID, page string) (string, error) {
	out, err := s.ReadLocal(obj, msg.Invocation{Method: webdoc.MethodGetPage, Page: page})
	if err != nil {
		if errors.Is(err, semantics.ErrNoElement) {
			return "", nil
		}
		return "", err
	}
	pg, err := webdoc.DecodePage(out)
	if err != nil {
		return "", err
	}
	return string(pg.Content), nil
}

// convergedState reports "" when every store agrees on every page — byte
// identical under the sequential model, identical token sets under PRAM
// (which permits different interleavings of different clients' writes) —
// and all applied vectors are equal. Otherwise it returns a diagnostic.
func convergedState(stores map[string]*store.Store, obj ids.ObjectID, model coherence.Model, rec *recorder) string {
	ref := make(map[string]string, len(pages))
	for _, page := range pages {
		c, err := localPage(stores["perm"], obj, page)
		if err != nil {
			return fmt.Sprintf("perm read %q: %v", page, err)
		}
		ref[page] = c
	}
	for _, addr := range storeAddrs[1:] {
		if _, alive := stores[addr]; !alive {
			continue // permanently killed mid-run (the re-parent schedule)
		}
		for _, page := range pages {
			c, err := localPage(stores[addr], obj, page)
			if err != nil {
				return fmt.Sprintf("%s read %q: %v", addr, page, err)
			}
			if model == coherence.Sequential {
				if c != ref[page] {
					return fmt.Sprintf("%s page %q = %q, perm has %q", addr, page, c, ref[page])
				}
				continue
			}
			a := parseTokens(c, rec, addr)
			b := parseTokens(ref[page], rec, "perm")
			if !sameTokenSet(a, b) {
				return fmt.Sprintf("%s page %q tokens %v, perm has %v", addr, page, a, b)
			}
		}
	}
	permVec, err := stores["perm"].Applied(obj)
	if err != nil {
		return err.Error()
	}
	for _, addr := range storeAddrs[1:] {
		if _, alive := stores[addr]; !alive {
			continue
		}
		v, err := stores[addr].Applied(obj)
		if err != nil {
			return err.Error()
		}
		if !v.Equal(permVec) {
			return fmt.Sprintf("%s applied vector %v, perm has %v", addr, v, permVec)
		}
	}
	return ""
}

// finalChecks runs the post-convergence invariants: every acked token is
// present at every store, and every final page content passes the per-client
// order check.
func finalChecks(stores map[string]*store.Store, obj ids.ObjectID, counts *opCounts, rec *recorder) {
	acked := rec.ackedByPage()
	for addr, s := range stores {
		for _, page := range pages {
			content, err := localPage(s, obj, page)
			if err != nil {
				rec.violatef("final read %s/%q: %v", addr, page, err)
				continue
			}
			toks := parseTokens(content, rec, addr)
			got := tokenSet(toks)
			for tok := range acked[page] {
				if !got[tok] {
					rec.violatef("durability violated: acked %v missing from %s page %q after convergence", tok, addr, page)
				}
			}
			checkPerClientOrder(toks, fmt.Sprintf("final state %s/%q", addr, page), rec)
		}
	}
}
