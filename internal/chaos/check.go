package chaos

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
)

// token is one workload write: a harness-assigned client label and that
// client's per-write sequence number. Tokens are what the checkers reason
// about; their wire form is the page content itself ("c<label>.<seq>;"
// concatenated in application order), so any duplicate, reordered, or lost
// apply is visible in every read.
type token struct {
	label int
	seq   int
}

func (t token) String() string { return fmt.Sprintf("c%d.%d;", t.label, t.seq) }

// parseTokens decodes a page's content back into its token sequence, in
// application order. Malformed content is itself a violation (it means an
// apply corrupted or interleaved within a single append).
func parseTokens(content string, rec *recorder, where string) []token {
	if content == "" {
		return nil
	}
	parts := strings.Split(strings.TrimSuffix(content, ";"), ";")
	out := make([]token, 0, len(parts))
	for _, part := range parts {
		var t token
		rest, ok := strings.CutPrefix(part, "c")
		if !ok {
			rec.violatef("%s: malformed token %q in %q", where, part, content)
			return out
		}
		lab, seq, ok := strings.Cut(rest, ".")
		if !ok {
			rec.violatef("%s: malformed token %q in %q", where, part, content)
			return out
		}
		var err1, err2 error
		t.label, err1 = strconv.Atoi(lab)
		t.seq, err2 = strconv.Atoi(seq)
		if err1 != nil || err2 != nil {
			rec.violatef("%s: malformed token %q in %q", where, part, content)
			return out
		}
		out = append(out, t)
	}
	return out
}

func tokenSet(ts []token) map[token]bool {
	m := make(map[token]bool, len(ts))
	for _, t := range ts {
		m[t] = true
	}
	return m
}

func sameTokenSet(a, b []token) bool {
	if len(a) != len(b) {
		return false
	}
	bs := tokenSet(b)
	for _, t := range a {
		if !bs[t] {
			return false
		}
	}
	return len(tokenSet(a)) == len(bs) // equal lengths and no dups hiding
}

// checkPerClientOrder asserts the Monotonic Writes / PRAM invariant that
// holds for every content ever observable in this system: one client's
// tokens appear in sequence order with no gaps and no duplicates, starting
// at 1. (A store may only apply a client's write after all its predecessors;
// content is built by in-order appends from empty, and state transfers copy
// a store that itself obeyed the rule.)
func checkPerClientOrder(ts []token, where string, rec *recorder) {
	next := make(map[int]int, 4)
	for _, t := range ts {
		want := next[t.label] + 1
		if t.seq != want {
			rec.violatef("%s: client %d tokens out of order: saw seq %d, expected %d (MW/PRAM violation)",
				where, t.label, t.seq, want)
			return
		}
		next[t.label] = t.seq
	}
}

// observation is one successful client read: which reader, at which store,
// of which page, and the tokens it saw in order.
type observation struct {
	reader string
	store  string
	page   string
	tokens []token
}

// recorder collects observations, acked writes, WFR dependencies, and
// violations across the workload goroutines. All methods are safe for
// concurrent use.
type recorder struct {
	mu         sync.Mutex
	violations []string
	obs        []observation
	acked      map[string]map[token]bool // page -> acked tokens
	wfrDeps    map[token][]token         // WFR write -> tokens its preceding read saw
}

func newRecorder() *recorder {
	return &recorder{
		acked:   make(map[string]map[token]bool),
		wfrDeps: make(map[token][]token),
	}
}

// maxViolations caps the list so a systemic failure reports crisply instead
// of flooding.
const maxViolations = 32

func (r *recorder) violatef(format string, args ...any) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.violations) < maxViolations {
		r.violations = append(r.violations, fmt.Sprintf(format, args...))
	}
}

func (r *recorder) observe(reader, store, page, content string) {
	toks := parseTokens(content, r, reader)
	r.mu.Lock()
	r.obs = append(r.obs, observation{reader: reader, store: store, page: page, tokens: toks})
	r.mu.Unlock()
}

func (r *recorder) recordAck(t token, page string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.acked[page] == nil {
		r.acked[page] = make(map[token]bool)
	}
	r.acked[page][t] = true
}

func (r *recorder) ackedByPage() map[string]map[token]bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]map[token]bool, len(r.acked))
	for p, m := range r.acked {
		cp := make(map[token]bool, len(m))
		for t := range m {
			cp[t] = true
		}
		out[p] = cp
	}
	return out
}

func (r *recorder) recordWFRDeps(t token, deps []token) {
	cp := append([]token(nil), deps...)
	r.mu.Lock()
	r.wfrDeps[t] = cp
	r.mu.Unlock()
}

// checkObservations runs the global, after-the-fact checks over every read
// any client performed during the run (faults in flight included):
//
//   - per-client order (MW/PRAM): every observed content shows each client's
//     tokens gapless and in order;
//   - Writes Follow Reads: no observation anywhere shows a WFR write without
//     every token its preceding read had observed.
func (r *recorder) checkObservations() {
	r.mu.Lock()
	obs := r.obs
	deps := r.wfrDeps
	r.mu.Unlock()
	for _, o := range obs {
		where := fmt.Sprintf("%s read of %s/%q", o.reader, o.store, o.page)
		checkPerClientOrder(o.tokens, where, r)
		got := tokenSet(o.tokens)
		for _, t := range o.tokens {
			need, ok := deps[t]
			if !ok {
				continue
			}
			for _, d := range need {
				if !got[d] {
					r.violatef("WFR violated: %s shows %v but not its read-dependency %v", where, t, d)
				}
			}
		}
	}
}

func (r *recorder) take() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := r.violations
	r.violations = nil
	return out
}
