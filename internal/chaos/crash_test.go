package chaos

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/wal"
)

func reportCrash(t *testing.T, res *CrashResult) {
	t.Helper()
	t.Logf("crashes=%d recoveries=%d wal-replayed=%d torn=%d last-recovery=%v; converged=%v in %v; acked=%d retries=%d reads=%d ok/%d failed",
		res.Crashes, res.Recoveries, res.WALReplayed, res.TornTails,
		res.LastRecovery.Round(time.Millisecond),
		res.Converged, res.ConvergeIn.Round(time.Millisecond),
		res.WritesAcked, res.WriteRetries, res.ReadsOK, res.ReadsFailed)
	for _, v := range res.Violations {
		t.Errorf("violation: %s", v)
	}
	for _, l := range res.TraceDump {
		t.Logf("trace: %s", l)
	}
	if !res.Converged {
		t.Errorf("replicas did not converge after the crashes")
	}
}

// TestCrashRestartKill9 is the durability tentpole scenario: the permanent
// store — durable, fsync=always, over real TCP — is kill -9'd twice in the
// middle of the write stream and restarted from disk each time. After the
// dust settles every acknowledged write must exist at every replica (zero
// acked-write loss), every session guarantee must have held at every
// observed point, and a writer identity re-bound at the recovered store
// must resume its write sequence where the dead incarnation left it.
func TestCrashRestartKill9(t *testing.T) {
	res, err := RunCrash(CrashConfig{
		Seed:    7,
		Fsync:   wal.SyncAlways,
		DataDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	reportCrash(t, res)
	if res.Crashes == 0 {
		t.Errorf("no crash cycle ran — scenario vacuous")
	}
	if res.Recoveries != res.Crashes {
		t.Errorf("recoveries=%d != crashes=%d: a restart never opened its gate", res.Recoveries, res.Crashes)
	}
	if res.WALReplayed == 0 {
		t.Errorf("restarts replayed zero WAL records — nothing was durable before the kill")
	}
}

// TestCrashRestartSeedSweep varies the kill timing: different seeds crash
// the store at different points of the write stream (mid-ack, mid-
// dissemination, mid-admission), covering windows a single seed cannot.
func TestCrashRestartSeedSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("crash seed sweep skipped in -short")
	}
	for _, seed := range []int64{1998, 511} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			res, err := RunCrash(CrashConfig{
				Seed:    seed,
				Crashes: 1,
				Fsync:   wal.SyncAlways,
				DataDir: t.TempDir(),
			})
			if err != nil {
				t.Fatal(err)
			}
			reportCrash(t, res)
			if res.Crashes == 0 {
				t.Errorf("no crash cycle ran — scenario vacuous")
			}
		})
	}
}
