// The re-parent schedule: kill the mirror permanently mid-write-stream and
// prove the tree heals itself. Unlike the crash-restart schedule (crash.go),
// the dead store never comes back — its child must notice the silence
// (missed digest heartbeats), re-resolve the object, re-subscribe at the
// permanent store, and anti-entropy the gap, all while the six-client cast
// keeps writing and the session-guarantee recorder watches every read.
package chaos

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/naming"
	"repro/internal/replication"
	"repro/internal/semantics/webdoc"
	"repro/internal/store"
	"repro/internal/strategy"
	"repro/internal/transport/memnet"
)

// ReparentConfig parameterises one mirror-kill run.
type ReparentConfig struct {
	// Seed drives the workload (there is no random fault schedule here —
	// the one fault is the deterministic mirror kill).
	Seed int64
	// Loss is the store↔store frame drop probability, kept modest: the
	// scenario under test is death, not noise.
	Loss float64
	// OpsPerWriter is how many appends each writing client performs.
	OpsPerWriter int
	// DigestInterval is the parent heartbeat period — the liveness signal.
	DigestInterval time.Duration
	// ReparentAfter is the missed-digest threshold handed to every store.
	// Zero DISABLES re-parenting: the negative control, in which the
	// orphaned cache must demonstrably stall.
	ReparentAfter int
	// KillAfterAcks is how many acked writes precede the kill (default: a
	// third of the total write budget — genuinely mid-stream).
	KillAfterAcks int
	// ConvergeWithin bounds the post-workload convergence wait.
	ConvergeWithin time.Duration
}

// ReparentResult is a Result plus the self-healing counters.
type ReparentResult struct {
	Result
	// ReparentsDone / ParentMissedDigests aggregate the survivors' repair
	// counters (the proof the orphan actually re-subscribed, not merely
	// that traffic found another path).
	ReparentsDone       uint64
	ParentMissedDigests uint64
	// OrphanConverged reports whether cache2 — the killed mirror's child —
	// specifically reached the permanent store's state.
	OrphanConverged bool
}

// RunReparent executes the mirror-kill schedule; see the file comment.
func RunReparent(cfg ReparentConfig) (*ReparentResult, error) {
	if cfg.OpsPerWriter == 0 {
		cfg.OpsPerWriter = 30
	}
	if cfg.DigestInterval == 0 {
		cfg.DigestInterval = 25 * time.Millisecond
	}
	if cfg.ConvergeWithin == 0 {
		cfg.ConvergeWithin = 5 * time.Second
	}
	if cfg.KillAfterAcks == 0 {
		// Four writing clients; kill a third of the way into the stream.
		cfg.KillAfterAcks = 4 * cfg.OpsPerWriter / 3
	}
	res := &ReparentResult{}
	rec := newRecorder()
	ob := newRunObserver()

	net := memnet.New(memnet.WithSeed(cfg.Seed))
	defer net.Close()
	ns := naming.New()
	const obj = ids.ObjectID("chaos-doc")

	prof := memnet.LinkProfile{
		Latency: 200 * time.Microsecond,
		Jitter:  500 * time.Microsecond,
		Loss:    cfg.Loss,
	}
	for _, p := range storePairs {
		net.SetLinkBoth(p[0], p[1], prof)
	}
	// The re-parented subscription runs over this link once the mirror dies.
	net.SetLinkBoth("perm", "cache2", prof)

	st := strategy.Conference(10 * time.Millisecond)
	st.Writers = strategy.MultipleWriters
	st.ObjectOutdate = strategy.Demand
	session := []coherence.ClientModel{
		coherence.ReadYourWrites, coherence.MonotonicReads,
		coherence.MonotonicWrites, coherence.WritesFollowReads,
	}

	// Every store resolves parents through the shared naming service; the
	// harness plays the directory's liveness role (in a deployment the
	// lease TTL does this) by deregistering the mirror when it is killed.
	stores := make(map[string]*store.Store, len(storeAddrs))
	mk := func(addr string, role replication.Role) (*store.Store, error) {
		ep, err := net.Endpoint(addr)
		if err != nil {
			return nil, err
		}
		s := store.New(store.Config{
			ID: ns.NextStore(), Role: role, Endpoint: ep,
			ReadTimeout:    300 * time.Millisecond,
			DigestInterval: cfg.DigestInterval,
			ReparentAfter:  cfg.ReparentAfter,
			Obs:            ob,
			ResolveParent: func(object ids.ObjectID) []replication.ParentCandidate {
				r, ok := ns.Record(object)
				if !ok {
					return nil
				}
				out := make([]replication.ParentCandidate, 0, len(r.Entries))
				for _, e := range r.Entries {
					out = append(out, replication.ParentCandidate{Addr: e.Addr, Role: e.Role})
				}
				return out
			},
		})
		stores[addr] = s
		ns.Register(obj, naming.Entry{Addr: addr, Store: s.ID(), Role: role})
		return s, nil
	}
	defer func() {
		for _, s := range stores {
			_ = s.Close()
		}
	}()
	perm, err := mk("perm", replication.RolePermanent)
	if err != nil {
		return nil, err
	}
	if err := perm.Host(store.HostConfig{Object: obj, Semantics: webdoc.New(), Strat: st, Session: session}); err != nil {
		return nil, err
	}
	mirror, err := mk("mirror", replication.RoleObjectInitiated)
	if err != nil {
		return nil, err
	}
	if err := mirror.Host(store.HostConfig{Object: obj, Semantics: webdoc.New(), Strat: st, Session: session, Parent: "perm", Subscribe: true}); err != nil {
		return nil, err
	}
	for addr, parent := range map[string]string{"cache1": "perm", "cache2": "mirror"} {
		c, err := mk(addr, replication.RoleClientInitiated)
		if err != nil {
			return nil, err
		}
		if err := c.Host(store.HostConfig{Object: obj, Semantics: webdoc.New(), Strat: st, Session: session, Parent: parent, Subscribe: true}); err != nil {
			return nil, err
		}
	}

	bind := func(epName, storeAddr string, models ...coherence.ClientModel) (*core.Proxy, error) {
		ep, err := net.Endpoint(epName)
		if err != nil {
			return nil, err
		}
		return core.Bind(core.BindConfig{
			Object: obj, Endpoint: ep, StoreAddr: storeAddr,
			Client: ns.NextClient(), Session: models,
			Prototype: webdoc.New(), Timeout: 500 * time.Millisecond,
		})
	}
	var clients []*core.Proxy
	addClient := func(p *core.Proxy, err error) (*core.Proxy, error) {
		if err == nil {
			clients = append(clients, p)
		}
		return p, err
	}
	defer func() {
		for _, p := range clients {
			p.Close()
		}
	}()
	// The six-client cast of the main schedule: writers at the permanent
	// store, an RYW writer-reader at cache1, a WFR client and an MR
	// observer at cache2 (the store that will be orphaned), an MR observer
	// at cache1.
	w1, err := addClient(bind("client/w1", "perm"))
	if err != nil {
		return nil, err
	}
	w2, err := addClient(bind("client/w2", "perm"))
	if err != nil {
		return nil, err
	}
	ryw, err := addClient(bind("client/ryw", "cache1", coherence.ReadYourWrites, coherence.MonotonicWrites))
	if err != nil {
		return nil, err
	}
	wfr, err := addClient(bind("client/wfr", "cache2", coherence.WritesFollowReads))
	if err != nil {
		return nil, err
	}
	mr1, err := addClient(bind("client/mr1", "cache1", coherence.MonotonicReads))
	if err != nil {
		return nil, err
	}
	mr2, err := addClient(bind("client/mr2", "cache2", coherence.MonotonicReads))
	if err != nil {
		return nil, err
	}

	var writersDone, abort atomic.Bool
	var writerWG, readerWG sync.WaitGroup
	// A dead parent is a much longer outage than a dropped frame: give the
	// cache2-bound writer a budget that spans detection + re-subscribe.
	counts := &opCounts{abort: &abort, maxAttempts: 120}
	runW := func(f func()) { writerWG.Add(1); go func() { defer writerWG.Done(); f() }() }
	runW(func() { runWriter(w1, 1, "pg0", cfg.OpsPerWriter, counts, rec) })
	runW(func() { runWriter(w2, 2, "pg1", cfg.OpsPerWriter, counts, rec) })
	runW(func() { runRYWWriter(ryw, 3, "ryw", cfg.OpsPerWriter, counts, rec) })
	if cfg.ReparentAfter > 0 {
		// cache2 forwards writes up its parent chain; with re-parenting off
		// (the negative control) they would hang against the corpse until
		// the retry budget drained, so the stranded cache is exercised by
		// its reader only.
		runW(func() { runWFRClient(wfr, 4, "pg0", cfg.OpsPerWriter/2, counts, rec) })
	} else {
		_ = wfr
	}
	readerWG.Add(2)
	go func() { defer readerWG.Done(); runMRReader(mr1, "mr1@cache1", "cache1", &writersDone, counts, rec) }()
	go func() { defer readerWG.Done(); runMRReader(mr2, "mr2@cache2", "cache2", &writersDone, counts, rec) }()

	// The assassin: once a third of the write stream is acked, SIGKILL the
	// mirror (Crash stops its event loop without any farewell traffic — an
	// abrupt process death, not a clean unsubscribe) and retire it from
	// resolution, as the lease TTL would in a deployment.
	killed := make(chan struct{})
	go func() {
		defer close(killed)
		for counts.acked.Load() < int64(cfg.KillAfterAcks) && !writersDone.Load() {
			time.Sleep(time.Millisecond)
		}
		mirror.Crash()
		ns.Deregister(obj, "mirror")
	}()

	writersFinished := make(chan struct{})
	go func() { writerWG.Wait(); close(writersFinished) }()
	if !awaitWriters(writersFinished, counts, 90*time.Second) {
		rec.violatef("workload phase stalled: no client progress for 90s (hard cap 360s)")
		abort.Store(true)
		<-writersFinished
	}
	writersDone.Store(true)
	readerWG.Wait()
	<-killed

	// Convergence among the survivors only: the mirror is gone for good.
	delete(stores, "mirror")
	_ = mirror.Close()
	healed := time.Now()
	deadline := healed.Add(cfg.ConvergeWithin)
	for {
		if diag := convergedState(stores, obj, coherence.PRAM, rec); diag == "" {
			res.Converged = true
			res.ConvergeIn = time.Since(healed)
			break
		} else if time.Now().After(deadline) {
			if cfg.ReparentAfter > 0 {
				rec.violatef("survivors did not converge within %v: %s", cfg.ConvergeWithin, diag)
			}
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if res.Converged {
		finalChecks(stores, obj, counts, rec)
	}
	rec.checkObservations()

	// The orphan check: does cache2 specifically hold the permanent
	// store's state? (Converged already implies it; kept separate so the
	// negative control can report exactly what stalled.)
	res.OrphanConverged = true
	for _, page := range pages {
		pc, err1 := localPage(perm, obj, page)
		cc, err2 := localPage(stores["cache2"], obj, page)
		if err1 != nil || err2 != nil ||
			!sameTokenSet(parseTokens(pc, rec, "perm"), parseTokens(cc, rec, "cache2")) {
			res.OrphanConverged = false
		}
	}

	res.WritesAcked = int(counts.acked.Load())
	res.WriteRetries = int(counts.retries.Load())
	res.ReadsOK = int(counts.readsOK.Load())
	res.ReadsFailed = int(counts.readsFailed.Load())
	for _, s := range stores {
		if st, err := s.Stats(obj); err == nil {
			res.DigestsSent += st.DigestsSent
			res.DigestDemands += st.DigestDemands
			res.ReparentsDone += st.ReparentsDone
			res.ParentMissedDigests += st.ParentMissedDigests
		}
	}
	nst := net.Stats()
	res.FramesDropped = nst.Dropped
	res.Violations = rec.take()
	if len(res.Violations) > 0 {
		res.TraceDump = traceDump(ob, stores)
	}
	return res, nil
}
