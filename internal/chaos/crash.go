package chaos

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/replication"
	"repro/internal/semantics/webdoc"
	"repro/internal/store"
	"repro/internal/transport"
	"repro/internal/transport/tcpnet"
	"repro/internal/wal"
)

// CrashConfig parameterises one kill -9 chaos run: the same three-layer
// topology and client cast as Run, but deployed over real TCP with a
// durable permanent store that is crashed and restarted from disk while the
// write stream is in flight.
type CrashConfig struct {
	// Seed drives crash timing and workload choices.
	Seed int64
	// OpsPerWriter is how many appends each writing client performs
	// (default 20).
	OpsPerWriter int
	// Crashes is how many kill -9 → restart cycles hit the permanent store
	// mid-workload (default 2; a cycle is skipped if the writers finish
	// first, so assert CrashResult.Crashes for non-vacuity).
	Crashes int
	// Fsync is the durable store's flush policy (default wal.SyncAlways —
	// the only policy under which "acked" implies "survives kill -9", which
	// is what the final durability check asserts).
	Fsync wal.Policy
	// DigestInterval is the anti-entropy heartbeat period (default 75ms;
	// it is also what re-converges children after a restart).
	DigestInterval time.Duration
	// LazyInterval is the dissemination aggregation period (default 10ms).
	LazyInterval time.Duration
	// RecoveryGrace bounds the restarted store's recover-then-serve gate
	// (default 1s).
	RecoveryGrace time.Duration
	// ConvergeWithin bounds the post-workload convergence wait (default 10s).
	ConvergeWithin time.Duration
	// DataDir is the permanent store's durable directory (required).
	DataDir string
}

func (c *CrashConfig) defaults() error {
	if c.DataDir == "" {
		return fmt.Errorf("chaos: CrashConfig.DataDir is required")
	}
	if c.OpsPerWriter == 0 {
		c.OpsPerWriter = 60
	}
	if c.Crashes == 0 {
		c.Crashes = 2
	}
	if c.Fsync == wal.SyncOff {
		c.Fsync = wal.SyncAlways
	}
	if c.DigestInterval == 0 {
		c.DigestInterval = 75 * time.Millisecond
	}
	if c.LazyInterval == 0 {
		c.LazyInterval = 10 * time.Millisecond
	}
	if c.RecoveryGrace == 0 {
		c.RecoveryGrace = time.Second
	}
	if c.ConvergeWithin == 0 {
		c.ConvergeWithin = 10 * time.Second
	}
	return nil
}

// CrashResult reports one kill -9 chaos run.
type CrashResult struct {
	// Violations is empty iff every durability, convergence, and session
	// guarantee held across every crash.
	Violations []string
	// Converged reports post-workload convergence; ConvergeIn is how long
	// the final heal-out took.
	Converged  bool
	ConvergeIn time.Duration
	// Crashes is how many kill -9 cycles actually ran; Recoveries how many
	// restarts completed their recovery gate.
	Crashes    int
	Recoveries int
	// WALReplayed totals the update records replayed from disk across all
	// restarts; TornTails counts corrupt WAL tails truncated.
	WALReplayed uint64
	TornTails   uint64
	// LastRecovery is the final restart's replay-to-serve duration.
	LastRecovery time.Duration
	// Workload accounting (same meaning as Result).
	WritesAcked  int
	WriteRetries int
	ReadsOK      int
	ReadsFailed  int
	// TraceDump holds the trailing write-lifecycle trace events per store,
	// populated only when Violations is non-empty (see trace.go).
	TraceDump []string
}

// RunCrash executes one kill -9 chaos scenario over real TCP.
//
// The topology is Run's three-layer hierarchy deployed on loopback TCP
// endpoints; the permanent store is durable (WAL + snapshots under
// cfg.DataDir, fsync per cfg.Fsync). While the client cast writes, a
// coordinator repeatedly kills the permanent store the way kill -9 would —
// event loop abandoned mid-flight, WAL neither flushed nor closed, listener
// torn down — then restarts it on the same address from disk alone. The
// restarted store replays snapshot + WAL, anti-entropies its tail from its
// children behind a StatusRetry gate, and resumes service.
//
// The checks are Run's, plus two crash-specific ones: every acknowledged
// write must survive every crash (zero acked-write loss under
// wal.SyncAlways), and a writer identity re-bound after the final recovery
// must resume its write sequence above everything it was acked before the
// crashes (the at-most-once floor — if recovery forgot it, the fresh write
// would be absorbed as a replay and silently vanish).
func RunCrash(cfg CrashConfig) (*CrashResult, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	res := &CrashResult{}
	rec := newRecorder()
	ob := newRunObserver()
	rng := rand.New(rand.NewSource(cfg.Seed))

	fab := tcpnet.NewFabric("")
	defer fab.Close()

	st := baseStrategy(Config{Model: coherence.PRAM, LazyInterval: cfg.LazyInterval})
	session := []coherence.ClientModel{
		coherence.ReadYourWrites, coherence.MonotonicReads,
		coherence.MonotonicWrites, coherence.WritesFollowReads,
	}
	const obj = ids.ObjectID("crash-doc")
	const permID = ids.StoreID(1)

	// The permanent store's endpoint is created ephemeral once, and every
	// restart re-listens on the SAME resolved address — children and
	// clients hold that address and simply redial.
	permEp, err := fab.Endpoint("store/perm")
	if err != nil {
		return nil, err
	}
	permAddr := permEp.Addr()

	newPerm := func(ep transport.Endpoint) *store.Store {
		return store.New(store.Config{
			ID: permID, Role: replication.RolePermanent, Endpoint: ep,
			ReadTimeout:    300 * time.Millisecond,
			DigestInterval: cfg.DigestInterval,
			DataDir:        cfg.DataDir,
			Durability: store.Durability{
				Fsync:         cfg.Fsync,
				RecoveryGrace: cfg.RecoveryGrace,
			},
			Obs: ob,
		})
	}
	hostPerm := func(s *store.Store) error {
		return s.Host(store.HostConfig{
			Object: obj, Semantics: webdoc.New(), Strat: st, Session: session,
		})
	}

	// The current incarnation of the permanent store. The coordinator
	// goroutine swaps it on every crash cycle; everyone else reads it under
	// the mutex.
	var permMu sync.Mutex
	perm := newPerm(permEp)
	curEp := permEp
	defer func() {
		permMu.Lock()
		defer permMu.Unlock()
		perm.Crash() // final state may be mid-anything; don't flush
		_ = curEp.Close()
	}()
	if err := hostPerm(perm); err != nil {
		return nil, err
	}

	// Mirror and caches are memory-only (reconstructible from the parent)
	// and stay up throughout — they are what the restarted permanent store
	// anti-entropies its WAL tail against.
	stores := map[string]*store.Store{"perm": perm}
	defer func() {
		for addr, s := range stores {
			if addr != "perm" { // perm's incarnation is closed above
				_ = s.Close()
			}
		}
	}()
	nextID := ids.StoreID(2)
	mkChild := func(addr, parent string, role replication.Role) (*store.Store, error) {
		ep, err := fab.Endpoint("store/" + addr)
		if err != nil {
			return nil, err
		}
		s := store.New(store.Config{
			ID: nextID, Role: role, Endpoint: ep,
			ReadTimeout:    300 * time.Millisecond,
			DigestInterval: cfg.DigestInterval,
			Obs:            ob,
		})
		nextID++
		stores[addr] = s
		return s, s.Host(store.HostConfig{
			Object: obj, Semantics: webdoc.New(), Strat: st, Session: session,
			Parent: parent, Subscribe: true,
		})
	}
	mirror, err := mkChild("mirror", permAddr, replication.RoleObjectInitiated)
	if err != nil {
		return nil, err
	}
	if _, err := mkChild("cache1", permAddr, replication.RoleClientInitiated); err != nil {
		return nil, err
	}
	if _, err := mkChild("cache2", mirror.Addr(), replication.RoleClientInitiated); err != nil {
		return nil, err
	}

	// Client identities are pinned (not leased): the whole point of the
	// final floor check is re-binding identity 1 after the crashes.
	bind := func(epName, storeAddr string, client ids.ClientID, models ...coherence.ClientModel) (*core.Proxy, error) {
		ep, err := fab.Endpoint(epName)
		if err != nil {
			return nil, err
		}
		return core.Bind(core.BindConfig{
			Object: obj, Endpoint: ep, StoreAddr: storeAddr,
			Client: client, Session: models,
			Prototype: webdoc.New(), Timeout: 500 * time.Millisecond,
		})
	}
	var clients []*core.Proxy
	addClient := func(p *core.Proxy, err error) (*core.Proxy, error) {
		if err == nil {
			clients = append(clients, p)
		}
		return p, err
	}
	defer func() {
		for _, p := range clients {
			p.Close()
		}
	}()
	w1, err := addClient(bind("client/w1", permAddr, 1))
	if err != nil {
		return nil, err
	}
	w2, err := addClient(bind("client/w2", permAddr, 2))
	if err != nil {
		return nil, err
	}
	ryw, err := addClient(bind("client/ryw", stores["cache1"].Addr(), 3,
		coherence.ReadYourWrites, coherence.MonotonicWrites))
	if err != nil {
		return nil, err
	}
	wfr, err := addClient(bind("client/wfr", stores["cache2"].Addr(), 4,
		coherence.WritesFollowReads))
	if err != nil {
		return nil, err
	}
	mr1, err := addClient(bind("client/mr1", stores["cache1"].Addr(), 5, coherence.MonotonicReads))
	if err != nil {
		return nil, err
	}
	mr2, err := addClient(bind("client/mr2", stores["cache2"].Addr(), 6, coherence.MonotonicReads))
	if err != nil {
		return nil, err
	}

	// Phase A: the workload, with the crash coordinator in place of Run's
	// partition injector. A write that straddles an outage retries under
	// the same write identifier until the restarted store either re-acks it
	// (it was durable) or admits it fresh — so the ack bookkeeping stays
	// exact across kill -9.
	var writersDone, abort atomic.Bool
	var writerWG, readerWG sync.WaitGroup
	counts := &opCounts{abort: &abort, maxAttempts: 400}
	runW := func(f func()) { writerWG.Add(1); go func() { defer writerWG.Done(); f() }() }
	runW(func() { runWriter(w1, 1, "pg0", cfg.OpsPerWriter, counts, rec) })
	runW(func() { runWriter(w2, 2, "pg1", cfg.OpsPerWriter, counts, rec) })
	runW(func() { runRYWWriter(ryw, 3, "ryw", cfg.OpsPerWriter, counts, rec) })
	runW(func() { runWFRClient(wfr, 4, "pg0", cfg.OpsPerWriter/2, counts, rec) })
	readerWG.Add(2)
	go func() { defer readerWG.Done(); runMRReader(mr1, "mr1@cache1", "cache1", &writersDone, counts, rec) }()
	go func() { defer readerWG.Done(); runMRReader(mr2, "mr2@cache2", "cache2", &writersDone, counts, rec) }()

	// The crash coordinator: kill -9, hold the address dark for a beat so
	// in-flight writes really fail, restart from disk, wait out the
	// recovery gate, collect the restart's replay accounting.
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		for i := 0; i < cfg.Crashes && !writersDone.Load() && !abort.Load(); i++ {
			// Strike early the first time (loopback TCP drains the write
			// stream fast), then give the recovered deployment a beat of
			// healthy traffic before the next kill.
			lead := 30 + rng.Intn(50)
			if i > 0 {
				lead = 120 + rng.Intn(180)
			}
			time.Sleep(time.Duration(lead) * time.Millisecond)
			if writersDone.Load() {
				return
			}
			permMu.Lock()
			perm.Crash()
			_ = curEp.Close()
			permMu.Unlock()
			res.Crashes++
			time.Sleep(time.Duration(40+rng.Intn(80)) * time.Millisecond)

			ep, err := relisten(fab, permAddr)
			if err != nil {
				rec.violatef("restart %d: re-listen on %s: %v", i+1, permAddr, err)
				abort.Store(true)
				return
			}
			s2 := newPerm(ep)
			if err := hostPerm(s2); err != nil {
				rec.violatef("restart %d: recovery host failed: %v", i+1, err)
				abort.Store(true)
				return
			}
			permMu.Lock()
			perm, curEp = s2, ep
			stores["perm"] = s2
			permMu.Unlock()
			if !awaitRecovered(s2, obj, cfg.RecoveryGrace+2*time.Second) {
				rec.violatef("restart %d: recovery gate never opened", i+1)
				continue
			}
			res.Recoveries++
			if rs, err := s2.Stats(obj); err == nil {
				res.WALReplayed += rs.WALReplayed
				res.TornTails += rs.WALTornTail
				res.LastRecovery = time.Duration(rs.RecoveryNanos)
			}
		}
	}()

	writersFinished := make(chan struct{})
	go func() { writerWG.Wait(); close(writersFinished) }()
	if !awaitWriters(writersFinished, counts, 90*time.Second) {
		rec.violatef("workload phase stalled: no client progress for 90s (hard cap 360s)")
		abort.Store(true)
		<-writersFinished
	}
	writersDone.Store(true)
	readerWG.Wait()

	// Phase B/C: nothing to heal (TCP injected no faults beyond the
	// crashes) — wait for convergence, then the identity-floor probe, then
	// the global checks.
	if !awaitConverged(res, stores, obj, cfg.ConvergeWithin, rec) {
		res.Violations = rec.take()
		res.TraceDump = traceDump(ob, stores)
		return res, nil
	}

	// The reused-identity floor: re-bind writer 1's pinned identity at the
	// recovered store and write the NEXT token in its sequence. The bind
	// reply's version vector must seed the session past every write the
	// dead incarnations acked; if recovery lost that floor, this write goes
	// out under an already-admitted identifier and is silently absorbed as
	// a replay — which the acked-token sweep below then catches missing.
	floorSeq := 0
	for tok := range rec.ackedByPage()["pg0"] {
		if tok.label == 1 && tok.seq > floorSeq {
			floorSeq = tok.seq
		}
	}
	permMu.Lock()
	permNow := perm
	permMu.Unlock()
	w1b, err := addClient(bind("client/w1b", permAddr, 1))
	if err != nil {
		rec.violatef("re-bind of pinned identity 1 after recovery: %v", err)
	} else {
		tok := token{1, floorSeq + 1}
		if appendToken(w1b, "pg0", tok, counts, rec) {
			rec.recordAck(tok, "pg0")
			if content, err := localPage(permNow, obj, "pg0"); err == nil {
				if !tokenSet(parseTokens(content, rec, "floor probe"))[tok] {
					rec.violatef("write-seq floor broken: post-recovery write %v from reused identity vanished (absorbed as a replay); perm has %q", tok, content)
				}
			}
		}
	}
	if !awaitConverged(res, stores, obj, cfg.ConvergeWithin, rec) {
		res.Violations = rec.take()
		res.TraceDump = traceDump(ob, stores)
		return res, nil
	}

	finalChecks(stores, obj, counts, rec)
	rec.checkObservations()

	res.WritesAcked = int(counts.acked.Load())
	res.WriteRetries = int(counts.retries.Load())
	res.ReadsOK = int(counts.readsOK.Load())
	res.ReadsFailed = int(counts.readsFailed.Load())
	res.Violations = rec.take()
	if len(res.Violations) > 0 {
		res.TraceDump = traceDump(ob, stores)
	}
	return res, nil
}

// relisten re-creates the permanent store's endpoint on its original
// address. The retry loop absorbs the OS briefly holding the port after the
// dead incarnation's listener closed.
func relisten(fab *tcpnet.Fabric, addr string) (transport.Endpoint, error) {
	deadline := time.Now().Add(5 * time.Second)
	for {
		ep, err := fab.Endpoint("store/" + addr)
		if err == nil {
			return ep, nil
		}
		if time.Now().After(deadline) {
			return nil, err
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// awaitRecovered polls a restarted store until its recovery gate opens.
func awaitRecovered(s *store.Store, obj ids.ObjectID, within time.Duration) bool {
	deadline := time.Now().Add(within)
	for {
		d, err := s.Durability(obj)
		if err == nil && !d.Recovering {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// awaitConverged polls convergedState until every store agrees (PRAM token
// sets + equal applied vectors), recording a violation on timeout.
func awaitConverged(res *CrashResult, stores map[string]*store.Store, obj ids.ObjectID, within time.Duration, rec *recorder) bool {
	start := time.Now()
	deadline := start.Add(within)
	for {
		if diag := convergedState(stores, obj, coherence.PRAM, rec); diag == "" {
			res.Converged = true
			res.ConvergeIn = time.Since(start)
			return true
		} else if time.Now().After(deadline) {
			rec.violatef("replicas did not converge within %v after the crashes: %s", within, diag)
			res.Converged = false
			return false
		}
		time.Sleep(2 * time.Millisecond)
	}
}
