package chaos

import (
	"sort"
	"strconv"

	"repro/internal/obs"
	"repro/internal/store"
)

// Every chaos run records the write-lifecycle trace (internal/obs) across
// all its stores, and a run that caught any violation attaches the last
// traceDumpPerStore events per store to its result — so a protocol bug
// shows what each replica actually did right before the assertion fired,
// instead of demanding dozens of torture re-runs to catch it under a
// debugger (the PR 7/8 MW flake took 36).
const (
	traceRingSize     = 1024
	traceDumpPerStore = 25
)

// newRunObserver creates the trace-only observer every store in a chaos run
// shares. Metrics stay off: the runs assert on protocol state, and the
// trace is what turns a failure into a readable timeline.
func newRunObserver() *obs.Observer {
	return &obs.Observer{Trace: obs.NewTrace(traceRingSize)}
}

// traceDump formats the trailing events of each store, oldest first,
// prefixed with the store's harness address (trace events carry the numeric
// store ID).
func traceDump(ob *obs.Observer, stores map[string]*store.Store) []string {
	tr := ob.Tracer()
	if tr == nil {
		return nil
	}
	addrs := make([]string, 0, len(stores))
	for addr := range stores {
		addrs = append(addrs, addr)
	}
	sort.Strings(addrs)
	var out []string
	for _, addr := range addrs {
		id := strconv.FormatUint(uint64(stores[addr].ID()), 10)
		for _, e := range tr.Recent(id, traceDumpPerStore) {
			out = append(out, addr+": "+e.String())
		}
	}
	return out
}
