package chaos

import (
	"fmt"
	"os"
	"strconv"
	"testing"
	"time"

	"repro/internal/coherence"
)

// lossRates returns the loss-rate matrix. CI pins a single rate per job via
// CHAOS_LOSS; locally both configured rates run.
func lossRates(t *testing.T) []float64 {
	if env := os.Getenv("CHAOS_LOSS"); env != "" {
		f, err := strconv.ParseFloat(env, 64)
		if err != nil {
			t.Fatalf("bad CHAOS_LOSS %q: %v", env, err)
		}
		return []float64{f}
	}
	return []float64{0.01, 0.1}
}

func report(t *testing.T, res *Result) {
	t.Helper()
	t.Logf("converged=%v in %v; acked=%d retries=%d reads=%d ok/%d failed; partitions=%d dropped=%d dup=%d digests=%d demands-via-digest=%d",
		res.Converged, res.ConvergeIn.Round(time.Millisecond),
		res.WritesAcked, res.WriteRetries, res.ReadsOK, res.ReadsFailed,
		res.Partitions, res.FramesDropped, res.FramesDuplicated,
		res.DigestsSent, res.DigestDemands)
	for _, v := range res.Violations {
		t.Errorf("violation: %s", v)
	}
	for _, l := range res.TraceDump {
		t.Logf("trace: %s", l)
	}
	if !res.Converged {
		t.Errorf("replicas did not converge")
	}
}

// TestConvergenceUnderLossPRAM is the harness's main scenario: the PRAM
// (conference-style, multi-writer, lazy-batched) object survives a seeded
// schedule of frame loss, duplication, and partitions; after the heal every
// replica holds the same token sets and no session guarantee was violated
// at any observed point.
func TestConvergenceUnderLossPRAM(t *testing.T) {
	for _, loss := range lossRates(t) {
		t.Run(fmt.Sprintf("loss=%g", loss), func(t *testing.T) {
			res, err := Run(Config{
				Seed:           1998,
				Loss:           loss,
				Dup:            0.02,
				DigestInterval: 100 * time.Millisecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			report(t, res)
			if res.DigestsSent == 0 {
				t.Errorf("digest heartbeats never fired")
			}
			if res.FramesDropped == 0 {
				t.Errorf("fault schedule injected no loss — scenario vacuous")
			}
		})
	}
}

// TestConvergenceUnderLossSequential runs the sequential (whiteboard-style)
// object through the same fault schedule; here convergence is byte-identical
// content at every replica, not just equal token sets.
func TestConvergenceUnderLossSequential(t *testing.T) {
	for _, loss := range lossRates(t) {
		t.Run(fmt.Sprintf("loss=%g", loss), func(t *testing.T) {
			res, err := Run(Config{
				Seed:           424242,
				Model:          coherence.Sequential,
				Loss:           loss,
				Dup:            0.02,
				DigestInterval: 100 * time.Millisecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			report(t, res)
		})
	}
}

// TestConvergenceSeedSweep runs a small seed sweep at a middling loss rate:
// different seeds give different partition schedules, so the sweep covers
// fault timings a single seed cannot.
func TestConvergenceSeedSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("seed sweep skipped in -short")
	}
	// Honour the CI loss matrix so the two legs sweep different fault
	// intensities instead of running byte-identically.
	loss := 0.05
	if os.Getenv("CHAOS_LOSS") != "" {
		loss = lossRates(t)[0]
	}
	for _, seed := range []int64{7, 63, 511} {
		t.Run(fmt.Sprintf("seed=%d/loss=%g", seed, loss), func(t *testing.T) {
			res, err := Run(Config{
				Seed:           seed,
				Loss:           loss,
				Dup:            0.01,
				OpsPerWriter:   15,
				DigestInterval: 100 * time.Millisecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			report(t, res)
		})
	}
}

// --- checker self-tests -------------------------------------------------------

// The harness is only as trustworthy as its checkers: feed them synthetic
// violations and make sure each one actually fires.

func TestCheckerCatchesGap(t *testing.T) {
	rec := newRecorder()
	checkPerClientOrder([]token{{1, 1}, {1, 3}}, "synthetic", rec)
	if len(rec.take()) == 0 {
		t.Fatalf("per-client gap not detected")
	}
}

func TestCheckerCatchesDuplicate(t *testing.T) {
	rec := newRecorder()
	checkPerClientOrder([]token{{1, 1}, {1, 2}, {1, 2}}, "synthetic", rec)
	if len(rec.take()) == 0 {
		t.Fatalf("duplicate apply not detected")
	}
}

func TestCheckerCatchesReorder(t *testing.T) {
	rec := newRecorder()
	checkPerClientOrder([]token{{1, 2}, {1, 1}}, "synthetic", rec)
	if len(rec.take()) == 0 {
		t.Fatalf("reorder not detected")
	}
}

func TestCheckerAcceptsInterleavedClients(t *testing.T) {
	rec := newRecorder()
	checkPerClientOrder([]token{{1, 1}, {2, 1}, {1, 2}, {2, 2}}, "synthetic", rec)
	if vs := rec.take(); len(vs) != 0 {
		t.Fatalf("valid interleaving flagged: %v", vs)
	}
}

func TestCheckerCatchesWFRViolation(t *testing.T) {
	rec := newRecorder()
	// The WFR client read {1,1} and then wrote {4,1}; an observation showing
	// {4,1} without {1,1} violates Writes Follow Reads.
	rec.recordWFRDeps(token{4, 1}, []token{{1, 1}})
	rec.observe("obs", "cacheX", "pg0", "c4.1;")
	rec.checkObservations()
	if len(rec.take()) == 0 {
		t.Fatalf("WFR violation not detected")
	}
	// And the healthy ordering passes.
	rec2 := newRecorder()
	rec2.recordWFRDeps(token{4, 1}, []token{{1, 1}})
	rec2.observe("obs", "cacheX", "pg0", "c1.1;c4.1;")
	rec2.checkObservations()
	if vs := rec2.take(); len(vs) != 0 {
		t.Fatalf("valid WFR history flagged: %v", vs)
	}
}

func TestCheckerCatchesMalformedContent(t *testing.T) {
	rec := newRecorder()
	parseTokens("garbage", rec, "synthetic")
	if len(rec.take()) == 0 {
		t.Fatalf("malformed content not detected")
	}
}

func TestTokenRoundTrip(t *testing.T) {
	rec := newRecorder()
	in := []token{{1, 1}, {2, 1}, {1, 2}, {12, 34}}
	var content string
	for _, tok := range in {
		content += tok.String()
	}
	out := parseTokens(content, rec, "round-trip")
	if vs := rec.take(); len(vs) != 0 {
		t.Fatalf("round trip flagged: %v", vs)
	}
	if len(out) != len(in) {
		t.Fatalf("parsed %d tokens, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("token %d: got %v want %v", i, out[i], in[i])
		}
	}
}

// TestConvergenceUnderLossParallelDelivery runs the main PRAM and sequential
// scenarios over the parallel memnet drain path (one drain goroutine per
// shard). The seeded fault schedule and per-sender loss/dup decisions are
// unchanged, but cross-destination delivery interleaving is nondeterministic
// in this mode, so these legs assert what the parallel mode promises:
// every replica still converges and no session guarantee bends, whatever
// the interleaving.
func TestConvergenceUnderLossParallelDelivery(t *testing.T) {
	for _, loss := range lossRates(t) {
		t.Run(fmt.Sprintf("pram/loss=%g", loss), func(t *testing.T) {
			res, err := Run(Config{
				Seed:             1998,
				Loss:             loss,
				Dup:              0.02,
				DigestInterval:   100 * time.Millisecond,
				ParallelDelivery: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			report(t, res)
		})
		t.Run(fmt.Sprintf("sequential/loss=%g", loss), func(t *testing.T) {
			res, err := Run(Config{
				Seed:             424242,
				Model:            coherence.Sequential,
				Loss:             loss,
				Dup:              0.02,
				DigestInterval:   100 * time.Millisecond,
				ParallelDelivery: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			report(t, res)
		})
	}
}

// --- watchdog self-tests ------------------------------------------------------

// A finished workload returns promptly regardless of counters.
func TestAwaitWritersFinishes(t *testing.T) {
	done := make(chan struct{})
	close(done)
	if !awaitWriters(done, &opCounts{}, time.Minute) {
		t.Fatal("finished workload reported as stalled")
	}
}

// A workload making no progress dies within roughly base, not the hard cap.
func TestAwaitWritersStallsWithoutProgress(t *testing.T) {
	done := make(chan struct{})
	start := time.Now()
	if awaitWriters(done, &opCounts{}, 300*time.Millisecond) {
		t.Fatal("stalled workload reported as finished")
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("stall verdict took %v, want ~base", el)
	}
}

// Counter progress extends the deadline past base — the PR 8 torture-run
// failure shape: a healthy-but-slow workload under CPU overcommit must not
// be declared dead while its ops are still landing.
func TestAwaitWritersProgressExtends(t *testing.T) {
	done := make(chan struct{})
	counts := &opCounts{}
	go func() { // steady progress for ~3x base
		defer close(done)
		for i := 0; i < 6; i++ {
			counts.acked.Add(1)
			time.Sleep(150 * time.Millisecond)
		}
	}()
	if !awaitWriters(done, counts, 300*time.Millisecond) {
		t.Fatal("progressing workload hit the watchdog")
	}
}
