package chaos

import (
	"fmt"
	"testing"
	"time"
)

// TestMirrorKillReparent is the self-healing scenario of the re-parent
// schedule: the mirror is killed permanently a third of the way into the
// write stream, its cache child must detect the silence, re-subscribe at the
// permanent store, and anti-entropy the gap — while the full client cast
// keeps writing and every session guarantee stays checked. Acked writes must
// survive, the survivors must converge, and the repair must be a real
// re-parent (counter ≥ 1), not luck.
func TestMirrorKillReparent(t *testing.T) {
	for _, loss := range lossRates(t) {
		t.Run(fmt.Sprintf("loss=%g", loss), func(t *testing.T) {
			res, err := RunReparent(ReparentConfig{
				Seed:           1998,
				Loss:           loss,
				DigestInterval: 25 * time.Millisecond,
				ReparentAfter:  2,
			})
			if err != nil {
				t.Fatal(err)
			}
			report(t, &res.Result)
			t.Logf("reparents=%d missed-digests=%d orphan-converged=%v",
				res.ReparentsDone, res.ParentMissedDigests, res.OrphanConverged)
			if res.ReparentsDone == 0 {
				t.Errorf("mirror died but no store completed a re-parent handshake")
			}
			if res.ParentMissedDigests == 0 {
				t.Errorf("parent-watch never recorded a missed digest period")
			}
			if !res.OrphanConverged {
				t.Errorf("the orphaned cache never reached the permanent store's state")
			}
		})
	}
}

// TestMirrorKillWithoutReparentingStalls is the negative control: the same
// kill with re-parenting disabled must leave the orphaned cache stranded on
// its dead parent — proving the positive run's convergence is the repair
// machinery's doing, not a property the topology has for free.
func TestMirrorKillWithoutReparentingStalls(t *testing.T) {
	res, err := RunReparent(ReparentConfig{
		Seed:           1998,
		Loss:           0.01,
		DigestInterval: 25 * time.Millisecond,
		ReparentAfter:  0, // repair disabled
		ConvergeWithin: 1500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("converged=%v orphan-converged=%v reparents=%d acked=%d",
		res.Converged, res.OrphanConverged, res.ReparentsDone, res.WritesAcked)
	if res.Converged {
		t.Errorf("survivors converged with re-parenting disabled — the positive scenario proves nothing")
	}
	if res.OrphanConverged {
		t.Errorf("orphaned cache reached the permanent store's state without a parent")
	}
	if res.ReparentsDone != 0 {
		t.Errorf("ReparentsDone = %d with re-parenting disabled", res.ReparentsDone)
	}
}
