package wal

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/coherence"
	"repro/internal/ids"
	"repro/internal/msg"
	"repro/internal/vclock"
)

func mkUpdate(c ids.ClientID, seq uint64) *coherence.Update {
	return &coherence.Update{
		Write:     ids.WiD{Client: c, Seq: seq},
		GlobalSeq: seq,
		Stamp:     vclock.Stamp{Time: seq * 10, Client: c},
		Deps:      vclock.VC{c: seq},
		Inv:       msg.Invocation{Method: 4, Page: "p", Args: []byte("x")},
		WallNanos: 42,
	}
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, rec, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Snapshot != nil || len(rec.Records) != 0 || rec.TornTail != 0 {
		t.Fatalf("fresh dir recovered %+v", rec)
	}
	if err := l.AppendAdmit(3, 1); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendUpdate(mkUpdate(3, 1)); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendChild("store/1.2.3.4:99", false); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendChild("store/1.2.3.4:99", true); err != nil {
		t.Fatal(err)
	}
	if got := l.Appends(); got != 4 {
		t.Fatalf("Appends = %d, want 4", got)
	}
	if l.Size() <= 0 {
		t.Fatal("Size not tracked")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, rec2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if rec2.TornTail != 0 {
		t.Fatalf("TornTail = %d on clean log", rec2.TornTail)
	}
	if len(rec2.Records) != 4 {
		t.Fatalf("recovered %d records, want 4", len(rec2.Records))
	}
	if a := rec2.Records[0].Admit; a == nil || a.Client != 3 || a.Seq != 1 {
		t.Fatalf("record 0 = %+v, want admit c3#1", rec2.Records[0])
	}
	u := rec2.Records[1].Update
	if u == nil {
		t.Fatalf("record 1 = %+v, want update", rec2.Records[1])
	}
	want := mkUpdate(3, 1)
	if u.Write != want.Write || u.GlobalSeq != want.GlobalSeq || u.Stamp != want.Stamp ||
		u.Inv.Page != want.Inv.Page || string(u.Inv.Args) != string(want.Inv.Args) ||
		u.Deps[3] != 1 || u.WallNanos != 42 {
		t.Fatalf("update round-trip mismatch: %+v", u)
	}
	if c := rec2.Records[2].Child; c == nil || c.Addr != "store/1.2.3.4:99" || c.Remove {
		t.Fatalf("record 2 = %+v", rec2.Records[2])
	}
	if c := rec2.Records[3].Child; c == nil || !c.Remove {
		t.Fatalf("record 3 = %+v", rec2.Records[3])
	}
}

// A crash mid-append leaves a torn tail: recovery must keep the valid
// prefix, truncate the tear, and count it.
func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 3; i++ {
		if err := l.AppendUpdate(mkUpdate(1, i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "wal.log")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Cut the last record in half.
	torn := data[:len(data)-len(data)/6]
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, rec, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.TornTail != 1 {
		t.Fatalf("TornTail = %d, want 1", rec.TornTail)
	}
	if len(rec.Records) != 2 {
		t.Fatalf("recovered %d records, want 2", len(rec.Records))
	}
	// The log must be appendable again and recover cleanly afterwards.
	if err := l2.AppendUpdate(mkUpdate(1, 3)); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec3.TornTail != 0 || len(rec3.Records) != 3 {
		t.Fatalf("after repair: torn=%d records=%d, want 0/3", rec3.TornTail, len(rec3.Records))
	}
}

// A flipped byte mid-log fails that record's CRC; everything from it on is
// dropped (we cannot trust record framing past a corrupt length/payload).
func TestFlippedByteTruncates(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 3; i++ {
		if err := l.AppendAdmit(7, i); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "wal.log")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	recLen := len(data) / 3
	data[recLen+7] ^= 0xff // inside the second record
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, rec, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.TornTail != 1 || len(rec.Records) != 1 {
		t.Fatalf("torn=%d records=%d, want 1/1", rec.TornTail, len(rec.Records))
	}
	if a := rec.Records[0].Admit; a == nil || a.Seq != 1 {
		t.Fatalf("surviving record = %+v", rec.Records[0])
	}
}

func TestSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 5; i++ {
		if err := l.AppendUpdate(mkUpdate(2, i)); err != nil {
			t.Fatal(err)
		}
	}
	snap := &Snapshot{
		State:      []byte("full-state"),
		Applied:    ids.VersionVec{2: 5},
		NextGlobal: 6,
		Lamport:    50,
		Stamped:    []ClientAdmission{{Client: 2, Max: 5, Holes: []uint64{3}}},
		Children:   []string{"store/kid:1"},
	}
	if err := l.WriteSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	if l.Appends() != 0 || l.Size() != 0 {
		t.Fatalf("log not reset after snapshot: appends=%d size=%d", l.Appends(), l.Size())
	}
	// Tail past the snapshot.
	if err := l.AppendUpdate(mkUpdate(2, 6)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	_, rec, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s := rec.Snapshot
	if s == nil {
		t.Fatal("snapshot not recovered")
	}
	if string(s.State) != "full-state" || s.Applied[2] != 5 || s.NextGlobal != 6 || s.Lamport != 50 {
		t.Fatalf("snapshot mismatch: %+v", s)
	}
	if len(s.Stamped) != 1 || s.Stamped[0].Max != 5 || len(s.Stamped[0].Holes) != 1 {
		t.Fatalf("admission state mismatch: %+v", s.Stamped)
	}
	if len(s.Children) != 1 || s.Children[0] != "store/kid:1" {
		t.Fatalf("children mismatch: %+v", s.Children)
	}
	if len(rec.Records) != 1 || rec.Records[0].Update == nil || rec.Records[0].Update.Write.Seq != 6 {
		t.Fatalf("tail mismatch: %+v", rec.Records)
	}
}

// A corrupt snapshot file must not fail recovery: it counts as torn and the
// log alone recovers.
func TestCorruptSnapshotIgnored(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.WriteSnapshot(&Snapshot{State: []byte("s"), Applied: ids.VersionVec{1: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendAdmit(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "snapshot")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, rec, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Snapshot != nil {
		t.Fatal("corrupt snapshot was believed")
	}
	if rec.TornTail != 1 || len(rec.Records) != 1 {
		t.Fatalf("torn=%d records=%d, want 1/1", rec.TornTail, len(rec.Records))
	}
}
