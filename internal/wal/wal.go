// Package wal gives a permanent store's replicas durability: a per-object
// write-ahead log of the stamped updates and admission decisions the
// replication object produces, plus an atomically written snapshot that
// compacts the log. The WAL is exactly the stamped update log the ordering
// engines already keep, made persistent — replaying snapshot + log tail
// through the same engine reconstructs the replica byte for byte, and the
// engines' own duplicate suppression makes replay of a torn write prefix
// safe.
//
// On-disk layout (one directory per store+object):
//
//	wal.log   — append-only records: [type u8][len u32][payload][crc32 u32]
//	snapshot  — full state + applied vector + sequencer/admission state,
//	            written to a temp file and renamed into place
//
// Every record carries a CRC32 over type+len+payload; recovery truncates the
// log at the first record that fails the check (a torn tail from a crash
// mid-append) instead of failing, and reports how many times it had to.
//
//globelint:deterministic
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"repro/internal/coherence"
	"repro/internal/ids"
	"repro/internal/msg"
)

// Policy selects when WAL appends reach stable storage.
type Policy int

// Fsync policies, cheapest first.
const (
	// SyncOff never fsyncs during operation (data reaches the OS on every
	// append, the disk only on snapshot/close). A machine crash can lose
	// acknowledged writes; a process crash cannot.
	SyncOff Policy = iota
	// SyncInterval fsyncs on a timer: bounded loss window, near-SyncOff
	// throughput.
	SyncInterval
	// SyncAlways fsyncs before every write ack: zero acknowledged-write
	// loss even across power failure.
	SyncAlways
)

// String names the policy ("off", "interval", "always").
func (p Policy) String() string {
	switch p {
	case SyncOff:
		return "off"
	case SyncInterval:
		return "interval"
	case SyncAlways:
		return "always"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// ParsePolicy parses a policy name as accepted by flags and manifests.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "off", "":
		return SyncOff, nil
	case "interval":
		return SyncInterval, nil
	case "always":
		return SyncAlways, nil
	default:
		return SyncOff, fmt.Errorf("wal: unknown fsync policy %q (want off|interval|always)", s)
	}
}

// Record types in wal.log.
//
//globelint:wiresym group=walrec
const (
	recUpdate byte = 1 // a stamped update (msg.Encode of its wire form)
	recAdmit  byte = 2 // an unstamped-write admission (client, seq)
	recChild  byte = 3 // a child subscription change (remove flag, addr)
)

// maxRecord bounds a record payload a reader will believe; anything larger
// is treated as a torn/corrupt tail.
const maxRecord = 1 << 26

// Admission is one replayed admission decision: this store minted a stamp
// for the client's write with this sequence number.
type Admission struct {
	Client ids.ClientID
	Seq    uint64
}

// ChildEvent is one replayed child-subscription change.
type ChildEvent struct {
	Addr   string
	Remove bool
}

// Record is one decoded WAL record; exactly one field is non-nil.
type Record struct {
	Update *coherence.Update
	Admit  *Admission
	Child  *ChildEvent
}

// ClientAdmission is one client's admission watermark+holes state inside a
// snapshot (see replication's stamped map).
type ClientAdmission struct {
	Client ids.ClientID
	Max    uint64
	Holes  []uint64
}

// Snapshot is the compacted replica state: everything recovery needs that
// is not in the log tail.
type Snapshot struct {
	// State is the semantics object's full snapshot (Env.Snapshot()).
	State []byte
	// Applied is the replica's applied version vector at snapshot time.
	Applied ids.VersionVec
	// NextGlobal is the sequential-model sequencer position.
	NextGlobal uint64
	// Lamport is the Lamport clock reading.
	Lamport uint64
	// Stamped is the per-client admission state.
	Stamped []ClientAdmission
	// Children are the subscribed child store addresses.
	Children []string
}

// Recovery is everything Open reconstructed from disk.
type Recovery struct {
	// Snapshot is the last compaction point (nil on a fresh directory or
	// when the snapshot file failed its checksum).
	Snapshot *Snapshot
	// Records is the log tail past the snapshot, in append order.
	Records []Record
	// TornTail counts corrupt tails truncated during this open (log tail
	// and/or snapshot file).
	TornTail uint64
}

// Log is an open write-ahead log for one replica. Not safe for concurrent
// use: the owning store serialises all calls on its event loop.
type Log struct {
	dir     string
	f       *os.File
	size    int64
	appends uint64 // records appended since the last snapshot
	dirty   bool   // appended since the last Sync
	scratch []byte
}

const (
	logName  = "wal.log"
	snapName = "snapshot"
)

// Open opens (creating if needed) the WAL directory, recovers snapshot and
// log tail, truncates any torn tail, and returns the log positioned for
// appending.
func Open(dir string) (*Log, *Recovery, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	rec := &Recovery{}
	if snap, torn, err := readSnapshot(filepath.Join(dir, snapName)); err != nil {
		return nil, nil, err
	} else {
		rec.Snapshot = snap
		rec.TornTail += torn
	}
	f, err := os.OpenFile(filepath.Join(dir, logName), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	records, good, torn, err := scanLog(f)
	if err != nil {
		_ = f.Close()
		return nil, nil, err
	}
	rec.Records = records
	rec.TornTail += torn
	if torn > 0 {
		if err := f.Truncate(good); err != nil {
			_ = f.Close()
			return nil, nil, fmt.Errorf("wal: truncating torn tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			_ = f.Close()
			return nil, nil, fmt.Errorf("wal: %w", err)
		}
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		_ = f.Close()
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{dir: dir, f: f, size: good, appends: uint64(len(records))}
	return l, rec, nil
}

// scanLog decodes records until EOF or the first bad record, returning the
// records, the byte offset of the valid prefix, and 1 if a tear was found.
func scanLog(f *os.File) ([]Record, int64, uint64, error) {
	data, err := io.ReadAll(f)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("wal: reading log: %w", err)
	}
	var records []Record
	off := int64(0)
	for int64(len(data))-off >= 9 {
		hdr := data[off:]
		n := int64(binary.LittleEndian.Uint32(hdr[1:5]))
		if n > maxRecord || int64(len(data))-off < 9+n {
			return records, off, 1, nil // torn length or short payload
		}
		payload := hdr[5 : 5+n]
		want := binary.LittleEndian.Uint32(hdr[5+n : 9+n])
		if crc32.ChecksumIEEE(hdr[:5+n]) != want {
			return records, off, 1, nil
		}
		r, err := decodeRecord(hdr[0], payload)
		if err != nil {
			return records, off, 1, nil // undecodable payload: same as torn
		}
		records = append(records, r)
		off += 9 + n
	}
	if off != int64(len(data)) {
		return records, off, 1, nil // trailing partial header
	}
	return records, off, 0, nil
}

//globelint:wiresym group=walrec role=decode
func decodeRecord(typ byte, payload []byte) (Record, error) {
	switch typ {
	case recUpdate:
		m, err := msg.Decode(payload)
		if err != nil {
			return Record{}, err
		}
		return Record{Update: &coherence.Update{
			Write:     m.Write,
			GlobalSeq: m.GlobalSeq,
			Deps:      m.Deps.VC(),
			Stamp:     m.Stamp,
			Inv:       m.Inv,
			WallNanos: m.WallNanos,
		}}, nil
	case recAdmit:
		if len(payload) != 12 {
			return Record{}, errors.New("wal: bad admission record")
		}
		return Record{Admit: &Admission{
			Client: ids.ClientID(binary.LittleEndian.Uint32(payload)),
			Seq:    binary.LittleEndian.Uint64(payload[4:]),
		}}, nil
	case recChild:
		if len(payload) < 1 {
			return Record{}, errors.New("wal: bad child record")
		}
		return Record{Child: &ChildEvent{
			Remove: payload[0] != 0,
			Addr:   string(payload[1:]),
		}}, nil
	default:
		return Record{}, fmt.Errorf("wal: unknown record type %d", typ)
	}
}

// append frames and writes one record.
func (l *Log) append(typ byte, payload []byte) error {
	if l.f == nil {
		return errors.New("wal: closed")
	}
	b := l.scratch[:0]
	b = append(b, typ)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(payload)))
	b = append(b, payload...)
	b = binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b))
	l.scratch = b[:0]
	if _, err := l.f.Write(b); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	l.size += int64(len(b))
	l.appends++
	l.dirty = true
	return nil
}

// AppendUpdate logs one stamped update in its wire form.
func (l *Log) AppendUpdate(u *coherence.Update) error {
	wire := msg.AppendEncode(l.scratch[:0], &msg.Message{
		Kind:      msg.KindUpdate,
		Write:     u.Write,
		GlobalSeq: u.GlobalSeq,
		Stamp:     u.Stamp,
		Deps:      msg.VecFrom(u.Deps),
		Inv:       u.Inv,
		WallNanos: u.WallNanos,
	})
	// append reuses l.scratch; hand it an independent payload view.
	payload := append([]byte(nil), wire...)
	l.scratch = wire[:0]
	return l.append(recUpdate, payload)
}

// AppendAdmit logs one unstamped-write admission.
func (l *Log) AppendAdmit(c ids.ClientID, seq uint64) error {
	var p [12]byte
	binary.LittleEndian.PutUint32(p[:4], uint32(c))
	binary.LittleEndian.PutUint64(p[4:], seq)
	return l.append(recAdmit, p[:])
}

// AppendChild logs a child subscription change.
func (l *Log) AppendChild(addr string, remove bool) error {
	p := make([]byte, 1+len(addr))
	if remove {
		p[0] = 1
	}
	copy(p[1:], addr)
	return l.append(recChild, p)
}

// Sync flushes appended records to stable storage; a no-op when nothing was
// appended since the last Sync.
func (l *Log) Sync() error {
	if !l.dirty || l.f == nil {
		return nil
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	l.dirty = false
	return nil
}

// Appends reports records appended since the last snapshot (compaction
// scheduling input).
func (l *Log) Appends() uint64 { return l.appends }

// Size reports the current log length in bytes.
func (l *Log) Size() int64 { return l.size }

// WriteSnapshot writes a compaction point atomically (temp file + rename +
// directory sync) and truncates the log: every record the snapshot covers
// is dropped. Crash-safe at every step — until the rename lands the old
// snapshot + full log recover, after it the new snapshot + empty log do.
func (l *Log) WriteSnapshot(s *Snapshot) error {
	if l.f == nil {
		return errors.New("wal: closed")
	}
	data := encodeSnapshot(s)
	tmp := filepath.Join(l.dir, snapName+".tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	tf, err := os.Open(tmp)
	if err == nil {
		_ = tf.Sync()
		_ = tf.Close()
	}
	if err := os.Rename(tmp, filepath.Join(l.dir, snapName)); err != nil {
		return fmt.Errorf("wal: snapshot rename: %w", err)
	}
	syncDir(l.dir)
	// The log's history is now covered by the snapshot; restart it. The
	// truncation must come after the rename: a crash in between recovers
	// from the new snapshot plus a log whose records it already covers,
	// which the engines deduplicate.
	if err := l.f.Truncate(0); err != nil {
		return fmt.Errorf("wal: truncate after snapshot: %w", err)
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.size = 0
	l.appends = 0
	l.dirty = false
	return nil
}

// Close syncs and releases the log.
func (l *Log) Close() error {
	if l.f == nil {
		return nil
	}
	err := l.Sync()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}

func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
}

// --- snapshot codec ----------------------------------------------------------

// snapMagic versions the snapshot encoding.
var snapMagic = []byte("GSNP1")

func encodeSnapshot(s *Snapshot) []byte {
	b := append([]byte(nil), snapMagic...)
	b = binary.LittleEndian.AppendUint64(b, s.NextGlobal)
	b = binary.LittleEndian.AppendUint64(b, s.Lamport)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(s.Applied)))
	for c, seq := range s.Applied {
		b = binary.LittleEndian.AppendUint32(b, uint32(c))
		b = binary.LittleEndian.AppendUint64(b, seq)
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(s.Stamped)))
	for _, a := range s.Stamped {
		b = binary.LittleEndian.AppendUint32(b, uint32(a.Client))
		b = binary.LittleEndian.AppendUint64(b, a.Max)
		b = binary.LittleEndian.AppendUint32(b, uint32(len(a.Holes)))
		for _, h := range a.Holes {
			b = binary.LittleEndian.AppendUint64(b, h)
		}
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(s.Children)))
	for _, c := range s.Children {
		b = binary.LittleEndian.AppendUint32(b, uint32(len(c)))
		b = append(b, c...)
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(s.State)))
	b = append(b, s.State...)
	b = binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b))
	return b
}

// readSnapshot loads and validates the snapshot file. A missing file is a
// fresh store (nil, 0, nil); a corrupt one — torn rename never happens, but
// bit rot does — counts as torn and recovery proceeds from the log alone.
func readSnapshot(path string) (*Snapshot, uint64, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, fmt.Errorf("wal: %w", err)
	}
	s, ok := decodeSnapshot(data)
	if !ok {
		return nil, 1, nil
	}
	return s, 0, nil
}

func decodeSnapshot(data []byte) (*Snapshot, bool) {
	if len(data) < len(snapMagic)+4 || string(data[:len(snapMagic)]) != string(snapMagic) {
		return nil, false
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(tail) {
		return nil, false
	}
	r := &snapReader{b: body[len(snapMagic):]}
	s := &Snapshot{}
	s.NextGlobal = r.u64()
	s.Lamport = r.u64()
	n := r.u32()
	if r.bad || n > maxRecord {
		return nil, false
	}
	s.Applied = ids.NewVersionVec(int(n))
	for i := uint32(0); i < n; i++ {
		c := ids.ClientID(r.u32())
		s.Applied[c] = r.u64()
	}
	n = r.u32()
	if r.bad || n > maxRecord {
		return nil, false
	}
	for i := uint32(0); i < n; i++ {
		a := ClientAdmission{Client: ids.ClientID(r.u32()), Max: r.u64()}
		nh := r.u32()
		if r.bad || nh > maxRecord {
			return nil, false
		}
		for j := uint32(0); j < nh; j++ {
			a.Holes = append(a.Holes, r.u64())
		}
		s.Stamped = append(s.Stamped, a)
	}
	n = r.u32()
	if r.bad || n > maxRecord {
		return nil, false
	}
	for i := uint32(0); i < n; i++ {
		s.Children = append(s.Children, string(r.bytes(int(r.u32()))))
	}
	s.State = append([]byte(nil), r.bytes(int(r.u32()))...)
	if r.bad {
		return nil, false
	}
	return s, true
}

type snapReader struct {
	b   []byte
	bad bool
}

func (r *snapReader) u32() uint32 {
	if len(r.b) < 4 {
		r.bad = true
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b)
	r.b = r.b[4:]
	return v
}

func (r *snapReader) u64() uint64 {
	if len(r.b) < 8 {
		r.bad = true
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b)
	r.b = r.b[8:]
	return v
}

func (r *snapReader) bytes(n int) []byte {
	if r.bad || n < 0 || len(r.b) < n {
		r.bad = true
		return nil
	}
	v := r.b[:n]
	r.b = r.b[n:]
	return v
}
