package strategy

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/coherence"
)

func valid() Strategy { return Conference(time.Second) }

func TestPresetsAllValidate(t *testing.T) {
	for name, s := range Presets() {
		if err := s.Validate(); err != nil {
			t.Fatalf("preset %q invalid: %v", name, err)
		}
	}
}

func TestConferenceMatchesTable2(t *testing.T) {
	s := Conference(time.Second)
	// Table 2 of the paper, row by row.
	if s.Propagation != PropagateUpdate {
		t.Fatalf("coherence propagation: %v, want update", s.Propagation)
	}
	if s.Scope != ScopeAll {
		t.Fatalf("store: %v, want all", s.Scope)
	}
	if s.Writers != SingleWriter {
		t.Fatalf("write set: %v, want single", s.Writers)
	}
	if s.Initiative != Push {
		t.Fatalf("transfer initiative: %v, want push", s.Initiative)
	}
	if s.Instant != Lazy {
		t.Fatalf("transfer instant: %v, want lazy (periodic)", s.Instant)
	}
	if s.AccessTransfer != TransferFull {
		t.Fatalf("access transfer type: %v, want full", s.AccessTransfer)
	}
	if s.CoherenceTransfer != CoherencePartial {
		t.Fatalf("coherence transfer type: %v, want partial", s.CoherenceTransfer)
	}
	if s.ObjectOutdate != Wait {
		t.Fatalf("object-outdate reaction: %v, want wait", s.ObjectOutdate)
	}
	if s.ClientOutdate != Demand {
		t.Fatalf("client-outdate reaction: %v, want demand", s.ClientOutdate)
	}
	if s.Model != coherence.PRAM {
		t.Fatalf("model: %v, want PRAM", s.Model)
	}
}

func TestValidateRejectsZeroModel(t *testing.T) {
	s := valid()
	s.Model = 0
	if err := s.Validate(); !errors.Is(err, ErrNoModel) {
		t.Fatalf("want ErrNoModel, got %v", err)
	}
}

func TestValidateRejectsUnsetFields(t *testing.T) {
	mutations := []func(*Strategy){
		func(s *Strategy) { s.Propagation = 0 },
		func(s *Strategy) { s.Scope = 0 },
		func(s *Strategy) { s.Writers = 0 },
		func(s *Strategy) { s.Initiative = 0 },
		func(s *Strategy) { s.Instant = 0 },
		func(s *Strategy) { s.AccessTransfer = 0 },
		func(s *Strategy) { s.CoherenceTransfer = 0 },
		func(s *Strategy) { s.ObjectOutdate = 0 },
		func(s *Strategy) { s.ClientOutdate = 0 },
	}
	for i, mut := range mutations {
		s := valid()
		mut(&s)
		if err := s.Validate(); !errors.Is(err, ErrZeroField) {
			t.Fatalf("mutation %d: want ErrZeroField, got %v", i, err)
		}
	}
}

func TestValidateLazyNeedsInterval(t *testing.T) {
	s := valid()
	s.LazyInterval = 0
	if err := s.Validate(); !errors.Is(err, ErrLazyNeedsPeriod) {
		t.Fatalf("want ErrLazyNeedsPeriod, got %v", err)
	}
}

func TestValidateSequentialNeedsUpdate(t *testing.T) {
	s := Whiteboard()
	s.Propagation = PropagateInvalidate
	if err := s.Validate(); !errors.Is(err, ErrSeqNeedsUpdate) {
		t.Fatalf("want ErrSeqNeedsUpdate, got %v", err)
	}
}

func TestValidateNotificationNeedsFetchPath(t *testing.T) {
	s := valid()
	s.CoherenceTransfer = CoherenceNotification
	s.ObjectOutdate = Wait
	s.Initiative = Push
	if err := s.Validate(); !errors.Is(err, ErrNotifyNeedsPull) {
		t.Fatalf("want ErrNotifyNeedsPull, got %v", err)
	}
	// Demand reaction makes notification workable.
	s.ObjectOutdate = Demand
	if err := s.Validate(); err != nil {
		t.Fatalf("notification+demand should validate: %v", err)
	}
}

func TestValidateFIFOMultiWriter(t *testing.T) {
	s := Magazine(time.Second)
	s.Writers = MultipleWriters
	if err := s.Validate(); !errors.Is(err, ErrMultiNeedsOrder) {
		t.Fatalf("want ErrMultiNeedsOrder, got %v", err)
	}
}

func TestValidateEventualDemandContradiction(t *testing.T) {
	s := MirroredSite(time.Second)
	s.ObjectOutdate = Demand
	if err := s.Validate(); !errors.Is(err, ErrEventualReaction) {
		t.Fatalf("want ErrEventualReaction, got %v", err)
	}
}

func TestStringsNamedForAllValues(t *testing.T) {
	checks := []string{
		PropagateUpdate.String(), PropagateInvalidate.String(),
		ScopePermanent.String(), ScopePermanentAndObjectInitiated.String(), ScopeAll.String(),
		SingleWriter.String(), MultipleWriters.String(),
		Push.String(), Pull.String(),
		Immediate.String(), Lazy.String(),
		TransferPartial.String(), TransferFull.String(),
		CoherenceNotification.String(), CoherencePartial.String(), CoherenceFull.String(),
		Wait.String(), Demand.String(),
	}
	for _, s := range checks {
		if strings.Contains(s, "(") {
			t.Fatalf("unnamed enum value: %q", s)
		}
	}
	unknowns := []string{
		Propagation(9).String(), StoreScope(9).String(), WriteSet(9).String(),
		Initiative(9).String(), Instant(9).String(), Transfer(9).String(),
		CoherenceTransfer(9).String(), Reaction(9).String(),
	}
	for _, s := range unknowns {
		if !strings.Contains(s, "(9)") {
			t.Fatalf("unknown enum not flagged: %q", s)
		}
	}
}

func TestStrategyStringIsTable2Like(t *testing.T) {
	got := Conference(time.Second).String()
	for _, want := range []string{"model=pram", "propagation=update", "store=all",
		"initiative=push", "instant=lazy", "access=full", "coherence=partial",
		"object-outdate=wait", "client-outdate=demand"} {
		if !strings.Contains(got, want) {
			t.Fatalf("String() missing %q: %s", want, got)
		}
	}
}
