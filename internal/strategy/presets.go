package strategy

import (
	"time"

	"repro/internal/coherence"
)

// Conference is the exact configuration of Table 2 of the paper — the
// conference home page of §4: PRAM object model at all stores, single
// writer (the Web master), periodic partial pushes of updates, full-page
// access, object-outdate wait, client-outdate demand (Read Your Writes for
// the master is requested per client at bind time, not here).
func Conference(lazy time.Duration) Strategy {
	return Strategy{
		Model:             coherence.PRAM,
		Propagation:       PropagateUpdate,
		Scope:             ScopeAll,
		Writers:           SingleWriter,
		Initiative:        Push,
		Instant:           Lazy,
		LazyInterval:      lazy,
		AccessTransfer:    TransferFull,
		CoherenceTransfer: CoherencePartial,
		ObjectOutdate:     Wait,
		ClientOutdate:     Demand,
	}
}

// PersonalHomePage suits the paper's §1 example of a page worth caching
// only in the owner's browser: seldom modified, single writer, invalidation
// on change, pull on demand.
func PersonalHomePage() Strategy {
	return Strategy{
		Model:             coherence.FIFO,
		Propagation:       PropagateInvalidate,
		Scope:             ScopePermanent,
		Writers:           SingleWriter,
		Initiative:        Pull,
		Instant:           Immediate,
		AccessTransfer:    TransferFull,
		CoherenceTransfer: CoherenceNotification,
		ObjectOutdate:     Demand,
		ClientOutdate:     Demand,
	}
}

// PopularEventPage suits "home pages of commonly popular organizations or
// events": proxy-level replicas, immediate invalidations pushed so stale
// copies are never served long, partial refetch on access.
func PopularEventPage() Strategy {
	return Strategy{
		Model:             coherence.PRAM,
		Propagation:       PropagateInvalidate,
		Scope:             ScopePermanentAndObjectInitiated,
		Writers:           SingleWriter,
		Initiative:        Push,
		Instant:           Immediate,
		AccessTransfer:    TransferPartial,
		CoherenceTransfer: CoherencePartial,
		ObjectOutdate:     Demand,
		ClientOutdate:     Demand,
	}
}

// Magazine suits "magazine-like documents that are updated periodically":
// aggregated pushes of full content to areas with many subscribers.
func Magazine(issuePeriod time.Duration) Strategy {
	return Strategy{
		Model:             coherence.FIFO,
		Propagation:       PropagateUpdate,
		Scope:             ScopeAll,
		Writers:           SingleWriter,
		Initiative:        Push,
		Instant:           Lazy,
		LazyInterval:      issuePeriod,
		AccessTransfer:    TransferFull,
		CoherenceTransfer: CoherenceFull,
		ObjectOutdate:     Wait,
		ClientOutdate:     Wait,
	}
}

// Forum suits the newsgroup example of §3.2.1: concurrent posters whose
// reactions must follow the posts that triggered them — causal model,
// immediate partial update pushes.
func Forum() Strategy {
	return Strategy{
		Model:             coherence.Causal,
		Propagation:       PropagateUpdate,
		Scope:             ScopeAll,
		Writers:           MultipleWriters,
		Initiative:        Push,
		Instant:           Immediate,
		AccessTransfer:    TransferPartial,
		CoherenceTransfer: CoherencePartial,
		ObjectOutdate:     Demand,
		ClientOutdate:     Demand,
	}
}

// Whiteboard suits the shared-whiteboard / groupware example: concurrent
// writers requiring "strong coherence at every store layer" — the
// sequential model with immediate update pushes everywhere.
func Whiteboard() Strategy {
	return Strategy{
		Model:             coherence.Sequential,
		Propagation:       PropagateUpdate,
		Scope:             ScopeAll,
		Writers:           MultipleWriters,
		Initiative:        Push,
		Instant:           Immediate,
		AccessTransfer:    TransferPartial,
		CoherenceTransfer: CoherencePartial,
		ObjectOutdate:     Demand,
		ClientOutdate:     Demand,
	}
}

// MirroredSite suits object-initiated stores ("a mirrored Web site"):
// eventual coherence between mirrors via lazy full-state updates; clients
// wanting more request Monotonic Reads at bind time.
func MirroredSite(syncPeriod time.Duration) Strategy {
	return Strategy{
		Model:             coherence.Eventual,
		Propagation:       PropagateUpdate,
		Scope:             ScopePermanentAndObjectInitiated,
		Writers:           MultipleWriters,
		Initiative:        Push,
		Instant:           Lazy,
		LazyInterval:      syncPeriod,
		AccessTransfer:    TransferFull,
		CoherenceTransfer: CoherenceFull,
		ObjectOutdate:     Wait,
		ClientOutdate:     Demand,
	}
}

// Presets returns every named preset with its description, for tooling.
func Presets() map[string]Strategy {
	return map[string]Strategy{
		"conference":    Conference(500 * time.Millisecond),
		"personal":      PersonalHomePage(),
		"popular-event": PopularEventPage(),
		"magazine":      Magazine(time.Second),
		"forum":         Forum(),
		"whiteboard":    Whiteboard(),
		"mirror":        MirroredSite(time.Second),
	}
}
