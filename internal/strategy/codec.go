package strategy

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/coherence"
)

// Marshal renders a strategy as a compact, order-stable text form suitable
// for name records and manifests: "model=pram,prop=update,scope=all,...".
// Parse inverts it. The text form carries the full parameter set (not just a
// preset name), so custom strategies survive a trip through the name server.
func Marshal(s Strategy) string {
	var b strings.Builder
	b.Grow(128)
	fmt.Fprintf(&b, "model=%s", modelNames[s.Model])
	fmt.Fprintf(&b, ",prop=%d", int(s.Propagation))
	fmt.Fprintf(&b, ",scope=%d", int(s.Scope))
	fmt.Fprintf(&b, ",writers=%d", int(s.Writers))
	fmt.Fprintf(&b, ",init=%d", int(s.Initiative))
	fmt.Fprintf(&b, ",instant=%d", int(s.Instant))
	fmt.Fprintf(&b, ",access=%d", int(s.AccessTransfer))
	fmt.Fprintf(&b, ",coh=%d", int(s.CoherenceTransfer))
	fmt.Fprintf(&b, ",oout=%d", int(s.ObjectOutdate))
	fmt.Fprintf(&b, ",cout=%d", int(s.ClientOutdate))
	if s.LazyInterval > 0 {
		fmt.Fprintf(&b, ",lazy=%s", s.LazyInterval)
	}
	if s.PullInterval > 0 {
		fmt.Fprintf(&b, ",pull=%s", s.PullInterval)
	}
	return b.String()
}

// modelNames maps coherence models to their stable wire names. The model is
// the one field carried by name rather than ordinal: it defines the
// object's contract with clients, so a decoding mismatch should be legible.
var modelNames = map[coherence.Model]string{
	coherence.Sequential: "sequential",
	coherence.PRAM:       "pram",
	coherence.FIFO:       "fifo",
	coherence.Causal:     "causal",
	coherence.Eventual:   "eventual",
}

// Parse inverts Marshal. The result is validated; a record whose strategy
// does not pass Validate is rejected at parse time rather than at replica
// installation.
func Parse(text string) (Strategy, error) {
	var s Strategy
	if text == "" {
		return s, fmt.Errorf("strategy: empty encoded strategy")
	}
	for _, kv := range strings.Split(text, ",") {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return s, fmt.Errorf("strategy: malformed field %q", kv)
		}
		switch k {
		case "model":
			found := false
			for m, name := range modelNames {
				if name == v {
					s.Model = m
					found = true
					break
				}
			}
			if !found {
				return s, fmt.Errorf("strategy: unknown model %q", v)
			}
		case "lazy", "pull":
			d, err := time.ParseDuration(v)
			if err != nil {
				return s, fmt.Errorf("strategy: bad %s interval %q: %v", k, v, err)
			}
			if k == "lazy" {
				s.LazyInterval = d
			} else {
				s.PullInterval = d
			}
		default:
			n, err := strconv.Atoi(v)
			if err != nil {
				return s, fmt.Errorf("strategy: bad field %s=%q", k, v)
			}
			switch k {
			case "prop":
				s.Propagation = Propagation(n)
			case "scope":
				s.Scope = StoreScope(n)
			case "writers":
				s.Writers = WriteSet(n)
			case "init":
				s.Initiative = Initiative(n)
			case "instant":
				s.Instant = Instant(n)
			case "access":
				s.AccessTransfer = Transfer(n)
			case "coh":
				s.CoherenceTransfer = CoherenceTransfer(n)
			case "oout":
				s.ObjectOutdate = Reaction(n)
			case "cout":
				s.ClientOutdate = Reaction(n)
			default:
				return s, fmt.Errorf("strategy: unknown field %q", k)
			}
		}
	}
	if err := s.Validate(); err != nil {
		return s, err
	}
	return s, nil
}
