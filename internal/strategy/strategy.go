// Package strategy models Table 1 of the paper: the implementation
// parameters that specify "when, how, and by whom coherence is managed" for
// one Web object, plus the two outdate-reaction parameters of §3.3. A
// Strategy is set by the object's programmer at initialisation, after the
// object-based coherence model has been chosen, and is interpreted by the
// replication engine.
package strategy

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/coherence"
)

// Propagation is the "Consistency propagation" parameter: how coherence is
// managed when changes occur — by shipping updates or by invalidating
// replicas.
type Propagation int

// Propagation values.
const (
	PropagateUpdate Propagation = iota + 1
	PropagateInvalidate
)

// String names the value.
func (p Propagation) String() string {
	switch p {
	case PropagateUpdate:
		return "update"
	case PropagateInvalidate:
		return "invalidate"
	default:
		return fmt.Sprintf("Propagation(%d)", int(p))
	}
}

// StoreScope is the "Store" parameter: which store layers implement the
// object-based coherence model.
type StoreScope int

// StoreScope values.
const (
	ScopePermanent StoreScope = iota + 1
	ScopePermanentAndObjectInitiated
	ScopeAll
)

// String names the value.
func (s StoreScope) String() string {
	switch s {
	case ScopePermanent:
		return "permanent"
	case ScopePermanentAndObjectInitiated:
		return "permanent+object-initiated"
	case ScopeAll:
		return "all"
	default:
		return fmt.Sprintf("StoreScope(%d)", int(s))
	}
}

// WriteSet is the "Write set" parameter: the number of simultaneous writers.
type WriteSet int

// WriteSet values.
const (
	SingleWriter WriteSet = iota + 1
	MultipleWriters
)

// String names the value.
func (w WriteSet) String() string {
	switch w {
	case SingleWriter:
		return "single"
	case MultipleWriters:
		return "multiple"
	default:
		return fmt.Sprintf("WriteSet(%d)", int(w))
	}
}

// Initiative is the "Transfer initiative" parameter: who propagates
// coherence information.
type Initiative int

// Initiative values.
const (
	Push Initiative = iota + 1
	Pull
)

// String names the value.
func (i Initiative) String() string {
	switch i {
	case Push:
		return "push"
	case Pull:
		return "pull"
	default:
		return fmt.Sprintf("Initiative(%d)", int(i))
	}
}

// Instant is the "Transfer instant" parameter: when coherence is managed.
type Instant int

// Instant values.
const (
	Immediate Instant = iota + 1
	Lazy              // periodic; successive updates are aggregated
)

// String names the value.
func (i Instant) String() string {
	switch i {
	case Immediate:
		return "immediate"
	case Lazy:
		return "lazy"
	default:
		return fmt.Sprintf("Instant(%d)", int(i))
	}
}

// Transfer is the "Access transfer type" parameter: how much of the
// document is fetched on access.
type Transfer int

// Transfer values.
const (
	TransferPartial Transfer = iota + 1
	TransferFull
)

// String names the value.
func (t Transfer) String() string {
	switch t {
	case TransferPartial:
		return "partial"
	case TransferFull:
		return "full"
	default:
		return fmt.Sprintf("Transfer(%d)", int(t))
	}
}

// CoherenceTransfer is the "Coherence transfer type" parameter: how much is
// shipped when coherence is managed. Notification ships no data at all,
// only word that a change occurred.
type CoherenceTransfer int

// CoherenceTransfer values.
const (
	CoherenceNotification CoherenceTransfer = iota + 1
	CoherencePartial
	CoherenceFull
)

// String names the value.
func (t CoherenceTransfer) String() string {
	switch t {
	case CoherenceNotification:
		return "notification"
	case CoherencePartial:
		return "partial"
	case CoherenceFull:
		return "full"
	default:
		return fmt.Sprintf("CoherenceTransfer(%d)", int(t))
	}
}

// Reaction is the outdate-reaction parameter of §3.3: what a store does
// when it notices its replica violates coherence requirements — passively
// wait for the next propagation, or demand an immediate update.
type Reaction int

// Reaction values.
const (
	Wait Reaction = iota + 1
	Demand
)

// String names the value.
func (r Reaction) String() string {
	switch r {
	case Wait:
		return "wait"
	case Demand:
		return "demand"
	default:
		return fmt.Sprintf("Reaction(%d)", int(r))
	}
}

// Strategy is the full replication policy of one Web object: the
// object-based coherence model plus every Table 1 parameter and the two
// outdate reactions.
type Strategy struct {
	// Model is the object-based coherence model (§3.2.1).
	Model coherence.Model
	// Propagation: update vs invalidate.
	Propagation Propagation
	// Scope: which store layers implement the model.
	Scope StoreScope
	// Writers: single vs multiple simultaneous writers.
	Writers WriteSet
	// Initiative: push vs pull.
	Initiative Initiative
	// Instant: immediate vs lazy (periodic).
	Instant Instant
	// LazyInterval is the aggregation period when Instant == Lazy.
	LazyInterval time.Duration
	// PullInterval is the polling period when Initiative == Pull (a pull
	// consumer refreshes this often); zero means pull only on access.
	PullInterval time.Duration
	// AccessTransfer: how much of the document an access fetches.
	AccessTransfer Transfer
	// CoherenceTransfer: how much a coherence message carries.
	CoherenceTransfer CoherenceTransfer
	// ObjectOutdate is the store's reaction to an outdated replica under
	// the object-based model.
	ObjectOutdate Reaction
	// ClientOutdate is the store's reaction when a client-based requirement
	// is not satisfied.
	ClientOutdate Reaction
}

// Validation errors.
var (
	ErrNoModel          = errors.New("strategy: no object-based coherence model chosen")
	ErrZeroField        = errors.New("strategy: parameter unset")
	ErrLazyNeedsPeriod  = errors.New("strategy: lazy transfer instant requires LazyInterval > 0")
	ErrSeqNeedsUpdate   = errors.New("strategy: sequential model requires update propagation (invalidations cannot carry the total order)")
	ErrNotifyNeedsPull  = errors.New("strategy: notification coherence transfer requires demand or pull to fetch the actual change")
	ErrMultiNeedsOrder  = errors.New("strategy: multiple writers with FIFO model lose writes nondeterministically; choose sequential, PRAM, causal, or eventual")
	ErrEventualReaction = errors.New("strategy: eventual model with object-outdate demand is contradictory (no ordering to repair)")
)

// Validate checks that the parameter combination is well-formed and makes
// sense, mirroring the paper's remark that "not every combination of
// object-based and client-based model makes sense".
func (s Strategy) Validate() error {
	if s.Model < coherence.Sequential || s.Model > coherence.Eventual {
		return ErrNoModel
	}
	for name, ok := range map[string]bool{
		"Propagation":       s.Propagation >= PropagateUpdate && s.Propagation <= PropagateInvalidate,
		"Scope":             s.Scope >= ScopePermanent && s.Scope <= ScopeAll,
		"Writers":           s.Writers >= SingleWriter && s.Writers <= MultipleWriters,
		"Initiative":        s.Initiative >= Push && s.Initiative <= Pull,
		"Instant":           s.Instant >= Immediate && s.Instant <= Lazy,
		"AccessTransfer":    s.AccessTransfer >= TransferPartial && s.AccessTransfer <= TransferFull,
		"CoherenceTransfer": s.CoherenceTransfer >= CoherenceNotification && s.CoherenceTransfer <= CoherenceFull,
		"ObjectOutdate":     s.ObjectOutdate >= Wait && s.ObjectOutdate <= Demand,
		"ClientOutdate":     s.ClientOutdate >= Wait && s.ClientOutdate <= Demand,
	} {
		if !ok {
			return fmt.Errorf("%w: %s", ErrZeroField, name)
		}
	}
	if s.Instant == Lazy && s.LazyInterval <= 0 {
		return ErrLazyNeedsPeriod
	}
	if s.Model == coherence.Sequential && s.Propagation == PropagateInvalidate {
		return ErrSeqNeedsUpdate
	}
	if s.CoherenceTransfer == CoherenceNotification &&
		s.ObjectOutdate == Wait && s.Initiative == Push {
		return ErrNotifyNeedsPull
	}
	if s.Model == coherence.FIFO && s.Writers == MultipleWriters {
		return ErrMultiNeedsOrder
	}
	if s.Model == coherence.Eventual && s.ObjectOutdate == Demand {
		return ErrEventualReaction
	}
	return nil
}

// String renders the strategy as a compact parameter list (Table 2 style).
func (s Strategy) String() string {
	return fmt.Sprintf("model=%v propagation=%v store=%v writers=%v initiative=%v instant=%v access=%v coherence=%v object-outdate=%v client-outdate=%v",
		s.Model, s.Propagation, s.Scope, s.Writers, s.Initiative, s.Instant,
		s.AccessTransfer, s.CoherenceTransfer, s.ObjectOutdate, s.ClientOutdate)
}
