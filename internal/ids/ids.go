// Package ids defines the identifier types shared by every layer of the
// framework: object, client, and store identifiers, write identifiers
// (WiD = client ID + per-client sequence number, exactly as in §4.2 of the
// paper), version vectors holding the per-client expected-write counters a
// store maintains, and read dependencies (WiD, store) used by the
// Read-Your-Writes session guarantee.
package ids

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// ObjectID names a distributed shared Web object (one per Web document).
type ObjectID string

// ClientID identifies a client process bound to an object. Client IDs are
// assigned by the naming service at bind time and are unique per object.
type ClientID uint32

// StoreID identifies a store (permanent, object-initiated, or
// client-initiated replica holder).
type StoreID uint32

// NoStore is the zero StoreID, meaning "no store" in dependency records.
const NoStore StoreID = 0

// WiD is a write identifier: the pair (client, per-client sequence number).
// The paper: "a unique write identifier (WiD) is assigned to each new write,
// composed of the client's identifier and a sequence number".
type WiD struct {
	Client ClientID
	Seq    uint64
}

// Zero reports whether w is the zero write identifier (no write).
func (w WiD) Zero() bool { return w.Client == 0 && w.Seq == 0 }

// Less orders write identifiers first by client, then by sequence number.
// It is a total order used only for deterministic iteration, not a
// happened-before relation.
func (w WiD) Less(o WiD) bool {
	if w.Client != o.Client {
		return w.Client < o.Client
	}
	return w.Seq < o.Seq
}

// String renders the WiD as "c<client>#<seq>".
func (w WiD) String() string {
	return "c" + strconv.FormatUint(uint64(w.Client), 10) + "#" + strconv.FormatUint(w.Seq, 10)
}

// Dependency records the last write performed by a client and the store on
// which it was performed. The paper: "this dependency (WiD, store id) is
// transmitted with a read request to the cache" to enforce Read-Your-Writes.
type Dependency struct {
	Write WiD
	Store StoreID
}

// Zero reports whether the dependency is empty.
func (d Dependency) Zero() bool { return d.Write.Zero() && d.Store == NoStore }

// String renders the dependency as "WiD@s<store>".
func (d Dependency) String() string {
	return d.Write.String() + "@s" + strconv.FormatUint(uint64(d.Store), 10)
}

// VersionVec is a version vector mapping each client to the sequence number
// of that client's most recent write known/applied. It is the paper's
// "expected_write[client]" state generalised to all clients. The zero value
// is an empty vector ready for use (callers must Clone before mutating a
// shared vector).
type VersionVec map[ClientID]uint64

// NewVersionVec returns an empty version vector with room for n clients.
func NewVersionVec(n int) VersionVec { return make(VersionVec, n) }

// Get returns the sequence recorded for client c (zero if absent).
func (v VersionVec) Get(c ClientID) uint64 { return v[c] }

// Set records seq for client c, growing the vector if needed.
func (v VersionVec) Set(c ClientID, seq uint64) { v[c] = seq }

// Bump records seq for client c if it is newer than the current entry.
func (v VersionVec) Bump(c ClientID, seq uint64) {
	if v[c] < seq {
		v[c] = seq
	}
}

// Clone returns an independent copy of v. Clone of nil returns an empty,
// usable vector.
func (v VersionVec) Clone() VersionVec {
	out := make(VersionVec, len(v))
	for c, s := range v {
		out[c] = s
	}
	return out
}

// Merge folds o into v entry-wise, keeping the maximum of each component.
func (v VersionVec) Merge(o VersionVec) {
	for c, s := range o {
		if v[c] < s {
			v[c] = s
		}
	}
}

// Covers reports whether v dominates o: every entry of o is <= the
// corresponding entry of v. An empty o is covered by anything.
func (v VersionVec) Covers(o VersionVec) bool {
	for c, s := range o {
		if s == 0 {
			continue
		}
		if v[c] < s {
			return false
		}
	}
	return true
}

// CoversWrite reports whether v includes write w (i.e. v[w.Client] >= w.Seq).
// The zero WiD is always covered.
func (v VersionVec) CoversWrite(w WiD) bool {
	if w.Zero() {
		return true
	}
	return v[w.Client] >= w.Seq
}

// Equal reports whether v and o contain the same non-zero entries.
func (v VersionVec) Equal(o VersionVec) bool {
	return v.Covers(o) && o.Covers(v)
}

// Total returns the sum of all components — a scalar progress measure used
// by metrics (number of writes covered).
func (v VersionVec) Total() uint64 {
	var t uint64
	for _, s := range v {
		t += s
	}
	return t
}

// String renders the vector deterministically, sorted by client ID.
func (v VersionVec) String() string {
	if len(v) == 0 {
		return "{}"
	}
	clients := make([]ClientID, 0, len(v))
	for c := range v {
		clients = append(clients, c)
	}
	sort.Slice(clients, func(i, j int) bool { return clients[i] < clients[j] })
	var b strings.Builder
	b.WriteByte('{')
	for i, c := range clients {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "c%d:%d", c, v[c])
	}
	b.WriteByte('}')
	return b.String()
}
