package ids

import (
	"testing"
	"testing/quick"
)

func TestWiDZero(t *testing.T) {
	var w WiD
	if !w.Zero() {
		t.Fatalf("zero WiD should report Zero()")
	}
	if (WiD{Client: 1, Seq: 0}).Zero() {
		t.Fatalf("non-zero client should not be Zero()")
	}
	if (WiD{Client: 0, Seq: 3}).Zero() {
		t.Fatalf("non-zero seq should not be Zero()")
	}
}

func TestWiDLessTotalOrder(t *testing.T) {
	a := WiD{Client: 1, Seq: 5}
	b := WiD{Client: 1, Seq: 6}
	c := WiD{Client: 2, Seq: 1}
	if !a.Less(b) || b.Less(a) {
		t.Fatalf("same-client ordering broken")
	}
	if !b.Less(c) {
		t.Fatalf("cross-client ordering should order by client first")
	}
	if a.Less(a) {
		t.Fatalf("Less must be irreflexive")
	}
}

func TestWiDString(t *testing.T) {
	w := WiD{Client: 7, Seq: 42}
	if got, want := w.String(), "c7#42"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

func TestDependencyZeroAndString(t *testing.T) {
	var d Dependency
	if !d.Zero() {
		t.Fatalf("zero dependency should be Zero()")
	}
	d = Dependency{Write: WiD{Client: 3, Seq: 9}, Store: 4}
	if d.Zero() {
		t.Fatalf("non-zero dependency reported Zero()")
	}
	if got, want := d.String(), "c3#9@s4"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

func TestVersionVecBasics(t *testing.T) {
	v := NewVersionVec(2)
	if got := v.Get(1); got != 0 {
		t.Fatalf("empty vector Get = %d, want 0", got)
	}
	v.Set(1, 5)
	if got := v.Get(1); got != 5 {
		t.Fatalf("Get after Set = %d, want 5", got)
	}
	v.Bump(1, 3) // lower: must not regress
	if got := v.Get(1); got != 5 {
		t.Fatalf("Bump regressed: %d, want 5", got)
	}
	v.Bump(1, 9)
	if got := v.Get(1); got != 9 {
		t.Fatalf("Bump did not advance: %d, want 9", got)
	}
}

func TestVersionVecCloneIndependence(t *testing.T) {
	v := VersionVec{1: 2, 3: 4}
	c := v.Clone()
	c.Set(1, 100)
	if v.Get(1) != 2 {
		t.Fatalf("Clone is not independent: original mutated to %d", v.Get(1))
	}
	var nilVec VersionVec
	c2 := nilVec.Clone()
	c2.Set(9, 9) // must not panic
	if c2.Get(9) != 9 {
		t.Fatalf("clone of nil vector unusable")
	}
}

func TestVersionVecCovers(t *testing.T) {
	v := VersionVec{1: 5, 2: 3}
	if !v.Covers(VersionVec{1: 5}) {
		t.Fatalf("equal component should be covered")
	}
	if !v.Covers(VersionVec{1: 4, 2: 3}) {
		t.Fatalf("smaller components should be covered")
	}
	if v.Covers(VersionVec{1: 6}) {
		t.Fatalf("larger component must not be covered")
	}
	if !v.Covers(nil) {
		t.Fatalf("nil vector must be covered by anything")
	}
	if !v.Covers(VersionVec{7: 0}) {
		t.Fatalf("zero entries must be ignored by Covers")
	}
}

func TestVersionVecCoversWrite(t *testing.T) {
	v := VersionVec{1: 5}
	if !v.CoversWrite(WiD{Client: 1, Seq: 5}) {
		t.Fatalf("exact write should be covered")
	}
	if v.CoversWrite(WiD{Client: 1, Seq: 6}) {
		t.Fatalf("future write must not be covered")
	}
	if !v.CoversWrite(WiD{}) {
		t.Fatalf("zero WiD must always be covered")
	}
	if v.CoversWrite(WiD{Client: 2, Seq: 1}) {
		t.Fatalf("unknown client's write must not be covered")
	}
}

func TestVersionVecMergeIsLUB(t *testing.T) {
	a := VersionVec{1: 5, 2: 1}
	b := VersionVec{1: 2, 2: 7, 3: 1}
	m := a.Clone()
	m.Merge(b)
	if !m.Covers(a) || !m.Covers(b) {
		t.Fatalf("merge %v does not cover inputs %v, %v", m, a, b)
	}
	want := VersionVec{1: 5, 2: 7, 3: 1}
	if !m.Equal(want) {
		t.Fatalf("merge = %v, want %v", m, want)
	}
}

func TestVersionVecString(t *testing.T) {
	v := VersionVec{2: 7, 1: 5}
	if got, want := v.String(), "{c1:5 c2:7}"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
	var empty VersionVec
	if got := empty.String(); got != "{}" {
		t.Fatalf("empty String() = %q, want {}", got)
	}
}

func TestVersionVecTotal(t *testing.T) {
	v := VersionVec{1: 5, 2: 7}
	if got := v.Total(); got != 12 {
		t.Fatalf("Total = %d, want 12", got)
	}
}

// Property: Merge is commutative, associative, and idempotent (join of the
// version-vector lattice), and the result covers both inputs.
func TestVersionVecMergeLatticeLaws(t *testing.T) {
	mk := func(xs map[uint8]uint16) VersionVec {
		v := NewVersionVec(len(xs))
		for c, s := range xs {
			if s > 0 {
				v.Set(ClientID(c), uint64(s))
			}
		}
		return v
	}
	merge := func(a, b VersionVec) VersionVec {
		m := a.Clone()
		m.Merge(b)
		return m
	}
	f := func(xa, xb, xc map[uint8]uint16) bool {
		a, b, c := mk(xa), mk(xb), mk(xc)
		ab, ba := merge(a, b), merge(b, a)
		if !ab.Equal(ba) {
			return false
		}
		if !merge(merge(a, b), c).Equal(merge(a, merge(b, c))) {
			return false
		}
		if !merge(a, a).Equal(a) {
			return false
		}
		return ab.Covers(a) && ab.Covers(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Covers is a partial order — reflexive, transitive, antisymmetric
// (up to Equal).
func TestVersionVecCoversPartialOrder(t *testing.T) {
	mk := func(xs map[uint8]uint16) VersionVec {
		v := NewVersionVec(len(xs))
		for c, s := range xs {
			if s > 0 {
				v.Set(ClientID(c), uint64(s))
			}
		}
		return v
	}
	f := func(xa, xb, xc map[uint8]uint16) bool {
		a, b, c := mk(xa), mk(xb), mk(xc)
		if !a.Covers(a) {
			return false
		}
		if a.Covers(b) && b.Covers(c) && !a.Covers(c) {
			return false
		}
		if a.Covers(b) && b.Covers(a) && !a.Equal(b) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
