// Package clock abstracts wall-clock time so that the lazy/periodic
// dissemination timers of Table 1 ("transfer instant = lazy (periodic)") can
// be driven deterministically in tests via a fake clock, and by real time in
// production.
package clock

import (
	"sort"
	"sync"
	"time"
)

// Clock supplies time and timers. Implementations must be safe for
// concurrent use.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// After returns a channel that delivers the (then-current) time once d
	// has elapsed.
	After(d time.Duration) <-chan time.Time
	// AfterFunc schedules f to run after d and returns a handle that can
	// stop it.
	AfterFunc(d time.Duration, f func()) Timer
}

// Timer is a stoppable pending call created by AfterFunc.
type Timer interface {
	// Stop cancels the timer; it reports whether the call was prevented.
	Stop() bool
}

// Real is the wall clock. The zero value is ready to use.
type Real struct{}

var _ Clock = Real{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// After implements Clock.
func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) }

// AfterFunc implements Clock.
func (Real) AfterFunc(d time.Duration, f func()) Timer { return time.AfterFunc(d, f) }

// Fake is a manually advanced clock for deterministic tests. The zero value
// starts at the zero time; NewFake starts at a fixed, non-zero epoch.
type Fake struct {
	mu      sync.Mutex
	now     time.Time
	pending []*fakeTimer
	seq     int
}

var _ Clock = (*Fake)(nil)

// NewFake returns a fake clock starting at a fixed epoch.
func NewFake() *Fake {
	return &Fake{now: time.Date(1998, time.May, 26, 0, 0, 0, 0, time.UTC)}
}

type fakeTimer struct {
	clk     *Fake
	at      time.Time
	seq     int
	f       func()
	ch      chan time.Time
	stopped bool
	fired   bool
}

func (t *fakeTimer) Stop() bool {
	t.clk.mu.Lock()
	defer t.clk.mu.Unlock()
	if t.fired || t.stopped {
		return false
	}
	t.stopped = true
	return true
}

// Now implements Clock.
func (f *Fake) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

// After implements Clock.
func (f *Fake) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	f.schedule(d, nil, ch)
	return ch
}

// AfterFunc implements Clock.
func (f *Fake) AfterFunc(d time.Duration, fn func()) Timer {
	return f.schedule(d, fn, nil)
}

func (f *Fake) schedule(d time.Duration, fn func(), ch chan time.Time) *fakeTimer {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.seq++
	t := &fakeTimer{clk: f, at: f.now.Add(d), seq: f.seq, f: fn, ch: ch}
	f.pending = append(f.pending, t)
	return t
}

// Advance moves the clock forward by d, firing every timer whose deadline is
// reached, in deadline order (creation order breaks ties). Timer callbacks
// run synchronously on the caller's goroutine, with the clock already set to
// the timer's deadline, so a callback that re-arms a periodic timer behaves
// like a real ticker.
func (f *Fake) Advance(d time.Duration) {
	f.mu.Lock()
	target := f.now.Add(d)
	for {
		t := f.nextDueLocked(target)
		if t == nil {
			break
		}
		f.now = t.at
		t.fired = true
		fn, ch, at := t.f, t.ch, t.at
		f.mu.Unlock()
		if ch != nil {
			ch <- at
		}
		if fn != nil {
			fn()
		}
		f.mu.Lock()
	}
	f.now = target
	f.mu.Unlock()
}

// nextDueLocked pops the earliest unfired, unstopped timer due at or before
// target, or returns nil.
func (f *Fake) nextDueLocked(target time.Time) *fakeTimer {
	live := f.pending[:0]
	for _, t := range f.pending {
		if !t.fired && !t.stopped {
			live = append(live, t)
		}
	}
	f.pending = live
	if len(f.pending) == 0 {
		return nil
	}
	sort.SliceStable(f.pending, func(i, j int) bool {
		if !f.pending[i].at.Equal(f.pending[j].at) {
			return f.pending[i].at.Before(f.pending[j].at)
		}
		return f.pending[i].seq < f.pending[j].seq
	})
	if f.pending[0].at.After(target) {
		return nil
	}
	return f.pending[0]
}

// PendingTimers reports how many timers are armed (for test assertions).
func (f *Fake) PendingTimers() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := 0
	for _, t := range f.pending {
		if !t.fired && !t.stopped {
			n++
		}
	}
	return n
}
