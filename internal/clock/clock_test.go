package clock

import (
	"testing"
	"time"
)

func TestRealClockBasics(t *testing.T) {
	var c Real
	before := time.Now()
	now := c.Now()
	if now.Before(before.Add(-time.Second)) {
		t.Fatalf("Real.Now far in the past")
	}
	select {
	case <-c.After(time.Millisecond):
	case <-time.After(2 * time.Second):
		t.Fatalf("Real.After never fired")
	}
	done := make(chan struct{})
	tm := c.AfterFunc(time.Millisecond, func() { close(done) })
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatalf("Real.AfterFunc never fired")
	}
	if tm.Stop() {
		t.Fatalf("Stop after fire should report false")
	}
}

func TestFakeAdvanceFiresInOrder(t *testing.T) {
	f := NewFake()
	var order []int
	f.AfterFunc(30*time.Millisecond, func() { order = append(order, 3) })
	f.AfterFunc(10*time.Millisecond, func() { order = append(order, 1) })
	f.AfterFunc(20*time.Millisecond, func() { order = append(order, 2) })
	f.Advance(25 * time.Millisecond)
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("fired %v, want [1 2]", order)
	}
	f.Advance(10 * time.Millisecond)
	if len(order) != 3 || order[2] != 3 {
		t.Fatalf("fired %v, want [1 2 3]", order)
	}
}

func TestFakeAfterChannel(t *testing.T) {
	f := NewFake()
	ch := f.After(5 * time.Millisecond)
	select {
	case <-ch:
		t.Fatalf("After fired before Advance")
	default:
	}
	start := f.Now()
	f.Advance(5 * time.Millisecond)
	select {
	case at := <-ch:
		if !at.Equal(start.Add(5 * time.Millisecond)) {
			t.Fatalf("fired at %v, want %v", at, start.Add(5*time.Millisecond))
		}
	default:
		t.Fatalf("After did not fire at deadline")
	}
}

func TestFakeStopPreventsFire(t *testing.T) {
	f := NewFake()
	fired := false
	tm := f.AfterFunc(10*time.Millisecond, func() { fired = true })
	if !tm.Stop() {
		t.Fatalf("Stop before fire should report true")
	}
	if tm.Stop() {
		t.Fatalf("second Stop should report false")
	}
	f.Advance(time.Hour)
	if fired {
		t.Fatalf("stopped timer fired")
	}
	if n := f.PendingTimers(); n != 0 {
		t.Fatalf("PendingTimers = %d, want 0", n)
	}
}

func TestFakePeriodicRearm(t *testing.T) {
	f := NewFake()
	var fires []time.Time
	var rearm func()
	rearm = func() {
		f.AfterFunc(10*time.Millisecond, func() {
			fires = append(fires, f.Now())
			if len(fires) < 3 {
				rearm()
			}
		})
	}
	rearm()
	f.Advance(35 * time.Millisecond)
	if len(fires) != 3 {
		t.Fatalf("periodic timer fired %d times, want 3", len(fires))
	}
	base := time.Date(1998, time.May, 26, 0, 0, 0, 0, time.UTC)
	for i, at := range fires {
		want := base.Add(time.Duration(i+1) * 10 * time.Millisecond)
		if !at.Equal(want) {
			t.Fatalf("fire %d at %v, want %v", i, at, want)
		}
	}
}

func TestFakeNowAdvances(t *testing.T) {
	f := NewFake()
	start := f.Now()
	f.Advance(42 * time.Second)
	if got := f.Now().Sub(start); got != 42*time.Second {
		t.Fatalf("advanced %v, want 42s", got)
	}
}
