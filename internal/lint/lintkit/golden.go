package lintkit

import (
	"fmt"
	"go/token"
	"regexp"
	"strings"
	"testing"
)

// wantRe extracts the expectation regexes of one want comment; each regex
// is double-quoted or backquoted: // want "re1" `re2`
var wantRe = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")

// expectation is one `// want` entry: a diagnostic regex anchored to a line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// RunGolden loads the fixture package in dir (relative to the calling test's
// working directory, i.e. the analyzer package), runs the analyzer over it,
// and matches the findings against `// want "regex"` comments: every
// diagnostic must be wanted on its line, every want must fire. Lines with no
// want comment assert cleanliness, so each fixture doubles as its own clean
// golden case.
func RunGolden(t *testing.T, a *Analyzer, dir string) {
	t.Helper()
	fset := token.NewFileSet()
	root, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := LoadDir(fset, root, dir)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	diags, err := RunAnalyzers(fset, []*Package{pkg}, []*Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}

	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(c.Text), "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := fset.Position(c.Pos())
				ms := wantRe.FindAllStringSubmatch(text, -1)
				if len(ms) == 0 {
					t.Errorf("%s:%d: malformed want comment (no quoted regex)", pos.Filename, pos.Line)
					continue
				}
				for _, m := range ms {
					pat := m[1]
					if m[2] != "" {
						pat = m[2]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s:%d: bad want regex %q: %v", pos.Filename, pos.Line, pat, err)
						continue
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected diagnostic: %s", pos.Filename, pos.Line, d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// GoldenFixes loads the fixture in dir, runs the analyzer, applies every
// suggested fix, and returns the rewritten content of the given file — so
// tests can assert what -fix would produce.
func GoldenFixes(t *testing.T, a *Analyzer, dir, file string) string {
	t.Helper()
	fset := token.NewFileSet()
	root, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := LoadDir(fset, root, dir)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	diags, err := RunAnalyzers(fset, []*Package{pkg}, []*Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}
	fixed, err := ApplyFixes(fset, pkg.Src, diags)
	if err != nil {
		t.Fatal(err)
	}
	for name, content := range fixed {
		if strings.HasSuffix(name, file) {
			return string(content)
		}
	}
	t.Fatalf("no fixes produced for %s in %s (diagnostics: %d)", file, dir, len(diags))
	return ""
}

// FormatDiagnostic renders one finding the way cmd/globelint prints it.
func FormatDiagnostic(fset *token.FileSet, d Diagnostic) string {
	pos := fset.Position(d.Pos)
	return fmt.Sprintf("%s:%d:%d: [%s] %s", pos.Filename, pos.Line, pos.Column, d.Analyzer, d.Message)
}
