package lintkit

import (
	"fmt"
	"go/token"
	"sort"
)

// ApplyFixes applies every suggested fix in diags to the given sources and
// returns the rewritten files (filename -> new content). Only files with at
// least one applied edit appear in the result. Overlapping edits are
// rejected — mechanical fixes must compose or the run is not trustworthy.
func ApplyFixes(fset *token.FileSet, src map[string][]byte, diags []Diagnostic) (map[string][]byte, error) {
	type edit struct {
		start, end int
		text       string
	}
	perFile := map[string][]edit{}
	for _, d := range diags {
		for _, fix := range d.Fixes {
			for _, e := range fix.Edits {
				pos, end := fset.Position(e.Pos), fset.Position(e.End)
				if pos.Filename != end.Filename {
					return nil, fmt.Errorf("fix %q spans files", fix.Message)
				}
				perFile[pos.Filename] = append(perFile[pos.Filename],
					edit{start: pos.Offset, end: end.Offset, text: e.NewText})
			}
		}
	}
	out := map[string][]byte{}
	for name, edits := range perFile {
		content, ok := src[name]
		if !ok {
			return nil, fmt.Errorf("no source for %s", name)
		}
		sort.Slice(edits, func(i, j int) bool {
			if edits[i].start != edits[j].start {
				return edits[i].start < edits[j].start
			}
			return edits[i].end < edits[j].end
		})
		// Drop exact duplicates (several diagnostics may propose the same
		// insertion, e.g. adding one import), then reject real overlaps.
		dedup := edits[:0]
		for i, e := range edits {
			if i > 0 && e == edits[i-1] {
				continue
			}
			dedup = append(dedup, e)
		}
		edits = dedup
		for i := 1; i < len(edits); i++ {
			if edits[i].start < edits[i-1].end {
				return nil, fmt.Errorf("%s: overlapping fixes at offsets %d and %d",
					name, edits[i-1].start, edits[i].start)
			}
		}
		var buf []byte
		last := 0
		for _, e := range edits {
			if e.start < last || e.end > len(content) {
				return nil, fmt.Errorf("%s: fix out of range [%d,%d)", name, e.start, e.end)
			}
			buf = append(buf, content[last:e.start]...)
			buf = append(buf, e.text...)
			last = e.end
		}
		buf = append(buf, content[last:]...)
		out[name] = buf
	}
	return out, nil
}
