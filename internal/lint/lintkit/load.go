package lintkit

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	Path  string
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// Src maps each parsed filename to its exact source bytes.
	Src map[string][]byte
}

// listedPkg is the subset of `go list -json` output the loader consumes.
type listedPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
}

// goList runs `go list -export -deps -json` for the given patterns in dir.
// -export makes the toolchain write export data for every listed package, so
// imports type-check from compiler output without golang.org/x/tools.
func goList(dir string, patterns []string) ([]listedPkg, error) {
	args := []string{"list", "-export", "-deps", "-json=ImportPath,Dir,Export,GoFiles,DepOnly"}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, ee.Stderr)
		}
		return nil, fmt.Errorf("go list %s: %v", strings.Join(patterns, " "), err)
	}
	var pkgs []listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter resolves imports from the export files `go list -export`
// produced.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		e, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(e)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// Load lists, parses, and type-checks the packages matching patterns,
// resolved relative to dir (the module root for ./... patterns). Test files
// are not loaded: the invariants globelint enforces live in shipped code.
func Load(fset *token.FileSet, dir string, patterns []string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	var targets []listedPkg
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}
	imp := exportImporter(fset, exports)
	var out []*Package
	for _, t := range targets {
		var names []string
		for _, f := range t.GoFiles {
			names = append(names, filepath.Join(t.Dir, f))
		}
		pkg, err := check(fset, imp, t.ImportPath, names)
		if err != nil {
			return nil, err
		}
		pkg.Dir = t.Dir
		out = append(out, pkg)
	}
	return out, nil
}

// LoadDir parses and type-checks the .go files of one directory as a single
// package, resolving their imports through moduleRoot. This is the golden
// test loader: testdata directories are invisible to `go list ./...` (the
// toolchain ignores "testdata"), but their fixture packages may import real
// module packages like repro/internal/msg.
func LoadDir(fset *token.FileSet, moduleRoot, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, filepath.Join(dir, e.Name()))
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lintkit: no .go files in %s", dir)
	}
	sort.Strings(names)

	// Collect the fixture's imports, then ask go list for their export data.
	imports := map[string]bool{}
	for _, name := range names {
		src, err := os.ReadFile(name)
		if err != nil {
			return nil, err
		}
		f, err := parser.ParseFile(fset, name, src, parser.ImportsOnly)
		if err != nil {
			return nil, err
		}
		for _, im := range f.Imports {
			p, err := strconv.Unquote(im.Path.Value)
			if err == nil && p != "unsafe" {
				imports[p] = true
			}
		}
	}
	exports := map[string]string{}
	if len(imports) > 0 {
		var pats []string
		for p := range imports {
			pats = append(pats, p)
		}
		sort.Strings(pats)
		listed, err := goList(moduleRoot, pats)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	pkg, err := check(fset, exportImporter(fset, exports), "testdata/"+filepath.Base(dir), names)
	if err != nil {
		return nil, err
	}
	pkg.Dir = dir
	return pkg, nil
}

// check parses the named files and type-checks them as one package.
func check(fset *token.FileSet, imp types.Importer, path string, filenames []string) (*Package, error) {
	src := map[string][]byte{}
	var files []*ast.File
	for _, name := range filenames {
		b, err := os.ReadFile(name)
		if err != nil {
			return nil, err
		}
		f, err := parser.ParseFile(fset, name, b, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		src[name] = b
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", path, err)
	}
	return &Package{Path: path, Files: files, Types: tpkg, Info: info, Src: src}, nil
}

// ModuleRoot locates the enclosing module's root directory (the place
// patterns like ./... resolve from), starting the `go env` query in dir.
func ModuleRoot(dir string) (string, error) {
	cmd := exec.Command("go", "env", "GOMOD")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("go env GOMOD: %v", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		return "", fmt.Errorf("lintkit: not inside a module (GOMOD=%q)", gomod)
	}
	return filepath.Dir(gomod), nil
}
