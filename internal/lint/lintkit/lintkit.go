// Package lintkit is the in-tree static-analysis framework behind
// cmd/globelint. It is a deliberately small, stdlib-only re-creation of the
// golang.org/x/tools/go/analysis API surface the domain analyzers need —
// the toolchain this repo builds with has no module dependencies, so the
// framework loads and type-checks packages itself (see load.go) instead of
// relying on go/packages.
//
// An Analyzer inspects one type-checked package at a time through a Pass
// and reports Diagnostics, optionally carrying SuggestedFixes that
// cmd/globelint -fix applies mechanically.
//
// Source code talks back to the analyzers through //globelint: directive
// comments:
//
//	//globelint:ignore <analyzer> <reason>
//	    on (or immediately above) a line suppresses that analyzer's
//	    diagnostics for the line; the reason is mandatory, so every
//	    suppression is a reviewed decision with a paper trail.
//	//globelint:deterministic
//	    anywhere in a file marks the whole package as deterministic
//	    (clockdet forbids wall-clock and global-randomness calls in it).
//	//globelint:aliased-input
//	    marks a package whose message handlers receive DecodeAlias-decoded
//	    frames (aliasretain applies to it).
//	//globelint:looponly ...
//	//globelint:wiresym ...
//	    declaration markers consumed by the looponly and wiresym analyzers;
//	    see those packages for the grammar.
package lintkit

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in output and in ignore directives.
	Name string
	// Doc is the one-paragraph invariant statement shown by globelint -list.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass) error
}

// Pass carries one package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// Src maps filenames to their source bytes (fix application and
	// directive scanning need the original text).
	Src map[string][]byte

	diags []Diagnostic
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Pos
	Message  string
	Fixes    []SuggestedFix
}

// SuggestedFix is a mechanical remediation -fix can apply.
type SuggestedFix struct {
	Message string
	Edits   []TextEdit
}

// TextEdit replaces the range [Pos, End) with NewText.
type TextEdit struct {
	Pos     token.Pos
	End     token.Pos
	NewText string
}

// Report records a finding.
func (p *Pass) Report(d Diagnostic) {
	d.Analyzer = p.Analyzer.Name
	p.diags = append(p.diags, d)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// HasPackageDirective reports whether any file of the pass's package carries
// the given package-level marker (e.g. "deterministic").
func (p *Pass) HasPackageDirective(name string) bool {
	want := "//globelint:" + name
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				if text == want || strings.HasPrefix(text, want+" ") {
					return true
				}
			}
		}
	}
	return false
}

// Directive is one parsed //globelint: marker attached to a declaration.
type Directive struct {
	// Verb is the word after "globelint:" ("wiresym", "looponly", ...).
	Verb string
	// Args are the whitespace-separated tokens after the verb; key=value
	// tokens are additionally split into Fields.
	Args []string
	// Fields holds the key=value args ("group" -> "nameitem", ...).
	Fields map[string]string
	Pos    token.Pos
}

// DeclDirectives parses the //globelint: markers in a declaration's doc
// comment group.
func DeclDirectives(doc *ast.CommentGroup) []Directive {
	if doc == nil {
		return nil
	}
	var out []Directive
	for _, c := range doc.List {
		d, ok := parseDirective(c)
		if ok {
			out = append(out, d)
		}
	}
	return out
}

func parseDirective(c *ast.Comment) (Directive, bool) {
	text := strings.TrimSpace(c.Text)
	const prefix = "//globelint:"
	if !strings.HasPrefix(text, prefix) {
		return Directive{}, false
	}
	rest := strings.TrimPrefix(text, prefix)
	parts := strings.Fields(rest)
	if len(parts) == 0 {
		return Directive{}, false
	}
	d := Directive{Verb: parts[0], Args: parts[1:], Fields: map[string]string{}, Pos: c.Pos()}
	for _, a := range d.Args {
		if k, v, ok := strings.Cut(a, "="); ok {
			d.Fields[k] = v
		}
	}
	return d, true
}

// suppressed reports whether a diagnostic at the given position is covered
// by an ignore directive: "//globelint:ignore <analyzer|all> <reason>" on
// the same line, or alone on the line directly above it.
func suppressed(fset *token.FileSet, files []*ast.File, analyzer string, pos token.Pos) bool {
	position := fset.Position(pos)
	for _, f := range files {
		if fset.Position(f.Pos()).Filename != position.Filename {
			continue
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d, ok := parseDirective(c)
				if !ok || d.Verb != "ignore" || len(d.Args) < 2 {
					// An ignore without both an analyzer name and a reason
					// does not suppress anything — suppressions must carry
					// their justification.
					continue
				}
				if d.Args[0] != analyzer && d.Args[0] != "all" {
					continue
				}
				cline := fset.Position(c.Pos()).Line
				if cline == position.Line || cline == position.Line-1 {
					return true
				}
			}
		}
	}
	return false
}

// RunAnalyzers applies each analyzer to each package and returns the
// surviving (non-suppressed) findings in file/line order. All packages must
// share one FileSet (Load guarantees this).
func RunAnalyzers(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var out []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Src:      pkg.Src,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
			for _, d := range pass.diags {
				if !suppressed(fset, pkg.Files, a.Name, d.Pos) {
					out = append(out, d)
				}
			}
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		pi, pj := fset.Position(out[i].Pos), fset.Position(out[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	})
	return out, nil
}
