package wiresym

import (
	"testing"

	"repro/internal/lint/lintkit"
)

func TestHalfWiredSymbolsAreFlagged(t *testing.T) {
	lintkit.RunGolden(t, Analyzer, "testdata/src/wire")
}

func TestFullyWiredPackageIsClean(t *testing.T) {
	lintkit.RunGolden(t, Analyzer, "testdata/src/clean")
}
