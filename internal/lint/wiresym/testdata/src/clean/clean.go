// Package clean is the wiresym clean golden case: every site covers every
// member, exemptions are real and honest.
package clean

//globelint:wiresym group=op exempt=opSentinel
const (
	opGet uint8 = iota + 1
	opSet
	opSentinel // capacity marker, never on the wire
)

//globelint:wiresym group=op role=encode
func encode(op uint8) byte {
	switch op {
	case opGet:
		return 'g'
	case opSet:
		return 's'
	}
	return 0
}

//globelint:wiresym group=op role=decode exempt=opSet
func decodeGetOnly(b byte) uint8 {
	// opSet frames are rejected earlier by design; the exemption records
	// that decision where the coverage gate can see it.
	if b == 'g' {
		return opGet
	}
	return 0
}
