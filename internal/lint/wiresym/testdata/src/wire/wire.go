// Package wire is a wiresym golden fixture exercising every membership
// source: const-block groups, named (imported) enum types with a prefix
// filter, and struct-field sets.
package wire

import "repro/internal/msg"

// Record tags on the fixture's little wire format.
//
//globelint:wiresym group=rectag
const (
	recPut byte = iota + 1
	recDel
	recMeta
)

// encodeRec covers every tag: clean site.
//
//globelint:wiresym group=rectag role=encode
func encodeRec(tag byte) []byte {
	switch tag {
	case recPut, recDel, recMeta:
		return []byte{tag}
	}
	return nil
}

// decodeRec forgot recMeta, and claims an exemption for recDel that its
// switch in fact handles, and exempts a tag that does not exist.
//
//globelint:wiresym group=rectag role=decode exempt=recDel,recGone
func decodeRec(b []byte) byte { // want `recMeta is not referenced in the decode site` `stale exemption recDel` `exempt=recGone names no member`
	switch b[0] {
	case recPut:
		return recPut
	case recDel:
		return recDel
	}
	return 0
}

// serveCtrl dispatches the control kinds of the real wire protocol but
// forgot the reply kind.
//
//globelint:wiresym type=msg.Kind role=dispatch prefix=KindCtrl
func serveCtrl(m *msg.Message) bool { // want `KindCtrlReply is not referenced in the dispatch site`
	return m.Kind == msg.KindCtrlRequest
}

// frame is a two-field wire struct.
type frame struct {
	Tag  byte
	Body []byte
}

// frameSize accounts for Body but forgot the Tag byte.
//
//globelint:wiresym fields=frame role=size
func frameSize(f *frame) int { // want `Tag is not referenced in the size site`
	return 1 + len(f.Body)
}

// encodeFrame covers both fields: clean site.
//
//globelint:wiresym fields=frame role=encode
func encodeFrame(f *frame) []byte {
	out := []byte{f.Tag}
	return append(out, f.Body...)
}
