// Package wiresym proves wire-symmetry: every member of a declared symbol
// set (message kinds, record tags, wire-struct fields) is referenced at
// every site that must stay in lockstep with it — the encode switch, the
// decode switch, the exact-size accounting, the dispatch table, the name
// map. A kind wired into only part of that path ships half-wired: today a
// msg.Kind with no size entry is a runtime panic or frame corruption, a
// kind missing from a dispatch switch is a silently dropped frame.
//
// Symbol sets and sites are declared with //globelint:wiresym directives:
//
//	//globelint:wiresym group=<name> [exempt=A,B]
//	    on a const block: its constants are the group's members.
//	//globelint:wiresym group=<name> role=<label> [exempt=A,B]
//	    on a func or var declaration: the site must reference every group
//	    member.
//	//globelint:wiresym type=<[pkg.]Type> role=<label> [prefix=P] [exempt=A,B]
//	    membership is every constant of the named (possibly imported) type;
//	    prefix= restricts membership to constants whose name starts with P.
//	//globelint:wiresym fields=<[pkg.]Type> role=<label> [exempt=A,B]
//	    membership is every field of the named struct type.
//
// exempt= names members a site deliberately does not handle (e.g. the
// replication dispatch exempts the client-side reply kinds); the analyzer
// also flags stale exemptions — an exempt member the site in fact
// references — so the lists cannot rot into unreviewed suppressions.
//
// The lockstep invariant dates to PR 1's wire v2 exact-size Encode (one
// allocation sized by the byte-accounting walk this analyzer now guards)
// and has grown with every version bump since — v3 Sem, v4 digests, v5 the
// name-service kinds — each a fresh chance to ship a kind half-wired.
package wiresym

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/lint/lintkit"
)

// Analyzer is the wiresym pass.
var Analyzer = &lintkit.Analyzer{
	Name: "wiresym",
	Doc: "proves every declared wire symbol (message kind, record tag, frame field) is referenced " +
		"at every encode/decode/size/dispatch site marked with //globelint:wiresym",
	Run: run,
}

func run(pass *lintkit.Pass) error {
	groups := map[string][]types.Object{}

	// First pass: collect const-block groups.
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, d := range lintkit.DeclDirectives(gd.Doc) {
				if d.Verb != "wiresym" || d.Fields["group"] == "" || d.Fields["role"] != "" {
					continue
				}
				exempt := splitList(d.Fields["exempt"])
				var members []types.Object
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for _, name := range vs.Names {
						if name.Name == "_" || exempt[name.Name] {
							continue
						}
						if obj := pass.Info.Defs[name]; obj != nil {
							members = append(members, obj)
						}
					}
				}
				groups[d.Fields["group"]] = members
			}
		}
	}

	// Second pass: check every site.
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			var doc *ast.CommentGroup
			switch n := decl.(type) {
			case *ast.FuncDecl:
				doc = n.Doc
			case *ast.GenDecl:
				doc = n.Doc
			default:
				continue
			}
			for _, d := range lintkit.DeclDirectives(doc) {
				if d.Verb != "wiresym" || d.Fields["role"] == "" {
					continue
				}
				checkSite(pass, decl, d, groups)
			}
		}
	}
	return nil
}

// checkSite verifies one annotated declaration against its symbol set.
func checkSite(pass *lintkit.Pass, decl ast.Decl, d lintkit.Directive, groups map[string][]types.Object) {
	role := d.Fields["role"]
	exempt := splitList(d.Fields["exempt"])
	// Anchor findings at the declaration itself (its name for functions),
	// not the directive comment, so ignore directives and want comments
	// attach naturally.
	sitePos := decl.Pos()
	if fd, ok := decl.(*ast.FuncDecl); ok {
		sitePos = fd.Name.Pos()
	}

	var members []types.Object
	var setName string
	switch {
	case d.Fields["group"] != "":
		setName = "group " + d.Fields["group"]
		var ok bool
		members, ok = groups[d.Fields["group"]]
		if !ok {
			pass.Reportf(sitePos, "wiresym site references unknown group %q: annotate the member const block with //globelint:wiresym group=%s",
				d.Fields["group"], d.Fields["group"])
			return
		}
	case d.Fields["type"] != "":
		setName = "type " + d.Fields["type"]
		named := resolveNamed(pass, d.Fields["type"])
		if named == nil {
			pass.Reportf(sitePos, "wiresym: cannot resolve type %q in this package or its imports", d.Fields["type"])
			return
		}
		members = constantsOf(named)
	case d.Fields["fields"] != "":
		setName = "fields of " + d.Fields["fields"]
		named := resolveNamed(pass, d.Fields["fields"])
		if named == nil {
			pass.Reportf(sitePos, "wiresym: cannot resolve type %q in this package or its imports", d.Fields["fields"])
			return
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			pass.Reportf(sitePos, "wiresym: %q is not a struct type", d.Fields["fields"])
			return
		}
		for i := 0; i < st.NumFields(); i++ {
			members = append(members, st.Field(i))
		}
	default:
		pass.Reportf(sitePos, "wiresym site needs one of group=, type=, or fields=")
		return
	}

	if p := d.Fields["prefix"]; p != "" {
		var kept []types.Object
		for _, m := range members {
			if strings.HasPrefix(m.Name(), p) {
				kept = append(kept, m)
			}
		}
		members = kept
	}

	refs := referencedObjects(pass, decl)
	byName := map[string]bool{}
	for _, m := range members {
		byName[m.Name()] = true
	}

	var missing []string
	for _, m := range members {
		if exempt[m.Name()] {
			if refs[m] {
				pass.Reportf(sitePos, "wiresym: stale exemption %s — the %s site does reference it; remove it from exempt=", m.Name(), role)
			}
			continue
		}
		if !refs[m] {
			missing = append(missing, m.Name())
		}
	}
	sort.Strings(missing)
	for _, name := range missing {
		pass.Reportf(sitePos, "wiresym: %s is not referenced in the %s site (%s): a symbol wired into only part of the encode/decode/size/dispatch path ships half-wired — handle it here or exempt it with a reason",
			name, role, setName)
	}
	for name := range exempt {
		if !byName[name] {
			pass.Reportf(sitePos, "wiresym: exempt=%s names no member of %s (typo, or the symbol was removed)", name, setName)
		}
	}
}

// splitList parses a comma-separated directive value into a set.
func splitList(s string) map[string]bool {
	out := map[string]bool{}
	if s == "" {
		return out
	}
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out[part] = true
		}
	}
	return out
}

// resolveNamed resolves "Type" in the package scope or "pkg.Type" in an
// import's scope.
func resolveNamed(pass *lintkit.Pass, qual string) *types.Named {
	pkgName, typeName, qualified := strings.Cut(qual, ".")
	scope := pass.Pkg.Scope()
	name := qual
	if qualified {
		name = typeName
		scope = nil
		for _, im := range pass.Pkg.Imports() {
			if im.Name() == pkgName {
				scope = im.Scope()
				break
			}
		}
		if scope == nil {
			return nil
		}
	}
	obj := scope.Lookup(name)
	tn, ok := obj.(*types.TypeName)
	if !ok {
		return nil
	}
	named, _ := tn.Type().(*types.Named)
	return named
}

// constantsOf enumerates the constants of the named type declared in its
// defining package's scope (for imported types, the exported ones — which
// is exactly what other packages can be asked to handle).
func constantsOf(named *types.Named) []types.Object {
	pkg := named.Obj().Pkg()
	if pkg == nil {
		return nil
	}
	scope := pkg.Scope()
	var out []types.Object
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok {
			continue
		}
		if ct, ok := c.Type().(*types.Named); ok && ct.Obj() == named.Obj() {
			out = append(out, c)
		}
	}
	return out
}

// referencedObjects collects every object the declaration mentions: plain
// identifier uses and selected struct fields.
func referencedObjects(pass *lintkit.Pass, decl ast.Decl) map[types.Object]bool {
	refs := map[types.Object]bool{}
	ast.Inspect(decl, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			if obj := pass.Info.Uses[n]; obj != nil {
				refs[obj] = true
			}
		case *ast.SelectorExpr:
			if sel, ok := pass.Info.Selections[n]; ok {
				refs[sel.Obj()] = true
			}
		}
		return true
	})
	return refs
}
