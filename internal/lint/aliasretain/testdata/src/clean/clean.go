// Package clean is the aliasretain clean golden case: every sanctioned
// clone idiom, local-only use, and a reviewed suppression.
//
//globelint:aliased-input
package clean

import (
	"strings"

	"repro/internal/ids"
	"repro/internal/msg"
)

type replica struct {
	last  string
	buf   []byte
	byObj map[ids.ObjectID][]byte
	pages []string
}

func cloneInv(inv msg.Invocation) msg.Invocation {
	inv.Page = strings.Clone(inv.Page)
	inv.Args = append([]byte(nil), inv.Args...)
	return inv
}

func (r *replica) onMessage(m *msg.Message) {
	r.last = strings.Clone(m.Err)
	r.buf = append([]byte(nil), m.Payload...)
	r.buf = append(r.buf, m.Payload...)
	r.last = string(m.Payload)
	key := ids.ObjectID(strings.Clone(string(m.Object)))
	r.byObj[key] = append([]byte(nil), m.Payload...)
	inv := cloneInv(m.Inv)
	r.last = inv.Page
	for _, pg := range m.Pages {
		r.pages = append(r.pages, strings.Clone(pg))
	}
	n := len(m.Payload)
	local := m.Err // aliased locals are fine; only retention needs a clone
	if local != "" && n > 0 {
		return
	}
	// Parked-read pattern: retention reviewed as bounded by the exchange.
	//globelint:ignore aliasretain parked read released before the frame is reused
	r.last = m.Err
}
