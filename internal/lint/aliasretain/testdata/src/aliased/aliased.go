// Package aliased is the aliasretain want fixture: every retention shape
// the analyzer knows, against real msg types.
//
//globelint:aliased-input
package aliased

import (
	"repro/internal/ids"
	"repro/internal/msg"
)

var lastErr string

type replica struct {
	last   string
	buf    []byte
	byObj  map[ids.ObjectID][]byte
	pages  []string
	notify func() string
}

func cloneBytes(b []byte) []byte {
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

func (r *replica) onMessage(m *msg.Message) {
	r.last = m.Err // want `m.Err retained in long-lived state on r`
	lastErr = m.Err // want `m.Err retained in package-level state`
	r.buf = m.Payload // want `m.Payload retained in long-lived state on r`
	r.byObj[m.Object] = cloneBytes(m.Payload) // want `m.Object retained in long-lived state on r`
	r.pages = append(r.pages, m.Pages...) // want `m.Pages retained in long-lived state on r`
	p := m.Inv.Page
	r.last = p // want `p retained in long-lived state on r`
	k := ids.ObjectID(m.Err)
	r.byObj[k] = nil // want `k retained in long-lived state on r`
	s := m.Object
	r.notify = func() string { return string(s) } // want `closure captures s`
}

// pendingAck mirrors replication's parked group-commit acks: a composite
// literal carrying an aliased address into receiver state.
type pendingAck struct {
	to string
}

type acker struct {
	pending []pendingAck
}

func (a *acker) park(m *msg.Message) {
	a.pending = append(a.pending, pendingAck{to: m.From}) // want `composite literal retained in long-lived state on a`
}
