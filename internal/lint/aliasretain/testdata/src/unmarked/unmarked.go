// Package unmarked retains aliased fields freely: without the
// //globelint:aliased-input marker the analyzer does not apply (the package
// is assumed to receive messages already deep-decoded).
package unmarked

import "repro/internal/msg"

type sink struct {
	last string
}

func (s *sink) onMessage(m *msg.Message) {
	s.last = m.Err
}
