// Package aliasretain enforces the zero-copy decode contract documented in
// internal/msg/codec.go: in alias mode the decoder's string and []byte
// fields point directly into the transport's receive frame, which is only
// immutable until the connection reuses or releases the buffer. Handler
// code may therefore look at aliased fields freely, but any value that
// OUTLIVES the handler call — a struct field on the replica, a map entry,
// a package-level variable, a captured closure — must be cloned first
// (strings.Clone, a clone* helper such as replication's cloneInv, or a
// copying conversion like []byte(s)).
//
// The analyzer runs only in packages marked //globelint:aliased-input.
// Taint starts at msg.Message / msg.Invocation / msg.BatchUpdate
// parameters, propagates forward through local assignments, field
// selections, indexing, range statements, and string→named-string
// conversions (ids.ObjectID(s) still aliases s), and is cleansed by
// strings.Clone, any clone*/Clone* call, cross-kind string/[]byte
// conversions (they copy), and string concatenation (it allocates). A
// retention site — assignment, map/slice write, append, or closure capture
// rooted at the method receiver or a package-level variable — of a
// still-tainted value is a finding. Deliberate bounded-lifetime retention
// (e.g. a parked read released within the same exchange) is annotated
// //globelint:ignore aliasretain <reason>.
//
// For string-typed sinks the analyzer offers a mechanical fix: wrap the
// retained expression in strings.Clone and add the import.
//
// The invariant dates to PR 1, which introduced the zero-copy DecodeAlias
// path, and PR 3, which made decoded string fields alias transport frames
// (unsafe.String over tcpnet handoff chunks) and established the
// clone-at-retention-site discipline this analyzer now enforces.
package aliasretain

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint/lintkit"
)

// msgPath is the package whose decoded types carry aliased frame memory.
const msgPath = "repro/internal/msg"

// Analyzer is the aliasretain pass.
var Analyzer = &lintkit.Analyzer{
	Name: "aliasretain",
	Doc: "flags aliased decode output (msg.Message fields in //globelint:aliased-input packages) escaping " +
		"into long-lived state without a clone; offers strings.Clone fixes for string sinks",
	Run: run,
}

func run(pass *lintkit.Pass) error {
	if !pass.HasPackageDirective("aliased-input") {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkFunc(pass, f, fd)
			}
		}
	}
	return nil
}

// checker carries one function's forward taint state.
type checker struct {
	pass    *lintkit.Pass
	file    *ast.File
	recv    types.Object
	tainted map[types.Object]bool
}

func checkFunc(pass *lintkit.Pass, file *ast.File, fd *ast.FuncDecl) {
	c := &checker{pass: pass, file: file, tainted: map[types.Object]bool{}}
	if fd.Recv != nil && len(fd.Recv.List) > 0 && len(fd.Recv.List[0].Names) > 0 {
		c.recv = pass.Info.Defs[fd.Recv.List[0].Names[0]]
	}
	for _, field := range fd.Type.Params.List {
		t := pass.Info.Types[field.Type].Type
		if t != nil && isMsgType(t) {
			for _, name := range field.Names {
				if obj := pass.Info.Defs[name]; obj != nil {
					c.tainted[obj] = true
				}
			}
		}
	}
	c.walk(fd.Body)
}

// walk processes statements in source order so taint assignments precede
// the uses they feed.
func (c *checker) walk(n ast.Node) {
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.AssignStmt:
			c.assign(m)
		case *ast.RangeStmt:
			c.rangeStmt(m)
		case *ast.FuncLit:
			c.closure(m)
			return false // captures are the closure's finding; don't re-walk
		}
		return true
	})
}

// isMsgType reports whether t is (a pointer to) one of the aliased decode
// carriers.
func isMsgType(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != msgPath {
		return false
	}
	switch named.Obj().Name() {
	case "Message", "Invocation", "BatchUpdate":
		return true
	}
	return false
}

// aliasable reports whether values of type t can carry frame aliases worth
// tracking: string-underlying, []byte, containers of those, or the msg
// carrier structs.
func aliasable(t types.Type) bool {
	if t == nil {
		return false
	}
	if isMsgType(t) {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Kind() == types.String
	case *types.Slice:
		return aliasable(u.Elem()) || isByteSlice(t)
	case *types.Map:
		return aliasable(u.Key()) || aliasable(u.Elem())
	case *types.Pointer:
		return aliasable(u.Elem())
	}
	return false
}

func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// taintedExpr reports whether e may alias decoder frame memory.
func (c *checker) taintedExpr(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		return c.tainted[c.pass.Info.Uses[e]]
	case *ast.ParenExpr:
		return c.taintedExpr(e.X)
	case *ast.StarExpr:
		return c.taintedExpr(e.X)
	case *ast.UnaryExpr:
		return c.taintedExpr(e.X)
	case *ast.SelectorExpr:
		t := c.pass.Info.Types[e].Type
		return aliasable(t) && c.taintedExpr(e.X)
	case *ast.IndexExpr:
		return c.taintedExpr(e.X)
	case *ast.SliceExpr:
		return c.taintedExpr(e.X) // sub-slices share the backing array
	case *ast.CompositeLit:
		for _, elt := range e.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				if c.taintedExpr(kv.Value) || c.taintedExpr(kv.Key) {
					return true
				}
			} else if c.taintedExpr(elt) {
				return true
			}
		}
		return false
	case *ast.BinaryExpr:
		return false // concatenation and comparisons allocate or produce bools
	case *ast.CallExpr:
		return c.taintedCall(e)
	}
	return false
}

// taintedCall handles conversions (which may preserve aliasing) and calls
// (whose results are fresh unless they are identity-ish).
func (c *checker) taintedCall(call *ast.CallExpr) bool {
	if len(call.Args) != 1 {
		return false
	}
	// A conversion T(x): same-kind string conversions (ids.ObjectID(s))
	// reuse x's bytes; string<->[]byte conversions copy.
	if tv, ok := c.pass.Info.Types[call.Fun]; ok && tv.IsType() {
		to := tv.Type
		from := c.pass.Info.Types[call.Args[0]].Type
		if from == nil {
			return false
		}
		toStr := isString(to)
		fromStr := isString(from)
		if toStr != fromStr {
			return false // string<->[]byte conversion copies
		}
		return c.taintedExpr(call.Args[0])
	}
	return false // call results (incl. strings.Clone, clone* helpers) are fresh
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.String
}

// rootObj walks an lvalue chain (selectors, indexes, derefs) to its base
// identifier's object.
func (c *checker) rootObj(e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			if obj := c.pass.Info.Uses[x]; obj != nil {
				return obj
			}
			return c.pass.Info.Defs[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// longLived reports whether an lvalue rooted at obj outlives the handler:
// the method receiver or a package-level variable.
func (c *checker) longLived(obj types.Object) bool {
	if obj == nil {
		return false
	}
	if c.recv != nil && obj == c.recv {
		return true
	}
	v, ok := obj.(*types.Var)
	return ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

func (c *checker) assign(as *ast.AssignStmt) {
	// append special form: x = append(x, elems...)
	if len(as.Lhs) == 1 && len(as.Rhs) == 1 {
		if call, ok := as.Rhs[0].(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" {
				if _, isBuiltin := c.pass.Info.Uses[id].(*types.Builtin); isBuiltin || c.pass.Info.Uses[id] == nil {
					c.appendAssign(as, call)
					return
				}
			}
		}
	}
	for i, lhs := range as.Lhs {
		var rhs ast.Expr
		if len(as.Rhs) == len(as.Lhs) {
			rhs = as.Rhs[i]
		} else if len(as.Rhs) == 1 {
			rhs = as.Rhs[0] // multi-value call: results are fresh
		}
		if rhs == nil {
			continue
		}
		if id, ok := lhs.(*ast.Ident); ok {
			// Local (re)definition: propagate, don't report.
			obj := c.pass.Info.Defs[id]
			if obj == nil {
				obj = c.pass.Info.Uses[id]
			}
			if obj != nil && !c.longLived(obj) {
				if len(as.Rhs) == len(as.Lhs) {
					c.tainted[obj] = c.taintedExpr(rhs)
				}
				continue
			}
		}
		root := c.rootObj(lhs)
		if !c.longLived(root) {
			continue
		}
		if len(as.Rhs) == len(as.Lhs) && c.taintedExpr(rhs) {
			c.report(rhs, root)
		}
		// Tainted map keys are retained just like values.
		if ix, ok := lhs.(*ast.IndexExpr); ok && c.taintedExpr(ix.Index) {
			c.report(ix.Index, root)
		}
	}
}

// appendAssign handles x = append(x, ...): taints locals, reports
// long-lived destinations whose new elements are tainted. Appending into a
// []byte copies the bytes themselves, so byte appends cleanse — the
// canonical append([]byte(nil), m.Payload...) clone stays legal.
func (c *checker) appendAssign(as *ast.AssignStmt, call *ast.CallExpr) {
	lhs := as.Lhs[0]
	byteAppend := isByteSlice(c.pass.Info.Types[call].Type)
	if id, ok := lhs.(*ast.Ident); ok {
		obj := c.pass.Info.Defs[id]
		if obj == nil {
			obj = c.pass.Info.Uses[id]
		}
		if obj != nil && !c.longLived(obj) {
			if byteAppend {
				// append may still return the base's backing array.
				c.tainted[obj] = c.taintedExpr(call.Args[0])
				return
			}
			for _, arg := range call.Args {
				if c.taintedExpr(arg) {
					c.tainted[obj] = true
				}
			}
			return
		}
	}
	root := c.rootObj(lhs)
	if !c.longLived(root) {
		return
	}
	if byteAppend {
		if c.taintedExpr(call.Args[0]) {
			c.report(call.Args[0], root)
		}
		return
	}
	for _, arg := range call.Args[1:] {
		if c.taintedExpr(arg) {
			c.report(arg, root)
		}
	}
}

func (c *checker) rangeStmt(r *ast.RangeStmt) {
	if !c.taintedExpr(r.X) {
		return
	}
	for _, v := range []ast.Expr{r.Key, r.Value} {
		id, ok := v.(*ast.Ident)
		if !ok {
			continue
		}
		obj := c.pass.Info.Defs[id]
		if obj == nil {
			obj = c.pass.Info.Uses[id]
		}
		if obj != nil && aliasable(obj.Type()) {
			c.tainted[obj] = true
		}
	}
}

// closure flags tainted captures: a FuncLit that references an aliased
// value outlives the statement it appears in often enough (timers, parked
// work, handler registration) that any capture is treated as retention.
func (c *checker) closure(fl *ast.FuncLit) {
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := c.pass.Info.Uses[id]
		if obj != nil && c.tainted[obj] {
			c.pass.Reportf(id.Pos(), "aliasretain: closure captures %s, which aliases the decoder's receive frame; the closure may run after the frame is reused — clone before capturing", id.Name)
		}
		return true
	})
}

// report emits the retention finding, with a strings.Clone fix when the
// retained expression is string-typed.
func (c *checker) report(e ast.Expr, root types.Object) {
	where := "package-level state"
	if c.recv != nil && root == c.recv {
		where = fmt.Sprintf("long-lived state on %s", root.Name())
	}
	d := lintkit.Diagnostic{
		Analyzer: "aliasretain",
		Pos:      e.Pos(),
		Message: fmt.Sprintf("aliasretain: %s retained in %s aliases the decoder's receive frame, which the transport reuses after the handler returns — clone it (strings.Clone / cloneInv / []byte copy) at the retention site",
			exprString(e), where),
	}
	if t := c.pass.Info.Types[e].Type; t != nil && isString(t) {
		edits := []lintkit.TextEdit{
			{Pos: e.Pos(), End: e.Pos(), NewText: "strings.Clone("},
			{Pos: e.End(), End: e.End(), NewText: ")"},
		}
		if imp := c.importEdit(); imp != nil {
			edits = append(edits, *imp)
		}
		d.Fixes = []lintkit.SuggestedFix{{
			Message: fmt.Sprintf("wrap %s in strings.Clone", exprString(e)),
			Edits:   edits,
		}}
	}
	c.pass.Report(d)
}

// importEdit returns an edit adding `"strings"` to the file's imports, or
// nil if already imported.
func (c *checker) importEdit() *lintkit.TextEdit {
	var last *ast.ImportSpec
	for _, imp := range c.file.Imports {
		if strings.Trim(imp.Path.Value, `"`) == "strings" {
			return nil
		}
		last = imp
	}
	if last == nil {
		return nil // no import block to extend; leave the import to gofmt
	}
	pos := last.End()
	return &lintkit.TextEdit{Pos: pos, End: pos, NewText: "\n\t\"strings\""}
}

func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	case *ast.CallExpr:
		return exprString(e.Fun) + "(...)"
	case *ast.CompositeLit:
		return "composite literal"
	}
	return "value"
}
