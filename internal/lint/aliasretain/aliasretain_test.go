package aliasretain

import (
	"strings"
	"testing"

	"repro/internal/lint/lintkit"
)

func TestRetentionIsFlagged(t *testing.T) {
	lintkit.RunGolden(t, Analyzer, "testdata/src/aliased")
}

func TestCloneIdiomsAreClean(t *testing.T) {
	lintkit.RunGolden(t, Analyzer, "testdata/src/clean")
}

func TestUnmarkedPackageIsExempt(t *testing.T) {
	lintkit.RunGolden(t, Analyzer, "testdata/src/unmarked")
}

func TestFixWrapsStringSinksInClone(t *testing.T) {
	got := lintkit.GoldenFixes(t, Analyzer, "testdata/src/aliased", "aliased.go")
	for _, want := range []string{
		`r.last = strings.Clone(m.Err)`,
		`lastErr = strings.Clone(m.Err)`,
		"\t\"strings\"",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("fixed source missing %q\n%s", want, got)
		}
	}
	// Non-string sinks ([]byte, closure captures) have no mechanical fix.
	if strings.Contains(got, "strings.Clone(m.Payload)") {
		t.Errorf("fix must not wrap []byte sinks in strings.Clone:\n%s", got)
	}
}
