package looponly

import (
	"testing"

	"repro/internal/lint/lintkit"
)

func TestLoopViolationsAreFlagged(t *testing.T) {
	lintkit.RunGolden(t, Analyzer, "testdata/src/loop")
}

func TestUnmarkedAndNonBlockingAreClean(t *testing.T) {
	lintkit.RunGolden(t, Analyzer, "testdata/src/clean")
}
