// Package looponly enforces the single-event-loop discipline the store
// documents at internal/replication/replication.go: every replication
// handler runs on the owning store's one event goroutine, and all I/O goes
// through the injected Env. Code marked //globelint:looponly (a type marks
// all of its methods; a function marks itself) therefore must not block the
// loop — no mutex acquisition, no bare channel sends/receives outside a
// select with a default clause, no time.Sleep, no direct os or net I/O —
// and must not hand loop-owned state to goroutines it spawns, because
// loop-owned structures have no internal locking to survive concurrent
// access.
//
// Loop context propagates through the intra-package static call graph:
// a same-package function called from loop context (outside a go statement)
// is itself loop context. A method that is deliberately thread-safe opts
// out with //globelint:looponly ignore — the marker is the reviewed claim
// that it synchronises on its own.
//
// The actor model itself is the replication layer's seed architecture; the
// invariant became load-bearing for liveness as PR 4's digest heartbeats,
// PR 6's recovery path, and PR 7's re-parent watchdog multiplied the timer
// callbacks and handlers sharing the one loop goroutine — a single blocking
// call now stalls acks, heartbeats, and failover detection at once.
package looponly

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint/lintkit"
)

// Analyzer is the looponly pass.
var Analyzer = &lintkit.Analyzer{
	Name: "looponly",
	Doc: "forbids blocking calls (mutexes, bare channel ops, time.Sleep, direct os/net I/O) in " +
		"//globelint:looponly event-loop code, and loop-owned state escaping into spawned goroutines",
	Run: run,
}

func run(pass *lintkit.Pass) error {
	marked := markedTypes(pass)

	// Map function objects to their declarations for call-graph walking.
	declOf := map[*types.Func]*ast.FuncDecl{}
	ignored := map[*ast.FuncDecl]bool{}
	var loopCtx []*ast.FuncDecl
	inCtx := map[*ast.FuncDecl]bool{}

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if obj, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
				declOf[obj] = fd
			}
			var isRoot bool
			for _, d := range lintkit.DeclDirectives(fd.Doc) {
				if d.Verb != "looponly" {
					continue
				}
				if len(d.Args) > 0 && d.Args[0] == "ignore" {
					ignored[fd] = true
				} else {
					isRoot = true
				}
			}
			if !ignored[fd] && (isRoot || receiverMarked(pass, fd, marked)) {
				loopCtx = append(loopCtx, fd)
				inCtx[fd] = true
			}
		}
	}

	// Fixpoint: propagate loop context through same-package calls made
	// outside go statements.
	for i := 0; i < len(loopCtx); i++ {
		fd := loopCtx[i]
		if fd.Body == nil {
			continue
		}
		walkSkippingGo(fd.Body, func(n ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			obj := calleeFunc(pass, call)
			if obj == nil {
				return
			}
			if callee, ok := declOf[obj]; ok && !inCtx[callee] && !ignored[callee] {
				inCtx[callee] = true
				loopCtx = append(loopCtx, callee)
			}
		})
	}

	for _, fd := range loopCtx {
		checkLoopFunc(pass, fd, marked)
	}
	return nil
}

// markedTypes collects the named types annotated //globelint:looponly.
func markedTypes(pass *lintkit.Pass) map[*types.TypeName]bool {
	out := map[*types.TypeName]bool{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			hasDecl := directiveIn(lintkit.DeclDirectives(gd.Doc))
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if hasDecl || directiveIn(lintkit.DeclDirectives(ts.Doc)) {
					if tn, ok := pass.Info.Defs[ts.Name].(*types.TypeName); ok {
						out[tn] = true
					}
				}
			}
		}
	}
	return out
}

func directiveIn(ds []lintkit.Directive) bool {
	for _, d := range ds {
		if d.Verb == "looponly" && (len(d.Args) == 0 || d.Args[0] != "ignore") {
			return true
		}
	}
	return false
}

// receiverMarked reports whether fd is a method of a marked type.
func receiverMarked(pass *lintkit.Pass, fd *ast.FuncDecl, marked map[*types.TypeName]bool) bool {
	tn := receiverTypeName(pass, fd)
	return tn != nil && marked[tn]
}

func receiverTypeName(pass *lintkit.Pass, fd *ast.FuncDecl) *types.TypeName {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return nil
	}
	t := pass.Info.Types[fd.Recv.List[0].Type].Type
	if t == nil {
		return nil
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj()
	}
	return nil
}

// calleeFunc resolves a call's target function object, if static.
func calleeFunc(pass *lintkit.Pass, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if f, ok := pass.Info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := pass.Info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// walkSkippingGo walks n, not descending into go-statement call expressions
// (their bodies run off the loop).
func walkSkippingGo(n ast.Node, visit func(ast.Node)) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.GoStmt); ok {
			return false
		}
		if m != nil {
			visit(m)
		}
		return true
	})
}

// checkLoopFunc flags blocking operations and goroutine state leaks in one
// loop-context function.
func checkLoopFunc(pass *lintkit.Pass, fd *ast.FuncDecl, marked map[*types.TypeName]bool) {
	if fd.Body == nil {
		return
	}
	var recvObj types.Object
	if fd.Recv != nil && len(fd.Recv.List) > 0 && len(fd.Recv.List[0].Names) > 0 {
		recvObj = pass.Info.Defs[fd.Recv.List[0].Names[0]]
	}

	// nonBlocking marks channel-op nodes inside a select that has a default
	// clause: a polling select is the loop's legitimate tool.
	nonBlocking := map[ast.Node]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		hasDefault := false
		for _, c := range sel.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if hasDefault {
			for _, c := range sel.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
					nonBlocking[cc.Comm] = true
				}
			}
		}
		return true
	})

	walkSkippingGo(fd.Body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.SendStmt:
			if !coveredByNonBlocking(n, nonBlocking) {
				pass.Reportf(n.Pos(), "looponly: bare channel send on the event loop blocks every handler behind it; hand the value off through a non-blocking select or a posted callback")
			}
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" && !coveredByNonBlocking(n, nonBlocking) {
				pass.Reportf(n.Pos(), "looponly: bare channel receive on the event loop blocks every handler behind it; use a non-blocking select or move the wait off-loop")
			}
		case *ast.RangeStmt:
			if t := pass.Info.Types[n.X].Type; t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					pass.Reportf(n.Pos(), "looponly: ranging over a channel parks the event loop until the channel closes")
				}
			}
		case *ast.CallExpr:
			checkBlockingCall(pass, n)
		case *ast.GoStmt:
			// walkSkippingGo never hands us this; handled below.
		}
	})

	// Goroutines spawned from loop context: loop-owned state must not leak
	// into them (loop structures have no locks by design).
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		ast.Inspect(g.Call, func(m ast.Node) bool {
			id, ok := m.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.Info.Uses[id]
			if obj == nil {
				return true
			}
			if recvObj != nil && obj == recvObj {
				pass.Reportf(id.Pos(), "looponly: loop-owned state (%s) accessed from a goroutine spawned off the event loop; loop structures have no internal locking — post the work back via Env.AfterFunc or copy what the goroutine needs", id.Name)
			}
			return true
		})
		return false
	})
}

func coveredByNonBlocking(n ast.Node, nonBlocking map[ast.Node]bool) bool {
	for covered := range nonBlocking {
		if covered.Pos() <= n.Pos() && n.End() <= covered.End() {
			return true
		}
	}
	return false
}

// checkBlockingCall flags known-blocking callees: sync primitives,
// time.Sleep, and direct os/net I/O.
func checkBlockingCall(pass *lintkit.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	obj, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil {
		return
	}
	path := obj.Pkg().Path()
	name := obj.Name()
	recv := ""
	if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			recv = named.Obj().Name()
		}
	}
	switch {
	case path == "sync" && (name == "Lock" || name == "RLock" || name == "Wait"):
		pass.Reportf(call.Pos(), "looponly: sync.%s.%s on the event loop — handlers are single-threaded by contract, so a contended %s deadlocks or stalls every replica on the store; loop-owned state needs no lock, cross-thread state belongs behind a posted callback", recv, name, name)
	case path == "time" && name == "Sleep":
		pass.Reportf(call.Pos(), "looponly: time.Sleep parks the event loop; schedule continuation through Env.AfterFunc (it re-posts onto the loop)")
	case path == "os" || recv == "File" && strings.HasPrefix(path, "os"):
		pass.Reportf(call.Pos(), "looponly: direct os I/O (os.%s) on the event loop; route disk work through the WAL/Env seams so policies and tests control it", name)
	case path == "net" || strings.HasPrefix(path, "net/"):
		pass.Reportf(call.Pos(), "looponly: direct network I/O (%s.%s) on the event loop; all transport goes through the injected Env/Endpoint", path, name)
	}
}
