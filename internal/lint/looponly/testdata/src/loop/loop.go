// Package loop is the looponly want fixture: a marked event-loop type
// committing every class of violation, plus the reviewed opt-outs.
package loop

import (
	"os"
	"sync"
	"time"
)

//globelint:looponly
type engine struct {
	mu      sync.Mutex
	events  chan int
	pending []int
	n       int
}

func (e *engine) handle(v int) {
	e.mu.Lock() // want `sync.Mutex.Lock on the event loop`
	e.pending = append(e.pending, v)
	e.mu.Unlock()
	flushDisk()
}

// flushDisk is loop context by propagation: handle calls it.
func flushDisk() {
	_ = os.WriteFile("x", nil, 0o644) // want `direct os I/O \(os.WriteFile\) on the event loop`
}

func (e *engine) waitNext() int {
	time.Sleep(time.Millisecond) // want `time.Sleep parks the event loop`
	v := <-e.events              // want `bare channel receive on the event loop`
	e.events <- v                // want `bare channel send on the event loop`
	return v
}

func (e *engine) rangeAll() {
	for v := range e.events { // want `ranging over a channel parks the event loop`
		e.pending = append(e.pending, v)
	}
}

// drain polls with a default clause — the loop's legitimate tool.
func (e *engine) drain() {
	for {
		select {
		case v := <-e.events:
			e.pending = append(e.pending, v)
		default:
			return
		}
	}
}

func (e *engine) spawn() {
	go func() {
		e.n++ // want `loop-owned state \(e\) accessed from a goroutine`
	}()
}

// spawnCopy hands the goroutine a copy, never the receiver.
func (e *engine) spawnCopy() {
	v := e.n
	go report(v)
}

// report runs only inside a go statement, so it never becomes loop context.
func report(v int) {
	time.Sleep(time.Duration(v))
}

// snapshot is a reviewed thread-safe accessor: callable from any goroutine,
// synchronises on its own.
//
//globelint:looponly ignore
func (e *engine) snapshot() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.n
}
