// Package clean is the looponly clean golden case: an unmarked type may use
// whatever synchronisation it wants, and a marked function that stays on
// the loop's non-blocking toolkit passes.
package clean

import (
	"sync"
	"time"
)

// worker is NOT marked looponly — ordinary concurrent code.
type worker struct {
	mu   sync.Mutex
	jobs chan int
	n    int
}

func (w *worker) run() {
	for j := range w.jobs {
		w.mu.Lock()
		w.n += j
		w.mu.Unlock()
		time.Sleep(time.Millisecond)
	}
}

//globelint:looponly
func dispatch(out chan<- int, v int) {
	select {
	case out <- v:
	default:
	}
}
