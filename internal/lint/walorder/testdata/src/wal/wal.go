// Package wal is a walorder golden fixture: the durable write-admission
// shape, in the correct order and inverted.
package wal

type log struct{}

func (l *log) AppendUpdate(payload []byte) error    { return nil }
func (l *log) AppendAdmit(c uint32, s uint64) error { return nil }

type object struct {
	wal *log
}

func (o *object) submitLogged(payload []byte) {
	_ = o.wal.AppendUpdate(payload)
}

func (o *object) walAppendAdmit(c uint32, s uint64) {
	_ = o.wal.AppendAdmit(c, s)
}

// onWriteCorrect is the invariant order: update record first, then the
// admission that covers it.
func (o *object) onWriteCorrect(c uint32, s uint64, payload []byte) {
	o.submitLogged(payload)
	o.walAppendAdmit(c, s)
}

// onWriteInverted persists the admission before the update content.
func (o *object) onWriteInverted(c uint32, s uint64, payload []byte) {
	o.walAppendAdmit(c, s) // want `admission record appended before the stamped update record`
	o.submitLogged(payload)
}

// onWriteRawInverted inverts the raw log calls too.
func (o *object) onWriteRawInverted(c uint32, s uint64, payload []byte) {
	_ = o.wal.AppendAdmit(c, s) // want `admission record appended before the stamped update record`
	_ = o.wal.AppendUpdate(payload)
}
