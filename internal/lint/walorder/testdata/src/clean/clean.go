// Package clean is the walorder clean golden case: correct ordering, plus
// the single-sided helpers that are out of scope by design.
package clean

type log struct{}

func (l *log) AppendUpdate(payload []byte) error    { return nil }
func (l *log) AppendAdmit(c uint32, s uint64) error { return nil }

type object struct {
	wal *log
}

// admitOnly mirrors replication.walAppendAdmit: the callee side of the
// pairing, ordered by its callers.
func (o *object) admitOnly(c uint32, s uint64) {
	_ = o.wal.AppendAdmit(c, s)
}

func (o *object) onWrite(c uint32, s uint64, payload []byte) {
	_ = o.wal.AppendUpdate(payload)
	o.admitOnly(c, s)
}
