// Package walorder enforces the WAL crash-ordering invariant PR 6's doc.go
// spells out: a write's stamped update record must reach the log BEFORE the
// admission record that covers it. A crash between the two then leaves
// update-without-admission — harmless, because recovery re-derives the
// watermark from update records — whereas the reverse order could persist
// an admission whose update content was lost, making the restarted store
// ack a client's retry as a replay and permanently stall that client's
// stream under the ordered models.
//
// The analyzer checks every function that both logs an admission
// (walAppendAdmit / AppendAdmit) and logs or submits the update
// (submitLogged / AppendUpdate): the admission call must come after the
// update call in statement order. Functions that only do one of the two are
// out of scope — the pairing happens in one handler today, and any new
// pairing site picks up the check automatically by using the same names.
package walorder

import (
	"go/ast"
	"go/token"

	"repro/internal/lint/lintkit"
)

// admitNames are callees that append an admission record.
var admitNames = map[string]bool{"walAppendAdmit": true, "AppendAdmit": true}

// updateNames are callees that append (or submit-and-append) the stamped
// update record.
var updateNames = map[string]bool{"submitLogged": true, "AppendUpdate": true}

// Analyzer is the walorder pass.
var Analyzer = &lintkit.Analyzer{
	Name: "walorder",
	Doc: "proves WAL admission records (walAppendAdmit/AppendAdmit) are appended after the stamped " +
		"update record (submitLogged/AppendUpdate) they admit — the crash-ordering invariant of the durable store",
	Run: run,
}

func run(pass *lintkit.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

// callee returns the bare name of a call's target (method or function).
func callee(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

func checkFunc(pass *lintkit.Pass, fd *ast.FuncDecl) {
	var admits []token.Pos
	firstUpdate := token.NoPos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := callee(call)
		switch {
		case admitNames[name]:
			admits = append(admits, call.Pos())
		case updateNames[name]:
			if firstUpdate == token.NoPos || call.Pos() < firstUpdate {
				firstUpdate = call.Pos()
			}
		}
		return true
	})
	if firstUpdate == token.NoPos {
		return // no update append here; admission-only helpers are the callee side
	}
	for _, pos := range admits {
		if pos < firstUpdate {
			pass.Reportf(pos,
				"walorder: admission record appended before the stamped update record it admits — a crash between the two persists an admission whose content is lost, and the restarted store acks the client's retry as a replay (stalling its stream); append the update first")
		}
	}
}
