package walorder

import (
	"testing"

	"repro/internal/lint/lintkit"
)

func TestInvertedAppendOrderIsFlagged(t *testing.T) {
	lintkit.RunGolden(t, Analyzer, "testdata/src/wal")
}

func TestCorrectOrderIsClean(t *testing.T) {
	lintkit.RunGolden(t, Analyzer, "testdata/src/clean")
}
