// Package det is a clockdet golden fixture: a package that declares itself
// deterministic and then violates the invariant in every forbidden way,
// plus the allowed patterns that must stay clean.
//
//globelint:deterministic
package det

import (
	"math/rand"
	"time"

	"repro/internal/clock"
)

// engine has an injected clock seam, so clockdet can propose the
// mechanical fix for its methods.
type engine struct {
	clk clock.Clock
	at  time.Time
}

func (e *engine) tick() {
	e.at = time.Now()           // want `time\.Now in deterministic package`
	_ = time.After(time.Second) // want `time\.After in deterministic package`
	//globelint:ignore clockdet fixture proves reviewed suppressions survive
	time.Sleep(time.Millisecond)
}

func naked() {
	_ = time.Since(time.Time{})      // want `time\.Since in deterministic package`
	_ = rand.Intn(4)                 // want `rand\.Intn draws from the global source`
	rand.Shuffle(1, func(i, j int) { // want `rand\.Shuffle draws from the global source`
	})
}

// seeded is the allowed pattern: explicit source, replayable.
func seeded() int {
	rng := rand.New(rand.NewSource(42))
	return rng.Intn(4)
}

// viaClock is the fixed pattern: the injected seam.
func (e *engine) viaClock() time.Time {
	return e.clk.Now()
}
