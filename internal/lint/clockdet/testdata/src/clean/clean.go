// Package clean is the clockdet clean golden case: the same wall-clock
// calls are fine in a package that never claims determinism (harnesses,
// chaos schedules, daemons).
package clean

import (
	"math/rand"
	"time"
)

func wallClockIsFineHere() time.Time {
	time.Sleep(time.Millisecond)
	_ = rand.Intn(4)
	return time.Now()
}
