// Package clockdet enforces the determinism invariant introduced by the
// simulation substrate (PR 2) and made load-bearing by the chaos and crash
// harnesses (PRs 4 and 6): packages marked //globelint:deterministic — the
// replication protocol, the stores, the ordering engines, the simulated
// network, the naming core, the WAL — must take time from the injected
// repro/internal/clock seam and randomness from an explicitly seeded
// source, never from the process wall clock or the global rand source.
// A single time.Now on a protocol path silently detaches the fake-clock
// tests and the seeded fault schedules from the code they claim to cover.
//
// Forbidden in marked packages: time.Now, time.Sleep, time.After,
// time.Tick, time.AfterFunc, time.NewTimer, time.NewTicker, time.Since,
// time.Until, and every math/rand (and math/rand/v2) top-level function
// that draws from the global source (rand.Intn, rand.Float64, rand.Perm,
// rand.Shuffle, ...). Explicit sources remain allowed: rand.New,
// rand.NewSource, and methods on a *rand.Rand value.
//
// The fix (globelint -fix) is mechanical where an injection point already
// exists: inside a method whose receiver struct carries a
// repro/internal/clock.Clock field, time.Now()/time.After(d)/time.AfterFunc
// rewrite to that field's method.
package clockdet

import (
	"fmt"
	"go/ast"
	"go/types"

	"repro/internal/lint/lintkit"
)

// forbiddenTime is the wall-clock surface of package time.
var forbiddenTime = map[string]bool{
	"Now": true, "Sleep": true, "After": true, "Tick": true,
	"AfterFunc": true, "NewTimer": true, "NewTicker": true,
	"Since": true, "Until": true,
}

// forbiddenRand is the global-source surface of math/rand and math/rand/v2.
var forbiddenRand = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Int32": true, "Int32N": true, "Int64": true, "Int64N": true,
	"IntN": true, "UintN": true, "Uint": true, "N": true,
	"Float32": true, "Float64": true, "ExpFloat64": true,
	"NormFloat64": true, "Perm": true, "Shuffle": true, "Seed": true,
	"Read": true,
}

// clockFixable maps forbidden time functions to the clock.Clock method that
// replaces them when the receiver has a Clock field.
var clockFixable = map[string]string{
	"Now": "Now", "After": "After", "AfterFunc": "AfterFunc",
}

// Analyzer is the clockdet pass.
var Analyzer = &lintkit.Analyzer{
	Name: "clockdet",
	Doc: "forbids wall-clock (time.Now/Sleep/After/...) and global-source math/rand calls " +
		"in //globelint:deterministic packages; inject repro/internal/clock instead",
	Run: run,
}

func run(pass *lintkit.Pass) error {
	if !pass.HasPackageDirective("deterministic") {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, _ := decl.(*ast.FuncDecl)
			ast.Inspect(decl, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					checkCall(pass, call, fd)
				}
				return true
			})
		}
	}
	return nil
}

// checkCall reports a call whose callee is a forbidden package-level
// function of time or math/rand.
func checkCall(pass *lintkit.Pass, call *ast.CallExpr, enclosing *ast.FuncDecl) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	pkgIdent, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	pkgName, ok := pass.Info.Uses[pkgIdent].(*types.PkgName)
	if !ok {
		return
	}
	path := pkgName.Imported().Path()
	name := sel.Sel.Name
	switch {
	case path == "time" && forbiddenTime[name]:
		d := lintkit.Diagnostic{
			Pos: call.Pos(),
			Message: fmt.Sprintf("time.%s in deterministic package %s: take time from the injected clock.Clock seam "+
				"(Env.Now/AfterFunc or a clock field), or the fake-clock tests and seeded chaos schedules no longer cover this path",
				name, pass.Pkg.Path()),
		}
		if method, ok := clockFixable[name]; ok {
			if expr := clockFieldExpr(pass, enclosing); expr != "" {
				d.Fixes = append(d.Fixes, lintkit.SuggestedFix{
					Message: fmt.Sprintf("call %s.%s instead of time.%s", expr, method, name),
					Edits: []lintkit.TextEdit{{
						Pos: sel.Pos(), End: sel.End(), NewText: expr + "." + method,
					}},
				})
			}
		}
		pass.Report(d)
	case (path == "math/rand" || path == "math/rand/v2") && forbiddenRand[name]:
		pass.Reportf(call.Pos(),
			"rand.%s draws from the global source in deterministic package %s: use an explicitly seeded rand.New(rand.NewSource(...)) so fault schedules replay",
			name, pass.Pkg.Path())
	}
}

// clockFieldExpr returns "<recv>.<field>" if the enclosing method's receiver
// struct has a field whose type is repro/internal/clock.Clock, or "" when no
// mechanical rewrite target exists.
func clockFieldExpr(pass *lintkit.Pass, fd *ast.FuncDecl) string {
	if fd == nil || fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return ""
	}
	recvName := fd.Recv.List[0].Names[0].Name
	if recvName == "_" {
		return ""
	}
	obj := pass.Info.Defs[fd.Recv.List[0].Names[0]]
	if obj == nil {
		return ""
	}
	t := obj.Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return ""
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		named, ok := f.Type().(*types.Named)
		if !ok {
			continue
		}
		o := named.Obj()
		if o.Name() == "Clock" && o.Pkg() != nil && o.Pkg().Path() == "repro/internal/clock" {
			return recvName + "." + f.Name()
		}
	}
	return ""
}
