package clockdet

import (
	"strings"
	"testing"

	"repro/internal/lint/lintkit"
)

func TestDeterministicPackageViolations(t *testing.T) {
	lintkit.RunGolden(t, Analyzer, "testdata/src/det")
}

func TestUnmarkedPackageIsClean(t *testing.T) {
	lintkit.RunGolden(t, Analyzer, "testdata/src/clean")
}

// TestFixRewritesToClockField proves the mechanical -fix: inside a method
// whose receiver carries a clock.Clock field, time.Now rewrites to the
// injected seam.
func TestFixRewritesToClockField(t *testing.T) {
	fixed := lintkit.GoldenFixes(t, Analyzer, "testdata/src/det", "det.go")
	if !strings.Contains(fixed, "e.at = e.clk.Now()") {
		t.Fatalf("fix did not rewrite time.Now to e.clk.Now; got:\n%s", fixed)
	}
	if !strings.Contains(fixed, "e.clk.After(time.Second)") {
		t.Fatalf("fix did not rewrite time.After to e.clk.After; got:\n%s", fixed)
	}
	// Functions without a clock seam get the diagnostic but no rewrite.
	if strings.Contains(fixed, "clk.Since") {
		t.Fatalf("fix invented a rewrite for time.Since; got:\n%s", fixed)
	}
}
