// Package core is the distributed-shared-object runtime: it ties the naming
// service, stores, and client proxies together into the worldwide object
// model of §2 of the paper. A Runtime creates distributed Web objects (their
// permanent stores), installs object-initiated and client-initiated
// replicas, and binds client processes to whichever replica they choose —
// yielding a Proxy, the client-side local object whose only job is to
// "translate method calls to messages" (§4.2), decorated with the client's
// session-guarantee state.
package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/coherence"
	"repro/internal/ids"
	"repro/internal/msg"
	"repro/internal/naming"
	"repro/internal/semantics"
	"repro/internal/transport"
)

// ErrTimeout reports a call that received no reply in time.
var ErrTimeout = errors.New("core: call timed out")

// ErrClosed reports use of a closed proxy.
var ErrClosed = errors.New("core: proxy closed")

// RemoteError carries a non-OK reply status from a store.
type RemoteError struct {
	Status msg.Status
	Text   string
}

// Error implements error.
func (e *RemoteError) Error() string {
	return fmt.Sprintf("remote %v: %s", e.Status, e.Text)
}

// BindConfig configures a client binding.
type BindConfig struct {
	// Object to bind to.
	Object ids.ObjectID
	// Endpoint is the client's own communication object.
	Endpoint transport.Endpoint
	// StoreAddr is the chosen contact point (a naming.Entry address).
	StoreAddr string
	// Client is the client's identity (allocate via naming.NextClient).
	Client ids.ClientID
	// Session lists the client-based coherence models to enforce.
	Session []coherence.ClientModel
	// Prototype supplies the method table for read/write classification; it
	// is never invoked.
	Prototype semantics.Object
	// Semantics, when set, names the semantics type the client expects
	// ("webdoc", "kvstore", "applog", ...). It travels in the bind
	// request's Sem field, and stores that host the object under a
	// different semantics type reject the bind — a typed handle fails
	// fast instead of producing unknown-method errors at invoke time.
	Semantics string
	// Timeout bounds each remote call (default 5s). A timed-out write is
	// transparently retried once under the same write identifier (the
	// at-most-once path resolves whether the original was applied), so a
	// failing write can block for up to 2× Timeout before returning
	// ErrTimeout.
	Timeout time.Duration
}

// Proxy is the client-side local object bound to one distributed shared Web
// object. Safe for concurrent use.
type Proxy struct {
	object  ids.ObjectID
	client  ids.ClientID
	session *coherence.Session
	table   *semantics.Table
	ep      transport.Endpoint
	store   string
	storeID ids.StoreID
	sem     string
	timeout time.Duration

	mu      sync.Mutex
	nextSeq uint64
	pending map[uint64]chan *msg.Message
	closed  bool

	// writeMu serialises write departure: it is held from write-ID
	// allocation until the frame is handed to the transport, so a client's
	// writes reach the wire in sequence order even when the proxy is used
	// concurrently. Stores rely on ordered departure for at-most-once
	// replay detection of unstamped writes.
	writeMu sync.Mutex

	done chan struct{}
	wg   sync.WaitGroup
}

// Bind contacts the object at the chosen store and returns a proxy. It
// performs the paper's binding step: "binding results in an interface
// belonging to the object being placed in the client's address space".
func Bind(cfg BindConfig) (*Proxy, error) {
	if cfg.Timeout <= 0 {
		cfg.Timeout = 5 * time.Second
	}
	p := &Proxy{
		object:  cfg.Object,
		client:  cfg.Client,
		session: coherence.NewSession(cfg.Client, cfg.Session...),
		table:   semantics.NewTable(cfg.Prototype),
		ep:      cfg.Endpoint,
		store:   cfg.StoreAddr,
		sem:     cfg.Semantics,
		timeout: cfg.Timeout,
		pending: make(map[uint64]chan *msg.Message),
		done:    make(chan struct{}),
	}
	p.wg.Add(1)
	go p.recvLoop()

	reply, err := p.call(&msg.Message{
		Kind:   msg.KindBindRequest,
		Object: cfg.Object,
		Client: cfg.Client,
		Sem:    cfg.Semantics,
	})
	if err != nil {
		p.Close()
		return nil, fmt.Errorf("core: bind %q at %q: %w", cfg.Object, cfg.StoreAddr, err)
	}
	if reply.Status != msg.StatusOK {
		p.Close()
		return nil, fmt.Errorf("core: bind %q: %w", cfg.Object, &RemoteError{reply.Status, reply.Err})
	}
	p.storeID = reply.Store
	// Resume the client's write history: a rebinding process reusing a
	// persistent client ID must not re-issue write IDs the deployment
	// already applied (they would be deduplicated as replays).
	p.session.SeedSeq(reply.VVec.Get(cfg.Client))
	return p, nil
}

// Client returns the proxy's client identity.
func (p *Proxy) Client() ids.ClientID { return p.client }

// Store returns the bound store's ID.
func (p *Proxy) Store() ids.StoreID { return p.storeID }

// StoreAddr returns the bound store's address.
func (p *Proxy) StoreAddr() string { return p.store }

// Session exposes the client's session-guarantee state.
func (p *Proxy) Session() *coherence.Session { return p.session }

// Rebind switches the proxy to a different store (the paper's mobile-client
// scenario for Monotonic Reads: "two subsequent reads, possibly at
// different stores"). Session state is kept.
func (p *Proxy) Rebind(storeAddr string) error {
	p.mu.Lock()
	p.store = storeAddr
	p.mu.Unlock()
	reply, err := p.call(&msg.Message{
		Kind:   msg.KindBindRequest,
		Object: p.object,
		Client: p.client,
		Sem:    p.sem,
	})
	if err != nil {
		return err
	}
	if reply.Status != msg.StatusOK {
		return &RemoteError{reply.Status, reply.Err}
	}
	p.mu.Lock()
	p.storeID = reply.Store
	p.mu.Unlock()
	p.session.SeedSeq(reply.VVec.Get(p.client))
	return nil
}

// Invoke performs one marshalled method call on the distributed object,
// transparently attaching and maintaining session-guarantee metadata.
func (p *Proxy) Invoke(inv msg.Invocation) ([]byte, error) {
	if p.table.IsWrite(inv.Method) {
		return p.invokeWrite(inv)
	}
	return p.invokeRead(inv)
}

func (p *Proxy) invokeRead(inv msg.Invocation) ([]byte, error) {
	req, dep := p.session.ReadRequirement()
	m := &msg.Message{
		Kind:    msg.KindReadRequest,
		Object:  p.object,
		Client:  p.client,
		VVec:    msg.VecFrom(req),
		ReadDep: dep,
		Inv:     inv,
	}
	reply, err := p.call(m)
	if err != nil {
		return nil, err
	}
	if reply.Status != msg.StatusOK {
		return nil, &RemoteError{reply.Status, reply.Err}
	}
	p.session.ReadDone(reply.VVec.Version())
	return reply.Payload, nil
}

func (p *Proxy) invokeWrite(inv msg.Invocation) ([]byte, error) {
	// Serialise writes so per-client sequence numbers leave in order: the
	// lock spans write-ID allocation THROUGH transport hand-off (released
	// inside callOrdered), otherwise two concurrent writers could allocate
	// N and N+1 and send them in the opposite order.
	p.writeMu.Lock()
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.writeMu.Unlock()
		return nil, ErrClosed
	}
	p.mu.Unlock()
	// Repair first: an aborted write that could not be rolled back (another
	// writer on this shared handle had already allocated a later sequence)
	// left a hole that stalls every subsequent write under ordered models.
	// Seal each hole before this write departs, so its own sequence number
	// is reachable at the stores.
	if err := p.sealHoles(); err != nil {
		p.writeMu.Unlock()
		return nil, err
	}
	p.mu.Lock()
	w, deps := p.session.NextWrite()
	p.mu.Unlock()

	m := &msg.Message{
		Kind:      msg.KindWriteRequest,
		Object:    p.object,
		Client:    p.client,
		Write:     w,
		Deps:      msg.VecFrom(deps),
		Inv:       inv,
		WallNanos: time.Now().UnixNano(),
	}
	reply, err := p.callOrdered(m, &p.writeMu)
	if err != nil && errors.Is(err, ErrTimeout) {
		// The outcome is unknown: the request or only its ack may have been
		// lost. Retry the identical frame once — the stores' at-most-once
		// admission re-acks it if it was applied and admits it if it never
		// arrived — so the ambiguity usually resolves without abandoning
		// the write ID (which a subsequent different write would reuse and
		// have silently absorbed as a replay).
		reply, err = p.call(m)
	}
	if err != nil {
		p.session.AbortWrite(w)
		return nil, err
	}
	if reply.Status != msg.StatusOK {
		p.session.AbortWrite(w)
		return nil, &RemoteError{reply.Status, reply.Err}
	}
	p.session.WriteDone(w, reply.Store)
	return reply.Payload, nil
}

// sealHoles re-issues every recorded write-sequence hole as a no-op write
// under the hole's original write ID (semantics.MethodNoop), in ascending
// order. The at-most-once admission at the stores makes this safe in both
// timeout outcomes: if the aborted original was actually applied, the seal
// is re-acked as a replay; if it never arrived, the no-op fills the gap and
// releases the client's buffered successors. Callers hold writeMu, so the
// seals depart before any newer write; the round trips happen under the
// lock — gap repair is rare and correctness beats departure latency here.
// On failure the hole stays recorded for the next attempt.
func (p *Proxy) sealHoles() error {
	for _, seq := range p.session.Holes() {
		w, deps := p.session.SealWrite(seq)
		m := &msg.Message{
			Kind:      msg.KindWriteRequest,
			Object:    p.object,
			Client:    p.client,
			Write:     w,
			Deps:      msg.VecFrom(deps),
			Inv:       msg.Invocation{Method: semantics.MethodNoop},
			WallNanos: time.Now().UnixNano(),
		}
		reply, err := p.call(m)
		if err != nil && errors.Is(err, ErrTimeout) {
			reply, err = p.call(m) // same one-retry contract as invokeWrite
		}
		if err != nil {
			return fmt.Errorf("core: sealing write gap %v: %w", w, err)
		}
		if reply.Status != msg.StatusOK {
			return fmt.Errorf("core: sealing write gap %v: %w", w, &RemoteError{reply.Status, reply.Err})
		}
		p.session.SealDone(seq)
	}
	return nil
}

// call sends m to the bound store and awaits the correlated reply.
func (p *Proxy) call(m *msg.Message) (*msg.Message, error) {
	return p.callOrdered(m, nil)
}

// callOrdered is call with an optional departure lock: orderMu, when
// non-nil, is held by the caller and released as soon as the frame has been
// handed to the transport — waiting for the reply happens outside it, so
// ordered departure costs no reply-latency serialisation.
func (p *Proxy) callOrdered(m *msg.Message, orderMu *sync.Mutex) (*msg.Message, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		if orderMu != nil {
			orderMu.Unlock()
		}
		return nil, ErrClosed
	}
	p.nextSeq++
	seq := p.nextSeq
	ch := make(chan *msg.Message, 1)
	p.pending[seq] = ch
	storeAddr := p.store
	p.mu.Unlock()

	m.NetSeq = seq
	m.From = p.ep.Addr()
	defer func() {
		p.mu.Lock()
		delete(p.pending, seq)
		p.mu.Unlock()
	}()
	err := p.ep.Send(storeAddr, m)
	if orderMu != nil {
		orderMu.Unlock()
	}
	if err != nil {
		return nil, err
	}
	select {
	case r := <-ch:
		return r, nil
	case <-time.After(p.timeout):
		return nil, fmt.Errorf("%w after %v (%v to %s)", ErrTimeout, p.timeout, m.Kind, storeAddr)
	case <-p.done:
		return nil, ErrClosed
	}
}

// recvLoop demultiplexes replies to waiting calls.
func (p *Proxy) recvLoop() {
	defer p.wg.Done()
	for {
		select {
		case <-p.done:
			return
		case m, ok := <-p.ep.Recv():
			if !ok {
				return
			}
			p.mu.Lock()
			ch := p.pending[m.NetSeq]
			p.mu.Unlock()
			if ch != nil {
				select {
				case ch <- m:
				default: // duplicate reply; drop
				}
			}
		}
	}
}

// Close releases the proxy (but not the endpoint, which the caller owns).
func (p *Proxy) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	close(p.done)
	p.wg.Wait()
}

// Runtime bundles a naming service for convenience in examples and tests.
type Runtime struct {
	Naming *naming.Service
}

// NewRuntime creates a runtime with a fresh naming service.
func NewRuntime() *Runtime { return &Runtime{Naming: naming.New()} }
