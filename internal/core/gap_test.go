package core_test

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/msg"
	"repro/internal/naming"
	"repro/internal/replication"
	"repro/internal/semantics/webdoc"
	"repro/internal/store"
	"repro/internal/strategy"
	"repro/internal/transport/memnet"
)

// TestWriteGapRepairOnSharedHandle is the regression test for the write-gap
// stall: on a shared proxy handle, a write that fails while a LATER write is
// already in flight cannot roll the session counter back, leaving a hole in
// the client's write sequence. Under ordered models (PRAM here) the stores
// buffer every subsequent write behind the missing predecessor forever —
// the writes are acknowledged (admission acks before release) but their
// content never becomes visible. The proxy must seal the hole with a no-op
// write before its next write departs.
//
// The schedule is deterministic: writer A departs first (writeMu orders
// departure), the partition eats its frames, and writer B succeeds after
// the heal while A is still inside its 2×timeout retry window — so A's
// abort always happens after B's allocation, which is exactly the
// unrollbackable case.
func TestWriteGapRepairOnSharedHandle(t *testing.T) {
	n := memnet.New(memnet.WithSeed(9))
	defer n.Close()
	ns := naming.New()
	const obj = ids.ObjectID("gap-doc")

	serverEP, err := n.Endpoint("store")
	if err != nil {
		t.Fatal(err)
	}
	server := store.New(store.Config{
		ID: ns.NextStore(), Role: replication.RolePermanent,
		Endpoint: serverEP, ReadTimeout: 2 * time.Second,
	})
	defer server.Close()
	if err := server.Host(store.HostConfig{Object: obj, Semantics: webdoc.New(), Strat: strategy.Conference(time.Hour)}); err != nil {
		t.Fatal(err)
	}

	clEP, err := n.Endpoint("client")
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.Bind(core.BindConfig{
		Object: obj, Endpoint: clEP, StoreAddr: "store",
		Client: ns.NextClient(), Prototype: webdoc.New(),
		Timeout: 600 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	put := func(content string) error {
		args := webdoc.EncodeWriteArgs(webdoc.WriteArgs{Content: []byte(content)})
		_, err := p.Invoke(msg.Invocation{Method: webdoc.MethodPutPage, Page: "p", Args: args})
		return err
	}

	// Writer A departs into the partition: seq 1 is allocated and its
	// frames (original + one transparent retry) are silently dropped.
	n.Partition("client", "store")
	aDone := make(chan error, 1)
	go func() { aDone <- put("from-A") }()

	// Wait until A's write ID is allocated and its frame has left (the
	// writeMu contract: departure follows allocation immediately). Then,
	// midway through A's first timeout window, briefly heal the partition
	// so writer B's seq 2 reaches the store — which buffers it behind the
	// missing seq 1 yet acks it (PRAM admission acknowledges before
	// release) — and re-partition before A's transparent retry fires, so
	// both of A's attempts are eaten. B's memnet round trip is microseconds
	// against a 300ms window, so the schedule holds under -race slowdowns.
	deadline := time.Now().Add(5 * time.Second)
	for p.Session().Seq() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("writer A never allocated its write ID")
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(300 * time.Millisecond) // mid-window: A's frame long gone, retry not yet due
	n.Heal("client", "store")
	if err := put("from-B"); err != nil {
		t.Fatalf("writer B (mid-partition heal): %v", err)
	}
	n.Partition("client", "store")

	if err := <-aDone; err == nil {
		t.Fatal("writer A should have timed out inside the partition")
	}
	holes := p.Session().Holes()
	if len(holes) != 1 || holes[0] != 1 {
		t.Fatalf("session holes = %v, want [1]", holes)
	}
	n.Heal("client", "store")

	// The next write must first seal the hole at seq 1; only then can the
	// store release seq 2 and seq 3. Before the repair existed, this write
	// was acked yet — like B's — invisible forever.
	if err := put("final"); err != nil {
		t.Fatalf("write after gap: %v", err)
	}
	if holes := p.Session().Holes(); len(holes) != 0 {
		t.Fatalf("holes not sealed: %v", holes)
	}

	// The permanent store acks a write only after the release sweep, so
	// everything through "final" is applied and readable right away.
	out, err := p.Invoke(msg.Invocation{Method: webdoc.MethodGetPage, Page: "p"})
	if err != nil {
		t.Fatalf("read after repair: %v", err)
	}
	pg, err := webdoc.DecodePage(out)
	if err != nil {
		t.Fatal(err)
	}
	if string(pg.Content) != "final" {
		t.Fatalf("content = %q, want %q (ordered writes stalled behind the gap)", pg.Content, "final")
	}
}
