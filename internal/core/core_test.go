package core_test

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/msg"
	"repro/internal/naming"
	"repro/internal/replication"
	"repro/internal/semantics/webdoc"
	"repro/internal/store"
	"repro/internal/strategy"
	"repro/internal/transport/tcpnet"
)

// TestFullStackOverTCP runs the conference scenario over real TCP
// loopback — the transport configuration of the paper's prototype.
func TestFullStackOverTCP(t *testing.T) {
	ns := naming.New()
	const obj = ids.ObjectID("tcp-doc")
	st := strategy.Conference(20 * time.Millisecond)

	serverEP, err := tcpnet.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer serverEP.Close()
	server := store.New(store.Config{
		ID: ns.NextStore(), Role: replication.RolePermanent,
		Endpoint: serverEP, ReadTimeout: 2 * time.Second,
	})
	defer server.Close()
	if err := server.Host(store.HostConfig{Object: obj, Semantics: webdoc.New(), Strat: st}); err != nil {
		t.Fatal(err)
	}

	cacheEP, err := tcpnet.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer cacheEP.Close()
	cache := store.New(store.Config{
		ID: ns.NextStore(), Role: replication.RoleClientInitiated,
		Endpoint: cacheEP, ReadTimeout: 2 * time.Second,
	})
	defer cache.Close()
	if err := cache.Host(store.HostConfig{
		Object: obj, Semantics: webdoc.New(), Strat: st,
		Parent: serverEP.Addr(), Subscribe: true,
		Session: []coherence.ClientModel{coherence.ReadYourWrites},
	}); err != nil {
		t.Fatal(err)
	}

	masterEP, err := tcpnet.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer masterEP.Close()
	master, err := core.Bind(core.BindConfig{
		Object: obj, Endpoint: masterEP, StoreAddr: cacheEP.Addr(),
		Client: ns.NextClient(), Session: []coherence.ClientModel{coherence.ReadYourWrites},
		Prototype: webdoc.New(), Timeout: 3 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer master.Close()

	args := webdoc.EncodeWriteArgs(webdoc.WriteArgs{Content: []byte("<li>a</li>"), ModifiedNanos: time.Now().UnixNano()})
	if _, err := master.Invoke(msg.Invocation{Method: webdoc.MethodAppendPage, Page: "program", Args: args}); err != nil {
		t.Fatalf("write over TCP: %v", err)
	}
	out, err := master.Invoke(msg.Invocation{Method: webdoc.MethodGetPage, Page: "program"})
	if err != nil {
		t.Fatalf("RYW read over TCP: %v", err)
	}
	pg, err := webdoc.DecodePage(out)
	if err != nil || string(pg.Content) != "<li>a</li>" {
		t.Fatalf("content %q, err %v", pg.Content, err)
	}
	if master.Store() == 0 || master.Client() == 0 || master.StoreAddr() != cacheEP.Addr() {
		t.Fatalf("proxy identity accessors wrong")
	}
}

// TestProxyTimeout verifies calls fail cleanly when the store is gone.
func TestProxyTimeout(t *testing.T) {
	ep, err := tcpnet.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	// Bind against an address nobody listens on: the dial fails fast.
	_, err = core.Bind(core.BindConfig{
		Object: "o", Endpoint: ep, StoreAddr: "127.0.0.1:1",
		Client: 1, Prototype: webdoc.New(), Timeout: 300 * time.Millisecond,
	})
	if err == nil {
		t.Fatalf("bind to dead address succeeded")
	}
}

// TestProxyConcurrentReads checks the demultiplexer under concurrent calls.
func TestProxyConcurrentReads(t *testing.T) {
	ns := naming.New()
	const obj = ids.ObjectID("conc")
	serverEP, err := tcpnet.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer serverEP.Close()
	server := store.New(store.Config{ID: ns.NextStore(), Role: replication.RolePermanent, Endpoint: serverEP})
	defer server.Close()
	if err := server.Host(store.HostConfig{Object: obj, Semantics: webdoc.New(), Strat: strategy.Conference(time.Hour)}); err != nil {
		t.Fatal(err)
	}
	clEP, err := tcpnet.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer clEP.Close()
	p, err := core.Bind(core.BindConfig{
		Object: obj, Endpoint: clEP, StoreAddr: serverEP.Addr(),
		Client: ns.NextClient(), Prototype: webdoc.New(), Timeout: 3 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	args := webdoc.EncodeWriteArgs(webdoc.WriteArgs{Content: []byte("x")})
	if _, err := p.Invoke(msg.Invocation{Method: webdoc.MethodPutPage, Page: "p", Args: args}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 20)
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := p.Invoke(msg.Invocation{Method: webdoc.MethodGetPage, Page: "p"})
			errs <- err
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("concurrent read: %v", err)
		}
	}
}

// TestProxyClosedFails covers post-close behaviour.
func TestProxyClosedFails(t *testing.T) {
	ns := naming.New()
	const obj = ids.ObjectID("closed")
	serverEP, err := tcpnet.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer serverEP.Close()
	server := store.New(store.Config{ID: ns.NextStore(), Role: replication.RolePermanent, Endpoint: serverEP})
	defer server.Close()
	if err := server.Host(store.HostConfig{Object: obj, Semantics: webdoc.New(), Strat: strategy.Conference(time.Hour)}); err != nil {
		t.Fatal(err)
	}
	clEP, err := tcpnet.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer clEP.Close()
	p, err := core.Bind(core.BindConfig{
		Object: obj, Endpoint: clEP, StoreAddr: serverEP.Addr(),
		Client: ns.NextClient(), Prototype: webdoc.New(), Timeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Close()
	p.Close() // idempotent
	_, err = p.Invoke(msg.Invocation{Method: webdoc.MethodGetPage, Page: "p"})
	if !errors.Is(err, core.ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
}

// TestRemoteErrorFormatting covers the error type.
func TestRemoteErrorFormatting(t *testing.T) {
	e := &core.RemoteError{Status: msg.StatusForbidden, Text: "nope"}
	if got := e.Error(); got != "remote forbidden: nope" {
		t.Fatalf("Error() = %q", got)
	}
}
