// Package metrics provides the staleness tracker the experiment harness
// reports: it compares versions read against an oracle of versions written.
// Latency histograms live in internal/obs (HDR log-linear, shared with the
// load generator and the metrics registry); the sorted-slice Histogram that
// used to live here is retired in its favor.
package metrics

import (
	"sync"

	"repro/internal/obs"
)

// Staleness tracks how far reads lag behind writes, in versions. The
// harness bumps the oracle on every write and observes on every read.
// Safe for concurrent use.
type Staleness struct {
	mu     sync.Mutex
	latest map[string]uint64 // page -> newest version written anywhere
	reads  int
	stale  int
	lagSum uint64
	lagMax uint64

	lagHist obs.Hist // version-lag distribution (powers the P99 column)
}

// NewStaleness creates a tracker.
func NewStaleness() *Staleness {
	return &Staleness{latest: make(map[string]uint64)}
}

// WroteVersion records that the page now has the given version globally.
func (s *Staleness) WroteVersion(page string, version uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.latest[page] < version {
		s.latest[page] = version
	}
}

// Wrote records one more write to the page (version = count of writes).
func (s *Staleness) Wrote(page string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.latest[page]++
}

// ReadVersion records a read that observed the given version of the page
// and returns the version lag.
func (s *Staleness) ReadVersion(page string, version uint64) uint64 {
	s.mu.Lock()
	lat := s.latest[page]
	s.reads++
	var lag uint64
	if lat > version {
		lag = lat - version
		s.stale++
		s.lagSum += lag
		if lag > s.lagMax {
			s.lagMax = lag
		}
	}
	s.mu.Unlock()
	s.lagHist.Observe(int64(lag))
	return lag
}

// Report summarises the tracker.
type Report struct {
	Reads         int
	StaleReads    int
	StaleFraction float64
	MeanLag       float64
	MaxLag        uint64
	// P99Lag is the 99th-percentile version lag across all reads (fresh
	// reads count as lag 0), from the HDR histogram — within its ~3%
	// relative bucket error.
	P99Lag uint64
}

// Report returns the summary.
func (s *Staleness) Report() Report {
	s.mu.Lock()
	defer s.mu.Unlock()
	r := Report{Reads: s.reads, StaleReads: s.stale, MaxLag: s.lagMax}
	if s.reads > 0 {
		r.StaleFraction = float64(s.stale) / float64(s.reads)
		r.MeanLag = float64(s.lagSum) / float64(s.reads)
		r.P99Lag = uint64(s.lagHist.Quantile(0.99))
	}
	return r
}
