// Package metrics provides the small statistics containers the experiment
// harness reports: histograms with percentiles and a staleness tracker that
// compares versions read against an oracle of versions written.
package metrics

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Histogram accumulates float64 observations. The zero value is ready for
// use. Safe for concurrent use.
type Histogram struct {
	mu     sync.Mutex
	values []float64
}

// Add records one observation.
func (h *Histogram) Add(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.values = append(h.values, v)
}

// AddDuration records a duration in microseconds.
func (h *Histogram) AddDuration(d time.Duration) {
	h.Add(float64(d.Microseconds()))
}

// Count returns the number of observations.
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.values)
}

// Mean returns the arithmetic mean (0 when empty).
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.values) == 0 {
		return 0
	}
	var s float64
	for _, v := range h.values {
		s += v
	}
	return s / float64(len(h.values))
}

// Quantile returns the q-quantile (0 <= q <= 1) by nearest-rank; 0 when
// empty.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.values) == 0 {
		return 0
	}
	sorted := append([]float64(nil), h.values...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

// Max returns the maximum (0 when empty).
func (h *Histogram) Max() float64 { return h.Quantile(1) }

// Summary formats mean/p50/p99 compactly.
func (h *Histogram) Summary() string {
	return fmt.Sprintf("mean=%.1f p50=%.1f p99=%.1f n=%d",
		h.Mean(), h.Quantile(0.5), h.Quantile(0.99), h.Count())
}

// Staleness tracks how far reads lag behind writes, in versions. The
// harness bumps the oracle on every write and observes on every read.
// Safe for concurrent use.
type Staleness struct {
	mu      sync.Mutex
	latest  map[string]uint64 // page -> newest version written anywhere
	reads   int
	stale   int
	lagSum  uint64
	lagMax  uint64
	lagHist Histogram
}

// NewStaleness creates a tracker.
func NewStaleness() *Staleness {
	return &Staleness{latest: make(map[string]uint64)}
}

// WroteVersion records that the page now has the given version globally.
func (s *Staleness) WroteVersion(page string, version uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.latest[page] < version {
		s.latest[page] = version
	}
}

// Wrote records one more write to the page (version = count of writes).
func (s *Staleness) Wrote(page string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.latest[page]++
}

// ReadVersion records a read that observed the given version of the page
// and returns the version lag.
func (s *Staleness) ReadVersion(page string, version uint64) uint64 {
	s.mu.Lock()
	lat := s.latest[page]
	s.reads++
	var lag uint64
	if lat > version {
		lag = lat - version
		s.stale++
		s.lagSum += lag
		if lag > s.lagMax {
			s.lagMax = lag
		}
	}
	s.mu.Unlock()
	s.lagHist.Add(float64(lag))
	return lag
}

// Report summarises the tracker.
type Report struct {
	Reads         int
	StaleReads    int
	StaleFraction float64
	MeanLag       float64
	MaxLag        uint64
}

// Report returns the summary.
func (s *Staleness) Report() Report {
	s.mu.Lock()
	defer s.mu.Unlock()
	r := Report{Reads: s.reads, StaleReads: s.stale, MaxLag: s.lagMax}
	if s.reads > 0 {
		r.StaleFraction = float64(s.stale) / float64(s.reads)
		r.MeanLag = float64(s.lagSum) / float64(s.reads)
	}
	return r
}
