package metrics

import (
	"testing"
)

func TestStalenessTracking(t *testing.T) {
	s := NewStaleness()
	s.Wrote("p") // version 1
	s.Wrote("p") // version 2
	if lag := s.ReadVersion("p", 2); lag != 0 {
		t.Fatalf("fresh read lag = %d", lag)
	}
	if lag := s.ReadVersion("p", 1); lag != 1 {
		t.Fatalf("stale read lag = %d", lag)
	}
	if lag := s.ReadVersion("p", 0); lag != 2 {
		t.Fatalf("very stale read lag = %d", lag)
	}
	r := s.Report()
	if r.Reads != 3 || r.StaleReads != 2 {
		t.Fatalf("report %+v", r)
	}
	if r.StaleFraction < 0.66 || r.StaleFraction > 0.67 {
		t.Fatalf("fraction %f", r.StaleFraction)
	}
	if r.MaxLag != 2 {
		t.Fatalf("max lag %d", r.MaxLag)
	}
	if r.MeanLag != 1 {
		t.Fatalf("mean lag %f", r.MeanLag)
	}
	// Small exact-bucket values: the HDR histogram is precise here.
	if r.P99Lag != 2 {
		t.Fatalf("p99 lag %d", r.P99Lag)
	}
}

func TestStalenessWroteVersion(t *testing.T) {
	s := NewStaleness()
	s.WroteVersion("p", 5)
	s.WroteVersion("p", 3) // must not regress
	if lag := s.ReadVersion("p", 4); lag != 1 {
		t.Fatalf("lag = %d", lag)
	}
}

func TestStalenessEmptyReport(t *testing.T) {
	r := NewStaleness().Report()
	if r.Reads != 0 || r.StaleFraction != 0 || r.P99Lag != 0 {
		t.Fatalf("empty report %+v", r)
	}
}
