package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.Quantile(0.5) != 0 || h.Count() != 0 {
		t.Fatalf("empty histogram should report zeros")
	}
	for _, v := range []float64{1, 2, 3, 4, 5} {
		h.Add(v)
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Mean() != 3 {
		t.Fatalf("Mean = %f", h.Mean())
	}
	if h.Quantile(0) != 1 || h.Quantile(1) != 5 || h.Max() != 5 {
		t.Fatalf("extremes wrong")
	}
	if q := h.Quantile(0.5); q != 3 {
		t.Fatalf("median = %f", q)
	}
	if !strings.Contains(h.Summary(), "n=5") {
		t.Fatalf("summary %q", h.Summary())
	}
}

func TestHistogramDuration(t *testing.T) {
	var h Histogram
	h.AddDuration(1500 * time.Microsecond)
	if h.Mean() != 1500 {
		t.Fatalf("AddDuration stored %f", h.Mean())
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				h.Add(1)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 800 {
		t.Fatalf("Count = %d", h.Count())
	}
}

func TestStalenessTracking(t *testing.T) {
	s := NewStaleness()
	s.Wrote("p") // version 1
	s.Wrote("p") // version 2
	if lag := s.ReadVersion("p", 2); lag != 0 {
		t.Fatalf("fresh read lag = %d", lag)
	}
	if lag := s.ReadVersion("p", 1); lag != 1 {
		t.Fatalf("stale read lag = %d", lag)
	}
	if lag := s.ReadVersion("p", 0); lag != 2 {
		t.Fatalf("very stale read lag = %d", lag)
	}
	r := s.Report()
	if r.Reads != 3 || r.StaleReads != 2 {
		t.Fatalf("report %+v", r)
	}
	if r.StaleFraction < 0.66 || r.StaleFraction > 0.67 {
		t.Fatalf("fraction %f", r.StaleFraction)
	}
	if r.MaxLag != 2 {
		t.Fatalf("max lag %d", r.MaxLag)
	}
	if r.MeanLag != 1 {
		t.Fatalf("mean lag %f", r.MeanLag)
	}
}

func TestStalenessWroteVersion(t *testing.T) {
	s := NewStaleness()
	s.WroteVersion("p", 5)
	s.WroteVersion("p", 3) // must not regress
	if lag := s.ReadVersion("p", 4); lag != 1 {
		t.Fatalf("lag = %d", lag)
	}
}

func TestStalenessEmptyReport(t *testing.T) {
	r := NewStaleness().Report()
	if r.Reads != 0 || r.StaleFraction != 0 {
		t.Fatalf("empty report %+v", r)
	}
}
