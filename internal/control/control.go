// Package control implements the control sub-object of the Globe
// local-object composition (Figure 1): it "takes care of invocations from
// client processes, and controls the interaction between the semantics
// object and the replication object". Concretely it classifies marshalled
// invocations using the semantics object's method table, guards the
// replication object from non-write operations, and performs the actual
// semantics calls and state transfers on the replication object's behalf.
package control

import (
	"fmt"

	"repro/internal/coherence"
	"repro/internal/msg"
	"repro/internal/semantics"
)

// Control glues one semantics object to one replication object.
type Control struct {
	sem   semantics.Object
	table *semantics.Table
}

// New creates a control object for the given semantics object.
func New(sem semantics.Object) *Control {
	return &Control{sem: sem, table: semantics.NewTable(sem)}
}

// Semantics returns the underlying semantics object.
func (c *Control) Semantics() semantics.Object { return c.sem }

// IsWrite classifies a method using the semantics method table.
func (c *Control) IsWrite(method uint16) bool { return c.table.IsWrite(method) }

// ServeRead executes a read invocation against the local semantics object.
// Write methods are rejected: they must travel through the replication
// object's ordering machinery.
func (c *Control) ServeRead(inv msg.Invocation) ([]byte, error) {
	if c.table.IsWrite(inv.Method) {
		return nil, fmt.Errorf("control: method %d is a write, not servable as read", inv.Method)
	}
	return c.sem.Invoke(inv)
}

// ApplyOp applies an ordered write update to the semantics object.
func (c *Control) ApplyOp(u *coherence.Update) error {
	if u.Inv.Method == semantics.MethodNoop {
		// A gap-seal no-op (see semantics.MethodNoop): it exists only to
		// occupy its write ID in the per-client order, so it applies by
		// doing nothing — the caller still advances the applied vector.
		return nil
	}
	if !c.table.IsWrite(u.Inv.Method) {
		return fmt.Errorf("control: update %v carries non-write method %d", u.Write, u.Inv.Method)
	}
	_, err := c.sem.Invoke(u.Inv)
	return err
}

// Snapshot marshals the full local state (coherence/access transfer type
// "full").
func (c *Control) Snapshot() ([]byte, error) { return c.sem.Snapshot() }

// ApplyFull replaces local state from a full snapshot.
func (c *Control) ApplyFull(snapshot []byte) error { return c.sem.Restore(snapshot) }

// SnapshotElement marshals one element (transfer type "partial").
func (c *Control) SnapshotElement(name string) ([]byte, error) {
	return c.sem.SnapshotElement(name)
}

// ApplyElement replaces one element from a partial snapshot.
func (c *Control) ApplyElement(name string, data []byte) error {
	return c.sem.RestoreElement(name, data)
}
