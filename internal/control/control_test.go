package control

import (
	"strings"
	"testing"

	"repro/internal/coherence"
	"repro/internal/ids"
	"repro/internal/msg"
	"repro/internal/semantics/webdoc"
)

func TestServeReadRejectsWrites(t *testing.T) {
	c := New(webdoc.New())
	_, err := c.ServeRead(msg.Invocation{Method: webdoc.MethodPutPage, Page: "p"})
	if err == nil || !strings.Contains(err.Error(), "write") {
		t.Fatalf("write served as read: %v", err)
	}
}

func TestApplyOpRejectsReads(t *testing.T) {
	c := New(webdoc.New())
	u := &coherence.Update{
		Write: ids.WiD{Client: 1, Seq: 1},
		Inv:   msg.Invocation{Method: webdoc.MethodGetPage, Page: "p"},
	}
	if err := c.ApplyOp(u); err == nil {
		t.Fatalf("read applied as update")
	}
}

func TestApplyAndServeRoundTrip(t *testing.T) {
	c := New(webdoc.New())
	args := webdoc.EncodeWriteArgs(webdoc.WriteArgs{Content: []byte("body"), ModifiedNanos: 1})
	u := &coherence.Update{
		Write: ids.WiD{Client: 1, Seq: 1},
		Inv:   msg.Invocation{Method: webdoc.MethodPutPage, Page: "p", Args: args},
	}
	if err := c.ApplyOp(u); err != nil {
		t.Fatal(err)
	}
	out, err := c.ServeRead(msg.Invocation{Method: webdoc.MethodGetPage, Page: "p"})
	if err != nil {
		t.Fatal(err)
	}
	pg, err := webdoc.DecodePage(out)
	if err != nil || string(pg.Content) != "body" {
		t.Fatalf("round trip: %q %v", pg.Content, err)
	}
	if !c.IsWrite(webdoc.MethodPutPage) || c.IsWrite(webdoc.MethodGetPage) {
		t.Fatalf("classification wrong")
	}
}

func TestStateTransferDelegation(t *testing.T) {
	src := webdoc.New()
	src.Put("a", []byte("A"), "text/html", 1)
	c := New(src)
	snap, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	dstC := New(webdoc.New())
	if err := dstC.ApplyFull(snap); err != nil {
		t.Fatal(err)
	}
	el, err := dstC.SnapshotElement("a")
	if err != nil {
		t.Fatal(err)
	}
	third := New(webdoc.New())
	if err := third.ApplyElement("a", el); err != nil {
		t.Fatal(err)
	}
	out, err := third.ServeRead(msg.Invocation{Method: webdoc.MethodGetPage, Page: "a"})
	if err != nil {
		t.Fatal(err)
	}
	pg, _ := webdoc.DecodePage(out)
	if string(pg.Content) != "A" {
		t.Fatalf("element transfer chain broken: %q", pg.Content)
	}
	if third.Semantics() == nil {
		t.Fatalf("Semantics accessor nil")
	}
}
