package msg

import (
	"testing"
	"testing/quick"

	"repro/internal/ids"
)

// Property tests for digest-vector round trips. KindDigest frames carry the
// whole anti-entropy protocol in their VVec, so the vector must survive the
// codec for every representation Vec can take — inline (≤ VecInline
// entries) and map-spill (above it) — through both the copying and the
// zero-copy decoder.

// vecEqualsMap reports whether v holds exactly the entries of want.
func vecEqualsMap(v *Vec, want ids.VersionVec) bool {
	if v.Len() != len(want) {
		return false
	}
	ok := true
	v.Each(func(c ids.ClientID, s uint64) bool {
		if want[c] != s {
			ok = false
			return false
		}
		return true
	})
	return ok
}

// TestDigestVecRoundTripProperty fuzzes digest frames whose vectors straddle
// the inline/spill boundary: the raw map drives arbitrary small vectors, and
// spillPad regularly pushes the size past VecInline so the map-spill wire
// path is exercised in the same run.
func TestDigestVecRoundTripProperty(t *testing.T) {
	f := func(entries map[uint32]uint64, spillPad uint8) bool {
		vv := ids.NewVersionVec(len(entries))
		for c, s := range entries {
			vv[ids.ClientID(c)] = s
		}
		for i := 0; i < int(spillPad%(2*VecInline)); i++ {
			vv[ids.ClientID(1_000_000+i)] = uint64(i + 1)
		}
		m := &Message{
			Kind: KindDigest, Object: "o", From: "store/parent", Store: 3,
			VVec: VecFrom(vv), GlobalSeq: 42,
		}
		wire := Encode(m)
		for _, decode := range []func([]byte) (*Message, error){Decode, DecodeAlias} {
			got, err := decode(wire)
			if err != nil {
				t.Logf("decode: %v", err)
				return false
			}
			if got.Kind != KindDigest || got.From != "store/parent" || got.GlobalSeq != 42 {
				return false
			}
			if !vecEqualsMap(&got.VVec, vv) {
				t.Logf("vector mismatch: want %v entries, got %d", len(vv), got.VVec.Len())
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestDigestVecSpillSemanticsSurviveWire pins the behaviour gap detection
// depends on: CoversWrite/CoveredBy answers are identical before and after a
// round trip, for a vector big enough to be map-spilled (> VecInline).
func TestDigestVecSpillSemanticsSurviveWire(t *testing.T) {
	vv := ids.NewVersionVec(3 * VecInline)
	for i := 1; i <= 3*VecInline; i++ {
		vv[ids.ClientID(i)] = uint64(10 * i)
	}
	m := &Message{Kind: KindDigest, Object: "o", VVec: VecFrom(vv)}
	got, err := Decode(Encode(m))
	if err != nil {
		t.Fatal(err)
	}
	if got.VVec.Len() != 3*VecInline {
		t.Fatalf("Len = %d, want %d", got.VVec.Len(), 3*VecInline)
	}
	for i := 1; i <= 3*VecInline; i++ {
		c := ids.ClientID(i)
		covered := ids.WiD{Client: c, Seq: uint64(10 * i)}
		beyond := ids.WiD{Client: c, Seq: uint64(10*i) + 1}
		if m.VVec.CoversWrite(covered) != got.VVec.CoversWrite(covered) ||
			!got.VVec.CoversWrite(covered) {
			t.Fatalf("client %d: covered write lost across the wire", i)
		}
		if got.VVec.CoversWrite(beyond) {
			t.Fatalf("client %d: decode inflated the vector", i)
		}
	}
	applied := ids.NewVersionVec(3 * VecInline)
	for c, s := range vv {
		applied[c] = s
	}
	if !got.VVec.CoveredBy(applied) {
		t.Fatalf("round-tripped digest not covered by its own source vector")
	}
	applied[ids.ClientID(1)] = 9 // one component behind: a gap
	if got.VVec.CoveredBy(applied) {
		t.Fatalf("gap not detected after round trip")
	}
}
