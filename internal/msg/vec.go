package msg

import (
	"repro/internal/ids"
	"repro/internal/vclock"
)

// VecInline is the number of version-vector entries a Vec stores inline.
// Vectors at or below this size decode without allocating; larger vectors
// spill to a map. A vector holds one entry per writing client, which in
// practice is a handful, so the inline array covers the common case.
const VecInline = 8

// VecEntry is one (client, seq) component of a Vec.
type VecEntry struct {
	Client ids.ClientID
	Seq    uint64
}

// Vec is the wire-level representation of a version or dependency vector: a
// small array of entries kept sorted by client, spilling to a map only above
// VecInline entries. It replaces per-frame map allocations on the decode
// path — a frame whose vectors fit inline decodes them with zero
// allocations.
//
// The zero value is an empty, usable vector. Vec has value semantics for the
// inline representation; a spilled Vec shares its map across copies, so
// treat a Vec as immutable once it has been placed in a Message.
type Vec struct {
	n      int
	inline [VecInline]VecEntry     // inline[:n], sorted by Client
	spill  map[ids.ClientID]uint64 // non-nil iff the vector outgrew the array
}

// VecFrom builds a Vec from a map-typed vector (ids.VersionVec, vclock.VC,
// or any map[ids.ClientID]uint64). The map is copied, never aliased.
func VecFrom(m map[ids.ClientID]uint64) Vec {
	var v Vec
	if len(m) > VecInline {
		v.spill = make(map[ids.ClientID]uint64, len(m))
		for c, s := range m {
			v.spill[c] = s
		}
		return v
	}
	for c, s := range m {
		v.Set(c, s)
	}
	return v
}

// Len returns the number of entries.
func (v *Vec) Len() int {
	if v.spill != nil {
		return len(v.spill)
	}
	return v.n
}

// Get returns the sequence recorded for client c (zero if absent).
func (v *Vec) Get(c ids.ClientID) uint64 {
	if v.spill != nil {
		return v.spill[c]
	}
	for i := 0; i < v.n; i++ {
		if v.inline[i].Client == c {
			return v.inline[i].Seq
		}
	}
	return 0
}

// Set records seq for client c, keeping the inline entries sorted and
// spilling to a map when the array is full.
func (v *Vec) Set(c ids.ClientID, seq uint64) {
	if v.spill != nil {
		v.spill[c] = seq
		return
	}
	i := 0
	for i < v.n && v.inline[i].Client < c {
		i++
	}
	if i < v.n && v.inline[i].Client == c {
		v.inline[i].Seq = seq
		return
	}
	if v.n == VecInline {
		v.spill = make(map[ids.ClientID]uint64, VecInline+1)
		for j := 0; j < v.n; j++ {
			v.spill[v.inline[j].Client] = v.inline[j].Seq
		}
		v.spill[c] = seq
		v.n = 0
		v.inline = [VecInline]VecEntry{}
		return
	}
	copy(v.inline[i+1:v.n+1], v.inline[i:v.n])
	v.inline[i] = VecEntry{Client: c, Seq: seq}
	v.n++
}

// Each calls fn for every entry until fn returns false. Inline entries are
// visited in client order; spilled entries in map order.
func (v *Vec) Each(fn func(c ids.ClientID, seq uint64) bool) {
	if v.spill != nil {
		for c, s := range v.spill {
			if !fn(c, s) {
				return
			}
		}
		return
	}
	for i := 0; i < v.n; i++ {
		if !fn(v.inline[i].Client, v.inline[i].Seq) {
			return
		}
	}
}

// CoversWrite reports whether the vector includes write w (v[w.Client] >=
// w.Seq); the zero WiD is always covered.
func (v *Vec) CoversWrite(w ids.WiD) bool {
	if w.Zero() {
		return true
	}
	return v.Get(w.Client) >= w.Seq
}

// CoveredBy reports whether every non-zero entry of v is <= the matching
// component of the map-typed vector applied — i.e. applied dominates v.
func (v *Vec) CoveredBy(applied map[ids.ClientID]uint64) bool {
	ok := true
	v.Each(func(c ids.ClientID, s uint64) bool {
		if s > 0 && applied[c] < s {
			ok = false
			return false
		}
		return true
	})
	return ok
}

// MergeInto folds v into the map-typed vector dst entry-wise, keeping the
// maximum of each component.
func (v *Vec) MergeInto(dst map[ids.ClientID]uint64) {
	v.Each(func(c ids.ClientID, s uint64) bool {
		if dst[c] < s {
			dst[c] = s
		}
		return true
	})
}

// Version materialises the vector as an ids.VersionVec (nil when empty).
func (v *Vec) Version() ids.VersionVec {
	if v.Len() == 0 {
		return nil
	}
	out := ids.NewVersionVec(v.Len())
	v.MergeInto(out)
	return out
}

// VC materialises the vector as a vclock.VC (nil when empty).
func (v *Vec) VC() vclock.VC {
	if v.Len() == 0 {
		return nil
	}
	out := make(vclock.VC, v.Len())
	v.MergeInto(out)
	return out
}
