// Package msg defines the wire messages exchanged between the parts of a
// distributed shared Web object, and a compact binary codec for them.
//
// The paper requires that communication and replication objects are unaware
// of the methods and state of the semantics object: "both the communication
// object and the replication object operate only on invocation messages in
// which method identifiers and parameters have been encoded". Invocation is
// exactly that encoding; Message wraps an Invocation (or coherence payload)
// with the replication metadata — write identifiers, version vectors, causal
// dependency vectors, and session-guarantee requirements.
package msg

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"repro/internal/ids"
	"repro/internal/vclock"
)

// Kind discriminates message types.
type Kind uint8

// Message kinds. Binding and subscription manage the store/replica graph;
// read/write carry client invocations; update/invalidate/notify/demand are
// the coherence-transfer messages of Table 1; state request/reply implement
// full state transfer; gossip implements anti-entropy for the eventual
// model; digest is the parent→child applied-vector heartbeat that closes
// the silent tail-loss window on unreliable transports (§4.2).
const (
	KindBindRequest Kind = iota + 1
	KindBindReply
	KindSubscribe
	KindSubscribeAck
	KindUnsubscribe
	KindReadRequest
	KindReadReply
	KindWriteRequest
	KindWriteReply
	KindUpdate
	KindUpdateAck
	KindInvalidate
	KindNotify
	KindDemandUpdate
	KindStateRequest
	KindStateReply
	KindGossip
	KindGossipReply
	KindUpdateBatch
	KindDigest
	// Name-service kinds (wire v5): the networked naming/location protocol
	// of internal/nameserv. Register/Deregister/Resolve/Lease are
	// client→server RPCs answered by KindNameReply; Digest and Sync are the
	// server↔server directory anti-entropy (the same vector-digest pattern
	// the replica heartbeats use, applied to name records).
	KindNameRegister
	KindNameDeregister
	KindNameResolve
	KindNameLease
	KindNameReply
	KindNameDigest
	KindNameSync
	// Control kinds (wire v5): the daemon control RPC (host/drop a replica
	// at runtime) served by webobj.System.ServeControl.
	KindCtrlRequest
	KindCtrlReply
	kindMax // sentinel, keep last
)

// KindCount is the number of kind values (sentinel included); transports use
// it to size per-kind counter arrays without a map.
const KindCount = int(kindMax)

//globelint:wiresym type=Kind role=names exempt=kindMax
var kindNames = map[Kind]string{
	KindBindRequest:  "bind-request",
	KindBindReply:    "bind-reply",
	KindSubscribe:    "subscribe",
	KindSubscribeAck: "subscribe-ack",
	KindUnsubscribe:  "unsubscribe",
	KindReadRequest:  "read-request",
	KindReadReply:    "read-reply",
	KindWriteRequest: "write-request",
	KindWriteReply:   "write-reply",
	KindUpdate:       "update",
	KindUpdateAck:    "update-ack",
	KindInvalidate:   "invalidate",
	KindNotify:       "notify",
	KindDemandUpdate: "demand-update",
	KindStateRequest: "state-request",
	KindStateReply:   "state-reply",
	KindGossip:       "gossip",
	KindGossipReply:  "gossip-reply",
	KindUpdateBatch:  "update-batch",
	KindDigest:       "digest",

	KindNameRegister:   "name-register",
	KindNameDeregister: "name-deregister",
	KindNameResolve:    "name-resolve",
	KindNameLease:      "name-lease",
	KindNameReply:      "name-reply",
	KindNameDigest:     "name-digest",
	KindNameSync:       "name-sync",
	KindCtrlRequest:    "ctrl-request",
	KindCtrlReply:      "ctrl-reply",
}

// String names the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Valid reports whether k is a defined message kind.
func (k Kind) Valid() bool { return k >= KindBindRequest && k < kindMax }

// Status codes carried in replies.
type Status uint8

// Reply statuses.
const (
	StatusOK Status = iota + 1
	StatusError
	StatusNotFound
	StatusRetry     // requirement not satisfiable now; client may retry
	StatusForbidden // e.g. write by unregistered writer under write-set=single
)

// String names the status.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusError:
		return "error"
	case StatusNotFound:
		return "not-found"
	case StatusRetry:
		return "retry"
	case StatusForbidden:
		return "forbidden"
	default:
		return fmt.Sprintf("Status(%d)", uint8(s))
	}
}

// Invocation is a marshalled method call: the method identifier, the page
// (element of the document) it addresses, and the encoded arguments. The
// replication layer never interprets Args.
type Invocation struct {
	Method uint16
	Page   string
	Args   []byte
}

// BatchUpdate is one aggregated operation inside a KindUpdateBatch frame:
// exactly the per-update metadata a standalone KindUpdate carries, so the
// receiver can fan each entry into the ordering engine as if it had arrived
// alone. Batching amortises the envelope (addresses, vectors, framing) over
// N operations.
type BatchUpdate struct {
	Write     ids.WiD
	GlobalSeq uint64
	Stamp     vclock.Stamp
	Deps      Vec
	Inv       Invocation
	WallNanos int64
}

// Message is the single wire envelope used by every protocol in the
// framework. Fields are populated per kind; unused fields stay zero and
// encode compactly.
type Message struct {
	Kind   Kind
	Object ids.ObjectID

	// From / To are transport addresses; From lets the receiver reply.
	From string
	To   string

	// NetSeq is a sender-assigned per-connection sequence used for
	// duplicate suppression on unreliable transports.
	NetSeq uint64

	// Client identifies the originating client (bind, read, write).
	Client ids.ClientID
	// Store identifies the originating store for store-to-store traffic.
	Store ids.StoreID

	// Write is the write identifier (client, seq) this message creates or
	// carries (write requests, updates, invalidations, notifications).
	Write ids.WiD
	// GlobalSeq is the total-order sequence assigned by the permanent store
	// under the sequential coherence model.
	GlobalSeq uint64
	// Stamp is the Lamport stamp used by the eventual model's LWW rule.
	Stamp vclock.Stamp

	// VVec is a version vector: in updates, the sender's applied vector; in
	// demand-update requests, the requester's current vector (the reply
	// fills the gap); in read requests, the session-guarantee requirement.
	// It is carried as a small-vector Vec so frames decode map-free.
	VVec Vec
	// Deps is the causal dependency vector (causal model, WFR guarantee):
	// the update may be applied only at stores whose applied vector covers
	// Deps.
	Deps Vec
	// ReadDep is the Read-Your-Writes dependency (last write + store where
	// performed) transmitted with read requests, per §4.2.
	ReadDep ids.Dependency

	// Inv is the marshalled invocation (read/write requests, updates
	// carrying the operation).
	Inv Invocation

	// Payload carries reply data, state snapshots, or page content.
	Payload []byte

	// Pages lists page names (invalidations, notifications, gossip
	// digests).
	Pages []string

	// Batch carries the aggregated operations of a KindUpdateBatch frame;
	// nil for every other kind.
	Batch []BatchUpdate

	// WallNanos is the origin wall-clock time (UnixNano) of the write this
	// message carries; used only by metrics to measure staleness.
	WallNanos int64

	// Status and Err report the outcome in replies.
	Status Status
	Err    string

	// Sem names the semantics type of the object ("webdoc", "kvstore",
	// "applog") in bind requests; stores hosting the object under a
	// different type reject the bind. Empty skips the check.
	Sem string
}

// Reply constructs a reply envelope of kind k addressed back to m's sender,
// copying the object and correlation fields.
func (m *Message) Reply(k Kind) *Message {
	return &Message{
		Kind:   k,
		Object: m.Object,
		From:   m.To,
		To:     m.From,
		NetSeq: m.NetSeq,
		Client: m.Client,
		Store:  m.Store,
		Write:  m.Write,
		Status: StatusOK,
	}
}

// ErrShortMessage reports a truncated or corrupt wire message.
var ErrShortMessage = errors.New("msg: short or corrupt message")

// ErrBadVersion reports an unsupported codec version byte.
var ErrBadVersion = errors.New("msg: unsupported wire version")

// wireVersion is the current codec version. Version 5 added the name-service
// kinds (KindName*) and the daemon control kinds (KindCtrl*) — the networked
// naming/location subsystem and runtime replica management; no layout
// change, but a v4 receiver would reject the unknown kinds, so both ends
// must agree on the kind table. Version 4 added the KindDigest
// kind (anti-entropy heartbeats carrying a store's applied vector in VVec;
// no layout change, but a v3 receiver would reject the unknown kind, so both
// ends must agree on the kind table). Version 3 appended the Sem field
// (bind-time semantics type checking). Version 2 appended the
// KindUpdateBatch kind and the trailing batch section to the frame layout.
// Older frames are rejected (no live deployments to stay compatible with —
// the experiment harness always upgrades both ends together).
const wireVersion = 5

// EncodeHook, when non-nil, is invoked once per frame encoding. It exists
// for tests that assert how many times a message was serialised (e.g. that
// multicast encodes exactly once per fan-out); production code leaves it
// nil and pays only a nil check.
var EncodeHook func(*Message)

// wireSize returns the exact encoded length of m, mirroring AppendEncode
// field for field (including its truncation caps). The exempt list below
// names the fixed-size fields whose bytes appear as constant terms rather
// than field references.
//
//globelint:wiresym fields=Message role=size exempt=Kind,NetSeq,Client,Store,Write,GlobalSeq,Stamp,ReadDep,WallNanos,Status
func wireSize(m *Message) int {
	n := 2 // version, kind
	n += 2 + strLen(string(m.Object))
	n += 2 + strLen(m.From)
	n += 2 + strLen(m.To)
	n += 8     // NetSeq
	n += 4 + 4 // Client, Store
	n += 4 + 8 // Write
	n += 8     // GlobalSeq
	n += 8 + 4 // Stamp
	n += 2 + 12*m.VVec.Len()
	n += 2 + 12*m.Deps.Len()
	n += 4 + 8 + 4 // ReadDep
	n += invSize(&m.Inv)
	n += 4 + len(m.Payload)
	n += 2
	for _, p := range capPages(m.Pages) {
		n += 2 + strLen(p)
	}
	n += 8 // WallNanos
	n += 1 // Status
	n += 2 + strLen(m.Err)
	n += 2 + strLen(m.Sem)
	n += 2
	for i := range capBatch(m.Batch) {
		e := &m.Batch[i]
		n += 4 + 8 // Write
		n += 8     // GlobalSeq
		n += 8 + 4 // Stamp
		n += 2 + 12*e.Deps.Len()
		n += invSize(&e.Inv)
		n += 8 // WallNanos
	}
	return n
}

func invSize(inv *Invocation) int {
	return 2 + 2 + strLen(inv.Page) + 4 + len(inv.Args)
}

func strLen(s string) int {
	if len(s) > math.MaxUint16 {
		return math.MaxUint16
	}
	return len(s)
}

// capPages bounds the page list to the u16 count the frame can carry.
func capPages(pages []string) []string {
	if len(pages) > math.MaxUint16 {
		return pages[:math.MaxUint16]
	}
	return pages
}

// MaxBatch is the largest number of entries one KindUpdateBatch frame can
// carry (u16 count on the wire). Senders must split larger flushes across
// frames; capBatch below is a last-resort guard, not a splitting mechanism.
const MaxBatch = math.MaxUint16

// capBatch bounds the batch to the u16 count the frame can carry.
func capBatch(batch []BatchUpdate) []BatchUpdate {
	if len(batch) > MaxBatch {
		return batch[:MaxBatch]
	}
	return batch
}

// AppendEncode serialises m onto dst and returns the extended slice. Callers
// that know the target buffer (pooled or pre-sized) avoid every intermediate
// allocation; Encode and EncodePooled are both built on it.
//
//globelint:wiresym fields=Message role=encode
func AppendEncode(dst []byte, m *Message) []byte {
	if EncodeHook != nil {
		EncodeHook(m)
	}
	w := writer{buf: dst}
	w.u8(wireVersion)
	w.u8(uint8(m.Kind))
	w.str(string(m.Object))
	w.str(m.From)
	w.str(m.To)
	w.u64(m.NetSeq)
	w.u32(uint32(m.Client))
	w.u32(uint32(m.Store))
	w.u32(uint32(m.Write.Client))
	w.u64(m.Write.Seq)
	w.u64(m.GlobalSeq)
	w.u64(m.Stamp.Time)
	w.u32(uint32(m.Stamp.Client))
	w.vecV(&m.VVec)
	w.vecV(&m.Deps)
	w.u32(uint32(m.ReadDep.Write.Client))
	w.u64(m.ReadDep.Write.Seq)
	w.u32(uint32(m.ReadDep.Store))
	w.inv(&m.Inv)
	w.bytes(m.Payload)
	pages := capPages(m.Pages)
	w.u16(uint16(len(pages)))
	for _, p := range pages {
		w.str(p)
	}
	w.u64(uint64(m.WallNanos))
	w.u8(uint8(m.Status))
	w.str(m.Err)
	w.str(m.Sem)
	batch := capBatch(m.Batch)
	w.u16(uint16(len(batch)))
	for i := range batch {
		e := &batch[i]
		w.u32(uint32(e.Write.Client))
		w.u64(e.Write.Seq)
		w.u64(e.GlobalSeq)
		w.u64(e.Stamp.Time)
		w.u32(uint32(e.Stamp.Client))
		w.vecV(&e.Deps)
		w.inv(&e.Inv)
		w.u64(uint64(e.WallNanos))
	}
	return w.buf
}

// Encode serialises m into a fresh exact-size buffer: one allocation per
// frame.
func Encode(m *Message) []byte {
	return AppendEncode(make([]byte, 0, wireSize(m)), m)
}

// WireBuf is a pooled encode buffer handed out by EncodePooled. The caller
// owns Bytes() until Release; after Release the contents must not be
// touched.
type WireBuf struct {
	b []byte
}

// Bytes returns the encoded frame.
func (w *WireBuf) Bytes() []byte { return w.b }

// wirePool recycles encode buffers across frames.
var wirePool = sync.Pool{New: func() any { return new(WireBuf) }}

// maxPooledBuf bounds the capacity retained by the pool so one huge
// snapshot frame does not pin memory forever.
const maxPooledBuf = 1 << 20

// EncodePooled serialises m into a buffer drawn from a package-level pool.
// It is the transports' zero-steady-state-allocation fast path: call Release
// exactly once when the wire bytes have been fully consumed (written to the
// socket or copied).
func EncodePooled(m *Message) *WireBuf {
	w := wirePool.Get().(*WireBuf)
	need := wireSize(m)
	if cap(w.b) < need {
		w.b = make([]byte, 0, need)
	}
	w.b = AppendEncode(w.b[:0], m)
	return w
}

// Release returns the buffer to the pool.
func (w *WireBuf) Release() {
	if cap(w.b) > maxPooledBuf {
		w.b = nil // let the outsized backing array go
	}
	wirePool.Put(w)
}

// Decode parses a wire message produced by Encode. Variable-length content
// (Args, Payload) is copied out of b, so the caller may reuse b afterwards.
func Decode(b []byte) (*Message, error) {
	return decode(b, false)
}

// DecodeAlias parses like Decode but aliases b for Args and Payload instead
// of copying. It is safe only when the frame is immutable for the lifetime
// of the message — true for memnet, whose scheduler never reuses a
// delivered frame, and for tcpnet, whose readers carve each frame out of a
// handoff chunk that is abandoned (never rewritten) once full.
func DecodeAlias(b []byte) (*Message, error) {
	return decode(b, true)
}

//globelint:wiresym fields=Message role=decode
func decode(b []byte, alias bool) (*Message, error) {
	r := reader{buf: b, alias: alias}
	v, err := r.u8()
	if err != nil {
		return nil, err
	}
	if v != wireVersion {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, v)
	}
	m := &Message{}
	k, err := r.u8()
	if err != nil {
		return nil, err
	}
	m.Kind = Kind(k)
	if !m.Kind.Valid() {
		return nil, fmt.Errorf("%w: invalid kind %d", ErrShortMessage, k)
	}
	obj, err := r.str()
	if err != nil {
		return nil, err
	}
	m.Object = ids.ObjectID(obj)
	if m.From, err = r.str(); err != nil {
		return nil, err
	}
	if m.To, err = r.str(); err != nil {
		return nil, err
	}
	if m.NetSeq, err = r.u64(); err != nil {
		return nil, err
	}
	cl, err := r.u32()
	if err != nil {
		return nil, err
	}
	m.Client = ids.ClientID(cl)
	st, err := r.u32()
	if err != nil {
		return nil, err
	}
	m.Store = ids.StoreID(st)
	wc, err := r.u32()
	if err != nil {
		return nil, err
	}
	ws, err := r.u64()
	if err != nil {
		return nil, err
	}
	m.Write = ids.WiD{Client: ids.ClientID(wc), Seq: ws}
	if m.GlobalSeq, err = r.u64(); err != nil {
		return nil, err
	}
	stime, err := r.u64()
	if err != nil {
		return nil, err
	}
	sclient, err := r.u32()
	if err != nil {
		return nil, err
	}
	m.Stamp = vclock.Stamp{Time: stime, Client: ids.ClientID(sclient)}
	if err := r.vecInto(&m.VVec); err != nil {
		return nil, err
	}
	if err := r.vecInto(&m.Deps); err != nil {
		return nil, err
	}
	rdc, err := r.u32()
	if err != nil {
		return nil, err
	}
	rds, err := r.u64()
	if err != nil {
		return nil, err
	}
	rdst, err := r.u32()
	if err != nil {
		return nil, err
	}
	m.ReadDep = ids.Dependency{
		Write: ids.WiD{Client: ids.ClientID(rdc), Seq: rds},
		Store: ids.StoreID(rdst),
	}
	if m.Inv.Method, err = r.u16(); err != nil {
		return nil, err
	}
	if m.Inv.Page, err = r.str(); err != nil {
		return nil, err
	}
	if m.Inv.Args, err = r.bytes(); err != nil {
		return nil, err
	}
	if m.Payload, err = r.bytes(); err != nil {
		return nil, err
	}
	np, err := r.u16()
	if err != nil {
		return nil, err
	}
	if np > 0 {
		m.Pages = make([]string, np)
		for i := range m.Pages {
			if m.Pages[i], err = r.str(); err != nil {
				return nil, err
			}
		}
	}
	wn, err := r.u64()
	if err != nil {
		return nil, err
	}
	m.WallNanos = int64(wn)
	sb, err := r.u8()
	if err != nil {
		return nil, err
	}
	m.Status = Status(sb)
	if m.Err, err = r.str(); err != nil {
		return nil, err
	}
	if m.Sem, err = r.str(); err != nil {
		return nil, err
	}
	nb, err := r.u16()
	if err != nil {
		return nil, err
	}
	if nb > 0 {
		// Don't let a corrupt count amplify into a huge allocation: every
		// entry occupies at least minBatchEntry wire bytes, so cap the
		// pre-allocation by what the remaining frame could actually hold
		// (a short frame then fails on the first missing entry).
		const minBatchEntry = 50
		capHint := int(nb)
		if max := r.remaining() / minBatchEntry; capHint > max {
			capHint = max
		}
		m.Batch = make([]BatchUpdate, 0, capHint)
		for i := 0; i < int(nb); i++ {
			m.Batch = append(m.Batch, BatchUpdate{})
			e := &m.Batch[len(m.Batch)-1]
			bc, err := r.u32()
			if err != nil {
				return nil, err
			}
			if e.Write.Seq, err = r.u64(); err != nil {
				return nil, err
			}
			e.Write.Client = ids.ClientID(bc)
			if e.GlobalSeq, err = r.u64(); err != nil {
				return nil, err
			}
			bst, err := r.u64()
			if err != nil {
				return nil, err
			}
			bsc, err := r.u32()
			if err != nil {
				return nil, err
			}
			e.Stamp = vclock.Stamp{Time: bst, Client: ids.ClientID(bsc)}
			if err := r.vecInto(&e.Deps); err != nil {
				return nil, err
			}
			if e.Inv.Method, err = r.u16(); err != nil {
				return nil, err
			}
			if e.Inv.Page, err = r.str(); err != nil {
				return nil, err
			}
			if e.Inv.Args, err = r.bytes(); err != nil {
				return nil, err
			}
			bwn, err := r.u64()
			if err != nil {
				return nil, err
			}
			e.WallNanos = int64(bwn)
		}
	}
	if !r.empty() {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrShortMessage, r.remaining())
	}
	return m, nil
}

// WireSize returns the encoded size of m in bytes without encoding; used by
// the metrics layer for byte accounting.
func WireSize(m *Message) int { return wireSize(m) }
