// Package msg defines the wire messages exchanged between the parts of a
// distributed shared Web object, and a compact binary codec for them.
//
// The paper requires that communication and replication objects are unaware
// of the methods and state of the semantics object: "both the communication
// object and the replication object operate only on invocation messages in
// which method identifiers and parameters have been encoded". Invocation is
// exactly that encoding; Message wraps an Invocation (or coherence payload)
// with the replication metadata — write identifiers, version vectors, causal
// dependency vectors, and session-guarantee requirements.
package msg

import (
	"errors"
	"fmt"

	"repro/internal/ids"
	"repro/internal/vclock"
)

// Kind discriminates message types.
type Kind uint8

// Message kinds. Binding and subscription manage the store/replica graph;
// read/write carry client invocations; update/invalidate/notify/demand are
// the coherence-transfer messages of Table 1; state request/reply implement
// full state transfer; gossip implements anti-entropy for the eventual
// model.
const (
	KindBindRequest Kind = iota + 1
	KindBindReply
	KindSubscribe
	KindSubscribeAck
	KindUnsubscribe
	KindReadRequest
	KindReadReply
	KindWriteRequest
	KindWriteReply
	KindUpdate
	KindUpdateAck
	KindInvalidate
	KindNotify
	KindDemandUpdate
	KindStateRequest
	KindStateReply
	KindGossip
	KindGossipReply
	kindMax // sentinel, keep last
)

var kindNames = map[Kind]string{
	KindBindRequest:  "bind-request",
	KindBindReply:    "bind-reply",
	KindSubscribe:    "subscribe",
	KindSubscribeAck: "subscribe-ack",
	KindUnsubscribe:  "unsubscribe",
	KindReadRequest:  "read-request",
	KindReadReply:    "read-reply",
	KindWriteRequest: "write-request",
	KindWriteReply:   "write-reply",
	KindUpdate:       "update",
	KindUpdateAck:    "update-ack",
	KindInvalidate:   "invalidate",
	KindNotify:       "notify",
	KindDemandUpdate: "demand-update",
	KindStateRequest: "state-request",
	KindStateReply:   "state-reply",
	KindGossip:       "gossip",
	KindGossipReply:  "gossip-reply",
}

// String names the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Valid reports whether k is a defined message kind.
func (k Kind) Valid() bool { return k >= KindBindRequest && k < kindMax }

// Status codes carried in replies.
type Status uint8

// Reply statuses.
const (
	StatusOK Status = iota + 1
	StatusError
	StatusNotFound
	StatusRetry     // requirement not satisfiable now; client may retry
	StatusForbidden // e.g. write by unregistered writer under write-set=single
)

// String names the status.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusError:
		return "error"
	case StatusNotFound:
		return "not-found"
	case StatusRetry:
		return "retry"
	case StatusForbidden:
		return "forbidden"
	default:
		return fmt.Sprintf("Status(%d)", uint8(s))
	}
}

// Invocation is a marshalled method call: the method identifier, the page
// (element of the document) it addresses, and the encoded arguments. The
// replication layer never interprets Args.
type Invocation struct {
	Method uint16
	Page   string
	Args   []byte
}

// Message is the single wire envelope used by every protocol in the
// framework. Fields are populated per kind; unused fields stay zero and
// encode compactly.
type Message struct {
	Kind   Kind
	Object ids.ObjectID

	// From / To are transport addresses; From lets the receiver reply.
	From string
	To   string

	// NetSeq is a sender-assigned per-connection sequence used for
	// duplicate suppression on unreliable transports.
	NetSeq uint64

	// Client identifies the originating client (bind, read, write).
	Client ids.ClientID
	// Store identifies the originating store for store-to-store traffic.
	Store ids.StoreID

	// Write is the write identifier (client, seq) this message creates or
	// carries (write requests, updates, invalidations, notifications).
	Write ids.WiD
	// GlobalSeq is the total-order sequence assigned by the permanent store
	// under the sequential coherence model.
	GlobalSeq uint64
	// Stamp is the Lamport stamp used by the eventual model's LWW rule.
	Stamp vclock.Stamp

	// VVec is a version vector: in updates, the sender's applied vector; in
	// demand-update requests, the requester's current vector (the reply
	// fills the gap); in read requests, the session-guarantee requirement.
	VVec ids.VersionVec
	// Deps is the causal dependency vector (causal model, WFR guarantee):
	// the update may be applied only at stores whose applied vector covers
	// Deps.
	Deps vclock.VC
	// ReadDep is the Read-Your-Writes dependency (last write + store where
	// performed) transmitted with read requests, per §4.2.
	ReadDep ids.Dependency

	// Inv is the marshalled invocation (read/write requests, updates
	// carrying the operation).
	Inv Invocation

	// Payload carries reply data, state snapshots, or page content.
	Payload []byte

	// Pages lists page names (invalidations, notifications, gossip
	// digests).
	Pages []string

	// WallNanos is the origin wall-clock time (UnixNano) of the write this
	// message carries; used only by metrics to measure staleness.
	WallNanos int64

	// Status and Err report the outcome in replies.
	Status Status
	Err    string
}

// Reply constructs a reply envelope of kind k addressed back to m's sender,
// copying the object and correlation fields.
func (m *Message) Reply(k Kind) *Message {
	return &Message{
		Kind:   k,
		Object: m.Object,
		From:   m.To,
		To:     m.From,
		NetSeq: m.NetSeq,
		Client: m.Client,
		Store:  m.Store,
		Write:  m.Write,
		Status: StatusOK,
	}
}

// ErrShortMessage reports a truncated or corrupt wire message.
var ErrShortMessage = errors.New("msg: short or corrupt message")

// ErrBadVersion reports an unsupported codec version byte.
var ErrBadVersion = errors.New("msg: unsupported wire version")

// wireVersion is the current codec version.
const wireVersion = 1

// Encode serialises m into a fresh buffer.
func Encode(m *Message) []byte {
	var w writer
	w.buf = make([]byte, 0, 64+len(m.Payload)+len(m.Inv.Args))
	w.u8(wireVersion)
	w.u8(uint8(m.Kind))
	w.str(string(m.Object))
	w.str(m.From)
	w.str(m.To)
	w.u64(m.NetSeq)
	w.u32(uint32(m.Client))
	w.u32(uint32(m.Store))
	w.u32(uint32(m.Write.Client))
	w.u64(m.Write.Seq)
	w.u64(m.GlobalSeq)
	w.u64(m.Stamp.Time)
	w.u32(uint32(m.Stamp.Client))
	w.vec(map[ids.ClientID]uint64(m.VVec))
	w.vec(map[ids.ClientID]uint64(m.Deps))
	w.u32(uint32(m.ReadDep.Write.Client))
	w.u64(m.ReadDep.Write.Seq)
	w.u32(uint32(m.ReadDep.Store))
	w.u16(m.Inv.Method)
	w.str(m.Inv.Page)
	w.bytes(m.Inv.Args)
	w.bytes(m.Payload)
	w.u16(uint16(len(m.Pages)))
	for _, p := range m.Pages {
		w.str(p)
	}
	w.u64(uint64(m.WallNanos))
	w.u8(uint8(m.Status))
	w.str(m.Err)
	return w.buf
}

// Decode parses a wire message produced by Encode.
func Decode(b []byte) (*Message, error) {
	r := reader{buf: b}
	v, err := r.u8()
	if err != nil {
		return nil, err
	}
	if v != wireVersion {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, v)
	}
	m := &Message{}
	k, err := r.u8()
	if err != nil {
		return nil, err
	}
	m.Kind = Kind(k)
	if !m.Kind.Valid() {
		return nil, fmt.Errorf("%w: invalid kind %d", ErrShortMessage, k)
	}
	obj, err := r.str()
	if err != nil {
		return nil, err
	}
	m.Object = ids.ObjectID(obj)
	if m.From, err = r.str(); err != nil {
		return nil, err
	}
	if m.To, err = r.str(); err != nil {
		return nil, err
	}
	if m.NetSeq, err = r.u64(); err != nil {
		return nil, err
	}
	cl, err := r.u32()
	if err != nil {
		return nil, err
	}
	m.Client = ids.ClientID(cl)
	st, err := r.u32()
	if err != nil {
		return nil, err
	}
	m.Store = ids.StoreID(st)
	wc, err := r.u32()
	if err != nil {
		return nil, err
	}
	ws, err := r.u64()
	if err != nil {
		return nil, err
	}
	m.Write = ids.WiD{Client: ids.ClientID(wc), Seq: ws}
	if m.GlobalSeq, err = r.u64(); err != nil {
		return nil, err
	}
	stime, err := r.u64()
	if err != nil {
		return nil, err
	}
	sclient, err := r.u32()
	if err != nil {
		return nil, err
	}
	m.Stamp = vclock.Stamp{Time: stime, Client: ids.ClientID(sclient)}
	vv, err := r.vec()
	if err != nil {
		return nil, err
	}
	if len(vv) > 0 {
		m.VVec = ids.VersionVec(vv)
	}
	dv, err := r.vec()
	if err != nil {
		return nil, err
	}
	if len(dv) > 0 {
		m.Deps = vclock.VC(dv)
	}
	rdc, err := r.u32()
	if err != nil {
		return nil, err
	}
	rds, err := r.u64()
	if err != nil {
		return nil, err
	}
	rdst, err := r.u32()
	if err != nil {
		return nil, err
	}
	m.ReadDep = ids.Dependency{
		Write: ids.WiD{Client: ids.ClientID(rdc), Seq: rds},
		Store: ids.StoreID(rdst),
	}
	if m.Inv.Method, err = r.u16(); err != nil {
		return nil, err
	}
	if m.Inv.Page, err = r.str(); err != nil {
		return nil, err
	}
	if m.Inv.Args, err = r.bytes(); err != nil {
		return nil, err
	}
	if m.Payload, err = r.bytes(); err != nil {
		return nil, err
	}
	np, err := r.u16()
	if err != nil {
		return nil, err
	}
	if np > 0 {
		m.Pages = make([]string, np)
		for i := range m.Pages {
			if m.Pages[i], err = r.str(); err != nil {
				return nil, err
			}
		}
	}
	wn, err := r.u64()
	if err != nil {
		return nil, err
	}
	m.WallNanos = int64(wn)
	sb, err := r.u8()
	if err != nil {
		return nil, err
	}
	m.Status = Status(sb)
	if m.Err, err = r.str(); err != nil {
		return nil, err
	}
	if !r.empty() {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrShortMessage, r.remaining())
	}
	return m, nil
}

// WireSize returns the encoded size of m in bytes without retaining the
// buffer; used by the metrics layer for byte accounting.
func WireSize(m *Message) int { return len(Encode(m)) }
