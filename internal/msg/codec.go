package msg

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"unsafe"

	"repro/internal/ids"
)

// writer accumulates the big-endian wire encoding.
type writer struct {
	buf []byte
}

func (w *writer) u8(v uint8)   { w.buf = append(w.buf, v) }
func (w *writer) u16(v uint16) { w.buf = binary.BigEndian.AppendUint16(w.buf, v) }
func (w *writer) u32(v uint32) { w.buf = binary.BigEndian.AppendUint32(w.buf, v) }
func (w *writer) u64(v uint64) { w.buf = binary.BigEndian.AppendUint64(w.buf, v) }

// str encodes a string with a u16 length prefix. Strings longer than 64 KiB
// are not used by any protocol message; encode truncates defensively rather
// than corrupting the frame.
func (w *writer) str(s string) {
	if len(s) > math.MaxUint16 {
		s = s[:math.MaxUint16]
	}
	w.u16(uint16(len(s)))
	w.buf = append(w.buf, s...)
}

// bytes encodes a byte slice with a u32 length prefix.
func (w *writer) bytes(b []byte) {
	w.u32(uint32(len(b)))
	w.buf = append(w.buf, b...)
}

// inv encodes a marshalled invocation.
func (w *writer) inv(inv *Invocation) {
	w.u16(inv.Method)
	w.str(inv.Page)
	w.bytes(inv.Args)
}

// vecV encodes a Vec: inline entries are already sorted by client, so they
// stream straight out; spilled vectors fall back to the sorted-map path.
func (w *writer) vecV(v *Vec) {
	if v.spill != nil {
		w.vec(v.spill)
		return
	}
	w.u16(uint16(v.n))
	for i := 0; i < v.n; i++ {
		w.u32(uint32(v.inline[i].Client))
		w.u64(v.inline[i].Seq)
	}
}

// smallVec is the map size up to which vec emits sorted entries by repeated
// selection (O(n²) but allocation-free) instead of building a sort slice.
// Version vectors in practice hold a handful of clients.
const smallVec = 16

// vec encodes a client->seq map deterministically (sorted by client).
func (w *writer) vec(v map[ids.ClientID]uint64) {
	w.u16(uint16(len(v)))
	if len(v) == 0 {
		return
	}
	if len(v) <= smallVec {
		var keys [smallVec]ids.ClientID
		n := 0
		for c := range v {
			keys[n] = c
			n++
		}
		ks := keys[:n]
		for i := 1; i < n; i++ {
			for j := i; j > 0 && ks[j] < ks[j-1]; j-- {
				ks[j], ks[j-1] = ks[j-1], ks[j]
			}
		}
		for _, c := range ks {
			w.u32(uint32(c))
			w.u64(v[c])
		}
		return
	}
	clients := make([]ids.ClientID, 0, len(v))
	for c := range v {
		clients = append(clients, c)
	}
	sort.Slice(clients, func(i, j int) bool { return clients[i] < clients[j] })
	for _, c := range clients {
		w.u32(uint32(c))
		w.u64(v[c])
	}
}

// reader consumes the wire encoding with bounds checks. With alias set,
// byte-slice fields are returned as sub-slices of buf instead of copies
// (zero-copy decode; the caller promises buf is immutable).
type reader struct {
	buf   []byte
	off   int
	alias bool
}

func (r *reader) need(n int) error {
	if r.off+n > len(r.buf) {
		return fmt.Errorf("%w: need %d bytes at offset %d of %d", ErrShortMessage, n, r.off, len(r.buf))
	}
	return nil
}

func (r *reader) u8() (uint8, error) {
	if err := r.need(1); err != nil {
		return 0, err
	}
	v := r.buf[r.off]
	r.off++
	return v, nil
}

func (r *reader) u16() (uint16, error) {
	if err := r.need(2); err != nil {
		return 0, err
	}
	v := binary.BigEndian.Uint16(r.buf[r.off:])
	r.off += 2
	return v, nil
}

func (r *reader) u32() (uint32, error) {
	if err := r.need(4); err != nil {
		return 0, err
	}
	v := binary.BigEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v, nil
}

func (r *reader) u64() (uint64, error) {
	if err := r.need(8); err != nil {
		return 0, err
	}
	v := binary.BigEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v, nil
}

func (r *reader) str() (string, error) {
	n, err := r.u16()
	if err != nil {
		return "", err
	}
	if err := r.need(int(n)); err != nil {
		return "", err
	}
	if n == 0 {
		return "", nil
	}
	if r.alias {
		// The alias contract promises buf is immutable for the lifetime of
		// the decoded message, which is exactly the guarantee a string
		// header needs — so string fields decode zero-copy too.
		s := unsafe.String(&r.buf[r.off], int(n))
		r.off += int(n)
		return s, nil
	}
	s := string(r.buf[r.off : r.off+int(n)])
	r.off += int(n)
	return s, nil
}

func (r *reader) bytes() ([]byte, error) {
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	if err := r.need(int(n)); err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	if r.alias {
		b := r.buf[r.off : r.off+int(n) : r.off+int(n)]
		r.off += int(n)
		return b, nil
	}
	b := make([]byte, n)
	copy(b, r.buf[r.off:])
	r.off += int(n)
	return b, nil
}

// vecInto decodes a vector in place. Vectors that fit the inline array
// allocate nothing — this is the small-vector fast path that keeps
// DecodeAlias map-free; larger vectors spill to a map.
func (r *reader) vecInto(v *Vec) error {
	n, err := r.u16()
	if err != nil {
		return err
	}
	if n == 0 {
		return nil
	}
	if int(n) > VecInline {
		// Bound the pre-allocation by what the remaining frame could hold
		// (12 wire bytes per entry), so a corrupt count cannot amplify.
		capHint := int(n)
		if max := r.remaining() / 12; capHint > max {
			capHint = max
		}
		v.spill = make(map[ids.ClientID]uint64, capHint)
	}
	for i := 0; i < int(n); i++ {
		c, err := r.u32()
		if err != nil {
			return err
		}
		s, err := r.u64()
		if err != nil {
			return err
		}
		v.Set(ids.ClientID(c), s)
	}
	return nil
}

func (r *reader) empty() bool    { return r.off == len(r.buf) }
func (r *reader) remaining() int { return len(r.buf) - r.off }
