package msg

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/ids"
	"repro/internal/vclock"
)

func sampleMessage() *Message {
	return &Message{
		Kind:      KindUpdate,
		Object:    "conf-page",
		From:      "store-1",
		To:        "cache-2",
		NetSeq:    42,
		Client:    7,
		Store:     3,
		Write:     ids.WiD{Client: 7, Seq: 19},
		GlobalSeq: 101,
		Stamp:     vclock.Stamp{Time: 55, Client: 7},
		VVec:      VecFrom(ids.VersionVec{7: 19, 2: 4}),
		Deps:      VecFrom(vclock.VC{2: 4}),
		ReadDep:   ids.Dependency{Write: ids.WiD{Client: 7, Seq: 18}, Store: 3},
		Inv:       Invocation{Method: 2, Page: "program.html", Args: []byte("<h1>v19</h1>")},
		Payload:   []byte{0x01, 0x02, 0x03},
		Pages:     []string{"program.html", "index.html"},
		WallNanos: 1234567890,
		Status:    StatusOK,
		Err:       "",
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	m := sampleMessage()
	got, err := Decode(Encode(m))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, m)
	}
}

func TestEncodeDecodeZeroFields(t *testing.T) {
	m := &Message{Kind: KindReadRequest, Object: "o"}
	got, err := Decode(Encode(m))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.Kind != KindReadRequest || got.Object != "o" {
		t.Fatalf("basic fields lost: %+v", got)
	}
	if got.VVec.Len() != 0 || got.Deps.Len() != 0 || got.Pages != nil || got.Payload != nil {
		t.Fatalf("zero-value fields should decode as empty: %+v", got)
	}
}

func TestDecodeRejectsBadVersion(t *testing.T) {
	b := Encode(sampleMessage())
	b[0] = 99
	if _, err := Decode(b); err == nil || !strings.Contains(err.Error(), "wire version") {
		t.Fatalf("want bad-version error, got %v", err)
	}
}

func TestDecodeRejectsInvalidKind(t *testing.T) {
	b := Encode(sampleMessage())
	b[1] = 0
	if _, err := Decode(b); err == nil {
		t.Fatalf("want invalid-kind error")
	}
	b[1] = uint8(kindMax)
	if _, err := Decode(b); err == nil {
		t.Fatalf("want invalid-kind error for kindMax")
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	full := Encode(sampleMessage())
	for cut := 0; cut < len(full); cut++ {
		if _, err := Decode(full[:cut]); err == nil {
			t.Fatalf("truncation at %d bytes not detected", cut)
		}
	}
}

func TestDecodeRejectsTrailingGarbage(t *testing.T) {
	b := append(Encode(sampleMessage()), 0xFF)
	if _, err := Decode(b); err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Fatalf("want trailing-bytes error, got %v", err)
	}
}

func TestReplyCorrelation(t *testing.T) {
	m := sampleMessage()
	r := m.Reply(KindUpdateAck)
	if r.Kind != KindUpdateAck {
		t.Fatalf("reply kind = %v", r.Kind)
	}
	if r.To != m.From || r.From != m.To {
		t.Fatalf("reply addressing wrong: %q->%q", r.From, r.To)
	}
	if r.Object != m.Object || r.NetSeq != m.NetSeq || r.Write != m.Write {
		t.Fatalf("reply lost correlation fields")
	}
	if r.Status != StatusOK {
		t.Fatalf("reply status = %v, want ok", r.Status)
	}
}

func TestKindAndStatusStrings(t *testing.T) {
	for k := KindBindRequest; k < kindMax; k++ {
		if !k.Valid() {
			t.Fatalf("kind %d should be valid", k)
		}
		if strings.HasPrefix(k.String(), "Kind(") {
			t.Fatalf("kind %d has no name", k)
		}
	}
	if Kind(0).Valid() || kindMax.Valid() {
		t.Fatalf("out-of-range kinds must be invalid")
	}
	if Kind(200).String() != "Kind(200)" {
		t.Fatalf("unknown kind String misformatted")
	}
	for _, s := range []Status{StatusOK, StatusError, StatusNotFound, StatusRetry, StatusForbidden} {
		if strings.HasPrefix(s.String(), "Status(") {
			t.Fatalf("status %d has no name", s)
		}
	}
	if Status(200).String() != "Status(200)" {
		t.Fatalf("unknown status String misformatted")
	}
}

func TestEncodingDeterministic(t *testing.T) {
	m := sampleMessage()
	a := Encode(m)
	b := Encode(m)
	if !bytes.Equal(a, b) {
		t.Fatalf("encoding not deterministic")
	}
}

func TestWireSizeMatchesEncoding(t *testing.T) {
	m := sampleMessage()
	if got, want := WireSize(m), len(Encode(m)); got != want {
		t.Fatalf("WireSize = %d, want %d", got, want)
	}
}

// quickMessage builds a Message from fuzz inputs, keeping fields within the
// codec's documented ranges.
func quickMessage(kind uint8, obj, from, to, page, errStr string, netSeq, wSeq, gSeq, sTime, wall uint64,
	client, store, wClient uint32, method uint16, args, payload []byte, vv map[uint8]uint16, pages []string) *Message {
	k := Kind(kind%uint8(kindMax-1)) + KindBindRequest
	m := &Message{
		Kind:      k,
		Object:    ids.ObjectID(obj),
		From:      from,
		To:        to,
		NetSeq:    netSeq,
		Client:    ids.ClientID(client),
		Store:     ids.StoreID(store),
		Write:     ids.WiD{Client: ids.ClientID(wClient), Seq: wSeq},
		GlobalSeq: gSeq,
		Stamp:     vclock.Stamp{Time: sTime, Client: ids.ClientID(client)},
		Inv:       Invocation{Method: method, Page: page, Args: args},
		Payload:   payload,
		WallNanos: int64(wall),
		Status:    StatusOK,
		Err:       errStr,
	}
	for c, s := range vv {
		if s > 0 {
			m.VVec.Set(ids.ClientID(c), uint64(s))
		}
	}
	if len(pages) > 0 {
		// The codec caps page lists at 64K entries and strings at 64K bytes.
		if len(pages) > 100 {
			pages = pages[:100]
		}
		m.Pages = make([]string, len(pages))
		for i, p := range pages {
			if len(p) > 1000 {
				p = p[:1000]
			}
			m.Pages[i] = p
		}
	}
	return m
}

// Property: Decode(Encode(m)) == m for arbitrary messages.
func TestRoundTripProperty(t *testing.T) {
	f := func(kind uint8, obj, from, to, page, errStr string, netSeq, wSeq, gSeq, sTime, wall uint64,
		client, store, wClient uint32, method uint16, args, payload []byte, vv map[uint8]uint16, pages []string) bool {
		m := quickMessage(kind, obj, from, to, page, errStr, netSeq, wSeq, gSeq, sTime, wall,
			client, store, wClient, method, args, payload, vv, pages)
		got, err := Decode(Encode(m))
		if err != nil {
			t.Logf("decode error: %v", err)
			return false
		}
		// Normalise empty slices: codec decodes empty as nil.
		if len(m.Inv.Args) == 0 {
			m.Inv.Args = nil
		}
		if len(m.Payload) == 0 {
			m.Payload = nil
		}
		if len(m.Pages) == 0 {
			m.Pages = nil
		}
		return reflect.DeepEqual(m, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Decode never panics on arbitrary byte soup.
func TestDecodeNeverPanics(t *testing.T) {
	f := func(b []byte) bool {
		_, _ = Decode(b) // must not panic; errors are fine
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// --- batch frames, pooled encode, zero-copy decode ----------------------------

func sampleBatchMessage() *Message {
	m := &Message{
		Kind:   KindUpdateBatch,
		Object: "conf-page",
		From:   "store-1",
		To:     "cache-2",
		Store:  3,
	}
	for i := 1; i <= 3; i++ {
		m.Batch = append(m.Batch, BatchUpdate{
			Write:     ids.WiD{Client: 7, Seq: uint64(i)},
			GlobalSeq: uint64(100 + i),
			Stamp:     vclock.Stamp{Time: uint64(50 + i), Client: 7},
			Deps:      VecFrom(vclock.VC{2: uint64(i)}),
			Inv:       Invocation{Method: 2, Page: "program.html", Args: []byte("delta")},
			WallNanos: int64(1000 + i),
		})
	}
	return m
}

func TestBatchRoundTrip(t *testing.T) {
	m := sampleBatchMessage()
	got, err := Decode(Encode(m))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("batch round trip mismatch:\n got %+v\nwant %+v", got, m)
	}
}

func TestBatchWireSizeMatchesEncoding(t *testing.T) {
	m := sampleBatchMessage()
	if got, want := WireSize(m), len(Encode(m)); got != want {
		t.Fatalf("WireSize = %d, want %d", got, want)
	}
}

func TestBatchTruncationDetected(t *testing.T) {
	full := Encode(sampleBatchMessage())
	for cut := 0; cut < len(full); cut++ {
		if _, err := Decode(full[:cut]); err == nil {
			t.Fatalf("truncation at %d bytes not detected", cut)
		}
	}
}

// TestAllKindsRoundTrip exercises the codec for every defined kind.
func TestAllKindsRoundTrip(t *testing.T) {
	for k := KindBindRequest; k < kindMax; k++ {
		m := sampleMessage()
		m.Kind = k
		if k == KindUpdateBatch {
			m = sampleBatchMessage()
		}
		got, err := Decode(Encode(m))
		if err != nil {
			t.Fatalf("kind %v: %v", k, err)
		}
		if !reflect.DeepEqual(m, got) {
			t.Fatalf("kind %v round trip mismatch", k)
		}
	}
}

// TestEncodeExactSize: Encode allocates exactly the wire size, nothing more.
func TestEncodeExactSize(t *testing.T) {
	for _, m := range []*Message{sampleMessage(), sampleBatchMessage(), {Kind: KindReadRequest}} {
		b := Encode(m)
		if len(b) != cap(b) {
			t.Fatalf("kind %v: encode over-allocated: len %d cap %d", m.Kind, len(b), cap(b))
		}
	}
}

func TestEncodePooledMatchesEncode(t *testing.T) {
	m := sampleMessage()
	want := Encode(m)
	for i := 0; i < 3; i++ { // cycle the pool to catch stale-buffer bugs
		wb := EncodePooled(m)
		if !bytes.Equal(wb.Bytes(), want) {
			t.Fatalf("pooled encoding differs on cycle %d", i)
		}
		wb.Release()
	}
	// A smaller message after a big one must not leak stale bytes.
	small := &Message{Kind: KindReadRequest, Object: "o"}
	wb := EncodePooled(small)
	defer wb.Release()
	if !bytes.Equal(wb.Bytes(), Encode(small)) {
		t.Fatalf("pooled encoding of small message after large one differs")
	}
}

func TestDecodeAliasSharesPayload(t *testing.T) {
	m := sampleMessage()
	wire := Encode(m)
	got, err := DecodeAlias(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("alias decode mismatch:\n got %+v\nwant %+v", got, m)
	}
	// Args and Payload must alias the frame: flipping a frame byte shows
	// through (this is the documented contract — callers promise the frame
	// is immutable).
	got.Payload[0] ^= 0xFF
	if copied, _ := Decode(wire); bytes.Equal(copied.Payload, m.Payload) {
		t.Fatalf("DecodeAlias copied Payload instead of aliasing")
	}
	got.Payload[0] ^= 0xFF // restore
	// Plain Decode must keep copying.
	cp, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	cp.Payload[0] ^= 0xFF
	if re, _ := Decode(wire); !bytes.Equal(re.Payload, m.Payload) {
		t.Fatalf("Decode aliased the frame")
	}
}

// Property: batch entries survive the round trip for arbitrary inputs.
func TestBatchRoundTripProperty(t *testing.T) {
	f := func(entries []struct {
		Client uint32
		Seq    uint64
		Method uint16
		Page   string
		Args   []byte
		Wall   uint64
	}) bool {
		if len(entries) > 200 {
			entries = entries[:200]
		}
		m := &Message{Kind: KindUpdateBatch, Object: "o"}
		for _, e := range entries {
			page := e.Page
			if len(page) > 1000 {
				page = page[:1000]
			}
			m.Batch = append(m.Batch, BatchUpdate{
				Write:     ids.WiD{Client: ids.ClientID(e.Client), Seq: e.Seq},
				Stamp:     vclock.Stamp{Time: e.Seq, Client: ids.ClientID(e.Client)},
				Inv:       Invocation{Method: e.Method, Page: page, Args: e.Args},
				WallNanos: int64(e.Wall),
			})
		}
		got, err := Decode(Encode(m))
		if err != nil {
			t.Logf("decode error: %v", err)
			return false
		}
		for i := range m.Batch {
			if len(m.Batch[i].Inv.Args) == 0 {
				m.Batch[i].Inv.Args = nil
			}
		}
		return reflect.DeepEqual(m, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
