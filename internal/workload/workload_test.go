package workload

import (
	"math/rand"
	"testing"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Seed: 5, Clients: 4, Ops: 100, WriteRatio: 0.3, Pages: 8}
	a := Generate(cfg)
	b := Generate(cfg)
	if len(a) != 100 || len(b) != 100 {
		t.Fatalf("wrong op count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestWriteRatioApproximate(t *testing.T) {
	ops := Generate(Config{Seed: 1, Clients: 2, Ops: 2000, WriteRatio: 0.25, Pages: 4})
	writes := 0
	for _, op := range ops {
		if op.IsWrite {
			writes++
		}
	}
	frac := float64(writes) / float64(len(ops))
	if frac < 0.20 || frac > 0.30 {
		t.Fatalf("write fraction %.3f, want ~0.25", frac)
	}
}

func TestSingleWriterRestriction(t *testing.T) {
	ops := Generate(Config{Seed: 2, Clients: 5, Ops: 500, WriteRatio: 0.5, Pages: 2, SingleWriter: true})
	for _, op := range ops {
		if op.IsWrite && op.Client != 0 {
			t.Fatalf("write by client %d under SingleWriter", op.Client)
		}
	}
}

func TestZipfSkewsPopularity(t *testing.T) {
	ops := Generate(Config{Seed: 3, Clients: 1, Ops: 5000, WriteRatio: 0, Pages: 20, ZipfSkew: 1.5})
	counts := map[string]int{}
	for _, op := range ops {
		counts[op.Page]++
	}
	if counts[PageName(0)] <= counts[PageName(10)] {
		t.Fatalf("zipf skew missing: page0=%d page10=%d", counts[PageName(0)], counts[PageName(10)])
	}
}

func TestDefaultsApplied(t *testing.T) {
	ops := Generate(Config{Seed: 4, Ops: 10, WriteRatio: 1})
	if len(ops) != 10 {
		t.Fatalf("ops = %d", len(ops))
	}
	for _, op := range ops {
		if op.Client != 0 || op.Page != PageName(0) || op.Size != 512 {
			t.Fatalf("defaults wrong: %+v", op)
		}
	}
}

func TestContentSizeAndDeterminism(t *testing.T) {
	a := Content(rand.New(rand.NewSource(9)), 128)
	b := Content(rand.New(rand.NewSource(9)), 128)
	if len(a) != 128 || string(a) != string(b) {
		t.Fatalf("content not deterministic")
	}
}

func TestClassConfigs(t *testing.T) {
	for _, c := range []Class{ClassPersonalHome, ClassPopularEvent, ClassMagazine, ClassForum} {
		cfg := ClassConfig(c, 1, 100)
		if cfg.Ops != 100 || cfg.Clients == 0 || cfg.Pages == 0 {
			t.Fatalf("class %v config broken: %+v", c, cfg)
		}
		if c.String() == "" || c.String()[0] == 'C' {
			t.Fatalf("class %v unnamed: %q", int(c), c.String())
		}
	}
	if Class(99).String() != "Class(99)" {
		t.Fatalf("unknown class string")
	}
	if cfg := ClassConfig(Class(99), 1, 10); cfg.Ops != 10 {
		t.Fatalf("fallback config broken")
	}
}

// TestStreamMatchesGenerate pins the draw-order contract: the lazy Stream
// must reproduce Generate's exact op sequence for the same config, or every
// seeded experiment that moves to streaming would silently change workload.
func TestStreamMatchesGenerate(t *testing.T) {
	cfgs := []Config{
		{Seed: 1, Clients: 4, Ops: 500, WriteRatio: 0.2, Pages: 8, WriteSize: 64},
		{Seed: 99, Clients: 16, Ops: 300, WriteRatio: 0.5, Pages: 32, ZipfSkew: 1.3},
		{Seed: 7, Clients: 3, Ops: 200, WriteRatio: 1.0, Pages: 2, SingleWriter: true},
	}
	for _, cfg := range cfgs {
		want := Generate(cfg)
		s := NewStream(cfg)
		for i, w := range want {
			got, ok := s.Next()
			if !ok {
				t.Fatalf("cfg %+v: stream ended at %d of %d", cfg, i, len(want))
			}
			if got != w {
				t.Fatalf("cfg %+v: op %d = %+v, want %+v", cfg, i, got, w)
			}
		}
		if _, ok := s.Next(); ok {
			t.Fatalf("cfg %+v: stream outlived Generate", cfg)
		}
	}
}

// An op-count-free stream keeps drawing (the open-loop duration mode).
func TestStreamUnboundedKeepsDrawing(t *testing.T) {
	s := NewStream(Config{Seed: 3, Clients: 2, Pages: 2})
	for i := 0; i < 10_000; i++ {
		if _, ok := s.Next(); !ok {
			t.Fatalf("unbounded stream ended at %d", i)
		}
	}
}
