// Package workload generates deterministic synthetic workloads for the
// experiment harness: operation streams with configurable read/write mix,
// Zipf-skewed page popularity, and the document classes the paper's
// introduction motivates (personal home page, popular event page,
// periodically updated magazine, shared forum).
package workload

import (
	"fmt"
	"math/rand"
)

// Op is one client operation.
type Op struct {
	// Client indexes into the scenario's client set.
	Client int
	// IsWrite selects write vs read.
	IsWrite bool
	// Page is the document element addressed.
	Page string
	// Size is the content size for writes.
	Size int
}

// Config parameterises a generated stream.
type Config struct {
	Seed       int64
	Clients    int
	Ops        int
	WriteRatio float64 // fraction of ops that are writes, in [0,1]
	Pages      int     // number of distinct pages
	ZipfSkew   float64 // >1 skews popularity; <=1 means uniform
	WriteSize  int     // bytes per write (default 512)
	// SingleWriter restricts writes to client 0 (Table 1 write set =
	// single).
	SingleWriter bool
}

// Generate produces a deterministic operation stream.
func Generate(cfg Config) []Op {
	if cfg.Ops <= 0 {
		return nil
	}
	s := NewStream(cfg)
	ops := make([]Op, 0, cfg.Ops)
	for op, ok := s.Next(); ok; op, ok = s.Next() {
		ops = append(ops, op)
	}
	return ops
}

// Stream is the lazy form of Generate: it draws the identical deterministic
// op sequence one at a time, so an open-loop load generator can pace a
// million-op run without materialising the whole slice first. A Stream is
// not safe for concurrent use; the dispatcher that paces arrivals owns it.
type Stream struct {
	cfg  Config
	rng  *rand.Rand
	zipf *rand.Zipf
	i    int
}

// NewStream starts the deterministic op stream for cfg. A Config with
// Ops <= 0 streams forever (Generate would return nothing; the open-loop
// harness runs on a duration instead of an op count).
func NewStream(cfg Config) *Stream {
	if cfg.Clients <= 0 {
		cfg.Clients = 1
	}
	if cfg.Pages <= 0 {
		cfg.Pages = 1
	}
	if cfg.WriteSize <= 0 {
		cfg.WriteSize = 512
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	s := &Stream{cfg: cfg, rng: rng}
	if cfg.ZipfSkew > 1 {
		s.zipf = rand.NewZipf(rng, cfg.ZipfSkew, 1, uint64(cfg.Pages-1))
	}
	return s
}

// Next draws the next op. ok is false once the configured op count is
// exhausted (never, when cfg.Ops <= 0). The draw order (page, client,
// read/write) is load-bearing: it must match what Generate always did, so
// seeded experiment configs keep their exact historical streams.
func (s *Stream) Next() (Op, bool) {
	if s.cfg.Ops > 0 && s.i >= s.cfg.Ops {
		return Op{}, false
	}
	s.i++
	var page int
	if s.zipf != nil {
		page = int(s.zipf.Uint64())
	} else {
		page = s.rng.Intn(s.cfg.Pages)
	}
	op := Op{
		Client: s.rng.Intn(s.cfg.Clients),
		Page:   PageName(page),
		Size:   s.cfg.WriteSize,
	}
	if s.rng.Float64() < s.cfg.WriteRatio {
		op.IsWrite = true
		if s.cfg.SingleWriter {
			op.Client = 0
		}
	}
	return op, true
}

// PageName names the i-th page.
func PageName(i int) string { return fmt.Sprintf("page-%03d.html", i) }

// Content produces deterministic page content of the given size.
func Content(rng *rand.Rand, size int) []byte {
	const alphabet = "abcdefghijklmnopqrstuvwxyz <html></html>"
	b := make([]byte, size)
	for i := range b {
		b[i] = alphabet[rng.Intn(len(alphabet))]
	}
	return b
}

// Class is a document class from the paper's introduction, used by the
// per-object-vs-uniform experiment.
type Class int

// Document classes.
const (
	ClassPersonalHome Class = iota + 1 // rarely read, rarely written
	ClassPopularEvent                  // read-heavy, occasionally updated
	ClassMagazine                      // periodic bulk updates, many readers
	ClassForum                         // concurrent writers, causal reads
)

// String names the class.
func (c Class) String() string {
	switch c {
	case ClassPersonalHome:
		return "personal-home"
	case ClassPopularEvent:
		return "popular-event"
	case ClassMagazine:
		return "magazine"
	case ClassForum:
		return "forum"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// ClassConfig returns a workload matching the access pattern of the class.
func ClassConfig(c Class, seed int64, ops int) Config {
	switch c {
	case ClassPersonalHome:
		return Config{Seed: seed, Clients: 2, Ops: ops, WriteRatio: 0.05, Pages: 2, WriteSize: 256, SingleWriter: true}
	case ClassPopularEvent:
		return Config{Seed: seed, Clients: 8, Ops: ops, WriteRatio: 0.02, Pages: 4, ZipfSkew: 1.3, WriteSize: 512, SingleWriter: true}
	case ClassMagazine:
		return Config{Seed: seed, Clients: 6, Ops: ops, WriteRatio: 0.10, Pages: 6, WriteSize: 2048, SingleWriter: true}
	case ClassForum:
		return Config{Seed: seed, Clients: 6, Ops: ops, WriteRatio: 0.30, Pages: 1, WriteSize: 128}
	default:
		return Config{Seed: seed, Clients: 1, Ops: ops, Pages: 1}
	}
}
