// Whiteboard is the paper's groupware motivation (§3.2.1): "a groupware
// editor requires strong coherence at every store layer". Multiple clients
// draw concurrently on a shared board published under the sequential
// coherence model; every replica applies the strokes in one global order,
// so all participants see the identical board.
package main

import (
	"fmt"
	"log"
	"strings"
	"sync"
	"time"

	"repro/webobj"
)

func main() {
	sys := webobj.NewSystem()
	defer sys.Close()

	server, err := sys.NewServer("whiteboard.example.org")
	if err != nil {
		log.Fatal(err)
	}
	const board = webobj.ObjectID("shared-whiteboard")
	if err := sys.Publish(server, board, webobj.WebDoc(), webobj.WhiteboardStrategy()); err != nil {
		log.Fatal(err)
	}

	// Each participant works through their own cache.
	users := []string{"alice", "bob", "carol"}
	docs := make([]*webobj.Document, len(users))
	for i, u := range users {
		cache, err := sys.NewCache("cache-"+u, server)
		if err != nil {
			log.Fatal(err)
		}
		if err := sys.Replicate(cache, board); err != nil {
			log.Fatal(err)
		}
		d, err := sys.Open(board, webobj.At(cache))
		if err != nil {
			log.Fatal(err)
		}
		defer d.Close()
		docs[i] = d
	}

	// Everyone draws concurrently.
	const strokes = 6
	var wg sync.WaitGroup
	for i, d := range docs {
		wg.Add(1)
		go func(i int, d *webobj.Document) {
			defer wg.Done()
			initial := strings.ToUpper(users[i][:1])
			for k := 0; k < strokes; k++ {
				if err := d.Append("canvas", []byte(initial)); err != nil {
					log.Printf("%s stroke failed: %v", users[i], err)
					return
				}
			}
		}(i, d)
	}
	wg.Wait()

	// Sequential coherence: all replicas converge to the same canvas.
	want := len(users) * strokes
	deadline := time.Now().Add(5 * time.Second)
	for {
		contents := make([]string, len(docs))
		done := true
		for i, d := range docs {
			pg, err := d.Get("canvas")
			if err != nil || len(pg.Content) != want {
				done = false
				break
			}
			contents[i] = string(pg.Content)
		}
		if done {
			for i := 1; i < len(contents); i++ {
				if contents[i] != contents[0] {
					log.Fatalf("replicas diverged:\n%s: %s\n%s: %s",
						users[0], contents[0], users[i], contents[i])
				}
			}
			fmt.Printf("all %d participants see the same canvas: %s\n", len(users), contents[0])
			fmt.Println("whiteboard example OK")
			return
		}
		if time.Now().After(deadline) {
			log.Fatal("whiteboard never converged")
		}
		time.Sleep(20 * time.Millisecond)
	}
}
