// Mirror demonstrates object-initiated stores (§3.1: "a typical example of
// an object-initiated store is a mirrored Web site") and the Monotonic
// Reads client model (§3.2.2): a travelling client reads first at the
// primary site, then at a lagging mirror — without MR the second read could
// go back in time; with MR the mirror catches up before serving.
package main

import (
	"fmt"
	"log"

	"repro/webobj"

	"time"
)

func main() {
	sys := webobj.NewSystem()
	defer sys.Close()

	primary, err := sys.NewServer("www.site.org")
	if err != nil {
		log.Fatal(err)
	}
	const site = webobj.ObjectID("mirrored-site")
	// Mirrors synchronise lazily (every 10s here, so they are always stale
	// within this run) under eventual coherence.
	if err := sys.Publish(primary, site, webobj.WebDoc(), webobj.MirroredSiteStrategy(10*time.Second)); err != nil {
		log.Fatal(err)
	}
	mirror, err := sys.NewMirror("mirror.site.org", primary)
	if err != nil {
		log.Fatal(err)
	}
	// The mirror must be able to enforce Monotonic Reads for clients that
	// ask for it.
	if err := sys.Replicate(mirror, site, webobj.MonotonicReads); err != nil {
		log.Fatal(err)
	}

	// The owner updates the site at the primary.
	owner, err := sys.Open(site, webobj.At(primary))
	if err != nil {
		log.Fatal(err)
	}
	defer owner.Close()
	for v := 1; v <= 3; v++ {
		if err := owner.Put("download.html", []byte(fmt.Sprintf("release-v%d", v)), "text/html"); err != nil {
			log.Fatal(err)
		}
	}

	// A travelling client with Monotonic Reads: first read at the primary...
	client, err := sys.Open(site, webobj.At(primary), webobj.WithSession(webobj.MonotonicReads))
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	pg, err := client.Get("download.html")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read at primary: %s (version %d)\n", pg.Content, pg.Version)
	first := pg.Version

	// ...then the client "travels" and reads at the mirror, which has not
	// synchronised yet. MR forces the mirror to demand the missing updates
	// before answering.
	if err := client.Rebind(mirror); err != nil {
		log.Fatal(err)
	}
	pg, err = client.Get("download.html")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read at mirror:  %s (version %d)\n", pg.Content, pg.Version)
	if pg.Version < first {
		log.Fatalf("monotonic reads violated: %d then %d", first, pg.Version)
	}

	// For contrast: a client WITHOUT monotonic reads sees the mirror's
	// stale state (eventual coherence permits it).
	casual, err := sys.Open(site, webobj.At(mirror))
	if err != nil {
		log.Fatal(err)
	}
	defer casual.Close()
	if pg, err := casual.Get("download.html"); err == nil {
		fmt.Printf("casual client at mirror sees version %d (stale is allowed without MR)\n", pg.Version)
	}
	fmt.Println("mirror example OK")
}
