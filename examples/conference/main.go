// Conference reproduces §4 of the paper end to end: a conference home page
// maintained by a Web master (client M) and browsed by participants (client
// U), with the exact Table 2 strategy — PRAM object coherence at all stores,
// update propagation, periodic partial pushes, object-outdate wait,
// client-outdate demand — plus Read-Your-Writes for the master only.
//
// The run demonstrates the two coherence levels working together: the
// master's read through its own cache is never missing its own writes (the
// cache demands them from the server when the periodic push lags), while
// the participant's cache is allowed to lag (PRAM permits it) and converges
// on the next push.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/webobj"
)

func main() {
	sys := webobj.NewSystem()
	defer sys.Close()

	server, err := sys.NewServer("conference.org")
	if err != nil {
		log.Fatal(err)
	}
	const page = webobj.ObjectID("icdcs98-home-page")
	// Table 2: lazy (periodic) push every 150ms.
	if err := sys.Publish(server, page, webobj.WebDoc(), webobj.ConferenceStrategy(150*time.Millisecond)); err != nil {
		log.Fatal(err)
	}

	// Figure 3: cache M (the master's) and cache U (a participant's).
	cacheM, err := sys.NewCache("cache-m", server)
	if err != nil {
		log.Fatal(err)
	}
	// Cache M must support the RYW client-based model.
	if err := sys.Replicate(cacheM, page, webobj.ReadYourWrites); err != nil {
		log.Fatal(err)
	}
	cacheU, err := sys.NewCache("cache-u", server)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Replicate(cacheU, page); err != nil {
		log.Fatal(err)
	}

	master, err := sys.Open(page, webobj.At(cacheM), webobj.WithSession(webobj.ReadYourWrites))
	if err != nil {
		log.Fatal(err)
	}
	defer master.Close()
	participant, err := sys.Open(page, webobj.At(cacheU))
	if err != nil {
		log.Fatal(err)
	}
	defer participant.Close()

	announcements := []string{
		"<li>Call for participation posted</li>",
		"<li>Technical program available</li>",
		"<li>Registration open</li>",
		"<li>Hotel block reserved</li>",
	}
	for i, a := range announcements {
		// The master updates the page incrementally...
		if err := master.Append("news.html", []byte(a)); err != nil {
			log.Fatal(err)
		}
		// ...and immediately verifies the write through its own cache.
		// Without RYW this read could miss the write until the next
		// periodic push; with RYW the cache demands the update (Table 2:
		// client-outdate reaction = demand).
		pg, err := master.Get("news.html")
		if err != nil {
			log.Fatal(err)
		}
		if pg.Version != uint64(i+1) {
			log.Fatalf("read-your-writes violated: version %d after %d writes", pg.Version, i+1)
		}
		fmt.Printf("master verified update %d/%d through its cache (RYW held)\n", i+1, len(announcements))
	}

	// The participant's cache converges on the periodic push; PRAM
	// guarantees it never sees announcement k without announcements 1..k-1.
	deadline := time.Now().Add(3 * time.Second)
	for {
		pg, err := participant.Get("news.html")
		if err == nil {
			fmt.Printf("participant sees %d/%d announcements\n", pg.Version, len(announcements))
			if pg.Version == uint64(len(announcements)) {
				fmt.Println("conference example OK")
				return
			}
		}
		if time.Now().After(deadline) {
			log.Fatal("participant cache never converged")
		}
		time.Sleep(50 * time.Millisecond)
	}
}
