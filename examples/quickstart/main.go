// Quickstart: publish a Web document at a server, replicate it at a proxy
// cache, and access it from two clients — the smallest end-to-end use of the
// framework.
//
// This runs over the default in-process simulated network. The identical
// calls deploy over real TCP by swapping the fabric —
//
//	sys := webobj.NewSystem(webobj.WithFabric(webobj.NewTCPFabric("")))
//
// — which is exactly how cmd/globed and cmd/globectl are built.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/webobj"
)

func main() {
	sys := webobj.NewSystem()
	defer sys.Close()

	// A permanent store: the document's Web server.
	server, err := sys.NewServer("www.example.org")
	if err != nil {
		log.Fatal(err)
	}

	// Publish a document with the conference-page strategy of the paper's
	// Table 2 (PRAM coherence, single writer, periodic partial pushes).
	const doc = webobj.ObjectID("my-first-object")
	if err := sys.Publish(server, doc, webobj.WebDoc(), webobj.ConferenceStrategy(100*time.Millisecond)); err != nil {
		log.Fatal(err)
	}

	// A client-initiated store: a proxy cache near the readers.
	cache, err := sys.NewCache("proxy.client-isp.net", server)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Replicate(cache, doc); err != nil {
		log.Fatal(err)
	}

	// The owner binds at the server and writes.
	owner, err := sys.Open(doc, webobj.At(server))
	if err != nil {
		log.Fatal(err)
	}
	defer owner.Close()
	if err := owner.Put("index.html", []byte("<h1>Hello, replicated Web!</h1>"), "text/html"); err != nil {
		log.Fatal(err)
	}

	// A reader binds at the cache; the update arrives via the object's own
	// replication protocol.
	reader, err := sys.Open(doc) // nearest replica: the cache
	if err != nil {
		log.Fatal(err)
	}
	defer reader.Close()

	for i := 0; i < 50; i++ {
		page, err := reader.Get("index.html")
		if err == nil && page.Version >= 1 {
			fmt.Printf("read from cache: %s (version %d)\n", page.Content, page.Version)
			pages, _ := reader.Pages()
			fmt.Printf("document pages: %v\n", pages)
			fmt.Println("quickstart OK")
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	log.Fatal("cache never converged")
}
